// Package chainckpt is a Go implementation of the resilience-scheduling
// system of Benoit, Cavelan, Robert and Sun, "Two-Level Checkpointing and
// Verifications for Linear Task Graphs" (PDSEC/IPDPSW 2016).
//
// An HPC application whose workflow is a linear chain of tasks
// T1 -> T2 -> ... -> Tn must survive two independent error sources:
// fail-stop errors (crashes that destroy memory, forcing a restart from a
// disk checkpoint) and silent data corruptions (caught only by running a
// verification, repaired from a cheap in-memory checkpoint). This package
// computes, in polynomial time, the provably optimal placement of
//
//   - disk checkpoints (cost C_D),
//   - in-memory checkpoints (cost C_M, always behind a guaranteed
//     verification so stored data is never corrupted),
//   - guaranteed verifications (cost V*, recall 1), and
//   - partial verifications (cost V << V*, recall r < 1)
//
// at task boundaries, minimizing the expected makespan.
//
// # Quick start
//
//	c, _ := chainckpt.Uniform(50, 25000)          // 50 tasks, 25000 s total
//	p := chainckpt.Hera()                          // SCR-measured platform
//	res, _ := chainckpt.PlanADMV(c, p)             // full two-level + partial verifs
//	fmt.Println(res.ExpectedMakespan, res.Schedule)
//
// # Batch planning
//
// Many requests at once — experiment sweeps, services — plan through an
// Engine: a bounded worker pool with an LRU memo of solved instances, so
// instances solve concurrently and repeated or near-duplicate requests
// are served from cache (see NewEngine, PlanMany, PlanAsync, Stream).
// cmd/chainserve exposes the engine over HTTP/JSON with health and
// metrics endpoints.
//
//	eng := chainckpt.NewEngine(chainckpt.EngineOptions{})
//	defer eng.Close()
//	resps := eng.PlanMany(ctx, reqs)
//
// Beyond the planners, the package exposes the machinery used to validate
// them: an analytic evaluator for fixed schedules (Evaluate), an exact
// Markov-renewal oracle (ExactMakespan), and a parallel Monte-Carlo fault
// simulator (Simulate). The four routes agree with each other — the
// cross-validation suite in crossval_test.go enforces it on randomized
// chains against an exhaustive search (internal/bruteforce).
//
// All heavy types are aliases of the implementation packages under
// internal/, so their documentation and methods apply directly.
package chainckpt

import (
	"context"
	"math/rand"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/dag"
	"chainckpt/internal/engine"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/fault"
	"chainckpt/internal/heuristics"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/obs"
	"chainckpt/internal/ops"
	"chainckpt/internal/platform"
	"chainckpt/internal/replay"
	"chainckpt/internal/runtime"
	"chainckpt/internal/schedule"
	"chainckpt/internal/sensitivity"
	"chainckpt/internal/sim"
	"chainckpt/internal/workload"
)

// Chain is a linear task graph; see internal/chain.
type Chain = chain.Chain

// Task is one computational kernel of a chain.
type Task = chain.Task

// Platform bundles error rates, checkpoint and verification costs.
type Platform = platform.Platform

// Schedule assigns resilience actions to task boundaries.
type Schedule = schedule.Schedule

// Action is the bitmask of mechanisms at one boundary.
type Action = schedule.Action

// The four mechanisms of the model.
const (
	Partial    = schedule.Partial
	Guaranteed = schedule.Guaranteed
	Memory     = schedule.Memory
	Disk       = schedule.Disk
)

// Algorithm names one of the paper's planners.
type Algorithm = core.Algorithm

// The three planners of the paper's evaluation.
const (
	ADV      = core.AlgADV      // disk checkpoints + guaranteed verifications
	ADMVStar = core.AlgADMVStar // + in-memory checkpoints (Section III-A)
	ADMV     = core.AlgADMV     // + partial verifications (Section III-B)
)

// PlanResult is a planner outcome: optimal schedule and its expectation.
type PlanResult = core.Result

// SimOptions configures the Monte-Carlo simulator.
type SimOptions = sim.Options

// SimResult aggregates simulated makespans and event counters.
type SimResult = sim.Result

// SimShapes selects Weibull inter-arrival laws for the simulated error
// sources (zero value = the model's exponential arrivals), for
// robustness studies against model misspecification.
type SimShapes = sim.Shapes

// NewChain builds a chain from explicit tasks.
func NewChain(tasks ...Task) (*Chain, error) { return chain.New(tasks...) }

// ChainFromWeights builds a chain of anonymous tasks.
func ChainFromWeights(weights ...float64) (*Chain, error) { return chain.FromWeights(weights...) }

// Uniform, Decrease and HighLow generate the paper's workload patterns
// normalized to the given total weight.
func Uniform(n int, total float64) (*Chain, error)  { return workload.Uniform(n, total) }
func Decrease(n int, total float64) (*Chain, error) { return workload.Decrease(n, total) }

// HighLow generates the paper's HighLow pattern: 10% large tasks holding
// 60% of the weight.
func HighLow(n int, total float64) (*Chain, error) {
	return workload.HighLow(n, total, 0.10, 0.60)
}

// RandomChain generates a chain with random weights summing to total.
func RandomChain(rng *rand.Rand, n int, total float64) (*Chain, error) {
	return workload.Random(rng, n, total)
}

// Hera, Atlas, Coastal and CoastalSSD return the four platforms of the
// paper's Table I, with the Section IV cost assumptions applied
// (R_D = C_D, R_M = C_M, V* = C_M, V = V*/100, r = 0.8).
func Hera() Platform       { return platform.Hera() }
func Atlas() Platform      { return platform.Atlas() }
func Coastal() Platform    { return platform.Coastal() }
func CoastalSSD() Platform { return platform.CoastalSSD() }

// Platforms returns all four Table I platforms.
func Platforms() []Platform { return platform.All() }

// PlatformByName looks up a Table I platform by name.
func PlatformByName(name string) (Platform, error) { return platform.ByName(name) }

// PlatformFromJSON decodes and validates a user-defined platform, so the
// model can be instantiated with custom parameters as the paper invites.
func PlatformFromJSON(data []byte) (Platform, error) { return platform.FromJSON(data) }

// Costs assigns checkpoint, recovery and verification costs per task
// boundary — the natural model when costs scale with the data volume
// alive at each boundary.
type Costs = platform.Costs

// BoundaryCosts holds the six cost parameters of one boundary.
type BoundaryCosts = platform.BoundaryCosts

// UniformCosts builds the paper's constant-cost table from a platform.
func UniformCosts(p Platform, n int) (*Costs, error) { return platform.UniformCosts(p, n) }

// ScaledCosts scales the platform costs by the data volume crossing each
// boundary (one multiplier per boundary).
func ScaledCosts(p Platform, sizes []float64) (*Costs, error) {
	return platform.ScaledCosts(p, sizes)
}

// PlanWithCosts runs the named algorithm with per-boundary costs.
func PlanWithCosts(alg Algorithm, c *Chain, p Platform, costs *Costs) (*PlanResult, error) {
	return core.PlanWithCosts(alg, c, p, costs)
}

// PlanFull is the most general planning entry point: per-boundary costs
// and placement constraints, both optional (nil).
func PlanFull(alg Algorithm, c *Chain, p Platform, costs *Costs, cons *Constraints) (*PlanResult, error) {
	return core.PlanFull(alg, c, p, costs, cons)
}

// PlanOptions bundles every optional planning input: per-boundary costs,
// placement constraints, and a disk-checkpoint budget.
type PlanOptions = core.Options

// PlanWithOptions runs the named algorithm under the given options.
func PlanWithOptions(alg Algorithm, c *Chain, p Platform, opts PlanOptions) (*PlanResult, error) {
	return core.PlanOpts(alg, c, p, opts)
}

// EvaluateWithCosts is Evaluate with per-boundary costs.
func EvaluateWithCosts(c *Chain, p Platform, costs *Costs, s *Schedule) (float64, error) {
	return core.EvaluateWithCosts(c, p, costs, s)
}

// Evaluator scores fixed schedules for one instance, amortizing the model
// tables across calls; build one when scoring many candidate schedules.
type Evaluator = core.Evaluator

// NewEvaluator precomputes the model tables for (chain, platform, costs);
// costs may be nil for the platform constants.
func NewEvaluator(c *Chain, p Platform, costs *Costs) (*Evaluator, error) {
	return core.NewEvaluator(c, p, costs)
}

// ExactMakespanWithCosts is ExactMakespan with per-boundary costs.
func ExactMakespanWithCosts(c *Chain, p Platform, costs *Costs, s *Schedule) (float64, error) {
	return evaluate.ExactWithCosts(c, p, costs, s)
}

// NewSchedule returns an empty schedule for an n-task chain.
func NewSchedule(n int) (*Schedule, error) { return schedule.New(n) }

// Plan runs the named algorithm and returns the optimal schedule.
func Plan(alg Algorithm, c *Chain, p Platform) (*PlanResult, error) { return core.Plan(alg, c, p) }

// PlanADV runs the single-level planner ADV*.
func PlanADV(c *Chain, p Platform) (*PlanResult, error) { return core.PlanADV(c, p) }

// PlanADMVStar runs the two-level planner ADMV* (Section III-A).
func PlanADMVStar(c *Chain, p Platform) (*PlanResult, error) { return core.PlanADMVStar(c, p) }

// PlanADMV runs the complete planner ADMV (Section III-B).
func PlanADMV(c *Chain, p Platform) (*PlanResult, error) { return core.PlanADMV(c, p) }

// Constraints restricts which mechanisms each boundary may carry; see
// NewConstraints and PlanConstrained.
type Constraints = core.Constraints

// NewConstraints returns constraints allowing every mechanism everywhere.
func NewConstraints(n int) (*Constraints, error) { return core.NewConstraints(n) }

// PlanConstrained runs the named algorithm restricted to schedules whose
// boundary actions satisfy cons (optimal over the constrained space).
func PlanConstrained(alg Algorithm, c *Chain, p Platform, cons *Constraints) (*PlanResult, error) {
	return core.PlanConstrained(alg, c, p, cons)
}

// HeuristicResult is a baseline strategy's placement and expectation.
type HeuristicResult = heuristics.Result

// Baseline heuristics (see internal/heuristics): the no-resilience
// baseline, Young/Daly-style analytic periods, the best task-periodic
// pattern, and greedy marginal-gain insertion. The planners returned by
// Plan* dominate all of them; the heuristics serve as yardsticks and as
// starting points for workloads beyond linear chains.
func HeuristicFinalOnly(c *Chain, p Platform) (*HeuristicResult, error) {
	return heuristics.FinalOnly(c, p)
}
func HeuristicDaly(c *Chain, p Platform) (*HeuristicResult, error) {
	return heuristics.DalyPeriodic(c, p)
}
func HeuristicPeriodicScan(c *Chain, p Platform) (*HeuristicResult, error) {
	return heuristics.PeriodicScan(c, p)
}
func HeuristicGreedy(c *Chain, p Platform) (*HeuristicResult, error) {
	return heuristics.GreedyInsert(c, p)
}
func HeuristicPattern(c *Chain, p Platform) (*HeuristicResult, error) {
	return heuristics.FirstOrderPattern(c, p)
}

// Workflow is a directed acyclic task graph. Under the paper's
// simplified scenario (every task uses the whole platform) it executes
// serially in a topological order, so planning decomposes into choosing a
// linearization and running the chain planner on it (see internal/dag).
type Workflow = dag.Graph

// WorkflowStrategy names a linearization heuristic.
type WorkflowStrategy = dag.Strategy

// WorkflowResult is a planned serialization of a workflow.
type WorkflowResult = dag.Result

// NewWorkflow returns an empty workflow DAG.
func NewWorkflow() *Workflow { return dag.New() }

// WorkflowStrategies lists the linearization heuristics.
func WorkflowStrategies() []WorkflowStrategy { return dag.Strategies() }

// PlanWorkflow serializes the DAG with every strategy, plans each
// serialization with the chain planner, and returns the best.
func PlanWorkflow(alg Algorithm, g *Workflow, p Platform) (*WorkflowResult, error) {
	return dag.Plan(alg, g, p, nil)
}

// PlanWorkflowWith plans under a single linearization strategy.
func PlanWorkflowWith(alg Algorithm, g *Workflow, p Platform, s WorkflowStrategy) (*WorkflowResult, error) {
	return dag.Plan(alg, g, p, []WorkflowStrategy{s})
}

// Elasticity is one parameter's sensitivity result.
type Elasticity = sensitivity.Result

// Elasticities reports how the expected makespan of a fixed schedule
// responds to each platform parameter ((x/E)*dE/dx per parameter): the
// operator's "which knob dominates my overhead" report.
func Elasticities(c *Chain, p Platform, s *Schedule) ([]Elasticity, error) {
	return sensitivity.FixedSchedule(c, p, s)
}

// Evaluate returns the expected makespan of a fixed schedule under the
// paper's closed-form model (Equations (2)-(4) and Section III-B).
func Evaluate(c *Chain, p Platform, s *Schedule) (float64, error) {
	return core.Evaluate(c, p, s)
}

// ExactMakespan returns the exact model-expected makespan of a fixed
// schedule via the independent Markov-renewal oracle.
func ExactMakespan(c *Chain, p Platform, s *Schedule) (float64, error) {
	return evaluate.Exact(c, p, s)
}

// Simulate runs the Monte-Carlo fault simulator on a fixed schedule.
func Simulate(c *Chain, p Platform, s *Schedule, opts SimOptions) (*SimResult, error) {
	return sim.Run(c, p, s, opts)
}

// Engine is a concurrent batch planner, sharded for contention-free
// scale: requests route by canonical instance fingerprint to one of N
// shards, each owning its own solver kernel, LRU memo, singleflight
// table and worker slice, so heavy parallel traffic never serializes on
// a single memo mutex while results stay byte-identical to a one-shard
// engine. Use it when serving many plan requests (cmd/chainserve) or
// sweeping many instances (internal/experiments); see internal/engine.
type Engine = engine.Engine

// EngineOptions sizes an Engine's worker pool, plan memo and shard
// count (EngineOptions.Shards; default min(GOMAXPROCS, Workers), an
// explicit value rounded up to a power of two).
type EngineOptions = engine.Options

// PlanRequest is one planning job submitted to an Engine.
type PlanRequest = engine.Request

// PlanResponse is the outcome of one PlanRequest, carrying the batch
// index, the result or error, and whether the memo served it.
type PlanResponse = engine.Response

// EngineStats is a snapshot of an Engine's request and cache counters,
// aggregated across shards; EngineStats.Shards carries the per-shard
// breakdown.
type EngineStats = engine.Stats

// EngineShardStats is one shard's slice of an Engine's counters.
type EngineShardStats = engine.ShardStats

// NewEngine starts a batch planning engine; Close it to release its
// workers.
//
//	eng := chainckpt.NewEngine(chainckpt.EngineOptions{})
//	defer eng.Close()
//	resps := eng.PlanMany(ctx, reqs)   // or PlanAsync / Stream
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// DefaultEngine returns the shared process-wide engine used by the
// experiment harness and the command-line tools.
func DefaultEngine() *Engine { return engine.Default() }

// Kernel is the long-lived solver kernel underneath every planner: it
// owns size-bucketed pools of scratch arenas, so repeated planning
// through one kernel runs the dynamic program allocation-free, and it
// exposes incremental suffix re-solves (ReplanSuffix) that re-plan the
// remainder of a chain in place — no suffix chain, cost-table slice or
// constraint slice is materialized. The package-level Plan* functions
// are thin wrappers over a shared default kernel; build your own when
// you want isolated pool statistics or an allocation-free hot loop of
// your own (see internal/core).
type Kernel = core.Kernel

// KernelStats snapshots a kernel's scratch-pool counters: solves,
// arena reuses versus fresh allocations, per size bucket, plus the
// exact per-window-length solve histogram (KernelStats.Sizes) that
// Kernel.Tune consumes to install exact-capacity pools for the hot
// sizes.
type KernelStats = core.KernelStats

// KernelBucketStats is one capacity class of a kernel's scratch pool.
type KernelBucketStats = core.KernelBucketStats

// KernelSizeStats is one exact window length's solve count.
type KernelSizeStats = core.KernelSizeStats

// NewKernel returns an empty solver kernel.
//
//	k := chainckpt.NewKernel()
//	res, _ := k.PlanOpts(chainckpt.ADMV, c, p, chainckpt.PlanOptions{})
//	upd, _ := k.ReplanSuffix(chainckpt.ADMV, c, newRates, from, chainckpt.PlanOptions{})
func NewKernel() *Kernel { return core.NewKernel() }

// DefaultKernel returns the shared process-wide kernel the package-level
// Plan* functions solve through.
func DefaultKernel() *Kernel { return core.DefaultKernel() }

// Supervisor executes scheduled chains for real: it drives tasks
// through a pluggable TaskRunner, owns a two-tier checkpoint store,
// implements the paper's recovery semantics (fail-stop => restore the
// last disk checkpoint, detected silent error => roll back to the last
// verified in-memory checkpoint), and can adapt the schedule mid-run
// when the observed error rates drift from the model (see RunAdaptive
// and internal/runtime).
type Supervisor = runtime.Supervisor

// SupervisorOptions configures a Supervisor.
type SupervisorOptions = runtime.Options

// RunJob describes one chain execution submitted to a Supervisor.
type RunJob = runtime.Job

// RunReport summarizes one supervised execution.
type RunReport = runtime.Report

// RunCounters tallies the events of one supervised execution.
type RunCounters = runtime.Counters

// AdaptPolicy tunes adaptive re-planning (zero value = defaults).
type AdaptPolicy = runtime.AdaptPolicy

// TaskRunner is the pluggable execution backend of the Supervisor.
type TaskRunner = runtime.TaskRunner

// TaskSpec and TaskResult are one task execution request and outcome.
type TaskSpec = runtime.TaskSpec
type TaskResult = runtime.TaskResult

// TaskState is the opaque application payload flowing between tasks.
type TaskState = runtime.State

// CheckpointStore is the supervisor's two-tier checkpoint store: a
// single in-memory checkpoint plus fingerprinted disk checkpoints.
type CheckpointStore = runtime.Store

// SimTaskRunner injects faults from the simulator's error model; see
// NewSimRunner and NewMisspecifiedRunner.
type SimTaskRunner = runtime.SimRunner

// NopTaskRunner executes tasks instantly and perfectly; SleepTaskRunner
// sleeps Scale wall seconds per modeled second, for watchable demos.
type NopTaskRunner = runtime.NopRunner
type SleepTaskRunner = runtime.SleepRunner

// NewSupervisor builds an execution supervisor.
//
//	sup := chainckpt.NewSupervisor(chainckpt.SupervisorOptions{})
//	rep, err := sup.Run(ctx, chainckpt.RunJob{Chain: c, Platform: p})
//	rep, err = sup.RunAdaptive(ctx, job, chainckpt.AdaptPolicy{})
func NewSupervisor(opts SupervisorOptions) *Supervisor { return runtime.New(opts) }

// NewCheckpointStore opens a checkpoint store; dir "" keeps the disk
// tier in process memory (simulations, tests), a path persists
// fingerprinted checkpoint files under it.
func NewCheckpointStore(dir string) (*CheckpointStore, error) { return runtime.NewStore(dir) }

// MetricsRegistry is the dependency-free metrics registry of the
// observability plane (internal/obs): atomic counters, gauges and
// fixed-bucket latency histograms, rendered in Prometheus text
// exposition format (WritePrometheus) or as a one-shot human-readable
// summary (DumpText — what the CLI -stats flags print).
type MetricsRegistry = obs.Registry

// MetricsHistogram is one fixed-bucket latency or size histogram.
type MetricsHistogram = obs.Histogram

// Tracer records request- and job-scoped span trees into a bounded
// ring; Span is one timed operation. Both are nil-safe: a nil Tracer
// hands out nil Spans and every Span method on nil is a free no-op, so
// instrumented code paths cost nothing when tracing is off.
type Tracer = obs.Tracer
type Span = obs.Span

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer builds a tracer keeping the most recent completed traces
// (keep <= 0 uses the default ring size).
func NewTracer(keep int) *Tracer { return obs.NewTracer(keep) }

// EngineMetrics and RuntimeMetrics are the per-layer metric bundles:
// pass them via EngineOptions.Metrics / SupervisorOptions.Metrics to
// fill per-shard queue-wait and solve-latency histograms, and task /
// verification / checkpoint-commit / recovery timings, on reg.
type EngineMetrics = engine.Metrics
type RuntimeMetrics = runtime.Metrics

// NewEngineMetrics registers the engine's metric families on reg (nil
// reg returns nil, an uninstrumented engine).
func NewEngineMetrics(reg *MetricsRegistry) *EngineMetrics { return engine.NewMetrics(reg) }

// NewRuntimeMetrics registers the runtime supervisor's metric families
// on reg (nil reg returns nil, an uninstrumented supervisor).
func NewRuntimeMetrics(reg *MetricsRegistry) *RuntimeMetrics { return runtime.NewMetrics(reg) }

// ContextWithSpan returns ctx carrying s, so supervisor runs and engine
// plans hang their child spans below it; SpanFromContext reads it back.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return obs.ContextWithSpan(ctx, s)
}
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFrom(ctx) }

// OpsMetrics is the metric bundle of the ops plane (internal/ops): SLO
// burn-rate gauges, admission-control outcome counters and self-tuning
// event counters, all on the chainckpt_slo_* / chainckpt_admission_* /
// chainckpt_tuner_* families.
type OpsMetrics = ops.Metrics

// NewOpsMetrics registers the ops-plane metric families on reg (nil reg
// returns nil; every ops component tolerates nil metrics).
func NewOpsMetrics(reg *MetricsRegistry) *OpsMetrics { return ops.NewMetrics(reg) }

// AdmissionClass is a request priority class: interactive work is
// granted ahead of batch work and survives load-shedding longer.
type AdmissionClass = ops.Class

const (
	AdmissionInteractive = ops.Interactive
	AdmissionBatch       = ops.Batch
)

// AdmissionController is the bounded-queue admission gate ahead of the
// planning pools: Admit blocks until a slot frees, the context deadline
// expires, or the request is shed (queue full, or batch work during a
// burn-coupled shed); ShedError carries the Retry-After hint.
type AdmissionController = ops.Controller
type AdmissionConfig = ops.ControllerConfig
type ShedError = ops.ShedError

// NewAdmissionController builds an admission controller with cfg's
// bounds, recording outcomes on m (nil m records nothing).
func NewAdmissionController(cfg AdmissionConfig, m *OpsMetrics) *AdmissionController {
	return ops.NewController(cfg, m)
}

// SLO declares one latency objective over a histogram source;
// SLOTracker samples the sources and computes multi-window (fast 5m /
// slow 1h) burn rates, exported on the chainckpt_slo_* gauges and
// summarized by Report.
type SLO = ops.SLO
type SLOTracker = ops.Tracker
type SLOTrackerConfig = ops.TrackerConfig
type SLOStatus = ops.SLOStatus

// HistogramSnapshot is a point-in-time copy of a histogram's buckets —
// what SLO sources return and window deltas subtract.
type HistogramSnapshot = obs.HistogramSnapshot

// NewSLOTracker builds a tracker over the given objectives, exporting
// burn gauges on m (nil m keeps Report working without gauges).
func NewSLOTracker(cfg SLOTrackerConfig, m *OpsMetrics, slos ...SLO) *SLOTracker {
	return ops.NewTracker(cfg, m, slos...)
}

// MergeSnapshots sums same-layout histogram snapshots, the way an SLO
// spanning several routes merges their latency histograms.
func MergeSnapshots(snaps ...HistogramSnapshot) HistogramSnapshot {
	return ops.MergeSnapshots(snaps...)
}

// Tuner is the metrics-driven self-tuner: each cycle retunes the
// engine's scratch pools and retargets its DP worker team from the live
// solve-size histogram, recording a TuningEvent. Engine satisfies
// TunableEngine.
type Tuner = ops.Tuner
type TunerConfig = ops.TunerConfig
type TuningEvent = ops.TuningEvent
type TunableEngine = ops.TunableEngine
type SizeCount = ops.SizeCount

// NewTuner builds a self-tuner actuating eng, recording cycles on m.
func NewTuner(cfg TunerConfig, eng TunableEngine, m *OpsMetrics) *Tuner {
	return ops.NewTuner(cfg, eng, m)
}

// EstimatorState is the serializable evidence of a run's online error-
// rate estimators: persist it (RunReport.Estimator), seed it back
// (RunJob.Estimator), or derive re-planning rates from it
// (ReplanPlatform) — the statistical half of resuming an interrupted
// execution.
type EstimatorState = runtime.EstimatorState

// RateObservation is one error source's exposure and arrival count.
type RateObservation = runtime.RateObservation

// JobStore persists execution-job lifecycles so they survive a service
// restart: created -> planned -> running(progress) -> done / failed /
// cancelled, one durable record per transition. See internal/jobstore.
type JobStore = jobstore.Store

// JobRecord is the durable state of one job: lifecycle fields plus
// opaque JSON payloads (request spec, planned schedule, estimator
// evidence, final report) owned by the service above the store.
type JobRecord = jobstore.Record

// JobState is a job lifecycle state.
type JobState = jobstore.State

// The job lifecycle states.
const (
	JobCreated   = jobstore.StateCreated
	JobPlanned   = jobstore.StatePlanned
	JobRunning   = jobstore.StateRunning
	JobDone      = jobstore.StateDone
	JobFailed    = jobstore.StateFailed
	JobCancelled = jobstore.StateCancelled
)

// JournalJobStore is the durable JobStore: an append-only write-ahead
// journal of CRC-framed records in rotated segment files with a
// periodically compacted snapshot, replayed on open with damaged
// frames skipped. MemoryJobStore is the volatile reference
// implementation with identical semantics.
type JournalJobStore = jobstore.Journal
type MemoryJobStore = jobstore.Memory

// JobStoreOptions tunes a journaled job store (segment size, compaction
// cadence, fsync).
type JobStoreOptions = jobstore.Options

// JobStoreStats snapshots a job store's counters, including the
// corruption and duplicate skips of the last replay.
type JobStoreStats = jobstore.Stats

// OpenJobStore opens (creating if necessary) a write-ahead journaled
// job store under dir and replays its records.
//
//	store, err := chainckpt.OpenJobStore(dir, chainckpt.JobStoreOptions{})
//	for _, rec := range store.List() { ... }   // resume what was running
func OpenJobStore(dir string, opts JobStoreOptions) (*JournalJobStore, error) {
	return jobstore.Open(dir, opts)
}

// NewMemoryJobStore returns a volatile job store.
func NewMemoryJobStore() *MemoryJobStore { return jobstore.NewMemory() }

// NewSimRunner builds a fault-injecting task runner whose true rates
// come from p; the seed fixes the fault sequence.
func NewSimRunner(p Platform, seed uint64) *SimTaskRunner { return runtime.NewSimRunner(p, seed) }

// NewMisspecifiedRunner builds a fault-injecting runner whose true
// rates are the platform's scaled by factorF and factorS, for
// robustness studies of stale schedules.
func NewMisspecifiedRunner(p Platform, factorF, factorS float64, seed uint64) *SimTaskRunner {
	return runtime.NewMisspecifiedRunner(p, factorF, factorS, seed)
}

// Recording is the event-sourced capture of one supervised run: the
// instance identity (seed, algorithm, chain/schedule fingerprints), the
// full trace-event stream, estimator snapshots at every committed disk
// checkpoint, checkpoint content digests, normalized job-store
// lifecycle records, and the normalized final report. Re-running the
// same ReplaySpec reproduces a recording bit for bit (see
// internal/replay and the chaos matrices that enforce it).
type Recording = replay.Recording

// RecordingMeta stamps a recording with the run's identity.
type RecordingMeta = replay.Meta

// RecordingFrame is one recorded trace event with its sequence number.
type RecordingFrame = replay.Frame

// Recorder captures a run as it executes; wire its Observe/Progress/
// Lifecycle hooks into the supervisor and job store, then seal with
// Finish.
type Recorder = replay.Recorder

// ReplaySpec is the complete replayable input of one supervised run:
// instance, seed, misspecification, resume flag, and scripted fault
// plan.
type ReplaySpec = replay.Spec

// NewRecorder starts a recording stamped with meta.
func NewRecorder(meta RecordingMeta) *Recorder { return replay.NewRecorder(meta) }

// RecordRun executes spec under sup and records it; a crashed run
// returns its partial recording alongside the error.
func RecordRun(ctx context.Context, sup *Supervisor, spec ReplaySpec) (*Recording, error) {
	return replay.Run(ctx, sup, spec)
}

// Replay re-executes spec and asserts bit-identical equivalence with
// the recording want, returning the re-run's recording and the first
// divergence (as an error) if any.
func Replay(ctx context.Context, sup *Supervisor, spec ReplaySpec, want *Recording) (*Recording, error) {
	return replay.Replay(ctx, sup, spec, want)
}

// DiffRecordings describes the first divergence between two recordings;
// empty means their canonical forms are bit-identical.
func DiffRecordings(a, b *Recording) (string, error) { return replay.Diff(a, b) }

// DecodeRecording parses a recording's canonical JSON form (as served
// by chainserve's GET /v1/jobs/{id}/trace or written to -record-dir).
func DecodeRecording(data []byte) (*Recording, error) { return replay.Decode(data) }

// FaultPoint names one fault-injection point threaded through the
// supervisor's checkpoint commit protocol and the job-store journal;
// see internal/fault for the catalogue.
type FaultPoint = fault.Point

// FaultInjector decides, at each fault point, whether to mutate the
// in-flight payload or kill the process-equivalent; injectors are a
// test seam and nil (the production value) costs one predictable
// branch per point.
type FaultInjector = fault.Injector

// FaultScript is a deterministic injector: it fires once, at the N-th
// hit of one point, optionally mutating the payload and/or crashing.
type FaultScript = fault.Script

// ErrInjectedCrash is the sentinel a scripted crash surfaces as; a run
// ending in it corresponds to a process that died at the fault point.
var ErrInjectedCrash = fault.ErrCrash

// TraceEvent is one step of a replayed or supervised execution.
type TraceEvent = sim.TraceEvent

// TraceExecution replays a single execution with the given seed and
// returns its event log.
func TraceExecution(c *Chain, p Platform, s *Schedule, seed uint64) ([]TraceEvent, error) {
	return sim.Trace(c, p, s, seed)
}

// FormatTrace renders an event log, one line per event.
func FormatTrace(events []TraceEvent) string { return sim.FormatTrace(events) }

// Package instance defines the on-disk JSON bundle the command-line
// tools exchange: a task chain, a platform, optional per-boundary data
// sizes (cost multipliers) and an optional schedule. It lets users plan
// once and re-simulate, archive planning inputs next to experiment
// results, and hand-edit instances — the workflow the paper's released
// simulator supported with MATLAB scripts.
package instance

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Instance bundles everything needed to reproduce one planning or
// simulation run.
type Instance struct {
	// Name labels the instance in reports.
	Name string `json:"name,omitempty"`
	// Chain is the task graph.
	Chain *chain.Chain `json:"chain"`
	// Platform carries error rates and baseline costs.
	Platform platform.Platform `json:"platform"`
	// Sizes, when present, scales the platform costs per boundary (the
	// relative data volume at each boundary; see platform.ScaledCosts).
	Sizes []float64 `json:"boundary_sizes,omitempty"`
	// Schedule, when present, is a previously planned placement.
	Schedule *schedule.Schedule `json:"schedule,omitempty"`
}

// Validate checks internal consistency.
func (in *Instance) Validate() error {
	if in.Chain == nil || in.Chain.Len() == 0 {
		return fmt.Errorf("instance: missing chain")
	}
	if err := in.Platform.Validate(); err != nil {
		return fmt.Errorf("instance: %w", err)
	}
	if in.Sizes != nil && len(in.Sizes) != in.Chain.Len() {
		return fmt.Errorf("instance: %d boundary sizes for %d tasks", len(in.Sizes), in.Chain.Len())
	}
	if in.Schedule != nil {
		if in.Schedule.Len() != in.Chain.Len() {
			return fmt.Errorf("instance: schedule for %d tasks but chain has %d",
				in.Schedule.Len(), in.Chain.Len())
		}
		if err := in.Schedule.Validate(); err != nil {
			return fmt.Errorf("instance: %w", err)
		}
	}
	if _, err := in.Costs(); err != nil {
		return err
	}
	return nil
}

// Costs derives the per-boundary cost table, or nil when the instance
// uses the platform constants.
func (in *Instance) Costs() (*platform.Costs, error) {
	if in.Sizes == nil {
		return nil, nil
	}
	costs, err := platform.ScaledCosts(in.Platform, in.Sizes)
	if err != nil {
		return nil, fmt.Errorf("instance: %w", err)
	}
	return costs, nil
}

// Load reads and validates an instance from r.
func Load(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// Save writes the instance as indented JSON.
func (in *Instance) Save(w io.Writer) error {
	if err := in.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// LoadFile reads an instance from a file.
func LoadFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("instance: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// SaveFile writes an instance to a file.
func (in *Instance) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("instance: %w", err)
	}
	if err := in.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

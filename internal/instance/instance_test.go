package instance

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func sample(t *testing.T) *Instance {
	t.Helper()
	c, err := workload.HighLow(10, 25000, 0.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.PlanADMVStar(c, platform.Hera())
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{
		Name:     "sample",
		Chain:    c,
		Platform: platform.Hera(),
		Sizes:    []float64{1, 1, 2, 2, 1, 1, 1, 0.5, 0.5, 1},
		Schedule: res.Schedule,
	}
}

func TestRoundTrip(t *testing.T) {
	in := sample(t)
	var buf bytes.Buffer
	if err := in.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != in.Name || back.Chain.Len() != 10 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Platform != in.Platform {
		t.Error("platform mismatch")
	}
	if !back.Schedule.Equal(in.Schedule) {
		t.Error("schedule mismatch")
	}
	if back.Chain.TotalWeight() != in.Chain.TotalWeight() {
		t.Error("chain weights mismatch")
	}
	costs, err := back.Costs()
	if err != nil {
		t.Fatal(err)
	}
	if costs == nil || costs.At(3).CM != 2*platform.Hera().CM {
		t.Error("costs not derived from sizes")
	}
}

func TestFileRoundTrip(t *testing.T) {
	in := sample(t)
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := in.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Chain.Len() != in.Chain.Len() {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestNilCostsWhenNoSizes(t *testing.T) {
	in := sample(t)
	in.Sizes = nil
	costs, err := in.Costs()
	if err != nil || costs != nil {
		t.Errorf("Costs() = %v, %v; want nil, nil", costs, err)
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Instance)
	}{
		{"no chain", func(in *Instance) { in.Chain = nil }},
		{"bad platform", func(in *Instance) { in.Platform.LambdaF = -1 }},
		{"size mismatch", func(in *Instance) { in.Sizes = []float64{1, 2} }},
		{"negative size", func(in *Instance) { in.Sizes[0] = -1 }},
		{"schedule mismatch", func(in *Instance) {
			in.Schedule = schedule.MustNew(3)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := sample(t)
			tc.mut(in)
			if err := in.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
			var buf bytes.Buffer
			if err := in.Save(&buf); err == nil {
				t.Error("Save must validate")
			}
		})
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	js := `{"chain":[{"weight":1}],"platform":{"name":"x","recall":0.8},"bogus":1}`
	if _, err := Load(strings.NewReader(js)); err == nil {
		t.Error("unknown fields should fail")
	}
}

func TestLoadMinimal(t *testing.T) {
	js := `{
		"chain": [{"weight": 100}, {"weight": 200}],
		"platform": {"name": "tiny", "lambda_f": 1e-6, "lambda_s": 1e-6,
			"c_d": 10, "c_m": 1, "r_d": 10, "r_m": 1,
			"v_star": 1, "v": 0.01, "recall": 0.8}
	}`
	in, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if in.Chain.Len() != 2 || in.Schedule != nil || in.Sizes != nil {
		t.Errorf("minimal instance: %+v", in)
	}
	// A loaded chain must have working prefix sums.
	if got := in.Chain.SegmentWeight(0, 2); got != 300 {
		t.Errorf("SegmentWeight = %g", got)
	}
}

// Package ops is the actuation half of the observability plane: it
// consumes the signals internal/obs collects and drives the knobs the
// rest of the stack already exposes. Three coupled pieces close the
// loop:
//
//   - Tracker (slo.go) keeps per-route latency objectives and computes
//     multi-window burn rates (fast/slow) from deltas of histogram
//     snapshots, in the Google-SRE sense: burn = badFraction/(1-objective),
//     where 1.0 means the error budget is being consumed exactly at the
//     rate that exhausts it at the window's end.
//   - Tuner (tuner.go) periodically reads the kernel's live size
//     histogram, calls Engine.Tune for scratch-pool retuning and
//     retargets per-solve parallelism for the observed size regime,
//     recording every decision as a structured TuningEvent.
//   - Controller (admission.go) is a bounded admission gate ahead of
//     the shard pools: two priority classes, per-request deadlines, and
//     burn-rate-coupled load-shedding that drops batch work first.
//
// Determinism bar: nothing in this package may change plan bytes.
// Tuning only swaps scratch pools and solve-team widths (the DP
// recurrence is identical at every width) and admission only decides
// when/whether work runs — both proven by the cross-validation suite.
package ops

import (
	"chainckpt/internal/obs"
)

// Class labels the two admission priorities. Interactive work (plan
// requests a caller is waiting on) is granted slots before batch work
// (sweeps, background jobs) and is the last to be shed.
type Class int

const (
	Interactive Class = iota
	Batch
	numClasses
)

// String returns the metric label for the class.
func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "interactive"
}

// Metrics bundles the ops-plane instrument families. Construct with
// NewMetrics; the zero value (or nil) disables recording — every use
// inside the package is nil-safe, mirroring engine.Metrics.
type Metrics struct {
	// SLO families.
	BurnRate  *obs.GaugeVec // chainckpt_slo_burn_rate{slo,window}
	Objective *obs.GaugeVec // chainckpt_slo_objective{slo}
	BadFrac   *obs.GaugeVec // chainckpt_slo_bad_fraction{slo,window}
	WindowObs *obs.GaugeVec // chainckpt_slo_window_requests{slo,window}
	Shedding  *obs.Gauge    // chainckpt_slo_shedding

	// Admission families.
	Admitted        *obs.CounterVec   // chainckpt_admission_admitted_total{class}
	Shed            *obs.CounterVec   // chainckpt_admission_shed_total{class,reason}
	Deadline        *obs.CounterVec   // chainckpt_admission_deadline_total{class}
	Canceled        *obs.CounterVec   // chainckpt_admission_canceled_total{class}
	QueueWait       *obs.HistogramVec // chainckpt_admission_queue_wait_seconds{class}
	QueueDepth      *obs.GaugeVec     // chainckpt_admission_queue_depth{class}
	InFlight        *obs.Gauge        // chainckpt_admission_in_flight
	ConcurrentLimit *obs.Gauge        // chainckpt_admission_concurrent_limit

	// Tuner families.
	TunerCycles        *obs.CounterVec // chainckpt_tuner_cycles_total{trigger}
	TunerActions       *obs.CounterVec // chainckpt_tuner_events_total{action}
	TunerWorkers       *obs.Gauge      // chainckpt_tuner_solve_workers
	TunerBucketWorkers *obs.GaugeVec   // chainckpt_tuner_bucket_workers{bucket}
}

// NewMetrics registers the ops-plane families on reg and returns the
// bundle. Nil reg returns nil (uninstrumented plane).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		BurnRate: reg.NewGaugeVec("chainckpt_slo_burn_rate",
			"Error-budget burn rate per SLO and window (1.0 = budget exhausted exactly at window end).",
			"slo", "window"),
		Objective: reg.NewGaugeVec("chainckpt_slo_objective",
			"Configured objective (fraction of requests that must meet the latency threshold) per SLO.",
			"slo"),
		BadFrac: reg.NewGaugeVec("chainckpt_slo_bad_fraction",
			"Fraction of requests over the latency threshold per SLO and window.",
			"slo", "window"),
		WindowObs: reg.NewGaugeVec("chainckpt_slo_window_requests",
			"Requests observed inside the window per SLO.",
			"slo", "window"),
		Shedding: reg.NewGauge("chainckpt_slo_shedding",
			"1 while burn-rate-coupled load-shedding of batch work is active, else 0."),

		Admitted: reg.NewCounterVec("chainckpt_admission_admitted_total",
			"Requests granted an execution slot, by class.",
			"class"),
		Shed: reg.NewCounterVec("chainckpt_admission_shed_total",
			"Requests rejected by admission control, by class and reason (queue_full, burn).",
			"class", "reason"),
		Deadline: reg.NewCounterVec("chainckpt_admission_deadline_total",
			"Requests whose deadline expired before a slot was granted, by class.",
			"class"),
		Canceled: reg.NewCounterVec("chainckpt_admission_canceled_total",
			"Requests canceled by the client while queued, by class.",
			"class"),
		QueueWait: reg.NewHistogramVec("chainckpt_admission_queue_wait_seconds",
			"Time admitted requests spent queued before their slot was granted.",
			nil, "class"),
		QueueDepth: reg.NewGaugeVec("chainckpt_admission_queue_depth",
			"Requests currently waiting in the admission queue, by class.",
			"class"),
		InFlight: reg.NewGauge("chainckpt_admission_in_flight",
			"Requests currently holding an admission slot."),
		ConcurrentLimit: reg.NewGauge("chainckpt_admission_concurrent_limit",
			"Current execution-slot bound; moves inside the configured [min,max] band when the tuner's adaptive-concurrency loop is on."),

		TunerCycles: reg.NewCounterVec("chainckpt_tuner_cycles_total",
			"Self-tune cycles run, by trigger (periodic, forced).",
			"trigger"),
		TunerActions: reg.NewCounterVec("chainckpt_tuner_events_total",
			"Self-tune decisions, by action (retune, keep).",
			"action"),
		TunerWorkers: reg.NewGauge("chainckpt_tuner_solve_workers",
			"Per-solve parallelism currently targeted by the tuner (engine convention: 1 serial, -1 auto, >1 pinned)."),
		TunerBucketWorkers: reg.NewGaugeVec("chainckpt_tuner_bucket_workers",
			"Per-size-bucket solve parallelism targeted by the tuner, labeled by bucket capacity (engine convention: 1 serial, -1 auto, >1 pinned).",
			"bucket"),
	}
}

// MergeSnapshots sums same-layout histogram snapshots — the way an SLO
// spanning several routes combines their per-route histograms. Any
// snapshot whose layout disagrees with the first non-empty one is
// skipped (never silently misaligned).
func MergeSnapshots(snaps ...obs.HistogramSnapshot) obs.HistogramSnapshot {
	var out obs.HistogramSnapshot
	for _, s := range snaps {
		if len(s.Cum) == 0 {
			continue
		}
		if len(out.Cum) == 0 {
			out = obs.HistogramSnapshot{
				Uppers: s.Uppers,
				Cum:    append([]uint64(nil), s.Cum...),
				Sum:    s.Sum,
			}
			continue
		}
		if len(s.Cum) != len(out.Cum) || len(s.Uppers) != len(out.Uppers) {
			continue
		}
		for i := range s.Cum {
			out.Cum[i] += s.Cum[i]
		}
		out.Sum += s.Sum
	}
	return out
}

package ops

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ShedError is returned when admission rejects a request outright —
// the queue for its class is full, or burn-coupled shedding is active
// and the request is batch-class. HTTP handlers map it to 429 with the
// Retry-After hint.
type ShedError struct {
	// Class the rejected request belonged to.
	Class Class
	// Reason is the metric label: "queue_full" or "burn".
	Reason string
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: %s request shed (%s), retry after %s", e.Class, e.Reason, e.RetryAfter)
}

// ErrDeadlineExceeded reports a request whose deadline expired before
// a slot could be granted — either already expired on arrival, or
// while queued. Maps to 503 (the work was accepted but could not be
// served in time), distinct from a shed.
var ErrDeadlineExceeded = errors.New("admission: deadline exceeded before slot granted")

// ErrCanceled reports a request whose client went away while queued.
var ErrCanceled = errors.New("admission: canceled while queued")

// ErrClosed reports a controller that has been shut down.
var ErrClosed = errors.New("admission: controller closed")

// ControllerConfig bounds a Controller. Zero values pick the noted
// defaults.
type ControllerConfig struct {
	// MaxConcurrent is the number of execution slots (default 64).
	MaxConcurrent int
	// MaxQueue bounds each class's wait queue (default 256). A request
	// arriving at a full queue is shed immediately with "queue_full".
	MaxQueue int
	// RetryAfter is the backoff hint stamped on ShedErrors (default 1s).
	RetryAfter time.Duration
	// Now is the clock (default time.Now). Injectable for tests.
	Now func() time.Time
}

type waiter struct {
	class Class
	enq   time.Time
	// res receives exactly one value: nil when a slot was granted, or
	// the shed error when swept. Buffered so the granting/sweeping side
	// never blocks on a waiter that is concurrently timing out.
	res chan error
	// granted marks a waiter that was handed a slot; checked under the
	// controller mutex by the cancellation path to decide whether a
	// slot must be returned.
	granted bool
	// abandoned marks a waiter whose requester gave up (deadline or
	// cancel); the grant loop skips it without consuming a slot.
	abandoned bool
}

// Controller is the bounded admission gate ahead of the shard pools.
// Admit blocks until an execution slot is granted, the context ends,
// or the request is shed; the returned release function must be called
// exactly once when the admitted work finishes. Interactive waiters
// are always granted before batch waiters; within a class, FIFO.
type Controller struct {
	cfg ControllerConfig
	m   *Metrics

	mu       chan struct{} // 1-buffered semaphore used as the lock (keeps lock ordering trivial)
	inFlight int
	shedding bool
	closed   bool
	queues   [numClasses][]*waiter
}

// NewController builds a Controller. Metrics may be nil.
func NewController(cfg ControllerConfig, m *Metrics) *Controller {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 64
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 256
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Controller{cfg: cfg, m: m, mu: make(chan struct{}, 1)}
	c.mu <- struct{}{}
	c.setLimitGauge(cfg.MaxConcurrent)
	return c
}

// MaxConcurrent reports the current execution-slot bound.
func (c *Controller) MaxConcurrent() int {
	if c == nil {
		return 0
	}
	c.lock()
	defer c.unlock()
	return c.cfg.MaxConcurrent
}

// SetMaxConcurrent retargets the execution-slot bound on a live
// controller (clamped to at least 1) — the actuator behind the tuner's
// adaptive-concurrency loop. Raising the bound grants freed capacity to
// queued waiters immediately; lowering it never interrupts in-flight
// work, the excess simply drains as slots are released and no new
// grants happen above the new bound.
func (c *Controller) SetMaxConcurrent(n int) {
	if c == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	c.lock()
	changed := n != c.cfg.MaxConcurrent
	c.cfg.MaxConcurrent = n
	if changed {
		c.grantLocked()
		c.gauges()
	}
	c.unlock()
	if changed {
		c.setLimitGauge(n)
	}
}

func (c *Controller) setLimitGauge(n int) {
	if c.m != nil && c.m.ConcurrentLimit != nil {
		c.m.ConcurrentLimit.Set(float64(n))
	}
}

func (c *Controller) lock()   { <-c.mu }
func (c *Controller) unlock() { c.mu <- struct{}{} }

// Admit requests an execution slot for one unit of work in the given
// class. It returns a release function to call when the work is done,
// or an error: *ShedError (rejected, tell the client to back off),
// ErrDeadlineExceeded (ctx deadline hit before a slot was free),
// ErrCanceled (ctx canceled while queued), or ErrClosed.
func (c *Controller) Admit(ctx context.Context, class Class) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	if class != Batch {
		class = Interactive
	}
	// A deadline that has already passed never queues: the client is
	// gone before the work could matter.
	select {
	case <-ctx.Done():
		return nil, c.doneErr(ctx, class)
	default:
	}

	c.lock()
	if c.closed {
		c.unlock()
		return nil, ErrClosed
	}
	if c.shedding && class == Batch {
		c.unlock()
		return nil, c.shed(class, "burn")
	}
	if c.inFlight < c.cfg.MaxConcurrent && c.queueEmptyLocked() {
		c.inFlight++
		c.gauges()
		c.unlock()
		c.m.incAdmitted(class.String())
		c.observeWait(class, 0)
		return c.releaseFunc(), nil
	}
	if len(c.queues[class]) >= c.cfg.MaxQueue {
		c.unlock()
		return nil, c.shed(class, "queue_full")
	}
	w := &waiter{class: class, enq: c.cfg.Now(), res: make(chan error, 1)}
	c.queues[class] = append(c.queues[class], w)
	// Re-run the grant loop under the same lock: the enqueue may have
	// raced a release that found the queue empty, and a higher-priority
	// arrival must not strand free slots behind it.
	c.grantLocked()
	c.gauges()
	c.unlock()

	select {
	case err := <-w.res:
		if err != nil {
			return nil, err
		}
		c.m.incAdmitted(class.String())
		c.observeWait(class, c.cfg.Now().Sub(w.enq).Seconds())
		return c.releaseFunc(), nil
	case <-ctx.Done():
		c.lock()
		if w.granted {
			// The grant raced the cancellation: a slot was assigned
			// between ctx.Done firing and us taking the lock. Hand it
			// straight back so nothing leaks.
			c.releaseLocked()
			c.gauges()
			c.unlock()
			return nil, c.doneErr(ctx, class)
		}
		w.abandoned = true
		c.removeLocked(w)
		c.gauges()
		c.unlock()
		return nil, c.doneErr(ctx, class)
	}
}

// SetShedding switches burn-coupled shedding on or off. Turning it on
// immediately sweeps every queued batch waiter (the "shed storm"): each
// is failed with a burn ShedError, releasing its queue slot, while
// queued interactive waiters are untouched.
func (c *Controller) SetShedding(on bool) {
	if c == nil {
		return
	}
	c.lock()
	was := c.shedding
	c.shedding = on
	var swept []*waiter
	if on && !was {
		swept = c.queues[Batch]
		c.queues[Batch] = nil
	}
	c.gauges()
	if c.m != nil {
		v := 0.0
		if on {
			v = 1
		}
		c.m.Shedding.Set(v)
	}
	c.unlock()
	for _, w := range swept {
		w.res <- c.shed(Batch, "burn")
	}
}

// Shedding reports whether batch shedding is currently active.
func (c *Controller) Shedding() bool {
	if c == nil {
		return false
	}
	c.lock()
	defer c.unlock()
	return c.shedding
}

// InFlight reports the number of slots currently held.
func (c *Controller) InFlight() int {
	if c == nil {
		return 0
	}
	c.lock()
	defer c.unlock()
	return c.inFlight
}

// QueueDepth reports the current queue length for a class.
func (c *Controller) QueueDepth(class Class) int {
	if c == nil {
		return 0
	}
	c.lock()
	defer c.unlock()
	return len(c.queues[class])
}

// Close fails every queued waiter with ErrClosed and rejects all
// future Admits. Held slots may still be released afterwards.
func (c *Controller) Close() {
	if c == nil {
		return
	}
	c.lock()
	if c.closed {
		c.unlock()
		return
	}
	c.closed = true
	var swept []*waiter
	for cl := range c.queues {
		swept = append(swept, c.queues[cl]...)
		c.queues[cl] = nil
	}
	c.gauges()
	c.unlock()
	for _, w := range swept {
		w.res <- ErrClosed
	}
}

func (c *Controller) releaseFunc() func() {
	released := false
	return func() {
		c.lock()
		if !released {
			released = true
			c.releaseLocked()
			c.gauges()
		}
		c.unlock()
	}
}

// releaseLocked frees one slot and grants it to the next waiter —
// interactive first, FIFO within the class — skipping waiters whose
// requester has already abandoned them.
func (c *Controller) releaseLocked() {
	c.inFlight--
	c.grantLocked()
}

func (c *Controller) grantLocked() {
	for c.inFlight < c.cfg.MaxConcurrent {
		w := c.popLocked()
		if w == nil {
			return
		}
		w.granted = true
		c.inFlight++
		w.res <- nil
	}
}

func (c *Controller) popLocked() *waiter {
	for class := Interactive; class < numClasses; class++ {
		for len(c.queues[class]) > 0 {
			w := c.queues[class][0]
			c.queues[class] = c.queues[class][1:]
			if w.abandoned {
				continue
			}
			return w
		}
	}
	return nil
}

func (c *Controller) queueEmptyLocked() bool {
	for class := range c.queues {
		for _, w := range c.queues[class] {
			if !w.abandoned {
				return false
			}
		}
	}
	return true
}

func (c *Controller) removeLocked(w *waiter) {
	q := c.queues[w.class]
	for i := range q {
		if q[i] == w {
			c.queues[w.class] = append(q[:i:i], q[i+1:]...)
			return
		}
	}
}

func (c *Controller) shed(class Class, reason string) *ShedError {
	if c.m != nil {
		c.m.Shed.With(class.String(), reason).Inc()
	}
	return &ShedError{Class: class, Reason: reason, RetryAfter: c.cfg.RetryAfter}
}

func (c *Controller) doneErr(ctx context.Context, class Class) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		c.m.incDeadline(class.String())
		return ErrDeadlineExceeded
	}
	c.m.incCanceled(class.String())
	return ErrCanceled
}

// Nil-safe counter helpers: every metrics touch in the controller goes
// through one of these so an uninstrumented controller (m == nil)
// costs nothing and panics never.
func (m *Metrics) incAdmitted(class string) {
	if m != nil {
		m.Admitted.With(class).Inc()
	}
}

func (m *Metrics) incDeadline(class string) {
	if m != nil {
		m.Deadline.With(class).Inc()
	}
}

func (m *Metrics) incCanceled(class string) {
	if m != nil {
		m.Canceled.With(class).Inc()
	}
}

func (c *Controller) observeWait(class Class, seconds float64) {
	if c.m != nil {
		c.m.QueueWait.With(class.String()).Observe(seconds)
	}
}

func (c *Controller) gauges() {
	if c.m == nil {
		return
	}
	c.m.InFlight.Set(float64(c.inFlight))
	for class := Interactive; class < numClasses; class++ {
		n := 0
		for _, w := range c.queues[class] {
			if !w.abandoned {
				n++
			}
		}
		c.m.QueueDepth.With(class.String()).Set(float64(n))
	}
}

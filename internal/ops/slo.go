package ops

import (
	"math"
	"sync"
	"time"

	"chainckpt/internal/obs"
)

// SLO declares one latency objective: at least Objective of the
// requests observed by Source must complete within Threshold seconds.
// Source returns the current cumulative snapshot of the underlying
// histogram(s) — typically a route latency histogram, or a
// MergeSnapshots over several routes.
type SLO struct {
	// Name labels the objective in metrics and the admin view.
	Name string `json:"name"`
	// Threshold is the latency objective in seconds.
	Threshold float64 `json:"threshold_seconds"`
	// Objective is the target good fraction in (0,1), e.g. 0.99.
	Objective float64 `json:"objective"`
	// Source yields the cumulative snapshot burn rates are computed
	// over. Not serialized.
	Source func() obs.HistogramSnapshot `json:"-"`
}

// WindowStatus is the burn computation over one window of one SLO.
type WindowStatus struct {
	// Window is the nominal window length.
	Window time.Duration `json:"window"`
	// Span is the actual span covered — shorter than Window until the
	// sample ring has aged enough history.
	Span time.Duration `json:"span"`
	// Requests observed inside the window.
	Requests uint64 `json:"requests"`
	// BadFraction is the fraction of those over the threshold.
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate = BadFraction / (1 - Objective); 1.0 burns the error
	// budget exactly at the rate that exhausts it at the window's end.
	BurnRate float64 `json:"burn_rate"`
	// P50/P99 are interpolated latency quantiles over the window.
	P50 float64 `json:"p50_seconds"`
	P99 float64 `json:"p99_seconds"`
}

// SLOStatus is the admin/JSON view of one tracked objective.
type SLOStatus struct {
	Name      string       `json:"name"`
	Threshold float64      `json:"threshold_seconds"`
	Objective float64      `json:"objective"`
	Fast      WindowStatus `json:"fast"`
	Slow      WindowStatus `json:"slow"`
}

// TrackerConfig sizes a Tracker. Zero values pick the defaults noted
// on each field.
type TrackerConfig struct {
	// FastWindow is the short burn window (default 5m).
	FastWindow time.Duration
	// SlowWindow is the long burn window (default 1h).
	SlowWindow time.Duration
	// SampleInterval is the cadence Sample is expected to be called at;
	// it sizes the ring so SlowWindow stays covered (default 10s).
	SampleInterval time.Duration
	// Now is the clock (default time.Now). Injectable for tests.
	Now func() time.Time
}

type sloSample struct {
	at   time.Time
	snap obs.HistogramSnapshot
}

type sloState struct {
	slo  SLO
	ring []sloSample // chronological; bounded by Tracker.cap
}

// Tracker computes multi-window burn rates for a set of SLOs from
// periodic snapshots of their source histograms, and exports them as
// chainckpt_slo_* gauges. Sample appends to the ring; Report and the
// gauges read window deltas out of it. Safe for concurrent use.
type Tracker struct {
	cfg TrackerConfig
	m   *Metrics
	cap int

	mu   sync.Mutex
	slos []*sloState
}

// NewTracker builds a tracker over the given SLOs. Metrics may be nil.
func NewTracker(cfg TrackerConfig, m *Metrics, slos ...SLO) *Tracker {
	if cfg.FastWindow <= 0 {
		cfg.FastWindow = 5 * time.Minute
	}
	if cfg.SlowWindow <= 0 {
		cfg.SlowWindow = time.Hour
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 10 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &Tracker{
		cfg: cfg,
		m:   m,
		// Enough samples to cover the slow window at the sample cadence,
		// plus slack for jitter; bounded so a misconfigured cadence
		// cannot balloon memory.
		cap: clampInt(int(cfg.SlowWindow/cfg.SampleInterval)+4, 8, 4096),
	}
	for _, s := range slos {
		if s.Objective <= 0 || s.Objective >= 1 {
			s.Objective = 0.99
		}
		t.slos = append(t.slos, &sloState{slo: s})
		if m != nil {
			m.Objective.With(s.Name).Set(s.Objective)
		}
	}
	return t
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Sample snapshots every SLO source, appends to the rings, and
// refreshes the exported gauges. Call it on a fixed cadence (and from
// an OnScrape hook if scrape-fresh gauges are wanted — appends closer
// together than half the sample interval reuse the ring slot instead
// of growing it, so scrapes cannot starve the window coverage).
func (t *Tracker) Sample() {
	if t == nil {
		return
	}
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, st := range t.slos {
		snap := st.slo.Source()
		if n := len(st.ring); n > 0 && now.Sub(st.ring[n-1].at) < t.cfg.SampleInterval/2 {
			st.ring[n-1] = sloSample{at: now, snap: snap}
		} else {
			st.ring = append(st.ring, sloSample{at: now, snap: snap})
			if len(st.ring) > t.cap {
				st.ring = st.ring[len(st.ring)-t.cap:]
			}
		}
		t.exportLocked(st, now)
	}
}

// Report returns the current status of every SLO, computed over the
// already-recorded samples (it does not itself take a new sample).
func (t *Tracker) Report() []SLOStatus {
	if t == nil {
		return nil
	}
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SLOStatus, 0, len(t.slos))
	for _, st := range t.slos {
		out = append(out, t.statusLocked(st, now))
	}
	return out
}

// MaxFastBurn returns the highest fast-window burn rate across all
// SLOs — the signal the burn-coupled load-shedder keys on.
func (t *Tracker) MaxFastBurn() float64 {
	if t == nil {
		return 0
	}
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	max := 0.0
	for _, st := range t.slos {
		if w := t.windowLocked(st, now, t.cfg.FastWindow); w.BurnRate > max {
			max = w.BurnRate
		}
	}
	return max
}

func (t *Tracker) statusLocked(st *sloState, now time.Time) SLOStatus {
	return SLOStatus{
		Name:      st.slo.Name,
		Threshold: st.slo.Threshold,
		Objective: st.slo.Objective,
		Fast:      t.windowLocked(st, now, t.cfg.FastWindow),
		Slow:      t.windowLocked(st, now, t.cfg.SlowWindow),
	}
}

// windowLocked computes the burn over the trailing window: the delta
// between the newest sample and the sample closest to (but not newer
// than) the window start. With too little history the whole ring is
// the window — Span reports the truth.
func (t *Tracker) windowLocked(st *sloState, now time.Time, window time.Duration) WindowStatus {
	ws := WindowStatus{Window: window}
	n := len(st.ring)
	if n == 0 {
		return ws
	}
	newest := st.ring[n-1]
	start := now.Add(-window)
	base := st.ring[0]
	for i := n - 1; i >= 0; i-- {
		if !st.ring[i].at.After(start) {
			base = st.ring[i]
			break
		}
	}
	delta := newest.snap
	if base.at.Before(newest.at) {
		delta = newest.snap.Sub(base.snap)
		ws.Span = newest.at.Sub(base.at)
	}
	ws.Requests = delta.Count()
	ws.BadFraction = delta.FractionOver(st.slo.Threshold)
	budget := 1 - st.slo.Objective
	if budget > 0 {
		ws.BurnRate = ws.BadFraction / budget
	}
	if p := delta.Quantile(0.50); !math.IsNaN(p) {
		ws.P50 = p
	}
	if p := delta.Quantile(0.99); !math.IsNaN(p) {
		ws.P99 = p
	}
	return ws
}

func (t *Tracker) exportLocked(st *sloState, now time.Time) {
	if t.m == nil {
		return
	}
	fast := t.windowLocked(st, now, t.cfg.FastWindow)
	slow := t.windowLocked(st, now, t.cfg.SlowWindow)
	name := st.slo.Name
	t.m.BurnRate.With(name, "fast").Set(fast.BurnRate)
	t.m.BurnRate.With(name, "slow").Set(slow.BurnRate)
	t.m.BadFrac.With(name, "fast").Set(fast.BadFraction)
	t.m.BadFrac.With(name, "slow").Set(slow.BadFraction)
	t.m.WindowObs.With(name, "fast").Set(float64(fast.Requests))
	t.m.WindowObs.With(name, "slow").Set(float64(slow.Requests))
}

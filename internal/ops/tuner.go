package ops

import (
	"sync"
	"time"
)

// TunableEngine is the slice of the planning engine the tuner drives:
// scratch-pool retuning plus live retargeting of per-solve
// parallelism. internal/engine.Engine satisfies it.
type TunableEngine interface {
	// Tune installs exact-capacity scratch pools for the hottest window
	// lengths (core.Kernel.Tune semantics).
	Tune()
	// SolveWorkers reports the current per-solve parallelism in the
	// engine Options convention: 1 serial, negative auto, >1 pinned.
	SolveWorkers() int
	// SetSolveWorkers retargets it, same convention.
	SetSolveWorkers(n int)
}

// SizeCount is one row of the kernel's solve-size histogram.
type SizeCount struct {
	N      int    `json:"n"`
	Solves uint64 `json:"solves"`
}

// TunerConfig parameterizes the regime policy. Zero values pick the
// noted defaults.
type TunerConfig struct {
	// Sizes yields the cumulative per-n solve histogram (engine
	// Stats().Kernel.Sizes projected to SizeCount). Required.
	Sizes func() []SizeCount
	// LargeN is the window length at and above which a solve benefits
	// from a worker team (default 192, the solver's auto crossover).
	LargeN int
	// LargeShare is the fraction of a cycle's solves that must be
	// large before the tuner targets auto parallelism (default 0.5).
	LargeShare float64
	// MinSamples is the minimum solves a cycle must observe before the
	// regime decision is trusted (default 16; below it the tuner keeps
	// the current setting).
	MinSamples uint64
	// HistoryCap bounds the tuning-event ring (default 64).
	HistoryCap int
	// Now is the clock (default time.Now). Injectable for tests.
	Now func() time.Time
}

// TuningEvent records one self-tune cycle: what the tuner saw, what it
// decided, and the config before/after. Served by GET /v1/admin/tune.
type TuningEvent struct {
	Time    time.Time `json:"time"`
	Trigger string    `json:"trigger"` // "periodic" or "forced"
	Action  string    `json:"action"`  // "retune" or "keep"
	// OldSolveWorkers/NewSolveWorkers in the engine convention
	// (1 serial, -1 auto, >1 pinned).
	OldSolveWorkers int `json:"old_solve_workers"`
	NewSolveWorkers int `json:"new_solve_workers"`
	// CycleSolves / CycleLarge count the solves observed since the
	// previous cycle, and how many were at or above LargeN.
	CycleSolves uint64  `json:"cycle_solves"`
	CycleLarge  uint64  `json:"cycle_large"`
	LargeShare  float64 `json:"large_share"`
	// TopSizes is the triggering snapshot: the hottest window lengths
	// of the cycle (at most 8 rows).
	TopSizes []SizeCount `json:"top_sizes,omitempty"`
}

// Tuner closes the loop between the kernel's live solve-size histogram
// and the engine's parallelism/scratch configuration. Every RunCycle
// calls Engine.Tune (cheap, always safe) and then decides the solve
// worker regime from the solves recorded since the previous cycle:
// mostly-large workloads get the solver's crossover-gated auto mode,
// mostly-small workloads get the serial path (team overhead dominates
// below the crossover). Neither changes plan bytes — only how fast a
// solve runs.
type Tuner struct {
	cfg TunerConfig
	eng TunableEngine
	m   *Metrics

	mu      sync.Mutex
	last    map[int]uint64 // previous cycle's cumulative per-n counts
	history []TuningEvent
}

// NewTuner builds a Tuner driving eng. Metrics may be nil.
func NewTuner(cfg TunerConfig, eng TunableEngine, m *Metrics) *Tuner {
	if cfg.LargeN <= 0 {
		cfg.LargeN = 192
	}
	if cfg.LargeShare <= 0 || cfg.LargeShare >= 1 {
		cfg.LargeShare = 0.5
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 16
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	t := &Tuner{cfg: cfg, eng: eng, m: m}
	if m != nil && eng != nil {
		m.TunerWorkers.Set(float64(eng.SolveWorkers()))
	}
	return t
}

// RunCycle executes one self-tune cycle and returns its event. trigger
// is recorded verbatim ("periodic" from the cadence loop, "forced"
// from POST /v1/admin/tune).
func (t *Tuner) RunCycle(trigger string) TuningEvent {
	if t == nil || t.eng == nil {
		return TuningEvent{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	// Scratch-pool retuning first: idempotent, keeps warm pools for
	// still-hot sizes, and is useful in every regime.
	t.eng.Tune()

	ev := TuningEvent{
		Time:            t.cfg.Now(),
		Trigger:         trigger,
		Action:          "keep",
		OldSolveWorkers: t.eng.SolveWorkers(),
	}
	ev.NewSolveWorkers = ev.OldSolveWorkers

	// Delta the cumulative size histogram against the previous cycle
	// so the decision reflects the current traffic mix, not boot-time
	// history.
	var sizes []SizeCount
	if t.cfg.Sizes != nil {
		sizes = t.cfg.Sizes()
	}
	cur := make(map[int]uint64, len(sizes))
	var cycle []SizeCount
	for _, s := range sizes {
		cur[s.N] = s.Solves
		d := s.Solves
		if prev, ok := t.last[s.N]; ok {
			if prev >= s.Solves {
				d = 0
			} else {
				d = s.Solves - prev
			}
		}
		if d > 0 {
			cycle = append(cycle, SizeCount{N: s.N, Solves: d})
			ev.CycleSolves += d
			if s.N >= t.cfg.LargeN {
				ev.CycleLarge += d
			}
		}
	}
	t.last = cur
	if len(cycle) > 8 {
		cycle = cycle[:8]
	}
	ev.TopSizes = cycle

	if ev.CycleSolves >= t.cfg.MinSamples {
		ev.LargeShare = float64(ev.CycleLarge) / float64(ev.CycleSolves)
		target := 1 // small regime: serial, team overhead dominates
		if ev.LargeShare >= t.cfg.LargeShare {
			target = -1 // large regime: crossover-gated auto team
		}
		if target != ev.OldSolveWorkers {
			t.eng.SetSolveWorkers(target)
			ev.NewSolveWorkers = target
			ev.Action = "retune"
		}
	}

	t.history = append(t.history, ev)
	if len(t.history) > t.cfg.HistoryCap {
		t.history = t.history[len(t.history)-t.cfg.HistoryCap:]
	}
	if t.m != nil {
		t.m.TunerCycles.With(trigger).Inc()
		t.m.TunerActions.With(ev.Action).Inc()
		t.m.TunerWorkers.Set(float64(ev.NewSolveWorkers))
	}
	return ev
}

// History returns the recorded tuning events, oldest first.
func (t *Tuner) History() []TuningEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TuningEvent, len(t.history))
	copy(out, t.history)
	return out
}

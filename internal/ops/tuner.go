package ops

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"chainckpt/internal/core"
	"chainckpt/internal/obs"
)

// TunableEngine is the slice of the planning engine the tuner drives:
// scratch-pool retuning plus live retargeting of per-solve
// parallelism. internal/engine.Engine satisfies it.
type TunableEngine interface {
	// Tune installs exact-capacity scratch pools for the hottest window
	// lengths (core.Kernel.Tune semantics).
	Tune()
	// SolveWorkers reports the current per-solve parallelism in the
	// engine Options convention: 1 serial, negative auto, >1 pinned.
	SolveWorkers() int
	// SetSolveWorkers retargets it, same convention.
	SetSolveWorkers(n int)
}

// BucketTunableEngine is the optional widening of TunableEngine for
// engines that can pin a solve width per size bucket and retarget the
// auto crossover (internal/engine.Engine satisfies it). A tuner driving
// a plain TunableEngine simply skips the per-bucket half of its policy.
type BucketTunableEngine interface {
	TunableEngine
	// SetBucketSolveWorkers pins the width for the size bucket holding
	// window length n (engine convention; 0 clears the override).
	SetBucketSolveWorkers(n, workers int)
	// BucketSolveWorkers reports the live overrides, bucket cap → width.
	BucketSolveWorkers() map[int]int
	// SetAutoCrossover retargets the auto-engage window length.
	SetAutoCrossover(n int)
}

// AdmissionLimiter is the slice of the admission Controller the tuner's
// adaptive-concurrency loop drives.
type AdmissionLimiter interface {
	MaxConcurrent() int
	SetMaxConcurrent(n int)
}

// SizeCount is one row of the kernel's solve-size histogram.
type SizeCount struct {
	N      int    `json:"n"`
	Solves uint64 `json:"solves"`
}

// TunerConfig parameterizes the regime policy. Zero values pick the
// noted defaults.
type TunerConfig struct {
	// Sizes yields the cumulative per-n solve histogram (engine
	// Stats().Kernel.Sizes projected to SizeCount). Required.
	Sizes func() []SizeCount
	// LargeN is the window length at and above which a solve benefits
	// from a worker team (default 192, the solver's auto crossover).
	LargeN int
	// LargeShare is the fraction of a cycle's solves that must be
	// large before the tuner targets auto parallelism (default 0.5).
	LargeShare float64
	// MinSamples is the minimum solves a cycle must observe before the
	// regime decision is trusted (default 16; below it the tuner keeps
	// the current setting).
	MinSamples uint64
	// HistoryCap bounds the tuning-event ring (default 64).
	HistoryCap int
	// Now is the clock (default time.Now). Injectable for tests.
	Now func() time.Time

	// Hysteresis is how many consecutive cycles a per-size-bucket
	// regime vote must repeat before that bucket's width is flipped
	// (default 2). An oscillating traffic mix therefore never thrashes
	// a bucket: the streak resets every time the vote changes. The
	// global decision above is deliberately unaffected — it keeps the
	// immediate single-cycle behavior it has always had.
	Hysteresis int
	// Cooldown is how many cycles after a bucket flip before that
	// bucket may flip again (default 2), the second thrash guard.
	Cooldown int
	// Crossover, when positive, retargets the solver's auto-engage
	// window length via BucketTunableEngine.SetAutoCrossover at
	// construction, and becomes the default LargeN — so the "big enough
	// to parallelize" threshold is one measured, operator-adjustable
	// number instead of a compile-time constant.
	Crossover int

	// Admission, when non-nil together with a QueueWait source and a
	// positive AdmitMax, enables the adaptive-concurrency loop: each
	// cycle deltas the queue-wait histogram and nudges the admission
	// bound within [AdmitMin, AdmitMax] — down one step when the p90
	// wait is above QueueWaitHigh (the pools are saturated; shedding
	// earlier protects latency), up one step when it is below
	// QueueWaitLow (capacity to spare).
	Admission AdmissionLimiter
	// QueueWait yields the cumulative engine queue-wait histogram
	// (per-shard chainckpt_engine_queue_wait_seconds merged).
	QueueWait func() obs.HistogramSnapshot
	// AdmitMin/AdmitMax bound the adaptive admission band. AdmitMin
	// defaults to 1; AdmitMax <= 0 disables the loop.
	AdmitMin, AdmitMax int
	// QueueWaitHigh/QueueWaitLow are the p90 seconds thresholds of the
	// control law (defaults 50ms / 5ms).
	QueueWaitHigh, QueueWaitLow float64
}

// BucketDecision records one size bucket's slice of a tuning cycle.
type BucketDecision struct {
	// Bucket is the capacity class (core.BucketCap of the windows in it).
	Bucket int `json:"bucket"`
	// Solves/LargeShare describe the cycle's traffic inside the bucket.
	Solves     uint64  `json:"solves"`
	LargeShare float64 `json:"large_share"`
	// Target is the width the cycle voted for (engine convention).
	Target int `json:"target"`
	// Workers is the override in force after the cycle (0 = none, the
	// bucket follows the global width).
	Workers int `json:"workers"`
	// Action is what happened: "retune" (flipped), "pending" (vote
	// streak still building), "cooldown" (flip suppressed), "keep".
	Action string `json:"action"`
}

// TuningEvent records one self-tune cycle: what the tuner saw, what it
// decided, and the config before/after. Served by GET /v1/admin/tune.
type TuningEvent struct {
	Time    time.Time `json:"time"`
	Trigger string    `json:"trigger"` // "periodic" or "forced"
	Action  string    `json:"action"`  // "retune" or "keep"
	// OldSolveWorkers/NewSolveWorkers in the engine convention
	// (1 serial, -1 auto, >1 pinned).
	OldSolveWorkers int `json:"old_solve_workers"`
	NewSolveWorkers int `json:"new_solve_workers"`
	// CycleSolves / CycleLarge count the solves observed since the
	// previous cycle, and how many were at or above LargeN.
	CycleSolves uint64  `json:"cycle_solves"`
	CycleLarge  uint64  `json:"cycle_large"`
	LargeShare  float64 `json:"large_share"`
	// TopSizes is the triggering snapshot: the hottest window lengths
	// of the cycle (at most 8 rows).
	TopSizes []SizeCount `json:"top_sizes,omitempty"`
	// Buckets are the per-size-bucket decisions, ascending by bucket
	// capacity; empty when the engine has no per-bucket support or the
	// cycle saw no solves.
	Buckets []BucketDecision `json:"buckets,omitempty"`
	// OldAdmitLimit/NewAdmitLimit bracket the adaptive-concurrency
	// nudge; zero when the loop is disabled. QueueWaitP90 is the cycle's
	// observed p90 shard-pool queue wait in seconds.
	OldAdmitLimit int     `json:"old_admit_limit,omitempty"`
	NewAdmitLimit int     `json:"new_admit_limit,omitempty"`
	QueueWaitP90  float64 `json:"queue_wait_p90,omitempty"`
}

// Tuner closes the loop between the kernel's live solve-size histogram
// and the engine's parallelism/scratch configuration. Every RunCycle
// calls Engine.Tune (cheap, always safe) and then decides the solve
// worker regime from the solves recorded since the previous cycle:
// mostly-large workloads get the solver's crossover-gated auto mode,
// mostly-small workloads get the serial path (team overhead dominates
// below the crossover). Neither changes plan bytes — only how fast a
// solve runs.
type Tuner struct {
	cfg     TunerConfig
	eng     TunableEngine
	bucketE BucketTunableEngine // nil when eng has no per-bucket support
	m       *Metrics

	mu       sync.Mutex
	last     map[int]uint64 // previous cycle's cumulative per-n counts
	lastWait obs.HistogramSnapshot
	buckets  map[int]*bucketState
	history  []TuningEvent
}

// bucketState is the hysteresis machinery of one size bucket.
type bucketState struct {
	current  int // override in force (engine convention), 0 = none
	pending  int // the width the recent cycles have been voting for
	streak   int // consecutive cycles pending has repeated
	cooldown int // cycles left before another flip is allowed
}

// NewTuner builds a Tuner driving eng. Metrics may be nil.
func NewTuner(cfg TunerConfig, eng TunableEngine, m *Metrics) *Tuner {
	if cfg.LargeN <= 0 {
		cfg.LargeN = 192
		if cfg.Crossover > 0 {
			cfg.LargeN = cfg.Crossover
		}
	}
	if cfg.LargeShare <= 0 || cfg.LargeShare >= 1 {
		cfg.LargeShare = 0.5
	}
	if cfg.MinSamples == 0 {
		cfg.MinSamples = 16
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 64
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 2
	}
	if cfg.Cooldown < 0 {
		cfg.Cooldown = 0
	} else if cfg.Cooldown == 0 {
		cfg.Cooldown = 2
	}
	if cfg.AdmitMin <= 0 {
		cfg.AdmitMin = 1
	}
	if cfg.QueueWaitHigh <= 0 {
		cfg.QueueWaitHigh = 0.05
	}
	if cfg.QueueWaitLow <= 0 {
		cfg.QueueWaitLow = 0.005
	}
	t := &Tuner{cfg: cfg, eng: eng, m: m, buckets: make(map[int]*bucketState)}
	if be, ok := eng.(BucketTunableEngine); ok {
		t.bucketE = be
		if cfg.Crossover > 0 {
			be.SetAutoCrossover(cfg.Crossover)
		}
	}
	if m != nil && eng != nil {
		m.TunerWorkers.Set(float64(eng.SolveWorkers()))
	}
	return t
}

// RunCycle executes one self-tune cycle and returns its event. trigger
// is recorded verbatim ("periodic" from the cadence loop, "forced"
// from POST /v1/admin/tune).
func (t *Tuner) RunCycle(trigger string) TuningEvent {
	if t == nil || t.eng == nil {
		return TuningEvent{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	// Scratch-pool retuning first: idempotent, keeps warm pools for
	// still-hot sizes, and is useful in every regime.
	t.eng.Tune()

	ev := TuningEvent{
		Time:            t.cfg.Now(),
		Trigger:         trigger,
		Action:          "keep",
		OldSolveWorkers: t.eng.SolveWorkers(),
	}
	ev.NewSolveWorkers = ev.OldSolveWorkers

	// Delta the cumulative size histogram against the previous cycle
	// so the decision reflects the current traffic mix, not boot-time
	// history.
	var sizes []SizeCount
	if t.cfg.Sizes != nil {
		sizes = t.cfg.Sizes()
	}
	cur := make(map[int]uint64, len(sizes))
	var cycle []SizeCount
	for _, s := range sizes {
		cur[s.N] = s.Solves
		d := s.Solves
		if prev, ok := t.last[s.N]; ok {
			if prev >= s.Solves {
				d = 0
			} else {
				d = s.Solves - prev
			}
		}
		if d > 0 {
			cycle = append(cycle, SizeCount{N: s.N, Solves: d})
			ev.CycleSolves += d
			if s.N >= t.cfg.LargeN {
				ev.CycleLarge += d
			}
		}
	}
	t.last = cur
	ev.Buckets = t.decideBuckets(cycle)
	if len(cycle) > 8 {
		cycle = cycle[:8]
	}
	ev.TopSizes = cycle

	if ev.CycleSolves >= t.cfg.MinSamples {
		ev.LargeShare = float64(ev.CycleLarge) / float64(ev.CycleSolves)
		target := 1 // small regime: serial, team overhead dominates
		if ev.LargeShare >= t.cfg.LargeShare {
			target = -1 // large regime: crossover-gated auto team
		}
		if target != ev.OldSolveWorkers {
			t.eng.SetSolveWorkers(target)
			ev.NewSolveWorkers = target
			ev.Action = "retune"
		}
	}

	t.adaptAdmission(&ev)

	t.history = append(t.history, ev)
	if len(t.history) > t.cfg.HistoryCap {
		t.history = t.history[len(t.history)-t.cfg.HistoryCap:]
	}
	if t.m != nil {
		t.m.TunerCycles.With(trigger).Inc()
		t.m.TunerActions.With(ev.Action).Inc()
		t.m.TunerWorkers.Set(float64(ev.NewSolveWorkers))
	}
	return ev
}

// decideBuckets runs the per-size-bucket half of the regime policy
// over one cycle's delta histogram: group the deltas into capacity
// classes (core.BucketCap — the same classes the scratch pools and the
// engine's width table use), vote a width per bucket from the
// within-bucket large share, and flip a bucket's override only after
// the vote has repeated for Hysteresis consecutive cycles with its
// post-flip Cooldown expired. Called with t.mu held.
func (t *Tuner) decideBuckets(cycle []SizeCount) []BucketDecision {
	if t.bucketE == nil || len(cycle) == 0 {
		return nil
	}
	solves := make(map[int]uint64)
	large := make(map[int]uint64)
	for _, s := range cycle {
		b := core.BucketCap(s.N)
		solves[b] += s.Solves
		if s.N >= t.cfg.LargeN {
			large[b] += s.Solves
		}
	}
	caps := make([]int, 0, len(solves))
	for b := range solves {
		caps = append(caps, b)
	}
	sort.Ints(caps)
	out := make([]BucketDecision, 0, len(caps))
	for _, b := range caps {
		st := t.buckets[b]
		if st == nil {
			st = &bucketState{}
			t.buckets[b] = st
		}
		if st.cooldown > 0 {
			st.cooldown--
		}
		d := BucketDecision{
			Bucket:     b,
			Solves:     solves[b],
			LargeShare: float64(large[b]) / float64(solves[b]),
			Action:     "keep",
		}
		d.Target = 1 // mostly-small bucket: serial
		if d.LargeShare >= t.cfg.LargeShare {
			d.Target = -1 // mostly-large bucket: crossover-gated auto
		}
		if solves[b] >= t.cfg.MinSamples {
			// The vote streak only advances on trusted cycles, and
			// resets whenever the vote changes — an oscillating mix can
			// therefore never reach the flip threshold.
			if d.Target == st.pending {
				st.streak++
			} else {
				st.pending, st.streak = d.Target, 1
			}
			switch {
			case d.Target == st.current:
			case st.cooldown > 0:
				d.Action = "cooldown"
			case st.streak < t.cfg.Hysteresis:
				d.Action = "pending"
			default:
				t.bucketE.SetBucketSolveWorkers(b, d.Target)
				st.current = d.Target
				st.cooldown = t.cfg.Cooldown
				d.Action = "retune"
				if t.m != nil {
					t.m.TunerBucketWorkers.With(strconv.Itoa(b)).Set(float64(d.Target))
				}
			}
		}
		d.Workers = st.current
		out = append(out, d)
	}
	return out
}

// adaptAdmission is the adaptive-concurrency loop: delta the shard-pool
// queue-wait histogram over the cycle and nudge the admission bound one
// step within [AdmitMin, AdmitMax]. High p90 wait means work is
// queueing behind saturated pools — admitting less and shedding earlier
// is what protects latency; a near-idle queue means the bound can grow
// back toward AdmitMax. Called with t.mu held.
func (t *Tuner) adaptAdmission(ev *TuningEvent) {
	if t.cfg.Admission == nil || t.cfg.QueueWait == nil || t.cfg.AdmitMax < t.cfg.AdmitMin {
		return
	}
	snap := t.cfg.QueueWait()
	delta := snap.Sub(t.lastWait)
	t.lastWait = snap
	cur := t.cfg.Admission.MaxConcurrent()
	ev.OldAdmitLimit = cur
	next := cur
	if delta.Count() > 0 {
		p90 := delta.Quantile(0.90)
		ev.QueueWaitP90 = p90
		step := cur / 4
		if step < 1 {
			step = 1
		}
		if p90 >= t.cfg.QueueWaitHigh {
			next = cur - step
		} else if p90 <= t.cfg.QueueWaitLow {
			next = cur + step
		}
	}
	if next < t.cfg.AdmitMin {
		next = t.cfg.AdmitMin
	}
	if next > t.cfg.AdmitMax {
		next = t.cfg.AdmitMax
	}
	if next != cur {
		t.cfg.Admission.SetMaxConcurrent(next)
	}
	ev.NewAdmitLimit = next
}

// History returns the recorded tuning events, oldest first.
func (t *Tuner) History() []TuningEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TuningEvent, len(t.history))
	copy(out, t.history)
	return out
}

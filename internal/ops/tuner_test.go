package ops

import (
	"sync"
	"testing"

	"chainckpt/internal/obs"
)

// fakeEngine records tuner actuations.
type fakeEngine struct {
	mu      sync.Mutex
	workers int
	tunes   int
}

func (f *fakeEngine) Tune() {
	f.mu.Lock()
	f.tunes++
	f.mu.Unlock()
}

func (f *fakeEngine) SolveWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.workers
}

func (f *fakeEngine) SetSolveWorkers(n int) {
	f.mu.Lock()
	f.workers = n
	f.mu.Unlock()
}

func TestTunerRegimeSwitch(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	eng := &fakeEngine{workers: 1}
	var sizes []SizeCount
	tu := NewTuner(TunerConfig{
		Sizes:      func() []SizeCount { return sizes },
		LargeN:     192,
		MinSamples: 10,
	}, eng, m)

	// Cycle 1: mostly large solves -> auto.
	sizes = []SizeCount{{N: 512, Solves: 90}, {N: 32, Solves: 10}}
	ev := tu.RunCycle("forced")
	if ev.Action != "retune" || ev.NewSolveWorkers != -1 {
		t.Fatalf("large regime event = %+v, want retune to -1", ev)
	}
	if eng.SolveWorkers() != -1 {
		t.Fatalf("engine workers = %d, want -1", eng.SolveWorkers())
	}
	if ev.CycleSolves != 100 || ev.CycleLarge != 90 {
		t.Fatalf("cycle counts = %d/%d, want 100/90", ev.CycleSolves, ev.CycleLarge)
	}

	// Cycle 2: no new solves -> below MinSamples, keep.
	ev = tu.RunCycle("periodic")
	if ev.Action != "keep" || ev.CycleSolves != 0 {
		t.Fatalf("idle cycle event = %+v, want keep with 0 solves", ev)
	}

	// Cycle 3: the traffic mix flips small — the DELTA is all small
	// even though the cumulative histogram still remembers the large
	// era, so the tuner must go serial.
	sizes = []SizeCount{{N: 512, Solves: 90}, {N: 32, Solves: 110}}
	ev = tu.RunCycle("periodic")
	if ev.Action != "retune" || ev.NewSolveWorkers != 1 {
		t.Fatalf("small regime event = %+v, want retune to 1", ev)
	}
	if ev.CycleSolves != 100 || ev.CycleLarge != 0 {
		t.Fatalf("cycle counts = %d/%d, want 100/0", ev.CycleSolves, ev.CycleLarge)
	}

	// Every cycle retunes scratch pools regardless of regime.
	if eng.tunes != 3 {
		t.Fatalf("Tune calls = %d, want 3", eng.tunes)
	}

	hist := tu.History()
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	if hist[0].Trigger != "forced" || hist[1].Trigger != "periodic" {
		t.Fatalf("history triggers = %s/%s", hist[0].Trigger, hist[1].Trigger)
	}
	if got := m.TunerCycles.With("forced").Value(); got != 1 {
		t.Fatalf("cycles{forced} = %d, want 1", got)
	}
	if got := m.TunerCycles.With("periodic").Value(); got != 2 {
		t.Fatalf("cycles{periodic} = %d, want 2", got)
	}
	if got := m.TunerActions.With("retune").Value(); got != 2 {
		t.Fatalf("events{retune} = %d, want 2", got)
	}
	if got := m.TunerActions.With("keep").Value(); got != 1 {
		t.Fatalf("events{keep} = %d, want 1", got)
	}
	if got := m.TunerWorkers.Value(); got != 1 {
		t.Fatalf("tuner workers gauge = %v, want 1", got)
	}
}

func TestTunerHistoryBounded(t *testing.T) {
	eng := &fakeEngine{workers: 1}
	n := 0
	tu := NewTuner(TunerConfig{
		Sizes:      func() []SizeCount { n += 100; return []SizeCount{{N: 512, Solves: uint64(n)}} },
		HistoryCap: 4,
	}, eng, nil)
	for i := 0; i < 10; i++ {
		tu.RunCycle("periodic")
	}
	if got := len(tu.History()); got != 4 {
		t.Fatalf("history length = %d, want 4 (bounded)", got)
	}
}

func TestTunerNil(t *testing.T) {
	var tu *Tuner
	if ev := tu.RunCycle("forced"); ev.Action != "" {
		t.Fatal("nil tuner produced an event")
	}
	if tu.History() != nil {
		t.Fatal("nil tuner has history")
	}
}

package ops

import (
	"sync"
	"testing"

	"chainckpt/internal/obs"
)

// fakeEngine records tuner actuations.
type fakeEngine struct {
	mu      sync.Mutex
	workers int
	tunes   int
}

func (f *fakeEngine) Tune() {
	f.mu.Lock()
	f.tunes++
	f.mu.Unlock()
}

func (f *fakeEngine) SolveWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.workers
}

func (f *fakeEngine) SetSolveWorkers(n int) {
	f.mu.Lock()
	f.workers = n
	f.mu.Unlock()
}

// fakeBucketEngine widens fakeEngine to the BucketTunableEngine surface,
// recording per-bucket overrides and crossover pushes.
type fakeBucketEngine struct {
	fakeEngine
	bucketMu  sync.Mutex
	buckets   map[int]int
	crossover int
}

func (f *fakeBucketEngine) SetBucketSolveWorkers(n, workers int) {
	f.bucketMu.Lock()
	defer f.bucketMu.Unlock()
	if f.buckets == nil {
		f.buckets = make(map[int]int)
	}
	if workers == 0 {
		delete(f.buckets, n)
		return
	}
	f.buckets[n] = workers
}

func (f *fakeBucketEngine) BucketSolveWorkers() map[int]int {
	f.bucketMu.Lock()
	defer f.bucketMu.Unlock()
	out := make(map[int]int, len(f.buckets))
	for b, w := range f.buckets {
		out[b] = w
	}
	return out
}

func (f *fakeBucketEngine) SetAutoCrossover(n int) {
	f.bucketMu.Lock()
	f.crossover = n
	f.bucketMu.Unlock()
}

// fakeLimiter records adaptive-admission actuations.
type fakeLimiter struct {
	mu    sync.Mutex
	limit int
	sets  int
}

func (f *fakeLimiter) MaxConcurrent() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.limit
}

func (f *fakeLimiter) SetMaxConcurrent(n int) {
	f.mu.Lock()
	f.limit = n
	f.sets++
	f.mu.Unlock()
}

func TestTunerRegimeSwitch(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	eng := &fakeEngine{workers: 1}
	var sizes []SizeCount
	tu := NewTuner(TunerConfig{
		Sizes:      func() []SizeCount { return sizes },
		LargeN:     192,
		MinSamples: 10,
	}, eng, m)

	// Cycle 1: mostly large solves -> auto.
	sizes = []SizeCount{{N: 512, Solves: 90}, {N: 32, Solves: 10}}
	ev := tu.RunCycle("forced")
	if ev.Action != "retune" || ev.NewSolveWorkers != -1 {
		t.Fatalf("large regime event = %+v, want retune to -1", ev)
	}
	if eng.SolveWorkers() != -1 {
		t.Fatalf("engine workers = %d, want -1", eng.SolveWorkers())
	}
	if ev.CycleSolves != 100 || ev.CycleLarge != 90 {
		t.Fatalf("cycle counts = %d/%d, want 100/90", ev.CycleSolves, ev.CycleLarge)
	}

	// Cycle 2: no new solves -> below MinSamples, keep.
	ev = tu.RunCycle("periodic")
	if ev.Action != "keep" || ev.CycleSolves != 0 {
		t.Fatalf("idle cycle event = %+v, want keep with 0 solves", ev)
	}

	// Cycle 3: the traffic mix flips small — the DELTA is all small
	// even though the cumulative histogram still remembers the large
	// era, so the tuner must go serial.
	sizes = []SizeCount{{N: 512, Solves: 90}, {N: 32, Solves: 110}}
	ev = tu.RunCycle("periodic")
	if ev.Action != "retune" || ev.NewSolveWorkers != 1 {
		t.Fatalf("small regime event = %+v, want retune to 1", ev)
	}
	if ev.CycleSolves != 100 || ev.CycleLarge != 0 {
		t.Fatalf("cycle counts = %d/%d, want 100/0", ev.CycleSolves, ev.CycleLarge)
	}

	// Every cycle retunes scratch pools regardless of regime.
	if eng.tunes != 3 {
		t.Fatalf("Tune calls = %d, want 3", eng.tunes)
	}

	hist := tu.History()
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}
	if hist[0].Trigger != "forced" || hist[1].Trigger != "periodic" {
		t.Fatalf("history triggers = %s/%s", hist[0].Trigger, hist[1].Trigger)
	}
	if got := m.TunerCycles.With("forced").Value(); got != 1 {
		t.Fatalf("cycles{forced} = %d, want 1", got)
	}
	if got := m.TunerCycles.With("periodic").Value(); got != 2 {
		t.Fatalf("cycles{periodic} = %d, want 2", got)
	}
	if got := m.TunerActions.With("retune").Value(); got != 2 {
		t.Fatalf("events{retune} = %d, want 2", got)
	}
	if got := m.TunerActions.With("keep").Value(); got != 1 {
		t.Fatalf("events{keep} = %d, want 1", got)
	}
	if got := m.TunerWorkers.Value(); got != 1 {
		t.Fatalf("tuner workers gauge = %v, want 1", got)
	}
}

func TestTunerHistoryBounded(t *testing.T) {
	eng := &fakeEngine{workers: 1}
	n := 0
	tu := NewTuner(TunerConfig{
		Sizes:      func() []SizeCount { n += 100; return []SizeCount{{N: 512, Solves: uint64(n)}} },
		HistoryCap: 4,
	}, eng, nil)
	for i := 0; i < 10; i++ {
		tu.RunCycle("periodic")
	}
	if got := len(tu.History()); got != 4 {
		t.Fatalf("history length = %d, want 4 (bounded)", got)
	}
}

// bucketDecision pulls one bucket's slice out of a tuning event.
func bucketDecision(t *testing.T, ev TuningEvent, bucket int) BucketDecision {
	t.Helper()
	for _, d := range ev.Buckets {
		if d.Bucket == bucket {
			return d
		}
	}
	t.Fatalf("no decision for bucket %d in %+v", bucket, ev.Buckets)
	return BucketDecision{}
}

// TestTunerBucketHysteresis: an oscillating traffic mix inside one size
// bucket (n=250 large vs n=150 small, both bucket 256) must never flip
// that bucket's width — the vote streak resets on every change — while
// a stable mix flips exactly once the streak reaches Hysteresis, and the
// post-flip cooldown suppresses the immediately following counter-vote.
func TestTunerBucketHysteresis(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	eng := &fakeBucketEngine{}
	eng.workers = 1
	var cLarge, cSmall uint64 // cumulative solve counts fed to Sizes
	tu := NewTuner(TunerConfig{
		Sizes: func() []SizeCount {
			return []SizeCount{{N: 250, Solves: cLarge}, {N: 150, Solves: cSmall}}
		},
		LargeN:     192,
		MinSamples: 1,
		Hysteresis: 2,
		Cooldown:   2,
		Crossover:  200,
	}, eng, m)
	if eng.crossover != 200 {
		t.Fatalf("crossover push = %d, want 200", eng.crossover)
	}

	// Phase 1: strict oscillation. Each cycle's delta votes the opposite
	// of the last, so the streak never reaches 2 and no override lands.
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			cLarge += 10
		} else {
			cSmall += 10
		}
		ev := tu.RunCycle("periodic")
		d := bucketDecision(t, ev, 256)
		if d.Action != "pending" {
			t.Fatalf("oscillation cycle %d bucket action = %q, want pending (%+v)", i, d.Action, d)
		}
		if d.Workers != 0 {
			t.Fatalf("oscillation cycle %d installed override %d", i, d.Workers)
		}
	}
	if got := eng.BucketSolveWorkers(); len(got) != 0 {
		t.Fatalf("oscillating mix flipped a bucket: %v", got)
	}

	// Phase 2: two consecutive large cycles. The oscillation ended on a
	// small vote, so the first large cycle resets the streak to 1
	// ("pending") and the second reaches Hysteresis and flips.
	cLarge += 10
	ev := tu.RunCycle("periodic")
	if d := bucketDecision(t, ev, 256); d.Action != "pending" {
		t.Fatalf("first stable cycle action = %q, want pending", d.Action)
	}
	cLarge += 10
	ev = tu.RunCycle("periodic")
	d := bucketDecision(t, ev, 256)
	if d.Action != "retune" || d.Target != -1 || d.Workers != -1 {
		t.Fatalf("second stable cycle = %+v, want retune to -1", d)
	}
	if got := eng.BucketSolveWorkers(); got[256] != -1 {
		t.Fatalf("bucket overrides after flip = %v, want 256:-1", got)
	}
	if got := m.TunerBucketWorkers.With("256").Value(); got != -1 {
		t.Fatalf("bucket workers gauge = %v, want -1", got)
	}

	// Phase 3: the traffic turns small. The first counter-cycle is inside
	// the cooldown window; the second clears it and, with the streak at
	// Hysteresis, flips back.
	cSmall += 10
	ev = tu.RunCycle("periodic")
	if d := bucketDecision(t, ev, 256); d.Action != "cooldown" {
		t.Fatalf("post-flip cycle action = %q, want cooldown", d.Action)
	}
	cSmall += 10
	ev = tu.RunCycle("periodic")
	d = bucketDecision(t, ev, 256)
	if d.Action != "retune" || d.Target != 1 {
		t.Fatalf("cooldown-expired cycle = %+v, want retune to 1", d)
	}
	if got := eng.BucketSolveWorkers(); got[256] != 1 {
		t.Fatalf("bucket overrides after flip back = %v, want 256:1", got)
	}
	if got := m.TunerBucketWorkers.With("256").Value(); got != 1 {
		t.Fatalf("bucket workers gauge = %v, want 1", got)
	}
}

// TestTunerAdmissionAdapt: the adaptive-concurrency loop deltas the
// queue-wait histogram each cycle and steps the admission bound down on
// a hot p90, up on a cold one, clamped to [AdmitMin, AdmitMax], and
// holds still on an idle cycle.
func TestTunerAdmissionAdapt(t *testing.T) {
	eng := &fakeEngine{workers: 1}
	lim := &fakeLimiter{limit: 16}
	uppers := []float64{0.001, 0.01, 0.1, 1}
	var snap obs.HistogramSnapshot
	tu := NewTuner(TunerConfig{
		Admission: lim,
		QueueWait: func() obs.HistogramSnapshot { return snap },
		AdmitMin:  2,
		AdmitMax:  16,
	}, eng, nil)

	// Cycle 1: 100 waits in the 10–100ms bucket — p90 ≈ 91ms, above the
	// 50ms high-water mark. Step down by cur/4: 16 -> 12.
	snap = obs.HistogramSnapshot{Uppers: uppers, Cum: []uint64{0, 0, 100, 100, 100}, Sum: 5}
	ev := tu.RunCycle("periodic")
	if ev.OldAdmitLimit != 16 || ev.NewAdmitLimit != 12 || lim.MaxConcurrent() != 12 {
		t.Fatalf("hot cycle = old %d new %d limiter %d, want 16 -> 12",
			ev.OldAdmitLimit, ev.NewAdmitLimit, lim.MaxConcurrent())
	}
	if ev.QueueWaitP90 < 0.05 {
		t.Fatalf("hot cycle p90 = %v, want >= 0.05", ev.QueueWaitP90)
	}

	// Cycle 2: 100 new waits all under 1ms — the DELTA is cold even
	// though the cumulative histogram still holds the hot era. Step up:
	// 12 -> 15.
	snap = obs.HistogramSnapshot{Uppers: uppers, Cum: []uint64{100, 100, 200, 200, 200}, Sum: 5.05}
	ev = tu.RunCycle("periodic")
	if ev.NewAdmitLimit != 15 || lim.MaxConcurrent() != 15 {
		t.Fatalf("cold cycle limit = %d/%d, want 15", ev.NewAdmitLimit, lim.MaxConcurrent())
	}

	// Cycle 3: no new waits — hold.
	before := lim.sets
	ev = tu.RunCycle("periodic")
	if ev.NewAdmitLimit != 15 || lim.sets != before {
		t.Fatalf("idle cycle moved the bound: %+v (sets %d -> %d)", ev, before, lim.sets)
	}

	// Clamp: hot cycles walk the bound down but never below AdmitMin.
	cum := uint64(200)
	for i := 0; i < 12; i++ {
		cum += 50
		snap = obs.HistogramSnapshot{Uppers: uppers, Cum: []uint64{100, 100, cum, cum, cum}, Sum: float64(cum) / 20}
		ev = tu.RunCycle("periodic")
		if ev.NewAdmitLimit < 2 || lim.MaxConcurrent() < 2 {
			t.Fatalf("bound fell below AdmitMin: %+v", ev)
		}
	}
	if lim.MaxConcurrent() != 2 {
		t.Fatalf("limiter = %d, want clamped at AdmitMin 2", lim.MaxConcurrent())
	}
}

func TestTunerNil(t *testing.T) {
	var tu *Tuner
	if ev := tu.RunCycle("forced"); ev.Action != "" {
		t.Fatal("nil tuner produced an event")
	}
	if tu.History() != nil {
		t.Fatal("nil tuner has history")
	}
}

package ops

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"chainckpt/internal/obs"
)

// fakeClock steps time manually so window arithmetic is exact.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTrackerBurnRateWindows(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	hist := reg.NewHistogram("req_seconds", "", []float64{0.1, 0.5, 1})

	tr := NewTracker(TrackerConfig{
		FastWindow:     5 * time.Minute,
		SlowWindow:     time.Hour,
		SampleInterval: 30 * time.Second,
		Now:            clk.now,
	}, m, SLO{
		Name:      "plan",
		Threshold: 0.5,
		Objective: 0.99,
		Source:    hist.Snapshot,
	})

	// Healthy hour: 1000 fast requests spread over samples.
	for i := 0; i < 20; i++ {
		for j := 0; j < 50; j++ {
			hist.Observe(0.05)
		}
		tr.Sample()
		clk.advance(30 * time.Second)
	}
	rep := tr.Report()
	if len(rep) != 1 {
		t.Fatalf("want 1 SLO, got %d", len(rep))
	}
	if rep[0].Fast.BurnRate != 0 || rep[0].Slow.BurnRate != 0 {
		t.Fatalf("healthy traffic burned: fast=%v slow=%v", rep[0].Fast.BurnRate, rep[0].Slow.BurnRate)
	}
	if got := tr.MaxFastBurn(); got != 0 {
		t.Fatalf("MaxFastBurn = %v, want 0", got)
	}

	// Incident: the next 5 minutes are 100% slow requests. Fast-window
	// burn jumps to badFraction/(1-0.99) = 1.0/0.01 = 100; the slow
	// window dilutes the same requests across an hour of history.
	for i := 0; i < 10; i++ {
		for j := 0; j < 50; j++ {
			hist.Observe(0.9)
		}
		tr.Sample()
		clk.advance(30 * time.Second)
	}
	rep = tr.Report()
	fast, slow := rep[0].Fast, rep[0].Slow
	if fast.BadFraction < 0.95 {
		t.Errorf("fast bad fraction = %v, want ~1.0", fast.BadFraction)
	}
	if fast.BurnRate < 90 {
		t.Errorf("fast burn = %v, want ~100", fast.BurnRate)
	}
	if slow.BurnRate >= fast.BurnRate {
		t.Errorf("slow burn %v should dilute below fast burn %v", slow.BurnRate, fast.BurnRate)
	}
	if fast.P99 < 0.5 {
		t.Errorf("incident fast p99 = %v, want > threshold", fast.P99)
	}
	if got := tr.MaxFastBurn(); got != fast.BurnRate {
		t.Errorf("MaxFastBurn = %v, want %v", got, fast.BurnRate)
	}

	// Gauges exported and named per the chainckpt_slo_* contract.
	var buf []byte
	buf = appendScrape(t, reg)
	for _, want := range []string{
		`chainckpt_slo_burn_rate{slo="plan",window="fast"}`,
		`chainckpt_slo_burn_rate{slo="plan",window="slow"}`,
		`chainckpt_slo_objective{slo="plan"} 0.99`,
		`chainckpt_slo_bad_fraction{slo="plan",window="fast"}`,
		`chainckpt_slo_window_requests{slo="plan",window="fast"}`,
	} {
		if !contains(buf, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

func TestTrackerShortHistoryDegrades(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	hist := reg.NewHistogram("req2_seconds", "", []float64{0.1, 0.5})
	tr := NewTracker(TrackerConfig{Now: clk.now}, nil, SLO{
		Name: "x", Threshold: 0.5, Objective: 0.9, Source: hist.Snapshot,
	})

	// One sample only: the window covers everything seen so far.
	hist.Observe(0.9)
	tr.Sample()
	rep := tr.Report()
	if rep[0].Fast.Requests != 1 {
		t.Fatalf("fast window requests = %d, want 1 (degraded to full history)", rep[0].Fast.Requests)
	}
	if b := rep[0].Fast.BurnRate; b < 10-1e-9 || b > 10+1e-9 { // 1.0 bad / 0.1 budget
		t.Fatalf("fast burn = %v, want 10", b)
	}
}

func TestTrackerScrapeSamplesCoalesce(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	hist := reg.NewHistogram("req3_seconds", "", []float64{0.1})
	tr := NewTracker(TrackerConfig{SampleInterval: 10 * time.Second, Now: clk.now}, nil, SLO{
		Name: "x", Threshold: 0.1, Objective: 0.99, Source: hist.Snapshot,
	})
	// A burst of scrapes inside half the sample interval must reuse the
	// newest ring slot, not flood the ring and shrink window coverage.
	for i := 0; i < 100; i++ {
		tr.Sample()
		clk.advance(10 * time.Millisecond)
	}
	tr.mu.Lock()
	n := len(tr.slos[0].ring)
	tr.mu.Unlock()
	if n != 1 {
		t.Fatalf("ring grew to %d under scrape burst, want 1", n)
	}
}

func appendScrape(t *testing.T, reg *obs.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

func contains(buf []byte, want string) bool {
	return strings.Contains(string(buf), want)
}

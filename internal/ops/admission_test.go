package ops

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chainckpt/internal/obs"
)

func newTestController(t *testing.T, cfg ControllerConfig) (*Controller, *Metrics, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c := NewController(cfg, m)
	t.Cleanup(c.Close)
	return c, m, reg
}

func TestAdmitImmediate(t *testing.T) {
	c, m, _ := newTestController(t, ControllerConfig{MaxConcurrent: 2})
	rel1, err := c.Admit(context.Background(), Interactive)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	rel2, err := c.Admit(context.Background(), Batch)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if got := c.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	rel1()
	rel2()
	rel2() // double release must be a no-op
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
	if got := m.Admitted.With("interactive").Value(); got != 1 {
		t.Fatalf("admitted{interactive} = %d, want 1", got)
	}
	if got := m.Admitted.With("batch").Value(); got != 1 {
		t.Fatalf("admitted{batch} = %d, want 1", got)
	}
}

// Deadline already expired on arrival: never queues, never takes a
// slot, counted as a deadline outcome.
func TestAdmitDeadlineExpiredOnArrival(t *testing.T) {
	c, m, _ := newTestController(t, ControllerConfig{MaxConcurrent: 1})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()

	rel, err := c.Admit(ctx, Interactive)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if rel != nil {
		t.Fatal("release fn returned with error")
	}
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	if got := m.Deadline.With("interactive").Value(); got != 1 {
		t.Fatalf("deadline{interactive} = %d, want 1", got)
	}
}

// Cancel while queued: the waiter leaves the queue, the queue-depth
// gauge reconciles, no slot is consumed or leaked, and a later release
// still grants to the surviving waiter behind it.
func TestAdmitCancelWhileQueued(t *testing.T) {
	c, m, _ := newTestController(t, ControllerConfig{MaxConcurrent: 1})
	relHold, err := c.Admit(context.Background(), Interactive)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}

	canceledCtx, cancel := context.WithCancel(context.Background())
	canceledDone := make(chan error, 1)
	go func() {
		_, err := c.Admit(canceledCtx, Interactive)
		canceledDone <- err
	}()
	survivorDone := make(chan error, 1)
	var survivorRel func()
	go func() {
		rel, err := c.Admit(context.Background(), Interactive)
		survivorRel = rel
		survivorDone <- err
	}()

	waitFor(t, func() bool { return c.QueueDepth(Interactive) == 2 }, "two queued waiters")
	cancel()
	if err := <-canceledDone; !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled waiter err = %v, want ErrCanceled", err)
	}
	waitFor(t, func() bool { return c.QueueDepth(Interactive) == 1 }, "canceled waiter removed")

	relHold()
	if err := <-survivorDone; err != nil {
		t.Fatalf("survivor err = %v", err)
	}
	if got := c.InFlight(); got != 1 {
		t.Fatalf("InFlight = %d, want 1 (survivor holds it)", got)
	}
	survivorRel()
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	if got := m.Canceled.With("interactive").Value(); got != 1 {
		t.Fatalf("canceled{interactive} = %d, want 1", got)
	}
	// Counters reconcile: 2 admissions (holder + survivor), 1 cancel.
	if got := m.Admitted.With("interactive").Value(); got != 2 {
		t.Fatalf("admitted{interactive} = %d, want 2", got)
	}
}

// Queue bound: requests beyond MaxQueue shed immediately with
// queue_full, and the shed does not consume a queue slot.
func TestAdmitQueueFull(t *testing.T) {
	c, m, _ := newTestController(t, ControllerConfig{MaxConcurrent: 1, MaxQueue: 1, RetryAfter: 7 * time.Second})
	rel, err := c.Admit(context.Background(), Batch)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer rel()
	queued := make(chan error, 1)
	go func() {
		rel, err := c.Admit(context.Background(), Batch)
		if err == nil {
			defer rel()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return c.QueueDepth(Batch) == 1 }, "one queued waiter")

	_, err = c.Admit(context.Background(), Batch)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("err = %v, want ShedError", err)
	}
	if shed.Reason != "queue_full" || shed.RetryAfter != 7*time.Second {
		t.Fatalf("shed = %+v, want queue_full retry 7s", shed)
	}
	if got := m.Shed.With("batch", "queue_full").Value(); got != 1 {
		t.Fatalf("shed{batch,queue_full} = %d, want 1", got)
	}
	rel()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter err = %v", err)
	}
}

// Shed storm: turning shedding on sweeps every queued batch waiter at
// once, releases their queue slots, and leaves interactive waiters
// untouched; new batch arrivals are rejected with reason burn until
// shedding clears.
func TestShedStormSweepsBatchQueue(t *testing.T) {
	c, m, _ := newTestController(t, ControllerConfig{MaxConcurrent: 1, MaxQueue: 32})
	relHold, err := c.Admit(context.Background(), Interactive)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}

	const nBatch = 8
	batchErrs := make(chan error, nBatch)
	for i := 0; i < nBatch; i++ {
		go func() {
			_, err := c.Admit(context.Background(), Batch)
			batchErrs <- err
		}()
	}
	interactiveDone := make(chan error, 1)
	var interactiveRel func()
	go func() {
		rel, err := c.Admit(context.Background(), Interactive)
		interactiveRel = rel
		interactiveDone <- err
	}()
	waitFor(t, func() bool {
		return c.QueueDepth(Batch) == nBatch && c.QueueDepth(Interactive) == 1
	}, "queues populated")

	c.SetShedding(true)
	for i := 0; i < nBatch; i++ {
		err := <-batchErrs
		var shed *ShedError
		if !errors.As(err, &shed) || shed.Reason != "burn" {
			t.Fatalf("swept batch waiter err = %v, want burn ShedError", err)
		}
	}
	if got := c.QueueDepth(Batch); got != 0 {
		t.Fatalf("batch queue depth after storm = %d, want 0", got)
	}
	if got := c.QueueDepth(Interactive); got != 1 {
		t.Fatalf("interactive queue depth after storm = %d, want 1", got)
	}
	if got := m.Shed.With("batch", "burn").Value(); got != nBatch {
		t.Fatalf("shed{batch,burn} = %d, want %d", got, nBatch)
	}

	// New batch arrivals bounce immediately while shedding.
	if _, err := c.Admit(context.Background(), Batch); err == nil {
		t.Fatal("batch Admit during shedding succeeded")
	}
	// Interactive work still flows.
	relHold()
	if err := <-interactiveDone; err != nil {
		t.Fatalf("interactive waiter err = %v", err)
	}
	interactiveRel()

	c.SetShedding(false)
	rel, err := c.Admit(context.Background(), Batch)
	if err != nil {
		t.Fatalf("batch Admit after shedding cleared: %v", err)
	}
	rel()
}

// Race-detector stress: concurrent admits of both classes, releases,
// shed flips, and closes. Run with -race; correctness assertion is
// that every Admit resolves and in-flight returns to zero.
func TestAdmissionRaceStress(t *testing.T) {
	c, _, _ := newTestController(t, ControllerConfig{MaxConcurrent: 4, MaxQueue: 16})
	var wg sync.WaitGroup
	var granted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := Interactive
			if g%2 == 0 {
				class = Batch
			}
			for i := 0; i < 200; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*time.Millisecond)
				rel, err := c.Admit(ctx, class)
				if err == nil {
					granted.Add(1)
					rel()
				}
				cancel()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			c.SetShedding(i%2 == 0)
			time.Sleep(100 * time.Microsecond)
		}
		c.SetShedding(false)
	}()
	wg.Wait()
	waitFor(t, func() bool { return c.InFlight() == 0 }, "in-flight drained")
	if granted.Load() == 0 {
		t.Fatal("no admit ever succeeded under stress")
	}
}

func TestControllerClose(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(ControllerConfig{MaxConcurrent: 1}, NewMetrics(reg))
	rel, err := c.Admit(context.Background(), Interactive)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	queued := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), Interactive)
		queued <- err
	}()
	waitFor(t, func() bool { return c.QueueDepth(Interactive) == 1 }, "waiter queued")
	c.Close()
	if err := <-queued; !errors.Is(err, ErrClosed) {
		t.Fatalf("queued err after close = %v, want ErrClosed", err)
	}
	if _, err := c.Admit(context.Background(), Interactive); !errors.Is(err, ErrClosed) {
		t.Fatalf("Admit after close = %v, want ErrClosed", err)
	}
	rel() // releasing a pre-close slot must not panic
}

// Nil-safety: a nil controller admits everything (uninstrumented
// pass-through), matching the nil conventions of obs and engine.
func TestNilController(t *testing.T) {
	var c *Controller
	rel, err := c.Admit(context.Background(), Batch)
	if err != nil {
		t.Fatalf("nil Admit: %v", err)
	}
	rel()
	c.SetShedding(true)
	c.Close()
	if c.Shedding() || c.InFlight() != 0 || c.QueueDepth(Batch) != 0 {
		t.Fatal("nil controller reported state")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// Package workload generates the task-weight patterns used in the paper's
// evaluation (Section IV): Uniform, Decrease and HighLow, all normalized
// to a prescribed total computational weight (25000 s in the paper), plus
// random chains for property-based testing.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"chainckpt/internal/chain"
)

// PaperTotalWeight is the total computational weight of every experiment
// in Section IV, in seconds.
const PaperTotalWeight = 25000.0

// PaperMaxTasks is the largest chain length evaluated in the paper.
const PaperMaxTasks = 50

// Pattern names a generator so experiments can iterate over all of them.
type Pattern string

// The three patterns of Section IV.
const (
	PatternUniform  Pattern = "Uniform"
	PatternDecrease Pattern = "Decrease"
	PatternHighLow  Pattern = "HighLow"
)

// Patterns lists the paper's patterns in presentation order.
func Patterns() []Pattern {
	return []Pattern{PatternUniform, PatternDecrease, PatternHighLow}
}

// Generate builds an n-task chain of total weight total following the
// named pattern. HighLow uses the paper's 10%-large/60%-weight split.
func Generate(p Pattern, n int, total float64) (*chain.Chain, error) {
	switch p {
	case PatternUniform:
		return Uniform(n, total)
	case PatternDecrease:
		return Decrease(n, total)
	case PatternHighLow:
		return HighLow(n, total, 0.10, 0.60)
	default:
		return nil, fmt.Errorf("workload: unknown pattern %q", p)
	}
}

// Uniform returns n tasks of identical weight total/n, as in matrix
// multiplication or iterative stencil kernels.
func Uniform(n int, total float64) (*chain.Chain, error) {
	if err := checkArgs(n, total); err != nil {
		return nil, err
	}
	w := make([]float64, n)
	per := total / float64(n)
	for i := range w {
		w[i] = per
	}
	return chain.FromWeights(w...)
}

// Decrease returns n tasks with quadratically decreasing weights
// w_i = alpha*(n+1-i)^2, resembling dense matrix solvers such as LU or QR
// factorization. alpha is chosen so the weights sum exactly to total
// (the paper's alpha ~ 3W/n^3 is this normalization's leading term, since
// sum k^2 = n(n+1)(2n+1)/6 ~ n^3/3).
func Decrease(n int, total float64) (*chain.Chain, error) {
	if err := checkArgs(n, total); err != nil {
		return nil, err
	}
	sumSquares := float64(n) * float64(n+1) * float64(2*n+1) / 6
	alpha := total / sumSquares
	w := make([]float64, n)
	for i := 1; i <= n; i++ {
		k := float64(n + 1 - i)
		w[i-1] = alpha * k * k
	}
	return chain.FromWeights(w...)
}

// HighLow returns a chain whose first ceil(largeFrac*n) tasks ("large"
// tasks) share largeWeightFrac of the total weight, the remaining tasks
// sharing the rest. The paper uses largeFrac = 0.10 and
// largeWeightFrac = 0.60: with n = 50 and W = 25000 s, the 5 head tasks
// weigh 3000 s each and the 45 tail tasks about 222 s each. At least one
// task is always large; if every task is large the chain is uniform.
func HighLow(n int, total, largeFrac, largeWeightFrac float64) (*chain.Chain, error) {
	if err := checkArgs(n, total); err != nil {
		return nil, err
	}
	if largeFrac < 0 || largeFrac > 1 || math.IsNaN(largeFrac) {
		return nil, fmt.Errorf("workload: largeFrac %v outside [0,1]", largeFrac)
	}
	if largeWeightFrac < 0 || largeWeightFrac > 1 || math.IsNaN(largeWeightFrac) {
		return nil, fmt.Errorf("workload: largeWeightFrac %v outside [0,1]", largeWeightFrac)
	}
	nLarge := int(math.Ceil(largeFrac * float64(n)))
	if nLarge < 1 {
		nLarge = 1
	}
	if nLarge > n {
		nLarge = n
	}
	w := make([]float64, n)
	if nLarge == n {
		per := total / float64(n)
		for i := range w {
			w[i] = per
		}
	} else {
		big := total * largeWeightFrac / float64(nLarge)
		small := total * (1 - largeWeightFrac) / float64(n-nLarge)
		for i := range w {
			if i < nLarge {
				w[i] = big
			} else {
				w[i] = small
			}
		}
	}
	return chain.FromWeights(w...)
}

// Random returns a chain of n tasks with independent weights drawn
// uniformly from [0, 2*total/n) and then rescaled to sum to total; for
// fuzzing the planners with irregular instances.
func Random(rng *rand.Rand, n int, total float64) (*chain.Chain, error) {
	if err := checkArgs(n, total); err != nil {
		return nil, err
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = rng.Float64()
		sum += w[i]
	}
	if sum == 0 {
		return Uniform(n, total)
	}
	for i := range w {
		w[i] *= total / sum
	}
	return chain.FromWeights(w...)
}

func checkArgs(n int, total float64) error {
	if n < 1 {
		return fmt.Errorf("workload: need at least 1 task, got %d", n)
	}
	if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 {
		return fmt.Errorf("workload: invalid total weight %v", total)
	}
	return nil
}

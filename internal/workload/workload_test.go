package workload

import (
	"math"
	"math/rand"
	"testing"
)

func totalClose(t *testing.T, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6*want+1e-9 {
		t.Errorf("total weight = %.12g, want %.12g", got, want)
	}
}

func TestUniform(t *testing.T) {
	c, err := Uniform(50, PaperTotalWeight)
	if err != nil {
		t.Fatal(err)
	}
	totalClose(t, c.TotalWeight(), PaperTotalWeight)
	for i := 1; i <= 50; i++ {
		if got := c.Weight(i); math.Abs(got-500) > 1e-9 {
			t.Fatalf("w_%d = %g, want 500", i, got)
		}
	}
}

func TestDecreaseNormalizationAndShape(t *testing.T) {
	for _, n := range []int{1, 2, 5, 17, 50} {
		c, err := Decrease(n, PaperTotalWeight)
		if err != nil {
			t.Fatal(err)
		}
		totalClose(t, c.TotalWeight(), PaperTotalWeight)
		// Strictly decreasing weights for n > 1.
		for i := 2; i <= n; i++ {
			if c.Weight(i) >= c.Weight(i-1) {
				t.Fatalf("n=%d: weights not decreasing at i=%d", n, i)
			}
		}
	}
}

func TestDecreaseQuadraticRatio(t *testing.T) {
	// w_1/w_n = n^2 for the quadratic law.
	c, err := Decrease(10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := c.Weight(1) / c.Weight(10)
	if math.Abs(ratio-100) > 1e-9 {
		t.Errorf("w_1/w_10 = %g, want 100", ratio)
	}
}

func TestDecreaseAlphaMatchesPaperApproximation(t *testing.T) {
	// Paper: alpha ~ 3W/n^3. Exact alpha = W/(n(n+1)(2n+1)/6); for n=50
	// these agree within about 3%.
	n := 50
	c, err := Decrease(n, PaperTotalWeight)
	if err != nil {
		t.Fatal(err)
	}
	alphaExact := c.Weight(n) // w_n = alpha * 1^2
	alphaPaper := 3 * PaperTotalWeight / float64(n*n*n)
	if rel := math.Abs(alphaExact-alphaPaper) / alphaPaper; rel > 0.05 {
		t.Errorf("alpha = %g vs paper approx %g (rel %g)", alphaExact, alphaPaper, rel)
	}
}

func TestHighLowPaperNumbers(t *testing.T) {
	// Paper: n=50, W=25000 -> 5 large tasks of 3000 s, 45 small of ~222 s.
	c, err := HighLow(50, PaperTotalWeight, 0.10, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	totalClose(t, c.TotalWeight(), PaperTotalWeight)
	for i := 1; i <= 5; i++ {
		if math.Abs(c.Weight(i)-3000) > 1e-9 {
			t.Fatalf("large task %d = %g, want 3000", i, c.Weight(i))
		}
	}
	for i := 6; i <= 50; i++ {
		if math.Abs(c.Weight(i)-25000*0.4/45) > 1e-9 {
			t.Fatalf("small task %d = %g, want %g", i, c.Weight(i), 25000*0.4/45)
		}
	}
}

func TestHighLowSmallN(t *testing.T) {
	// n < 10 still gets at least one large task.
	c, err := HighLow(5, 1000, 0.10, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	totalClose(t, c.TotalWeight(), 1000)
	if math.Abs(c.Weight(1)-600) > 1e-9 {
		t.Errorf("w_1 = %g, want 600", c.Weight(1))
	}
	if math.Abs(c.Weight(2)-100) > 1e-9 {
		t.Errorf("w_2 = %g, want 100", c.Weight(2))
	}
}

func TestHighLowAllLarge(t *testing.T) {
	// largeFrac = 1 degenerates to uniform.
	c, err := HighLow(4, 400, 1.0, 0.60)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if math.Abs(c.Weight(i)-100) > 1e-9 {
			t.Errorf("w_%d = %g, want 100", i, c.Weight(i))
		}
	}
}

func TestHighLowRejectsBadFractions(t *testing.T) {
	for _, tc := range [][2]float64{{-0.1, 0.6}, {1.1, 0.6}, {0.1, -0.2}, {0.1, 2}, {math.NaN(), 0.6}, {0.1, math.NaN()}} {
		if _, err := HighLow(10, 100, tc[0], tc[1]); err == nil {
			t.Errorf("HighLow with fractions %v should fail", tc)
		}
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, p := range Patterns() {
		c, err := Generate(p, 20, PaperTotalWeight)
		if err != nil {
			t.Errorf("Generate(%s): %v", p, err)
			continue
		}
		if c.Len() != 20 {
			t.Errorf("Generate(%s) len = %d", p, c.Len())
		}
		totalClose(t, c.TotalWeight(), PaperTotalWeight)
	}
	if _, err := Generate("Zigzag", 10, 100); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestRandomNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c, err := Random(rng, 33, 9000)
	if err != nil {
		t.Fatal(err)
	}
	totalClose(t, c.TotalWeight(), 9000)
	if c.Len() != 33 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, _ := Random(rand.New(rand.NewSource(7)), 10, 100)
	b, _ := Random(rand.New(rand.NewSource(7)), 10, 100)
	for i := 1; i <= 10; i++ {
		if a.Weight(i) != b.Weight(i) {
			t.Fatal("Random not deterministic for a fixed seed")
		}
	}
}

func TestArgumentValidation(t *testing.T) {
	if _, err := Uniform(0, 100); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := Decrease(5, math.Inf(1)); err == nil {
		t.Error("inf total should fail")
	}
	if _, err := Uniform(5, -1); err == nil {
		t.Error("negative total should fail")
	}
	if _, err := Random(rand.New(rand.NewSource(1)), -2, 100); err == nil {
		t.Error("negative n should fail")
	}
}

package evaluate

import (
	"math"
	"math/rand"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

// FuzzEvaluatorsAgree differentially fuzzes the two independent exact
// oracles (renewal-reward vs absorbing-chain linear solve) and, for
// partial-free schedules, the paper's closed forms, across random chains,
// schedules and platform parameters — including degenerate ones (zero
// rates, zero costs, zero recall).
func FuzzEvaluatorsAgree(f *testing.F) {
	f.Add(int64(1), uint8(6), false, false, false)
	f.Add(int64(2), uint8(1), true, false, true)
	f.Add(int64(3), uint8(12), false, true, false)
	f.Add(int64(4), uint8(9), true, true, true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, zeroF, zeroS, zeroCosts bool) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%12)
		c, err := workload.Random(rng, n, 100+rng.Float64()*50000)
		if err != nil {
			t.Skip()
		}
		p := platform.Hera()
		p.LambdaF *= math.Pow(10, 2*rng.Float64()) // 1x..100x
		p.LambdaS *= math.Pow(10, 2*rng.Float64())
		p.Recall = rng.Float64()
		if zeroF {
			p.LambdaF = 0
		}
		if zeroS {
			p.LambdaS = 0
		}
		if zeroCosts {
			p.CM, p.RM, p.V, p.VStar = 0, 0, 0, 0
		}

		s := schedule.MustNew(n)
		hasPartial := false
		for i := 1; i < n; i++ {
			switch rng.Intn(5) {
			case 1:
				s.Set(i, schedule.Partial)
				hasPartial = true
			case 2:
				s.Set(i, schedule.Guaranteed)
			case 3:
				s.Set(i, schedule.Memory)
			case 4:
				s.Set(i, schedule.Disk)
			}
		}
		s.Set(n, schedule.Disk)

		exact, err := Exact(c, p, s)
		if err != nil {
			t.Skip() // e.g. no-progress configurations
		}
		markov, err := MarkovExact(c, p, s)
		if err != nil {
			t.Fatalf("Exact succeeded but MarkovExact failed: %v", err)
		}
		if !agree(exact, markov, 1e-6) {
			t.Fatalf("oracles disagree: exact=%.10g markov=%.10g", exact, markov)
		}
		if !hasPartial {
			closed, err := core.Evaluate(c, p, s)
			if err != nil {
				t.Fatalf("closed-form evaluation failed: %v", err)
			}
			if !agree(exact, closed, 1e-7) {
				t.Fatalf("closed forms disagree on partial-free schedule: exact=%.10g closed=%.10g", exact, closed)
			}
		}
	})
}

func agree(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
}

package evaluate

import (
	"math/rand"
	"testing"

	"chainckpt/internal/bruteforce"
	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/sim"
	"chainckpt/internal/workload"
)

func scaledCosts(t *testing.T, rng *rand.Rand, p platform.Platform, n int) *platform.Costs {
	t.Helper()
	sizes := make([]float64, n)
	for i := range sizes {
		sizes[i] = 0.1 + 4*rng.Float64()
	}
	costs, err := platform.ScaledCosts(p, sizes)
	if err != nil {
		t.Fatal(err)
	}
	return costs
}

// TestOraclesAgreeUnderHeterogeneousCosts extends the differential
// validation to per-boundary cost tables: renewal oracle vs Markov oracle
// on random schedules, and the closed forms on partial-free ones.
func TestOraclesAgreeUnderHeterogeneousCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(2021))
	p := platform.Hera()
	p.LambdaF *= 80
	p.LambdaS *= 80
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		c, err := workload.Random(rng, n, 25000)
		if err != nil {
			t.Fatal(err)
		}
		costs := scaledCosts(t, rng, p, n)
		s := randomSchedule(rng, n)
		exact, err := ExactWithCosts(c, p, costs, s)
		if err != nil {
			t.Fatal(err)
		}
		markov, err := MarkovExactWithCosts(c, p, costs, s)
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(exact, markov) > 1e-8 {
			t.Errorf("trial %d: exact %.8f vs markov %.8f", trial, exact, markov)
		}
		hasPartial := s.Counts().Partial > 0
		if !hasPartial {
			closed, err := core.EvaluateWithCosts(c, p, costs, s)
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(exact, closed) > 1e-9 {
				t.Errorf("trial %d: exact %.8f vs closed %.8f", trial, exact, closed)
			}
		}
	}
}

// TestDPOptimalUnderHeterogeneousCosts brute-forces small instances with
// random cost tables: the costs-aware DP must match the enumerated
// minimum of the costs-aware closed forms.
func TestDPOptimalUnderHeterogeneousCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := platform.Hera()
	p.LambdaF *= 60
	p.LambdaS *= 60
	for trial := 0; trial < 4; trial++ {
		n := 2 + rng.Intn(4)
		c, err := workload.Random(rng, n, 25000)
		if err != nil {
			t.Fatal(err)
		}
		costs := scaledCosts(t, rng, p, n)
		eval := func(cc *chain.Chain, pp platform.Platform, ss *schedule.Schedule) (float64, error) {
			return core.EvaluateWithCosts(cc, pp, costs, ss)
		}
		for _, alg := range core.Algorithms() {
			dp, err := core.PlanWithCosts(alg, c, p, costs)
			if err != nil {
				t.Fatal(err)
			}
			bf, err := bruteforce.Optimal(alg, c, p, eval)
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(dp.ExpectedMakespan, bf.Value) > 1e-10 {
				t.Errorf("trial %d %s: DP %.8f vs brute force %.8f\nDP: %v\nBF: %v",
					trial, alg, dp.ExpectedMakespan, bf.Value, dp.Schedule, bf.Best)
			}
		}
	}
}

// TestSimulatorMatchesOracleUnderHeterogeneousCosts closes the loop with
// Monte Carlo on a cost-skewed instance.
func TestSimulatorMatchesOracleUnderHeterogeneousCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	n := 10
	c, _ := workload.Uniform(n, 25000)
	p := platform.Hera()
	p.LambdaF *= 40
	p.LambdaS *= 40
	costs := scaledCosts(t, rng, p, n)
	res, err := core.PlanWithCosts(core.AlgADMV, c, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactWithCosts(c, p, costs, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sim.Run(c, p, res.Schedule, sim.Options{
		Replications: 50000, Seed: 9, Workers: 8, Costs: costs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sres.MeanWithin(want, 4.5) {
		t.Errorf("simulated %.2f +- %.2f vs exact %.2f",
			sres.Mean(), sres.Makespan.StdErr(), want)
	}
}

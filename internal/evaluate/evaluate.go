// Package evaluate computes the exact expected makespan of a fixed
// resilience schedule directly from the semantics of the execution model,
// independently of the paper's closed-form algebra.
//
// Model semantics (paper Section II): fail-stop and silent errors strike
// computation as independent Poisson processes. A fail-stop error destroys
// memory; execution restarts from the last disk checkpoint after paying
// R_D (zero if that checkpoint is the virtual task T0). Silent errors
// corrupt the data silently; the corruption survives until a verification
// catches it — always for a guaranteed verification, with probability r
// for a partial one — at which point execution rolls back to the last
// memory checkpoint after paying R_M (zero at T0). Verifications,
// checkpoints and recoveries are themselves failure-free, and checkpoints
// are never corrupted (every memory checkpoint sits behind a guaranteed
// verification).
//
// Two independent evaluators are provided:
//
//   - Exact: per-memory-level renewal-reward analysis. O(n) per segment,
//     suitable for any instance size.
//   - MarkovExact: builds the full absorbing Markov chain over
//     (memory level, position, corruption flag) states and solves the
//     linear system with internal/linalg. O(k^3) per segment; used to
//     cross-validate Exact on small instances.
//
// Together with internal/core.Evaluate (the paper's closed forms) and
// internal/sim (Monte Carlo), this gives four independent routes to the
// same quantity; the test suites assert they agree.
package evaluate

import (
	"errors"
	"fmt"

	"chainckpt/internal/chain"
	"chainckpt/internal/expmath"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// ErrNoProgress reports a schedule/platform combination under which a
// segment can never complete (probability of success is zero).
var ErrNoProgress = errors.New("evaluate: schedule cannot make progress")

// Exact returns the exact model-expected makespan of the fixed schedule.
func Exact(c *chain.Chain, p platform.Platform, sched *schedule.Schedule) (float64, error) {
	return ExactWithCosts(c, p, nil, sched)
}

// ExactWithCosts is Exact with per-boundary checkpoint, recovery and
// verification costs (nil for the platform constants).
func ExactWithCosts(c *chain.Chain, p platform.Platform, costs *platform.Costs, sched *schedule.Schedule) (float64, error) {
	segs, err := split(c, p, costs, sched)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, seg := range segs {
		v, err := seg.renewalValue()
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// segment is the portion of the execution between two consecutive disk
// checkpoints (dPrev excluded, dNext included). Fail-stop errors anywhere
// in the segment roll back to dPrev; completion of dNext's disk
// checkpoint commits the segment permanently.
type segment struct {
	c      *chain.Chain
	p      platform.Platform
	costs  *platform.Costs // nil means platform constants
	dPrev  int
	dNext  int
	levels []level
	rd     float64 // disk recovery cost on reset (0 when dPrev == 0)
}

// boundaryCosts returns the effective costs of boundary i.
func (s *segment) boundaryCosts(i int) platform.BoundaryCosts {
	if s.costs != nil {
		return s.costs.At(i)
	}
	return platform.BoundaryCosts{CD: s.p.CD, CM: s.p.CM, RD: s.p.RD, RM: s.p.RM, VStar: s.p.VStar, V: s.p.V}
}

// level is the portion of a segment governed by one memory checkpoint:
// detected silent errors roll back to the level's base position. points
// holds base = points[0] < ... < points[K], where points[K] is the next
// memory (or disk) station and interior points are verification-only
// stations.
type level struct {
	base    int
	points  []int
	actions []schedule.Action // actions[i] is the action at points[i]; actions[0] unused
	rm      float64           // memory recovery cost (0 when base == 0)
}

// split decomposes a complete schedule into disk segments and memory
// levels.
func split(c *chain.Chain, p platform.Platform, costs *platform.Costs, sched *schedule.Schedule) ([]*segment, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("evaluate: empty chain")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("evaluate: %w", err)
	}
	if sched.Len() != c.Len() {
		return nil, fmt.Errorf("evaluate: schedule for %d tasks but chain has %d", sched.Len(), c.Len())
	}
	if costs != nil {
		if costs.Len() != c.Len() {
			return nil, fmt.Errorf("evaluate: cost table for %d tasks but chain has %d", costs.Len(), c.Len())
		}
		if err := costs.Validate(); err != nil {
			return nil, fmt.Errorf("evaluate: %w", err)
		}
	}
	if err := sched.ValidateComplete(); err != nil {
		return nil, fmt.Errorf("evaluate: %w", err)
	}

	var segs []*segment
	dPrev := 0
	var cur *segment
	newSegment := func(dPrev int) *segment {
		s := &segment{c: c, p: p, costs: costs, dPrev: dPrev}
		if dPrev > 0 {
			if costs != nil {
				s.rd = costs.At(dPrev).RD
			} else {
				s.rd = p.RD
			}
		}
		return s
	}
	newLevel := func(base int) level {
		l := level{base: base, points: []int{base}, actions: []schedule.Action{schedule.None}}
		if base > 0 {
			if costs != nil {
				l.rm = costs.At(base).RM
			} else {
				l.rm = p.RM
			}
		}
		return l
	}
	cur = newSegment(0)
	lvl := newLevel(0)
	for i := 1; i <= sched.Len(); i++ {
		a := sched.At(i)
		if a == schedule.None {
			continue
		}
		lvl.points = append(lvl.points, i)
		lvl.actions = append(lvl.actions, a)
		if a.Has(schedule.Memory) {
			// Close the level; a new one starts at i.
			cur.levels = append(cur.levels, lvl)
			if a.Has(schedule.Disk) {
				cur.dNext = i
				segs = append(segs, cur)
				dPrev = i
				cur = newSegment(dPrev)
			}
			lvl = newLevel(i)
		}
	}
	return segs, nil
}

// stepOutcome aggregates, for a within-level state, the expected time
// until the next terminal event and the probabilities of each terminal:
// rollback to the level base, reset to the segment start (fail-stop), and
// clean forward exit at the closing memory/disk station.
type stepOutcome struct {
	t  float64 // expected time until a terminal event
	rb float64 // P(rollback to level base)
	rs float64 // P(fail-stop reset to segment start)
	fw float64 // P(clean forward exit)
}

// levelStats runs the backward pass over a level's points and returns the
// renewal-aggregated expected time spent in the level per entry, with the
// conditional exit probabilities (forward vs reset).
func (s *segment) levelStats(l level) (u, pFw, pRs float64, err error) {
	k := len(l.points) - 1 // number of intervals
	lf, ls := s.p.LambdaF, s.p.LambdaS
	r := s.p.Recall
	g := 1 - r

	// states[i][c]: at points[i] with corruption flag c, about to traverse
	// interval i -> i+1. Computed backward.
	states := make([][2]stepOutcome, k)
	for i := k - 1; i >= 0; i-- {
		w := s.c.SegmentWeight(l.points[i], l.points[i+1])
		act := l.actions[i+1]
		bc := s.boundaryCosts(l.points[i+1])
		isLast := i+1 == k
		pf := expmath.ProbError(lf, w)
		ps := expmath.ProbError(ls, w)
		tl := expmath.TLost(lf, w)
		for c := 0; c <= 1; c++ {
			var o stepOutcome
			// Fail-stop during the interval: lose tl, pay R_D, reset.
			o.t = pf * (tl + s.rd)
			o.rs = pf
			pn := 1 - pf
			// Corruption flag on arrival (a silent error may strike even
			// if one is already latent; the flag is idempotent).
			probCorr := ps
			if c == 1 {
				probCorr = 1
			}
			arrClean := pn * (1 - probCorr)
			arrCorr := pn * probCorr
			switch {
			case act.Has(schedule.Guaranteed):
				o.t += pn * (w + bc.VStar)
				// Corrupted arrivals are always caught: roll back.
				o.t += arrCorr * l.rm
				o.rb += arrCorr
				if isLast {
					// Clean arrival takes the checkpoint(s) and exits.
					cost := bc.CM
					if act.Has(schedule.Disk) {
						cost += bc.CD
					}
					o.t += arrClean * cost
					o.fw += arrClean
				} else {
					nxt := states[i+1][0]
					o.t += arrClean * nxt.t
					o.rb += arrClean * nxt.rb
					o.rs += arrClean * nxt.rs
					o.fw += arrClean * nxt.fw
				}
			case act.Has(schedule.Partial):
				if isLast {
					return 0, 0, 0, fmt.Errorf("evaluate: level closed by a partial verification at %d", l.points[i+1])
				}
				o.t += pn * (w + bc.V)
				// Detected corruption (prob r): roll back.
				o.t += arrCorr * r * l.rm
				o.rb += arrCorr * r
				// Missed corruption (prob g): continue latent.
				nxt1 := states[i+1][1]
				o.t += arrCorr * g * nxt1.t
				o.rb += arrCorr * g * nxt1.rb
				o.rs += arrCorr * g * nxt1.rs
				o.fw += arrCorr * g * nxt1.fw
				// Clean: continue clean.
				nxt0 := states[i+1][0]
				o.t += arrClean * nxt0.t
				o.rb += arrClean * nxt0.rb
				o.rs += arrClean * nxt0.rs
				o.fw += arrClean * nxt0.fw
			default:
				return 0, 0, 0, fmt.Errorf("evaluate: station at %d has no verification", l.points[i+1])
			}
			states[i][c] = o
		}
	}

	entry := states[0][0]
	denom := 1 - entry.rb
	if denom <= 0 {
		return 0, 0, 0, ErrNoProgress
	}
	// Renewal-reward: every rollback regenerates the entry state.
	return entry.t / denom, entry.fw / denom, entry.rs / denom, nil
}

// renewalValue returns the expected time to traverse the whole segment,
// chaining the levels and closing the fail-stop reset loop analytically.
func (s *segment) renewalValue() (float64, error) {
	L := len(s.levels)
	if L == 0 {
		return 0, fmt.Errorf("evaluate: segment (%d,%d] has no levels", s.dPrev, s.dNext)
	}
	// A_j = U_j + pFw_j*A_{j+1} + pRs_j*A_0, with A_L = 0.
	// Express A_j = a_j + b_j*A_0 backward.
	a, b := 0.0, 0.0
	for j := L - 1; j >= 0; j-- {
		u, pFw, pRs, err := s.levelStats(s.levels[j])
		if err != nil {
			return 0, err
		}
		a = u + pFw*a
		b = pRs + pFw*b
	}
	denom := 1 - b
	if denom <= 0 {
		return 0, ErrNoProgress
	}
	return a / denom, nil
}

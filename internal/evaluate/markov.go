package evaluate

import (
	"fmt"

	"chainckpt/internal/chain"
	"chainckpt/internal/expmath"
	"chainckpt/internal/linalg"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// MarkovExact returns the exact model-expected makespan of the fixed
// schedule by building, for every disk segment, the full absorbing Markov
// chain over states (memory level, position, corruption flag) and solving
// the first-step linear system (I - P) E = t with Gaussian elimination.
//
// It computes the same quantity as Exact through entirely different
// machinery (no renewal argument, no per-level factorization) and is used
// to cross-validate it. State count grows with the square of the number
// of stations per segment, so prefer Exact outside of tests.
func MarkovExact(c *chain.Chain, p platform.Platform, sched *schedule.Schedule) (float64, error) {
	return MarkovExactWithCosts(c, p, nil, sched)
}

// MarkovExactWithCosts is MarkovExact with per-boundary costs (nil for
// the platform constants).
func MarkovExactWithCosts(c *chain.Chain, p platform.Platform, costs *platform.Costs, sched *schedule.Schedule) (float64, error) {
	segs, err := split(c, p, costs, sched)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, seg := range segs {
		v, err := seg.markovValue()
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// markovValue solves the segment's absorbing chain. Variables are indexed
// by (level j, interval index i in 0..K_j-1, corruption flag c); the
// entry state is (0, 0, clean) and absorption happens on clean arrival at
// the segment's closing disk station.
func (s *segment) markovValue() (float64, error) {
	type key struct{ j, i, c int }
	index := make(map[key]int)
	var order []key
	for j, l := range s.levels {
		for i := 0; i < len(l.points)-1; i++ {
			for c := 0; c <= 1; c++ {
				index[key{j, i, c}] = len(order)
				order = append(order, key{j, i, c})
			}
		}
	}
	n := len(order)
	if n == 0 {
		return 0, fmt.Errorf("evaluate: segment (%d,%d] has no states", s.dPrev, s.dNext)
	}

	a := linalg.NewMatrix(n, n) // I - P
	b := make([]float64, n)     // immediate expected time per state
	lf, ls := s.p.LambdaF, s.p.LambdaS
	r := s.p.Recall
	g := 1 - r
	resetIdx := index[key{0, 0, 0}]

	for x, k := range order {
		l := s.levels[k.j]
		kIntervals := len(l.points) - 1
		isLast := k.i+1 == kIntervals
		w := s.c.SegmentWeight(l.points[k.i], l.points[k.i+1])
		act := l.actions[k.i+1]
		bc := s.boundaryCosts(l.points[k.i+1])
		pf := expmath.ProbError(lf, w)
		ps := expmath.ProbError(ls, w)
		tl := expmath.TLost(lf, w)
		pn := 1 - pf
		probCorr := ps
		if k.c == 1 {
			probCorr = 1
		}
		arrClean := pn * (1 - probCorr)
		arrCorr := pn * probCorr

		a[x][x] = 1
		addEdge := func(y int, prob float64) { a[x][y] -= prob }

		// Fail-stop: reset to the segment entry state.
		b[x] += pf * (tl + s.rd)
		addEdge(resetIdx, pf)

		rollbackIdx := index[key{k.j, 0, 0}]
		switch {
		case act.Has(schedule.Guaranteed):
			b[x] += pn * (w + bc.VStar)
			b[x] += arrCorr * l.rm
			addEdge(rollbackIdx, arrCorr)
			if isLast {
				cost := bc.CM
				if act.Has(schedule.Disk) {
					cost += bc.CD
				}
				b[x] += arrClean * cost
				if k.j+1 < len(s.levels) {
					addEdge(index[key{k.j + 1, 0, 0}], arrClean)
				}
				// Otherwise clean arrival at the disk station absorbs.
			} else {
				addEdge(index[key{k.j, k.i + 1, 0}], arrClean)
			}
		case act.Has(schedule.Partial):
			if isLast {
				return 0, fmt.Errorf("evaluate: level closed by a partial verification at %d", l.points[k.i+1])
			}
			b[x] += pn * (w + bc.V)
			b[x] += arrCorr * r * l.rm
			addEdge(rollbackIdx, arrCorr*r)
			addEdge(index[key{k.j, k.i + 1, 1}], arrCorr*g)
			addEdge(index[key{k.j, k.i + 1, 0}], arrClean)
		default:
			return 0, fmt.Errorf("evaluate: station at %d has no verification", l.points[k.i+1])
		}
	}

	e, err := linalg.Solve(a, b)
	if err != nil {
		return 0, fmt.Errorf("evaluate: markov solve: %w", err)
	}
	return e[resetIdx], nil
}

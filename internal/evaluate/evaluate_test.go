package evaluate

import (
	"math"
	"math/rand"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/expmath"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
}

// randomSchedule draws a valid complete schedule: every boundary gets one
// of {none, V, V*, V*+M, V*+M+D} and the final boundary a disk checkpoint.
func randomSchedule(rng *rand.Rand, n int) *schedule.Schedule {
	s := schedule.MustNew(n)
	for i := 1; i < n; i++ {
		switch rng.Intn(5) {
		case 1:
			s.Set(i, schedule.Partial)
		case 2:
			s.Set(i, schedule.Guaranteed)
		case 3:
			s.Set(i, schedule.Memory)
		case 4:
			s.Set(i, schedule.Disk)
		}
	}
	s.Set(n, schedule.Disk)
	return s
}

func TestSingleTaskNoErrors(t *testing.T) {
	p := platform.Hera()
	p.LambdaF, p.LambdaS = 0, 0
	c := chain.MustFromWeights(500)
	s := schedule.MustNew(1)
	s.Set(1, schedule.Disk)
	want := 500 + p.VStar + p.CM + p.CD
	for name, f := range oracles() {
		got, err := f(c, p, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if relDiff(got, want) > 1e-12 {
			t.Errorf("%s = %.10f, want %.10f", name, got, want)
		}
	}
}

func TestFailStopOnlyClosedForm(t *testing.T) {
	// lambda_s = 0, one task, restart from scratch (free R_D):
	// E = (e^{lf W}-1)/lf + V* + C_M + C_D.
	p := platform.Hera()
	p.LambdaS = 0
	p.LambdaF = 1e-4 // exaggerated so the geometric part matters
	w := 3000.0
	c := chain.MustFromWeights(w)
	s := schedule.MustNew(1)
	s.Set(1, schedule.Disk)
	want := expmath.IntExpGrowth(p.LambdaF, w) + p.VStar + p.CM + p.CD
	for name, f := range oracles() {
		got, err := f(c, p, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if relDiff(got, want) > 1e-10 {
			t.Errorf("%s = %.10f, want %.10f", name, got, want)
		}
	}
}

func TestSilentOnlyClosedForm(t *testing.T) {
	// lambda_f = 0, one task, memory rollback to T0 (free R_M):
	// every attempt pays W + V*, expected attempts e^{ls W}:
	// E = e^{ls W}(W + V*) + C_M + C_D.
	p := platform.Atlas()
	p.LambdaF = 0
	p.LambdaS = 1e-4
	w := 3000.0
	c := chain.MustFromWeights(w)
	s := schedule.MustNew(1)
	s.Set(1, schedule.Disk)
	want := math.Exp(p.LambdaS*w)*(w+p.VStar) + p.CM + p.CD
	for name, f := range oracles() {
		got, err := f(c, p, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if relDiff(got, want) > 1e-10 {
			t.Errorf("%s = %.10f, want %.10f", name, got, want)
		}
	}
}

func TestSilentWithMemoryRecoveryCost(t *testing.T) {
	// Two tasks, memory checkpoint after T1: detected errors in T2 pay
	// R_M and re-run only T2. lambda_f = 0 gives a hand-derivable value:
	// E = e^{ls w1}(w1+V*) + C_M            (T1 from scratch, free R_M)
	//   + e^{ls w2}(w2+V*) + (e^{ls w2}-1) R_M + C_M + C_D.
	p := platform.Hera()
	p.LambdaF = 0
	p.LambdaS = 2e-4
	w1, w2 := 1000.0, 2000.0
	c := chain.MustFromWeights(w1, w2)
	s := schedule.MustNew(2)
	s.Set(1, schedule.Memory)
	s.Set(2, schedule.Disk)
	e1 := math.Exp(p.LambdaS*w1)*(w1+p.VStar) + p.CM
	e2 := math.Exp(p.LambdaS*w2)*(w2+p.VStar) + math.Expm1(p.LambdaS*w2)*p.RM + p.CM + p.CD
	want := e1 + e2
	for name, f := range oracles() {
		got, err := f(c, p, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if relDiff(got, want) > 1e-10 {
			t.Errorf("%s = %.10f, want %.10f", name, got, want)
		}
	}
}

func TestPartialVerificationHandComputed(t *testing.T) {
	// lambda_f = 0, two tasks with a partial verification between them
	// and a guaranteed one at the end; rollback always to T0 (free R_M).
	// Derived by first-step analysis (see package comment of evaluate):
	//   T = [a + V + (1-pa*r)(b+V*)] / ((1-pa)(1-pb))
	// with pa, pb the per-task silent probabilities.
	p := platform.Hera()
	p.LambdaF = 0
	p.LambdaS = 5e-4
	a, b := 800.0, 1200.0
	c := chain.MustFromWeights(a, b)
	s := schedule.MustNew(2)
	s.Set(1, schedule.Partial)
	s.Set(2, schedule.Disk)
	pa := expmath.ProbError(p.LambdaS, a)
	pb := expmath.ProbError(p.LambdaS, b)
	r := p.Recall
	want := (a+p.V+(1-pa*r)*(b+p.VStar))/((1-pa)*(1-pb)) + p.CM + p.CD
	for name, f := range oracles() {
		got, err := f(c, p, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if relDiff(got, want) > 1e-10 {
			t.Errorf("%s = %.10f, want %.10f", name, got, want)
		}
	}
}

func TestOraclesAgreeOnRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(2016))
	p := platform.Hera()
	// Stress the error paths with inflated rates too.
	hot := p
	hot.LambdaF *= 200
	hot.LambdaS *= 200
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		c, err := workload.Random(rng, n, 25000)
		if err != nil {
			t.Fatal(err)
		}
		s := randomSchedule(rng, n)
		for hotIdx, plat := range []platform.Platform{p, hot} {
			exact, err := Exact(c, plat, s)
			if err != nil {
				t.Fatalf("trial %d: Exact: %v", trial, err)
			}
			markov, err := MarkovExact(c, plat, s)
			if err != nil {
				t.Fatalf("trial %d: MarkovExact: %v", trial, err)
			}
			// The 200x-inflated rates produce expectations around
			// e^{(lf+ls)W} ~ 1e13 where the Markov linear system is badly
			// conditioned; only the realistic platform gets the tight bar.
			tol := 1e-9
			if hotIdx == 1 {
				tol = 1e-5
			}
			if relDiff(exact, markov) > tol {
				t.Errorf("trial %d (%s, hot=%d): Exact = %.10f, Markov = %.10f (rel %.2e)",
					trial, plat.Name, hotIdx, exact, markov, relDiff(exact, markov))
			}
		}
	}
}

func TestPaperFormulasExactWithoutPartials(t *testing.T) {
	// For schedules without partial verifications, the paper's Equations
	// (2)-(4) (core.Evaluate) are an exact first-step analysis of the
	// model, so all three evaluators must agree to rounding.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(10)
		c, _ := workload.Random(rng, n, 25000)
		s := schedule.MustNew(n)
		for i := 1; i < n; i++ {
			switch rng.Intn(4) {
			case 1:
				s.Set(i, schedule.Guaranteed)
			case 2:
				s.Set(i, schedule.Memory)
			case 3:
				s.Set(i, schedule.Disk)
			}
		}
		s.Set(n, schedule.Disk)
		for _, p := range platform.All() {
			closed, err := core.Evaluate(c, p, s)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := Exact(c, p, s)
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(closed, exact) > 1e-9 {
				t.Errorf("trial %d %s: closed-form %.10f vs exact %.10f (rel %.2e)",
					trial, p.Name, closed, exact, relDiff(closed, exact))
			}
		}
	}
}

func TestPaperFormulasNearExactWithPartials(t *testing.T) {
	// With partial verifications the Section III-B accounting charges the
	// final detection of a latent error at cost V instead of V*, so the
	// closed forms deviate from the exact expectation by a relative error
	// on the order of g*(V*-V)*lambda_s*W / makespan (~1e-6 on the
	// paper's platforms). Assert the deviation stays tiny but measurable
	// machinery-wise.
	rng := rand.New(rand.NewSource(99))
	worst := 0.0
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		c, _ := workload.Random(rng, n, 25000)
		s := randomSchedule(rng, n)
		for _, p := range platform.All() {
			closed, err := core.Evaluate(c, p, s)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := Exact(c, p, s)
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(closed, exact); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-4 {
		t.Errorf("closed forms deviate from exact by %.2e relative, want < 1e-4", worst)
	}
	t.Logf("worst closed-form vs exact relative deviation: %.3e", worst)
}

func TestDPOptimaAgreeWithOracle(t *testing.T) {
	// End-to-end: the schedules returned by the planners, evaluated by the
	// independent oracle, must match the DP's claimed expectation (exactly
	// for ADV*/ADMV*, near-exactly for ADMV).
	for _, pat := range workload.Patterns() {
		c, err := workload.Generate(pat, 18, workload.PaperTotalWeight)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range platform.All() {
			for _, alg := range core.Algorithms() {
				res, err := core.Plan(alg, c, p)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := Exact(c, p, res.Schedule)
				if err != nil {
					t.Fatal(err)
				}
				tol := 1e-9
				if alg == core.AlgADMV {
					tol = 1e-4
				}
				if d := relDiff(res.ExpectedMakespan, exact); d > tol {
					t.Errorf("%s/%s/%s: DP %.8f vs oracle %.8f (rel %.2e)",
						pat, p.Name, alg, res.ExpectedMakespan, exact, d)
				}
			}
		}
	}
}

func TestHigherRecallNeverHurts(t *testing.T) {
	// For a fixed schedule containing partial verifications, increasing
	// the recall r can only reduce the exact expected makespan.
	c, _ := workload.Uniform(10, 25000)
	s := schedule.MustNew(10)
	for i := 1; i < 10; i++ {
		if i%3 == 0 {
			s.Set(i, schedule.Guaranteed)
		} else {
			s.Set(i, schedule.Partial)
		}
	}
	s.Set(10, schedule.Disk)
	p := platform.Hera()
	p.LambdaS *= 100 // make silent errors matter
	prev := math.Inf(1)
	for _, r := range []float64{0, 0.2, 0.5, 0.8, 0.95, 1} {
		p.Recall = r
		got, err := Exact(c, p, s)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev*(1+1e-12) {
			t.Errorf("recall %g: makespan %.6f > previous %.6f", r, got, prev)
		}
		prev = got
	}
}

func TestInputValidation(t *testing.T) {
	c := chain.MustFromWeights(1, 2)
	good := schedule.MustNew(2)
	good.Set(2, schedule.Disk)

	if _, err := Exact(nil, platform.Hera(), good); err == nil {
		t.Error("nil chain should fail")
	}
	incomplete := schedule.MustNew(2)
	if _, err := Exact(c, platform.Hera(), incomplete); err == nil {
		t.Error("incomplete schedule should fail")
	}
	wrongSize := schedule.MustNew(3)
	wrongSize.Set(3, schedule.Disk)
	if _, err := Exact(c, platform.Hera(), wrongSize); err == nil {
		t.Error("mismatched sizes should fail")
	}
	bad := platform.Hera()
	bad.Recall = 2
	if _, err := Exact(c, bad, good); err == nil {
		t.Error("invalid platform should fail")
	}
	if _, err := MarkovExact(c, bad, good); err == nil {
		t.Error("MarkovExact must validate too")
	}
}

// oracles returns the two independent evaluators under a common signature.
func oracles() map[string]func(*chain.Chain, platform.Platform, *schedule.Schedule) (float64, error) {
	return map[string]func(*chain.Chain, platform.Platform, *schedule.Schedule) (float64, error){
		"Exact":       Exact,
		"MarkovExact": MarkovExact,
	}
}

// Package report renders the reproduction's experiment results as a
// single self-contained HTML file with inline SVG charts — the shareable
// companion to the terminal output of cmd/chainexp. Only the standard
// library is used: the charts are hand-built SVG, the page is an
// html/template.
package report

import (
	"fmt"
	"math"
	"strings"

	"chainckpt/internal/ascii"
)

// svgPalette cycles across series.
var svgPalette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// LineChartSVG renders series sharing the x axis as an SVG line chart.
// NaN values break the polyline (series that exist only for some x).
func LineChartSVG(title string, xs []float64, series []ascii.Series, width, height int) string {
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	const margin = 46
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13" font-family="sans-serif">%s</text>`,
		margin, escape(title))

	if len(xs) == 0 || len(series) == 0 {
		b.WriteString(`<text x="50" y="50" font-size="12">no data</text></svg>`)
		return b.String()
	}

	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			if !math.IsNaN(y) {
				ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
			}
		}
	}
	if math.IsInf(ymin, 1) {
		b.WriteString(`<text x="50" y="50" font-size="12">no data</text></svg>`)
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	px := func(x float64) float64 { return float64(margin) + plotW*(x-xmin)/(xmax-xmin) }
	py := func(y float64) float64 { return float64(margin) + plotH*(1-(y-ymin)/(ymax-ymin)) }

	// Axes and labels.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#999"/>`,
		margin, margin, plotW, plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%.0f" font-size="10" font-family="sans-serif">%.4g</text>`,
		2, py(ymax)+4, ymax)
	fmt.Fprintf(&b, `<text x="%d" y="%.0f" font-size="10" font-family="sans-serif">%.4g</text>`,
		2, py(ymin)+4, ymin)
	fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-size="10" font-family="sans-serif">%.4g</text>`,
		px(xmin), height-margin+14, xmin)
	fmt.Fprintf(&b, `<text x="%.0f" y="%d" font-size="10" font-family="sans-serif" text-anchor="end">%.4g</text>`,
		px(xmax), height-margin+14, xmax)

	// Series polylines (broken at NaN gaps) and legend.
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		flush := func() {
			if len(pts) > 0 {
				fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`,
					color, strings.Join(pts, " "))
				pts = pts[:0]
			}
		}
		for i, y := range s.Y {
			if i >= len(xs) {
				break
			}
			if math.IsNaN(y) {
				flush()
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(xs[i]), py(y)))
		}
		flush()
		lx := margin + 110*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`,
			lx, height-18, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`,
			lx+14, height-9, escape(s.Label))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

package report

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"

	"chainckpt/internal/ascii"
	"chainckpt/internal/experiments"
)

func TestLineChartSVGWellFormed(t *testing.T) {
	svg := LineChartSVG("t < & test", []float64{1, 2, 3}, []ascii.Series{
		{Label: "a & b", Y: []float64{1, 2, 3}},
		{Label: "c", Y: []float64{3, math.NaN(), 1}},
	}, 400, 200)
	// Must parse as XML (well-formed, properly escaped).
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 3 {
		// series c has a NaN gap: two polylines; series a: one.
		t.Errorf("polylines = %d, want 3:\n%s", got, svg)
	}
	if !strings.Contains(svg, "a &amp; b") {
		t.Error("legend not escaped")
	}
}

func TestLineChartSVGDegenerate(t *testing.T) {
	if svg := LineChartSVG("x", nil, nil, 10, 10); !strings.Contains(svg, "no data") {
		t.Error("empty chart should say no data")
	}
	svg := LineChartSVG("x", []float64{5}, []ascii.Series{{Label: "p", Y: []float64{7}}}, 400, 200)
	if !strings.Contains(svg, "polyline") {
		t.Error("single point should still emit a polyline")
	}
	allNaN := LineChartSVG("x", []float64{1}, []ascii.Series{{Label: "n", Y: []float64{math.NaN()}}}, 400, 200)
	if !strings.Contains(allNaN, "no data") {
		t.Error("all-NaN should say no data")
	}
}

func TestRenderFullReport(t *testing.T) {
	figs, err := experiments.Fig5(experiments.Config{MaxTasks: 5})
	if err != nil {
		t.Fatal(err)
	}
	data := FromFigures("chainckpt report", figs)
	var buf bytes.Buffer
	if err := Render(&buf, data); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "chainckpt report", "Table I", "Hera", "Coastal SSD",
		"<svg", "Headline gains", "Disk ckpts",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if got := strings.Count(html, "<svg"); got != 4 {
		t.Errorf("expected 4 charts, got %d", got)
	}
}

package report

import (
	"fmt"
	"html/template"
	"io"
	"math"

	"chainckpt/internal/ascii"
	"chainckpt/internal/core"
	"chainckpt/internal/experiments"
)

// Section is one titled block of the report: an optional chart and an
// optional preformatted text body (tables, strips).
type Section struct {
	Title string
	SVG   template.HTML // already-sanitized chart markup
	Pre   string        // monospace body, escaped by the template
}

// Data is the full report content.
type Data struct {
	Title    string
	Subtitle string
	Sections []Section
}

var page = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font-family: sans-serif; max-width: 980px; margin: 2em auto; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }
pre { background: #f6f6f6; padding: 0.8em; overflow-x: auto; font-size: 12px; }
.subtitle { color: #666; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="subtitle">{{.Subtitle}}</p>
{{range .Sections}}
<h2>{{.Title}}</h2>
{{if .SVG}}{{.SVG}}{{end}}
{{if .Pre}}<pre>{{.Pre}}</pre>{{end}}
{{end}}
</body>
</html>
`))

// Render writes the report as HTML.
func Render(w io.Writer, d Data) error {
	return page.Execute(w, d)
}

// FromFigures builds the standard report from regenerated figures: one
// chart per figure (normalized makespan vs n), its ADMV placement strip,
// plus the Table I and gain-summary sections.
func FromFigures(title string, figs []*experiments.Figure) Data {
	d := Data{
		Title: title,
		Subtitle: "Reproduction of Benoit, Cavelan, Robert, Sun: " +
			"Two-Level Checkpointing and Verifications for Linear Task Graphs (PDSEC 2016)",
	}
	d.Sections = append(d.Sections, Section{
		Title: "Table I — platform parameters",
		Pre:   experiments.Table1(),
	})
	for _, f := range figs {
		xs := make([]float64, len(f.Ns))
		for i, n := range f.Ns {
			xs[i] = float64(n)
		}
		var series []ascii.Series
		for _, alg := range f.Algorithms() {
			ys := make([]float64, len(f.Ns))
			for i, n := range f.Ns {
				ys[i] = math.NaN()
				for _, p := range f.Points {
					if p.N == n && p.Algorithm == alg {
						ys[i] = p.Normalized
					}
				}
			}
			series = append(series, ascii.Series{Label: string(alg), Y: ys})
		}
		chartTitle := fmt.Sprintf("%s pattern on %s: normalized makespan vs n", f.Pattern, f.Platform.Name)
		d.Sections = append(d.Sections, Section{
			Title: fmt.Sprintf("%s — %s on %s", f.ID, f.Pattern, f.Platform.Name),
			SVG:   template.HTML(LineChartSVG(chartTitle, xs, series, 860, 300)),
			Pre:   f.Strip(core.AlgADMV),
		})
	}
	d.Sections = append(d.Sections, Section{
		Title: "Headline gains at the largest n",
		Pre:   experiments.GainSummary(figs),
	})
	return d
}

package heuristics

import (
	"math"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

func run(t *testing.T, h Heuristic, c *chain.Chain, p platform.Platform) *Result {
	t.Helper()
	res, err := h(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateComplete(); err != nil {
		t.Fatalf("%s produced invalid schedule: %v", res.Name, err)
	}
	return res
}

func TestAllProduceValidSchedules(t *testing.T) {
	for _, pat := range workload.Patterns() {
		c, err := workload.Generate(pat, 20, 25000)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range platform.All() {
			for _, h := range All() {
				res := run(t, h, c, p)
				if res.ExpectedMakespan < c.TotalWeight() {
					t.Errorf("%s on %s: makespan %f below compute time", res.Name, p.Name, res.ExpectedMakespan)
				}
				// The value must be consistent with the evaluator.
				v, err := core.Evaluate(c, p, res.Schedule)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(v-res.ExpectedMakespan) > 1e-6 {
					t.Errorf("%s: reported %f but evaluates to %f", res.Name, res.ExpectedMakespan, v)
				}
			}
		}
	}
}

func TestDPOptimalBeatsEveryHeuristic(t *testing.T) {
	// The whole point: the DP optimum lower-bounds every heuristic under
	// the same objective.
	for _, pat := range workload.Patterns() {
		c, err := workload.Generate(pat, 25, 25000)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []platform.Platform{platform.Hera(), platform.CoastalSSD()} {
			opt, err := core.PlanADMV(c, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, h := range All() {
				res := run(t, h, c, p)
				if res.ExpectedMakespan < opt.ExpectedMakespan*(1-1e-9) {
					t.Errorf("%s/%s: heuristic %s (%f) beats the optimum (%f)",
						pat, p.Name, res.Name, res.ExpectedMakespan, opt.ExpectedMakespan)
				}
			}
		}
	}
}

func TestGreedyBeatsFinalOnly(t *testing.T) {
	c, _ := workload.Uniform(20, 25000)
	p := platform.Hera()
	final := run(t, FinalOnly, c, p)
	greedy := run(t, GreedyInsert, c, p)
	if greedy.ExpectedMakespan >= final.ExpectedMakespan {
		t.Errorf("greedy (%f) did not improve on final-only (%f)",
			greedy.ExpectedMakespan, final.ExpectedMakespan)
	}
}

func TestGreedyNearOptimalOnUniform(t *testing.T) {
	// Greedy insertion is strong on uniform chains; it should land within
	// a couple percent of the optimum.
	c, _ := workload.Uniform(20, 25000)
	for _, p := range []platform.Platform{platform.Hera(), platform.Atlas()} {
		opt, err := core.PlanADMV(c, p)
		if err != nil {
			t.Fatal(err)
		}
		greedy := run(t, GreedyInsert, c, p)
		gap := greedy.ExpectedMakespan/opt.ExpectedMakespan - 1
		if gap > 0.02 {
			t.Errorf("%s: greedy gap %.4f above 2%%", p.Name, gap)
		}
	}
}

func TestPeriodicScanBeatsFinalOnlyUnderErrors(t *testing.T) {
	c, _ := workload.Uniform(24, 25000)
	p := platform.Hera()
	p.LambdaF *= 10
	p.LambdaS *= 10
	final := run(t, FinalOnly, c, p)
	scan := run(t, PeriodicScan, c, p)
	if scan.ExpectedMakespan >= final.ExpectedMakespan {
		t.Errorf("periodic scan (%f) did not beat final-only (%f) at 10x rates",
			scan.ExpectedMakespan, final.ExpectedMakespan)
	}
}

func TestDalyPeriodicStructure(t *testing.T) {
	c, _ := workload.Uniform(40, 25000)
	p := platform.Hera()
	res := run(t, DalyPeriodic, c, p)
	counts := res.Schedule.Counts()
	// With Hera's rates the Daly periods put several memory checkpoints
	// and verifications inside 25000 s but few (if any) disk checkpoints.
	if counts.Guaranteed == 0 {
		t.Error("DalyPeriodic placed no verifications on Hera")
	}
	if counts.Memory < 2 {
		t.Errorf("DalyPeriodic placed %d memory checkpoints, want >= 2", counts.Memory)
	}
}

func TestDalyPeriodicDisabledSources(t *testing.T) {
	c, _ := workload.Uniform(10, 25000)
	p := platform.Hera()
	p.LambdaF, p.LambdaS = 0, 0
	res := run(t, DalyPeriodic, c, p)
	counts := res.Schedule.Counts()
	if counts != (res.Schedule.Counts()) { // self-consistency
		t.Fatal("unreachable")
	}
	if counts.Disk != 1 || counts.Memory != 1 || counts.Guaranteed != 1 {
		t.Errorf("error-free platform should yield final-only, got %+v", counts)
	}
}

func TestNearestBoundary(t *testing.T) {
	c := chain.MustFromWeights(100, 100, 100, 100) // prefixes 100,200,300,400
	tests := []struct {
		target float64
		want   int
	}{
		{0, 0}, {40, 0}, {60, 1}, {100, 1}, {149, 1}, {151, 2}, {390, 4}, {1000, 4},
	}
	for _, tc := range tests {
		if got := nearestBoundary(c, tc.target); got != tc.want {
			t.Errorf("nearestBoundary(%g) = %d, want %d", tc.target, got, tc.want)
		}
	}
}

func TestHeuristicGapOnSkewedChainIsReal(t *testing.T) {
	// On the HighLow pattern the rigid periodic patterns must trail the
	// DP noticeably more than greedy does: position-aware placement
	// matters on skewed chains. (This is the X4 story.)
	c, _ := workload.HighLow(30, 25000, 0.10, 0.60)
	p := platform.Hera()
	opt, err := core.PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	daly := run(t, DalyPeriodic, c, p)
	if daly.ExpectedMakespan <= opt.ExpectedMakespan {
		t.Errorf("Daly (%f) should trail the optimum (%f) on HighLow",
			daly.ExpectedMakespan, opt.ExpectedMakespan)
	}
}

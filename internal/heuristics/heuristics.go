// Package heuristics implements baseline checkpoint/verification
// placement strategies for linear task graphs. The paper's dynamic
// programs are optimal but specific to linear chains; its conclusion
// calls for heuristics for general workflows. The strategies here are the
// natural contenders a practitioner would reach for first — they give the
// experiments a meaningful yardstick for how much optimality is worth
// (experiment X4 in EXPERIMENTS.md).
//
// All heuristics return complete schedules valued with the paper's
// closed-form model (core.Evaluate), so they are directly comparable to
// the planners of internal/core.
package heuristics

import (
	"fmt"
	"math"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/pattern"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Result is one heuristic's placement and its model-expected makespan.
type Result struct {
	Name             string
	ExpectedMakespan float64
	Schedule         *schedule.Schedule
}

// Heuristic is a placement strategy.
type Heuristic func(*chain.Chain, platform.Platform) (*Result, error)

// All returns the implemented heuristics in increasing order of
// sophistication.
func All() []Heuristic {
	return []Heuristic{FinalOnly, DalyPeriodic, FirstOrderPattern, PeriodicScan, GreedyInsert}
}

// FirstOrderPattern computes the first-order optimal periodic pattern of
// internal/pattern (the divisible-load analysis of the paper's companion
// work [7]) and rounds it onto the chain's boundaries: the strongest
// analytic baseline, asymptotically optimal for long uniform chains.
func FirstOrderPattern(c *chain.Chain, p platform.Platform) (*Result, error) {
	pat, err := pattern.Optimal(p)
	if err != nil {
		return nil, fmt.Errorf("heuristics: FirstOrderPattern: %w", err)
	}
	s, err := pat.Apply(c)
	if err != nil {
		return nil, fmt.Errorf("heuristics: FirstOrderPattern: %w", err)
	}
	return finish("FirstOrderPattern", c, p, s)
}

// FinalOnly places nothing but the mandatory final V*+M+D: the
// no-resilience baseline every strategy must beat on failure-prone
// platforms.
func FinalOnly(c *chain.Chain, p platform.Platform) (*Result, error) {
	s, err := schedule.New(c.Len())
	if err != nil {
		return nil, err
	}
	s.Set(c.Len(), schedule.Disk)
	return finish("FinalOnly", c, p, s)
}

// DalyPeriodic places mechanisms at the boundaries nearest to the
// multiples of first-order optimal periods, in the tradition of Young and
// Daly's checkpointing period sqrt(2*C/lambda):
//
//   - disk checkpoints every T_D = sqrt(2*C_D/lambda_f) seconds of work
//     (fail-stop errors lose on average half a period and cost C_D per
//     period);
//   - memory checkpoints every T_M = sqrt(2*(C_M+V*)/lambda_s) (a memory
//     checkpoint unit includes its guaranteed verification);
//   - guaranteed verifications every T_V = sqrt(2*V*/lambda_s).
//
// A disabled error source (rate 0) disables the corresponding level.
func DalyPeriodic(c *chain.Chain, p platform.Platform) (*Result, error) {
	s, err := schedule.New(c.Len())
	if err != nil {
		return nil, err
	}
	markPeriod := func(period float64, a schedule.Action) {
		if math.IsInf(period, 1) || period <= 0 {
			return
		}
		for k := 1; ; k++ {
			target := float64(k) * period
			if target >= c.TotalWeight() {
				return
			}
			i := nearestBoundary(c, target)
			if i >= 1 && i < c.Len() {
				s.Add(i, a)
			}
		}
	}
	markPeriod(period(2*p.VStar, p.LambdaS), schedule.Guaranteed)
	markPeriod(period(2*(p.CM+p.VStar), p.LambdaS), schedule.Memory)
	markPeriod(period(2*p.CD, p.LambdaF), schedule.Disk)
	s.Set(c.Len(), schedule.Disk)
	return finish("DalyPeriodic", c, p, s)
}

func period(cost, rate float64) float64 {
	if rate == 0 {
		return math.Inf(1)
	}
	return math.Sqrt(cost / rate)
}

// nearestBoundary returns the boundary whose cumulative weight is closest
// to target (binary search over the prefix sums).
func nearestBoundary(c *chain.Chain, target float64) int {
	lo, hi := 0, c.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		if c.SegmentWeight(0, mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		below := c.SegmentWeight(0, lo-1)
		at := c.SegmentWeight(0, lo)
		if target-below < at-target {
			return lo - 1
		}
	}
	return lo
}

// PeriodicScan evaluates every task-periodic schedule "disk checkpoint
// every kD tasks, memory checkpoint every kM tasks" (verifications
// co-located) and keeps the best: the strongest simple pattern family,
// found by exhaustive scan over the O(n^2) period pairs.
func PeriodicScan(c *chain.Chain, p platform.Platform) (*Result, error) {
	n := c.Len()
	eval, err := core.NewEvaluator(c, p, nil)
	if err != nil {
		return nil, err
	}
	var best *Result
	for kD := 1; kD <= n; kD++ {
		for kM := 1; kM <= kD; kM++ {
			s, err := schedule.New(n)
			if err != nil {
				return nil, err
			}
			for i := 1; i < n; i++ {
				switch {
				case i%kD == 0:
					s.Set(i, schedule.Disk)
				case i%kM == 0:
					s.Set(i, schedule.Memory)
				}
			}
			s.Set(n, schedule.Disk)
			v, err := eval.Evaluate(s)
			if err != nil {
				return nil, err
			}
			if best == nil || v < best.ExpectedMakespan {
				best = &Result{Name: "PeriodicScan", ExpectedMakespan: v, Schedule: s}
			}
		}
	}
	return best, nil
}

// GreedyInsert starts from the final-only schedule and repeatedly applies
// the single action change (upgrading one boundary to V, V*, V*+M or
// V*+M+D) that reduces the evaluated makespan the most, stopping at a
// local optimum. This is the classic marginal-gain insertion heuristic.
func GreedyInsert(c *chain.Chain, p platform.Platform) (*Result, error) {
	n := c.Len()
	eval, err := core.NewEvaluator(c, p, nil)
	if err != nil {
		return nil, err
	}
	s, err := schedule.New(n)
	if err != nil {
		return nil, err
	}
	s.Set(n, schedule.Disk)
	cur, err := eval.Evaluate(s)
	if err != nil {
		return nil, err
	}
	upgrades := []schedule.Action{
		schedule.Partial,
		schedule.Guaranteed,
		schedule.Guaranteed | schedule.Memory,
		schedule.Guaranteed | schedule.Memory | schedule.Disk,
	}
	for {
		bestGain := 0.0
		bestI, bestA := 0, schedule.None
		for i := 1; i < n; i++ {
			prev := s.At(i)
			for _, a := range upgrades {
				if a == prev || a&prev != prev {
					continue // only strict upgrades, never removals
				}
				s.Set(i, a)
				v, err := eval.Evaluate(s)
				if err != nil {
					s.Set(i, prev)
					return nil, err
				}
				if gain := cur - v; gain > bestGain+1e-9 {
					bestGain, bestI, bestA = gain, i, a
				}
				s.Set(i, prev)
			}
		}
		if bestI == 0 {
			break
		}
		s.Set(bestI, bestA)
		cur -= bestGain
	}
	// Re-evaluate once to shed accumulated floating-point drift.
	final, err := eval.Evaluate(s)
	if err != nil {
		return nil, err
	}
	return &Result{Name: "GreedyInsert", ExpectedMakespan: final, Schedule: s}, nil
}

func finish(name string, c *chain.Chain, p platform.Platform, s *schedule.Schedule) (*Result, error) {
	v, err := core.Evaluate(c, p, s)
	if err != nil {
		return nil, fmt.Errorf("heuristics: %s: %w", name, err)
	}
	return &Result{Name: name, ExpectedMakespan: v, Schedule: s}, nil
}

package sim

import (
	"bufio"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// traceFixture plans a schedule on a platform hot enough that a traced
// execution contains failures and rollbacks, not just computes.
func traceFixture(t *testing.T) (events []TraceEvent) {
	t.Helper()
	c, err := workload.Uniform(12, 24000)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.Platform{
		Name: "TraceLab", LambdaF: 5e-5, LambdaS: 2e-4,
		CD: 60, CM: 10, RD: 60, RM: 10, VStar: 10, V: 0.5, Recall: 0.8,
	}
	res, err := core.PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	events, err = Trace(c, p, res.Schedule, 42)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestTraceDeterministicPerSeed(t *testing.T) {
	a := traceFixture(t)
	b := traceFixture(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different event logs")
	}
	if len(a) == 0 || a[len(a)-1].Kind != "done" {
		t.Fatalf("trace must end with done: %v", a)
	}
	// Clocks never run backwards.
	for i := 1; i < len(a); i++ {
		if a[i].T < a[i-1].T {
			t.Fatalf("clock regressed at event %d: %v -> %v", i, a[i-1], a[i])
		}
	}
}

// TestFormatTraceRoundTripsOrdering parses the rendered trace back and
// checks that every (time, kind, boundary) line appears in the original
// order — the formatter must neither drop, reorder nor mangle events.
func TestFormatTraceRoundTripsOrdering(t *testing.T) {
	events := traceFixture(t)
	text := FormatTrace(events)

	var parsed []TraceEvent
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		var ev TraceEvent
		if _, err := fmt.Sscanf(sc.Text(), "t=%f %s at boundary %d", &ev.T, &ev.Kind, &ev.Pos); err != nil {
			t.Fatalf("unparseable line %q: %v", sc.Text(), err)
		}
		parsed = append(parsed, ev)
	}
	if len(parsed) != len(events) {
		t.Fatalf("formatted %d events, parsed %d", len(events), len(parsed))
	}
	for i := range events {
		if parsed[i].Kind != events[i].Kind || parsed[i].Pos != events[i].Pos {
			t.Fatalf("event %d round-tripped as %+v, want %+v", i, parsed[i], events[i])
		}
		// T is rendered with two decimals; compare at that precision.
		if diff := parsed[i].T - events[i].T; diff > 0.005 || diff < -0.005 {
			t.Fatalf("event %d time %v drifted from %v", i, parsed[i].T, events[i].T)
		}
	}
}

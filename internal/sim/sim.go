// Package sim is a discrete-event Monte-Carlo simulator of a scheduled
// linear task graph executing under fail-stop and silent errors. It
// implements the execution model of the paper's Section II directly —
// exponential inter-arrival sampling, disk/memory rollbacks, partial and
// guaranteed verifications — and is the end-to-end check of both the
// dynamic programs and the analytic evaluators: simulated mean makespans
// must land inside their confidence intervals around the model
// expectation.
//
// Replications run in parallel on a worker pool; each worker draws an
// independent, reproducible random stream, so a fixed (Seed, Workers)
// pair yields bit-identical results regardless of goroutine interleaving.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"chainckpt/internal/chain"
	"chainckpt/internal/expmath"
	"chainckpt/internal/platform"
	"chainckpt/internal/rng"
	"chainckpt/internal/schedule"
	"chainckpt/internal/stats"
)

// Options configures a simulation run.
type Options struct {
	// Replications is the number of independent executions to simulate.
	Replications int
	// Seed selects the random stream; the same seed reproduces the run.
	Seed uint64
	// Workers is the parallelism (default GOMAXPROCS). The result is
	// deterministic for a fixed (Seed, Workers) pair.
	Workers int
	// Costs, when non-nil, overrides the platform's constant costs with
	// per-boundary values (see platform.Costs).
	Costs *platform.Costs
	// Shapes selects Weibull inter-arrival laws for the error sources
	// (zero value = the model's exponential arrivals); see Shapes.
	Shapes Shapes
}

func (o *Options) normalize() error {
	if o.Replications <= 0 {
		return fmt.Errorf("sim: Replications must be positive, got %d", o.Replications)
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Replications {
		o.Workers = o.Replications
	}
	return nil
}

// Counters tallies simulated events across all replications.
type Counters struct {
	FailStop            int64 // fail-stop errors (each causes a disk rollback)
	Silent              int64 // silent errors injected
	GuaranteedDetected  int64 // corruptions caught by guaranteed verifications
	PartialDetected     int64 // corruptions caught by partial verifications
	PartialMissed       int64 // corruptions that slipped past a partial verification
	DiskRecoveries      int64
	MemoryRecoveries    int64
	CheckpointsMemory   int64 // memory checkpoints taken (incl. co-located)
	CheckpointsDisk     int64
	VerificationsRun    int64 // verifications executed (both kinds)
	CorruptedCompletion int64 // replications finishing with undetected corruption
}

func (c *Counters) add(o Counters) {
	c.FailStop += o.FailStop
	c.Silent += o.Silent
	c.GuaranteedDetected += o.GuaranteedDetected
	c.PartialDetected += o.PartialDetected
	c.PartialMissed += o.PartialMissed
	c.DiskRecoveries += o.DiskRecoveries
	c.MemoryRecoveries += o.MemoryRecoveries
	c.CheckpointsMemory += o.CheckpointsMemory
	c.CheckpointsDisk += o.CheckpointsDisk
	c.VerificationsRun += o.VerificationsRun
	c.CorruptedCompletion += o.CorruptedCompletion
}

// Result summarizes a simulation run.
type Result struct {
	Makespan stats.Welford // per-replication makespans
	Events   Counters
	// Breakdown is the mean per-replication split of execution time into
	// useful compute, wasted compute, verification, checkpointing and
	// recovery; its Total equals Makespan.Mean() up to rounding.
	Breakdown Breakdown
}

// Mean returns the mean simulated makespan.
func (r *Result) Mean() float64 { return r.Makespan.Mean() }

// HalfWidth95 returns the 95% confidence half-width of the mean.
func (r *Result) HalfWidth95() float64 { return r.Makespan.HalfWidth(stats.Z95) }

// Run simulates the schedule opts.Replications times and aggregates the
// results. The schedule must be complete (final disk checkpoint).
func Run(c *chain.Chain, p platform.Platform, sched *schedule.Schedule, opts Options) (*Result, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if err := opts.Shapes.validate(); err != nil {
		return nil, err
	}
	w, err := newWalker(c, p, opts.Costs, sched)
	if err != nil {
		return nil, err
	}
	renewal := !opts.Shapes.exponential()

	type partial struct {
		acc stats.Welford
		ev  Counters
		bd  Breakdown
	}
	parts := make([]partial, opts.Workers)
	root := rng.New(opts.Seed)
	streams := make([]*rng.Source, opts.Workers)
	for i := range streams {
		streams[i] = root.Split()
	}

	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		reps := opts.Replications / opts.Workers
		if i < opts.Replications%opts.Workers {
			reps++
		}
		wg.Add(1)
		go func(i, reps int) {
			defer wg.Done()
			src := streams[i]
			for r := 0; r < reps; r++ {
				var makespan float64
				var ev Counters
				var bd Breakdown
				if renewal {
					makespan, ev, bd = w.replicateRenewal(src, opts.Shapes)
				} else {
					makespan, ev, bd = w.replicate(src, nil)
				}
				parts[i].acc.Add(makespan)
				parts[i].ev.add(ev)
				parts[i].bd.add(bd)
			}
		}(i, reps)
	}
	wg.Wait()

	res := &Result{}
	for i := range parts {
		res.Makespan.Merge(parts[i].acc)
		res.Events.add(parts[i].ev)
		res.Breakdown.add(parts[i].bd)
	}
	res.Breakdown = res.Breakdown.scale(float64(res.Makespan.N()))
	return res, nil
}

// walker holds the immutable, precomputed simulation structure shared by
// all workers.
type walker struct {
	c        *chain.Chain
	p        platform.Platform
	costs    *platform.Costs // nil means platform constants
	stations []schedule.Station
	// nextIdx[pos] is the index of the first station strictly after the
	// boundary pos, for every rollback target (0 and every checkpoint).
	nextIdx []int
}

func newWalker(c *chain.Chain, p platform.Platform, costs *platform.Costs, sched *schedule.Schedule) (*walker, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("sim: empty chain")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if sched.Len() != c.Len() {
		return nil, fmt.Errorf("sim: schedule for %d tasks but chain has %d", sched.Len(), c.Len())
	}
	if costs != nil {
		if costs.Len() != c.Len() {
			return nil, fmt.Errorf("sim: cost table for %d tasks but chain has %d", costs.Len(), c.Len())
		}
		if err := costs.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}
	if err := sched.ValidateComplete(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	st := sched.Stations()
	next := make([]int, c.Len()+1)
	idx := 0
	for pos := 0; pos <= c.Len(); pos++ {
		for idx < len(st) && st[idx].Pos <= pos {
			idx++
		}
		next[pos] = idx
	}
	return &walker{c: c, p: p, costs: costs, stations: st, nextIdx: next}, nil
}

// at returns the effective costs of boundary i.
func (w *walker) at(i int) platform.BoundaryCosts {
	if w.costs != nil {
		return w.costs.At(i)
	}
	return platform.BoundaryCosts{CD: w.p.CD, CM: w.p.CM, RD: w.p.RD, RM: w.p.RM, VStar: w.p.VStar, V: w.p.V}
}

// TraceEvent is one step of a replayed or supervised execution (see
// Trace and internal/runtime, which emits the same events from real
// runs). The JSON form is what cmd/chainserve streams as NDJSON.
type TraceEvent struct {
	// T is the simulated clock after the event completed, in seconds.
	T float64 `json:"t"`
	// Kind is one of compute, failstop, reset, silent, verify, detect,
	// miss, rollback, ckpt-mem, ckpt-disk, done (and replan / resume,
	// emitted by the runtime supervisor's adaptive mode and
	// checkpoint-restore cold start).
	Kind string `json:"kind"`
	// Pos is the boundary the event relates to.
	Pos int `json:"pos"`
}

// replicate simulates one full execution and returns its makespan,
// event counters and time breakdown. A non-nil observer receives every
// event as it happens (used by Trace; nil on the Monte-Carlo hot path).
func (w *walker) replicate(src *rng.Source, obs func(TraceEvent)) (float64, Counters, Breakdown) {
	var ev Counters
	var bd Breakdown
	p := w.p
	t := 0.0
	cur := 0         // current boundary position
	memContent := 0  // position stored in the memory checkpoint
	diskContent := 0 // position stored in the disk checkpoint
	corrupted := false
	i := 0 // index of the next station
	compute := 0.0
	emit := func(kind string, pos int) {
		if obs != nil {
			obs(TraceEvent{T: t, Kind: kind, Pos: pos})
		}
	}

	for i < len(w.stations) {
		st := w.stations[i]
		weight := w.c.SegmentWeight(cur, st.Pos)

		// Fail-stop errors interrupt the computation immediately.
		if x := src.ExpFloat64(p.LambdaF); x < weight {
			t += x
			compute += x
			ev.FailStop++
			emit("failstop", st.Pos)
			if diskContent > 0 {
				rd := w.at(diskContent).RD
				t += rd
				bd.Recovery += rd
			}
			ev.DiskRecoveries++
			cur = diskContent
			memContent = diskContent
			corrupted = false
			i = w.nextIdx[cur]
			emit("reset", cur)
			continue
		}
		t += weight
		compute += weight
		emit("compute", st.Pos)

		// Silent errors corrupt the data without symptoms.
		if src.Bernoulli(expmath.ProbError(p.LambdaS, weight)) {
			corrupted = true
			ev.Silent++
			emit("silent", st.Pos)
		}

		// Arrive at the station and run its verification.
		ev.VerificationsRun++
		if st.Action.Has(schedule.Guaranteed) {
			vstar := w.at(st.Pos).VStar
			t += vstar
			bd.Verification += vstar
			emit("verify", st.Pos)
			if corrupted {
				ev.GuaranteedDetected++
				emit("detect", st.Pos)
				if memContent > 0 {
					rm := w.at(memContent).RM
					t += rm
					bd.Recovery += rm
				}
				ev.MemoryRecoveries++
				cur = memContent
				corrupted = false
				i = w.nextIdx[cur]
				emit("rollback", cur)
				continue
			}
			if st.Action.Has(schedule.Memory) {
				cm := w.at(st.Pos).CM
				t += cm
				bd.Checkpoint += cm
				ev.CheckpointsMemory++
				memContent = st.Pos
				emit("ckpt-mem", st.Pos)
			}
			if st.Action.Has(schedule.Disk) {
				cd := w.at(st.Pos).CD
				t += cd
				bd.Checkpoint += cd
				ev.CheckpointsDisk++
				diskContent = st.Pos
				emit("ckpt-disk", st.Pos)
			}
		} else { // partial verification
			v := w.at(st.Pos).V
			t += v
			bd.Verification += v
			emit("verify", st.Pos)
			if corrupted {
				if src.Bernoulli(p.Recall) {
					ev.PartialDetected++
					emit("detect", st.Pos)
					if memContent > 0 {
						rm := w.at(memContent).RM
						t += rm
						bd.Recovery += rm
					}
					ev.MemoryRecoveries++
					cur = memContent
					corrupted = false
					i = w.nextIdx[cur]
					emit("rollback", cur)
					continue
				}
				ev.PartialMissed++
				emit("miss", st.Pos)
			}
		}
		cur = st.Pos
		i++
	}
	if corrupted {
		// Cannot happen for complete schedules (the final disk checkpoint
		// carries a guaranteed verification) but kept for experiments
		// that disable verification.
		ev.CorruptedCompletion++
	}
	// All computed seconds beyond one clean pass over the chain were
	// rolled back or lost.
	bd.UsefulCompute = w.c.TotalWeight()
	bd.WastedCompute = compute - bd.UsefulCompute
	emit("done", w.c.Len())
	return t, ev, bd
}

// Trace replays a single execution with the given seed and returns its
// event log; a debugging and teaching aid (chainsim -trace renders it).
func Trace(c *chain.Chain, p platform.Platform, sched *schedule.Schedule, seed uint64) ([]TraceEvent, error) {
	w, err := newWalker(c, p, nil, sched)
	if err != nil {
		return nil, err
	}
	var events []TraceEvent
	w.replicate(rng.New(seed), func(ev TraceEvent) { events = append(events, ev) })
	return events, nil
}

// FormatTrace renders an event log, one line per event.
func FormatTrace(events []TraceEvent) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "t=%12.2f  %-9s at boundary %d\n", ev.T, ev.Kind, ev.Pos)
	}
	return b.String()
}

// MeanWithin reports whether the simulated mean is within k standard
// errors of the analytic expectation; helper for validation tests and
// the experiment harness.
func (r *Result) MeanWithin(expected float64, k float64) bool {
	se := r.Makespan.StdErr()
	if se == 0 {
		return r.Mean() == expected
	}
	return math.Abs(r.Mean()-expected) <= k*se
}

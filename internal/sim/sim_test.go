package sim

import (
	"math"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func completeSchedule(n int) *schedule.Schedule {
	s := schedule.MustNew(n)
	s.Set(n, schedule.Disk)
	return s
}

func TestNoErrorsDeterministicMakespan(t *testing.T) {
	p := platform.Hera()
	p.LambdaF, p.LambdaS = 0, 0
	c := chain.MustFromWeights(100, 200, 300)
	s := completeSchedule(3)
	res, err := Run(c, p, s, Options{Replications: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 600 + p.VStar + p.CM + p.CD
	if res.Makespan.Min() != want || res.Makespan.Max() != want {
		t.Errorf("makespan range [%v, %v], want exactly %v",
			res.Makespan.Min(), res.Makespan.Max(), want)
	}
	if res.Events.FailStop != 0 || res.Events.Silent != 0 {
		t.Errorf("events without error rates: %+v", res.Events)
	}
	if res.Events.CheckpointsDisk != 50 || res.Events.CheckpointsMemory != 50 {
		t.Errorf("checkpoint counters: %+v", res.Events)
	}
}

func TestDeterministicForSeedAndWorkers(t *testing.T) {
	c, _ := workload.Uniform(10, 25000)
	p := platform.Hera()
	p.LambdaF *= 50
	p.LambdaS *= 50
	res, err := core.PlanADMVStar(c, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Replications: 2000, Seed: 77, Workers: 4}
	a, err := Run(c, p, res.Schedule, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, p, res.Schedule, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean() != b.Mean() || a.Makespan.Variance() != b.Makespan.Variance() {
		t.Error("same seed and workers must reproduce results exactly")
	}
	if a.Events != b.Events {
		t.Error("event counters must reproduce exactly")
	}
}

func TestMeanMatchesOracleModerateRates(t *testing.T) {
	// End-to-end validation: simulated means must agree with the exact
	// analytic expectation within 4 standard errors. Rates are inflated
	// so errors actually occur within few replications.
	cases := []struct {
		name  string
		mult  float64
		build func(n int) *schedule.Schedule
	}{
		{"checkpoint-free", 40, func(n int) *schedule.Schedule { return completeSchedule(n) }},
		{"memory-every-3", 40, func(n int) *schedule.Schedule {
			s := completeSchedule(n)
			for i := 3; i < n; i += 3 {
				s.Set(i, schedule.Memory)
			}
			return s
		}},
		{"mixed-with-partials", 60, func(n int) *schedule.Schedule {
			s := completeSchedule(n)
			for i := 1; i < n; i++ {
				switch i % 4 {
				case 1, 3:
					s.Set(i, schedule.Partial)
				case 2:
					s.Set(i, schedule.Guaranteed)
				case 0:
					s.Set(i, schedule.Memory)
				}
			}
			return s
		}},
		{"two-disk-segments", 40, func(n int) *schedule.Schedule {
			s := completeSchedule(n)
			s.Set(n/2, schedule.Disk)
			return s
		}},
	}
	const n = 12
	c, _ := workload.Uniform(n, 25000)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := platform.Hera()
			p.LambdaF *= tc.mult
			p.LambdaS *= tc.mult
			s := tc.build(n)
			want, err := evaluate.Exact(c, p, s)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(c, p, s, Options{Replications: 60000, Seed: 2016, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !res.MeanWithin(want, 4) {
				t.Errorf("simulated mean %.2f +- %.2f vs exact %.2f (%.1f sigma)",
					res.Mean(), res.Makespan.StdErr(), want,
					math.Abs(res.Mean()-want)/res.Makespan.StdErr())
			}
		})
	}
}

func TestMeanMatchesDPOptimum(t *testing.T) {
	// Simulate the ADMV-optimal schedule on a realistic platform.
	c, _ := workload.Uniform(20, workload.PaperTotalWeight)
	p := platform.Hera()
	res, err := core.PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := evaluate.Exact(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	simres, err := Run(c, p, res.Schedule, Options{Replications: 40000, Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !simres.MeanWithin(want, 4) {
		t.Errorf("simulated %.2f +- %.2f vs exact %.2f",
			simres.Mean(), simres.Makespan.StdErr(), want)
	}
}

func TestFailStopOnlyNeverDetectsSilent(t *testing.T) {
	c, _ := workload.Uniform(8, 25000)
	p := platform.Hera()
	p.LambdaS = 0
	p.LambdaF *= 100
	s := completeSchedule(8)
	s.Set(4, schedule.Disk)
	res, err := Run(c, p, s, Options{Replications: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events.Silent != 0 || res.Events.GuaranteedDetected != 0 || res.Events.MemoryRecoveries != 0 {
		t.Errorf("silent-related events with lambda_s = 0: %+v", res.Events)
	}
	if res.Events.FailStop == 0 {
		t.Error("expected fail-stop errors at 100x rate")
	}
	if res.Events.FailStop != res.Events.DiskRecoveries {
		t.Errorf("every fail-stop must trigger a disk recovery: %+v", res.Events)
	}
}

func TestSilentOnlyNeverFailStops(t *testing.T) {
	c, _ := workload.Uniform(8, 25000)
	p := platform.Hera()
	p.LambdaF = 0
	p.LambdaS *= 100
	s := completeSchedule(8)
	for i := 2; i < 8; i += 2 {
		s.Set(i, schedule.Memory)
	}
	res, err := Run(c, p, s, Options{Replications: 5000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events.FailStop != 0 || res.Events.DiskRecoveries != 0 {
		t.Errorf("fail-stop events with lambda_f = 0: %+v", res.Events)
	}
	if res.Events.Silent == 0 {
		t.Error("expected silent errors at 100x rate")
	}
	if res.Events.GuaranteedDetected+res.Events.PartialDetected != res.Events.MemoryRecoveries {
		t.Errorf("every detection must trigger a memory recovery: %+v", res.Events)
	}
	if res.Events.CorruptedCompletion != 0 {
		t.Error("complete schedules can never finish corrupted")
	}
}

func TestPartialRecallStatistics(t *testing.T) {
	// With recall r, detected/(detected+missed) at partial verifications
	// should approach r.
	c, _ := workload.Uniform(6, 25000)
	p := platform.Hera()
	p.LambdaF = 0
	p.LambdaS *= 80
	s := completeSchedule(6)
	for i := 1; i < 6; i++ {
		s.Set(i, schedule.Partial)
	}
	res, err := Run(c, p, s, Options{Replications: 30000, Seed: 6, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	det, miss := float64(res.Events.PartialDetected), float64(res.Events.PartialMissed)
	if det+miss < 1000 {
		t.Fatalf("too few partial-verification encounters: %v", det+miss)
	}
	frac := det / (det + miss)
	if math.Abs(frac-p.Recall) > 0.02 {
		t.Errorf("observed recall %.4f, want about %.2f", frac, p.Recall)
	}
}

func TestOptionsValidation(t *testing.T) {
	c := chain.MustFromWeights(1)
	s := completeSchedule(1)
	if _, err := Run(c, platform.Hera(), s, Options{Replications: 0}); err == nil {
		t.Error("zero replications should fail")
	}
	if _, err := Run(nil, platform.Hera(), s, Options{Replications: 1}); err == nil {
		t.Error("nil chain should fail")
	}
	incomplete := schedule.MustNew(1)
	if _, err := Run(c, platform.Hera(), incomplete, Options{Replications: 1}); err == nil {
		t.Error("incomplete schedule should fail")
	}
	wrong := completeSchedule(2)
	if _, err := Run(c, platform.Hera(), wrong, Options{Replications: 1}); err == nil {
		t.Error("size mismatch should fail")
	}
	bad := platform.Hera()
	bad.CD = -1
	if _, err := Run(c, bad, s, Options{Replications: 1}); err == nil {
		t.Error("invalid platform should fail")
	}
}

func TestWorkerCountDoesNotBiasMean(t *testing.T) {
	// Different worker counts use different stream partitions; both must
	// stay consistent with the oracle (no stream-reuse bugs).
	c, _ := workload.Uniform(10, 25000)
	p := platform.Hera()
	p.LambdaF *= 50
	p.LambdaS *= 50
	s := completeSchedule(10)
	s.Set(5, schedule.Memory)
	want, err := evaluate.Exact(c, p, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 16} {
		res, err := Run(c, p, s, Options{Replications: 30000, Seed: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !res.MeanWithin(want, 4.5) {
			t.Errorf("workers=%d: mean %.2f vs exact %.2f (se %.2f)",
				workers, res.Mean(), want, res.Makespan.StdErr())
		}
	}
}

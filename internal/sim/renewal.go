package sim

import (
	"fmt"
	"math"

	"chainckpt/internal/rng"
	"chainckpt/internal/schedule"
)

// Shapes selects non-exponential error inter-arrival laws for the
// simulator. The dynamic programs assume Poisson arrivals (memoryless
// exponential gaps); studies of production systems report Weibull
// inter-arrivals with shape below 1 (bursty failures). Setting a shape
// different from 1 keeps each source's mean time between errors equal to
// the platform's 1/lambda but changes the burstiness, which quantifies
// how robust the exponential-optimal schedules are to model
// misspecification (experiment X7).
type Shapes struct {
	// FailStop is the Weibull shape of fail-stop inter-arrival times
	// (0 or 1 = exponential).
	FailStop float64
	// Silent is the Weibull shape of silent-error inter-arrival times.
	Silent float64
}

func (s Shapes) exponential() bool {
	return (s.FailStop == 0 || s.FailStop == 1) && (s.Silent == 0 || s.Silent == 1)
}

func (s Shapes) validate() error {
	if s.FailStop < 0 || math.IsNaN(s.FailStop) || math.IsInf(s.FailStop, 0) {
		return fmt.Errorf("sim: invalid fail-stop shape %v", s.FailStop)
	}
	if s.Silent < 0 || math.IsNaN(s.Silent) || math.IsInf(s.Silent, 0) {
		return fmt.Errorf("sim: invalid silent shape %v", s.Silent)
	}
	return nil
}

// errorClock generates a renewal process of error arrivals measured in
// accumulated compute time: gaps are Weibull(shape, scale) with the scale
// chosen so the mean gap matches the requested MTBF.
type errorClock struct {
	shape     float64
	scale     float64
	remaining float64 // compute time until the next arrival
}

// newErrorClock builds a clock for a source with the given rate (mean
// 1/rate arrivals per second of compute). A zero rate never fires.
func newErrorClock(rate, shape float64, src *rng.Source) *errorClock {
	c := &errorClock{}
	if shape == 0 {
		shape = 1
	}
	c.shape = shape
	if rate > 0 {
		c.scale = (1 / rate) / math.Gamma(1+1/shape)
	} else {
		c.scale = 0 // Weibull() returns +Inf for scale 0: disabled
	}
	c.remaining = src.Weibull(c.shape, c.scale)
	return c
}

// advance consumes w seconds of compute and reports whether at least one
// error arrived, with the compute time of the first arrival. All
// arrivals within the window are consumed (the corruption flag and the
// fail-stop interruption are idempotent per window).
func (c *errorClock) advance(w float64, src *rng.Source) (fired bool, first float64) {
	if c.remaining >= w {
		c.remaining -= w
		return false, 0
	}
	first = c.remaining
	left := w - c.remaining
	for {
		gap := src.Weibull(c.shape, c.scale)
		if gap > left {
			c.remaining = gap - left
			return true, first
		}
		left -= gap
	}
}

// reset resamples the next arrival; called after a fail-stop error, when
// the machine restarts and both error processes begin anew.
func (c *errorClock) reset(src *rng.Source) {
	c.remaining = src.Weibull(c.shape, c.scale)
}

// replicateRenewal simulates one execution with renewal-process error
// arrivals. It generalizes replicate: with exponential shapes the two
// paths agree statistically (the exponential path remains the default
// because it is faster and preserves the recorded streams of the
// regression tests).
func (w *walker) replicateRenewal(src *rng.Source, shapes Shapes) (float64, Counters, Breakdown) {
	var ev Counters
	var bd Breakdown
	p := w.p
	t := 0.0
	cur := 0
	memContent := 0
	diskContent := 0
	corrupted := false
	i := 0
	compute := 0.0
	fail := newErrorClock(p.LambdaF, shapes.FailStop, src)
	silent := newErrorClock(p.LambdaS, shapes.Silent, src)

	for i < len(w.stations) {
		st := w.stations[i]
		weight := w.c.SegmentWeight(cur, st.Pos)

		// The fail-stop clock interrupts at its first arrival; silent
		// arrivals before that point are irrelevant (memory is lost).
		if fired, first := fail.advance(weight, src); fired {
			t += first
			compute += first
			ev.FailStop++
			if diskContent > 0 {
				rd := w.at(diskContent).RD
				t += rd
				bd.Recovery += rd
			}
			ev.DiskRecoveries++
			cur = diskContent
			memContent = diskContent
			corrupted = false
			i = w.nextIdx[cur]
			fail.reset(src)
			silent.reset(src)
			continue
		}
		// Silent arrivals during the surviving window corrupt the data.
		// The silent clock must only consume the computed window; it was
		// not advanced by the fail-stop branch above.
		if fired, _ := silent.advance(weight, src); fired {
			corrupted = true
			ev.Silent++
		}
		t += weight
		compute += weight

		ev.VerificationsRun++
		if st.Action.Has(schedule.Guaranteed) {
			vstar := w.at(st.Pos).VStar
			t += vstar
			bd.Verification += vstar
			if corrupted {
				ev.GuaranteedDetected++
				if memContent > 0 {
					rm := w.at(memContent).RM
					t += rm
					bd.Recovery += rm
				}
				ev.MemoryRecoveries++
				cur = memContent
				corrupted = false
				i = w.nextIdx[cur]
				continue
			}
			if st.Action.Has(schedule.Memory) {
				cm := w.at(st.Pos).CM
				t += cm
				bd.Checkpoint += cm
				ev.CheckpointsMemory++
				memContent = st.Pos
			}
			if st.Action.Has(schedule.Disk) {
				cd := w.at(st.Pos).CD
				t += cd
				bd.Checkpoint += cd
				ev.CheckpointsDisk++
				diskContent = st.Pos
			}
		} else {
			v := w.at(st.Pos).V
			t += v
			bd.Verification += v
			if corrupted {
				if src.Bernoulli(p.Recall) {
					ev.PartialDetected++
					if memContent > 0 {
						rm := w.at(memContent).RM
						t += rm
						bd.Recovery += rm
					}
					ev.MemoryRecoveries++
					cur = memContent
					corrupted = false
					i = w.nextIdx[cur]
					continue
				}
				ev.PartialMissed++
			}
		}
		cur = st.Pos
		i++
	}
	bd.UsefulCompute = w.c.TotalWeight()
	bd.WastedCompute = compute - bd.UsefulCompute
	return t, ev, bd
}

package sim

import (
	"bytes"
	"math"
	"testing"
	"unicode/utf8"
)

// FuzzTraceEventRoundTrip drives arbitrary events through the canonical
// codec and checks the replay-format contract: encoding is total on
// finite times, decode(encode(x)) recovers x, and re-encoding the
// decoded log reproduces the exact bytes — the byte-stability every
// recording diff depends on.
func FuzzTraceEventRoundTrip(f *testing.F) {
	f.Add(0.0, "compute", 1)
	f.Add(123.456, "ckpt-disk", 17)
	f.Add(-1.5, "verify", 0)
	f.Add(math.MaxFloat64, "done", 24)
	f.Add(math.SmallestNonzeroFloat64, "rollback", -3)
	f.Add(0.1+0.2, "replan", 1<<30)
	f.Add(math.NaN(), "failstop", 2)
	f.Add(math.Inf(1), "reset", 5)
	f.Add(3.14, "kind with \"quotes\" & <angles>\n", 9)

	f.Fuzz(func(t *testing.T, tm float64, kind string, pos int) {
		ev := TraceEvent{T: tm, Kind: kind, Pos: pos}
		enc, err := EncodeEvents([]TraceEvent{ev})
		if math.IsNaN(tm) || math.IsInf(tm, 0) {
			if err == nil {
				t.Fatalf("non-finite time %v encoded without error", tm)
			}
			return
		}
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := DecodeEvents(enc)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v\nencoding: %q", err, enc)
		}
		if len(dec) != 1 {
			t.Fatalf("decoded %d events, want 1", len(dec))
		}
		// Marshal sanitizes invalid UTF-8 in strings; for valid input the
		// round trip must be lossless.
		if utf8.ValidString(kind) {
			if dec[0] != ev {
				t.Fatalf("round trip changed event: %+v -> %+v", ev, dec[0])
			}
		}
		// Byte stability: re-encoding the decoded log reproduces the exact
		// bytes, always.
		enc2, err := EncodeEvents(dec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not byte-stable:\n first: %q\nsecond: %q", enc, enc2)
		}
	})
}

func TestEncodeEventsCanonicalForm(t *testing.T) {
	events := []TraceEvent{
		{T: 0, Kind: "compute", Pos: 1},
		{T: 42.5, Kind: "done", Pos: 12},
	}
	enc, err := EncodeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"t":0,"kind":"compute","pos":1}` + "\n" + `{"t":42.5,"kind":"done","pos":12}` + "\n"
	if string(enc) != want {
		t.Fatalf("canonical form drifted:\n got: %q\nwant: %q", enc, want)
	}
	dec, err := DecodeEvents(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 2 || dec[0] != events[0] || dec[1] != events[1] {
		t.Fatalf("decode mismatch: %+v", dec)
	}
}

func TestDecodeEventsRejectsNonCanonical(t *testing.T) {
	for _, bad := range []string{
		"\n", // blank line
		`{"t":1,"kind":"x","pos":1,"extra":true}` + "\n", // unknown field
		`{"t":"late","kind":"x","pos":1}` + "\n",         // wrong type
		"not json\n",
	} {
		if _, err := DecodeEvents([]byte(bad)); err == nil {
			t.Errorf("DecodeEvents(%q) accepted non-canonical input", bad)
		}
	}
}

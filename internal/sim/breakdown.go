package sim

import (
	"fmt"
	"strings"
)

// Breakdown splits simulated execution time into its model components.
// UsefulCompute + WastedCompute + Verification + Checkpoint + Recovery
// equals the total makespan exactly for every replication.
type Breakdown struct {
	// UsefulCompute is time spent computing work that was never rolled
	// back (exactly the chain's total weight per successful replication).
	UsefulCompute float64
	// WastedCompute is computation lost to rollbacks and fail-stop
	// interruptions (re-executed or corrupted work).
	WastedCompute float64
	// Verification is time spent running partial and guaranteed
	// verifications.
	Verification float64
	// Checkpoint is time spent taking memory and disk checkpoints.
	Checkpoint float64
	// Recovery is time spent restoring from memory or disk checkpoints.
	Recovery float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.UsefulCompute + b.WastedCompute + b.Verification + b.Checkpoint + b.Recovery
}

func (b *Breakdown) add(o Breakdown) {
	b.UsefulCompute += o.UsefulCompute
	b.WastedCompute += o.WastedCompute
	b.Verification += o.Verification
	b.Checkpoint += o.Checkpoint
	b.Recovery += o.Recovery
}

// scale divides every component by k (for per-replication averages).
func (b Breakdown) scale(k float64) Breakdown {
	return Breakdown{
		UsefulCompute: b.UsefulCompute / k,
		WastedCompute: b.WastedCompute / k,
		Verification:  b.Verification / k,
		Checkpoint:    b.Checkpoint / k,
		Recovery:      b.Recovery / k,
	}
}

// String renders the breakdown with percentages of the total.
func (b Breakdown) String() string {
	t := b.Total()
	if t == 0 {
		return "(empty breakdown)"
	}
	var sb strings.Builder
	rows := []struct {
		label string
		v     float64
	}{
		{"useful compute", b.UsefulCompute},
		{"wasted compute", b.WastedCompute},
		{"verification", b.Verification},
		{"checkpointing", b.Checkpoint},
		{"recovery", b.Recovery},
	}
	for i, r := range rows {
		if i > 0 {
			sb.WriteByte('\n')
		}
		fmt.Fprintf(&sb, "%-15s %14.2f s  (%5.2f%%)", r.label, r.v, 100*r.v/t)
	}
	return sb.String()
}

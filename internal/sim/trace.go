// Canonical serialization of event logs. Replay recordings hash and
// diff traces byte-for-byte, so the wire form must be canonical: one
// compact JSON object per line, fields in declaration order, times in
// Go's shortest round-trip float representation. encoding/json already
// guarantees all of that for a struct — these helpers pin the framing
// (NDJSON) and reject the values that cannot round-trip (non-finite
// times), so equal logs always encode to equal bytes and decoding an
// encoding is the identity.
package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// EncodeEvents renders an event log in canonical NDJSON: one JSON
// object per event, terminated by '\n'. It fails on non-finite times —
// JSON cannot represent them, and a lossy encoding would break the
// bit-identical replay contract.
func EncodeEvents(events []TraceEvent) ([]byte, error) {
	var buf bytes.Buffer
	for i, ev := range events {
		if math.IsNaN(ev.T) || math.IsInf(ev.T, 0) {
			return nil, fmt.Errorf("sim: event %d has non-finite time %v", i, ev.T)
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return nil, fmt.Errorf("sim: encode event %d: %w", i, err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// DecodeEvents parses canonical NDJSON back into an event log. Blank
// lines are rejected: a canonical encoding has none, and tolerating
// them would make decode(encode(x)) the identity on more inputs than
// encode can produce.
func DecodeEvents(data []byte) ([]TraceEvent, error) {
	var events []TraceEvent
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var ev TraceEvent
		dec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("sim: decode event line %d: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("sim: decode event line %d: trailing data", line)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: decode events: %w", err)
	}
	return events, nil
}

package sim

import (
	"math"
	"strings"
	"testing"

	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func TestBreakdownSumsToMakespan(t *testing.T) {
	c, _ := workload.Uniform(12, 25000)
	p := platform.Hera()
	p.LambdaF *= 40
	p.LambdaS *= 40
	s := completeSchedule(12)
	for i := 3; i < 12; i += 3 {
		s.Set(i, schedule.Memory)
	}
	s.Set(6, schedule.Disk)
	res, err := Run(c, p, s, Options{Replications: 20000, Seed: 11, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.Breakdown.Total() - res.Mean()); diff > 1e-6*res.Mean() {
		t.Errorf("breakdown total %f vs mean makespan %f", res.Breakdown.Total(), res.Mean())
	}
	if math.Abs(res.Breakdown.UsefulCompute-25000) > 1e-9 {
		t.Errorf("useful compute = %f, want exactly the chain weight", res.Breakdown.UsefulCompute)
	}
	if res.Breakdown.WastedCompute <= 0 {
		t.Error("expected wasted compute at 40x error rates")
	}
	if res.Breakdown.Recovery <= 0 || res.Breakdown.Checkpoint <= 0 || res.Breakdown.Verification <= 0 {
		t.Errorf("all overhead categories should be positive: %+v", res.Breakdown)
	}
}

func TestBreakdownErrorFree(t *testing.T) {
	c, _ := workload.Uniform(5, 1000)
	p := platform.Hera()
	p.LambdaF, p.LambdaS = 0, 0
	s := completeSchedule(5)
	res, err := Run(c, p, s, Options{Replications: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown
	if bd.WastedCompute != 0 || bd.Recovery != 0 {
		t.Errorf("error-free run has waste/recovery: %+v", bd)
	}
	// Aggregation divides the per-worker sums by N, so compare with a
	// rounding tolerance.
	const tol = 1e-9
	if math.Abs(bd.UsefulCompute-1000) > tol ||
		math.Abs(bd.Verification-p.VStar) > tol ||
		math.Abs(bd.Checkpoint-(p.CM+p.CD)) > tol {
		t.Errorf("unexpected breakdown: %+v", bd)
	}
}

func TestBreakdownString(t *testing.T) {
	bd := Breakdown{UsefulCompute: 80, WastedCompute: 10, Verification: 5, Checkpoint: 4, Recovery: 1}
	out := bd.String()
	for _, want := range []string{"useful compute", "80.00", "wasted compute", "(10.00%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown string missing %q:\n%s", want, out)
		}
	}
	var empty Breakdown
	if !strings.Contains(empty.String(), "empty") {
		t.Error("empty breakdown should say so")
	}
}

func TestTraceReplaysOneExecution(t *testing.T) {
	c, _ := workload.Uniform(6, 25000)
	p := platform.Hera()
	p.LambdaF *= 100
	p.LambdaS *= 100
	s := completeSchedule(6)
	s.Set(3, schedule.Memory)
	events, err := Trace(c, p, s, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("trace too short: %v", events)
	}
	last := events[len(events)-1]
	if last.Kind != "done" || last.Pos != 6 {
		t.Errorf("last event = %+v, want done at 6", last)
	}
	// Clock must be non-decreasing.
	prev := 0.0
	for _, ev := range events {
		if ev.T < prev {
			t.Fatalf("clock went backwards at %+v", ev)
		}
		prev = ev.T
	}
	// A trace is deterministic per seed.
	again, err := Trace(c, p, s, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(events) {
		t.Error("trace not deterministic")
	}
	out := FormatTrace(events)
	if !strings.Contains(out, "done") || !strings.Contains(out, "t=") {
		t.Errorf("formatted trace:\n%s", out)
	}
}

func TestTraceValidatesInputs(t *testing.T) {
	c, _ := workload.Uniform(3, 100)
	if _, err := Trace(c, platform.Hera(), schedule.MustNew(3), 1); err == nil {
		t.Error("incomplete schedule should fail")
	}
}

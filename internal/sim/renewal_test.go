package sim

import (
	"math"
	"testing"

	"chainckpt/internal/evaluate"
	"chainckpt/internal/platform"
	"chainckpt/internal/rng"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func TestErrorClockFiringStatistics(t *testing.T) {
	// Count windows with at least one arrival over many fixed windows.
	src := rng.New(31)
	rate := 1.0 / 500 // MTBF 500 s
	const windows = 400000
	const w = 100.0
	frac := func(shape float64) float64 {
		clock := newErrorClock(rate, shape, src)
		fired := 0
		for i := 0; i < windows; i++ {
			if ok, _ := clock.advance(w, src); ok {
				fired++
			}
		}
		return float64(fired) / windows
	}
	// Exponential arrivals have the closed-form firing fraction
	// 1 - e^{-w/MTBF} (the DP's p^f), a direct consistency check between
	// the renewal clock and the analytic model.
	expo := frac(1)
	want := 1 - math.Exp(-w/500)
	if math.Abs(expo-want)/want > 0.02 {
		t.Errorf("shape 1 firing fraction %v, want %v", expo, want)
	}
	// Bursty arrivals (shape < 1) cluster inside fewer windows; regular
	// arrivals (shape > 1) spread across more windows. Same mean rate.
	bursty := frac(0.5)
	regular := frac(2)
	if !(bursty < expo && expo < regular) {
		t.Errorf("firing fractions not ordered: shape0.5=%v shape1=%v shape2=%v",
			bursty, expo, regular)
	}
}

func TestErrorClockDisabled(t *testing.T) {
	src := rng.New(37)
	clock := newErrorClock(0, 1, src)
	for i := 0; i < 1000; i++ {
		if ok, _ := clock.advance(1e12, src); ok {
			t.Fatal("disabled clock fired")
		}
	}
}

func TestShapesValidate(t *testing.T) {
	for _, bad := range []Shapes{{FailStop: -1}, {Silent: math.NaN()}, {FailStop: math.Inf(1)}} {
		if err := bad.validate(); err == nil {
			t.Errorf("shapes %+v should fail", bad)
		}
	}
	if err := (Shapes{FailStop: 0.7, Silent: 2}).validate(); err != nil {
		t.Error(err)
	}
	if !(Shapes{}).exponential() || !(Shapes{FailStop: 1, Silent: 1}).exponential() {
		t.Error("exponential detection wrong")
	}
	if (Shapes{FailStop: 0.7}).exponential() {
		t.Error("weibull shape detected as exponential")
	}
}

// TestRenewalPathMatchesOracleAtShapeOne validates the renewal simulation
// path against the exact oracle: with shape 1 the Weibull renewal process
// is exactly the model's Poisson process, so the means must agree.
func TestRenewalPathMatchesOracleAtShapeOne(t *testing.T) {
	c, _ := workload.Uniform(10, 25000)
	p := platform.Hera()
	p.LambdaF *= 40
	p.LambdaS *= 40
	s := completeSchedule(10)
	s.Set(3, schedule.Memory)
	s.Set(5, schedule.Partial)
	s.Set(7, schedule.Memory)
	want, err := evaluate.Exact(c, p, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, p, s, Options{
		Replications: 60000, Seed: 12, Workers: 8,
		Shapes: Shapes{FailStop: 1, Silent: 1}, // forces the renewal path
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MeanWithin(want, 4) {
		t.Errorf("renewal path mean %.2f +- %.2f vs exact %.2f",
			res.Mean(), res.Makespan.StdErr(), want)
	}
	if diff := math.Abs(res.Breakdown.Total() - res.Mean()); diff > 1e-6*res.Mean() {
		t.Errorf("breakdown total %f vs mean %f", res.Breakdown.Total(), res.Mean())
	}
}

// TestWeibullShapeChangesMakespan is the X7 effect: bursty failures
// (shape < 1) produce a different expected makespan than the exponential
// model predicts, for the very same schedule and MTBFs.
func TestWeibullShapeChangesMakespan(t *testing.T) {
	c, _ := workload.Uniform(12, 25000)
	p := platform.Hera()
	p.LambdaF *= 60
	p.LambdaS *= 60
	s := completeSchedule(12)
	for i := 3; i < 12; i += 3 {
		s.Set(i, schedule.Memory)
	}
	run := func(shape float64) *Result {
		res, err := Run(c, p, s, Options{
			Replications: 60000, Seed: 13, Workers: 8,
			Shapes: Shapes{FailStop: shape, Silent: shape},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	expo := run(1)
	bursty := run(0.5)
	diff := math.Abs(bursty.Mean() - expo.Mean())
	threshold := 5 * (expo.Makespan.StdErr() + bursty.Makespan.StdErr())
	if diff < threshold {
		t.Errorf("shape 0.5 vs 1: means %.2f vs %.2f differ by %.2f, expected > %.2f",
			bursty.Mean(), expo.Mean(), diff, threshold)
	}
}

func TestRunRejectsBadShapes(t *testing.T) {
	c, _ := workload.Uniform(3, 100)
	s := completeSchedule(3)
	if _, err := Run(c, platform.Hera(), s, Options{
		Replications: 10, Shapes: Shapes{FailStop: -2},
	}); err == nil {
		t.Error("invalid shapes should fail")
	}
}

// Package pattern implements first-order-optimal periodic resilience
// patterns for divisible loads, in the spirit of the paper's companion
// work (Benoit, Cavelan, Robert, Sun, "Optimal resilience patterns to
// cope with fail-stop and silent errors", IPDPS 2016 — reference [7] of
// the reproduced paper). The paper positions its dynamic programs
// *against* this approach: periodic patterns are asymptotically optimal
// for long divisible applications but cannot exploit task boundaries or
// irregular weights. This package makes that comparison measurable
// (experiment X5): it computes the first-order optimal pattern, rounds it
// onto a task chain, and the experiments evaluate the result against the
// exact DP optimum with the exact oracle.
//
// # Model
//
// A pattern of work length W ends with a disk checkpoint and contains M
// equal memory segments (each ending with a guaranteed verification and a
// memory checkpoint), each split by V partial verifications into V+1
// equal sub-intervals. Its first-order overhead per unit of work is
//
//	H(W,M,V) = O/W + (lambda_f/2 + lambda_s*c(V,r)/M) * W
//	           + lambda_f*R_D + lambda_s*R_M
//
// where O = C_D + M*(C_M+V*) + M*V*V_cost is the pattern's error-free
// cost and c(V,r) is the expected detection offset of a silent error
// within its memory segment, as a fraction of the segment length.
// Minimizing over W gives W* = sqrt(O / (lambda_f/2 + lambda_s*c/M));
// the discrete (M, V) pair is found by scanning.
package pattern

import (
	"fmt"
	"math"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Pattern is a first-order-optimal periodic resilience pattern.
type Pattern struct {
	// W is the work length of one pattern in seconds (+Inf when the
	// platform is error-free and no interior action pays off).
	W float64
	// M is the number of memory segments per disk checkpoint.
	M int
	// V is the number of partial verifications per memory segment.
	V int
	// Overhead is the predicted first-order overhead H* (expected extra
	// time per unit of work, excluding the rate-independent recovery
	// terms common to all patterns).
	Overhead float64
}

// searchLimits bound the (M, V) scan; first-order optima on realistic
// platforms sit far inside.
const (
	maxSegments = 64
	maxPartials = 256
)

// Optimal computes the first-order optimal pattern for the platform.
func Optimal(p platform.Platform) (Pattern, error) {
	if err := p.Validate(); err != nil {
		return Pattern{}, fmt.Errorf("pattern: %w", err)
	}
	if p.LambdaF == 0 && p.LambdaS == 0 {
		return Pattern{W: math.Inf(1), M: 1, V: 0}, nil
	}
	best := Pattern{Overhead: math.Inf(1)}
	r := p.Recall
	for m := 1; m <= maxSegments; m++ {
		for v := 0; v <= maxPartials; v++ {
			cost := p.CD + float64(m)*(p.CM+p.VStar) + float64(m)*float64(v)*p.V
			slope := p.LambdaF/2 + p.LambdaS*cDetect(v, r)/float64(m)
			if slope == 0 {
				continue
			}
			h := 2 * math.Sqrt(cost*slope)
			if h < best.Overhead {
				best = Pattern{
					W:        math.Sqrt(cost / slope),
					M:        m,
					V:        v,
					Overhead: h,
				}
			}
			// Adding partial verifications past the point where the cost
			// term dominates cannot help; break early once v*V alone
			// exceeds the current best's total cost.
			if float64(m)*float64(v)*p.V > 4*cost {
				break
			}
		}
	}
	if math.IsInf(best.Overhead, 1) {
		return Pattern{}, fmt.Errorf("pattern: no finite pattern found")
	}
	return best, nil
}

// cDetect returns the expected detection offset of a silent error within
// its memory segment, as a fraction of the segment length: the error
// strikes uniformly, the v partial verifications at the interior
// sub-interval boundaries each catch it with probability r, and the
// closing guaranteed verification catches whatever slipped through.
//
// cDetect(0, r) = 1 (detection only at the segment end) and
// cDetect(v, 1) -> 1/2 as v grows (detection at the next boundary).
func cDetect(v int, r float64) float64 {
	if v < 0 {
		return 1
	}
	g := 1 - r
	u := 1 / float64(v+1)
	total := 0.0
	for k := 0; k <= v; k++ {
		// Error in sub-interval k: detected at the end of sub-interval
		// j >= k (a partial for j < v) after j-k misses, else at the
		// closing guaranteed verification (offset 1).
		d := 0.0
		miss := 1.0
		for j := k; j < v; j++ {
			d += r * miss * float64(j+1) * u
			miss *= g
		}
		d += miss * 1
		total += d
	}
	return total * u // average over the v+1 equally likely sub-intervals
}

// Apply rounds the pattern onto a task chain: every multiple of the
// sub-interval length maps to the nearest task boundary, with disk marks
// at pattern ends, memory marks at segment ends and partial marks at
// sub-interval ends. The final boundary always receives the mandatory
// disk checkpoint. Positions colliding after rounding keep the strongest
// mechanism.
func (pat Pattern) Apply(c *chain.Chain) (*schedule.Schedule, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("pattern: empty chain")
	}
	s, err := schedule.New(c.Len())
	if err != nil {
		return nil, err
	}
	if !math.IsInf(pat.W, 1) {
		if pat.M < 1 || pat.V < 0 || pat.W <= 0 {
			return nil, fmt.Errorf("pattern: invalid pattern %+v", pat)
		}
		sub := pat.W / (float64(pat.M) * float64(pat.V+1))
		perDisk := pat.M * (pat.V + 1)
		for k := 1; ; k++ {
			target := float64(k) * sub
			if target >= c.TotalWeight() {
				break
			}
			i := nearestBoundary(c, target)
			if i < 1 || i >= c.Len() {
				continue
			}
			switch {
			case k%perDisk == 0:
				s.Add(i, schedule.Disk)
			case k%(pat.V+1) == 0:
				s.Add(i, schedule.Memory)
			default:
				s.Add(i, schedule.Partial)
			}
		}
	}
	s.Set(c.Len(), s.At(c.Len())|schedule.Disk)
	return s, nil
}

// nearestBoundary returns the boundary whose cumulative weight is closest
// to target.
func nearestBoundary(c *chain.Chain, target float64) int {
	lo, hi := 0, c.Len()
	for lo < hi {
		mid := (lo + hi) / 2
		if c.SegmentWeight(0, mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 {
		below := c.SegmentWeight(0, lo-1)
		at := c.SegmentWeight(0, lo)
		if target-below < at-target {
			return lo - 1
		}
	}
	return lo
}

package pattern

import (
	"math"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

func TestCDetectBoundaryCases(t *testing.T) {
	if got := cDetect(0, 0.8); math.Abs(got-1) > 1e-12 {
		t.Errorf("cDetect(0, r) = %g, want 1", got)
	}
	// With recall 0 every partial is useless: detection at the segment
	// end regardless of v.
	for _, v := range []int{1, 5, 20} {
		if got := cDetect(v, 0); math.Abs(got-1) > 1e-12 {
			t.Errorf("cDetect(%d, 0) = %g, want 1", v, got)
		}
	}
	// With perfect recall and many partials, detection happens at the
	// next boundary: c -> 1/2.
	if got := cDetect(200, 1); math.Abs(got-0.5) > 0.01 {
		t.Errorf("cDetect(200, 1) = %g, want about 0.5", got)
	}
	// Exact value for v=1, r=1: sub-interval length 1/2; error in first
	// half detected at 1/2, in second half at 1: c = 3/4.
	if got := cDetect(1, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("cDetect(1, 1) = %g, want 0.75", got)
	}
}

func TestCDetectMonotone(t *testing.T) {
	// More partials and better recall can only reduce the detection
	// offset.
	prev := math.Inf(1)
	for v := 0; v <= 30; v++ {
		c := cDetect(v, 0.8)
		if c > prev+1e-12 {
			t.Fatalf("cDetect not monotone in v at %d: %g > %g", v, c, prev)
		}
		prev = c
	}
	prev = math.Inf(1)
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := cDetect(5, r)
		if c > prev+1e-12 {
			t.Fatalf("cDetect not monotone in r at %g: %g > %g", r, c, prev)
		}
		prev = c
	}
}

func TestOptimalOnTableIPlatforms(t *testing.T) {
	for _, p := range platform.All() {
		pat, err := Optimal(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !(pat.W > 0) || math.IsInf(pat.W, 1) {
			t.Errorf("%s: W = %g", p.Name, pat.W)
		}
		if pat.M < 1 || pat.V < 0 {
			t.Errorf("%s: degenerate pattern %+v", p.Name, pat)
		}
		if pat.Overhead <= 0 || pat.Overhead > 0.5 {
			t.Errorf("%s: implausible overhead %g", p.Name, pat.Overhead)
		}
		// The disk period must exceed the memory period's worth of work.
		if pat.M > 1 && pat.W/float64(pat.M) <= 0 {
			t.Errorf("%s: bad segmentation %+v", p.Name, pat)
		}
	}
}

func TestOptimalErrorFree(t *testing.T) {
	p := platform.Hera()
	p.LambdaF, p.LambdaS = 0, 0
	pat, err := Optimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(pat.W, 1) {
		t.Errorf("error-free pattern should be infinite, got %+v", pat)
	}
	c, _ := workload.Uniform(10, 1000)
	s, err := pat.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	counts := s.Counts()
	if counts.Disk != 1 || counts.Partial != 0 {
		t.Errorf("error-free apply: %+v", counts)
	}
}

func TestOptimalRejectsInvalidPlatform(t *testing.T) {
	p := platform.Hera()
	p.Recall = -2
	if _, err := Optimal(p); err == nil {
		t.Error("invalid platform should fail")
	}
}

func TestApplyProducesValidSchedules(t *testing.T) {
	for _, p := range platform.All() {
		pat, err := Optimal(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, pattern := range workload.Patterns() {
			c, err := workload.Generate(pattern, 50, workload.PaperTotalWeight)
			if err != nil {
				t.Fatal(err)
			}
			s, err := pat.Apply(c)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, pattern, err)
			}
			if err := s.ValidateComplete(); err != nil {
				t.Fatalf("%s/%s: %v", p.Name, pattern, err)
			}
		}
	}
}

func TestPatternPredictionMatchesOracle(t *testing.T) {
	// The first-order overhead prediction should agree with the exact
	// oracle's valuation of the applied pattern within ~35% on a dense
	// uniform chain (first-order accuracy plus rounding losses).
	c, _ := workload.Uniform(50, workload.PaperTotalWeight)
	for _, p := range []platform.Platform{platform.Hera(), platform.Atlas()} {
		pat, err := Optimal(p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := pat.Apply(c)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := evaluate.Exact(c, p, s)
		if err != nil {
			t.Fatal(err)
		}
		actual := exact/c.TotalWeight() - 1
		predicted := pat.Overhead + p.LambdaF*p.RD + p.LambdaS*p.RM
		if actual <= 0 {
			t.Fatalf("%s: non-positive measured overhead %g", p.Name, actual)
		}
		if rel := math.Abs(actual-predicted) / actual; rel > 0.35 {
			t.Errorf("%s: predicted overhead %.4f vs measured %.4f (rel %.2f)",
				p.Name, predicted, actual, rel)
		}
	}
}

func TestPatternTrailsDPButStaysClose(t *testing.T) {
	// X5 in miniature: on a dense uniform chain the rounded pattern must
	// be within about one percentage point of overhead of the exact DP
	// optimum, and never beat it (the DP is optimal per boundary).
	c, _ := workload.Uniform(50, workload.PaperTotalWeight)
	p := platform.Hera()
	pat, err := Optimal(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := pat.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	patExact, err := evaluate.Exact(c, p, s)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := core.PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	dpExact, err := evaluate.Exact(c, p, dp.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if patExact < dpExact*(1-1e-6) {
		t.Fatalf("pattern (%f) beats the DP optimum (%f)", patExact, dpExact)
	}
	gap := patExact/dpExact - 1
	if gap > 0.02 {
		t.Errorf("pattern gap vs DP = %.4f, want < 2%% on dense uniform chains", gap)
	}
	t.Logf("pattern W*=%.0fs M=%d V=%d; gap vs DP = %.3f%%", pat.W, pat.M, pat.V, 100*gap)
}

package ascii

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"a", "1"},
		{"longer", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator line %q", lines[1])
	}
	// "value" column must start at the same offset in every row.
	col := strings.Index(lines[0], "value")
	if got := strings.Index(lines[3], "22"); got != col {
		t.Errorf("column misaligned: header at %d, cell at %d\n%s", col, got, out)
	}
}

func TestTableHandlesRaggedRows(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Errorf("missing cell:\n%s", out)
	}
}

func TestLineChartBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	out := LineChart("title", xs, []Series{
		{Label: "up", Y: []float64{1, 2, 3, 4, 5}},
		{Label: "down", Y: []float64{5, 4, 3, 2, 1}},
	}, 40, 10)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing markers")
	}
	// Max label on the first plotted row, min on the last.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "5") {
		t.Errorf("expected ymax label on first row: %q", lines[1])
	}
}

func TestLineChartSkipsNaN(t *testing.T) {
	out := LineChart("", []float64{1, 2, 3}, []Series{
		{Label: "partial", Y: []float64{math.NaN(), 2, math.NaN()}},
	}, 20, 5)
	markers := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") { // plot rows only, not the legend
			markers += strings.Count(line, "*")
		}
	}
	if markers != 1 {
		t.Errorf("want exactly one marker in the grid:\n%s", out)
	}
}

func TestLineChartDegenerate(t *testing.T) {
	if out := LineChart("t", nil, nil, 20, 5); !strings.Contains(out, "no data") {
		t.Errorf("empty chart: %q", out)
	}
	out := LineChart("t", []float64{1}, []Series{{Label: "pt", Y: []float64{3}}}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Errorf("single point should render:\n%s", out)
	}
	allNaN := LineChart("t", []float64{1}, []Series{{Label: "x", Y: []float64{math.NaN()}}}, 20, 5)
	if !strings.Contains(allNaN, "no data") {
		t.Errorf("all-NaN chart: %q", allNaN)
	}
}

func TestLineChartClampsTinyDimensions(t *testing.T) {
	out := LineChart("", []float64{1, 2}, []Series{{Label: "s", Y: []float64{1, 2}}}, 1, 1)
	if len(out) == 0 {
		t.Error("chart with tiny dimensions must still render")
	}
}

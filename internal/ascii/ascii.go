// Package ascii renders the experiment outputs in plain text: aligned
// tables, multi-series line charts, and the placement strips of the
// paper's Figure 6. It keeps the reproduction fully terminal-based, with
// CSV files as the machine-readable companion.
package ascii

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows under headers with space-padded columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of a chart.
type Series struct {
	Label string
	Y     []float64 // aligned with the shared X values
}

// seriesMarkers are cycled across series.
var seriesMarkers = []byte{'*', 'o', '+', 'x', '#', '@'}

// LineChart renders series sharing the x axis as a fixed-size text plot.
// NaN values are skipped (useful for series that only exist for some x).
func LineChart(title string, xs []float64, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(xs) == 0 || len(series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if math.IsInf(ymin, 1) {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for i, y := range s.Y {
			if i >= len(xs) || math.IsNaN(y) {
				continue
			}
			col := int(float64(width-1) * (xs[i] - xmin) / (xmax - xmin))
			row := height - 1 - int(float64(height-1)*(y-ymin)/(ymax-ymin))
			grid[row][col] = marker
		}
	}

	labelW := 10
	for r := 0; r < height; r++ {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%9.4g", ymax)
		case height - 1:
			label = fmt.Sprintf("%9.4g", ymin)
		default:
			label = strings.Repeat(" ", 9)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, grid[r])
	}
	fmt.Fprintf(&b, "%s %s\n", strings.Repeat(" ", labelW),
		axisLine(xmin, xmax, width))
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", seriesMarkers[i%len(seriesMarkers)], s.Label)
	}
	fmt.Fprintf(&b, "%s %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "  "))
	return b.String()
}

func axisLine(xmin, xmax float64, width int) string {
	left := fmt.Sprintf("%-.4g", xmin)
	right := fmt.Sprintf("%.4g", xmax)
	pad := width + 2 - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	return left + strings.Repeat(" ", pad) + right
}

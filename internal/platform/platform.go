// Package platform describes the resilience parameters of an execution
// platform: error rates, checkpoint and recovery costs, and verification
// costs. It ships the four platforms of the paper's Table I, whose error
// rates and checkpoint costs were measured on real applications by the
// Scalable Checkpoint/Restart (SCR) study of Moody et al. (SC'10).
package platform

import (
	"encoding/json"
	"fmt"
	"math"

	"chainckpt/internal/expmath"
)

// Platform bundles every model parameter of Section II of the paper. All
// rates are platform-level errors per second; all costs are seconds.
type Platform struct {
	// Name identifies the platform in reports.
	Name string `json:"name"`
	// Nodes is the machine size; informational only.
	Nodes int `json:"nodes,omitempty"`

	// LambdaF is the fail-stop (hardware crash) Poisson arrival rate.
	LambdaF float64 `json:"lambda_f"`
	// LambdaS is the silent-data-corruption Poisson arrival rate.
	LambdaS float64 `json:"lambda_s"`

	// CD and CM are the disk and in-memory checkpoint costs.
	CD float64 `json:"c_d"`
	CM float64 `json:"c_m"`
	// RD and RM are the disk and in-memory recovery costs. RD includes the
	// cost of restoring the memory state (the paper folds R_M into R_D).
	RD float64 `json:"r_d"`
	RM float64 `json:"r_m"`

	// VStar is the cost of a guaranteed verification (recall 1).
	VStar float64 `json:"v_star"`
	// V is the cost of a partial verification with recall Recall.
	V float64 `json:"v"`
	// Recall is the fraction r of silent errors a partial verification
	// detects; the paper uses r = 0.8.
	Recall float64 `json:"recall"`
}

// G returns g = 1 - r, the fraction of silent errors a partial
// verification misses.
func (p Platform) G() float64 { return 1 - p.Recall }

// FailStopMTBF returns the platform mean time between fail-stop errors in
// seconds.
func (p Platform) FailStopMTBF() float64 { return expmath.MTBF(p.LambdaF) }

// SilentMTBF returns the platform mean time between silent errors in
// seconds.
func (p Platform) SilentMTBF() float64 { return expmath.MTBF(p.LambdaS) }

// Validate checks that every parameter is usable by the model.
func (p Platform) Validate() error {
	if err := expmath.CheckRate(p.LambdaF); err != nil {
		return fmt.Errorf("platform %q: lambda_f: %w", p.Name, err)
	}
	if err := expmath.CheckRate(p.LambdaS); err != nil {
		return fmt.Errorf("platform %q: lambda_s: %w", p.Name, err)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"C_D", p.CD}, {"C_M", p.CM}, {"R_D", p.RD}, {"R_M", p.RM},
		{"V*", p.VStar}, {"V", p.V},
	} {
		if err := expmath.CheckDuration(c.v); err != nil {
			return fmt.Errorf("platform %q: %s: %w", p.Name, c.name, err)
		}
	}
	if math.IsNaN(p.Recall) || p.Recall < 0 || p.Recall > 1 {
		return fmt.Errorf("platform %q: recall %v outside [0,1]", p.Name, p.Recall)
	}
	return nil
}

// String renders a one-line summary.
func (p Platform) String() string {
	return fmt.Sprintf("%s{lambda_f=%.3g lambda_s=%.3g C_D=%g C_M=%g V*=%g V=%g r=%g}",
		p.Name, p.LambdaF, p.LambdaS, p.CD, p.CM, p.VStar, p.V, p.Recall)
}

// withPaperDefaults applies the simulation assumptions of Section IV:
// recovery costs equal checkpoint costs (R_D = C_D, R_M = C_M), a
// guaranteed verification checks all of memory (V* = C_M), partial
// verifications cost V = V*/100 and have recall r = 0.8.
func withPaperDefaults(p Platform) Platform {
	p.RD = p.CD
	p.RM = p.CM
	p.VStar = p.CM
	p.V = p.VStar / 100
	p.Recall = 0.8
	return p
}

// Hera returns the 256-node Hera platform of Table I (worst error rates:
// fail-stop MTBF 12.2 days, silent MTBF 3.4 days).
func Hera() Platform {
	return withPaperDefaults(Platform{
		Name: "Hera", Nodes: 256,
		LambdaF: 9.46e-7, LambdaS: 3.38e-6,
		CD: 300, CM: 15.4,
	})
}

// Atlas returns the 512-node Atlas platform of Table I (highest silent
// error rate).
func Atlas() Platform {
	return withPaperDefaults(Platform{
		Name: "Atlas", Nodes: 512,
		LambdaF: 5.19e-7, LambdaS: 7.78e-6,
		CD: 439, CM: 9.1,
	})
}

// Coastal returns the 1024-node Coastal platform of Table I (fail-stop
// MTBF 28.8 days, silent MTBF 5.8 days).
func Coastal() Platform {
	return withPaperDefaults(Platform{
		Name: "Coastal", Nodes: 1024,
		LambdaF: 4.02e-7, LambdaS: 2.01e-6,
		CD: 1051, CM: 4.5,
	})
}

// CoastalSSD returns the Coastal platform with SSD-based in-memory
// checkpointing: more space, much higher checkpoint costs.
func CoastalSSD() Platform {
	return withPaperDefaults(Platform{
		Name: "Coastal SSD", Nodes: 1024,
		LambdaF: 4.02e-7, LambdaS: 2.01e-6,
		CD: 2500, CM: 180.0,
	})
}

// All returns the four platforms of Table I in paper order.
func All() []Platform {
	return []Platform{Hera(), Atlas(), Coastal(), CoastalSSD()}
}

// ByName looks a platform up by its Table I name (case-sensitive). It
// also accepts the compact alias "CoastalSSD".
func ByName(name string) (Platform, error) {
	if name == "CoastalSSD" {
		return CoastalSSD(), nil
	}
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("platform: unknown platform %q", name)
}

// FromJSON decodes and validates a platform description, so users can
// experiment with their own parameters as the paper invites.
func FromJSON(data []byte) (Platform, error) {
	var p Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return Platform{}, fmt.Errorf("platform: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Platform{}, err
	}
	return p, nil
}

package platform

import (
	"fmt"

	"chainckpt/internal/expmath"
)

// BoundaryCosts holds the six cost parameters of one task boundary.
type BoundaryCosts struct {
	CD    float64 `json:"c_d"`
	CM    float64 `json:"c_m"`
	RD    float64 `json:"r_d"`
	RM    float64 `json:"r_m"`
	VStar float64 `json:"v_star"`
	V     float64 `json:"v"`
}

// Costs assigns checkpoint, recovery and verification costs to every task
// boundary of an n-task chain. The paper's model uses platform-wide
// constants, but in practice these costs scale with the data volume alive
// at each boundary (a checkpoint after a reduction is much cheaper than
// one after a mesh refinement). Every planner, evaluator and the
// simulator accept a Costs table; a nil table means "use the platform
// constants everywhere".
//
// Boundary 0 is the virtual task T0: its recovery costs are always zero
// (restarting from scratch is free) and it carries no checkpoint costs.
type Costs struct {
	n   int
	per []BoundaryCosts // index 1..n; [0] unused
}

// UniformCosts builds the paper's constant-cost table from a platform.
func UniformCosts(p Platform, n int) (*Costs, error) {
	if n < 1 {
		return nil, fmt.Errorf("platform: costs need at least one task")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Costs{n: n, per: make([]BoundaryCosts, n+1)}
	for i := 1; i <= n; i++ {
		c.per[i] = BoundaryCosts{CD: p.CD, CM: p.CM, RD: p.RD, RM: p.RM, VStar: p.VStar, V: p.V}
	}
	return c, nil
}

// ScaledCosts builds a table where boundary i's costs are the platform
// constants multiplied by size[i-1] — the natural model when costs are
// proportional to the data volume crossing each boundary (size 1 means
// "the platform's reference volume").
func ScaledCosts(p Platform, sizes []float64) (*Costs, error) {
	c, err := UniformCosts(p, len(sizes))
	if err != nil {
		return nil, err
	}
	for i, s := range sizes {
		if err := expmath.CheckDuration(s); err != nil {
			return nil, fmt.Errorf("platform: size of boundary %d: %w", i+1, err)
		}
		b := &c.per[i+1]
		b.CD *= s
		b.CM *= s
		b.RD *= s
		b.RM *= s
		b.VStar *= s
		b.V *= s
	}
	return c, nil
}

// Len returns the number of task boundaries n.
func (c *Costs) Len() int { return c.n }

// Set overrides the costs of boundary i (1 <= i <= n).
func (c *Costs) Set(i int, b BoundaryCosts) error {
	if i < 1 || i > c.n {
		return fmt.Errorf("platform: boundary %d out of range [1, %d]", i, c.n)
	}
	c.per[i] = b
	return nil
}

// Suffix returns the cost table of the last n-from boundaries as a
// standalone table (suffix boundary j maps to original boundary from+j):
// what planning the suffix of a chain as its own instance needs. The
// solver kernel's ReplanSuffix consumes the full table in place instead;
// the equivalence suite uses Suffix to prove both routes identical.
func (c *Costs) Suffix(from int) (*Costs, error) {
	if from < 0 || from >= c.n {
		return nil, fmt.Errorf("platform: suffix start %d out of range [0, %d)", from, c.n)
	}
	out := &Costs{n: c.n - from, per: make([]BoundaryCosts, c.n-from+1)}
	copy(out.per[1:], c.per[from+1:])
	return out, nil
}

// At returns the costs of boundary i (1 <= i <= n).
func (c *Costs) At(i int) BoundaryCosts {
	if i < 1 || i > c.n {
		panic(fmt.Sprintf("platform: boundary %d out of range [1, %d]", i, c.n))
	}
	return c.per[i]
}

// Validate checks that every boundary cost is finite and non-negative.
func (c *Costs) Validate() error {
	if c.n < 1 || len(c.per) != c.n+1 {
		return fmt.Errorf("platform: inconsistent cost table")
	}
	for i := 1; i <= c.n; i++ {
		b := c.per[i]
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"C_D", b.CD}, {"C_M", b.CM}, {"R_D", b.RD},
			{"R_M", b.RM}, {"V*", b.VStar}, {"V", b.V},
		} {
			if err := expmath.CheckDuration(f.v); err != nil {
				return fmt.Errorf("platform: boundary %d: %s: %w", i, f.name, err)
			}
		}
	}
	return nil
}

package platform

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTableIValues(t *testing.T) {
	tests := []struct {
		p                  Platform
		nodes              int
		lambdaF, lambdaS   float64
		cd, cm             float64
		mtbfDays, sMTBFDay float64 // paper-quoted MTBFs, where given
	}{
		{Hera(), 256, 9.46e-7, 3.38e-6, 300, 15.4, 12.2, 3.4},
		{Atlas(), 512, 5.19e-7, 7.78e-6, 439, 9.1, 0, 0},
		{Coastal(), 1024, 4.02e-7, 2.01e-6, 1051, 4.5, 28.8, 5.8},
		{CoastalSSD(), 1024, 4.02e-7, 2.01e-6, 2500, 180.0, 0, 0},
	}
	for _, tc := range tests {
		t.Run(tc.p.Name, func(t *testing.T) {
			if tc.p.Nodes != tc.nodes {
				t.Errorf("Nodes = %d, want %d", tc.p.Nodes, tc.nodes)
			}
			if tc.p.LambdaF != tc.lambdaF || tc.p.LambdaS != tc.lambdaS {
				t.Errorf("rates = (%g, %g), want (%g, %g)",
					tc.p.LambdaF, tc.p.LambdaS, tc.lambdaF, tc.lambdaS)
			}
			if tc.p.CD != tc.cd || tc.p.CM != tc.cm {
				t.Errorf("costs = (%g, %g), want (%g, %g)", tc.p.CD, tc.p.CM, tc.cd, tc.cm)
			}
			if tc.mtbfDays > 0 {
				days := tc.p.FailStopMTBF() / 86400
				if math.Abs(days-tc.mtbfDays) > 0.05 {
					t.Errorf("fail-stop MTBF = %.2f days, want %.1f", days, tc.mtbfDays)
				}
			}
			if tc.sMTBFDay > 0 {
				days := tc.p.SilentMTBF() / 86400
				if math.Abs(days-tc.sMTBFDay) > 0.05 {
					t.Errorf("silent MTBF = %.2f days, want %.1f", days, tc.sMTBFDay)
				}
			}
		})
	}
}

func TestPaperDefaults(t *testing.T) {
	for _, p := range All() {
		if p.RD != p.CD {
			t.Errorf("%s: R_D = %g, want C_D = %g", p.Name, p.RD, p.CD)
		}
		if p.RM != p.CM {
			t.Errorf("%s: R_M = %g, want C_M = %g", p.Name, p.RM, p.CM)
		}
		if p.VStar != p.CM {
			t.Errorf("%s: V* = %g, want C_M = %g", p.Name, p.VStar, p.CM)
		}
		if math.Abs(p.V-p.VStar/100) > 1e-12 {
			t.Errorf("%s: V = %g, want V*/100 = %g", p.Name, p.V, p.VStar/100)
		}
		if p.Recall != 0.8 {
			t.Errorf("%s: recall = %g, want 0.8", p.Name, p.Recall)
		}
		if math.Abs(p.G()-0.2) > 1e-12 {
			t.Errorf("%s: g = %g, want 0.2", p.Name, p.G())
		}
	}
}

func TestAllValid(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All() returned %d platforms, want 4", len(all))
	}
	for _, p := range all {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := Hera()
	cases := []struct {
		name string
		mut  func(*Platform)
	}{
		{"negative lambda_f", func(p *Platform) { p.LambdaF = -1 }},
		{"nan lambda_s", func(p *Platform) { p.LambdaS = math.NaN() }},
		{"negative C_D", func(p *Platform) { p.CD = -5 }},
		{"negative C_M", func(p *Platform) { p.CM = -5 }},
		{"negative R_D", func(p *Platform) { p.RD = -5 }},
		{"negative R_M", func(p *Platform) { p.RM = -5 }},
		{"negative V*", func(p *Platform) { p.VStar = -5 }},
		{"inf V", func(p *Platform) { p.V = math.Inf(1) }},
		{"recall above 1", func(p *Platform) { p.Recall = 1.5 }},
		{"negative recall", func(p *Platform) { p.Recall = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Hera", "Atlas", "Coastal", "Coastal SSD", "CoastalSSD"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name == "" {
			t.Errorf("ByName(%q) returned empty platform", name)
		}
	}
	if _, err := ByName("Summit"); err == nil {
		t.Error("ByName(Summit) should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Atlas()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, p)
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	if _, err := FromJSON([]byte(`{"name":"x","lambda_f":-1}`)); err == nil {
		t.Error("invalid platform must not decode")
	}
	if _, err := FromJSON([]byte(`{bad json`)); err == nil {
		t.Error("bad json must not decode")
	}
}

func TestString(t *testing.T) {
	s := Hera().String()
	for _, want := range []string{"Hera", "lambda_f", "C_D=300"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

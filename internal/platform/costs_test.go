package platform

import (
	"math"
	"testing"
)

func TestUniformCostsMatchesPlatform(t *testing.T) {
	p := Atlas()
	c, err := UniformCosts(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 7 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i := 1; i <= 7; i++ {
		b := c.At(i)
		if b.CD != p.CD || b.CM != p.CM || b.RD != p.RD || b.RM != p.RM ||
			b.VStar != p.VStar || b.V != p.V {
			t.Errorf("boundary %d: %+v", i, b)
		}
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestUniformCostsRejects(t *testing.T) {
	if _, err := UniformCosts(Hera(), 0); err == nil {
		t.Error("n=0 should fail")
	}
	bad := Hera()
	bad.CD = -1
	if _, err := UniformCosts(bad, 3); err == nil {
		t.Error("invalid platform should fail")
	}
}

func TestScaledCosts(t *testing.T) {
	p := Hera()
	c, err := ScaledCosts(p, []float64{0.5, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(1).CD; got != p.CD/2 {
		t.Errorf("boundary 1 CD = %g", got)
	}
	if got := c.At(2).VStar; got != 2*p.VStar {
		t.Errorf("boundary 2 V* = %g", got)
	}
	if got := c.At(3).CM; got != 0 {
		t.Errorf("zero-size boundary CM = %g", got)
	}
	for _, bad := range [][]float64{{-1}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := ScaledCosts(p, bad); err == nil {
			t.Errorf("sizes %v should fail", bad)
		}
	}
	if _, err := ScaledCosts(p, nil); err == nil {
		t.Error("empty sizes should fail")
	}
}

func TestCostsSetAndBounds(t *testing.T) {
	c, _ := UniformCosts(Hera(), 3)
	override := BoundaryCosts{CD: 1, CM: 2, RD: 3, RM: 4, VStar: 5, V: 6}
	if err := c.Set(2, override); err != nil {
		t.Fatal(err)
	}
	if c.At(2) != override {
		t.Errorf("At(2) = %+v", c.At(2))
	}
	if err := c.Set(0, override); err == nil {
		t.Error("Set(0) should fail")
	}
	if err := c.Set(4, override); err == nil {
		t.Error("Set(4) should fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At(0) should panic")
			}
		}()
		c.At(0)
	}()
}

func TestCostsValidateCatchesBadEntries(t *testing.T) {
	c, _ := UniformCosts(Hera(), 2)
	if err := c.Set(1, BoundaryCosts{RM: math.Inf(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err == nil {
		t.Error("infinite R_M must fail validation")
	}
	var empty Costs
	if err := empty.Validate(); err == nil {
		t.Error("zero-value table must fail validation")
	}
}

func TestCostsSuffix(t *testing.T) {
	p := Hera()
	sizes := []float64{1, 2, 3, 4, 5}
	c, err := ScaledCosts(p, sizes)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Suffix(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("suffix length %d, want 3", s.Len())
	}
	for j := 1; j <= 3; j++ {
		if s.At(j) != c.At(2+j) {
			t.Errorf("suffix boundary %d = %+v, want original boundary %d = %+v", j, s.At(j), 2+j, c.At(2+j))
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("sliced table invalid: %v", err)
	}
	for _, bad := range []int{-1, 5, 6} {
		if _, err := c.Suffix(bad); err == nil {
			t.Errorf("Suffix(%d) accepted", bad)
		}
	}
}

// Task runners: the pluggable execution backends of the supervisor. A
// TaskRunner executes one task at a time on an opaque state payload and
// reports the modeled compute seconds consumed plus whether the
// execution was cut short by a fail-stop error; its Verify method is the
// runtime counterpart of the paper's verifications, checking a state for
// silent corruption either exhaustively (guaranteed, recall 1) or
// cheaply (partial, recall r < 1).
package runtime

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"chainckpt/internal/expmath"
	"chainckpt/internal/platform"
	"chainckpt/internal/rng"
)

// State is the opaque application payload flowing between tasks; the
// supervisor checkpoints it byte-for-byte and never interprets it.
type State []byte

// TaskSpec describes one task execution request.
type TaskSpec struct {
	// Index is the 1-based task position in the chain.
	Index int
	// Name and Weight come from the chain's task.
	Name   string
	Weight float64
	// Attempt counts executions of this task within the run (0 on the
	// first try; rollbacks re-execute with higher attempts).
	Attempt int
	// State is the input payload (the output of task Index-1).
	State State
}

// TaskResult is the outcome of one task execution.
type TaskResult struct {
	// State is the output payload; ignored when FailStop is set (a crash
	// destroys memory).
	State State
	// Elapsed is the modeled compute seconds consumed, which the
	// supervisor charges to the makespan. A fail-stop reports the time
	// until the crash.
	Elapsed float64
	// FailStop reports that the execution crashed after Elapsed seconds.
	FailStop bool
}

// TaskRunner executes tasks and verifies states. Implementations decide
// what "executing" means: spinning, sleeping, calling user code, or
// sampling the simulator's error model.
type TaskRunner interface {
	// Run executes one task. A returned error is an unrecoverable runtime
	// fault and aborts the whole run; modeled fail-stop errors are
	// reported through TaskResult.FailStop instead.
	Run(ctx context.Context, t TaskSpec) (TaskResult, error)
	// Verify checks state for silent corruption at the given boundary.
	// partial selects the cheap low-recall check; ok=false means the
	// corruption was detected.
	Verify(ctx context.Context, boundary int, state State, partial bool) (ok bool, err error)
}

// NopRunner executes tasks instantly and perfectly: Elapsed equals the
// task weight, no errors ever. The baseline for tests and dry runs —
// under it the supervisor's makespan is exactly the schedule's
// error-free time.
type NopRunner struct{}

// Run implements TaskRunner.
func (NopRunner) Run(_ context.Context, t TaskSpec) (TaskResult, error) {
	return TaskResult{State: markState(t.State, t.Index), Elapsed: t.Weight}, nil
}

// Verify implements TaskRunner; nothing ever corrupts.
func (NopRunner) Verify(context.Context, int, State, bool) (bool, error) { return true, nil }

// SleepRunner executes a task by sleeping Scale × weight of wall time
// (Scale 1e-3: one modeled kilosecond per wall millisecond), for demos
// that want to watch a run progress. It respects context cancellation.
type SleepRunner struct {
	// Scale converts modeled seconds to wall seconds (default 1e-3).
	Scale float64
}

// Run implements TaskRunner.
func (r SleepRunner) Run(ctx context.Context, t TaskSpec) (TaskResult, error) {
	scale := r.Scale
	if scale == 0 {
		scale = 1e-3
	}
	d := time.Duration(float64(time.Second) * scale * t.Weight)
	select {
	case <-time.After(d):
	case <-ctx.Done():
		return TaskResult{}, ctx.Err()
	}
	return TaskResult{State: markState(t.State, t.Index), Elapsed: t.Weight}, nil
}

// Verify implements TaskRunner.
func (SleepRunner) Verify(context.Context, int, State, bool) (bool, error) { return true, nil }

// SimRunner injects faults from the simulator's error model: fail-stop
// arrivals are exponential with rate LambdaF, silent corruptions strike
// a task of weight w with probability 1-e^{-LambdaS·w}, and a partial
// verification detects a corruption with probability Recall. Because
// both processes are memoryless, per-task sampling is distributed
// exactly as internal/sim's per-segment sampling, so a supervisor driven
// by a SimRunner reproduces the model the planners optimize — the basis
// of the convergence suite.
//
// The true rates may differ from the platform the schedule was planned
// for; that misspecification is what adaptive re-planning corrects.
type SimRunner struct {
	mu      sync.Mutex
	lambdaF float64
	lambdaS float64
	recall  float64
	seed    uint64
	src     *rng.Source

	injectedSilent   int64
	injectedFailStop int64
}

// NewSimRunner builds a fault-injecting runner whose true error rates
// and partial-verification recall come from p; the same platform that
// planned the schedule yields a well-specified run. The seed fixes the
// fault sequence.
func NewSimRunner(p platform.Platform, seed uint64) *SimRunner {
	return &SimRunner{lambdaF: p.LambdaF, lambdaS: p.LambdaS, recall: p.Recall, seed: seed, src: rng.New(seed)}
}

// Seed returns the seed the runner's fault sequence was drawn from,
// implementing the seeded-runner sniff the supervisor uses to stamp
// Report.Seed.
func (r *SimRunner) Seed() uint64 { return r.seed }

// runnerSeed extracts the RNG seed from runners that expose one; zero
// for the deterministic runners, whose behavior needs no seed to
// reproduce.
func runnerSeed(r TaskRunner) uint64 {
	if sr, ok := r.(interface{ Seed() uint64 }); ok {
		return sr.Seed()
	}
	return 0
}

// NewMisspecifiedRunner builds a fault-injecting runner whose true rates
// are the platform's scaled by factorF and factorS — the robustness
// scenario where the model under- or over-estimates reality.
func NewMisspecifiedRunner(p platform.Platform, factorF, factorS float64, seed uint64) *SimRunner {
	r := NewSimRunner(p, seed)
	r.lambdaF *= factorF
	r.lambdaS *= factorS
	return r
}

// simState is the payload a SimRunner threads through the chain: enough
// to audit progress and to carry the (invisible to the supervisor)
// corruption marker across checkpoint/restore cycles.
type simState struct {
	Boundary int  `json:"boundary"`
	Steps    int  `json:"steps"`
	Corrupt  bool `json:"corrupt"`
}

func decodeSimState(s State) simState {
	var st simState
	if len(s) > 0 {
		json.Unmarshal(s, &st)
	}
	return st
}

func (st simState) encode() State {
	b, _ := json.Marshal(st)
	return State(b)
}

// Run implements TaskRunner.
func (r *SimRunner) Run(_ context.Context, t TaskSpec) (TaskResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if x := r.src.ExpFloat64(r.lambdaF); x < t.Weight {
		r.injectedFailStop++
		return TaskResult{Elapsed: x, FailStop: true}, nil
	}
	st := decodeSimState(t.State)
	if st.Boundary != t.Index-1 {
		return TaskResult{}, fmt.Errorf("runtime: task %d fed state of boundary %d", t.Index, st.Boundary)
	}
	if r.src.Bernoulli(expmath.ProbError(r.lambdaS, t.Weight)) {
		r.injectedSilent++
		st.Corrupt = true
	}
	st.Boundary = t.Index
	st.Steps++
	return TaskResult{State: st.encode(), Elapsed: t.Weight}, nil
}

// Verify implements TaskRunner: a guaranteed verification always spots
// the corruption marker, a partial one spots it with probability Recall.
func (r *SimRunner) Verify(_ context.Context, _ int, state State, partial bool) (bool, error) {
	st := decodeSimState(state)
	if !st.Corrupt {
		return true, nil
	}
	if !partial {
		return false, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.src.Bernoulli(r.recall), nil
}

// Injected returns the number of silent and fail-stop errors the runner
// has injected so far.
func (r *SimRunner) Injected() (silent, failStop int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.injectedSilent, r.injectedFailStop
}

// markState appends a compact execution record to the payload so runs
// driven by the simple runners produce checkpointable, growing state.
func markState(s State, index int) State {
	out := make(State, 0, len(s)+8)
	out = append(out, s...)
	return append(out, []byte(fmt.Sprintf("|T%d", index))...)
}

// Online maximum-likelihood estimation of the platform's error rates.
// For a Poisson error source observed over T seconds of compute exposure
// with k arrivals, the MLE of the rate is k/T; the supervisor keeps one
// such estimator per source and compares the estimates against the rates
// the current schedule was planned for to decide when re-planning pays.
//
// An MLE backed by few arrivals is noise, so upward drift waits for a
// minimum event count. Downward drift must not: a schedule planned for a
// rate far above the truth sees few or no errors at all, which is
// exactly the regime where the event-count gate never opens. There the
// estimator falls back to a confidence bound — with k arrivals in T
// seconds of exposure, (k+3)/T is an upper bound on the true rate at
// ~95% confidence (the "rule of three" for k = 0, and its Poisson
// generalization for small k). Once even that upper bound sits below
// planned/tolerance, the planned rate is provably overestimated and the
// supervisor can shed the excess checkpoints.
package runtime

import "chainckpt/internal/platform"

// rateEstimator tracks one error source.
type rateEstimator struct {
	exposure float64 // compute seconds observed
	events   int64   // arrivals observed
}

func (e *rateEstimator) observe(seconds float64) { e.exposure += seconds }
func (e *rateEstimator) event()                  { e.events++ }

// rate returns the MLE k/T, or fallback before any exposure or arrival.
func (e *rateEstimator) rate(fallback float64) float64 {
	if e.exposure <= 0 || e.events == 0 {
		return fallback
	}
	return float64(e.events) / e.exposure
}

// upperBound returns the ~95% upper confidence bound (k+3)/T on the
// true rate. Only meaningful with positive exposure.
func (e *rateEstimator) upperBound() float64 {
	return (float64(e.events) + 3) / e.exposure
}

// replanRate returns the rate a suffix re-plan should assume once drift
// has been established: the MLE when at least minEvents arrivals back
// it, otherwise the upper confidence bound (never above the fallback — a
// clean exposure is evidence the rate is lower, not higher). minEvents
// must be the same AdaptPolicy.MinEvents the drifted test used, so the
// two methods agree on which estimate is trustworthy.
func (e *rateEstimator) replanRate(fallback float64, minEvents int) float64 {
	if e.exposure <= 0 {
		return fallback
	}
	if e.events < int64(minEvents) {
		if ub := e.upperBound(); ub < fallback {
			return ub
		}
		return fallback
	}
	return float64(e.events) / e.exposure
}

// drifted reports whether the observed rate departs from planned by more
// than a factor of tol. Both directions count: a true rate far below the
// planned one wastes checkpoints just as a far higher one wastes
// re-execution.
//
// With at least minEvents arrivals the MLE is trusted and tested in both
// directions. Below that threshold, only the downward confidence-bound
// test applies: a long clean (or nearly clean) exposure whose (k+3)/T
// upper bound is still under planned/tol certifies overestimation even
// though the MLE itself is untrustworthy.
func (e *rateEstimator) drifted(planned, tol float64, minEvents int) bool {
	if e.exposure <= 0 {
		return false
	}
	if e.events < int64(minEvents) {
		return planned > 0 && e.upperBound() < planned/tol
	}
	est := float64(e.events) / e.exposure
	if planned <= 0 {
		return est > 0
	}
	ratio := est / planned
	return ratio > tol || ratio < 1/tol
}

// RateObservation is the serializable evidence of one error source: the
// compute exposure observed and the arrivals seen over it. It is the
// whole state of a rateEstimator, so a persisted observation restores
// the estimator exactly.
type RateObservation struct {
	// ExposureSeconds is the compute time the source has been observed
	// over.
	ExposureSeconds float64 `json:"exposure_seconds"`
	// Events is the number of arrivals observed.
	Events int64 `json:"events"`
}

// EstimatorState exports the supervisor's online rate estimators — the
// piece of execution state a durable job store persists alongside disk
// checkpoints, so a run resumed after a service restart keeps the
// error-rate evidence its earlier life accumulated instead of starting
// statistically blind.
type EstimatorState struct {
	FailStop RateObservation `json:"fail_stop"`
	Silent   RateObservation `json:"silent"`
}

// ReplanPlatform returns p with its error rates replaced by the rates a
// suffix re-plan should assume under this evidence: the MLE of each
// source when at least minEvents arrivals back it, the rule-of-three
// upper bound when a long clean exposure certifies the planned rate is
// an overestimate, and the planned rate itself otherwise. minEvents 0
// selects the AdaptPolicy default. This is the rate policy of the
// cold-start resume path: re-plan the remaining suffix with what the
// interrupted run had learned.
func (st EstimatorState) ReplanPlatform(p platform.Platform, minEvents int) platform.Platform {
	if minEvents <= 0 {
		minEvents = AdaptPolicy{}.normalized().MinEvents
	}
	f := rateEstimator{exposure: st.FailStop.ExposureSeconds, events: st.FailStop.Events}
	s := rateEstimator{exposure: st.Silent.ExposureSeconds, events: st.Silent.Events}
	p.LambdaF = f.replanRate(p.LambdaF, minEvents)
	p.LambdaS = s.replanRate(p.LambdaS, minEvents)
	return p
}

// estimator bundles the two sources. The silent-error estimator counts
// detections (a corruption that slips past partial verifications is
// counted once, when a later verification finally catches it), which
// under-counts only when several corruptions strike one verified segment
// — negligible at the rates where the model itself is meaningful.
type estimator struct {
	failStop rateEstimator
	silent   rateEstimator
}

func (e *estimator) observeCompute(seconds float64) {
	e.failStop.observe(seconds)
	e.silent.observe(seconds)
}

// state exports the estimator for persistence.
func (e *estimator) state() EstimatorState {
	return EstimatorState{
		FailStop: RateObservation{ExposureSeconds: e.failStop.exposure, Events: e.failStop.events},
		Silent:   RateObservation{ExposureSeconds: e.silent.exposure, Events: e.silent.events},
	}
}

// restore seeds the estimator from persisted evidence.
func (e *estimator) restore(st EstimatorState) {
	e.failStop = rateEstimator{exposure: st.FailStop.ExposureSeconds, events: st.FailStop.Events}
	e.silent = rateEstimator{exposure: st.Silent.ExposureSeconds, events: st.Silent.Events}
}

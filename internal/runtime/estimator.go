// Online maximum-likelihood estimation of the platform's error rates.
// For a Poisson error source observed over T seconds of compute exposure
// with k arrivals, the MLE of the rate is k/T; the supervisor keeps one
// such estimator per source and compares the estimates against the rates
// the current schedule was planned for to decide when re-planning pays.
package runtime

// rateEstimator tracks one error source.
type rateEstimator struct {
	exposure float64 // compute seconds observed
	events   int64   // arrivals observed
}

func (e *rateEstimator) observe(seconds float64) { e.exposure += seconds }
func (e *rateEstimator) event()                  { e.events++ }

// rate returns the MLE k/T, or fallback before any exposure.
func (e *rateEstimator) rate(fallback float64) float64 {
	if e.exposure <= 0 || e.events == 0 {
		return fallback
	}
	return float64(e.events) / e.exposure
}

// drifted reports whether the observed rate departs from planned by more
// than a factor of tol, with at least minEvents arrivals backing the
// estimate. Both directions count: a true rate far below the planned one
// wastes checkpoints just as a far higher one wastes re-execution.
func (e *rateEstimator) drifted(planned, tol float64, minEvents int) bool {
	if e.events < int64(minEvents) || e.exposure <= 0 {
		return false
	}
	est := float64(e.events) / e.exposure
	if planned <= 0 {
		return est > 0
	}
	ratio := est / planned
	return ratio > tol || ratio < 1/tol
}

// estimator bundles the two sources. The silent-error estimator counts
// detections (a corruption that slips past partial verifications is
// counted once, when a later verification finally catches it), which
// under-counts only when several corruptions strike one verified segment
// — negligible at the rates where the model itself is meaningful.
type estimator struct {
	failStop rateEstimator
	silent   rateEstimator
}

func (e *estimator) observeCompute(seconds float64) {
	e.failStop.observe(seconds)
	e.silent.observe(seconds)
}

package runtime

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestStoreTwoTierRoundTrip(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		name := "volatile"
		if dir != "" {
			name = "filesystem"
		}
		t.Run(name, func(t *testing.T) {
			s, err := NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			s.SaveMemory(0, []byte("init"))
			if err := s.SaveDisk(0, []byte("init")); err != nil {
				t.Fatal(err)
			}
			s.SaveMemory(3, []byte("after-3"))
			if err := s.SaveDisk(5, []byte("after-5")); err != nil {
				t.Fatal(err)
			}

			b, data, err := s.LoadMemory()
			if err != nil || b != 3 || string(data) != "after-3" {
				t.Fatalf("LoadMemory = (%d, %q, %v)", b, data, err)
			}
			b, data, err = s.LoadDisk()
			if err != nil || b != 5 || string(data) != "after-5" {
				t.Fatalf("LoadDisk = (%d, %q, %v)", b, data, err)
			}
			bounds, err := s.Boundaries()
			if err != nil || !reflect.DeepEqual(bounds, []int{0, 5}) {
				t.Fatalf("Boundaries = (%v, %v)", bounds, err)
			}
		})
	}
}

func TestStoreLoadedDataIsACopy(t *testing.T) {
	s, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	s.SaveMemory(1, []byte("abc"))
	_, data, err := s.LoadMemory()
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	_, again, _ := s.LoadMemory()
	if !bytes.Equal(again, []byte("abc")) {
		t.Fatalf("mutating a loaded state leaked into the store: %q", again)
	}
}

func TestStoreFingerprintDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveDisk(2, []byte("precious state")); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte on disk behind the store's back.
	path := filepath.Join(dir, "ckpt-000002.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.LoadDisk(); err == nil {
		t.Fatal("LoadDisk accepted a corrupted checkpoint")
	}
}

func TestStoreRecoverLatestSkipsDamagedFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{0, 4, 9} {
		if err := s.SaveDisk(b, []byte{byte('a' + b)}); err != nil {
			t.Fatal(err)
		}
	}
	// Damage the newest checkpoint; recovery must fall back to boundary 4.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-000009.bin"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store simulates a supervisor cold-starting after a crash.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, data, err := s2.RecoverLatest()
	if err != nil || b != 4 || !bytes.Equal(data, []byte{'e'}) {
		t.Fatalf("RecoverLatest = (%d, %q, %v), want (4, \"e\", nil)", b, data, err)
	}

	// After recovery both tiers serve the recovered state.
	if mb, _, _ := s2.LoadMemory(); mb != 4 {
		t.Errorf("memory tier at %d after recovery, want 4", mb)
	}
}

func TestStoreRecoverLatestEmpty(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b, data, err := s.RecoverLatest()
	if err != nil || b != -1 || data != nil {
		t.Fatalf("RecoverLatest on empty store = (%d, %q, %v), want (-1, nil, nil)", b, data, err)
	}
}

func TestStoreRetention(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		s, err := NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.SetRetention(2)
		for b := 0; b <= 6; b += 2 {
			if err := s.SaveDisk(b, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		bounds, err := s.Boundaries()
		if err != nil || !reflect.DeepEqual(bounds, []int{4, 6}) {
			t.Fatalf("Boundaries after retention = (%v, %v), want [4 6]", bounds, err)
		}
		if b, _, err := s.LoadDisk(); err != nil || b != 6 {
			t.Fatalf("LoadDisk after prune = (%d, %v)", b, err)
		}
	}
}

func TestStoreIgnoresLeftoverTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveDisk(3, []byte("real")); err != nil {
		t.Fatal(err)
	}
	// A crash between write and rename leaves a temporary behind; it
	// must not surface as a committed boundary.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-000007.bin.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	bounds, err := s.Boundaries()
	if err != nil || !reflect.DeepEqual(bounds, []int{3}) {
		t.Fatalf("Boundaries = (%v, %v), want [3]", bounds, err)
	}
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b, _, err := s2.RecoverLatest(); err != nil || b != 3 {
		t.Fatalf("RecoverLatest = (%d, %v), want boundary 3", b, err)
	}
}

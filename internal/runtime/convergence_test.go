package runtime

import (
	"context"
	"math"
	"sync"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/stats"
	"chainckpt/internal/workload"
)

// supervisorMean executes the schedule reps times through the supervisor
// with independent fault-injecting runners and returns the makespan
// accumulator.
func supervisorMean(t *testing.T, sup *Supervisor, c *chain.Chain, p platform.Platform,
	sched *schedule.Schedule, truth func(seed uint64) TaskRunner, reps int) stats.Welford {
	t.Helper()
	makespans := make([]float64, reps)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	var mu sync.Mutex
	var firstErr error
	for r := 0; r < reps; r++ {
		r := r
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			rep, err := sup.Run(context.Background(), Job{
				Chain: c, Platform: p, Schedule: sched,
				Runner: truth(uint64(1000 + r)),
			})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			makespans[r] = rep.Makespan
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	var acc stats.Welford
	for _, m := range makespans {
		acc.Add(m)
	}
	return acc
}

// TestSupervisorConvergesToModelPrediction is the runtime's end-to-end
// validation: executing an optimal schedule under the simulator's error
// model, the supervisor's empirical mean makespan must land within 5% of
// the analytic prediction (Evaluate, itself cross-checked against the
// exact Markov-renewal oracle) on several (workload, platform)
// scenarios.
func TestSupervisorConvergesToModelPrediction(t *testing.T) {
	hot := platform.Platform{
		Name: "HotSilent", LambdaF: 2e-5, LambdaS: 1e-4,
		CD: 200, CM: 20, RD: 200, RM: 20, VStar: 20, V: 0.2, Recall: 0.8,
	}
	hotFail := platform.Platform{
		Name: "HotFail", LambdaF: 8e-5, LambdaS: 4e-5,
		CD: 100, CM: 15, RD: 100, RM: 15, VStar: 15, V: 0.15, Recall: 0.8,
	}
	scenarios := []struct {
		name    string
		plat    platform.Platform
		pattern workload.Pattern
		n       int
		total   float64
		alg     core.Algorithm
		reps    int
	}{
		{"Hera/Uniform25", platform.Hera(), workload.PatternUniform, 25, 25000, core.AlgADMV, 200},
		{"HotSilent/Uniform30", hot, workload.PatternUniform, 30, 20000, core.AlgADMV, 400},
		{"HotFail/HighLow20", hotFail, workload.PatternHighLow, 20, 15000, core.AlgADMVStar, 400},
	}
	sup := New(Options{})
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			c, err := workload.Generate(sc.pattern, sc.n, sc.total)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Plan(sc.alg, c, sc.plat)
			if err != nil {
				t.Fatal(err)
			}
			predicted, err := core.Evaluate(c, sc.plat, res.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := evaluate.Exact(c, sc.plat, res.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(predicted-exact) > 0.01*exact {
				t.Fatalf("analytic routes disagree: Evaluate %.2f vs Exact %.2f", predicted, exact)
			}

			acc := supervisorMean(t, sup, c, sc.plat, res.Schedule,
				func(seed uint64) TaskRunner { return NewSimRunner(sc.plat, seed) }, sc.reps)
			relErr := math.Abs(acc.Mean()-predicted) / predicted
			t.Logf("%s: supervisor mean %.2f ± %.2f over %d runs, model %.2f (%.2f%% off)",
				sc.name, acc.Mean(), acc.HalfWidth(stats.Z95), sc.reps, predicted, 100*relErr)
			if relErr > 0.05 {
				t.Fatalf("empirical mean %.2f departs %.2f%% from the model prediction %.2f",
					acc.Mean(), 100*relErr, predicted)
			}
		})
	}
}

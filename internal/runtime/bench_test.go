package runtime

import (
	"context"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// BenchmarkSupervisorRun measures one full supervised execution under
// the fault-injecting runner on a hot platform — the runtime's hot path
// (segment walk, store saves, recovery bookkeeping) end to end.
func BenchmarkSupervisorRun(b *testing.B) {
	p := platform.Platform{
		Name: "Bench", LambdaF: 5e-5, LambdaS: 2e-4,
		CD: 100, CM: 10, RD: 100, RM: 10, VStar: 10, V: 0.1, Recall: 0.8,
	}
	c, err := workload.Uniform(30, 25000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.PlanADMVStar(c, p)
	if err != nil {
		b.Fatal(err)
	}
	sup := New(Options{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sup.Run(ctx, Job{
			Chain: c, Platform: p, Schedule: res.Schedule,
			Runner: NewSimRunner(p, uint64(i+1)),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

package runtime

import "chainckpt/internal/obs"

// Metrics is the runtime supervisor's slice of the observability
// plane: wall-clock latency histograms for every execution-side cost
// the paper's model charges abstractly — task execution, verification,
// the two-phase disk-checkpoint commit (and its fsync alone), recovery
// by tier, and adaptive suffix re-plans — plus checkpoint payload
// sizes. These are the measured inputs a future self-driving ops plane
// feeds back into planning; nil (the default) costs one nil check per
// site.
type Metrics struct {
	// TaskSeconds measures each TaskRunner.Run call, re-executions
	// included.
	TaskSeconds *obs.Histogram
	// VerifySeconds measures each verification (partial and
	// guaranteed).
	VerifySeconds *obs.Histogram
	// CkptCommitSeconds measures the whole two-phase disk-checkpoint
	// commit: state write through journal commit hook.
	CkptCommitSeconds *obs.Histogram
	// CkptFsyncSeconds isolates the fsync of the checkpoint file — the
	// stall the paper's C_D cost abstracts.
	CkptFsyncSeconds *obs.Histogram
	// CkptBytes sizes checkpoint payloads written to the disk tier.
	CkptBytes *obs.Histogram
	// RecoverySeconds measures restores by tier ("disk" after a
	// fail-stop, "memory" after a detected silent corruption).
	RecoverySeconds *obs.HistogramVec
	// ReplanSeconds measures adaptive suffix re-solves through
	// Kernel.ReplanSuffix.
	ReplanSeconds *obs.Histogram
}

// NewMetrics registers the runtime families on reg; nil reg returns
// nil metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		TaskSeconds: reg.NewHistogram("chainckpt_runtime_task_seconds",
			"Wall-clock time of each task execution, re-executions included.", nil),
		VerifySeconds: reg.NewHistogram("chainckpt_runtime_verify_seconds",
			"Wall-clock time of each verification.", nil),
		CkptCommitSeconds: reg.NewHistogram("chainckpt_runtime_ckpt_commit_seconds",
			"Wall-clock time of the two-phase disk-checkpoint commit.", nil),
		CkptFsyncSeconds: reg.NewHistogram("chainckpt_runtime_ckpt_fsync_seconds",
			"Wall-clock time of the checkpoint file fsync alone.", nil),
		CkptBytes: reg.NewHistogram("chainckpt_runtime_ckpt_bytes",
			"Checkpoint payload bytes written to the disk tier.", obs.ByteBuckets),
		RecoverySeconds: reg.NewHistogramVec("chainckpt_runtime_recovery_seconds",
			"Wall-clock time of checkpoint restores by tier.", nil, "tier"),
		ReplanSeconds: reg.NewHistogram("chainckpt_runtime_replan_seconds",
			"Wall-clock time of adaptive suffix re-plans.", nil),
	}
}

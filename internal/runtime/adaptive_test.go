package runtime

import (
	"context"
	"sync"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/stats"
	"chainckpt/internal/workload"
)

// TestAdaptiveBeatsStaticUnderMisspecifiedRates is the robustness
// scenario of internal/experiments executed for real: the schedule is
// planned against the modeled platform, but the true error rates are 4×
// higher on both sources. The static run trusts the stale plan to the
// end; the adaptive run notices the drift through its MLE estimates,
// re-solves the DP for the remaining suffix, and splices denser
// checkpointing in. Its mean makespan must come out lower.
func TestAdaptiveBeatsStaticUnderMisspecifiedRates(t *testing.T) {
	modeled := platform.Platform{
		Name: "AdaptLab", LambdaF: 1e-4, LambdaS: 4e-4,
		CD: 100, CM: 10, RD: 100, RM: 10, VStar: 10, V: 0.1, Recall: 0.8,
	}
	const misspecification = 4.0
	truth := modeled
	truth.LambdaF *= misspecification
	truth.LambdaS *= misspecification

	c, err := workload.Uniform(40, 25000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Plan(core.AlgADMVStar, c, modeled)
	if err != nil {
		t.Fatal(err)
	}
	// What the stale plan truly costs, and what an oracle that knew the
	// real rates could achieve: the gap adaptive re-planning can close.
	staleCost, err := core.Evaluate(c, truth, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.Plan(core.AlgADMVStar, c, truth)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model-expected: stale plan under true rates %.0f, oracle plan %.0f (gap %.0f)",
		staleCost, oracle.ExpectedMakespan, staleCost-oracle.ExpectedMakespan)

	const reps = 150
	sup := New(Options{})
	var static, adaptive stats.Welford
	var replans int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	staticMS := make([]float64, reps)
	adaptiveMS := make([]float64, reps)
	for r := 0; r < reps; r++ {
		r := r
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// Paired fault streams: the same seed drives both arms.
			seed := uint64(4000 + r)
			sRep, err := sup.Run(context.Background(), Job{
				Chain: c, Platform: modeled, Schedule: res.Schedule, Algorithm: core.AlgADMVStar,
				Runner: NewMisspecifiedRunner(modeled, misspecification, misspecification, seed),
			})
			if err != nil {
				t.Error(err)
				return
			}
			aRep, err := sup.RunAdaptive(context.Background(), Job{
				Chain: c, Platform: modeled, Schedule: res.Schedule, Algorithm: core.AlgADMVStar,
				Runner: NewMisspecifiedRunner(modeled, misspecification, misspecification, seed),
			}, AdaptPolicy{})
			if err != nil {
				t.Error(err)
				return
			}
			staticMS[r] = sRep.Makespan
			adaptiveMS[r] = aRep.Makespan
			mu.Lock()
			replans += aRep.Events.Replans
			mu.Unlock()
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("replication errors above")
	}
	for r := 0; r < reps; r++ {
		static.Add(staticMS[r])
		adaptive.Add(adaptiveMS[r])
	}

	t.Logf("static   mean %.0f ± %.0f", static.Mean(), static.HalfWidth(stats.Z95))
	t.Logf("adaptive mean %.0f ± %.0f (%.0f replans over %d runs)",
		adaptive.Mean(), adaptive.HalfWidth(stats.Z95), float64(replans), reps)
	if replans == 0 {
		t.Fatal("adaptive arm never re-planned: the drift detector is dead")
	}
	if adaptive.Mean() >= static.Mean() {
		t.Fatalf("adaptive mean %.0f did not beat static mean %.0f under 4x misspecified rates",
			adaptive.Mean(), static.Mean())
	}
}

// TestAdaptiveShedsCheckpointsUnderOverestimatedRates is the mirror
// image of the misspecification test above: the schedule is planned for
// error rates 100x HIGHER than the truth, so the run sees long clean
// exposures with few or no arrivals. The MLE gate can never open there —
// only the estimator's zero-event confidence-bound path (rule of three)
// can notice that even the upper bound on the true rate sits far below
// the planned one, re-plan the suffix downward, and shed the excess
// checkpoints.
func TestAdaptiveShedsCheckpointsUnderOverestimatedRates(t *testing.T) {
	modeled := platform.Platform{
		Name: "ShedLab", LambdaF: 2e-3, LambdaS: 2e-3,
		CD: 500, CM: 50, RD: 500, RM: 50, VStar: 50, V: 0.5, Recall: 0.8,
	}
	const overestimate = 100.0 // true rates are modeled/overestimate
	c, err := workload.Uniform(40, 20000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Plan(core.AlgADMVStar, c, modeled)
	if err != nil {
		t.Fatal(err)
	}
	initial := res.Schedule.Counts()

	sup := New(Options{})
	var staticSum, adaptiveSum float64
	var replans int64
	shed := 0
	const seeds = 10
	for seed := uint64(1); seed <= seeds; seed++ {
		// Paired fault streams: the same seed drives both arms.
		sRep, err := sup.Run(context.Background(), Job{
			Chain: c, Platform: modeled, Schedule: res.Schedule, Algorithm: core.AlgADMVStar,
			Runner: NewMisspecifiedRunner(modeled, 1/overestimate, 1/overestimate, seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		aRep, err := sup.RunAdaptive(context.Background(), Job{
			Chain: c, Platform: modeled, Schedule: res.Schedule, Algorithm: core.AlgADMVStar,
			Runner: NewMisspecifiedRunner(modeled, 1/overestimate, 1/overestimate, seed),
		}, AdaptPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		staticSum += sRep.Makespan
		adaptiveSum += aRep.Makespan
		replans += aRep.Events.Replans
		final := aRep.FinalSchedule.Counts()
		if aRep.Events.Replans > 0 && final.Disk < initial.Disk {
			shed++
		}
	}
	t.Logf("initial schedule: %+v", initial)
	t.Logf("static mean %.0f, adaptive mean %.0f, %d replans, %d/%d runs shed disk checkpoints",
		staticSum/seeds, adaptiveSum/seeds, replans, shed, seeds)
	if replans == 0 {
		t.Fatal("adaptive arm never re-planned: zero-event downward drift is dead")
	}
	if shed < seeds/2 {
		t.Fatalf("only %d/%d runs shed disk checkpoints below the initial %d", shed, seeds, initial.Disk)
	}
	if adaptiveSum >= staticSum {
		t.Fatalf("adaptive mean %.0f did not beat static mean %.0f under %.0fx overestimated rates",
			adaptiveSum/seeds, staticSum/seeds, overestimate)
	}
}

// TestAdaptiveReplanHonorsDiskBudget: a re-planned suffix must not blow
// the run's disk-checkpoint budget, however hot the observed rates.
func TestAdaptiveReplanHonorsDiskBudget(t *testing.T) {
	modeled := platform.Platform{
		Name: "BudgetLab", LambdaF: 1e-4, LambdaS: 4e-4,
		CD: 100, CM: 10, RD: 100, RM: 10, VStar: 10, V: 0.1, Recall: 0.8,
	}
	// Short tasks keep the budgeted run feasible even at 4x rates (a
	// long-task chain with this budget diverges — which the rollback
	// guard turns into an error rather than a hang).
	c, err := workload.Uniform(30, 6000)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 3
	sup := New(Options{})
	for seed := uint64(1); seed <= 20; seed++ {
		rep, err := sup.RunAdaptive(context.Background(), Job{
			Chain: c, Platform: modeled, Algorithm: core.AlgADMVStar,
			MaxDiskCheckpoints: budget,
			Runner:             NewMisspecifiedRunner(modeled, 4, 4, seed),
		}, AdaptPolicy{Tolerance: 1.5, MinEvents: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.FinalSchedule.Counts().Disk; got > budget {
			t.Fatalf("seed %d: final schedule has %d disk checkpoints, budget %d (replans %d)",
				seed, got, budget, rep.Events.Replans)
		}
	}
}

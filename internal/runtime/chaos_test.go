// The runtime half of the chaos matrix: scripted faults around the
// supervisor's disk-checkpoint commit protocol and resume path, each
// cell run as two "lives" (crash, then recover) and held to the replay
// contract — the recovered run's final checkpoint state must be
// bit-identical to the fault-free baseline, and re-running the whole
// faulted cell must reproduce both lives' recordings byte for byte.
//
// The test lives in package runtime_test because it drives the
// supervisor through internal/replay, which imports runtime.
package runtime_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/fault"
	"chainckpt/internal/platform"
	"chainckpt/internal/replay"
	"chainckpt/internal/runtime"
	"chainckpt/internal/workload"
)

// chaosSeed fixes every cell's fault sequence; the matrix axes are
// fault type and injection point, not randomness.
const chaosSeed = 13

// chaosSpec builds the shared instance: a platform whose expensive disk
// checkpoints produce a genuinely two-level schedule (sparse disk
// checkpoints, many memory checkpoints and partial verifications), so
// the torn-commit window and the memory-tier rollback path both carry
// real weight.
func chaosSpec(t *testing.T) replay.Spec {
	t.Helper()
	c, err := workload.Uniform(24, 24000)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.Platform{
		Name: "ChaosLab", LambdaF: 1e-4, LambdaS: 4e-4,
		CD: 1000, CM: 10, RD: 1000, RM: 10, VStar: 10, V: 0.1, Recall: 0.8,
	}
	res, err := core.Plan(core.AlgADMVStar, c, p)
	if err != nil {
		t.Fatal(err)
	}
	return replay.Spec{
		Chain: c, Platform: p, Schedule: res.Schedule, Algorithm: core.AlgADMVStar,
		Seed: chaosSeed, ScaleF: 2, ScaleS: 2,
	}
}

// scriptSpec declares one scripted fault; fresh Script instances are
// built per run so the original cell and its replay count hits
// independently.
type scriptSpec struct {
	point  fault.Point
	hit    int
	crash  bool
	mutate func([]byte) []byte
}

func (s *scriptSpec) build() (fault.Injector, *fault.Script) {
	if s == nil {
		return nil, nil
	}
	sc := &fault.Script{Point: s.point, Hit: s.hit, Crash: s.crash, Mutate: s.mutate}
	return sc, sc
}

// corruptSimState flips the corruption marker inside a restored
// SimRunner state: the silent-error-smuggled-in-through-recovery fault.
func corruptSimState(data []byte) []byte {
	return bytes.Replace(append([]byte(nil), data...),
		[]byte(`"corrupt":false`), []byte(`"corrupt":true`), 1)
}

// corruptNewestCheckpoint deterministically damages the newest
// checkpoint file between lives: the disk-tier hash-mismatch fault a
// resume must survive by falling back to the previous checkpoint.
func corruptNewestCheckpoint(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range ents {
		var b int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d.bin", &b); err == nil && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no checkpoint file to corrupt")
	}
	path := filepath.Join(dir, newest)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// chaosCell is one (fault type × injection point) entry: a scripted
// fault in the first life (always a crash), optional file damage
// between lives, and an optional scripted fault in the recovering life.
type chaosCell struct {
	name         string
	life1        *scriptSpec
	betweenLives func(t *testing.T, dir string)
	life2        *scriptSpec
	// wantDetect requires the recovering life to detect (and survive) a
	// silent corruption.
	wantDetect bool
	// tornCheckpoint asserts the signature of the torn two-phase
	// commit: life 1 left one more checkpoint on disk than it ever
	// committed (emitted) to its observers.
	tornCheckpoint bool
}

func chaosCells() []chaosCell {
	return []chaosCell{
		{
			name:  "crash-before-first-disk-ckpt",
			life1: &scriptSpec{point: fault.RuntimeBeforeDiskCkpt, hit: 1, crash: true},
		},
		{
			name:  "crash-before-mid-disk-ckpt",
			life1: &scriptSpec{point: fault.RuntimeBeforeDiskCkpt, hit: 3, crash: true},
		},
		{
			name:           "crash-between-ckpt-and-commit-first",
			life1:          &scriptSpec{point: fault.RuntimeAfterDiskCkpt, hit: 1, crash: true},
			tornCheckpoint: true,
		},
		{
			name:           "crash-between-ckpt-and-commit-mid",
			life1:          &scriptSpec{point: fault.RuntimeAfterDiskCkpt, hit: 3, crash: true},
			tornCheckpoint: true,
		},
		{
			name:  "crash-after-commit-first",
			life1: &scriptSpec{point: fault.RuntimeAfterCommit, hit: 1, crash: true},
		},
		{
			name:  "crash-after-commit-mid",
			life1: &scriptSpec{point: fault.RuntimeAfterCommit, hit: 3, crash: true},
		},
		{
			name:       "silent-corruption-during-resume",
			life1:      &scriptSpec{point: fault.RuntimeAfterCommit, hit: 2, crash: true},
			life2:      &scriptSpec{point: fault.RuntimeResumeState, hit: 1, mutate: corruptSimState},
			wantDetect: true,
		},
		{
			name:         "disk-hash-mismatch-on-resume",
			life1:        &scriptSpec{point: fault.RuntimeAfterCommit, hit: 2, crash: true},
			betweenLives: corruptNewestCheckpoint,
		},
		{
			name:           "torn-commit-then-corrupt-resume",
			life1:          &scriptSpec{point: fault.RuntimeAfterDiskCkpt, hit: 2, crash: true},
			life2:          &scriptSpec{point: fault.RuntimeResumeState, hit: 1, mutate: corruptSimState},
			wantDetect:     true,
			tornCheckpoint: true,
		},
	}
}

// runLives executes one cell: life 1 until the scripted crash, the
// between-lives damage, then life 2 resuming over the same directory
// with a fresh store and runner — exactly what a restarted process
// sees.
func runLives(t *testing.T, cell chaosCell, repro string) (life1, life2 *replay.Recording) {
	t.Helper()
	sup := runtime.New(runtime.Options{})
	spec := chaosSpec(t)
	dir := t.TempDir()

	store1, err := runtime.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj1, sc1 := cell.life1.build()
	spec1 := spec
	spec1.Store = store1
	spec1.Faults = inj1
	life1, err = replay.Run(context.Background(), sup, spec1)
	if !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("life 1: got %v, want injected crash\n%s", err, repro)
	}
	if !sc1.Fired() {
		t.Fatalf("life-1 fault at %s (hit %d) never fired — the cell tested nothing\n%s",
			cell.life1.point, cell.life1.hit, repro)
	}

	if cell.betweenLives != nil {
		cell.betweenLives(t, dir)
	}

	store2, err := runtime.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj2, sc2 := cell.life2.build()
	spec2 := spec
	spec2.Store = store2
	spec2.Faults = inj2
	spec2.Resume = true
	life2, err = replay.Run(context.Background(), sup, spec2)
	if err != nil {
		t.Fatalf("life 2 must recover and complete: %v\n%s", err, repro)
	}
	if sc2 != nil && !sc2.Fired() {
		t.Fatalf("life-2 fault at %s never fired\n%s", cell.life2.point, repro)
	}
	return life1, life2
}

func countFrames(rec *replay.Recording, kind string) int {
	n := 0
	for _, f := range rec.Frames {
		if f.Kind == kind {
			n++
		}
	}
	return n
}

// TestChaosMatrix runs the runtime cells. Each asserts, in order:
// completion of the recovering life, bit-identical final checkpoint
// state against the fault-free baseline, and bit-identical replay of
// both faulted lives.
func TestChaosMatrix(t *testing.T) {
	// The fault-free baseline: same instance, same seed, no faults, on a
	// volatile store (whose digests use the same canonical encoding as
	// checkpoint files, so they compare across backends).
	sup := runtime.New(runtime.Options{})
	base, err := replay.Run(context.Background(), sup, chaosSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if base.Report == nil || len(base.Checkpoints) == 0 {
		t.Fatal("baseline recording is incomplete")
	}
	n := chaosSpec(t).Chain.Len()

	for _, cell := range chaosCells() {
		t.Run(cell.name, func(t *testing.T) {
			repro := fmt.Sprintf("repro: go test ./internal/runtime -run 'TestChaosMatrix/%s$' -count=1  # seed=%d",
				cell.name, chaosSeed)
			a, b := runLives(t, cell, repro)

			// The recovering life completed the chain.
			if b.Report == nil {
				t.Fatalf("life 2 has no report\n%s", repro)
			}
			if last := b.Frames[len(b.Frames)-1]; last.Kind != "done" || last.Pos != n {
				t.Fatalf("life 2 ended with %+v, not done at %d\n%s", last, n, repro)
			}
			if b.Report.Seed != chaosSeed {
				t.Fatalf("life 2 report carries seed %d, want %d\n%s", b.Report.Seed, chaosSeed, repro)
			}

			// Bit-identical final state: the recovered run's disk tier must
			// hold exactly the checkpoint set of the fault-free baseline —
			// same boundaries, same content digests (life 2 rewrites any
			// checkpoint the damage touched as it re-executes past it).
			if d := diffDigests(base.Checkpoints, b.Checkpoints); d != "" {
				t.Fatalf("checkpoint set diverged from fault-free baseline: %s\n%s", d, repro)
			}

			if cell.wantDetect {
				if countFrames(b, "detect") == 0 {
					t.Fatalf("corrupted resume state was never detected\n%s", repro)
				}
				if countFrames(b, "rollback") == 0 {
					t.Fatalf("detected corruption caused no rollback\n%s", repro)
				}
			}
			if cell.tornCheckpoint {
				// Life 1 wrote the checkpoint but died before committing it:
				// one more file on disk (plus boundary 0) than ckpt-disk
				// events in its trace.
				if got, want := len(a.Checkpoints), countFrames(a, "ckpt-disk")+2; got != want {
					t.Fatalf("torn commit signature: %d checkpoints on disk, want %d\n%s", got, want, repro)
				}
			}

			// Replay equivalence: re-running the whole faulted cell — both
			// lives, same scripts — reproduces both recordings byte for
			// byte.
			a2, b2 := runLives(t, cell, repro)
			if d, err := replay.Diff(a, a2); err != nil || d != "" {
				t.Fatalf("life 1 replay diverged: %s (%v)\n%s", d, err, repro)
			}
			if d, err := replay.Diff(b, b2); err != nil || d != "" {
				t.Fatalf("life 2 replay diverged: %s (%v)\n%s", d, err, repro)
			}
		})
	}
}

// diffDigests compares two checkpoint digest lists and names the first
// divergence.
func diffDigests(want, got []runtime.CheckpointDigest) string {
	for i := 0; i < len(want) || i < len(got); i++ {
		switch {
		case i >= len(want):
			return fmt.Sprintf("extra checkpoint %+v", got[i])
		case i >= len(got):
			return fmt.Sprintf("missing checkpoint %+v", want[i])
		case want[i] != got[i]:
			return fmt.Sprintf("checkpoint %d: %+v != %+v", i, got[i], want[i])
		}
	}
	return ""
}

// The two-tier checkpoint store of the runtime supervisor. The memory
// tier holds the single most recent verified in-memory checkpoint (the
// paper's C_M mechanism: cheap, wiped by a fail-stop error); the disk
// tier persists checkpoints to stable storage (C_D) with a content
// fingerprint, so a restore can prove the bytes it hands back are the
// bytes that were saved. A Store with no directory keeps the disk tier
// in process memory — the right backend for simulations and tests, where
// "disk" only needs disk *semantics* (survives the modeled crash), not
// actual I/O.
package runtime

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"chainckpt/internal/obs"
)

// ckptMagic heads every disk checkpoint file; bump the version suffix
// when the layout changes.
var ckptMagic = [8]byte{'C', 'K', 'P', 'T', 'v', '1', '\n', 0}

// checkpoint is one stored state snapshot.
type checkpoint struct {
	boundary int
	data     []byte
	sum      [32]byte
}

// Store is the supervisor's two-tier checkpoint store. All methods are
// safe for concurrent use, though the supervisor drives one execution at
// a time.
type Store struct {
	mu  sync.Mutex
	dir string // "" = volatile disk tier

	mem  *checkpoint         // memory tier: latest in-memory checkpoint
	disk *checkpoint         // disk tier: latest disk checkpoint
	vol  map[int]*checkpoint // volatile disk backend (dir == "")
	ret  int                 // disk checkpoints retained (0 = all)

	// Observability children installed by the supervisor (nil when
	// uninstrumented; observations are nil-safe).
	fsyncH *obs.Histogram
	bytesH *obs.Histogram
}

// instrument installs the checkpoint fsync-duration and payload-size
// histograms; the supervisor calls it once per run when its Options
// carry Metrics.
func (s *Store) instrument(fsync, bytes *obs.Histogram) {
	s.mu.Lock()
	s.fsyncH = fsync
	s.bytesH = bytes
	s.mu.Unlock()
}

// NewStore opens a checkpoint store. With a non-empty dir the disk tier
// writes fingerprinted files under it (created if missing); with "" the
// disk tier lives in process memory.
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir, vol: make(map[int]*checkpoint)}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runtime: checkpoint dir: %w", err)
		}
	}
	return s, nil
}

// SetRetention bounds how many disk checkpoint files are kept (older
// boundaries are pruned after each save); zero keeps everything.
func (s *Store) SetRetention(n int) {
	s.mu.Lock()
	s.ret = n
	s.mu.Unlock()
}

// SaveMemory records state as the in-memory checkpoint at boundary. The
// memory tier holds one checkpoint: the model never rolls back past the
// most recent one.
func (s *Store) SaveMemory(boundary int, data []byte) {
	s.mu.Lock()
	s.mem = snapshot(boundary, data)
	s.mu.Unlock()
}

// SaveDisk persists state as the disk checkpoint at boundary.
func (s *Store) SaveDisk(boundary int, data []byte) error {
	ck := snapshot(boundary, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesH.Observe(float64(len(data)))
	if s.dir != "" {
		fsync, err := writeCheckpointFile(s.path(boundary), ck)
		if err != nil {
			return err
		}
		s.fsyncH.Observe(fsync.Seconds())
	} else {
		s.vol[boundary] = ck
	}
	s.disk = ck
	s.prune()
	return nil
}

// LoadMemory returns the latest in-memory checkpoint. It never fails
// once boundary 0 has been saved: the memory tier is process state.
func (s *Store) LoadMemory() (int, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mem == nil {
		return 0, nil, fmt.Errorf("runtime: memory tier is empty")
	}
	return s.mem.boundary, clone(s.mem.data), nil
}

// LoadDisk returns the latest disk checkpoint after verifying its
// content fingerprint, the restore path of a fail-stop recovery.
func (s *Store) LoadDisk() (int, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disk == nil {
		return 0, nil, fmt.Errorf("runtime: disk tier is empty")
	}
	if s.dir == "" {
		return s.disk.boundary, clone(s.disk.data), nil
	}
	ck, err := readCheckpointFile(s.path(s.disk.boundary))
	if err != nil {
		return 0, nil, err
	}
	return ck.boundary, ck.data, nil
}

// Resume returns the checkpoint execution should restart from. When a
// cold-start scan (RecoverLatest) has already reconciled this store,
// the seeded checkpoint is re-read and re-verified without a second
// directory scan; otherwise — or if that single file stopped verifying
// in the meantime — it falls back to the full scan.
func (s *Store) Resume() (int, []byte, error) {
	s.mu.Lock()
	seeded := s.disk != nil
	s.mu.Unlock()
	if seeded {
		if b, data, err := s.LoadDisk(); err == nil {
			return b, data, nil
		}
	}
	return s.RecoverLatest()
}

// RecoverLatest scans the disk tier for the most recent checkpoint whose
// fingerprint still verifies, skipping damaged files — the cold-start
// path of a supervisor resuming after a real crash. It returns boundary
// -1 when no valid checkpoint exists.
func (s *Store) RecoverLatest() (int, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bounds, err := s.boundaries()
	if err != nil {
		return -1, nil, err
	}
	sort.Sort(sort.Reverse(sort.IntSlice(bounds)))
	for _, b := range bounds {
		var ck *checkpoint
		if s.dir == "" {
			ck = s.vol[b]
			if sha256.Sum256(ck.data) != ck.sum {
				continue
			}
		} else {
			ck, err = readCheckpointFile(s.path(b))
			if err != nil {
				continue
			}
		}
		s.disk = ck
		s.mem = ck
		return ck.boundary, clone(ck.data), nil
	}
	return -1, nil, nil
}

// CheckpointDigest fingerprints one disk-tier checkpoint: the SHA-256
// of its canonical file encoding. Two stores hold bit-identical
// checkpoint sets exactly when their digest lists are equal — the
// equivalence replay recordings and chaos cells assert.
type CheckpointDigest struct {
	Boundary int    `json:"boundary"`
	SHA256   string `json:"sha256"`
	// Damaged marks a checkpoint whose stored bytes no longer verify
	// (the digest then covers the damaged bytes as found).
	Damaged bool `json:"damaged,omitempty"`
}

// Digests returns the content fingerprint of every checkpoint in the
// disk tier, in boundary order. Volatile and directory-backed tiers
// digest the same canonical encoding, so a run against either backend
// yields comparable digests.
func (s *Store) Digests() ([]CheckpointDigest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bounds, err := s.boundaries()
	if err != nil {
		return nil, err
	}
	sort.Ints(bounds)
	out := make([]CheckpointDigest, 0, len(bounds))
	for _, b := range bounds {
		var d CheckpointDigest
		if s.dir == "" {
			ck := s.vol[b]
			d = CheckpointDigest{Boundary: b, SHA256: fmt.Sprintf("%x", sha256.Sum256(encodeCheckpoint(ck)))}
			if sha256.Sum256(ck.data) != ck.sum {
				d.Damaged = true
			}
		} else {
			raw, err := os.ReadFile(s.path(b))
			if err != nil {
				return nil, fmt.Errorf("runtime: digest checkpoint %d: %w", b, err)
			}
			d = CheckpointDigest{Boundary: b, SHA256: fmt.Sprintf("%x", sha256.Sum256(raw))}
			if _, err := readCheckpointFile(s.path(b)); err != nil {
				d.Damaged = true
			}
		}
		out = append(out, d)
	}
	return out, nil
}

// Boundaries returns the boundaries currently held by the disk tier, in
// increasing order.
func (s *Store) Boundaries() ([]int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bounds, err := s.boundaries()
	if err != nil {
		return nil, err
	}
	sort.Ints(bounds)
	return bounds, nil
}

func (s *Store) boundaries() ([]int, error) {
	if s.dir == "" {
		out := make([]int, 0, len(s.vol))
		for b := range s.vol {
			out = append(out, b)
		}
		return out, nil
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("runtime: checkpoint dir: %w", err)
	}
	var out []int
	for _, e := range ents {
		var b int
		// Require an exact round-trip so leftover temporaries
		// (ckpt-NNNNNN.bin.tmp from a crash mid-save) are not taken
		// for committed checkpoints: Sscanf tolerates trailing junk.
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d.bin", &b); err == nil &&
			e.Name() == fmt.Sprintf("ckpt-%06d.bin", b) {
			out = append(out, b)
		}
	}
	return out, nil
}

// prune enforces the retention bound; caller holds the lock.
func (s *Store) prune() {
	if s.ret <= 0 || s.disk == nil {
		return
	}
	bounds, err := s.boundaries()
	if err != nil {
		return
	}
	sort.Sort(sort.Reverse(sort.IntSlice(bounds)))
	for _, b := range bounds[min(s.ret, len(bounds)):] {
		if s.dir == "" {
			delete(s.vol, b)
		} else {
			os.Remove(s.path(b))
		}
	}
}

func (s *Store) path(boundary int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%06d.bin", boundary))
}

func snapshot(boundary int, data []byte) *checkpoint {
	return &checkpoint{boundary: boundary, data: clone(data), sum: sha256.Sum256(data)}
}

func clone(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// encodeCheckpoint lays a checkpoint out in the canonical file form:
// magic, boundary, payload length, SHA-256 fingerprint, payload. Both
// the directory backend (which writes these bytes) and the volatile
// backend (which only digests them) share this encoding, so checkpoint
// digests compare across backends.
func encodeCheckpoint(ck *checkpoint) []byte {
	buf := make([]byte, 0, len(ckptMagic)+16+32+len(ck.data))
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.boundary))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ck.data)))
	buf = append(buf, ck.sum[:]...)
	return append(buf, ck.data...)
}

// writeCheckpointFile persists a checkpoint in its canonical encoding
// and returns how long the fsync alone took. The write goes through a
// temporary file, fsync, and rename so a crash mid-save can never
// leave a half-written file under a checkpoint name — and a crash
// right after the rename cannot lose the bytes to a dirty page cache.
func writeCheckpointFile(path string, ck *checkpoint) (time.Duration, error) {
	buf := encodeCheckpoint(ck)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("runtime: write checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return 0, fmt.Errorf("runtime: write checkpoint: %w", err)
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("runtime: sync checkpoint: %w", err)
	}
	fsync := time.Since(start)
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("runtime: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("runtime: commit checkpoint: %w", err)
	}
	return fsync, nil
}

func readCheckpointFile(path string) (*checkpoint, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runtime: read checkpoint: %w", err)
	}
	head := len(ckptMagic) + 16 + 32
	if len(raw) < head || [8]byte(raw[:8]) != ckptMagic {
		return nil, fmt.Errorf("runtime: %s: not a checkpoint file", path)
	}
	boundary := int(binary.LittleEndian.Uint64(raw[8:16]))
	size := binary.LittleEndian.Uint64(raw[16:24])
	var sum [32]byte
	copy(sum[:], raw[24:56])
	data := raw[head:]
	if uint64(len(data)) != size {
		return nil, fmt.Errorf("runtime: %s: truncated checkpoint (%d of %d payload bytes)",
			path, len(data), size)
	}
	if sha256.Sum256(data) != sum {
		return nil, fmt.Errorf("runtime: %s: fingerprint mismatch (checkpoint corrupted)", path)
	}
	return &checkpoint{boundary: boundary, data: data, sum: sum}, nil
}

package runtime

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

// resumePlatform is a platform whose fail-stop rate is high enough that
// the planner spreads interior disk checkpoints across the chain — the
// regime where restart-resume is interesting. (On the Table I platforms
// at test-sized chains, only the mandatory final disk checkpoint is
// placed.)
func resumePlatform(t *testing.T) platform.Platform {
	t.Helper()
	p := platform.Platform{Name: "ResumeLab", LambdaF: 1e-4, LambdaS: 4e-4,
		CD: 100, CM: 10, RD: 100, RM: 10, VStar: 10, V: 0.1, Recall: 0.8}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestResumeContinuesFromDiskCheckpoint hard-stops a run at its first
// interior disk checkpoint (context cancelled inside the Progress hook —
// the goroutine dies exactly as a killed process would, with checkpoints
// on disk and no farewell), then resumes over the same directory and
// checks the second life starts where the first ended.
func TestResumeContinuesFromDiskCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c, err := workload.Uniform(20, 12000)
	if err != nil {
		t.Fatal(err)
	}
	p := resumePlatform(t)
	sup := New(Options{})

	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stopped int
	job := Job{
		Chain: c, Platform: p, Runner: NopRunner{}, Store: store1, Record: true,
		Progress: func(b int, est EstimatorState, sched *schedule.Schedule) {
			if b > 0 && b < c.Len() && stopped == 0 {
				stopped = b
				cancel()
			}
		},
	}
	if _, err := sup.Run(ctx, job); !errors.Is(err, context.Canceled) {
		t.Fatalf("hard-stopped run returned %v, want context.Canceled", err)
	}
	if stopped <= 0 {
		t.Fatal("schedule placed no interior disk checkpoint to stop at")
	}

	// Second life: a fresh store over the same directory, Resume set.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	job2 := job
	job2.Store = store2
	job2.Progress = nil
	job2.Resume = true
	rep, err := sup.Run(context.Background(), job2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedFrom != stopped {
		t.Errorf("resumed from %d, want %d", rep.ResumedFrom, stopped)
	}
	// Error-free runner: the second life executes exactly the remaining
	// tasks, never the committed prefix.
	if want := int64(c.Len() - stopped); rep.Events.TasksRun != want {
		t.Errorf("resumed run executed %d tasks, want %d", rep.Events.TasksRun, want)
	}
	// The trace opens with the resume event and closes with done.
	if len(rep.Trace) == 0 || rep.Trace[0].Kind != "resume" || rep.Trace[0].Pos != stopped {
		t.Errorf("trace start: %+v", rep.Trace[:min(3, len(rep.Trace))])
	}
	if last := rep.Trace[len(rep.Trace)-1]; last.Kind != "done" || last.Pos != c.Len() {
		t.Errorf("trace end: %+v", last)
	}
}

// TestResumeRejectsForeignCheckpoint: resuming a short chain over a
// directory holding a longer chain's checkpoints must error cleanly,
// not index past the schedule.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	long, err := workload.Uniform(24, 24000)
	if err != nil {
		t.Fatal(err)
	}
	sup := New(Options{})
	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(context.Background(), Job{
		Chain: long, Platform: platform.Hera(), Runner: NopRunner{}, Store: store1,
	}); err != nil {
		t.Fatal(err)
	}

	short, err := workload.Uniform(10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sup.Run(context.Background(), Job{
		Chain: short, Platform: platform.Hera(), Runner: NopRunner{}, Store: store2, Resume: true,
	})
	if err == nil || !strings.Contains(err.Error(), "boundary 24") {
		t.Fatalf("foreign checkpoint resume returned %v, want a boundary-range error", err)
	}
}

// TestResumeEmptyStoreStartsFresh: Resume over a store with no
// checkpoints degrades to a normal run.
func TestResumeEmptyStoreStartsFresh(t *testing.T) {
	c, err := workload.Uniform(8, 8000)
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(Options{}).Run(context.Background(), Job{
		Chain: c, Platform: platform.Hera(), Runner: NopRunner{}, Store: store, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedFrom != 0 || rep.Events.TasksRun != int64(c.Len()) {
		t.Errorf("fresh resume: resumed_from=%d tasks=%d", rep.ResumedFrom, rep.Events.TasksRun)
	}
}

// TestEstimatorSeedCarriesEvidence: a seeded estimator's evidence shows
// up in the report's estimates and in the exported state.
func TestEstimatorSeedCarriesEvidence(t *testing.T) {
	c, err := workload.Uniform(5, 500)
	if err != nil {
		t.Fatal(err)
	}
	seed := EstimatorState{
		FailStop: RateObservation{ExposureSeconds: 10000, Events: 7},
		Silent:   RateObservation{ExposureSeconds: 10000, Events: 0},
	}
	rep, err := New(Options{}).Run(context.Background(), Job{
		Chain: c, Platform: platform.Hera(), Runner: NopRunner{}, Estimator: &seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	// NopRunner adds 500 s of clean exposure to the seeded 10000 s.
	wantExposure := 10500.0
	if got := rep.Estimator.FailStop; got.Events != 7 || got.ExposureSeconds != wantExposure {
		t.Errorf("fail-stop evidence: %+v", got)
	}
	wantRate := 7 / wantExposure
	if rep.LambdaFEstimate != wantRate {
		t.Errorf("lambda_f estimate %g, want %g", rep.LambdaFEstimate, wantRate)
	}
}

// TestReplanPlatformRatePolicy: observed evidence replaces the planned
// rates only when it is trustworthy.
func TestReplanPlatformRatePolicy(t *testing.T) {
	p := platform.Hera()
	// Plenty of arrivals: MLE wins for fail-stop. Clean long exposure
	// whose upper bound sits under the planned rate: bound wins for
	// silent. (Hera: lambda_f and lambda_s both well above 3/1e9.)
	st := EstimatorState{
		FailStop: RateObservation{ExposureSeconds: 1e6, Events: 50},
		Silent:   RateObservation{ExposureSeconds: 1e9, Events: 0},
	}
	got := st.ReplanPlatform(p, 0)
	if want := 50 / 1e6; got.LambdaF != want {
		t.Errorf("lambda_f = %g, want MLE %g", got.LambdaF, want)
	}
	if want := 3 / 1e9; got.LambdaS != want {
		t.Errorf("lambda_s = %g, want rule-of-three bound %g", got.LambdaS, want)
	}
	// No evidence at all: planned rates survive.
	if got := (EstimatorState{}).ReplanPlatform(p, 0); got != p {
		t.Errorf("zero evidence changed the platform: %+v", got)
	}
}

// TestResumeSkipsDamagedCheckpoints: a corrupted latest checkpoint must
// not stop a resume — RecoverLatest falls back to the previous valid
// one, and the run still completes.
func TestResumeSkipsDamagedCheckpoints(t *testing.T) {
	dir := t.TempDir()
	c, err := workload.Uniform(20, 12000)
	if err != nil {
		t.Fatal(err)
	}
	p := resumePlatform(t)
	sup := New(Options{})
	store1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Run to completion so several checkpoints are on disk, then damage
	// the newest file.
	if _, err := sup.Run(context.Background(), Job{
		Chain: c, Platform: p, Runner: NopRunner{}, Store: store1,
	}); err != nil {
		t.Fatal(err)
	}
	bounds, err := store1.Boundaries()
	if err != nil || len(bounds) < 2 {
		t.Fatalf("need >=2 disk checkpoints, got %v (%v)", bounds, err)
	}
	last := bounds[len(bounds)-1]
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%06d.bin", last))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sup.Run(context.Background(), Job{
		Chain: c, Platform: p, Runner: NopRunner{}, Store: store2, Resume: true, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedFrom != bounds[len(bounds)-2] {
		t.Errorf("resumed from %d, want previous valid checkpoint %d", rep.ResumedFrom, bounds[len(bounds)-2])
	}
	var done bool
	for _, ev := range rep.Trace {
		if ev.Kind == "done" {
			done = true
		}
	}
	if !done {
		t.Error("resumed run never finished")
	}
}

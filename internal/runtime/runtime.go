// Package runtime executes scheduled linear task graphs: the missing
// link between the planners (which decide where checkpoints and
// verifications go) and reality (something has to run the tasks, take
// the checkpoints, and recover). A Supervisor drives a chain through a
// pluggable TaskRunner under a schedule, owning a two-tier checkpoint
// store and implementing the paper's full recovery semantics:
//
//   - a fail-stop error destroys memory: restore the last disk
//     checkpoint (cost R_D) and re-execute from there;
//   - a verification that detects silent corruption rolls back to the
//     last verified in-memory checkpoint (cost R_M);
//   - verifications and checkpoints are charged at the boundary costs
//     the schedule was planned with.
//
// Beyond faithful execution, the supervisor adapts: it keeps online
// estimates of the observed fail-stop and silent-error rates (MLE, plus
// a rule-of-three upper bound when a long clean exposure has produced no
// arrivals at all), and when they drift beyond a tolerance from the
// rates the schedule was planned for, it re-solves the dynamic program
// for the remaining suffix of the chain in place — Kernel.ReplanSuffix
// against the original chain, costs and budget, no synthetic suffix
// chain, no engine round-trip — and splices the new schedule in mid-run:
// localized re-planning in the spirit of localized recovery, instead of
// trusting a misspecified model to the end.
//
// The event log uses sim.TraceEvent verbatim, so traces from real
// executions and Monte-Carlo replays render and compare with the same
// tools.
package runtime

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/fault"
	"chainckpt/internal/obs"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/sim"
)

// Options configures a Supervisor.
type Options struct {
	// Engine plans initial schedules (default: the shared process-wide
	// engine, sharded across per-core memos), so identical jobs are
	// served from its memo whichever shard they hash to.
	Engine *engine.Engine
	// Kernel re-solves suffixes during adaptive runs (default: the
	// engine's replan kernel — shard 0's, or the injected shared one —
	// sharing its scratch pools). Suffix re-plans call it directly —
	// each is specific to the run's observed rates and committed
	// prefix, so there is nothing for the engine to memoize.
	Kernel *core.Kernel
	// Metrics, when non-nil, wires every run into an obs registry:
	// task/verification/checkpoint-commit latency histograms, fsync
	// and payload-size histograms on the disk tier, recovery and
	// re-plan timings (see NewMetrics). Nil means uninstrumented.
	Metrics *Metrics
}

// Supervisor executes jobs. It is safe for concurrent use; each Run
// gets its own execution state.
type Supervisor struct {
	eng  *engine.Engine
	kern *core.Kernel
	m    *Metrics

	// Recovery histogram children resolved once (nil when
	// uninstrumented; every observation is nil-safe).
	recDisk, recMem *obs.Histogram

	jobs    atomic.Uint64
	replans atomic.Uint64
}

// New builds a Supervisor.
func New(opts Options) *Supervisor {
	eng := opts.Engine
	if eng == nil {
		eng = engine.Default()
	}
	kern := opts.Kernel
	if kern == nil {
		kern = eng.Kernel()
	}
	s := &Supervisor{eng: eng, kern: kern, m: opts.Metrics}
	if s.m != nil {
		s.recDisk = s.m.RecoverySeconds.With("disk")
		s.recMem = s.m.RecoverySeconds.With("memory")
	}
	return s
}

// Job describes one chain execution.
type Job struct {
	// Chain is the task graph to execute.
	Chain *chain.Chain
	// Platform carries the modeled error rates and resilience costs the
	// schedule is planned (and re-planned) against.
	Platform platform.Platform
	// Schedule fixes the resilience placements; nil plans one with
	// Algorithm before executing.
	Schedule *schedule.Schedule
	// Algorithm selects the planner for Schedule == nil and for adaptive
	// re-plans (default ADMV).
	Algorithm core.Algorithm
	// Costs overrides the platform's constant costs per boundary.
	Costs *platform.Costs
	// MaxDiskCheckpoints bounds the disk checkpoints of the whole run
	// (0 = unlimited). It applies to the initial plan and is carried
	// through adaptive re-plans: a suffix re-plan only gets the budget
	// not yet spent on committed disk checkpoints.
	MaxDiskCheckpoints int
	// Runner executes the tasks (default NopRunner).
	Runner TaskRunner
	// Store holds the checkpoints (default: a fresh volatile store).
	Store *Store
	// Initial is the input state of task 1 (checkpointed at the virtual
	// boundary 0).
	Initial State
	// Resume restores the most recent valid disk checkpoint from Store
	// (RecoverLatest, skipping damaged files) and starts execution at
	// that boundary instead of boundary 0 — the cold-start path of a
	// durable job store relaunching an interrupted run. With an empty
	// store the run starts fresh; Initial is ignored whenever a
	// checkpoint is restored.
	Resume bool
	// Estimator, when non-nil, seeds the online rate estimators with
	// persisted evidence, so a resumed run keeps what its earlier life
	// had learned about the true error rates.
	Estimator *EstimatorState
	// Progress, when non-nil, is invoked right after every committed
	// disk checkpoint with the boundary, the estimator state, and the
	// schedule currently executing (including any adaptive splices; the
	// callee must not mutate it and must serialize synchronously) — the
	// durability hook a persistent job store records running(progress)
	// transitions through. It runs on the execution goroutine; keep it
	// fast.
	Progress func(boundary int, est EstimatorState, sched *schedule.Schedule)
	// Observer, when non-nil, receives every event as it happens.
	Observer func(sim.TraceEvent)
	// Faults, when non-nil, is fired at the supervisor's injection
	// points (see internal/fault) — the chaos harness's seam into the
	// commit protocol around disk checkpoints and resumes. Production
	// runs leave it nil.
	Faults fault.Injector
	// Record keeps the full event log in the report.
	Record bool
	// MaxRollbacks aborts runs that recover more than this many times
	// (fail-stop and silent combined), a guard against runners whose
	// true error rates make the schedule diverge. Zero means the
	// default of 1e6; negative disables the guard.
	MaxRollbacks int
}

// AdaptPolicy tunes adaptive re-planning. The zero value selects the
// defaults.
type AdaptPolicy struct {
	// Tolerance is the drift factor that triggers a re-plan: re-plan
	// when the observed rate of either source leaves
	// [planned/Tolerance, planned*Tolerance]. Default 2.
	Tolerance float64
	// MinEvents is the minimum number of observed arrivals of a source
	// before its estimate is trusted. Default 4.
	MinEvents int
	// MaxReplans bounds the re-plans of one run. Default 8.
	MaxReplans int
}

func (p AdaptPolicy) normalized() AdaptPolicy {
	if p.Tolerance <= 1 {
		p.Tolerance = 2
	}
	if p.MinEvents <= 0 {
		p.MinEvents = 4
	}
	if p.MaxReplans <= 0 {
		p.MaxReplans = 8
	}
	return p
}

// Counters tallies the events of one run.
type Counters struct {
	TasksRun         int64 `json:"tasks_run"` // task executions, including re-executions
	FailStop         int64 `json:"fail_stop"`
	SilentDetected   int64 `json:"silent_detected"` // corruptions caught by any verification
	DiskRecoveries   int64 `json:"disk_recoveries"`
	MemoryRecoveries int64 `json:"memory_recoveries"`
	CheckpointsMem   int64 `json:"checkpoints_memory"`
	CheckpointsDisk  int64 `json:"checkpoints_disk"`
	Verifications    int64 `json:"verifications"`
	Replans          int64 `json:"replans"`
}

// Report summarizes one run.
type Report struct {
	// Makespan is the modeled execution time in seconds: compute charged
	// by the runner plus every resilience cost, the quantity the
	// planners minimize in expectation.
	Makespan float64 `json:"makespan"`
	// Wall is the real time the run took.
	Wall time.Duration `json:"wall_ns"`
	// Events tallies what happened.
	Events Counters `json:"events"`
	// FinalSchedule is the schedule after any adaptive splices (equal to
	// the input schedule for static runs).
	FinalSchedule *schedule.Schedule `json:"final_schedule"`
	// LambdaFEstimate and LambdaSEstimate are the MLE error rates
	// observed over the run (the modeled rates when no event was seen).
	LambdaFEstimate float64 `json:"lambda_f_estimate"`
	LambdaSEstimate float64 `json:"lambda_s_estimate"`
	// Estimator is the raw evidence behind the estimates (exposure and
	// arrivals per source), the state a durable job store persists so a
	// future resume can re-seed Job.Estimator.
	Estimator EstimatorState `json:"estimator"`
	// ResumedFrom is the boundary execution started from: positive when
	// Job.Resume restored a disk checkpoint, zero for a fresh run.
	ResumedFrom int `json:"resumed_from,omitempty"`
	// Seed is the RNG seed of the run's task runner when it exposes one
	// (SimRunner does); zero otherwise. It is what a failing chaos cell
	// or a recorded run prints as the one-line repro handle.
	Seed uint64 `json:"seed,omitempty"`
	// Trace is the full event log (only when Job.Record was set).
	Trace []sim.TraceEvent `json:"trace,omitempty"`
}

// Stats is a snapshot of a Supervisor's lifetime counters.
type Stats struct {
	Jobs    uint64 `json:"jobs"`
	Replans uint64 `json:"replans"`
}

// Stats returns the supervisor's lifetime counters.
func (s *Supervisor) Stats() Stats {
	return Stats{Jobs: s.jobs.Load(), Replans: s.replans.Load()}
}

// Run executes the job under its (possibly freshly planned) schedule,
// with recovery but without adaptive re-planning.
func (s *Supervisor) Run(ctx context.Context, job Job) (*Report, error) {
	return s.run(ctx, job, nil)
}

// RunAdaptive executes the job with adaptive re-planning under pol (zero
// value = defaults).
func (s *Supervisor) RunAdaptive(ctx context.Context, job Job, pol AdaptPolicy) (*Report, error) {
	p := pol.normalized()
	return s.run(ctx, job, &p)
}

// execution is the mutable state of one run.
type execution struct {
	sup   *Supervisor
	job   Job
	adapt *AdaptPolicy

	c       *chain.Chain
	planned platform.Platform // rates the current schedule is planned for
	sched   *schedule.Schedule
	runner  TaskRunner
	store   *Store

	stations []schedule.Station
	nextIdx  []int

	t        float64
	cur      int
	state    State
	attempts []int
	est      estimator
	counters Counters
	trace    []sim.TraceEvent

	// span is the run's root span (from the caller's context; nil when
	// untraced — every child/attr call is nil-safe). Spans record wall
	// time only: nothing here touches e.t, the event log, or anything
	// else that feeds replay canonical bytes.
	span *obs.Span
}

func (s *Supervisor) run(ctx context.Context, job Job, adapt *AdaptPolicy) (*Report, error) {
	start := time.Now()
	if job.Chain == nil || job.Chain.Len() == 0 {
		return nil, fmt.Errorf("runtime: empty chain")
	}
	if err := job.Platform.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	if job.Costs != nil {
		if job.Costs.Len() != job.Chain.Len() {
			return nil, fmt.Errorf("runtime: cost table for %d tasks but chain has %d",
				job.Costs.Len(), job.Chain.Len())
		}
	}
	if job.Algorithm == "" {
		job.Algorithm = core.AlgADMV
	}
	if job.Runner == nil {
		job.Runner = NopRunner{}
	}
	if job.Store == nil {
		st, err := NewStore("")
		if err != nil {
			return nil, err
		}
		job.Store = st
	}
	if job.MaxRollbacks == 0 {
		job.MaxRollbacks = 1_000_000
	}

	sched := job.Schedule
	if sched == nil {
		res, err := s.eng.Plan(ctx, engine.Request{
			Algorithm: job.Algorithm, Chain: job.Chain, Platform: job.Platform,
			Opts: core.Options{Costs: job.Costs, MaxDiskCheckpoints: job.MaxDiskCheckpoints},
		})
		if err != nil {
			return nil, fmt.Errorf("runtime: planning: %w", err)
		}
		sched = res.Schedule
	} else {
		if sched.Len() != job.Chain.Len() {
			return nil, fmt.Errorf("runtime: schedule for %d tasks but chain has %d",
				sched.Len(), job.Chain.Len())
		}
		if err := sched.ValidateComplete(); err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
		sched = sched.Clone()
	}

	e := &execution{
		sup: s, job: job, adapt: adapt,
		c: job.Chain, planned: job.Platform, sched: sched,
		runner: job.Runner, store: job.Store,
		state:    append(State(nil), job.Initial...),
		attempts: make([]int, job.Chain.Len()+1),
		span:     obs.SpanFrom(ctx),
	}
	if s.m != nil {
		job.Store.instrument(s.m.CkptFsyncSeconds, s.m.CkptBytes)
	}
	if job.Estimator != nil {
		e.est.restore(*job.Estimator)
	}
	e.rebuildStations()
	s.jobs.Add(1)

	rep, err := e.execute(ctx)
	if err != nil {
		return nil, err
	}
	rep.Wall = time.Since(start)
	return rep, nil
}

// rebuildStations recomputes the station walk and the rollback index
// (nextIdx[pos] = first station strictly after boundary pos) after the
// schedule changes.
func (e *execution) rebuildStations() {
	e.stations = e.sched.Stations()
	n := e.c.Len()
	e.nextIdx = make([]int, n+1)
	idx := 0
	for pos := 0; pos <= n; pos++ {
		for idx < len(e.stations) && e.stations[idx].Pos <= pos {
			idx++
		}
		e.nextIdx[pos] = idx
	}
}

// costAt returns the effective resilience costs of boundary i.
func (e *execution) costAt(i int) platform.BoundaryCosts {
	if e.job.Costs != nil {
		return e.job.Costs.At(i)
	}
	p := e.job.Platform
	return platform.BoundaryCosts{CD: p.CD, CM: p.CM, RD: p.RD, RM: p.RM, VStar: p.VStar, V: p.V}
}

// fire triggers the job's fault injector at point p (no-op when none is
// installed) and returns the possibly replaced payload.
func (e *execution) fire(p fault.Point, payload []byte) ([]byte, error) {
	return fault.Fire(e.job.Faults, p, payload)
}

func (e *execution) emit(kind string, pos int) {
	ev := sim.TraceEvent{T: e.t, Kind: kind, Pos: pos}
	if e.job.Observer != nil {
		e.job.Observer(ev)
	}
	if e.job.Record {
		e.trace = append(e.trace, ev)
	}
}

func (e *execution) execute(ctx context.Context) (*Report, error) {
	// A resumed run restores the most recent valid disk checkpoint and
	// continues from its boundary; everything else starts at the virtual
	// task T0, whose state is checkpointed everywhere at no cost so
	// recovery to boundary 0 is always possible.
	resumed := -1
	if e.job.Resume {
		rsp := e.span.Child("runtime.resume")
		b, data, err := e.store.Resume()
		if rsp != nil {
			rsp.SetAttrInt("boundary", int64(b))
			rsp.End()
		}
		if err != nil {
			return nil, fmt.Errorf("runtime: resume: %w", err)
		}
		if b > e.c.Len() {
			// A checkpoint from some other (longer) chain's directory, or
			// a corrupted boundary header: refuse rather than index past
			// the schedule.
			return nil, fmt.Errorf("runtime: resume: recovered checkpoint at boundary %d but the chain has %d tasks",
				b, e.c.Len())
		}
		if b >= 0 {
			// The resume-state injection point models corruption smuggled
			// in through recovery itself: the restored bytes may come back
			// mutated, and only the schedule's verifications can tell.
			data, err = e.fire(fault.RuntimeResumeState, data)
			if err != nil {
				return nil, fmt.Errorf("runtime: resume: %w", err)
			}
			e.cur = b
			e.state = data
			resumed = b
			if b > 0 {
				e.emit("resume", b)
			}
		}
	}
	if resumed < 0 {
		e.store.SaveMemory(0, e.state)
		if err := e.store.SaveDisk(0, e.state); err != nil {
			return nil, err
		}
	}

	i := e.nextIdx[e.cur]
	for i < len(e.stations) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if e.job.MaxRollbacks > 0 &&
			e.counters.DiskRecoveries+e.counters.MemoryRecoveries > int64(e.job.MaxRollbacks) {
			return nil, fmt.Errorf("runtime: aborted after %d rollbacks (diverging run)", e.job.MaxRollbacks)
		}
		st := e.stations[i]

		recovered, err := e.runSegment(ctx, st.Pos)
		if err != nil {
			return nil, err
		}
		if recovered {
			i = e.nextIdx[e.cur]
			continue
		}

		next, err := e.verifyStation(ctx, st)
		if err != nil {
			return nil, err
		}
		i = next
	}
	e.emit("done", e.c.Len())

	return &Report{
		Makespan:        e.t,
		Events:          e.counters,
		FinalSchedule:   e.sched,
		LambdaFEstimate: e.est.failStop.rate(e.job.Platform.LambdaF),
		LambdaSEstimate: e.est.silent.rate(e.job.Platform.LambdaS),
		Estimator:       e.est.state(),
		ResumedFrom:     max(resumed, 0),
		Seed:            runnerSeed(e.runner),
		Trace:           e.trace,
	}, nil
}

// runSegment executes tasks cur+1..to. It reports recovered=true when a
// fail-stop error interrupted the segment and the execution was restored
// from the disk tier.
func (e *execution) runSegment(ctx context.Context, to int) (recovered bool, err error) {
	m := e.sup.m
	for k := e.cur + 1; k <= to; k++ {
		task := e.c.Task(k)
		tsp := e.span.Child("runtime.task")
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		res, err := e.runner.Run(ctx, TaskSpec{
			Index: k, Name: task.Name, Weight: task.Weight,
			Attempt: e.attempts[k], State: e.state,
		})
		if m != nil {
			m.TaskSeconds.ObserveSince(start)
		}
		if tsp != nil {
			tsp.SetAttrInt("pos", int64(k))
			if e.attempts[k] > 0 {
				tsp.SetAttrInt("attempt", int64(e.attempts[k]))
			}
			tsp.End()
		}
		if err != nil {
			return false, fmt.Errorf("runtime: task %d: %w", k, err)
		}
		e.attempts[k]++
		e.counters.TasksRun++
		e.t += res.Elapsed
		e.est.observeCompute(res.Elapsed)

		if res.FailStop {
			e.counters.FailStop++
			e.est.failStop.event()
			e.emit("failstop", k)
			if err := e.recoverDisk(ctx); err != nil {
				return false, err
			}
			return true, nil
		}
		e.state = res.State
		e.emit("compute", k)
	}
	return false, nil
}

// recoverDisk restores the last disk checkpoint after a fail-stop: the
// memory tier is gone with the crash, so it is reseeded from the disk
// state.
func (e *execution) recoverDisk(ctx context.Context) error {
	rsp := e.span.Child("runtime.recover.disk")
	var start time.Time
	if e.sup.recDisk != nil {
		start = time.Now()
	}
	b, data, err := e.store.LoadDisk()
	if e.sup.recDisk != nil {
		e.sup.recDisk.ObserveSince(start)
	}
	if rsp != nil {
		rsp.SetAttrInt("boundary", int64(b))
		rsp.End()
	}
	if err != nil {
		return fmt.Errorf("runtime: fail-stop recovery: %w", err)
	}
	if b > 0 {
		e.t += e.costAt(b).RD
	}
	e.counters.DiskRecoveries++
	e.state = data
	e.store.SaveMemory(b, data)
	e.cur = b
	e.emit("reset", b)
	e.maybeReplan(ctx)
	return nil
}

// recoverMemory rolls back to the last verified in-memory checkpoint
// after a detected silent corruption.
func (e *execution) recoverMemory() error {
	rsp := e.span.Child("runtime.recover.memory")
	var start time.Time
	if e.sup.recMem != nil {
		start = time.Now()
	}
	b, data, err := e.store.LoadMemory()
	if e.sup.recMem != nil {
		e.sup.recMem.ObserveSince(start)
	}
	if rsp != nil {
		rsp.SetAttrInt("boundary", int64(b))
		rsp.End()
	}
	if err != nil {
		return fmt.Errorf("runtime: silent-error rollback: %w", err)
	}
	if b > 0 {
		e.t += e.costAt(b).RM
	}
	e.counters.MemoryRecoveries++
	e.state = data
	e.cur = b
	e.emit("rollback", b)
	return nil
}

// verifyStation runs the station's verification and checkpoints,
// returning the index of the next station to walk to.
func (e *execution) verifyStation(ctx context.Context, st schedule.Station) (int, error) {
	bc := e.costAt(st.Pos)
	partial := !st.Action.Has(schedule.Guaranteed)
	if partial {
		e.t += bc.V
	} else {
		e.t += bc.VStar
	}
	e.counters.Verifications++
	e.emit("verify", st.Pos)

	m := e.sup.m
	vsp := e.span.Child("runtime.verify")
	var vstart time.Time
	if m != nil {
		vstart = time.Now()
	}
	ok, err := e.runner.Verify(ctx, st.Pos, e.state, partial)
	if m != nil {
		m.VerifySeconds.ObserveSince(vstart)
	}
	if vsp != nil {
		vsp.SetAttrInt("pos", int64(st.Pos))
		if partial {
			vsp.SetAttr("partial", "true")
		}
		if !ok {
			vsp.SetAttr("detected", "true")
		}
		vsp.End()
	}
	if err != nil {
		return 0, fmt.Errorf("runtime: verification at %d: %w", st.Pos, err)
	}
	if !ok {
		e.counters.SilentDetected++
		e.est.silent.event()
		e.emit("detect", st.Pos)
		if err := e.recoverMemory(); err != nil {
			return 0, err
		}
		return e.nextIdx[e.cur], nil
	}

	if st.Action.Has(schedule.Memory) {
		e.t += bc.CM
		e.store.SaveMemory(st.Pos, e.state)
		e.counters.CheckpointsMem++
		e.emit("ckpt-mem", st.Pos)
	}
	if st.Action.Has(schedule.Disk) {
		e.t += bc.CD
		csp := e.span.Child("runtime.ckpt.commit")
		var cstart time.Time
		if m != nil {
			cstart = time.Now()
		}
		commit := func() error {
			// The three injection points bracket the two-phase commit of a
			// disk checkpoint: before the checkpoint write (nothing durable
			// yet), between checkpoint and journal commit (the torn window a
			// resume must reconcile), and after both committed.
			if _, err := e.fire(fault.RuntimeBeforeDiskCkpt, nil); err != nil {
				return fmt.Errorf("runtime: checkpoint at %d: %w", st.Pos, err)
			}
			if err := e.store.SaveDisk(st.Pos, e.state); err != nil {
				return err
			}
			if _, err := e.fire(fault.RuntimeAfterDiskCkpt, nil); err != nil {
				return fmt.Errorf("runtime: checkpoint at %d: %w", st.Pos, err)
			}
			e.counters.CheckpointsDisk++
			e.emit("ckpt-disk", st.Pos)
			if e.job.Progress != nil {
				e.job.Progress(st.Pos, e.est.state(), e.sched)
			}
			if _, err := e.fire(fault.RuntimeAfterCommit, nil); err != nil {
				return fmt.Errorf("runtime: checkpoint at %d: %w", st.Pos, err)
			}
			return nil
		}
		err := commit()
		if m != nil {
			m.CkptCommitSeconds.ObserveSince(cstart)
		}
		if csp != nil {
			csp.SetAttrInt("pos", int64(st.Pos))
			csp.SetAttrInt("bytes", int64(len(e.state)))
			csp.End()
		}
		if err != nil {
			return 0, err
		}
	}
	e.cur = st.Pos
	next := e.nextIdx[e.cur]
	if st.Action.Has(schedule.Disk) {
		// A disk checkpoint is a natural splice point: everything behind
		// it is committed, everything ahead is still plannable.
		e.maybeReplan(ctx)
		next = e.nextIdx[e.cur]
	}
	return next, nil
}

// maybeReplan re-solves the DP for the remaining suffix when the
// observed error rates have drifted beyond the policy tolerance from the
// rates the current schedule was planned for, and splices the new
// schedule in. Called only at disk-checkpoint boundaries (including
// right after a disk recovery), where the model's "start fresh from a
// stored state" assumption holds.
//
// The re-solve goes straight to the solver kernel: ReplanSuffix plans
// the window after the splice point against the original chain and cost
// table (no synthetic suffix chain, no cost-table slicing, no engine
// round-trip) with pooled scratch sized to the suffix.
func (e *execution) maybeReplan(ctx context.Context) {
	if e.adapt == nil || e.cur >= e.c.Len() {
		return
	}
	if e.counters.Replans >= int64(e.adapt.MaxReplans) {
		return
	}
	if ctx.Err() != nil {
		return
	}
	fDrift := e.est.failStop.drifted(e.planned.LambdaF, e.adapt.Tolerance, e.adapt.MinEvents)
	sDrift := e.est.silent.drifted(e.planned.LambdaS, e.adapt.Tolerance, e.adapt.MinEvents)
	if !fDrift && !sDrift {
		return
	}

	// Re-plan the suffix under the observed rates (per source, only once
	// the arrivals — or a long clean exposure — back the estimate; the
	// other keeps its planned value).
	updated := e.planned
	if fDrift {
		updated.LambdaF = e.est.failStop.replanRate(updated.LambdaF, e.adapt.MinEvents)
	}
	if sDrift {
		updated.LambdaS = e.est.silent.replanRate(updated.LambdaS, e.adapt.MinEvents)
	}

	n := e.c.Len()
	m := n - e.cur
	// SolveWorkers: 1 keeps the DP serial, matching the engine-worker
	// convention: concurrent jobs are the parallelism, a re-plan must
	// not fan out across every core mid-run.
	opts := core.Options{Costs: e.job.Costs, SolveWorkers: 1}
	if e.job.MaxDiskCheckpoints > 0 {
		// The suffix only gets the budget not yet spent on committed
		// disk checkpoints behind the splice point.
		used := 0
		for pos := 1; pos <= e.cur; pos++ {
			if e.sched.At(pos).Has(schedule.Disk) {
				used++
			}
		}
		rem := e.job.MaxDiskCheckpoints - used
		if rem < 1 {
			return // no budget left to re-plan the suffix under
		}
		if rem > m {
			rem = m
		}
		opts.MaxDiskCheckpoints = rem
	}
	rsp := e.span.Child("runtime.replan")
	var rstart time.Time
	if e.sup.m != nil {
		rstart = time.Now()
	}
	res, err := e.sup.kern.ReplanSuffix(e.job.Algorithm, e.c, updated, e.cur, opts)
	if e.sup.m != nil {
		e.sup.m.ReplanSeconds.ObserveSince(rstart)
	}
	if rsp != nil {
		rsp.SetAttrInt("from", int64(e.cur))
		rsp.End()
	}
	if err != nil {
		// A failed re-plan is not fatal: keep executing the current
		// schedule.
		return
	}
	e.sched.SpliceSuffix(e.cur, res.Schedule)
	e.planned = updated
	e.rebuildStations()
	e.counters.Replans++
	e.sup.replans.Add(1)
	e.emit("replan", e.cur)
}

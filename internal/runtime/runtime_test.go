package runtime

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/sim"
)

// testPlatform has round-number costs so expected makespans can be
// written down exactly. Rates are negligible: faults come from scripts.
func testPlatform() platform.Platform {
	return platform.Platform{
		Name: "TestLab", LambdaF: 1e-12, LambdaS: 1e-12,
		CD: 30, CM: 5, RD: 20, RM: 3, VStar: 7, V: 1, Recall: 0.8,
	}
}

// scriptRunner injects faults at scripted (task, attempt) points and
// scripted partial-verification misses, using the SimRunner state
// encoding so corruption survives checkpoint/restore cycles.
type scriptRunner struct {
	failAt    map[[2]int]float64 // {task, attempt} -> crash after this much compute
	corruptAt map[[2]int]bool    // {task, attempt} -> corrupt the output
	missAt    map[[2]int]bool    // {boundary, nth-partial-verify} -> miss
	verifies  map[int]int        // partial verifies seen per boundary
}

func (r *scriptRunner) Run(_ context.Context, t TaskSpec) (TaskResult, error) {
	if x, ok := r.failAt[[2]int{t.Index, t.Attempt}]; ok {
		return TaskResult{Elapsed: x, FailStop: true}, nil
	}
	st := decodeSimState(t.State)
	if r.corruptAt[[2]int{t.Index, t.Attempt}] {
		st.Corrupt = true
	}
	st.Boundary = t.Index
	st.Steps++
	return TaskResult{State: st.encode(), Elapsed: t.Weight}, nil
}

func (r *scriptRunner) Verify(_ context.Context, boundary int, state State, partial bool) (bool, error) {
	st := decodeSimState(state)
	if !st.Corrupt {
		return true, nil
	}
	if !partial {
		return false, nil
	}
	if r.verifies == nil {
		r.verifies = make(map[int]int)
	}
	nth := r.verifies[boundary]
	r.verifies[boundary]++
	return r.missAt[[2]int{boundary, nth}], nil
}

func mustSchedule(t *testing.T, n int, actions map[int]schedule.Action) *schedule.Schedule {
	t.Helper()
	s := schedule.MustNew(n)
	for pos, a := range actions {
		s.Set(pos, a)
	}
	if err := s.ValidateComplete(); err != nil {
		t.Fatal(err)
	}
	return s
}

func kinds(trace []sim.TraceEvent) []string {
	out := make([]string, len(trace))
	for i, ev := range trace {
		out[i] = ev.Kind
	}
	return out
}

func TestErrorFreeRunMatchesScheduleCost(t *testing.T) {
	c := chain.MustFromWeights(100, 200, 300, 400)
	p := testPlatform()
	sched := mustSchedule(t, 4, map[int]schedule.Action{
		1: schedule.Partial,
		2: schedule.Guaranteed | schedule.Memory,
		4: schedule.Disk,
	})
	sup := New(Options{})
	rep, err := sup.Run(context.Background(), Job{Chain: c, Platform: p, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	want := c.TotalWeight() + sched.TotalCost(p.V, p.VStar, p.CM, p.CD)
	if math.Abs(rep.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %.6f, want error-free cost %.6f", rep.Makespan, want)
	}
	if rep.Events.TasksRun != 4 || rep.Events.FailStop != 0 || rep.Events.Verifications != 3 {
		t.Fatalf("counters: %+v", rep.Events)
	}
}

func TestFailStopRestoresFromDiskCheckpoint(t *testing.T) {
	c := chain.MustFromWeights(100, 200, 300, 400)
	p := testPlatform()
	sched := mustSchedule(t, 4, map[int]schedule.Action{
		2: schedule.Disk,
		4: schedule.Disk,
	})
	runner := &scriptRunner{failAt: map[[2]int]float64{{3, 0}: 50}}
	sup := New(Options{})
	rep, err := sup.Run(context.Background(), Job{
		Chain: c, Platform: p, Schedule: sched, Runner: runner, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 300 compute + station 2 (V*+CM+CD = 42) + 50 lost + RD 20 +
	// 700 compute + station 4 (42).
	want := 300.0 + 42 + 50 + 20 + 700 + 42
	if math.Abs(rep.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %.6f, want %.6f", rep.Makespan, want)
	}
	ev := rep.Events
	if ev.FailStop != 1 || ev.DiskRecoveries != 1 || ev.TasksRun != 5 ||
		ev.CheckpointsDisk != 2 || ev.CheckpointsMem != 2 {
		t.Fatalf("counters: %+v", ev)
	}
	wantKinds := []string{
		"compute", "compute", "verify", "ckpt-mem", "ckpt-disk",
		"failstop", "reset",
		"compute", "compute", "verify", "ckpt-mem", "ckpt-disk", "done",
	}
	if !reflect.DeepEqual(kinds(rep.Trace), wantKinds) {
		t.Fatalf("trace kinds %v, want %v", kinds(rep.Trace), wantKinds)
	}
	if rep.Trace[6].Pos != 2 {
		t.Fatalf("reset at boundary %d, want 2", rep.Trace[6].Pos)
	}
}

func TestDetectedSilentErrorRollsBackToMemoryCheckpoint(t *testing.T) {
	c := chain.MustFromWeights(100, 200, 300)
	p := testPlatform()
	sched := mustSchedule(t, 3, map[int]schedule.Action{
		1: schedule.Memory,
		3: schedule.Disk,
	})
	runner := &scriptRunner{corruptAt: map[[2]int]bool{{2, 0}: true}}
	sup := New(Options{})
	rep, err := sup.Run(context.Background(), Job{
		Chain: c, Platform: p, Schedule: sched, Runner: runner, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 + (V* 7 + CM 5) + 500 + V* 7 (detects) + RM 3 + 500 + (V* 7 +
	// CM 5 + CD 30).
	want := 100.0 + 12 + 500 + 7 + 3 + 500 + 42
	if math.Abs(rep.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %.6f, want %.6f", rep.Makespan, want)
	}
	ev := rep.Events
	if ev.SilentDetected != 1 || ev.MemoryRecoveries != 1 || ev.DiskRecoveries != 0 {
		t.Fatalf("counters: %+v", ev)
	}
	var rollbackPos = -1
	for _, e := range rep.Trace {
		if e.Kind == "rollback" {
			rollbackPos = e.Pos
		}
	}
	if rollbackPos != 1 {
		t.Fatalf("rollback to boundary %d, want the memory checkpoint at 1", rollbackPos)
	}
}

func TestPartialVerificationMissIsCaughtDownstream(t *testing.T) {
	c := chain.MustFromWeights(100, 100)
	p := testPlatform()
	sched := mustSchedule(t, 2, map[int]schedule.Action{
		1: schedule.Partial,
		2: schedule.Disk,
	})
	runner := &scriptRunner{
		corruptAt: map[[2]int]bool{{1, 0}: true},
		missAt:    map[[2]int]bool{{1, 0}: true}, // first partial check misses
	}
	sup := New(Options{})
	rep, err := sup.Run(context.Background(), Job{
		Chain: c, Platform: p, Schedule: sched, Runner: runner, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pass 1: 100 + V 1 (miss) + 100 + V* 7 (detect), rollback to T0 is
	// free. Pass 2: 100 + V 1 + 100 + V* 7 + CM 5 + CD 30.
	want := 208.0 + 0 + 243
	if math.Abs(rep.Makespan-want) > 1e-9 {
		t.Fatalf("makespan %.6f, want %.6f", rep.Makespan, want)
	}
	if rep.Events.SilentDetected != 1 || rep.Events.MemoryRecoveries != 1 {
		t.Fatalf("counters: %+v", rep.Events)
	}
	// The rollback target is the virtual boundary 0.
	joined := strings.Join(kinds(rep.Trace), " ")
	if !strings.Contains(joined, "detect rollback") {
		t.Fatalf("trace misses detect->rollback: %v", joined)
	}
}

func TestRunPlansWhenScheduleMissing(t *testing.T) {
	c := chain.MustFromWeights(500, 500, 500, 500, 500)
	p := platform.Hera()
	sup := New(Options{})
	rep, err := sup.Run(context.Background(), Job{Chain: c, Platform: p, Algorithm: core.AlgADMVStar})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.PlanADMVStar(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FinalSchedule.Equal(want.Schedule) {
		t.Fatalf("planned schedule %v, want %v", rep.FinalSchedule, want.Schedule)
	}
	// NopRunner: the makespan is the schedule's error-free cost.
	wantT := c.TotalWeight() + want.Schedule.TotalCost(p.V, p.VStar, p.CM, p.CD)
	if math.Abs(rep.Makespan-wantT) > 1e-9 {
		t.Fatalf("makespan %.6f, want %.6f", rep.Makespan, wantT)
	}
}

func TestSimRunnerRunsAreDeterministicPerSeed(t *testing.T) {
	c := chain.MustFromWeights(2000, 3000, 2500, 1500, 3000)
	p := platform.Platform{
		Name: "Hot", LambdaF: 5e-5, LambdaS: 2e-4,
		CD: 40, CM: 8, RD: 40, RM: 8, VStar: 8, V: 0.5, Recall: 0.8,
	}
	res, err := core.PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	sup := New(Options{})
	run := func(seed uint64) *Report {
		rep, err := sup.Run(context.Background(), Job{
			Chain: c, Platform: p, Schedule: res.Schedule,
			Runner: NewSimRunner(p, seed), Record: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(7), run(7)
	if a.Makespan != b.Makespan || !reflect.DeepEqual(a.Events, b.Events) ||
		!reflect.DeepEqual(a.Trace, b.Trace) {
		t.Fatalf("same seed diverged: %.3f vs %.3f", a.Makespan, b.Makespan)
	}
	other := run(8)
	if reflect.DeepEqual(a.Trace, other.Trace) {
		t.Fatal("different seeds produced identical traces")
	}
	// The runtime event log renders with the simulator's formatter.
	text := sim.FormatTrace(a.Trace)
	if !strings.Contains(text, "compute") || !strings.Contains(text, "done") {
		t.Fatalf("FormatTrace on runtime events:\n%s", text)
	}
}

func TestRunWithFilesystemStoreAndSleepRunner(t *testing.T) {
	c := chain.MustFromWeights(1, 2, 3)
	p := testPlatform()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := mustSchedule(t, 3, map[int]schedule.Action{
		2: schedule.Disk,
		3: schedule.Disk,
	})
	sup := New(Options{})
	rep, err := sup.Run(context.Background(), Job{
		Chain: c, Platform: p, Schedule: sched,
		Runner: SleepRunner{Scale: 1e-4}, Store: store,
		Initial: State("seed-input"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
	// The disk tier holds the initial and both scheduled checkpoints.
	bounds, err := store.Boundaries()
	if err != nil || !reflect.DeepEqual(bounds, []int{0, 2, 3}) {
		t.Fatalf("disk boundaries %v (%v), want [0 2 3]", bounds, err)
	}
	b, data, err := store.LoadDisk()
	if err != nil || b != 3 {
		t.Fatalf("LoadDisk = (%d, %v)", b, err)
	}
	if !strings.HasPrefix(string(data), "seed-input") || !strings.Contains(string(data), "|T3") {
		t.Fatalf("final state %q lost the lineage", data)
	}
}

func TestRunAbortsAfterMaxRollbacks(t *testing.T) {
	c := chain.MustFromWeights(10, 10)
	p := testPlatform()
	sched := mustSchedule(t, 2, map[int]schedule.Action{2: schedule.Disk})
	// Every attempt of task 1 crashes immediately: the run can never
	// progress.
	runner := &scriptRunner{failAt: map[[2]int]float64{}}
	for a := 0; a < 100; a++ {
		runner.failAt[[2]int{1, a}] = 0.5
	}
	sup := New(Options{})
	_, err := sup.Run(context.Background(), Job{
		Chain: c, Platform: p, Schedule: sched, Runner: runner, MaxRollbacks: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "rollbacks") {
		t.Fatalf("want rollback-guard error, got %v", err)
	}
}

func TestRunHonorsContextCancellation(t *testing.T) {
	c := chain.MustFromWeights(100, 100, 100)
	p := testPlatform()
	sched := mustSchedule(t, 3, map[int]schedule.Action{3: schedule.Disk})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sup := New(Options{})
	if _, err := sup.Run(ctx, Job{Chain: c, Platform: p, Schedule: sched}); err == nil {
		t.Fatal("cancelled context did not abort the run")
	}
}

func TestAdaptiveReplanSplicesSuffix(t *testing.T) {
	// Modeled rates are negligible, but the scripted runner crashes
	// three times early on: the MLE drifts far above the model and a
	// re-plan must fire at a disk boundary.
	c := chain.MustFromWeights(100, 100, 100, 100, 100, 100, 100, 100)
	p := platform.Platform{
		Name: "Drifty", LambdaF: 1e-7, LambdaS: 1e-7,
		CD: 20, CM: 4, RD: 20, RM: 4, VStar: 4, V: 0.2, Recall: 0.8,
	}
	sched := mustSchedule(t, 8, map[int]schedule.Action{
		2: schedule.Disk,
		8: schedule.Disk,
	})
	runner := &scriptRunner{failAt: map[[2]int]float64{
		{1, 0}: 10, {1, 1}: 10, {2, 0}: 10,
	}}
	sup := New(Options{})
	rep, err := sup.RunAdaptive(context.Background(), Job{
		Chain: c, Platform: p, Schedule: sched, Runner: runner, Record: true,
	}, AdaptPolicy{Tolerance: 1.5, MinEvents: 2, MaxReplans: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events.Replans == 0 {
		t.Fatalf("no re-plan fired: %+v", rep.Events)
	}
	if rep.FinalSchedule.Equal(sched) {
		t.Fatal("re-plan did not change the schedule")
	}
	if err := rep.FinalSchedule.ValidateComplete(); err != nil {
		t.Fatalf("spliced schedule invalid: %v", err)
	}
	var sawReplan bool
	for _, e := range rep.Trace {
		if e.Kind == "replan" {
			sawReplan = true
		}
	}
	if !sawReplan {
		t.Fatal("no replan event in the trace")
	}
	if rep.LambdaFEstimate <= p.LambdaF {
		t.Fatalf("estimate %.3g did not move above the model %.3g", rep.LambdaFEstimate, p.LambdaF)
	}
	if got := sup.Stats(); got.Jobs != 1 || got.Replans == 0 {
		t.Fatalf("supervisor stats: %+v", got)
	}
}

package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently seeded streams", same)
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Canonical first output of SplitMix64 for seed 0.
	state := uint64(0)
	if got := splitMix64(&state); got != 0xE220A8397B1DCDAF {
		t.Errorf("splitMix64(0) = %#x, want 0xE220A8397B1DCDAF", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want about 0.5", mean)
	}
}

func TestUint64BitBalance(t *testing.T) {
	// Every bit position should be set about half the time.
	r := New(13)
	const n = 100000
	counts := [64]int{}
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, cnt := range counts {
		frac := float64(cnt) / n
		if math.Abs(frac-0.5) > 0.01 {
			t.Errorf("bit %d set fraction %v", b, frac)
		}
	}
}

func TestExpFloat64MeanAndPositivity(t *testing.T) {
	r := New(17)
	const n = 300000
	rate := 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64(rate)
		if x < 0 || math.IsNaN(x) {
			t.Fatalf("ExpFloat64 = %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01/rate {
		t.Errorf("mean = %v, want about %v", mean, 1/rate)
	}
}

func TestExpFloat64TailProbability(t *testing.T) {
	// P(X > 1/rate) = 1/e.
	r := New(19)
	const n = 200000
	rate := 0.7
	over := 0
	for i := 0; i < n; i++ {
		if r.ExpFloat64(rate) > 1/rate {
			over++
		}
	}
	frac := float64(over) / n
	if math.Abs(frac-1/math.E) > 0.01 {
		t.Errorf("tail fraction = %v, want about %v", frac, 1/math.E)
	}
}

func TestExpFloat64ZeroRate(t *testing.T) {
	r := New(23)
	if !math.IsInf(r.ExpFloat64(0), 1) {
		t.Error("ExpFloat64(0) should be +Inf")
	}
}

func TestBernoulli(t *testing.T) {
	r := New(29)
	const n = 200000
	p := 0.8
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-p) > 0.005 {
		t.Errorf("Bernoulli(%v) frequency = %v", p, frac)
	}
	rr := New(31)
	for i := 0; i < 1000; i++ {
		if rr.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !rr.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	// Same inversion, so shape 1 must reproduce ExpFloat64 exactly for
	// the same stream position.
	a, b := New(41), New(41)
	for i := 0; i < 1000; i++ {
		x := a.Weibull(1, 2.5)
		y := b.ExpFloat64(1 / 2.5)
		if math.Abs(x-y) > 1e-12*(1+y) {
			t.Fatalf("step %d: weibull %v vs exp %v", i, x, y)
		}
	}
}

func TestWeibullMean(t *testing.T) {
	// Mean is scale * Gamma(1 + 1/shape).
	r := New(43)
	const n = 300000
	shape, scale := 0.7, 100.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(shape, scale)
	}
	want := scale * math.Gamma(1+1/shape)
	if got := sum / n; math.Abs(got-want)/want > 0.02 {
		t.Errorf("mean = %v, want about %v", got, want)
	}
}

func TestWeibullDegenerate(t *testing.T) {
	r := New(47)
	if !math.IsInf(r.Weibull(0, 1), 1) || !math.IsInf(r.Weibull(1, 0), 1) {
		t.Error("non-positive parameters should disable the source (+Inf)")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// Child and parent must not produce identical streams.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between parent and child", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(5).Split()
	b := New(5).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
}

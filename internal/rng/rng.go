// Package rng provides a small, fast, deterministic random number
// generator for the Monte-Carlo fault simulator: xoshiro256** seeded via
// SplitMix64, with splittable streams so that parallel simulation workers
// get statistically independent, reproducible sequences.
//
// The standard library's math/rand would work too, but a local generator
// pins the exact sequence across Go versions (math/rand's stream is not
// guaranteed stable), which keeps recorded experiment outputs exactly
// reproducible.
package rng

import "math"

// Source is a xoshiro256** generator. It is not safe for concurrent use;
// give each goroutine its own Source via Split.
type Source struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output; it
// is the recommended seeder for xoshiro generators.
func splitMix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var src Source
	state := seed
	for i := range src.s {
		src.s[i] = splitMix64(&state)
	}
	// xoshiro must not start at the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but keep the guard explicit.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9E3779B97F4A7C15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponential variate with the given rate (mean
// 1/rate) by inversion. A rate of zero returns +Inf: the event never
// happens, which is exactly how the simulator treats a disabled error
// source.
func (r *Source) ExpFloat64(rate float64) float64 {
	if rate == 0 {
		return math.Inf(1)
	}
	// 1 - Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1-r.Float64()) / rate
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Weibull returns a Weibull variate with the given shape k and scale
// lambda (mean lambda*Gamma(1+1/k)) by inversion. Shape 1 reduces to the
// exponential distribution with mean equal to the scale.
func (r *Source) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return math.Inf(1)
	}
	return scale * math.Pow(-math.Log(1-r.Float64()), 1/shape)
}

// Split returns a new Source seeded from the stream of r. The child's
// trajectory is statistically independent of the parent's subsequent
// outputs (distinct SplitMix64 seeding path).
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

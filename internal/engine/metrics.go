package engine

import (
	"strconv"

	"chainckpt/internal/obs"
)

// Metrics is the engine's slice of the observability plane: per-shard
// latency histograms and work-stealing counters, resolved to concrete
// children once per shard at construction so the hot paths never touch
// a label map. A nil *Metrics (the default) costs one nil check per
// instrumented site — benchmarks and library callers that do not wire
// a registry pay nothing.
type Metrics struct {
	// QueueWait measures how long a planning job waited for a shard
	// pool slot — the engine's admission signal.
	QueueWait *obs.HistogramVec
	// SolveLatency measures dynamic-program solve time per shard,
	// cache misses only (hits never reach the kernel).
	SolveLatency *obs.HistogramVec
	// Steals counts Run tasks drained from the shared queue by each
	// shard's pump: the work-stealing balance across shards.
	Steals *obs.CounterVec
}

// NewMetrics registers the engine families on reg. A nil registry
// returns nil metrics, which every instrumented site tolerates.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		QueueWait: reg.NewHistogramVec("chainckpt_engine_queue_wait_seconds",
			"Time a planning job waited for a shard pool slot.", nil, "shard"),
		SolveLatency: reg.NewHistogramVec("chainckpt_engine_solve_seconds",
			"Dynamic-program solve latency per shard (cache misses only).", nil, "shard"),
		Steals: reg.NewCounterVec("chainckpt_engine_steals_total",
			"Run tasks drained from the shared work queue by each shard's pump.", "shard"),
	}
}

// shardChildren resolves the per-shard metric children for shard id;
// all nil when m is nil.
func (m *Metrics) shardChildren(id int) (queueWait, solveLat *obs.Histogram, steals *obs.Counter) {
	if m == nil {
		return nil, nil, nil
	}
	label := strconv.Itoa(id)
	return m.QueueWait.With(label), m.SolveLatency.With(label), m.Steals.With(label)
}

package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// sweepRequests models the request stream of a figure-regeneration run
// (cmd/chainexp): a sweep of instances across the Table I platforms,
// with every instance planned `passes` times — exactly what happens when
// fig5, the fig6 strips and the HTML report each re-plan the same
// figures. 4 platforms x len(ns) sizes x passes requests in total.
func sweepRequests(b *testing.B, ns []int, passes int) []Request {
	b.Helper()
	var reqs []Request
	for pass := 0; pass < passes; pass++ {
		for _, plat := range platform.All() {
			for _, n := range ns {
				c, err := workload.Uniform(n, workload.PaperTotalWeight)
				if err != nil {
					b.Fatal(err)
				}
				reqs = append(reqs, Request{
					Algorithm: core.AlgADMV,
					Chain:     c,
					Platform:  plat,
					Tag:       fmt.Sprintf("pass%d-%s-n%d", pass, plat.Name, n),
				})
			}
		}
	}
	return reqs
}

// BenchmarkEngineSweep compares a 64-instance sweep (16 distinct
// instances, each requested 4 times, as in a chainexp figure run)
// through the batch engine against the seed's serial loop over
// core.Plan. The engine wins on two axes: instances solve concurrently
// on the pool, and repeated instances are served from the memo instead
// of re-running the dynamic program.
func BenchmarkEngineSweep(b *testing.B) {
	reqs := sweepRequests(b, []int{8, 12, 16, 20}, 4)
	if len(reqs) != 64 {
		b.Fatalf("sweep has %d requests, want 64", len(reqs))
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := core.Plan(req.Algorithm, req.Chain, req.Platform); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := New(Options{})
			for _, resp := range eng.PlanMany(context.Background(), reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
			eng.Close()
		}
	})
}

// BenchmarkEngineSweepDistinct isolates the pool's instance-level
// parallelism: 64 distinct instances, no memo reuse (the cache is
// disabled), against the same serial seed loop.
func BenchmarkEngineSweepDistinct(b *testing.B) {
	var reqs []Request
	for _, plat := range platform.All() {
		for n := 2; n <= 17; n++ {
			c, err := workload.Uniform(n, workload.PaperTotalWeight)
			if err != nil {
				b.Fatal(err)
			}
			reqs = append(reqs, Request{Algorithm: core.AlgADMV, Chain: c, Platform: plat})
		}
	}
	if len(reqs) != 64 {
		b.Fatalf("sweep has %d requests, want 64", len(reqs))
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := core.Plan(req.Algorithm, req.Chain, req.Platform); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := New(Options{CacheSize: -1})
			for _, resp := range eng.PlanMany(context.Background(), reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
			eng.Close()
		}
	})
}

// BenchmarkEngineContention is the sharding headline: parallel PlanMany
// load from 1/4/16/64 goroutines against a sharded engine versus the
// same engine pinned to one shard. The workload is hit-dominated — the
// memo is pre-warmed with 64 small instances and every op re-plans the
// whole batch — because serving hits is where the unsharded engine
// serializes: each hit locks the single memo mutex to touch the LRU
// list, so under parallel load every goroutine queues on one lock. With
// 16 shards the same hits spread over 16 mutexes. One op = one
// PlanMany(64); compare ns/op between the single/gN and sharded/gN
// variants at equal goroutine counts (cmd/benchjson -baseline gates the
// single/sharded throughput ratio against the committed numbers).
func BenchmarkEngineContention(b *testing.B) {
	var reqs []Request
	for _, plat := range platform.All() {
		for n := 3; n <= 18; n++ {
			c, err := workload.Uniform(n, 100*float64(n))
			if err != nil {
				b.Fatal(err)
			}
			reqs = append(reqs, Request{Algorithm: core.AlgADMV, Chain: c, Platform: plat})
		}
	}
	if len(reqs) != 64 {
		b.Fatalf("contention batch has %d requests, want 64", len(reqs))
	}
	for _, v := range []struct {
		name   string
		shards int
	}{
		// Shard counts pinned (not GOMAXPROCS) so the two variants differ
		// only in sharding, on any machine.
		{"sharded", 16},
		{"single", 1},
	} {
		for _, g := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/g%d", v.name, g), func(b *testing.B) {
				eng := New(Options{Workers: 16, CacheSize: 4096, Shards: v.shards})
				defer eng.Close()
				ctx := context.Background()
				for _, resp := range eng.PlanMany(ctx, reqs) { // warm every memo
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				wg.Add(g)
				for w := 0; w < g; w++ {
					go func() {
						defer wg.Done()
						for next.Add(1) <= int64(b.N) {
							for _, resp := range eng.PlanMany(ctx, reqs) {
								if resp.Err != nil {
									b.Error(resp.Err)
									return
								}
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

package engine

import (
	"context"
	"fmt"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// sweepRequests models the request stream of a figure-regeneration run
// (cmd/chainexp): a sweep of instances across the Table I platforms,
// with every instance planned `passes` times — exactly what happens when
// fig5, the fig6 strips and the HTML report each re-plan the same
// figures. 4 platforms x len(ns) sizes x passes requests in total.
func sweepRequests(b *testing.B, ns []int, passes int) []Request {
	b.Helper()
	var reqs []Request
	for pass := 0; pass < passes; pass++ {
		for _, plat := range platform.All() {
			for _, n := range ns {
				c, err := workload.Uniform(n, workload.PaperTotalWeight)
				if err != nil {
					b.Fatal(err)
				}
				reqs = append(reqs, Request{
					Algorithm: core.AlgADMV,
					Chain:     c,
					Platform:  plat,
					Tag:       fmt.Sprintf("pass%d-%s-n%d", pass, plat.Name, n),
				})
			}
		}
	}
	return reqs
}

// BenchmarkEngineSweep compares a 64-instance sweep (16 distinct
// instances, each requested 4 times, as in a chainexp figure run)
// through the batch engine against the seed's serial loop over
// core.Plan. The engine wins on two axes: instances solve concurrently
// on the pool, and repeated instances are served from the memo instead
// of re-running the dynamic program.
func BenchmarkEngineSweep(b *testing.B) {
	reqs := sweepRequests(b, []int{8, 12, 16, 20}, 4)
	if len(reqs) != 64 {
		b.Fatalf("sweep has %d requests, want 64", len(reqs))
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := core.Plan(req.Algorithm, req.Chain, req.Platform); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := New(Options{})
			for _, resp := range eng.PlanMany(context.Background(), reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
			eng.Close()
		}
	})
}

// BenchmarkEngineSweepDistinct isolates the pool's instance-level
// parallelism: 64 distinct instances, no memo reuse (the cache is
// disabled), against the same serial seed loop.
func BenchmarkEngineSweepDistinct(b *testing.B) {
	var reqs []Request
	for _, plat := range platform.All() {
		for n := 2; n <= 17; n++ {
			c, err := workload.Uniform(n, workload.PaperTotalWeight)
			if err != nil {
				b.Fatal(err)
			}
			reqs = append(reqs, Request{Algorithm: core.AlgADMV, Chain: c, Platform: plat})
		}
	}
	if len(reqs) != 64 {
		b.Fatalf("sweep has %d requests, want 64", len(reqs))
	}

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := core.Plan(req.Algorithm, req.Chain, req.Platform); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng := New(Options{CacheSize: -1})
			for _, resp := range eng.PlanMany(context.Background(), reqs) {
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
			}
			eng.Close()
		}
	})
}

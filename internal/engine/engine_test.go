package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

func testRequests(t testing.TB, count int) []Request {
	t.Helper()
	var reqs []Request
	plats := platform.All()
	for i := 0; i < count; i++ {
		n := 3 + i%12
		c, err := workload.Uniform(n, 1000+50*float64(n))
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, Request{
			Algorithm: core.Algorithms()[i%3],
			Chain:     c,
			Platform:  plats[i%len(plats)],
			Tag:       fmt.Sprintf("req-%d", i),
		})
	}
	return reqs
}

func TestPlanManyMatchesSequentialPlan(t *testing.T) {
	eng := New(Options{Workers: 8})
	defer eng.Close()
	reqs := testRequests(t, 24)

	resps := eng.PlanMany(context.Background(), reqs)
	if len(resps) != len(reqs) {
		t.Fatalf("responses: %d, want %d", len(resps), len(reqs))
	}
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if resp.Index != i || resp.Tag != reqs[i].Tag {
			t.Errorf("response %d misrouted: index %d tag %q", i, resp.Index, resp.Tag)
		}
		want, err := core.Plan(reqs[i].Algorithm, reqs[i].Chain, reqs[i].Platform)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(resp.Result.ExpectedMakespan-want.ExpectedMakespan) > 1e-12*want.ExpectedMakespan {
			t.Errorf("request %d: engine %.9f vs sequential %.9f",
				i, resp.Result.ExpectedMakespan, want.ExpectedMakespan)
		}
		if !resp.Result.Schedule.Equal(want.Schedule) {
			t.Errorf("request %d: schedule mismatch", i)
		}
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	// Shards pinned so per-shard memo capacity (64/4 = 16) cannot evict
	// regardless of how the six fingerprints hash.
	eng := New(Options{Workers: 2, CacheSize: 64, Shards: 4})
	defer eng.Close()
	reqs := testRequests(t, 6)
	ctx := context.Background()

	for _, req := range reqs {
		if _, err := eng.Plan(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.CacheMisses != 6 || st.CacheHits != 0 || st.Entries != 6 {
		t.Fatalf("after distinct requests: %+v", st)
	}

	// Same instances again: all hits, including ones that differ only in
	// labels the fingerprint canonicalizes away.
	for _, req := range reqs {
		req.Tag = "relabeled"
		res, err := eng.Plan(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil || res.Schedule == nil {
			t.Fatal("cached plan is empty")
		}
	}
	st = eng.Stats()
	if st.CacheMisses != 6 || st.CacheHits != 6 {
		t.Fatalf("after repeats: %+v", st)
	}
	if st.Requests != 12 || st.Errors != 0 {
		t.Fatalf("counters: %+v", st)
	}
}

func TestCacheReturnsIndependentCopies(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	req := testRequests(t, 1)[0]
	ctx := context.Background()

	first, err := eng.Plan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupting the caller's copy must not poison the memo.
	first.Schedule.Set(1, 0)
	first.ExpectedMakespan = -1

	second, err := eng.Plan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Plan(req.Algorithm, req.Chain, req.Platform)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Schedule.Equal(want.Schedule) || second.ExpectedMakespan != want.ExpectedMakespan {
		t.Error("cached result was corrupted by a caller mutation")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard: LRU order over the whole request stream is only
	// well-defined when a single memo sees every request.
	eng := New(Options{Workers: 2, CacheSize: 4, Shards: 1})
	defer eng.Close()
	reqs := testRequests(t, 8)
	ctx := context.Background()
	for _, req := range reqs {
		if _, err := eng.Plan(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Entries != 4 || st.Evictions != 4 {
		t.Fatalf("eviction accounting: %+v", st)
	}
	// The oldest entry was evicted, so replanning it is a miss.
	if _, err := eng.Plan(ctx, reqs[0]); err != nil {
		t.Fatal(err)
	}
	if st = eng.Stats(); st.CacheMisses != 9 {
		t.Fatalf("evicted entry should miss: %+v", st)
	}
}

func TestDeterministicUnderConcurrency(t *testing.T) {
	// Many goroutines planning overlapping instances against one engine:
	// every response must equal the serial answer regardless of
	// interleaving (run with -race).
	eng := New(Options{Workers: 4, CacheSize: 8})
	defer eng.Close()
	reqs := testRequests(t, 12)
	want := make([]*core.Result, len(reqs))
	for i, req := range reqs {
		res, err := core.Plan(req.Algorithm, req.Chain, req.Platform)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				resps := eng.PlanMany(context.Background(), reqs)
				for i, resp := range resps {
					if resp.Err != nil {
						t.Errorf("goroutine %d round %d req %d: %v", g, round, i, resp.Err)
						return
					}
					if resp.Result.ExpectedMakespan != want[i].ExpectedMakespan ||
						!resp.Result.Schedule.Equal(want[i].Schedule) {
						t.Errorf("goroutine %d round %d req %d: nondeterministic result", g, round, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStreamDeliversAllResponses(t *testing.T) {
	eng := New(Options{Workers: 4})
	defer eng.Close()
	reqs := testRequests(t, 10)
	seen := make(map[int]bool)
	for resp := range eng.Stream(context.Background(), reqs) {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", resp.Index, resp.Err)
		}
		if seen[resp.Index] {
			t.Fatalf("request %d delivered twice", resp.Index)
		}
		seen[resp.Index] = true
	}
	if len(seen) != len(reqs) {
		t.Fatalf("delivered %d of %d responses", len(seen), len(reqs))
	}
}

func TestPlanAsync(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	req := testRequests(t, 1)[0]
	ch := eng.PlanAsync(context.Background(), req)
	resp := <-ch
	if resp.Err != nil || resp.Result == nil {
		t.Fatalf("async response: %+v", resp)
	}
	if _, more := <-ch; more {
		t.Error("async channel should close after its single response")
	}
}

func TestErrorsAndInvalidRequests(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	ctx := context.Background()

	if _, err := eng.Plan(ctx, Request{Algorithm: core.AlgADMV}); err == nil {
		t.Error("nil chain should fail")
	}
	req := testRequests(t, 1)[0]
	req.Algorithm = "bogus"
	if _, err := eng.Plan(ctx, req); err == nil {
		t.Error("unknown algorithm should fail")
	}
	// A constraints table sized for another chain must come back as an
	// error, not a panic in the fingerprint (it is not fingerprintable).
	small, err := core.NewConstraints(2)
	if err != nil {
		t.Fatal(err)
	}
	big := testRequests(t, 4)[3] // n >= 3
	big.Opts.Constraints = small
	if _, err := eng.Plan(ctx, big); err == nil {
		t.Error("mismatched constraints should fail")
	}
	if st := eng.Stats(); st.Errors != 3 {
		t.Errorf("error accounting: %+v", st)
	}
	// Failed solves must not linger in the memo (they would let invalid
	// traffic evict valid plans).
	if st := eng.Stats(); st.Entries != 0 {
		t.Errorf("error entries cached: %+v", st)
	}
}

func TestContextCancellation(t *testing.T) {
	eng := New(Options{Workers: 1})
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled context must not hang even when the pool is busy.
	resps := eng.PlanMany(ctx, testRequests(t, 4))
	for _, resp := range resps {
		if resp.Err == nil {
			continue // the job may have finished before the cancel was seen
		}
		if !errors.Is(resp.Err, context.Canceled) {
			t.Errorf("unexpected error: %v", resp.Err)
		}
	}
}

func TestCloseRejectsFurtherWork(t *testing.T) {
	eng := New(Options{Workers: 2})
	req := testRequests(t, 1)[0]
	if _, err := eng.Plan(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	// Even a request the memo could serve must see ErrClosed.
	if _, err := eng.Plan(context.Background(), req); !errors.Is(err, ErrClosed) {
		t.Errorf("cached plan after close: %v, want ErrClosed", err)
	}
	req2 := testRequests(t, 2)[1]
	if _, err := eng.Plan(context.Background(), req2); !errors.Is(err, ErrClosed) {
		t.Errorf("plan after close: %v, want ErrClosed", err)
	}
	if err := eng.Run(context.Background(), 1, func(int) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("run after close: %v, want ErrClosed", err)
	}
}

func TestRunFanOut(t *testing.T) {
	eng := New(Options{Workers: 4})
	defer eng.Close()
	hits := make([]int, 100)
	err := eng.Run(context.Background(), len(hits), func(i int) error {
		hits[i]++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
	boom := errors.New("boom")
	err = eng.Run(context.Background(), 10, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("run error: %v, want boom", err)
	}
}

func TestFingerprintCanonicalization(t *testing.T) {
	reqs := testRequests(t, 2)
	a, err := Fingerprint(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("distinct instances share a fingerprint")
	}
	relabeled := reqs[0]
	relabeled.Tag = "other"
	relabeled.Opts.SolveWorkers = 7 // tuning knobs must not split the memo
	c, err := Fingerprint(relabeled)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("labels or tuning knobs changed the fingerprint")
	}
	budget := reqs[0]
	budget.Opts.MaxDiskCheckpoints = 2
	d, err := Fingerprint(budget)
	if err != nil {
		t.Fatal(err)
	}
	if a == d {
		t.Error("a disk budget must change the fingerprint")
	}
	if _, err := Fingerprint(Request{}); err == nil {
		t.Error("empty request should not fingerprint")
	}
}

func TestCacheDisabled(t *testing.T) {
	eng := New(Options{Workers: 2, CacheSize: -1})
	defer eng.Close()
	req := testRequests(t, 1)[0]
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := eng.Plan(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 3 || st.Entries != 0 {
		t.Fatalf("disabled cache stats: %+v", st)
	}
}

func TestStatsPerAlgorithmCountersAndHitRatio(t *testing.T) {
	eng := New(Options{Workers: 2, CacheSize: 64})
	defer eng.Close()
	ctx := context.Background()
	c, err := workload.Uniform(6, 6000)
	if err != nil {
		t.Fatal(err)
	}
	p := platform.Hera()
	plan := func(alg core.Algorithm) {
		t.Helper()
		if _, err := eng.Plan(ctx, Request{Algorithm: alg, Chain: c, Platform: p}); err != nil {
			t.Fatal(err)
		}
	}
	plan(core.AlgADV)
	plan(core.AlgADV) // memo hit, still counted per algorithm
	plan(core.AlgADMVStar)
	plan(core.AlgADMV)

	st := eng.Stats()
	want := map[string]uint64{"ADV*": 2, "ADMV*": 1, "ADMV": 1}
	for alg, n := range want {
		if st.Algorithms[alg] != n {
			t.Errorf("Algorithms[%q] = %d, want %d (all: %v)", alg, st.Algorithms[alg], n, st.Algorithms)
		}
	}
	if got := st.HitRatio(); got != 0.25 {
		t.Errorf("HitRatio = %v, want 0.25 (stats %+v)", got, st)
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty stats hit ratio should be 0")
	}
}

func TestStatsUnknownAlgorithmsLumpedAsOther(t *testing.T) {
	eng := New(Options{Workers: 1, CacheSize: 8})
	defer eng.Close()
	c, err := workload.Uniform(3, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"NOPE", "zzz", "NOPE"} {
		if _, err := eng.Plan(context.Background(), Request{
			Algorithm: core.Algorithm(alg), Chain: c, Platform: platform.Hera(),
		}); err == nil {
			t.Fatalf("algorithm %q should fail", alg)
		}
	}
	st := eng.Stats()
	if st.Algorithms["other"] != 3 || len(st.Algorithms) != 1 {
		t.Fatalf("Algorithms = %v, want {other: 3}", st.Algorithms)
	}
}

// TestStatsKernelPooling: the engine's workers solve through one shared
// kernel, so a batch of distinct requests must show arena recycling in
// Stats, and an injected kernel must be the one reported.
func TestStatsKernelPooling(t *testing.T) {
	kern := core.NewKernel()
	e := New(Options{Workers: 2, CacheSize: -1, Kernel: kern})
	defer e.Close()
	if e.Kernel() != kern {
		t.Fatal("injected kernel not adopted")
	}
	reqs := testRequests(t, 24)
	for _, r := range e.PlanMany(context.Background(), reqs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := e.Stats()
	if st.Kernel.Solves != 24 {
		t.Errorf("kernel solves = %d, want 24 (cache disabled)", st.Kernel.Solves)
	}
	if st.Kernel.ScratchReuses == 0 {
		t.Errorf("no arena reuse across 24 solves: %+v", st.Kernel)
	}
	if len(st.Kernel.Buckets) == 0 {
		t.Error("no kernel buckets reported")
	}
	var total uint64
	for _, b := range st.Kernel.Buckets {
		total += b.Reuses + b.Fresh
	}
	if total != st.Kernel.ScratchFresh+st.Kernel.ScratchReuses {
		t.Errorf("bucket totals %d disagree with counters %+v", total, st.Kernel)
	}
}

package engine

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"chainckpt/internal/core"
	"chainckpt/internal/obs"
)

// shard is one independent slice of the engine: its own solver kernel,
// LRU memo, singleflight table (the in-flight entries of the memo) and
// worker goroutines. Requests are routed to a shard by their canonical
// instance fingerprint, so identical instances always meet in the same
// shard — dedup and coalescing need no cross-shard coordination, and
// the memo mutex of one shard is never touched by traffic hashed to
// another.
type shard struct {
	id        int
	kernel    *core.Kernel
	cacheSize int // per-shard memo capacity; negative disables caching
	nworkers  int // pool goroutines this shard owns
	// solveWorkers is stamped on requests whose Opts.SolveWorkers is
	// unset: 1 keeps solves serial (the engine default), 0 selects the
	// solver's crossover-gated auto mode, larger values pin a team.
	// Atomic so the ops-plane self-tuner can retarget a live engine
	// without pausing traffic.
	solveWorkers atomic.Int64
	// bucketWidths points at the engine's shared per-size-bucket width
	// override table (see Engine.SetBucketSolveWorkers); consulted
	// before solveWorkers when stamping a request.
	bucketWidths *atomic.Pointer[map[int]int64]

	jobs    chan func()
	workers sync.WaitGroup // pool goroutines
	pending sync.WaitGroup // submitted, not yet finished jobs

	mu     sync.Mutex
	closed bool
	cache  map[string]*list.Element // key -> element holding *entry
	order  *list.List               // front = most recently used

	requests, hits, misses, evictions, errors atomic.Uint64

	// Metric children resolved once at construction (nil when the
	// engine is uninstrumented — every use is nil-safe).
	queueWait *obs.Histogram
	solveLat  *obs.Histogram
	steals    *obs.Counter
}

// newShard starts one shard with its own worker goroutines.
func newShard(id int, kernel *core.Kernel, cacheSize, workers, solveWorkers int, m *Metrics) *shard {
	s := &shard{
		id:        id,
		kernel:    kernel,
		cacheSize: cacheSize,
		nworkers:  workers,
		jobs:      make(chan func()),
		cache:     make(map[string]*list.Element),
		order:     list.New(),
	}
	s.solveWorkers.Store(int64(solveWorkers))
	s.queueWait, s.solveLat, s.steals = m.shardChildren(id)
	for w := 0; w < workers; w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for job := range s.jobs {
				job()
				s.pending.Done()
			}
		}()
	}
	return s
}

// submit schedules job on the shard's pool. It reports ErrClosed on a
// closed engine and the context error if ctx is cancelled while waiting
// for a pool slot — a saturated pool must not keep queueing work for
// callers that already gave up.
func (s *shard) submit(ctx context.Context, job func()) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.pending.Add(1)
	s.mu.Unlock()
	if s.queueWait != nil {
		// Queue wait = submit to pool-slot pickup. Wrapped only when
		// instrumented so the unmetered path keeps its zero-closure
		// submit.
		inner := job
		enqueued := time.Now()
		job = func() {
			s.queueWait.ObserveSince(enqueued)
			inner()
		}
	}
	select {
	case s.jobs <- job:
		return nil
	case <-ctx.Done():
		s.pending.Done()
		return ctx.Err()
	}
}

// planOne resolves one request against this shard's memo and pool. key
// is the request's fingerprint; kerr non-nil marks a request that could
// not be fingerprinted (it skips the cache, and the solver reports the
// precise validation error).
func (s *shard) planOne(ctx context.Context, index int, req Request, key string, kerr error) Response {
	s.requests.Add(1)
	resp := Response{Index: index, Tag: req.Tag}

	// Honor the ErrClosed contract even for requests the memo could
	// serve; a closed engine answers nothing.
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		s.errors.Add(1)
		resp.Err = ErrClosed
		return resp
	}

	if kerr != nil {
		s.misses.Add(1)
		resp.Result, resp.Err = s.solve(ctx, req)
		if resp.Err != nil {
			s.errors.Add(1)
		}
		return resp
	}

	if s.cacheSize < 0 {
		s.misses.Add(1)
		resp.Result, resp.Err = s.solveOnPool(ctx, req)
		if resp.Err != nil {
			s.errors.Add(1)
		}
		return resp
	}

	s.mu.Lock()
	if el, ok := s.cache[key]; ok {
		s.order.MoveToFront(el)
		ent := el.Value.(*entry)
		s.mu.Unlock()
		s.hits.Add(1)
		resp.Cached = true
		select {
		case <-ent.done:
			resp.Result, resp.Err = cloneResult(ent.res), ent.err
		case <-ctx.Done():
			resp.Err = ctx.Err()
		}
		if resp.Err != nil {
			s.errors.Add(1)
		}
		return resp
	}
	ent := &entry{key: key, done: make(chan struct{})}
	s.cache[key] = s.order.PushFront(ent)
	for s.order.Len() > s.cacheSize {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.cache, oldest.Value.(*entry).key)
		s.evictions.Add(1)
	}
	s.mu.Unlock()
	s.misses.Add(1)

	err := s.submit(ctx, func() {
		ent.res, ent.err = s.solve(ctx, req)
		if ent.err != nil {
			// Failed solves are not worth a memo slot: keeping them would
			// let a stream of cheap invalid requests evict valid plans.
			s.dropEntry(ent)
		}
		close(ent.done)
	})
	if err != nil {
		// Engine closed, or this caller cancelled before a pool slot
		// freed: drop the entry and finalize it so any coalesced waiter
		// is released too (a later identical request re-solves).
		s.dropEntry(ent)
		ent.err = err
		close(ent.done)
	}

	select {
	case <-ent.done:
		resp.Result, resp.Err = cloneResult(ent.res), ent.err
	case <-ctx.Done():
		resp.Err = ctx.Err()
	}
	if resp.Err != nil {
		s.errors.Add(1)
	}
	return resp
}

// dropEntry removes ent from the memo if it still owns its slot (it may
// have been evicted by the LRU policy in the meantime).
func (s *shard) dropEntry(ent *entry) {
	s.mu.Lock()
	if el, ok := s.cache[ent.key]; ok && el.Value.(*entry) == ent {
		s.order.Remove(el)
		delete(s.cache, ent.key)
	}
	s.mu.Unlock()
}

// solveOnPool runs solve as a pool job and waits for it (the uncached
// path).
func (s *shard) solveOnPool(ctx context.Context, req Request) (*core.Result, error) {
	var res *core.Result
	var err error
	done := make(chan struct{})
	if serr := s.submit(ctx, func() {
		// Nobody shares an uncached result: skip the solve entirely if
		// the only waiter is already gone.
		if ctx.Err() == nil {
			res, err = s.solve(ctx, req)
		} else {
			err = ctx.Err()
		}
		close(done)
	}); serr != nil {
		return nil, serr
	}
	select {
	case <-done:
		return res, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// solve runs the dynamic program for one request through the shard's
// kernel. Requests that do not pin their own solver parallelism inherit
// the engine's SolveWorkers policy; the engine default keeps solves
// serial, because the pool already provides instance-level parallelism.
// resolveWidth picks the core SolveWorkers value to stamp on a request
// that left its own unset: the per-size-bucket override for the
// request's window length when the tuner has installed one, the shard's
// global width otherwise. Width is pure scheduling — the plan bytes are
// identical at every setting — so reading a torn-free snapshot of the
// COW table without further synchronization is safe.
func (s *shard) resolveWidth(req Request) int {
	if s.bucketWidths != nil && req.Chain != nil {
		if m := s.bucketWidths.Load(); m != nil {
			if w, ok := (*m)[core.BucketCap(req.Chain.Len())]; ok {
				return int(w)
			}
		}
	}
	return int(s.solveWorkers.Load())
}

func (s *shard) solve(ctx context.Context, req Request) (*core.Result, error) {
	opts := req.Opts
	if opts.SolveWorkers == 0 {
		opts.SolveWorkers = s.resolveWidth(req)
	}
	span := obs.SpanFrom(ctx).Child("kernel.solve")
	span.SetAttr("algorithm", string(req.Algorithm))
	span.SetAttrInt("workers", int64(opts.SolveWorkers))
	var start time.Time
	if s.solveLat != nil {
		start = time.Now()
	}
	res, err := s.kernel.PlanOpts(req.Algorithm, req.Chain, req.Platform, opts)
	if s.solveLat != nil {
		s.solveLat.ObserveSince(start)
	}
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return res, nil
}

// stats snapshots the shard's counters (kernel stats are filled in by
// the engine, which knows whether kernels are per-shard or shared).
func (s *shard) stats() ShardStats {
	s.mu.Lock()
	entries := s.order.Len()
	s.mu.Unlock()
	return ShardStats{
		Shard:       s.id,
		Requests:    s.requests.Load(),
		CacheHits:   s.hits.Load(),
		CacheMisses: s.misses.Load(),
		Evictions:   s.evictions.Load(),
		Errors:      s.errors.Load(),
		Entries:     entries,
	}
}

package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Fingerprint returns the canonical cache key of a planning request: a
// hash over everything that determines the optimal schedule and nothing
// else. Task names, platform display names and solver tuning knobs
// (core.Options.SolveWorkers) are deliberately excluded, so requests that
// differ only in labels or in how they were produced — near-duplicates,
// in practice the common case across experiment sweeps — resolve to the
// same memo entry.
func Fingerprint(req Request) (string, error) {
	if req.Chain == nil || req.Chain.Len() == 0 {
		return "", fmt.Errorf("engine: request has no chain")
	}
	// Size mismatches are not fingerprintable (and Allowed/At would
	// panic); the caller falls back to the solver, which reports the
	// precise validation error.
	if cons := req.Opts.Constraints; cons != nil && cons.Len() != req.Chain.Len() {
		return "", fmt.Errorf("engine: constraints sized for %d tasks but chain has %d",
			cons.Len(), req.Chain.Len())
	}
	if costs := req.Opts.Costs; costs != nil && costs.Len() != req.Chain.Len() {
		return "", fmt.Errorf("engine: cost table for %d tasks but chain has %d",
			costs.Len(), req.Chain.Len())
	}
	// SolveWorkers is excluded from the hash (it cannot change the
	// plan), so an invalid value must not share a key — and an error —
	// with valid requests for the same instance.
	if req.Opts.SolveWorkers < 0 {
		return "", fmt.Errorf("engine: SolveWorkers must be non-negative, got %d", req.Opts.SolveWorkers)
	}
	h := sha256.New()
	buf := make([]byte, 8)
	put := func(f float64) {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(f))
		h.Write(buf)
	}
	putInt := func(v int) {
		binary.LittleEndian.PutUint64(buf, uint64(v))
		h.Write(buf)
	}

	h.Write([]byte(req.Algorithm))
	h.Write([]byte{0})

	n := req.Chain.Len()
	putInt(n)
	for i := 1; i <= n; i++ {
		put(req.Chain.Weight(i))
	}

	p := req.Platform
	for _, f := range []float64{p.LambdaF, p.LambdaS, p.CD, p.CM, p.RD, p.RM, p.VStar, p.V, p.Recall} {
		put(f)
	}

	if costs := req.Opts.Costs; costs != nil {
		h.Write([]byte{1})
		for i := 1; i <= costs.Len(); i++ {
			bc := costs.At(i)
			for _, f := range []float64{bc.CD, bc.CM, bc.RD, bc.RM, bc.VStar, bc.V} {
				put(f)
			}
		}
	} else {
		h.Write([]byte{0})
	}

	if cons := req.Opts.Constraints; cons != nil {
		h.Write([]byte{1})
		for i := 1; i <= n; i++ {
			putInt(int(cons.Allowed(i)))
		}
	} else {
		h.Write([]byte{0})
	}

	putInt(req.Opts.MaxDiskCheckpoints)

	return string(h.Sum(nil)), nil
}

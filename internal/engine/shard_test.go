package engine

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chainckpt/internal/core"
)

func TestShardCountRoundedToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16}, {16, 16},
	} {
		eng := New(Options{Workers: 1, Shards: tc.in})
		if got := len(eng.shards); got != tc.want {
			t.Errorf("Shards: %d built %d shards, want %d", tc.in, got, tc.want)
		}
		eng.Close()
	}
}

func TestShardedMatchesSingleShard(t *testing.T) {
	// The sharded engine must be routing, not semantics: every plan is
	// byte-identical to the one-shard engine's (the facade-level
	// cross-validation suite extends this over randomized instances).
	reqs := testRequests(t, 16)
	sharded := New(Options{Workers: 4, Shards: 8})
	defer sharded.Close()
	single := New(Options{Workers: 4, Shards: 1})
	defer single.Close()
	a := sharded.PlanMany(context.Background(), reqs)
	b := single.PlanMany(context.Background(), reqs)
	for i := range reqs {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("request %d: sharded err=%v single err=%v", i, a[i].Err, b[i].Err)
		}
		if math.Float64bits(a[i].Result.ExpectedMakespan) != math.Float64bits(b[i].Result.ExpectedMakespan) ||
			!a[i].Result.Schedule.Equal(b[i].Result.Schedule) {
			t.Errorf("request %d: sharded plan differs from single-shard plan", i)
		}
	}
}

func TestShardedStatsSumAcrossShards(t *testing.T) {
	eng := New(Options{Workers: 4, CacheSize: 256, Shards: 8})
	defer eng.Close()
	reqs := testRequests(t, 12) // 12 distinct instances (the helper's period)
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for _, resp := range eng.PlanMany(ctx, reqs) {
			if resp.Err != nil {
				t.Fatal(resp.Err)
			}
		}
	}
	st := eng.Stats()
	if len(st.Shards) != 8 {
		t.Fatalf("Shards breakdown has %d entries, want 8", len(st.Shards))
	}
	var req, hits, misses, evs, errs uint64
	var entries int
	touched := 0
	for i, ss := range st.Shards {
		if ss.Shard != i {
			t.Errorf("shard %d reports index %d", i, ss.Shard)
		}
		if ss.Requests != ss.CacheHits+ss.CacheMisses {
			t.Errorf("shard %d: %d requests != %d hits + %d misses", i, ss.Requests, ss.CacheHits, ss.CacheMisses)
		}
		req += ss.Requests
		hits += ss.CacheHits
		misses += ss.CacheMisses
		evs += ss.Evictions
		errs += ss.Errors
		entries += ss.Entries
		if ss.Requests > 0 {
			touched++
		}
	}
	if req != st.Requests || hits != st.CacheHits || misses != st.CacheMisses ||
		evs != st.Evictions || errs != st.Errors || entries != st.Entries {
		t.Errorf("per-shard sums (%d %d %d %d %d %d) disagree with aggregates %+v",
			req, hits, misses, evs, errs, entries, st)
	}
	if st.Requests != 24 || st.CacheMisses != 12 || st.CacheHits != 12 {
		t.Errorf("second pass should hit every shard memo: %+v", st)
	}
	if touched < 2 {
		t.Errorf("12 fingerprints landed on %d shard(s); routing looks degenerate", touched)
	}
	// Per-shard kernels: merged kernel stats must agree with the solve
	// count, and every shard's kernel only saw its own misses.
	if st.Kernel.Solves != 12 {
		t.Errorf("merged kernel solves = %d, want 12", st.Kernel.Solves)
	}
	for _, ss := range st.Shards {
		if ss.Kernel.Solves != ss.CacheMisses {
			t.Errorf("shard %d kernel solves %d != misses %d", ss.Shard, ss.Kernel.Solves, ss.CacheMisses)
		}
	}
}

// TestShardedStressAccountingAndSingleflight is the race-mode stress
// property: 32 goroutines hammer one sharded engine with overlapping
// fingerprints, and afterwards (a) the memo-hit accounting sums exactly
// across shards — every request is a hit or a miss, and each distinct
// instance missed exactly once engine-wide — and (b) the singleflight
// table leaked nothing: every memo entry is finalized and owned by the
// shard its fingerprint routes to.
func TestShardedStressAccountingAndSingleflight(t *testing.T) {
	const (
		goroutines = 32
		rounds     = 20
		distinct   = 8
	)
	eng := New(Options{Workers: 4, CacheSize: 256, Shards: 8})
	defer eng.Close()
	reqs := testRequests(t, distinct)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := reqs[(g+r)%distinct]
				if _, err := eng.Plan(context.Background(), req); err != nil {
					t.Errorf("goroutine %d round %d: %v", g, r, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := eng.Stats()
	if st.Requests != goroutines*rounds {
		t.Fatalf("requests = %d, want %d", st.Requests, goroutines*rounds)
	}
	if st.CacheHits+st.CacheMisses != st.Requests {
		t.Errorf("hits %d + misses %d != requests %d", st.CacheHits, st.CacheMisses, st.Requests)
	}
	// Each distinct fingerprint enters its shard's memo once and is never
	// evicted (per-shard capacity 32 >> 8 keys), so engine-wide misses
	// equal the distinct instance count no matter how the 640 plans
	// interleaved — coalesced duplicates count as hits.
	if st.CacheMisses != distinct {
		t.Errorf("misses = %d, want %d (one per distinct instance)", st.CacheMisses, distinct)
	}
	if st.Evictions != 0 || st.Errors != 0 {
		t.Errorf("stress run evicted %d / errored %d, want 0/0", st.Evictions, st.Errors)
	}
	var sum ShardStats
	for _, ss := range st.Shards {
		sum.Requests += ss.Requests
		sum.CacheHits += ss.CacheHits
		sum.CacheMisses += ss.CacheMisses
		sum.Entries += ss.Entries
	}
	if sum.Requests != st.Requests || sum.CacheHits != st.CacheHits ||
		sum.CacheMisses != st.CacheMisses || sum.Entries != st.Entries {
		t.Errorf("shard sums %+v disagree with aggregates %+v", sum, st)
	}

	// Singleflight-leak check (white box): every cached entry must be
	// finalized (done closed, result present), the map and LRU list must
	// agree, and the entry must live on the shard its key hashes to.
	entries := 0
	for _, sh := range eng.shards {
		sh.mu.Lock()
		if len(sh.cache) != sh.order.Len() {
			t.Errorf("shard %d: map has %d entries, LRU list %d", sh.id, len(sh.cache), sh.order.Len())
		}
		for key, el := range sh.cache {
			ent := el.Value.(*entry)
			select {
			case <-ent.done:
			default:
				t.Errorf("shard %d: entry still in flight after all callers returned", sh.id)
			}
			if ent.res == nil || ent.err != nil {
				t.Errorf("shard %d: finalized entry has res=%v err=%v", sh.id, ent.res, ent.err)
			}
			if eng.shardFor(key) != sh {
				t.Errorf("shard %d holds an entry routed to shard %d", sh.id, eng.shardFor(key).id)
			}
			entries++
		}
		sh.mu.Unlock()
	}
	if entries != distinct {
		t.Errorf("memo holds %d entries, want %d", entries, distinct)
	}
}

func TestEngineTuneTunesEveryShardKernel(t *testing.T) {
	eng := New(Options{Workers: 2, CacheSize: -1, Shards: 2})
	defer eng.Close()
	reqs := testRequests(t, 12)
	for _, resp := range eng.PlanMany(context.Background(), reqs) {
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	eng.Tune()
	// Re-plan the same instances: tuned kernels must answer identically.
	want := eng.Stats().Kernel.Solves
	for _, resp := range eng.PlanMany(context.Background(), reqs) {
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if got := eng.Stats().Kernel.Solves; got != want+uint64(len(reqs)) {
		t.Errorf("solves after tune = %d, want %d", got, want+uint64(len(reqs)))
	}
}

func TestEngineTuneWithSharedKernel(t *testing.T) {
	kern := core.NewKernel()
	eng := New(Options{Workers: 2, CacheSize: -1, Shards: 4, Kernel: kern})
	defer eng.Close()
	if eng.Kernel() != kern {
		t.Fatal("injected kernel not adopted by the sharded engine")
	}
	reqs := testRequests(t, 8)
	for _, resp := range eng.PlanMany(context.Background(), reqs) {
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	st := eng.Stats()
	if st.Kernel.Solves != 8 {
		t.Errorf("shared kernel counted %d solves across shards, want 8 (no double counting)", st.Kernel.Solves)
	}
	for _, ss := range st.Shards {
		if ss.Kernel.Solves != 0 {
			t.Errorf("shard %d reports kernel stats despite a shared kernel", ss.Shard)
		}
	}
	eng.Tune() // must tune the shared kernel exactly once, not panic
}

// TestRunStealsAcrossShards: Run must not pre-assign tasks to shards.
// With 2 shards of one worker each, task 0 parks its worker until the
// final task has run; if tasks were dealt round-robin with a blocking
// submit loop, the final task would never be submitted and Run would
// deadlock. The shared-queue feeders let the free shard absorb all
// remaining tasks.
func TestRunStealsAcrossShards(t *testing.T) {
	eng := New(Options{Workers: 2, Shards: 2})
	defer eng.Close()
	release := make(chan struct{})
	const n = 12
	var ran atomic.Int32
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := eng.Run(ctx, n, func(i int) error {
		if i == 0 {
			<-release // parks one shard's only worker
			return nil
		}
		if ran.Add(1) == n-1 {
			close(release) // the last other task frees task 0
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v (a round-robin Run deadlocks here until the ctx timeout)", err)
	}
	if got := ran.Load(); got != n-1 {
		t.Errorf("ran %d of %d non-blocking tasks", got, n-1)
	}
}

// TestDefaultShardsRespectWorkersBudget: the default shard count must
// not exceed Workers — every shard keeps a worker, so more shards than
// Workers would silently raise the concurrency past the configured
// budget. Explicit Shards deliberately overrides the budget.
func TestDefaultShardsRespectWorkersBudget(t *testing.T) {
	eng := New(Options{Workers: 2})
	defer eng.Close()
	if got := len(eng.shards); got > 2 {
		t.Errorf("Workers: 2 built %d shards (at least one worker each) — budget exceeded", got)
	}
	expl := New(Options{Workers: 2, Shards: 8})
	defer expl.Close()
	if got := len(expl.shards); got != 8 {
		t.Errorf("explicit Shards: 8 built %d shards", got)
	}
}

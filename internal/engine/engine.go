// Package engine turns the planners of internal/core into a concurrent
// batch-planning service. An Engine owns a bounded worker pool and an
// LRU memo of solved instances keyed by a canonical fingerprint
// (Fingerprint): many (chain, platform, algorithm) requests are resolved
// at once, identical in-flight requests are coalesced onto one solver
// run, and repeated or near-duplicate requests — the normal shape of
// experiment sweeps and service traffic — are served from cache.
//
// Each planning job runs the dynamic program serially (core
// Options.Workers = 1 unless the request says otherwise): with many
// instances in flight, instance-level parallelism keeps every core busy
// without the per-row channel traffic of the solver's own pool, which is
// what makes a sweep through the engine beat the loop-over-core.Plan
// seed path (see BenchmarkEngineSweep).
//
// The Engine also exposes Run, a generic bounded fan-out over the same
// pool, so batch pipelines that interleave planning with evaluation or
// Monte-Carlo simulation (internal/experiments) share one parallelism
// budget instead of stacking pools.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/platform"
)

// ErrClosed is returned by every planning method after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures an Engine.
type Options struct {
	// Workers is the size of the worker pool (default GOMAXPROCS).
	Workers int
	// CacheSize is the maximum number of memoized plans (default 1024);
	// negative disables the cache entirely, including in-flight request
	// coalescing.
	CacheSize int
	// Kernel is the solver kernel the workers solve through (default: a
	// kernel private to this engine). One kernel serves every worker:
	// its size-bucketed arena pools hand each concurrent solve its own
	// scratch, and recycle it when the solve finishes, so a steady
	// request mix plans allocation-free (see Stats.Kernel).
	Kernel *core.Kernel
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	return o
}

// Request is one planning job.
type Request struct {
	// Algorithm selects the planner (core.AlgADV, AlgADMVStar, AlgADMV).
	Algorithm core.Algorithm
	// Chain is the task graph; it is read, never mutated.
	Chain *chain.Chain
	// Platform carries the error rates and baseline costs.
	Platform platform.Platform
	// Opts are the optional planning inputs (costs, constraints, disk
	// budget, solver parallelism). Opts.Workers zero means the engine
	// runs the solver serially on its own pool.
	Opts core.Options
	// Tag is an opaque label echoed in the Response.
	Tag string
}

// Response is the outcome of one Request.
type Response struct {
	// Index is the request's position in the submitted batch.
	Index int
	// Tag echoes Request.Tag.
	Tag string
	// Result is the planner outcome; nil when Err is set. Every caller
	// gets its own copy — mutating Result.Schedule cannot poison the
	// cache.
	Result *core.Result
	// Cached reports whether the plan was served from the memo (or
	// coalesced onto an identical in-flight request).
	Cached bool
	// Err is the planning error, if any.
	Err error
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	// Requests counts planning requests accepted.
	Requests uint64
	// CacheHits counts requests resolved from the memo, including
	// coalesced in-flight duplicates.
	CacheHits uint64
	// CacheMisses counts requests that ran a solver.
	CacheMisses uint64
	// Evictions counts memo entries dropped by the LRU policy.
	Evictions uint64
	// Errors counts requests that finished with an error.
	Errors uint64
	// Entries is the current number of memo entries.
	Entries int
	// Algorithms counts requests per algorithm name, so operators can
	// see which planners their traffic actually uses. Unknown algorithm
	// strings (requests the solver will reject) are lumped under
	// "other", keeping the map bounded against hostile input.
	Algorithms map[string]uint64
	// Kernel reports the solver kernel's scratch-pool counters: how many
	// solves recycled an arena versus allocated a fresh one, per size
	// bucket.
	Kernel core.KernelStats
}

// HitRatio returns the fraction of requests served from the memo, 0
// before any request.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Requests)
}

// entry is one memo slot. done is closed once res/err are final; an
// entry in the map before done closes represents an in-flight solve that
// later identical requests wait on instead of re-solving.
type entry struct {
	key  string
	done chan struct{}
	res  *core.Result
	err  error
}

// Engine is a concurrent batch planner. All methods are safe for
// concurrent use.
type Engine struct {
	opts    Options
	kernel  *core.Kernel
	jobs    chan func()
	workers sync.WaitGroup // pool goroutines
	pending sync.WaitGroup // submitted, not yet finished jobs

	mu     sync.Mutex
	closed bool
	cache  map[string]*list.Element // key -> element holding *entry
	order  *list.List               // front = most recently used

	requests, hits, misses, evictions, errors atomic.Uint64

	algMu     sync.Mutex
	algCounts map[string]uint64 // accepted requests per algorithm
}

// New starts an engine with opts.Workers pool goroutines. Callers must
// Close it to release them.
func New(opts Options) *Engine {
	opts = opts.normalized()
	kernel := opts.Kernel
	if kernel == nil {
		kernel = core.NewKernel()
	}
	e := &Engine{
		opts:      opts,
		kernel:    kernel,
		jobs:      make(chan func()),
		cache:     make(map[string]*list.Element),
		order:     list.New(),
		algCounts: make(map[string]uint64),
	}
	for w := 0; w < opts.Workers; w++ {
		e.workers.Add(1)
		go func() {
			defer e.workers.Done()
			for job := range e.jobs {
				job()
				e.pending.Done()
			}
		}()
	}
	return e
}

// Close waits for in-flight jobs and stops the pool. Further planning
// calls return ErrClosed; Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.pending.Wait()
	close(e.jobs)
	e.workers.Wait()
}

// submit schedules job on the pool. It reports ErrClosed on a closed
// engine and the context error if ctx is cancelled while waiting for a
// pool slot — a saturated pool must not keep queueing work for callers
// that already gave up.
func (e *Engine) submit(ctx context.Context, job func()) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.pending.Add(1)
	e.mu.Unlock()
	select {
	case e.jobs <- job:
		return nil
	case <-ctx.Done():
		e.pending.Done()
		return ctx.Err()
	}
}

// Run executes fn(0..n-1) on the engine's pool and waits for all of
// them, returning the first error (after every task has finished). A
// context cancellation skips tasks that have not started yet.
func (e *Engine) Run(ctx context.Context, n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		err := e.submit(ctx, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			if err := fn(i); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
		})
		if err != nil {
			wg.Done()
			// A cancellation-driven submit failure must not mask the task
			// error that triggered the cancel; the ctx.Err fallback below
			// covers externally cancelled runs.
			if errors.Is(err, ErrClosed) {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
			}
			break
		}
	}
	wg.Wait()
	if first == nil {
		first = ctx.Err()
	}
	return first
}

// Plan resolves one request through the cache and pool. It blocks until
// the plan is available, the context is cancelled, or the engine closes.
func (e *Engine) Plan(ctx context.Context, req Request) (*core.Result, error) {
	resp := e.planOne(ctx, 0, req)
	return resp.Result, resp.Err
}

// PlanMany resolves a batch of requests concurrently and returns the
// responses in request order. It never returns an error; per-request
// failures are carried in each Response.
func (e *Engine) PlanMany(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = e.planOne(ctx, i, reqs[i])
		}()
	}
	wg.Wait()
	return out
}

// Stream resolves a batch of requests and delivers each Response as soon
// as it is ready, in completion order; Response.Index maps it back to
// its request. The channel is closed after the last response.
func (e *Engine) Stream(ctx context.Context, reqs []Request) <-chan Response {
	ch := make(chan Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- e.planOne(ctx, i, reqs[i])
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// PlanAsync resolves one request in the background; the returned channel
// delivers exactly one Response and is then closed.
func (e *Engine) PlanAsync(ctx context.Context, req Request) <-chan Response {
	return e.Stream(ctx, []Request{req})
}

// planOne is the single-request path shared by every public method.
func (e *Engine) planOne(ctx context.Context, index int, req Request) Response {
	e.requests.Add(1)
	algKey := "other"
	switch req.Algorithm {
	case core.AlgADV, core.AlgADMVStar, core.AlgADMV:
		algKey = string(req.Algorithm)
	}
	e.algMu.Lock()
	e.algCounts[algKey]++
	e.algMu.Unlock()
	resp := Response{Index: index, Tag: req.Tag}

	// Honor the ErrClosed contract even for requests the memo could
	// serve; a closed engine answers nothing.
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		e.errors.Add(1)
		resp.Err = ErrClosed
		return resp
	}

	key, err := Fingerprint(req)
	if err != nil {
		// Invalid request shapes skip the cache; the solver reports the
		// precise validation error.
		e.misses.Add(1)
		resp.Result, resp.Err = e.solve(req)
		if resp.Err != nil {
			e.errors.Add(1)
		}
		return resp
	}

	if e.opts.CacheSize < 0 {
		e.misses.Add(1)
		resp.Result, resp.Err = e.solveOnPool(ctx, req)
		if resp.Err != nil {
			e.errors.Add(1)
		}
		return resp
	}

	e.mu.Lock()
	if el, ok := e.cache[key]; ok {
		e.order.MoveToFront(el)
		ent := el.Value.(*entry)
		e.mu.Unlock()
		e.hits.Add(1)
		resp.Cached = true
		select {
		case <-ent.done:
			resp.Result, resp.Err = cloneResult(ent.res), ent.err
		case <-ctx.Done():
			resp.Err = ctx.Err()
		}
		if resp.Err != nil {
			e.errors.Add(1)
		}
		return resp
	}
	ent := &entry{key: key, done: make(chan struct{})}
	e.cache[key] = e.order.PushFront(ent)
	for e.order.Len() > e.opts.CacheSize {
		oldest := e.order.Back()
		e.order.Remove(oldest)
		delete(e.cache, oldest.Value.(*entry).key)
		e.evictions.Add(1)
	}
	e.mu.Unlock()
	e.misses.Add(1)

	err = e.submit(ctx, func() {
		ent.res, ent.err = e.solve(req)
		if ent.err != nil {
			// Failed solves are not worth a memo slot: keeping them would
			// let a stream of cheap invalid requests evict valid plans.
			e.dropEntry(ent)
		}
		close(ent.done)
	})
	if err != nil {
		// Engine closed, or this caller cancelled before a pool slot
		// freed: drop the entry and finalize it so any coalesced waiter
		// is released too (a later identical request re-solves).
		e.dropEntry(ent)
		ent.err = err
		close(ent.done)
	}

	select {
	case <-ent.done:
		resp.Result, resp.Err = cloneResult(ent.res), ent.err
	case <-ctx.Done():
		resp.Err = ctx.Err()
	}
	if resp.Err != nil {
		e.errors.Add(1)
	}
	return resp
}

// dropEntry removes ent from the memo if it still owns its slot (it may
// have been evicted by the LRU policy in the meantime).
func (e *Engine) dropEntry(ent *entry) {
	e.mu.Lock()
	if el, ok := e.cache[ent.key]; ok && el.Value.(*entry) == ent {
		e.order.Remove(el)
		delete(e.cache, ent.key)
	}
	e.mu.Unlock()
}

// solveOnPool runs solve as a pool job and waits for it (the uncached
// path).
func (e *Engine) solveOnPool(ctx context.Context, req Request) (*core.Result, error) {
	var res *core.Result
	var err error
	done := make(chan struct{})
	if serr := e.submit(ctx, func() {
		// Nobody shares an uncached result: skip the solve entirely if
		// the only waiter is already gone.
		if ctx.Err() == nil {
			res, err = e.solve(req)
		} else {
			err = ctx.Err()
		}
		close(done)
	}); serr != nil {
		return nil, serr
	}
	select {
	case <-done:
		return res, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// solve runs the dynamic program for one request. Unless the request
// pins its own solver parallelism, the solver runs serially: the pool
// already provides instance-level parallelism.
func (e *Engine) solve(req Request) (*core.Result, error) {
	opts := req.Opts
	if opts.Workers == 0 {
		opts.Workers = 1
	}
	res, err := e.kernel.PlanOpts(req.Algorithm, req.Chain, req.Platform, opts)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return res, nil
}

// Kernel returns the solver kernel the engine's workers solve through,
// so co-located components (the execution supervisor's suffix re-plans,
// a DAG linearization search) can share its scratch pools.
func (e *Engine) Kernel() *core.Kernel { return e.kernel }

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	entries := e.order.Len()
	e.mu.Unlock()
	e.algMu.Lock()
	algs := make(map[string]uint64, len(e.algCounts))
	for k, v := range e.algCounts {
		algs[k] = v
	}
	e.algMu.Unlock()
	return Stats{
		Requests:    e.requests.Load(),
		CacheHits:   e.hits.Load(),
		CacheMisses: e.misses.Load(),
		Evictions:   e.evictions.Load(),
		Errors:      e.errors.Load(),
		Entries:     entries,
		Algorithms:  algs,
		Kernel:      e.kernel.Stats(),
	}
}

// cloneResult gives each caller an independent copy of a memoized plan.
func cloneResult(r *core.Result) *core.Result {
	if r == nil {
		return nil
	}
	out := *r
	if r.Schedule != nil {
		out.Schedule = r.Schedule.Clone()
	}
	return &out
}

var (
	defaultMu  sync.Mutex
	defaultEng *Engine
)

// Default returns the shared process-wide engine, creating it with
// default options on first use. It is what the experiment harness and
// the command-line tools plan through, so a whole process shares one
// memo and one parallelism budget.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEng == nil {
		defaultEng = New(Options{})
	}
	return defaultEng
}

// SetDefault replaces the shared engine (command-line flags use it to
// size the pool before any planning happens). The previous default, if
// any, keeps running; callers that captured it are unaffected.
func SetDefault(e *Engine) {
	defaultMu.Lock()
	defaultEng = e
	defaultMu.Unlock()
}

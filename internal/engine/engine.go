// Package engine turns the planners of internal/core into a concurrent
// batch-planning service. An Engine owns a set of independent shards —
// each with its own solver kernel, LRU memo of solved instances, and
// worker pool — and routes every request to a shard by the canonical
// fingerprint of its instance (Fingerprint): many (chain, platform,
// algorithm) requests are resolved at once, identical in-flight
// requests meet in the same shard and are coalesced onto one solver
// run, and repeated or near-duplicate requests — the normal shape of
// experiment sweeps and service traffic — are served from cache.
//
// Sharding is what lets the memo serve heavy concurrent traffic: with
// one shard, every cache hit serializes on a single mutex to touch the
// LRU list, and that mutex is the whole engine's contention point. With
// N shards the same traffic spreads over N independent mutexes, N
// memos and N kernels, while the fingerprint routing keeps the memo
// semantics exactly those of the unsharded engine: an instance always
// hashes to the same shard, so dedup, coalescing and LRU behavior are
// unchanged per instance, and results are byte-identical to Shards: 1
// (the cross-validation suite enforces this). BenchmarkEngineContention
// measures the difference under parallel PlanMany load.
//
// Each planning job runs the dynamic program serially by default (core
// Options.SolveWorkers = 1 unless the request or Options.SolveWorkers
// says otherwise): with many instances in flight, instance-level
// parallelism keeps every core busy without intra-solve dispatch, which
// is what makes a sweep through the engine beat the loop-over-core.Plan
// seed path (see BenchmarkEngineSweep). For mega-chain traffic the
// balance flips — one huge solve dominates wall clock — and
// Options.SolveWorkers hands those solves the kernel's worker team.
//
// The Engine also exposes Run, a generic bounded fan-out over the shard
// pools, so batch pipelines that interleave planning with evaluation or
// Monte-Carlo simulation (internal/experiments) share one parallelism
// budget instead of stacking pools.
package engine

import (
	"context"
	"errors"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/obs"
	"chainckpt/internal/platform"
)

// ErrClosed is returned by every planning method after Close.
var ErrClosed = errors.New("engine: closed")

// Options configures an Engine.
type Options struct {
	// Workers is the total size of the worker pool (default GOMAXPROCS),
	// spread across the shards. Every shard keeps at least one worker,
	// so an explicit Shards larger than Workers raises the total to one
	// per shard; the default shard count never exceeds Workers, keeping
	// Workers an effective concurrency bound.
	Workers int
	// CacheSize is the maximum number of memoized plans across all
	// shards (default 1024), split evenly per shard (at least one entry
	// each); negative disables the cache entirely, including in-flight
	// request coalescing.
	CacheSize int
	// Shards is the number of engine shards. Each shard owns its own
	// solver kernel, LRU memo, singleflight table and worker slice;
	// requests are routed by instance fingerprint. An explicit value is
	// rounded up to a power of two; the default is min(GOMAXPROCS,
	// Workers) rounded down to one, so the default configuration keeps
	// both the core count and the Workers budget honest. Shards: 1
	// reproduces the unsharded engine exactly.
	Shards int
	// Kernel, when non-nil, is shared by every shard instead of the
	// per-shard kernels (default: one private kernel per shard, so a
	// shard's scratch pools are never contended by another shard's
	// workers). One kernel serving many workers is still correct: its
	// size-bucketed arena pools hand each concurrent solve its own
	// scratch (see Stats.Kernel).
	Kernel *core.Kernel
	// Metrics, when non-nil, wires the engine into an obs registry:
	// per-shard queue-wait and solve-latency histograms plus Run
	// work-stealing counters (see NewMetrics). Nil means uninstrumented
	// — every site degrades to a nil check.
	Metrics *Metrics
	// SolveWorkers is the per-solve DP parallelism applied to requests
	// that do not pin their own (Request.Opts.SolveWorkers == 0). Zero
	// keeps every solve serial — the engine's default, since its worker
	// pool already provides instance-level parallelism. A positive value
	// gives each cache-miss solve a worker team of that width (the
	// shards share one budget: each shard's kernel team is drawn from
	// the same machine, so size Workers × SolveWorkers to the core
	// count, not each to it). A negative value selects the solver's
	// GOMAXPROCS-aware auto mode, which engages only above the
	// crossover window length — the right setting when occasional
	// mega-chains share the engine with small interactive traffic.
	SolveWorkers int
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.Shards <= 0 {
		// Default: as many shards as cores, but never more shards than
		// workers — each shard keeps at least one worker, so more shards
		// than Workers would silently exceed the configured budget.
		def := min(o.Workers, runtime.GOMAXPROCS(0))
		o.Shards = 1 << (bits.Len(uint(max(def, 1))) - 1) // round down to a power of two
	} else if o.Shards > 1 {
		o.Shards = 1 << bits.Len(uint(o.Shards-1)) // round up to a power of two
	}
	return o
}

// Request is one planning job.
type Request struct {
	// Algorithm selects the planner (core.AlgADV, AlgADMVStar, AlgADMV).
	Algorithm core.Algorithm
	// Chain is the task graph; it is read, never mutated.
	Chain *chain.Chain
	// Platform carries the error rates and baseline costs.
	Platform platform.Platform
	// Opts are the optional planning inputs (costs, constraints, disk
	// budget, solver parallelism). Opts.SolveWorkers zero defers to the
	// engine's Options.SolveWorkers (itself defaulting to serial
	// solves on the engine's own pool).
	Opts core.Options
	// Tag is an opaque label echoed in the Response.
	Tag string
}

// Response is the outcome of one Request.
type Response struct {
	// Index is the request's position in the submitted batch.
	Index int
	// Tag echoes Request.Tag.
	Tag string
	// Result is the planner outcome; nil when Err is set. Every caller
	// gets its own copy — mutating Result.Schedule cannot poison the
	// cache.
	Result *core.Result
	// Cached reports whether the plan was served from the memo (or
	// coalesced onto an identical in-flight request).
	Cached bool
	// Err is the planning error, if any.
	Err error
}

// Stats is a snapshot of the engine's counters, aggregated across
// shards; Shards carries the per-shard breakdown.
type Stats struct {
	// Requests counts planning requests accepted.
	Requests uint64
	// CacheHits counts requests resolved from the memo, including
	// coalesced in-flight duplicates.
	CacheHits uint64
	// CacheMisses counts requests that ran a solver.
	CacheMisses uint64
	// Evictions counts memo entries dropped by the LRU policy.
	Evictions uint64
	// Errors counts requests that finished with an error.
	Errors uint64
	// Entries is the current number of memo entries across all shards.
	Entries int
	// Algorithms counts requests per algorithm name, so operators can
	// see which planners their traffic actually uses. Unknown algorithm
	// strings (requests the solver will reject) are lumped under
	// "other", keeping the map bounded against hostile input.
	Algorithms map[string]uint64
	// Kernel reports the solver kernels' scratch-pool counters — the
	// per-shard kernels merged (buckets summed by capacity), or the one
	// shared kernel when Options.Kernel was injected.
	Kernel core.KernelStats
	// Shards is the per-shard breakdown; its counters sum to the
	// aggregates above.
	Shards []ShardStats
}

// ShardStats is one shard's slice of the engine counters.
type ShardStats struct {
	// Shard is the shard index (the fingerprint-hash bucket).
	Shard int `json:"shard"`
	// Requests counts planning requests routed to this shard.
	Requests uint64 `json:"requests"`
	// CacheHits and CacheMisses split the shard's requests into plans
	// served from its memo and plans that ran a solver.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Evictions counts memo entries dropped by this shard's LRU policy.
	Evictions uint64 `json:"evictions"`
	// Errors counts requests that finished with an error.
	Errors uint64 `json:"errors"`
	// Entries is the shard's current memo depth.
	Entries int `json:"entries"`
	// Kernel is the shard's private kernel snapshot; the zero value when
	// the engine was built with an injected shared kernel (whose
	// counters cannot be attributed to one shard). A value type cannot
	// carry omitempty, so the shared-kernel case serializes explicit
	// zeros — read them as "not attributable", signalled by the
	// engine-level Stats.Kernel being non-zero.
	Kernel core.KernelStats `json:"kernel"`
}

// HitRatio returns the fraction of requests served from the memo, 0
// before any request.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.Requests)
}

// entry is one memo slot. done is closed once res/err are final; an
// entry in the map before done closes represents an in-flight solve that
// later identical requests wait on instead of re-solving — the
// singleflight table is the memo itself.
type entry struct {
	key  string
	done chan struct{}
	res  *core.Result
	err  error
}

// Engine is a concurrent batch planner. All methods are safe for
// concurrent use.
type Engine struct {
	opts   Options
	shards []*shard
	mask   uint64
	shared *core.Kernel // non-nil when Options.Kernel was injected

	// bucketWidths overrides the global per-solve width for individual
	// size buckets (core.BucketCap classes). Copy-on-write map shared by
	// every shard: readers Load once per solve, writers clone under mu.
	// Values use the stamped core convention (0 auto, 1 serial, >1
	// pinned); a bucket with no entry falls through to the shard's
	// global solveWorkers.
	bucketWidths atomic.Pointer[map[int]int64]

	mu     sync.Mutex
	closed bool

	// Accepted requests per algorithm. Plain atomics, not a
	// mutex-guarded map: these sit on the hit-dominated hot path, and a
	// single engine-wide mutex there would re-create exactly the
	// serialization sharding removes.
	algADV, algADMVStar, algADMV, algOther atomic.Uint64
}

// New starts an engine with opts.Shards shards sharing opts.Workers
// pool goroutines. Callers must Close it to release them.
func New(opts Options) *Engine {
	opts = opts.normalized()
	e := &Engine{
		opts:   opts,
		shared: opts.Kernel,
		mask:   uint64(opts.Shards - 1),
	}
	perCache := opts.CacheSize
	if perCache > 0 {
		perCache = (opts.CacheSize + opts.Shards - 1) / opts.Shards
	}
	// Map the engine-level solve parallelism to the core option each
	// shard stamps on requests that left it unset: 0 (engine default)
	// pins the serial path, negative selects the solver's auto mode
	// (core's zero value).
	solveWorkers := 1
	if opts.SolveWorkers > 0 {
		solveWorkers = opts.SolveWorkers
	} else if opts.SolveWorkers < 0 {
		solveWorkers = 0
	}
	for i := 0; i < opts.Shards; i++ {
		kern := opts.Kernel
		if kern == nil {
			kern = core.NewKernel()
		}
		workers := opts.Workers / opts.Shards
		if i < opts.Workers%opts.Shards {
			workers++
		}
		if workers < 1 {
			workers = 1
		}
		sh := newShard(i, kern, perCache, workers, solveWorkers, opts.Metrics)
		sh.bucketWidths = &e.bucketWidths
		e.shards = append(e.shards, sh)
	}
	return e
}

// shardFor maps a fingerprint to its shard: the leading fingerprint
// bytes (SHA-256 output, uniformly distributed) masked to the
// power-of-two shard count.
func (e *Engine) shardFor(key string) *shard {
	var v uint64
	for i := 0; i < 8 && i < len(key); i++ {
		v = v<<8 | uint64(key[i])
	}
	return e.shards[v&e.mask]
}

// Close waits for in-flight jobs and stops every shard pool. Further
// planning calls return ErrClosed; Close is idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	// Seal every shard first so no shard can accept new work while its
	// siblings drain, then drain them.
	for _, s := range e.shards {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
	}
	for _, s := range e.shards {
		s.pending.Wait()
		close(s.jobs)
		s.workers.Wait()
	}
}

// Run executes fn(0..n-1) over the shard pools and waits for all of
// them, returning the first error (after every task has finished). A
// context cancellation skips tasks that have not started yet.
//
// Tasks are never pre-assigned to a shard: Run occupies up to one pool
// slot per engine worker with a pump that drains a shared task queue,
// so any free worker anywhere takes the next task — the work-stealing
// the pre-shard single pool had, preserved across the split. (Dealing
// tasks round-robin would let one long task strand the work behind it
// while other shards idle.) The pumps are ordinary pool jobs, so Run
// still shares the engine's parallelism budget with planning traffic.
func (e *Engine) Run(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	var mu sync.Mutex
	var first error
	setErr := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	tasks := make(chan int)
	abort := make(chan struct{}) // closed only if no pump ever started
	// Feed concurrently with pump submission: the first pump to start
	// begins draining immediately, so a shard whose worker is busy with
	// a long solve delays only its own pump, never the tasks.
	go func() {
		defer close(tasks)
		for i := 0; i < n; i++ {
			select {
			case tasks <- i:
			case <-abort:
				return
			}
		}
	}()
	var pumps sync.WaitGroup
	started := 0
starting:
	for _, s := range e.shards {
		for w := 0; w < s.nworkers && started < n; w++ {
			pumps.Add(1)
			steals := s.steals
			err := s.submit(ctx, func() {
				defer pumps.Done()
				for i := range tasks {
					if ctx.Err() != nil {
						continue // drain without running
					}
					steals.Inc()
					if err := fn(i); err != nil {
						setErr(err)
					}
				}
			})
			if err != nil {
				pumps.Done()
				// A cancellation-driven submit failure must not mask the
				// task error that triggered the cancel; the ctx.Err
				// fallback below covers externally cancelled runs.
				if errors.Is(err, ErrClosed) {
					setErr(err)
				}
				break starting
			}
			started++
		}
	}
	if started == 0 {
		close(abort) // release the feeder; nothing will drain tasks
	}
	pumps.Wait()
	if first == nil {
		first = ctx.Err()
	}
	return first
}

// Plan resolves one request through the cache and pool. It blocks until
// the plan is available, the context is cancelled, or the engine closes.
func (e *Engine) Plan(ctx context.Context, req Request) (*core.Result, error) {
	resp := e.planOne(ctx, 0, req)
	return resp.Result, resp.Err
}

// PlanMany resolves a batch of requests concurrently and returns the
// responses in request order. It never returns an error; per-request
// failures are carried in each Response.
func (e *Engine) PlanMany(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = e.planOne(ctx, i, reqs[i])
		}()
	}
	wg.Wait()
	return out
}

// Stream resolves a batch of requests and delivers each Response as soon
// as it is ready, in completion order; Response.Index maps it back to
// its request. The channel is closed after the last response.
func (e *Engine) Stream(ctx context.Context, reqs []Request) <-chan Response {
	ch := make(chan Response, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- e.planOne(ctx, i, reqs[i])
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// PlanAsync resolves one request in the background; the returned channel
// delivers exactly one Response and is then closed.
func (e *Engine) PlanAsync(ctx context.Context, req Request) <-chan Response {
	return e.Stream(ctx, []Request{req})
}

// planOne is the single-request path shared by every public method:
// count the algorithm, fingerprint the instance, and hand the request
// to its shard. Requests that cannot be fingerprinted (the solver will
// reject them with a precise error) run on shard 0, outside any memo.
func (e *Engine) planOne(ctx context.Context, index int, req Request) Response {
	switch req.Algorithm {
	case core.AlgADV:
		e.algADV.Add(1)
	case core.AlgADMVStar:
		e.algADMVStar.Add(1)
	case core.AlgADMV:
		e.algADMV.Add(1)
	default:
		e.algOther.Add(1)
	}

	key, kerr := Fingerprint(req)
	sh := e.shards[0]
	if kerr == nil {
		sh = e.shardFor(key)
	}
	sp := obs.SpanFrom(ctx).Child("engine.plan")
	// Carry the plan span down so the shard's kernel.solve child nests
	// under it (ContextWithSpan is a no-op on a nil span).
	resp := sh.planOne(obs.ContextWithSpan(ctx, sp), index, req, key, kerr)
	if sp != nil {
		sp.SetAttr("algorithm", string(req.Algorithm))
		sp.SetAttrInt("shard", int64(sh.id))
		if resp.Cached {
			sp.SetAttr("cached", "true")
		}
		sp.End()
	}
	return resp
}

// Kernel returns the solver kernel co-located components share for
// their own direct solves (the execution supervisor's suffix re-plans,
// a DAG linearization search): the injected Options.Kernel when one was
// given, shard 0's kernel otherwise.
func (e *Engine) Kernel() *core.Kernel {
	if e.shared != nil {
		return e.shared
	}
	return e.shards[0].kernel
}

// Tune applies workload-aware scratch tuning to every shard kernel:
// each kernel installs exact-capacity arena pools for the hottest
// window lengths its own solve histogram has recorded (see
// core.Kernel.Tune).
func (e *Engine) Tune() {
	if e.shared != nil {
		e.shared.Tune(e.shared.Stats())
		return
	}
	for _, s := range e.shards {
		s.kernel.Tune(s.kernel.Stats())
	}
}

// SolveWorkers reports the per-solve parallelism currently stamped on
// requests that leave Opts.SolveWorkers unset, in the engine-level
// convention: 1 serial, 0/negative auto, >1 pinned team width.
func (e *Engine) SolveWorkers() int {
	if len(e.shards) == 0 {
		return 1
	}
	n := int(e.shards[0].solveWorkers.Load())
	if n == 0 {
		return -1 // core auto mode, reported in Options convention
	}
	return n
}

// SetSolveWorkers retargets the per-solve parallelism on a live
// engine, using the same convention as Options.SolveWorkers: 0 (or 1)
// pins the serial path, negative selects the solver's crossover-gated
// auto mode, larger values pin a team of that width. This only changes
// how fast a solve runs — the DP recurrence and the resulting plan
// bytes are identical for every setting — so the ops-plane self-tuner
// may call it at any time without a determinism risk. Requests that
// set their own Opts.SolveWorkers are unaffected.
func (e *Engine) SetSolveWorkers(n int) {
	stamped := int64(1)
	if n > 0 {
		stamped = int64(n)
	} else if n < 0 {
		stamped = 0 // core's zero value = auto
	}
	for _, s := range e.shards {
		s.solveWorkers.Store(stamped)
	}
}

// SetBucketSolveWorkers pins the per-solve parallelism for the size
// bucket containing window length n (core.BucketCap classes), using the
// engine convention: 1 pins serial, negative selects auto, larger
// values pin a team of that width, and 0 clears the override so the
// bucket falls back to the global SetSolveWorkers width. The ops-plane
// tuner uses this to give each workload regime its own width; like the
// global knob it is pure scheduling and never changes plan bytes.
func (e *Engine) SetBucketSolveWorkers(n, workers int) {
	cap := core.BucketCap(n)
	e.mu.Lock()
	defer e.mu.Unlock()
	next := make(map[int]int64)
	if old := e.bucketWidths.Load(); old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	if workers == 0 {
		delete(next, cap)
	} else {
		stamped := int64(1)
		if workers > 1 {
			stamped = int64(workers)
		} else if workers < 0 {
			stamped = 0 // core's zero value = auto
		}
		next[cap] = stamped
	}
	if len(next) == 0 {
		e.bucketWidths.Store(nil)
		return
	}
	e.bucketWidths.Store(&next)
}

// BucketSolveWorkers reports the live per-bucket width overrides as a
// bucket-capacity → width map in the engine convention (1 serial, -1
// auto, >1 pinned). Empty when no bucket has an override.
func (e *Engine) BucketSolveWorkers() map[int]int {
	out := make(map[int]int)
	if m := e.bucketWidths.Load(); m != nil {
		for cap, w := range *m {
			switch {
			case w == 0:
				out[cap] = -1
			default:
				out[cap] = int(w)
			}
		}
	}
	return out
}

// SetAutoCrossover retargets the window length where auto-mode solves
// engage the kernel worker team, on every shard kernel (n <= 0 restores
// the built-in default). See core.Kernel.SetAutoCrossover.
func (e *Engine) SetAutoCrossover(n int) {
	if e.shared != nil {
		e.shared.SetAutoCrossover(n)
		return
	}
	for _, s := range e.shards {
		s.kernel.SetAutoCrossover(n)
	}
}

// AutoCrossover reports the live auto-mode engagement threshold.
func (e *Engine) AutoCrossover() int {
	return e.Kernel().AutoCrossover()
}

// Stats returns a snapshot of the engine's counters: the cross-shard
// aggregates plus the per-shard breakdown.
func (e *Engine) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(e.shards))}
	kstats := make([]core.KernelStats, 0, len(e.shards))
	for i, s := range e.shards {
		ss := s.stats()
		if e.shared == nil {
			ss.Kernel = s.kernel.Stats()
			kstats = append(kstats, ss.Kernel)
		}
		st.Shards[i] = ss
		st.Requests += ss.Requests
		st.CacheHits += ss.CacheHits
		st.CacheMisses += ss.CacheMisses
		st.Evictions += ss.Evictions
		st.Errors += ss.Errors
		st.Entries += ss.Entries
	}
	if e.shared != nil {
		st.Kernel = e.shared.Stats()
	} else {
		st.Kernel = mergeKernelStats(kstats)
	}
	st.Algorithms = make(map[string]uint64, 4)
	for alg, v := range map[string]uint64{
		string(core.AlgADV):      e.algADV.Load(),
		string(core.AlgADMVStar): e.algADMVStar.Load(),
		string(core.AlgADMV):     e.algADMV.Load(),
		"other":                  e.algOther.Load(),
	} {
		if v > 0 {
			st.Algorithms[alg] = v
		}
	}
	return st
}

// mergeKernelStats sums per-shard kernel snapshots into one engine-wide
// view: counters add, buckets merge by capacity, size histograms merge
// by window length.
func mergeKernelStats(sts []core.KernelStats) core.KernelStats {
	if len(sts) == 1 {
		return sts[0]
	}
	out := core.KernelStats{}
	buckets := make(map[int]core.KernelBucketStats)
	sizes := make(map[int]uint64)
	for _, st := range sts {
		out.Solves += st.Solves
		out.ScratchReuses += st.ScratchReuses
		out.ScratchFresh += st.ScratchFresh
		out.Parallel.Solves += st.Parallel.Solves
		out.Parallel.Tiles += st.Parallel.Tiles
		out.Parallel.LocalTiles += st.Parallel.LocalTiles
		out.Parallel.Steals += st.Parallel.Steals
		out.Parallel.BusySeconds += st.Parallel.BusySeconds
		out.Parallel.CrossoverSkips += st.Parallel.CrossoverSkips
		out.Parallel.Workers += st.Parallel.Workers
		if st.Parallel.AutoCrossover > out.Parallel.AutoCrossover {
			out.Parallel.AutoCrossover = st.Parallel.AutoCrossover
		}
		for _, b := range st.Buckets {
			m := buckets[b.Cap]
			m.Cap = b.Cap
			m.Reuses += b.Reuses
			m.Fresh += b.Fresh
			m.Solves += b.Solves
			buckets[b.Cap] = m
		}
		for _, s := range st.Sizes {
			sizes[s.N] += s.Solves
		}
	}
	for _, b := range buckets {
		out.Buckets = append(out.Buckets, b)
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Cap < out.Buckets[j].Cap })
	for n, c := range sizes {
		out.Sizes = append(out.Sizes, core.KernelSizeStats{N: n, Solves: c})
	}
	sort.Slice(out.Sizes, func(i, j int) bool {
		a, b := out.Sizes[i], out.Sizes[j]
		if a.Solves != b.Solves {
			return a.Solves > b.Solves
		}
		return a.N < b.N
	})
	return out
}

// cloneResult gives each caller an independent copy of a memoized plan.
func cloneResult(r *core.Result) *core.Result {
	if r == nil {
		return nil
	}
	out := *r
	if r.Schedule != nil {
		out.Schedule = r.Schedule.Clone()
	}
	return &out
}

var (
	defaultMu  sync.Mutex
	defaultEng *Engine
)

// Default returns the shared process-wide engine, creating it with
// default options (GOMAXPROCS shards) on first use. It is what the
// experiment harness and the command-line tools plan through, so a
// whole process shares one memo and one parallelism budget.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEng == nil {
		defaultEng = New(Options{})
	}
	return defaultEng
}

// SetDefault replaces the shared engine (command-line flags use it to
// size the pool before any planning happens). The previous default, if
// any, keeps running; callers that captured it are unaffected.
func SetDefault(e *Engine) {
	defaultMu.Lock()
	defaultEng = e
	defaultMu.Unlock()
}

// Package fault is the injection seam of the chaos test harness: a set
// of named injection points threaded through the runtime supervisor and
// the jobstore journal, and an Injector interface that decides — at each
// point — whether to corrupt the payload passing through or to kill the
// process mid-operation. Production code passes a nil Injector and pays
// one nil check per point; the chaos matrix passes a deterministic
// Script so a faulted run can be replayed bit-for-bit.
//
// The package is a leaf on purpose: both internal/runtime and
// internal/jobstore fire points, and internal/replay re-runs scripted
// executions of either, so the shared vocabulary must not import any of
// them.
package fault

import (
	"errors"
	"sync"
)

// Point names one injection site. The constant's value is stable — chaos
// cells and recorded fault plans reference points by name.
type Point string

// The runtime supervisor's injection sites, in execution order around a
// disk checkpoint and a resume.
const (
	// RuntimeBeforeDiskCkpt fires after the verification passed but
	// before the disk checkpoint is written: a crash here loses the
	// whole segment since the previous disk checkpoint.
	RuntimeBeforeDiskCkpt Point = "runtime/before-disk-ckpt"
	// RuntimeAfterDiskCkpt fires between the checkpoint write and the
	// Progress journal commit: a crash here leaves a checkpoint the job
	// store has never heard of — the classic torn two-phase commit.
	RuntimeAfterDiskCkpt Point = "runtime/after-disk-ckpt"
	// RuntimeAfterCommit fires after the Progress hook returned: both
	// checkpoint and journal agree; a crash here is the clean case.
	RuntimeAfterCommit Point = "runtime/after-commit"
	// RuntimeResumeState fires on the state restored by a resume, with
	// the restored bytes as payload: a mutation here models silent
	// corruption smuggled in through the recovery path itself.
	RuntimeResumeState Point = "runtime/resume-state"
)

// The jobstore journal's injection sites.
const (
	// JournalAppendFrame fires with the framed bytes about to be written
	// to the active segment. A mutation that truncates the frame plus a
	// crash models a torn tail: the prefix hits the disk, the process
	// dies before the rest.
	JournalAppendFrame Point = "journal/append-frame"
	// JournalCompactBeforeRename fires after the snapshot temporary is
	// written and fsync'd but before the atomic rename commits it.
	JournalCompactBeforeRename Point = "journal/compact-before-rename"
	// JournalCompactAfterRename fires after the rename but before the
	// old segments are removed: snapshot and segments briefly coexist.
	JournalCompactAfterRename Point = "journal/compact-after-rename"
)

// ErrCrash is the sentinel an Injector returns to simulate the process
// dying at the point: the operation in flight stops exactly where a real
// crash would stop it, and the error propagates out of the component so
// the harness can abandon it and start a fresh "process".
var ErrCrash = errors.New("fault: injected crash")

// Injector decides what happens at an injection point. Fire receives the
// payload passing through the point (nil at points that carry none) and
// returns a replacement payload (nil = keep the original) and an error.
// Returning ErrCrash makes the component behave as if the process died
// at the point; any other non-nil error aborts the operation normally.
//
// Implementations must be deterministic if faulted runs are to be
// replayed: same call sequence, same decisions.
type Injector interface {
	Fire(p Point, payload []byte) ([]byte, error)
}

// Fire is the nil-safe firing helper components call: a nil Injector is
// the production no-op.
func Fire(inj Injector, p Point, payload []byte) ([]byte, error) {
	if inj == nil {
		return payload, nil
	}
	out, err := inj.Fire(p, payload)
	if out == nil {
		out = payload
	}
	return out, err
}

// Script is the deterministic Injector of the chaos matrix: it arms one
// action at the Hit-th firing of one point and stays inert everywhere
// else. Same run, same hit count, same decision — which is what lets a
// faulted execution be replayed bit-identically.
type Script struct {
	// Point selects the injection site.
	Point Point
	// Hit is the 1-based occurrence of Point the script fires on
	// (default 1).
	Hit int
	// Mutate, when non-nil, replaces the payload at the armed hit. It
	// must be deterministic and must not retain the input slice.
	Mutate func(payload []byte) []byte
	// Crash makes the armed hit return ErrCrash (after any mutation has
	// been applied, so a torn write is "mutate then die").
	Crash bool

	mu    sync.Mutex
	seen  int
	fired bool
}

// Fire implements Injector.
func (s *Script) Fire(p Point, payload []byte) ([]byte, error) {
	if p != s.Point {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen++
	hit := s.Hit
	if hit <= 0 {
		hit = 1
	}
	if s.seen != hit {
		return nil, nil
	}
	s.fired = true
	var out []byte
	if s.Mutate != nil {
		out = s.Mutate(payload)
	}
	if s.Crash {
		return out, ErrCrash
	}
	return out, nil
}

// Fired reports whether the armed hit has happened — a chaos cell
// asserts it so a matrix entry whose point was never reached fails
// loudly instead of silently testing nothing.
func (s *Script) Fired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// Reset re-arms the script for a fresh run with the same parameters —
// the replay of a faulted execution fires the same action at the same
// hit.
func (s *Script) Reset() {
	s.mu.Lock()
	s.seen = 0
	s.fired = false
	s.mu.Unlock()
}

package fault

import (
	"bytes"
	"errors"
	"testing"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	payload := []byte("frame")
	out, err := Fire(nil, JournalAppendFrame, payload)
	if err != nil {
		t.Fatalf("nil injector returned error: %v", err)
	}
	if !bytes.Equal(out, payload) {
		t.Fatalf("nil injector changed payload: %q", out)
	}
}

func TestScriptFiresOnArmedHitOnly(t *testing.T) {
	s := &Script{Point: RuntimeAfterDiskCkpt, Hit: 3, Crash: true}
	for i := 1; i <= 2; i++ {
		if _, err := Fire(s, RuntimeAfterDiskCkpt, nil); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
		// Other points never advance the count.
		if _, err := Fire(s, JournalAppendFrame, nil); err != nil {
			t.Fatalf("foreign point fired: %v", err)
		}
	}
	if s.Fired() {
		t.Fatal("script reports fired before the armed hit")
	}
	if _, err := Fire(s, RuntimeAfterDiskCkpt, nil); !errors.Is(err, ErrCrash) {
		t.Fatalf("armed hit returned %v, want ErrCrash", err)
	}
	if !s.Fired() {
		t.Fatal("script does not report fired after the armed hit")
	}
	// Subsequent hits are inert again.
	if _, err := Fire(s, RuntimeAfterDiskCkpt, nil); err != nil {
		t.Fatalf("post-fire hit returned %v", err)
	}
}

func TestScriptMutateThenCrashAndReset(t *testing.T) {
	s := &Script{
		Point:  JournalAppendFrame,
		Mutate: func(p []byte) []byte { return p[:2] },
		Crash:  true,
	}
	for life := 0; life < 2; life++ {
		out, err := Fire(s, JournalAppendFrame, []byte("abcdef"))
		if !errors.Is(err, ErrCrash) {
			t.Fatalf("life %d: err = %v, want ErrCrash", life, err)
		}
		if string(out) != "ab" {
			t.Fatalf("life %d: mutated payload %q, want %q", life, out, "ab")
		}
		s.Reset()
	}
}

func TestScriptMutateWithoutCrashReplacesPayload(t *testing.T) {
	s := &Script{
		Point:  RuntimeResumeState,
		Mutate: func([]byte) []byte { return []byte("corrupted") },
	}
	out, err := Fire(s, RuntimeResumeState, []byte("clean"))
	if err != nil {
		t.Fatalf("mutate-only script returned error: %v", err)
	}
	if string(out) != "corrupted" {
		t.Fatalf("payload = %q, want replacement", out)
	}
}

package schedule

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestActionNormalize(t *testing.T) {
	tests := []struct {
		in, want Action
	}{
		{None, None},
		{Partial, Partial},
		{Guaranteed, Guaranteed},
		{Memory, Memory | Guaranteed},
		{Disk, Disk | Memory | Guaranteed},
		{Disk | Partial, Disk | Memory | Guaranteed},
		{Guaranteed | Partial, Guaranteed},
	}
	for _, tc := range tests {
		if got := tc.in.Normalize(); got != tc.want {
			t.Errorf("Normalize(%04b) = %04b, want %04b", tc.in, got, tc.want)
		}
	}
}

func TestActionValid(t *testing.T) {
	valid := []Action{None, Partial, Guaranteed, Guaranteed | Memory, Guaranteed | Memory | Disk}
	for _, a := range valid {
		if !a.Valid() {
			t.Errorf("%v should be valid", a)
		}
	}
	invalid := []Action{Memory, Disk, Disk | Memory, Memory | Partial, Guaranteed | Partial, Disk | Guaranteed}
	for _, a := range invalid {
		if a.Valid() {
			t.Errorf("%04b should be invalid", a)
		}
	}
}

func TestNormalizeAlwaysValid(t *testing.T) {
	f := func(raw uint8) bool {
		return Action(raw & 0x0f).Normalize().Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActionString(t *testing.T) {
	tests := []struct {
		a    Action
		want string
	}{
		{None, "-"},
		{Partial, "V"},
		{Guaranteed, "V*"},
		{Guaranteed | Memory, "V*+M"},
		{Guaranteed | Memory | Disk, "V*+M+D"},
	}
	for _, tc := range tests {
		if got := tc.a.String(); got != tc.want {
			t.Errorf("String(%04b) = %q, want %q", tc.a, got, tc.want)
		}
	}
}

func TestParseActionRoundTrip(t *testing.T) {
	for _, a := range []Action{None, Partial, Guaranteed, Guaranteed | Memory, Guaranteed | Memory | Disk} {
		back, err := ParseAction(a.String())
		if err != nil {
			t.Errorf("ParseAction(%q): %v", a.String(), err)
			continue
		}
		if back != a {
			t.Errorf("round trip %v -> %v", a, back)
		}
	}
	if _, err := ParseAction("V*+X"); err == nil {
		t.Error("unknown mechanism should fail")
	}
	if _, err := ParseAction("M"); err == nil {
		t.Error("bare memory checkpoint should be invalid")
	}
}

func TestNewSchedule(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	s := MustNew(5)
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.At(0) != Guaranteed|Memory|Disk {
		t.Errorf("boundary 0 = %v", s.At(0))
	}
	for i := 1; i <= 5; i++ {
		if s.At(i) != None {
			t.Errorf("boundary %d = %v, want None", i, s.At(i))
		}
	}
}

func TestSetNormalizesAndGuards(t *testing.T) {
	s := MustNew(3)
	s.Set(2, Disk)
	if s.At(2) != Disk|Memory|Guaranteed {
		t.Errorf("Set(Disk) stored %v", s.At(2))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Set(0, ...) should panic")
			}
		}()
		s.Set(0, Partial)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Set(4, ...) out of range should panic")
			}
		}()
		s.Set(4, Partial)
	}()
}

func TestAdd(t *testing.T) {
	s := MustNew(3)
	s.Set(1, Guaranteed)
	s.Add(1, Memory)
	if s.At(1) != Guaranteed|Memory {
		t.Errorf("Add = %v", s.At(1))
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := MustNew(4)
	s.Set(2, Guaranteed)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(3, Partial)
	if s.Equal(c) {
		t.Fatal("Equal must detect differences")
	}
	if s.At(3) != None {
		t.Fatal("Clone must be deep")
	}
	if s.Equal(MustNew(5)) {
		t.Fatal("different lengths cannot be equal")
	}
}

func TestValidateComplete(t *testing.T) {
	s := MustNew(3)
	if err := s.Validate(); err != nil {
		t.Errorf("fresh schedule invalid: %v", err)
	}
	if err := s.ValidateComplete(); err == nil {
		t.Error("no final disk checkpoint: ValidateComplete should fail")
	}
	s.Set(3, Disk)
	if err := s.ValidateComplete(); err != nil {
		t.Errorf("ValidateComplete: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := MustNew(2)
	s.actions[1] = Memory // bypass Set's normalization
	if err := s.Validate(); err == nil {
		t.Error("bare Memory action must fail validation")
	}
	s = MustNew(2)
	s.actions[0] = None
	if err := s.Validate(); err == nil {
		t.Error("clobbered virtual boundary must fail validation")
	}
}

func TestCounts(t *testing.T) {
	s := MustNew(10)
	s.Set(2, Partial)
	s.Set(4, Guaranteed)
	s.Set(6, Guaranteed|Memory)
	s.Set(8, Partial)
	s.Set(10, Disk)
	got := s.Counts()
	want := Counts{Disk: 1, Memory: 2, Guaranteed: 3, Partial: 2}
	if got != want {
		t.Errorf("Counts = %+v, want %+v", got, want)
	}
}

func TestIndicesAndStations(t *testing.T) {
	s := MustNew(6)
	s.Set(2, Partial)
	s.Set(4, Guaranteed|Memory)
	s.Set(6, Disk)
	if got := s.Indices(Memory); len(got) != 2 || got[0] != 4 || got[1] != 6 {
		t.Errorf("Indices(Memory) = %v", got)
	}
	if got := s.Indices(Disk); len(got) != 1 || got[0] != 6 {
		t.Errorf("Indices(Disk) = %v", got)
	}
	st := s.Stations()
	if len(st) != 3 || st[0].Pos != 2 || st[2].Pos != 6 {
		t.Errorf("Stations = %v", st)
	}
	if !st[1].Action.Has(Memory) {
		t.Errorf("station 4 action = %v", st[1].Action)
	}
}

func TestTotalCost(t *testing.T) {
	s := MustNew(4)
	s.Set(1, Partial)
	s.Set(2, Guaranteed)
	s.Set(4, Disk) // V* + M + D
	got := s.TotalCost(1, 10, 100, 1000)
	want := 1.0 + 10 + (10 + 100 + 1000)
	if got != want {
		t.Errorf("TotalCost = %g, want %g", got, want)
	}
}

func TestStringAndStrip(t *testing.T) {
	s := MustNew(5)
	s.Set(2, Partial)
	s.Set(5, Disk)
	str := s.String()
	if !strings.Contains(str, "2:V") || !strings.Contains(str, "5:V*+M+D") {
		t.Errorf("String = %q", str)
	}
	strip := s.Strip()
	lines := strings.Split(strip, "\n")
	if len(lines) != 4 {
		t.Fatalf("Strip has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "....D") {
		t.Errorf("disk row = %q", lines[0])
	}
	if !strings.Contains(lines[3], ".v...") {
		t.Errorf("partial row = %q", lines[3])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := MustNew(4)
	s.Set(1, Partial)
	s.Set(3, Guaranteed|Memory)
	s.Set(4, Disk)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !s.Equal(&back) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", &back, s)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var s Schedule
	bad := []string{
		`{"n":2,"actions":["M","-"]}`,     // bare memory ckpt
		`{"n":3,"actions":["-","-"]}`,     // length mismatch
		`{"n":0,"actions":[]}`,            // empty
		`{"n":1,"actions":["spaghetti"]}`, // unparsable
	}
	for _, js := range bad {
		if err := json.Unmarshal([]byte(js), &s); err == nil {
			t.Errorf("decoding %s should fail", js)
		}
	}
}

func TestSpliceSuffix(t *testing.T) {
	s := MustNew(5)
	s.Set(2, Guaranteed)
	s.Set(5, Disk)
	suffix := MustNew(3) // replaces boundaries 3..5
	suffix.Set(1, Memory)
	suffix.Set(3, Disk)

	changed := s.SpliceSuffix(2, suffix)
	if !changed {
		t.Error("splice that alters boundary 3 reported changed=false")
	}
	if s.At(2) != Guaranteed {
		t.Errorf("prefix boundary 2 modified: %v", s.At(2))
	}
	// Suffix boundary k lands at chain boundary 2+k, normalized.
	if s.At(3) != (Memory | Guaranteed) {
		t.Errorf("boundary 3 = %v", s.At(3))
	}
	if s.At(4) != None {
		t.Errorf("boundary 4 = %v", s.At(4))
	}
	if s.At(5) != (Disk | Memory | Guaranteed) {
		t.Errorf("boundary 5 = %v", s.At(5))
	}
	// Re-splicing the same suffix changes nothing.
	if s.SpliceSuffix(2, suffix) {
		t.Error("identical re-splice reported changed=true")
	}
	// A mis-sized suffix is a contract violation.
	defer func() {
		if recover() == nil {
			t.Error("mis-sized splice did not panic")
		}
	}()
	s.SpliceSuffix(1, suffix)
}

package schedule

import (
	"encoding/json"
	"testing"
)

// FuzzParseAction checks that arbitrary action strings never panic and
// that accepted ones round-trip through String.
func FuzzParseAction(f *testing.F) {
	for _, seed := range []string{"-", "V", "V*", "V*+M", "V*+M+D", "M", "D+V", "", "V*+M+D+V", "x"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := ParseAction(s)
		if err != nil {
			return
		}
		if !a.Valid() {
			t.Fatalf("ParseAction(%q) accepted invalid action %04b", s, a)
		}
		back, err := ParseAction(a.String())
		if err != nil || back != a {
			t.Fatalf("round trip failed for %q: %v -> %v (%v)", s, a, back, err)
		}
	})
}

// FuzzScheduleJSON checks that arbitrary JSON never panics the decoder
// and that accepted schedules are valid and re-encode losslessly.
func FuzzScheduleJSON(f *testing.F) {
	good := MustNew(3)
	good.Set(1, Partial)
	good.Set(3, Disk)
	data, _ := json.Marshal(good)
	f.Add(data)
	f.Add([]byte(`{"n":2,"actions":["M","-"]}`))
	f.Add([]byte(`{"n":1,"actions":["V*+M+D"]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var s Schedule
		if err := json.Unmarshal(data, &s); err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoder accepted invalid schedule: %v", err)
		}
		out, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var back Schedule
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !s.Equal(&back) {
			t.Fatalf("lossy round trip: %v vs %v", &s, &back)
		}
	})
}

// Package schedule represents resilience schedules for linear task graphs:
// which task boundaries carry a partial verification, a guaranteed
// verification, an in-memory checkpoint and/or a disk checkpoint.
//
// The model of the paper (Section II) imposes a strict nesting: a disk
// checkpoint is always preceded by a memory checkpoint, and a memory
// checkpoint by a guaranteed verification, so that stored checkpoints are
// never corrupted. The package enforces those invariants.
//
// Boundary i (1 <= i <= n) is the point right after task Ti. Boundary 0 is
// the virtual task T0, which is always disk- and memory-checkpointed with
// recovery cost zero (restarting from scratch is always possible).
package schedule

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Action is a bitmask of resilience mechanisms placed at one task boundary.
type Action uint8

// The four mechanisms of the paper. Disk implies Memory implies
// Guaranteed; Partial and Guaranteed are mutually exclusive (a guaranteed
// verification subsumes a partial one).
const (
	// Partial is a partial verification of cost V and recall r < 1.
	Partial Action = 1 << 0
	// Guaranteed is a guaranteed verification of cost V* and recall 1.
	Guaranteed Action = 1 << 1
	// Memory is an in-memory checkpoint of cost C_M.
	Memory Action = 1 << 2
	// Disk is a stable-storage checkpoint of cost C_D.
	Disk Action = 1 << 3
)

// None is the empty action.
const None Action = 0

// checkpointAll is the action of the virtual task T0 and of the final
// boundary of a complete schedule.
const checkpointAll = Guaranteed | Memory | Disk

// Normalize returns a with all implied mechanisms added (Disk -> Memory ->
// Guaranteed) and a redundant Partial removed when Guaranteed is present.
func (a Action) Normalize() Action {
	if a&Disk != 0 {
		a |= Memory
	}
	if a&Memory != 0 {
		a |= Guaranteed
	}
	if a&Guaranteed != 0 {
		a &^= Partial
	}
	return a
}

// Has reports whether every mechanism in m is present in a.
func (a Action) Has(m Action) bool { return a&m == m }

// Verified reports whether the boundary runs any verification at all.
func (a Action) Verified() bool { return a&(Partial|Guaranteed) != 0 }

// Valid reports whether the action respects the model's nesting rules.
func (a Action) Valid() bool {
	if a.Has(Disk) && !a.Has(Memory) {
		return false
	}
	if a.Has(Memory) && !a.Has(Guaranteed) {
		return false
	}
	if a.Has(Guaranteed) && a.Has(Partial) {
		return false
	}
	return a <= checkpointAll|Partial
}

// String renders the action compactly, e.g. "V*+M+D", "V", "-".
func (a Action) String() string {
	if a == None {
		return "-"
	}
	var parts []string
	if a.Has(Partial) {
		parts = append(parts, "V")
	}
	if a.Has(Guaranteed) {
		parts = append(parts, "V*")
	}
	if a.Has(Memory) {
		parts = append(parts, "M")
	}
	if a.Has(Disk) {
		parts = append(parts, "D")
	}
	return strings.Join(parts, "+")
}

// Schedule assigns an Action to every boundary of an n-task chain.
type Schedule struct {
	n       int
	actions []Action // index 0..n; index 0 is the virtual T0
}

// ErrTooShort reports a schedule over an empty chain.
var ErrTooShort = errors.New("schedule: need at least one task")

// New returns an empty schedule (no actions anywhere) for an n-task chain.
// The virtual boundary 0 is pre-set to V*+M+D as the model requires.
func New(n int) (*Schedule, error) {
	if n < 1 {
		return nil, ErrTooShort
	}
	s := &Schedule{n: n, actions: make([]Action, n+1)}
	s.actions[0] = checkpointAll
	return s, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(n int) *Schedule {
	s, err := New(n)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of tasks n.
func (s *Schedule) Len() int { return s.n }

// At returns the action at boundary i, 0 <= i <= n.
func (s *Schedule) At(i int) Action {
	s.check(i)
	return s.actions[i]
}

// Set places action a (normalized) at boundary i, 1 <= i <= n. Boundary 0
// is owned by the model and cannot be changed.
func (s *Schedule) Set(i int, a Action) {
	if i == 0 {
		panic("schedule: boundary 0 is the virtual task T0 and cannot be modified")
	}
	s.check(i)
	s.actions[i] = a.Normalize()
}

// Add merges mechanisms into the existing action at boundary i.
func (s *Schedule) Add(i int, a Action) {
	s.Set(i, s.actions[i]|a)
}

// SpliceSuffix overwrites boundaries from+1..n with the actions of a
// suffix schedule indexed 1..n-from — the shape Kernel.ReplanSuffix
// returns, suffix boundary k corresponding to chain boundary from+k —
// and reports whether any action actually changed. It panics when the
// suffix length is not exactly n-from, the same contract-violation
// treatment as an out-of-range Set.
func (s *Schedule) SpliceSuffix(from int, suffix *Schedule) (changed bool) {
	if from < 0 || suffix.n != s.n-from {
		panic(fmt.Sprintf("schedule: cannot splice a %d-task suffix into a %d-task schedule at boundary %d",
			suffix.n, s.n, from))
	}
	for k := 1; k <= suffix.n; k++ {
		a := suffix.actions[k].Normalize()
		if s.actions[from+k] != a {
			changed = true
		}
		s.actions[from+k] = a
	}
	return changed
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{n: s.n, actions: make([]Action, len(s.actions))}
	copy(c.actions, s.actions)
	return c
}

// Equal reports whether two schedules place identical actions.
func (s *Schedule) Equal(o *Schedule) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.actions {
		if s.actions[i] != o.actions[i] {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants of every boundary.
func (s *Schedule) Validate() error {
	if s.n < 1 || len(s.actions) != s.n+1 {
		return fmt.Errorf("schedule: inconsistent length (n=%d, %d actions)", s.n, len(s.actions))
	}
	if s.actions[0] != checkpointAll {
		return fmt.Errorf("schedule: virtual boundary 0 must be V*+M+D, got %v", s.actions[0])
	}
	for i := 1; i <= s.n; i++ {
		if !s.actions[i].Valid() {
			return fmt.Errorf("schedule: invalid action %v at boundary %d", s.actions[i], i)
		}
	}
	return nil
}

// ValidateComplete additionally requires the final boundary to carry a
// disk checkpoint (the paper's E_disk(n) target: the application's output
// must reach stable storage).
func (s *Schedule) ValidateComplete() error {
	if err := s.Validate(); err != nil {
		return err
	}
	if !s.actions[s.n].Has(Disk) {
		return fmt.Errorf("schedule: final boundary %d must carry a disk checkpoint, got %v",
			s.n, s.actions[s.n])
	}
	return nil
}

// Counts tallies the mechanisms placed on boundaries 1..n (the virtual T0
// is excluded). Memory counts include the checkpoints co-located with
// disk checkpoints, and Guaranteed counts include those co-located with
// memory checkpoints, matching the stacked counts plotted in Figures 5-8.
type Counts struct {
	Disk       int `json:"disk"`
	Memory     int `json:"memory"`
	Guaranteed int `json:"guaranteed"`
	Partial    int `json:"partial"`
}

// Counts returns the mechanism tallies of the schedule.
func (s *Schedule) Counts() Counts {
	var c Counts
	for i := 1; i <= s.n; i++ {
		a := s.actions[i]
		if a.Has(Disk) {
			c.Disk++
		}
		if a.Has(Memory) {
			c.Memory++
		}
		if a.Has(Guaranteed) {
			c.Guaranteed++
		}
		if a.Has(Partial) {
			c.Partial++
		}
	}
	return c
}

// Indices returns the boundaries in 1..n whose action contains every
// mechanism in m, in increasing order.
func (s *Schedule) Indices(m Action) []int {
	var out []int
	for i := 1; i <= s.n; i++ {
		if s.actions[i].Has(m) {
			out = append(out, i)
		}
	}
	return out
}

// Station is a boundary that carries at least one mechanism. The ordered
// station list is the walking skeleton used by the exact evaluator and
// the Monte-Carlo simulator.
type Station struct {
	Pos    int
	Action Action
}

// Stations returns all non-empty boundaries in 1..n in increasing order.
func (s *Schedule) Stations() []Station {
	var out []Station
	for i := 1; i <= s.n; i++ {
		if s.actions[i] != None {
			out = append(out, Station{Pos: i, Action: s.actions[i]})
		}
	}
	return out
}

// TotalCost returns the error-free cost of all placed mechanisms given
// the four unit costs; useful for quick overhead accounting.
func (s *Schedule) TotalCost(v, vstar, cm, cd float64) float64 {
	var total float64
	for i := 1; i <= s.n; i++ {
		a := s.actions[i]
		if a.Has(Partial) {
			total += v
		}
		if a.Has(Guaranteed) {
			total += vstar
		}
		if a.Has(Memory) {
			total += cm
		}
		if a.Has(Disk) {
			total += cd
		}
	}
	return total
}

// String renders the schedule as a compact action list, e.g.
// "[T0:V*+M+D 3:V 5:V* 8:V*+M 10:V*+M+D]".
func (s *Schedule) String() string {
	var b strings.Builder
	b.WriteString("[T0:V*+M+D")
	for i := 1; i <= s.n; i++ {
		if s.actions[i] != None {
			fmt.Fprintf(&b, " %d:%s", i, s.actions[i])
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Strip renders the schedule in the style of the paper's Figure 6: one
// text row per mechanism with a mark at each boundary that carries it.
func (s *Schedule) Strip() string {
	rows := []struct {
		label string
		mask  Action
		mark  byte
	}{
		{"Disk ckpts       ", Disk, 'D'},
		{"Memory ckpts     ", Memory, 'M'},
		{"Guaranteed verifs", Guaranteed, '*'},
		{"Partial verifs   ", Partial, 'v'},
	}
	var b strings.Builder
	for r, row := range rows {
		if r > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(row.label)
		b.WriteString(" |")
		for i := 1; i <= s.n; i++ {
			if s.actions[i].Has(row.mask) {
				b.WriteByte(row.mark)
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('|')
	}
	return b.String()
}

type scheduleJSON struct {
	N       int      `json:"n"`
	Actions []string `json:"actions"` // boundaries 1..n
}

// MarshalJSON encodes the schedule with human-readable action strings.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{N: s.n, Actions: make([]string, s.n)}
	for i := 1; i <= s.n; i++ {
		out.Actions[i-1] = s.actions[i].String()
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a schedule.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.N != len(in.Actions) {
		return fmt.Errorf("schedule: n=%d but %d actions", in.N, len(in.Actions))
	}
	ns, err := New(in.N)
	if err != nil {
		return err
	}
	for i, str := range in.Actions {
		a, err := ParseAction(str)
		if err != nil {
			return fmt.Errorf("schedule: boundary %d: %w", i+1, err)
		}
		ns.actions[i+1] = a
	}
	if err := ns.Validate(); err != nil {
		return err
	}
	*s = *ns
	return nil
}

// ParseAction parses the String form of an Action ("-", "V", "V*",
// "V*+M", "V*+M+D", ...). The result is validated but not normalized.
func ParseAction(str string) (Action, error) {
	if str == "-" || str == "" {
		return None, nil
	}
	var a Action
	for _, part := range strings.Split(str, "+") {
		switch part {
		case "V":
			a |= Partial
		case "V*":
			a |= Guaranteed
		case "M":
			a |= Memory
		case "D":
			a |= Disk
		default:
			return None, fmt.Errorf("unknown mechanism %q", part)
		}
	}
	if !a.Valid() {
		return None, fmt.Errorf("invalid action %q", str)
	}
	return a, nil
}

func (s *Schedule) check(i int) {
	if i < 0 || i > s.n {
		panic(fmt.Sprintf("schedule: boundary %d out of range [0, %d]", i, s.n))
	}
}

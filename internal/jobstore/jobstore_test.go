package jobstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openTest opens a journal with fsync off (tmpfs durability is not the
// point) and closes it with the test.
func openTest(t *testing.T, dir string, opts Options) *Journal {
	t.Helper()
	opts.NoSync = true
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func rec(seq uint64, version uint64, state State) Record {
	return Record{
		ID: fmt.Sprintf("job-%d", seq), Seq: seq, Version: version, State: state,
		CreatedAt: time.Unix(1700000000, 0).UTC(),
		UpdatedAt: time.Unix(1700000000+int64(version), 0).UTC(),
	}
}

// TestStoreSemantics runs the shared Store contract against both
// implementations: latest-version-wins, duplicate drops, delete,
// ordering and MaxSeq.
func TestStoreSemantics(t *testing.T) {
	impls := map[string]func(t *testing.T) Store{
		"memory":  func(t *testing.T) Store { return NewMemory() },
		"journal": func(t *testing.T) Store { return openTest(t, t.TempDir(), Options{}) },
	}
	for name, open := range impls {
		t.Run(name, func(t *testing.T) {
			st := open(t)
			for _, r := range []Record{
				rec(1, 1, StateCreated),
				rec(1, 2, StatePlanned),
				rec(2, 1, StateCreated),
				rec(1, 1, StateCreated), // stale duplicate: must not regress
				rec(2, 2, StateDone),
			} {
				if err := st.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			got, ok := st.Get("job-1")
			if !ok || got.State != StatePlanned || got.Version != 2 {
				t.Fatalf("job-1 = %+v, ok=%v", got, ok)
			}
			list := st.List()
			if len(list) != 2 || list[0].ID != "job-1" || list[1].ID != "job-2" {
				t.Fatalf("list = %+v", list)
			}
			if st.MaxSeq() != 2 {
				t.Fatalf("maxseq = %d", st.MaxSeq())
			}
			if err := st.Delete("job-1"); err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Get("job-1"); ok {
				t.Fatal("deleted job still visible")
			}
			if got := len(st.List()); got != 1 {
				t.Fatalf("list after delete has %d jobs", got)
			}
			// Deletion does not forget the sequence watermark.
			if st.MaxSeq() != 2 {
				t.Fatalf("maxseq after delete = %d", st.MaxSeq())
			}
		})
	}
}

func TestJournalSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir, Options{})
	spec := json.RawMessage(`{"platform":"Hera"}`)
	for seq := uint64(1); seq <= 5; seq++ {
		r := rec(seq, 1, StateCreated)
		r.Spec = spec
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		r.Version, r.State, r.Progress = 2, StateRunning, int(seq)
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Delete("job-3"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	re := openTest(t, dir, Options{})
	list := re.List()
	if len(list) != 4 {
		t.Fatalf("reopened list has %d jobs, want 4", len(list))
	}
	for _, r := range list {
		if r.State != StateRunning || r.Progress != int(r.Seq) || string(r.Spec) != string(spec) {
			t.Fatalf("replayed record mangled: %+v", r)
		}
	}
	if _, ok := re.Get("job-3"); ok {
		t.Fatal("tombstoned job resurrected by replay")
	}
	if re.MaxSeq() != 5 {
		t.Fatalf("maxseq = %d", re.MaxSeq())
	}
	// 10 transitions + 1 tombstone.
	st := re.Stats()
	if st.Replayed != 11 || st.SkippedDuplicates != 0 || st.SkippedCorrupt != 0 {
		t.Fatalf("replay stats: %+v", st)
	}
}

func TestJournalRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation; automatic compaction disabled so the
	// segment census is deterministic.
	j := openTest(t, dir, Options{SegmentBytes: 256, CompactEvery: -1})
	for seq := uint64(1); seq <= 20; seq++ {
		if err := j.Append(rec(seq, 1, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if err := j.Delete("job-7"); err != nil {
		t.Fatal(err)
	}

	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Segments != 1 || st.Compactions != 1 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	// Everything survives the snapshot-only reopen; the tombstoned job
	// stays dead even though its tombstone frame is gone.
	j.Close()
	re := openTest(t, dir, Options{})
	if got := len(re.List()); got != 19 {
		t.Fatalf("list after compaction+reopen has %d jobs, want 19", got)
	}
	if _, ok := re.Get("job-7"); ok {
		t.Fatal("deleted job resurrected after compaction")
	}
	if re.MaxSeq() != 20 {
		t.Fatalf("maxseq = %d", re.MaxSeq())
	}
}

// TestCompactionPreservesSeqWatermark: deleting the highest-numbered
// job and compacting (which drops its tombstone) must not let MaxSeq
// regress after a reopen — ids would be reused otherwise.
func TestCompactionPreservesSeqWatermark(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir, Options{CompactEvery: -1})
	for seq := uint64(1); seq <= 3; seq++ {
		if err := j.Append(rec(seq, 1, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Delete("job-3"); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	re := openTest(t, dir, Options{})
	if re.MaxSeq() != 3 {
		t.Fatalf("maxseq after tombstone compaction = %d, want 3", re.MaxSeq())
	}
}

func TestJournalAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir, Options{CompactEvery: 10})
	r := rec(1, 0, StateRunning)
	for v := uint64(1); v <= 25; v++ {
		r.Version = v
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Compactions != 2 {
		t.Fatalf("25 appends at CompactEvery=10 should compact twice, stats: %+v", st)
	}
	j.Close()
	re := openTest(t, dir, Options{})
	got, ok := re.Get("job-1")
	if !ok || got.Version != 25 {
		t.Fatalf("job-1 after auto-compaction: %+v ok=%v", got, ok)
	}
}

func TestJournalClosedAppendFails(t *testing.T) {
	j := openTest(t, t.TempDir(), Options{})
	j.Close()
	if err := j.Append(rec(1, 1, StateCreated)); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := j.Compact(); err == nil {
		t.Fatal("compact after close succeeded")
	}
}

// TestJournalIgnoresStrayFiles: leftover temporaries and foreign files
// in the store directory are not taken for segments.
func TestJournalIgnoresStrayFiles(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir, Options{})
	if err := j.Append(rec(1, 1, StateDone)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	for _, name := range []string{"snapshot.bin.tmp", "wal-1.log", "wal-00000001.log.tmp", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re := openTest(t, dir, Options{})
	if _, ok := re.Get("job-1"); !ok {
		t.Fatal("record lost among stray files")
	}
}

package jobstore

import "chainckpt/internal/obs"

// Metrics is the journal's slice of the observability plane: latency
// histograms for the three I/O operations that can stall the job
// lifecycle — framed appends, the fsync inside each append, and
// compaction. Nil (the default) costs one nil check per site.
type Metrics struct {
	// AppendSeconds measures each framed append, fsync included.
	AppendSeconds *obs.Histogram
	// FsyncSeconds isolates the fsync inside each append — the
	// durability stall itself.
	FsyncSeconds *obs.Histogram
	// CompactSeconds measures whole compactions (snapshot write,
	// rename, segment removal).
	CompactSeconds *obs.Histogram
}

// NewMetrics registers the journal families on reg; nil reg returns
// nil metrics.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		AppendSeconds: reg.NewHistogram("chainckpt_jobstore_append_seconds",
			"Wall-clock time of each journal append, fsync included.", nil),
		FsyncSeconds: reg.NewHistogram("chainckpt_jobstore_fsync_seconds",
			"Wall-clock time of the fsync inside each journal append.", nil),
		CompactSeconds: reg.NewHistogram("chainckpt_jobstore_compact_seconds",
			"Wall-clock time of each journal compaction.", nil),
	}
}

// Package jobstore persists the lifecycle of execution jobs so they
// survive a service restart. A job moves through
//
//	created -> planned -> running(progress) -> done | failed | cancelled
//
// and every transition is recorded as one appended Record; the latest
// record per job id is the job's durable state. The package offers two
// Store implementations with identical semantics: Memory (process
// state, the pre-durability behavior) and Journal, a write-ahead log of
// CRC-framed records in rotated segment files plus a periodically
// compacted snapshot, committed with the same fsync-and-atomic-rename
// discipline as the fingerprinted checkpoint tier (internal/runtime).
//
// The store deliberately knows nothing about chains, schedules or
// supervisors: the service-level payloads (request spec, planned
// schedule, estimator state, final report) travel as opaque JSON blobs,
// so the persistence layer never constrains the wire format above it.
package jobstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job lifecycle state.
type State string

// The lifecycle states. StateDeleted is the internal tombstone a
// Delete appends so an evicted job stays dead across replays; deleted
// jobs are invisible to Get and List and dropped entirely at the next
// compaction.
const (
	StateCreated   State = "created"
	StatePlanned   State = "planned"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	StateDeleted   State = "deleted"
)

// Terminal reports whether the state is an end of the lifecycle: a job
// in a terminal state is never resumed after a restart.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateDeleted:
		return true
	}
	return false
}

// Record is the durable state of one job: identity and lifecycle fields
// the store interprets, plus opaque JSON payloads owned by the service.
// Version is the transition counter (1 on creation, incremented on every
// transition); replay uses it to drop duplicate or stale records, so
// re-appending an old record is harmless.
type Record struct {
	// ID is the job id ("job-7"); Seq its creation sequence number, from
	// which restarted services continue numbering (see MaxSeq).
	ID  string `json:"id"`
	Seq uint64 `json:"seq"`
	// Version orders the transitions of one job; duplicates are skipped.
	Version uint64 `json:"version"`
	State   State  `json:"state"`

	CreatedAt time.Time `json:"created_at"`
	UpdatedAt time.Time `json:"updated_at"`

	// Fingerprint is the canonical instance fingerprint of the planning
	// request (internal/engine), tying the job to its plan-memo identity.
	Fingerprint string  `json:"fingerprint,omitempty"`
	Algorithm   string  `json:"algorithm,omitempty"`
	Adaptive    bool    `json:"adaptive,omitempty"`
	Predicted   float64 `json:"predicted_makespan,omitempty"`
	// Seed is the task-runner RNG seed the job executes with (the
	// explicit request seed or the Seq-derived default) — the repro
	// handle a failing chaos cell or a replay divergence prints.
	Seed uint64 `json:"runner_seed,omitempty"`
	// Progress is the last disk-checkpointed boundary of a running job —
	// where a resume restarts from.
	Progress int `json:"progress,omitempty"`
	// Resumes counts restarts that relaunched this job.
	Resumes int    `json:"resumes,omitempty"`
	Error   string `json:"error,omitempty"`

	// Opaque service payloads: the original request, the planned
	// schedule, the estimator state at the last progress transition, and
	// the final report.
	Spec      json.RawMessage `json:"spec,omitempty"`
	Schedule  json.RawMessage `json:"schedule,omitempty"`
	Estimator json.RawMessage `json:"estimator,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
}

// Stats counts what a store has done. Replay counters are filled by
// Journal's open-time recovery; Memory leaves them zero.
type Stats struct {
	// Jobs is the number of live (non-deleted) records.
	Jobs int `json:"jobs"`
	// Appends counts records appended since open (transitions and
	// tombstones).
	Appends uint64 `json:"appends"`
	// Replayed counts records applied during open-time replay.
	Replayed uint64 `json:"replayed"`
	// SkippedDuplicates counts replayed records dropped because an equal
	// or newer version of the job was already applied.
	SkippedDuplicates uint64 `json:"skipped_duplicates"`
	// SkippedCorrupt counts frames rejected by CRC, framing or decoding
	// during replay. Corruption never aborts a replay: the damaged frame
	// (or, when the framing itself is implausible, the rest of that one
	// file) is skipped and recovery continues.
	SkippedCorrupt uint64 `json:"skipped_corrupt"`
	// Segments is the number of live journal segment files.
	Segments int `json:"segments"`
	// Compactions counts snapshot rewrites since open.
	Compactions uint64 `json:"compactions"`
}

// Store persists job lifecycle records. All implementations are safe
// for concurrent use.
type Store interface {
	// Append records one lifecycle transition. A record whose Version is
	// not newer than the stored one is ignored (idempotent re-delivery).
	Append(rec Record) error
	// Delete tombstones a job: it disappears from Get and List at once
	// and stays dead across replays.
	Delete(id string) error
	// Get returns the latest record of a live job.
	Get(id string) (Record, bool)
	// List returns the latest record of every live job in creation order
	// (ascending Seq).
	List() []Record
	// MaxSeq returns the highest Seq ever recorded, including deleted
	// jobs — the watermark a restarted service continues numbering from.
	MaxSeq() uint64
	// Stats snapshots the store's counters.
	Stats() Stats
	// Close releases the store's resources; a closed store must not be
	// appended to.
	Close() error
}

// Memory is the volatile Store: a map. It is the default backend of
// chainserve when no -store-dir is given, and the reference semantics
// the Journal implementation is tested against.
type Memory struct {
	mu      sync.Mutex
	recs    map[string]Record
	maxSeq  uint64
	appends uint64
}

// NewMemory returns an empty volatile store.
func NewMemory() *Memory {
	return &Memory{recs: make(map[string]Record)}
}

// Append implements Store.
func (m *Memory) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appends++
	if cur, ok := m.recs[rec.ID]; ok && rec.Version <= cur.Version {
		return nil
	}
	if rec.Seq > m.maxSeq {
		m.maxSeq = rec.Seq
	}
	m.recs[rec.ID] = rec
	return nil
}

// Delete implements Store.
func (m *Memory) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.recs, id)
	return nil
}

// Get implements Store.
func (m *Memory) Get(id string) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.recs[id]
	if !ok || rec.State == StateDeleted {
		return Record{}, false
	}
	return rec, true
}

// List implements Store.
func (m *Memory) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedRecords(m.recs)
}

// MaxSeq implements Store.
func (m *Memory) MaxSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxSeq
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Jobs: liveCount(m.recs), Appends: m.appends}
}

// Close implements Store.
func (m *Memory) Close() error { return nil }

// CanonicalRecords renders records in the canonical comparison form of
// the replay harness: one compact JSON object per line, timestamps
// zeroed — the "same journal contents modulo timestamps" equivalence
// chaos cells assert between a recovered store and its fault-free
// reference.
func CanonicalRecords(recs []Record) ([]byte, error) {
	var buf bytes.Buffer
	for i, rec := range recs {
		rec.CreatedAt = time.Time{}
		rec.UpdatedAt = time.Time{}
		b, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("jobstore: canonical record %d: %w", i, err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// sortedRecords returns the live records in ascending (Seq, ID) order.
func sortedRecords(recs map[string]Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, rec := range recs {
		if rec.State != StateDeleted {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func liveCount(recs map[string]Record) int {
	n := 0
	for _, rec := range recs {
		if rec.State != StateDeleted {
			n++
		}
	}
	return n
}

// The jobstore half of the chaos matrix: scripted faults at the
// journal's injection points (torn/lost frame appends, crashes on
// either side of the compaction rename) plus file-level frame
// manipulation (duplication, reordering), each cell asserting
// bit-identical replay equivalence — the recovered store's canonical
// contents must equal the fault-free reference exactly, not merely
// "open without error".
package jobstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"testing"

	"chainckpt/internal/fault"
)

// chaosRecords is the deterministic lifecycle script every cell
// replays: three jobs walking created -> planned -> running -> done,
// twelve appends total, with fixed timestamps and seeds.
func chaosRecords() []Record {
	var out []Record
	states := []State{StateCreated, StatePlanned, StateRunning, StateDone}
	for seq := uint64(1); seq <= 3; seq++ {
		for v, st := range states {
			r := rec(seq, uint64(v+1), st)
			r.Seed = 100 + seq
			if st == StateRunning {
				r.Progress = int(seq) * 4
			}
			out = append(out, r)
		}
	}
	return out
}

// canonicalAfter returns the canonical store contents after applying
// the first n scripted records to the reference implementation.
func canonicalAfter(t *testing.T, n int) []byte {
	t.Helper()
	m := NewMemory()
	for _, r := range chaosRecords()[:n] {
		if err := m.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	b, err := CanonicalRecords(m.List())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// journalCell is one (fault type × injection point) entry of the
// jobstore matrix.
type journalCell struct {
	name string
	// script arms the journal's fault injector (nil for file-level
	// cells).
	script *fault.Script
	// crashAt is the 1-based append the scripted crash interrupts
	// (0 = the fault is not an append crash).
	crashAt int
	// compact runs an explicit compaction after all appends; crash
	// says whether the scripted fault kills it.
	compact      bool
	compactCrash bool
	// mangle rewrites the journal directory after a clean close —
	// deterministic file-level damage (duplicate/reorder frames).
	mangle func(t *testing.T, dir string)
	// wantSkippedCorrupt requires at least one corrupt frame to be
	// counted on recovery.
	wantSkippedCorrupt bool
	// wantSkippedDuplicates requires duplicate drops on recovery.
	wantSkippedDuplicates bool
}

func journalCells() []journalCell {
	return []journalCell{
		{
			name: "torn-append-mid-header",
			script: &fault.Script{
				Point: fault.JournalAppendFrame, Hit: 5,
				Mutate: func(f []byte) []byte { return append([]byte(nil), f[:3]...) },
				Crash:  true,
			},
			crashAt: 5, wantSkippedCorrupt: true,
		},
		{
			name: "torn-append-mid-payload",
			script: &fault.Script{
				Point: fault.JournalAppendFrame, Hit: 11,
				Mutate: func(f []byte) []byte { return append([]byte(nil), f[:len(f)-4]...) },
				Crash:  true,
			},
			crashAt: 11, wantSkippedCorrupt: true,
		},
		{
			name: "crash-before-append-reaches-disk",
			script: &fault.Script{
				Point: fault.JournalAppendFrame, Hit: 8,
				Mutate: func([]byte) []byte { return []byte{} },
				Crash:  true,
			},
			crashAt: 8,
		},
		{
			name:    "crash-before-compact-rename",
			script:  &fault.Script{Point: fault.JournalCompactBeforeRename, Crash: true},
			compact: true, compactCrash: true,
		},
		{
			name:    "crash-after-compact-rename",
			script:  &fault.Script{Point: fault.JournalCompactAfterRename, Crash: true},
			compact: true, compactCrash: true, wantSkippedDuplicates: true,
		},
		{
			name:   "duplicate-replay-frames",
			mangle: duplicateFrames, wantSkippedDuplicates: true,
		},
		{
			name:   "reordered-replay-frames",
			mangle: reorderFrames, wantSkippedDuplicates: true,
		},
	}
}

// TestJournalChaosMatrix drives every cell: inject the fault, abandon
// the "dead" journal, recover by reopening, and assert the canonical
// contents are bit-identical to the fault-free reference at the
// equivalent point — twice, because recovery itself must be
// deterministic — then re-deliver the lost suffix and assert
// convergence to the full reference.
func TestJournalChaosMatrix(t *testing.T) {
	records := chaosRecords()
	full := canonicalAfter(t, len(records))
	for _, cell := range journalCells() {
		t.Run(cell.name, func(t *testing.T) {
			repro := fmt.Sprintf("repro: go test ./internal/jobstore -run 'TestJournalChaosMatrix/%s$' -count=1", cell.name)
			dir := t.TempDir()
			var inj fault.Injector
			if cell.script != nil {
				inj = cell.script
			}
			j, err := Open(dir, Options{NoSync: true, CompactEvery: -1, Faults: inj})
			if err != nil {
				t.Fatalf("open: %v\n%s", err, repro)
			}

			committed := len(records)
			for i, r := range records {
				err := j.Append(r)
				if cell.crashAt > 0 && i+1 == cell.crashAt {
					if !errors.Is(err, fault.ErrCrash) {
						t.Fatalf("append %d: got %v, want injected crash\n%s", i+1, err, repro)
					}
					committed = i // the dying append never committed
					break
				}
				if err != nil {
					t.Fatalf("append %d: %v\n%s", i+1, err, repro)
				}
			}
			if cell.compact {
				err := j.Compact()
				if cell.compactCrash && !errors.Is(err, fault.ErrCrash) {
					t.Fatalf("compact: got %v, want injected crash\n%s", err, repro)
				}
				if !cell.compactCrash && err != nil {
					t.Fatalf("compact: %v\n%s", err, repro)
				}
			}
			if cell.script != nil && !cell.script.Fired() {
				t.Fatalf("scripted fault at %s never fired — the cell tested nothing\n%s", cell.script.Point, repro)
			}
			// The process is dead: abandon the journal without any orderly
			// shutdown beyond releasing the fd.
			j.Close()
			if cell.mangle != nil {
				cell.mangle(t, dir)
			}

			want := canonicalAfter(t, committed)
			var first []byte
			for attempt := 1; attempt <= 2; attempt++ {
				r, err := Open(dir, Options{NoSync: true, CompactEvery: -1})
				if err != nil {
					t.Fatalf("recovery open %d: %v\n%s", attempt, err, repro)
				}
				got, err := CanonicalRecords(r.List())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("recovery %d diverged from fault-free reference:\n got: %s\nwant: %s\n%s",
						attempt, got, want, repro)
				}
				st := r.Stats()
				if cell.wantSkippedCorrupt && attempt == 1 && st.SkippedCorrupt == 0 {
					t.Fatalf("expected corrupt frames to be counted, got stats %+v\n%s", st, repro)
				}
				if cell.wantSkippedDuplicates && attempt == 1 && st.SkippedDuplicates == 0 {
					t.Fatalf("expected duplicate frames to be skipped, got stats %+v\n%s", st, repro)
				}
				if attempt == 1 {
					first = got
				} else if !bytes.Equal(first, got) {
					t.Fatalf("recovery is not deterministic across reopens\n%s", repro)
				}
				r.Close()
			}

			// At-least-once redelivery of the lost suffix converges the
			// recovered store to the full fault-free contents.
			r, err := Open(dir, Options{NoSync: true, CompactEvery: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for _, rc := range records[max(committed-1, 0):] {
				if err := r.Append(rc); err != nil {
					t.Fatalf("redelivery: %v\n%s", err, repro)
				}
			}
			got, err := CanonicalRecords(r.List())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, full) {
				t.Fatalf("redelivered store diverged from fault-free reference:\n got: %s\nwant: %s\n%s",
					got, full, repro)
			}
		})
	}
}

// duplicateFrames appends a copy of every frame of the newest segment
// to itself: at-least-once delivery at the file level.
func duplicateFrames(t *testing.T, dir string) {
	t.Helper()
	path := dataSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := append(append([]byte(nil), raw...), raw[len(segMagic):]...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// reorderFrames rewrites the newest segment with its frames in reverse
// order: replay must converge on the latest version of every job no
// matter the delivery order.
func reorderFrames(t *testing.T, dir string) {
	t.Helper()
	path := dataSegment(t, dir)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frames := splitFrames(t, raw[len(segMagic):])
	out := append([]byte(nil), raw[:len(segMagic)]...)
	for i := len(frames) - 1; i >= 0; i-- {
		out = append(out, frames[i]...)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// dataSegment returns the one segment file that holds frames (the
// scripted appends fit one segment; the freshly rotated empty one is
// skipped).
func dataSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestSize int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &idx); err == nil && info.Size() > bestSize {
			best, bestSize = e.Name(), info.Size()
		}
	}
	if best == "" {
		t.Fatal("no segment with frames found")
	}
	return dir + string(os.PathSeparator) + best
}

// splitFrames walks well-formed frames and returns each one whole
// (header + payload).
func splitFrames(t *testing.T, data []byte) [][]byte {
	t.Helper()
	var out [][]byte
	off := 0
	for off+8 <= len(data) {
		size := int(binary.LittleEndian.Uint32(data[off:]))
		if off+8+size > len(data) {
			t.Fatalf("torn frame at offset %d of a file expected whole", off)
		}
		out = append(out, data[off:off+8+size])
		off += 8 + size
	}
	if off != len(data) {
		t.Fatalf("trailing garbage at offset %d", off)
	}
	return out
}

// TestTornTailEveryByteOffset truncates the journal at every byte
// offset of the final frame — from its first header byte to one byte
// short of complete — and asserts each prefix recovers to exactly the
// contents before that append, bit for bit. This is the exhaustive
// version of the single-offset torn-tail test in corruption_test.go.
func TestTornTailEveryByteOffset(t *testing.T) {
	records := chaosRecords()
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	raw, err := os.ReadFile(dataSegment(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	frames := splitFrames(t, raw[len(segMagic):])
	lastStart := len(raw) - len(frames[len(frames)-1])
	want := canonicalAfter(t, len(records)-1)

	for cut := lastStart; cut < len(raw); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(sub+string(os.PathSeparator)+"wal-00000001.log", raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(sub, Options{NoSync: true, CompactEvery: -1})
		if err != nil {
			t.Fatalf("offset %d: open: %v", cut, err)
		}
		got, err := CanonicalRecords(r.List())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("offset %d (frame byte %d of %d): recovered contents diverged\n got: %s\nwant: %s",
				cut, cut-lastStart, len(raw)-lastStart, got, want)
		}
		st := r.Stats()
		if cut == lastStart && st.SkippedCorrupt != 0 {
			t.Fatalf("offset %d: clean cut counted %d corrupt frames", cut, st.SkippedCorrupt)
		}
		if cut > lastStart && st.SkippedCorrupt == 0 {
			t.Fatalf("offset %d: torn tail not counted as corrupt", cut)
		}
		r.Close()
	}
}

// The write-ahead journal backend of the job store. Records are
// appended as CRC-framed JSON to numbered segment files; a periodic
// compaction collapses the segments into one snapshot holding the
// latest record per job, written through a temporary file and atomic
// rename so a crash can never leave a half-written snapshot under the
// committed name. Opening a journal replays snapshot then segments,
// skipping damaged frames instead of aborting — the same
// damaged-data-is-skipped discipline as the checkpoint tier's
// RecoverLatest.
//
// Frame layout (little-endian):
//
//	uint32  payload length
//	uint32  CRC-32C (Castagnoli) of the payload
//	payload JSON-encoded Record
//
// Segment files ("wal-00000042.log") and the snapshot ("snapshot.bin")
// both start with an 8-byte magic and then hold only frames. A CRC
// mismatch skips one frame (the length field still bounds it); an
// implausible length abandons the rest of that file, since frame
// alignment itself is no longer trustworthy. Every restart starts a
// fresh segment, so a torn tail from a crash is never appended after.
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"chainckpt/internal/fault"
)

var (
	segMagic  = [8]byte{'C', 'J', 'W', 'L', 'v', '1', '\n', 0}
	snapMagic = [8]byte{'C', 'J', 'S', 'N', 'v', '1', '\n', 0}

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// maxFrame bounds one record's payload; anything larger is framing
// corruption, not data.
const maxFrame = 16 << 20

const snapshotName = "snapshot.bin"

// Options tunes a Journal. The zero value selects the defaults.
type Options struct {
	// SegmentBytes rotates the active segment when it exceeds this size
	// (default 1 MiB).
	SegmentBytes int
	// CompactEvery compacts after this many appends (default 256;
	// negative disables automatic compaction).
	CompactEvery int
	// NoSync skips the fsync after each append and commit — only for
	// tests, where durability against power loss is not the point.
	NoSync bool
	// Faults, when non-nil, is fired at the journal's injection points
	// (see internal/fault): frame appends and the two sides of the
	// compaction rename. The chaos harness uses it to tear tails and
	// kill the "process" mid-commit; production stores leave it nil.
	Faults fault.Injector
	// Metrics, when non-nil, wires the journal into an obs registry:
	// append/fsync/compaction latency histograms (see NewMetrics). Nil
	// means uninstrumented.
	Metrics *Metrics
}

func (o Options) segmentBytes() int {
	if o.SegmentBytes <= 0 {
		return 1 << 20
	}
	return o.SegmentBytes
}

func (o Options) compactEvery() int {
	if o.CompactEvery == 0 {
		return 256
	}
	return o.CompactEvery
}

// Journal is the durable Store: a write-ahead log of lifecycle records.
type Journal struct {
	mu   sync.Mutex
	dir  string
	opts Options

	active     *os.File
	activeIdx  int
	activeSize int
	segments   int // live segment files, tracked so Stats needs no ReadDir
	sinceComp  int

	recs   map[string]Record
	maxSeq uint64
	stats  Stats
	closed bool
}

// Open opens (creating if necessary) a journaled job store under dir
// and replays its snapshot and segments into memory.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: open: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, recs: make(map[string]Record)}

	// Snapshot first: it is the compacted past of any segments it
	// outlived.
	if raw, err := os.ReadFile(filepath.Join(dir, snapshotName)); err == nil {
		j.replaySnapshot(raw)
	}

	idxs, err := j.segmentIndexes()
	if err != nil {
		return nil, err
	}
	maxIdx := 0
	for _, idx := range idxs {
		raw, err := os.ReadFile(j.segmentPath(idx))
		if err != nil {
			return nil, fmt.Errorf("jobstore: open: %w", err)
		}
		j.replayFile(raw, segMagic)
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	j.segments = len(idxs)

	// Always append to a fresh segment: a torn tail left by a crash must
	// never have new frames written after it.
	if err := j.startSegment(maxIdx + 1); err != nil {
		return nil, err
	}
	return j, nil
}

// replaySnapshot applies a compacted snapshot: magic, the sequence
// watermark, then frames. The explicit watermark keeps MaxSeq exact
// even when compaction has dropped the tombstones of the highest-
// numbered jobs — ids must never be reused across restarts.
func (j *Journal) replaySnapshot(raw []byte) {
	if len(raw) < len(snapMagic)+8 || [8]byte(raw[:8]) != snapMagic {
		j.stats.SkippedCorrupt++
		return
	}
	if seq := binary.LittleEndian.Uint64(raw[8:16]); seq > j.maxSeq {
		j.maxSeq = seq
	}
	j.replayFrames(raw[len(snapMagic)+8:])
}

// replayFile applies every readable frame of one segment.
func (j *Journal) replayFile(raw []byte, magic [8]byte) {
	if len(raw) < len(magic) || [8]byte(raw[:8]) != magic {
		j.stats.SkippedCorrupt++
		return
	}
	j.replayFrames(raw[len(magic):])
}

func (j *Journal) replayFrames(frames []byte) {
	j.stats.SkippedCorrupt += readFrames(frames, func(payload []byte) {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.ID == "" {
			j.stats.SkippedCorrupt++
			return
		}
		j.stats.Replayed++
		if !j.apply(rec) {
			j.stats.SkippedDuplicates++
		}
	})
}

// apply installs a record if it is newer than what the map holds,
// reporting whether it was applied.
func (j *Journal) apply(rec Record) bool {
	if rec.Seq > j.maxSeq {
		j.maxSeq = rec.Seq
	}
	if cur, ok := j.recs[rec.ID]; ok && rec.Version <= cur.Version {
		return false
	}
	j.recs[rec.ID] = rec
	return true
}

// readFrames walks CRC-framed payloads, returning the number of frames
// it had to reject. A bad CRC skips one frame; an implausible length
// (or a tail too short for the declared payload) abandons the rest,
// because frame alignment is gone.
func readFrames(data []byte, apply func(payload []byte)) (corrupt uint64) {
	off := 0
	for off+8 <= len(data) {
		// Bound the raw uint32 before converting: a corrupted high-bit
		// length must not overflow int on 32-bit platforms and sneak past
		// the guards into the slice expression.
		size32 := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if size32 > maxFrame {
			return corrupt + 1 // corrupted length field: alignment is gone
		}
		size := int(size32)
		if off+8+size > len(data) {
			return corrupt + 1 // torn tail
		}
		payload := data[off+8 : off+8+size]
		off += 8 + size
		if crc32.Checksum(payload, castagnoli) != sum {
			corrupt++
			continue
		}
		apply(payload)
	}
	if off != len(data) {
		corrupt++ // trailing bytes too short to even frame
	}
	return corrupt
}

// appendFrame frames one payload onto buf.
func appendFrame(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// Append implements Store: frame, write, fsync, apply.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: append: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendLocked(payload); err != nil {
		return err
	}
	j.apply(rec)
	return j.maintainLocked()
}

// Delete implements Store: append a tombstone one version past the
// live record.
func (j *Journal) Delete(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	cur, ok := j.recs[id]
	if !ok || cur.State == StateDeleted {
		return nil
	}
	tomb := Record{
		ID: id, Seq: cur.Seq, Version: cur.Version + 1,
		State: StateDeleted, CreatedAt: cur.CreatedAt, UpdatedAt: time.Now().UTC(),
	}
	payload, err := json.Marshal(tomb)
	if err != nil {
		return fmt.Errorf("jobstore: delete: %w", err)
	}
	if err := j.appendLocked(payload); err != nil {
		return err
	}
	j.apply(tomb)
	return j.maintainLocked()
}

// appendLocked writes one framed payload to the active segment.
func (j *Journal) appendLocked(payload []byte) error {
	if j.closed {
		return fmt.Errorf("jobstore: store is closed")
	}
	m := j.opts.Metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	frame := appendFrame(nil, payload)
	// The injector may tear the frame (write a prefix, then "die") or
	// kill the write entirely; whatever bytes it leaves are what a real
	// crash would have left on disk.
	frame, ferr := fault.Fire(j.opts.Faults, fault.JournalAppendFrame, frame)
	if len(frame) > 0 {
		if _, err := j.active.Write(frame); err != nil {
			return fmt.Errorf("jobstore: append: %w", err)
		}
	}
	if ferr != nil {
		return fmt.Errorf("jobstore: append: %w", ferr)
	}
	if !j.opts.NoSync {
		var fstart time.Time
		if m != nil {
			fstart = time.Now()
		}
		if err := j.active.Sync(); err != nil {
			return fmt.Errorf("jobstore: append: %w", err)
		}
		if m != nil {
			m.FsyncSeconds.ObserveSince(fstart)
		}
	}
	if m != nil {
		m.AppendSeconds.ObserveSince(start)
	}
	j.stats.Appends++
	j.activeSize += len(frame)
	j.sinceComp++
	return nil
}

// maintainLocked rotates and compacts as the options demand.
func (j *Journal) maintainLocked() error {
	if ce := j.opts.compactEvery(); ce > 0 && j.sinceComp >= ce {
		return j.compactLocked()
	}
	if j.activeSize >= j.opts.segmentBytes() {
		return j.startSegment(j.activeIdx + 1)
	}
	return nil
}

// Compact collapses the journal into one snapshot: the latest record of
// every job is written to a temporary file, fsync'd, and renamed over
// the committed snapshot; only then are the segments removed and a
// fresh one started. Tombstones are dropped — the frames that could
// resurrect their jobs die with the segments.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("jobstore: store is closed")
	}
	return j.compactLocked()
}

func (j *Journal) compactLocked() error {
	if m := j.opts.Metrics; m != nil {
		defer m.CompactSeconds.ObserveSince(time.Now())
	}
	buf := append([]byte(nil), snapMagic[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, j.maxSeq)
	for _, rec := range sortedRecords(j.recs) {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("jobstore: compact: %w", err)
		}
		buf = appendFrame(buf, payload)
	}
	path := filepath.Join(j.dir, snapshotName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	if !j.opts.NoSync {
		if err := syncFile(tmp); err != nil {
			return fmt.Errorf("jobstore: compact: %w", err)
		}
	}
	// Compaction commits in two steps — rename the snapshot, then drop
	// the segments — and the injection points bracket the rename: a
	// crash before it leaves only the temporary (ignored on replay), a
	// crash after it leaves snapshot and segments coexisting (replayed
	// records deduplicate by version).
	if _, err := fault.Fire(j.opts.Faults, fault.JournalCompactBeforeRename, nil); err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}
	if _, err := fault.Fire(j.opts.Faults, fault.JournalCompactAfterRename, nil); err != nil {
		return fmt.Errorf("jobstore: compact: %w", err)
	}

	// The snapshot holds everything: drop the segments (and the
	// tombstones they were keeping dead).
	idxs, err := j.segmentIndexes()
	if err != nil {
		return err
	}
	j.active.Close()
	j.active = nil
	for _, idx := range idxs {
		os.Remove(j.segmentPath(idx))
	}
	j.segments = 0
	for id, rec := range j.recs {
		if rec.State == StateDeleted {
			delete(j.recs, id)
		}
	}
	j.stats.Compactions++
	j.sinceComp = 0
	return j.startSegment(j.activeIdx + 1)
}

// startSegment opens a fresh active segment with the given index.
func (j *Journal) startSegment(idx int) error {
	if j.active != nil {
		j.active.Close()
	}
	f, err := os.OpenFile(j.segmentPath(idx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: segment: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("jobstore: segment: %w", err)
	}
	if !j.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("jobstore: segment: %w", err)
		}
	}
	j.active = f
	j.activeIdx = idx
	j.activeSize = len(segMagic)
	j.segments++
	return nil
}

// segmentIndexes lists the committed segment files in increasing order.
// Exact round-trip naming keeps stray temporaries out, exactly like the
// checkpoint tier's directory scan.
func (j *Journal) segmentIndexes() ([]int, error) {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: dir: %w", err)
	}
	var out []int
	for _, e := range ents {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "wal-%d.log", &idx); err == nil &&
			e.Name() == fmt.Sprintf("wal-%08d.log", idx) {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

func (j *Journal) segmentPath(idx int) string {
	return filepath.Join(j.dir, fmt.Sprintf("wal-%08d.log", idx))
}

// Get implements Store.
func (j *Journal) Get(id string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.recs[id]
	if !ok || rec.State == StateDeleted {
		return Record{}, false
	}
	return rec, true
}

// List implements Store.
func (j *Journal) List() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return sortedRecords(j.recs)
}

// MaxSeq implements Store.
func (j *Journal) MaxSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxSeq
}

// Stats implements Store. It works entirely from memory — a metrics
// scrape must not do directory I/O on the lock that serializes fsync'd
// appends.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Jobs = liveCount(j.recs)
	st.Segments = j.segments
	return st
}

// Close implements Store.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.active == nil {
		return nil
	}
	err := j.active.Close()
	j.active = nil
	return err
}

// syncFile fsyncs one path.
func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Corruption tests: a journal replay must survive the ways real disks
// and real crashes damage a log — torn tails, flipped bits, duplicated
// frames — by skipping the damage, never by aborting. This mirrors the
// damaged-checkpoint-skipping behavior of the checkpoint tier
// (internal/runtime/store.go RecoverLatest).
package jobstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// seedJournal writes n single-transition jobs and returns the segment
// files holding them.
func seedJournal(t *testing.T, dir string, n int) []string {
	t.Helper()
	j := openTest(t, dir, Options{CompactEvery: -1})
	for seq := uint64(1); seq <= uint64(n); seq++ {
		if err := j.Append(rec(seq, 1, StateDone)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	return segs
}

func TestReplayTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	segs := seedJournal(t, dir, 6)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last frame's payload: the classic torn write of a
	// crash mid-append.
	if err := os.WriteFile(segs[0], raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, Options{})
	if got := len(re.List()); got != 5 {
		t.Fatalf("replay of torn log found %d jobs, want 5", got)
	}
	if st := re.Stats(); st.SkippedCorrupt == 0 {
		t.Fatalf("torn tail not counted: %+v", st)
	}
}

func TestReplayBitFlippedFrame(t *testing.T) {
	dir := t.TempDir()
	segs := seedJournal(t, dir, 6)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the third frame; its CRC must reject it
	// while every later frame still replays (the length field bounds the
	// damaged frame, so alignment survives).
	off := len(segMagic)
	for i := 0; i < 2; i++ {
		off += 8 + int(binary.LittleEndian.Uint32(raw[off:]))
	}
	raw[off+8+5] ^= 0x40
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, Options{})
	if got := len(re.List()); got != 5 {
		t.Fatalf("replay after bit flip found %d jobs, want 5", got)
	}
	st := re.Stats()
	if st.SkippedCorrupt != 1 {
		t.Fatalf("want exactly 1 corrupt frame, stats: %+v", st)
	}
	// The damaged job is simply missing, not wedged: its id can be
	// written again.
	if err := re.Append(rec(99, 1, StateCreated)); err != nil {
		t.Fatal(err)
	}
}

func TestReplayCorruptLengthAbandonsFile(t *testing.T) {
	dir := t.TempDir()
	segs := seedJournal(t, dir, 4)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Smash the first frame's length field: alignment is gone, so the
	// whole file must be abandoned — but the replay itself must not
	// error, and a fresh journal must still open over the directory.
	binary.LittleEndian.PutUint32(raw[8:], 0xFFFFFFF0)
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, Options{})
	if got := len(re.List()); got != 0 {
		t.Fatalf("unaligned file yielded %d jobs, want 0", got)
	}
	if st := re.Stats(); st.SkippedCorrupt == 0 {
		t.Fatalf("abandoned file not counted: %+v", st)
	}
}

func TestReplayDuplicateTransitions(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir, Options{CompactEvery: -1})
	r := rec(1, 1, StateCreated)
	if err := j.Append(r); err != nil {
		t.Fatal(err)
	}
	r.Version, r.State = 2, StateRunning
	if err := j.Append(r); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Duplicate the whole segment's frames by appending the file to
	// itself: an at-least-once writer re-delivering every transition.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	dup := append(append([]byte(nil), raw...), raw[len(segMagic):]...)
	if err := os.WriteFile(segs[0], dup, 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, Options{})
	got, ok := re.Get("job-1")
	if !ok || got.Version != 2 || got.State != StateRunning {
		t.Fatalf("job-1 after duplicate replay: %+v ok=%v", got, ok)
	}
	st := re.Stats()
	if st.SkippedDuplicates != 2 || st.SkippedCorrupt != 0 {
		t.Fatalf("duplicate accounting: %+v", st)
	}
}

func TestReplayCorruptSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	j := openTest(t, dir, Options{CompactEvery: -1})
	if err := j.Append(rec(1, 1, StateDone)); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction append lives only in the new segment.
	if err := j.Append(rec(2, 1, StateDone)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Wreck the snapshot's magic entirely.
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openTest(t, dir, Options{})
	if _, ok := re.Get("job-2"); !ok {
		t.Fatal("segment record lost with the snapshot")
	}
	if _, ok := re.Get("job-1"); ok {
		t.Fatal("snapshot-only record survived a destroyed snapshot (impossible)")
	}
	if st := re.Stats(); st.SkippedCorrupt == 0 {
		t.Fatalf("destroyed snapshot not counted: %+v", st)
	}
}

// FuzzJournalReplay feeds arbitrary bytes to the replay path as a
// segment file: whatever the damage, Open must neither panic nor fail.
func FuzzJournalReplay(f *testing.F) {
	good := append([]byte(nil), segMagic[:]...)
	good = appendFrame(good, []byte(`{"id":"job-1","seq":1,"version":1,"state":"done"}`))
	f.Add(good)
	f.Add([]byte{})
	f.Add(segMagic[:])
	f.Add(append(append([]byte(nil), segMagic[:]...), 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("replay of arbitrary bytes errored: %v", err)
		}
		// The reopened store must remain writable whatever it replayed.
		if err := j.Append(Record{ID: "probe", Seq: j.MaxSeq() + 1, Version: 1, State: StateCreated}); err != nil {
			t.Fatal(err)
		}
		j.Close()
	})
}

package expmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return diff < tol
	}
	return diff/scale < tol
}

func TestProbErrorKnownValues(t *testing.T) {
	tests := []struct {
		name    string
		rate, w float64
		want    float64
	}{
		{"zero work", 1e-6, 0, 0},
		{"zero rate", 0, 1000, 0},
		{"unit product", 1e-3, 1000, 1 - math.Exp(-1)},
		{"tiny product", 1e-9, 1, 1e-9}, // expm1 keeps precision here
		{"hera task", 9.46e-7, 500, 1 - math.Exp(-9.46e-7*500)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := ProbError(tc.rate, tc.w)
			if !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("ProbError(%g,%g) = %g, want %g", tc.rate, tc.w, got, tc.want)
			}
		})
	}
}

func TestProbErrorBounds(t *testing.T) {
	f := func(rate, w float64) bool {
		rate = math.Abs(rate)
		w = math.Abs(w)
		if math.IsInf(rate, 0) || math.IsInf(w, 0) || math.IsNaN(rate) || math.IsNaN(w) {
			return true
		}
		p := ProbError(rate, w)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbErrorMonotoneInWork(t *testing.T) {
	rate := 3.38e-6
	prev := -1.0
	for w := 0.0; w <= 25000; w += 250 {
		p := ProbError(rate, w)
		if p < prev {
			t.Fatalf("ProbError not monotone at w=%g: %g < %g", w, p, prev)
		}
		prev = p
	}
}

func TestSurvivalComplementsProb(t *testing.T) {
	f := func(rate, w float64) bool {
		rate = math.Mod(math.Abs(rate), 1e-2)
		w = math.Mod(math.Abs(w), 1e6)
		if math.IsNaN(rate) || math.IsNaN(w) {
			return true
		}
		return almostEqual(ProbError(rate, w)+SurvivalProb(rate, w), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrowthM1MatchesGrowth(t *testing.T) {
	for _, x := range []struct{ rate, w float64 }{
		{1e-6, 25000}, {3.38e-6, 500}, {0.1, 10}, {0, 100},
	} {
		want := Growth(x.rate, x.w) - 1
		got := GrowthM1(x.rate, x.w)
		if !almostEqual(got, want, 1e-9) {
			t.Errorf("GrowthM1(%g,%g) = %g, want %g", x.rate, x.w, got, want)
		}
	}
}

func TestIntExpGrowthZeroRate(t *testing.T) {
	if got := IntExpGrowth(0, 123.5); got != 123.5 {
		t.Errorf("IntExpGrowth(0, 123.5) = %g, want 123.5", got)
	}
}

func TestIntExpGrowthMatchesQuadrature(t *testing.T) {
	// Compare against trapezoidal integration of exp(rate*x).
	rate, w := 2.5e-4, 4000.0
	const steps = 200000
	sum := 0.0
	h := w / steps
	for i := 0; i <= steps; i++ {
		v := math.Exp(rate * float64(i) * h)
		if i == 0 || i == steps {
			v /= 2
		}
		sum += v
	}
	sum *= h
	got := IntExpGrowth(rate, w)
	if !almostEqual(got, sum, 1e-8) {
		t.Errorf("IntExpGrowth = %g, quadrature = %g", got, sum)
	}
}

func TestIntExpGrowthLowerBound(t *testing.T) {
	// The integrand is >= 1, so the integral is >= w.
	f := func(rate, w float64) bool {
		rate = math.Mod(math.Abs(rate), 1e-3)
		w = math.Mod(math.Abs(w), 1e5)
		if math.IsNaN(rate) || math.IsNaN(w) {
			return true
		}
		return IntExpGrowth(rate, w) >= w-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLostKnownValues(t *testing.T) {
	tests := []struct {
		name    string
		rate, w float64
		want    float64
	}{
		{"zero work", 1e-6, 0, 0},
		{"zero rate limit", 0, 1000, 500},
		{"large product", 1.0, 100, 1}, // ~1/rate when rate*w >> 1
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := TLost(tc.rate, tc.w)
			if !almostEqual(got, tc.want, 1e-6) {
				t.Errorf("TLost(%g,%g) = %g, want %g", tc.rate, tc.w, got, tc.want)
			}
		})
	}
}

func TestTLostPaperExample(t *testing.T) {
	// Section IV, HighLow discussion: a 3000 s task on Hera loses about
	// 1500 s on average to a fail-stop error.
	got := TLost(9.46e-7, 3000)
	if math.Abs(got-1500) > 2 {
		t.Errorf("TLost(hera, 3000) = %g, want about 1500", got)
	}
}

func TestTLostSeriesMatchesDirect(t *testing.T) {
	// Around the series threshold both branches must agree.
	rate := 1e-7
	for _, w := range []float64{500, 999, 1000, 1001, 2000, 5000} {
		x := rate * w
		direct := 1/rate - w/math.Expm1(x)
		got := TLost(rate, w)
		if !almostEqual(got, direct, 1e-9) {
			t.Errorf("TLost(%g,%g) = %.15g, direct = %.15g", rate, w, got, direct)
		}
	}
}

func TestTLostBounds(t *testing.T) {
	// Conditional expected loss is in (0, w/2] for any positive rate: the
	// exponential density is decreasing, so the conditional mean is below
	// the midpoint.
	f := func(rate, w float64) bool {
		rate = math.Mod(math.Abs(rate), 1e-2)
		w = math.Mod(math.Abs(w), 1e6)
		if math.IsNaN(rate) || math.IsNaN(w) || w == 0 {
			return true
		}
		l := TLost(rate, w)
		return l >= 0 && l <= w/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLostMonotoneDecreasingInRate(t *testing.T) {
	w := 3000.0
	prev := math.Inf(1)
	for _, rate := range []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2} {
		l := TLost(rate, w)
		if l > prev+1e-9 {
			t.Fatalf("TLost increased at rate=%g: %g > %g", rate, l, prev)
		}
		prev = l
	}
}

func TestMTBF(t *testing.T) {
	if got := MTBF(9.46e-7); !almostEqual(got, 1.0570824524312896e6, 1e-12) {
		t.Errorf("MTBF = %g", got)
	}
	if !math.IsInf(MTBF(0), 1) {
		t.Error("MTBF(0) should be +Inf")
	}
	// Paper: Hera has a fail-stop MTBF of 12.2 days.
	days := MTBF(9.46e-7) / 86400
	if math.Abs(days-12.2) > 0.05 {
		t.Errorf("Hera MTBF = %.2f days, want about 12.2", days)
	}
	// and a silent-error MTBF of 3.4 days.
	days = MTBF(3.38e-6) / 86400
	if math.Abs(days-3.4) > 0.05 {
		t.Errorf("Hera silent MTBF = %.2f days, want about 3.4", days)
	}
}

func TestCheckRate(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := CheckRate(bad); err == nil {
			t.Errorf("CheckRate(%v) = nil, want error", bad)
		}
	}
	for _, good := range []float64{0, 1e-9, 1} {
		if err := CheckRate(good); err != nil {
			t.Errorf("CheckRate(%v) = %v, want nil", good, err)
		}
	}
}

func TestCheckDuration(t *testing.T) {
	for _, bad := range []float64{-0.5, math.NaN(), math.Inf(1)} {
		if err := CheckDuration(bad); err == nil {
			t.Errorf("CheckDuration(%v) = nil, want error", bad)
		}
	}
	if err := CheckDuration(25000); err != nil {
		t.Errorf("CheckDuration(25000) = %v", err)
	}
}

// Package expmath provides numerically careful primitives for the
// exponential-failure model shared by every component of chainckpt: the
// dynamic programs of internal/core, the exact schedule evaluators of
// internal/evaluate, and the Monte-Carlo simulator of internal/sim.
//
// All formulas stem from the assumption that fail-stop errors and silent
// errors arrive as independent Poisson processes with rates lambda_f and
// lambda_s (errors per second of computation). Probabilities are therefore
// of the form 1-exp(-lambda*w) and expected re-execution factors of the
// form exp(lambda*w); for realistic HPC platforms lambda*w is tiny (1e-6
// to 1e-2), so every function below is written with math.Expm1 to avoid
// catastrophic cancellation.
package expmath

import (
	"errors"
	"math"
)

// seriesThreshold is the lambda*w value below which TLost switches to its
// Taylor expansion. At 1e-4 the dropped x^3 term is below 1e-13 relative
// error while the direct formula already loses ~1e-12 to cancellation.
const seriesThreshold = 1e-4

// ErrInvalidRate reports a negative or non-finite error rate.
var ErrInvalidRate = errors.New("expmath: rate must be finite and non-negative")

// ErrInvalidDuration reports a negative or non-finite work duration.
var ErrInvalidDuration = errors.New("expmath: duration must be finite and non-negative")

// ProbError returns the probability 1 - exp(-rate*w) that at least one
// error strikes during w seconds of computation under a Poisson process
// with the given rate. It is the paper's p^f_{i,j} (resp. p^s_{i,j}) when
// called with lambda_f (resp. lambda_s) and w = W_{i,j}.
func ProbError(rate, w float64) float64 {
	return -math.Expm1(-rate * w)
}

// SurvivalProb returns exp(-rate*w), the probability that no error strikes
// during w seconds of computation.
func SurvivalProb(rate, w float64) float64 {
	return math.Exp(-rate * w)
}

// Growth returns exp(rate*w), the expected re-execution factor of a
// segment of length w that must be redone until it completes without an
// error of the given rate.
func Growth(rate, w float64) float64 {
	return math.Exp(rate * w)
}

// GrowthM1 returns exp(rate*w) - 1 without cancellation for small rate*w.
func GrowthM1(rate, w float64) float64 {
	return math.Expm1(rate * w)
}

// IntExpGrowth returns the integral of exp(rate*x) for x in [0,w], that is
// (exp(rate*w)-1)/rate, extended by continuity to w when rate == 0. It is
// the paper's term (e^{lambda_f W} - 1)/lambda_f appearing in Equation (4).
func IntExpGrowth(rate, w float64) float64 {
	if rate == 0 {
		return w
	}
	return math.Expm1(rate*w) / rate
}

// TLost returns the expected amount of work lost when a fail-stop error is
// known to strike during w seconds of computation (paper Equation (3)):
//
//	T^lost = 1/rate - w / (exp(rate*w) - 1)
//
// extended by continuity to w/2 when rate*w tends to 0. The value is the
// mean of an Exp(rate) variable conditioned to be smaller than w.
func TLost(rate, w float64) float64 {
	if w == 0 {
		return 0
	}
	x := rate * w
	if x < seriesThreshold {
		// 1/r - w/expm1(x) = w/2 - x*w/12 + x^3*w/720 - ...
		return w/2 - x*w/12
	}
	return 1/rate - w/math.Expm1(x)
}

// MTBF returns the mean time between errors, 1/rate, or +Inf if rate == 0.
func MTBF(rate float64) float64 {
	if rate == 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// CheckRate validates that rate is a usable Poisson rate.
func CheckRate(rate float64) error {
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
		return ErrInvalidRate
	}
	return nil
}

// CheckDuration validates that w is a usable amount of work (seconds).
func CheckDuration(w float64) error {
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return ErrInvalidDuration
	}
	return nil
}

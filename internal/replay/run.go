// Spec-driven execution: a Spec is the complete, replayable input of
// one supervised run — instance, seed, misspecification, fault plan —
// and Run/Replay turn it into recordings and equivalence checks. The
// chaos matrix is built on exactly this loop: run a spec with a
// scripted fault, recover, then re-run the same spec and demand the
// bytes match.
package replay

import (
	"context"
	"errors"
	"fmt"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/fault"
	"chainckpt/internal/platform"
	"chainckpt/internal/runtime"
	"chainckpt/internal/schedule"
)

// Spec is the full input of one recorded run. Replaying a spec —
// including its deterministic fault plan — reproduces the recording
// bit for bit.
type Spec struct {
	Chain    *chain.Chain
	Platform platform.Platform
	// Schedule fixes the placements; nil lets the supervisor plan one
	// with Algorithm (deterministic too, so still replayable).
	Schedule  *schedule.Schedule
	Algorithm core.Algorithm
	Costs     *platform.Costs
	// MaxDiskCheckpoints bounds the run's disk checkpoints (0 = none).
	MaxDiskCheckpoints int
	// Seed fixes the SimRunner's fault sequence.
	Seed uint64
	// ScaleF and ScaleS misspecify the true rates (0 = 1).
	ScaleF float64
	ScaleS float64
	// Adaptive enables suffix re-planning under Policy.
	Adaptive bool
	Policy   runtime.AdaptPolicy
	// Resume cold-starts from the latest valid checkpoint in Store —
	// the second life of a crash cell.
	Resume bool
	// Estimator seeds the rate estimators of a resumed life.
	Estimator *runtime.EstimatorState
	// Store is the checkpoint store (default: a fresh volatile one).
	// Crash cells pass a directory-backed store so the second life finds
	// what the first left behind.
	Store *runtime.Store
	// Faults is the scripted fault plan (nil = fault-free).
	Faults fault.Injector
	// MaxRollbacks caps recoveries (0 = supervisor default).
	MaxRollbacks int
}

func (s Spec) scales() (f, sc float64) {
	f, sc = s.ScaleF, s.ScaleS
	if f == 0 {
		f = 1
	}
	if sc == 0 {
		sc = 1
	}
	return f, sc
}

func (s Spec) meta() Meta {
	f, sc := s.scales()
	m := Meta{
		Seed: s.Seed, Algorithm: string(s.Algorithm), Runner: "sim",
		ScaleF: f, ScaleS: sc, Adaptive: s.Adaptive, Resume: s.Resume,
		ChainFingerprint: ChainFingerprint(s.Chain),
	}
	if s.Schedule != nil {
		m.ScheduleFingerprint = ScheduleFingerprint(s.Schedule)
	}
	return m
}

// Run executes the spec under sup and records it. When the run fails —
// an injected crash included — the partial recording captured up to
// the failure is returned alongside the error: a crashed life's frames
// and checkpoint digests are exactly what its replay must reproduce.
func Run(ctx context.Context, sup *runtime.Supervisor, spec Spec) (*Recording, error) {
	if spec.Chain == nil {
		return nil, fmt.Errorf("replay: spec has no chain")
	}
	store := spec.Store
	if store == nil {
		var err error
		if store, err = runtime.NewStore(""); err != nil {
			return nil, err
		}
	}
	f, sc := spec.scales()
	rec := NewRecorder(spec.meta())
	job := runtime.Job{
		Chain:              spec.Chain,
		Platform:           spec.Platform,
		Schedule:           spec.Schedule,
		Algorithm:          spec.Algorithm,
		Costs:              spec.Costs,
		MaxDiskCheckpoints: spec.MaxDiskCheckpoints,
		Runner:             runtime.NewMisspecifiedRunner(spec.Platform, f, sc, spec.Seed),
		Store:              store,
		Resume:             spec.Resume,
		Estimator:          spec.Estimator,
		Observer:           rec.Observe,
		Progress:           rec.Progress,
		Faults:             spec.Faults,
		MaxRollbacks:       spec.MaxRollbacks,
	}
	var rep *runtime.Report
	var runErr error
	if spec.Adaptive {
		rep, runErr = sup.RunAdaptive(ctx, job, spec.Policy)
	} else {
		rep, runErr = sup.Run(ctx, job)
	}
	recording, err := rec.Finish(rep, store)
	if err != nil {
		return nil, err
	}
	return recording, runErr
}

// Replay re-executes the spec and asserts equivalence with the
// recording want: the re-run must produce bit-identical canonical
// bytes. A recorded life that crashed (want.Report == nil) must crash
// again; a completed one must complete. The divergence, if any, is in
// the returned error; the re-run's recording is returned either way.
func Replay(ctx context.Context, sup *runtime.Supervisor, spec Spec, want *Recording) (*Recording, error) {
	got, err := Run(ctx, sup, spec)
	if err != nil {
		if !errors.Is(err, fault.ErrCrash) || got == nil {
			return got, fmt.Errorf("replay: re-run failed: %w", err)
		}
		if want.Report != nil {
			return got, fmt.Errorf("replay: recorded run completed but the re-run crashed: %w", err)
		}
	} else if want.Report == nil {
		return got, fmt.Errorf("replay: recorded run crashed but the re-run completed")
	}
	d, err := Diff(want, got)
	if err != nil {
		return got, err
	}
	if d != "" {
		return got, fmt.Errorf("replay: diverged from recording at %s", d)
	}
	return got, nil
}

// Package replay turns a supervised run into an event-sourced recording
// that can be re-executed to a bit-identical final state. A Recording
// captures everything the run's outcome depends on or produces: the
// identity of the instance (seed, algorithm, chain and schedule
// fingerprints), the full sim.TraceEvent stream in canonical order, the
// estimator snapshot at every committed disk checkpoint, the content
// digest of every checkpoint in the disk tier, the job-store lifecycle
// records (normalized modulo identity and timestamps), and the final
// Report (normalized modulo wall clock).
//
// The determinism this leans on is structural: a SimRunner's fault
// sequence is a pure function of its seed, the supervisor executes one
// run on one goroutine, and the planners are deterministic — so
// re-running a Spec (including its scripted fault plan, see
// internal/fault) reproduces the recording byte for byte. Diff pins the
// first divergence when it doesn't; the chaos matrix asserts it never
// does.
package replay

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"chainckpt/internal/chain"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/runtime"
	"chainckpt/internal/schedule"
	"chainckpt/internal/sim"
)

// Meta stamps a recording with the identity of the run: everything a
// replay needs to recognize (not reconstruct) the instance. It carries
// no job id and no timestamps, so two executions of the same instance
// produce identical metas.
type Meta struct {
	// Seed is the task runner's RNG seed — the whole fault sequence.
	Seed uint64 `json:"seed"`
	// Algorithm planned the schedule.
	Algorithm string `json:"algorithm,omitempty"`
	// Runner names the task runner kind (sim, nop, sleep).
	Runner string `json:"runner,omitempty"`
	// ScaleF and ScaleS are the true-rate misspecification factors of a
	// sim runner (1 = well-specified; 0 when not applicable).
	ScaleF float64 `json:"scale_f,omitempty"`
	ScaleS float64 `json:"scale_s,omitempty"`
	// Adaptive records whether mid-run suffix re-planning was enabled.
	Adaptive bool `json:"adaptive,omitempty"`
	// Resume records whether the run cold-started from a restored disk
	// checkpoint.
	Resume bool `json:"resume,omitempty"`
	// ChainFingerprint and ScheduleFingerprint identify the instance;
	// see ChainFingerprint and ScheduleFingerprint.
	ChainFingerprint    string `json:"chain_fingerprint,omitempty"`
	ScheduleFingerprint string `json:"schedule_fingerprint,omitempty"`
	// Instance is the engine's canonical planning-request fingerprint
	// when the recording came from a service job.
	Instance string `json:"instance_fingerprint,omitempty"`
}

// Frame is one recorded event: the supervisor's trace event plus its
// sequence number in the run.
type Frame struct {
	Seq int `json:"seq"`
	sim.TraceEvent
}

// Snapshot is the estimator evidence at one committed disk checkpoint —
// what the durable progress hook would persist — plus the fingerprint of
// the schedule executing at that moment (which adaptive splices change
// mid-run).
type Snapshot struct {
	Boundary            int                    `json:"boundary"`
	Estimator           runtime.EstimatorState `json:"estimator"`
	ScheduleFingerprint string                 `json:"schedule_fingerprint,omitempty"`
}

// Recording is the event-sourced capture of one supervised run (or one
// life of it, when the run was cut short by a crash: Report is nil
// then).
type Recording struct {
	Meta      Meta       `json:"meta"`
	Frames    []Frame    `json:"frames"`
	Snapshots []Snapshot `json:"snapshots,omitempty"`
	// Checkpoints digests the disk tier as the run left it.
	Checkpoints []runtime.CheckpointDigest `json:"checkpoints,omitempty"`
	// Journal holds the job-store lifecycle records of the run in
	// transition order, normalized by NormalizeRecord.
	Journal []jobstore.Record `json:"journal,omitempty"`
	// Report is the run's final report, normalized modulo wall clock
	// (Wall zeroed, Trace dropped — the frames are the trace). Nil when
	// the recorded life crashed before completing.
	Report *runtime.Report `json:"report,omitempty"`
}

// Canonical renders the recording in its canonical byte form: compact
// JSON with fields in declaration order and a trailing newline. Equal
// recordings — and only equal recordings — produce equal bytes, which
// is the equivalence every replay assertion reduces to.
func (r *Recording) Canonical() ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("replay: canonical encoding: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses a canonical recording.
func Decode(data []byte) (*Recording, error) {
	var rec Recording
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("replay: decode recording: %w", err)
	}
	return &rec, nil
}

// Diff compares two recordings and describes their first divergence;
// the empty string means the canonical forms are bit-identical.
func Diff(a, b *Recording) (string, error) {
	ca, err := a.Canonical()
	if err != nil {
		return "", err
	}
	cb, err := b.Canonical()
	if err != nil {
		return "", err
	}
	if bytes.Equal(ca, cb) {
		return "", nil
	}
	if d := diffJSON("meta", a.Meta, b.Meta); d != "" {
		return d, nil
	}
	for i := 0; i < len(a.Frames) || i < len(b.Frames); i++ {
		switch {
		case i >= len(a.Frames):
			return fmt.Sprintf("frame %d: only in second recording: %+v", i, b.Frames[i]), nil
		case i >= len(b.Frames):
			return fmt.Sprintf("frame %d: only in first recording: %+v", i, a.Frames[i]), nil
		case a.Frames[i] != b.Frames[i]:
			return fmt.Sprintf("frame %d: %+v != %+v", i, a.Frames[i], b.Frames[i]), nil
		}
	}
	if d := diffJSON("snapshots", a.Snapshots, b.Snapshots); d != "" {
		return d, nil
	}
	if d := diffJSON("checkpoints", a.Checkpoints, b.Checkpoints); d != "" {
		return d, nil
	}
	if d := diffJSON("journal", a.Journal, b.Journal); d != "" {
		return d, nil
	}
	if d := diffJSON("report", a.Report, b.Report); d != "" {
		return d, nil
	}
	return "recordings differ (unlocalized)", nil
}

func diffJSON(section string, a, b any) string {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if bytes.Equal(ja, jb) {
		return ""
	}
	return fmt.Sprintf("%s: %s != %s", section, ja, jb)
}

// Recorder captures a run as it executes: wire Observe into
// Job.Observer, Progress into Job.Progress (chaining the service's own
// hooks around them), and Lifecycle into the job store's transition
// path; then seal with Finish. All methods are safe for concurrent use.
type Recorder struct {
	mu  sync.Mutex
	rec Recording
}

// NewRecorder starts a recording stamped with meta.
func NewRecorder(meta Meta) *Recorder {
	return &Recorder{rec: Recording{Meta: meta}}
}

// Observe appends one trace event.
func (r *Recorder) Observe(ev sim.TraceEvent) {
	r.mu.Lock()
	r.rec.Frames = append(r.rec.Frames, Frame{Seq: len(r.rec.Frames), TraceEvent: ev})
	r.mu.Unlock()
}

// Progress appends one estimator snapshot — call it from Job.Progress,
// which the supervisor invokes synchronously after every committed disk
// checkpoint (the schedule must be fingerprinted before the hook
// returns; the supervisor may splice it right after).
func (r *Recorder) Progress(boundary int, est runtime.EstimatorState, sched *schedule.Schedule) {
	snap := Snapshot{Boundary: boundary, Estimator: est}
	if sched != nil {
		snap.ScheduleFingerprint = ScheduleFingerprint(sched)
	}
	r.mu.Lock()
	r.rec.Snapshots = append(r.rec.Snapshots, snap)
	r.mu.Unlock()
}

// Lifecycle appends one job-store record, normalized so recordings of
// identical instances compare equal (see NormalizeRecord).
func (r *Recorder) Lifecycle(rec jobstore.Record) {
	norm := NormalizeRecord(rec)
	r.mu.Lock()
	r.rec.Journal = append(r.rec.Journal, norm)
	r.mu.Unlock()
}

// Checkpoints digests the disk tier of store into the recording now.
// Services that destroy a finished job's checkpoint directory before
// the recording is sealed call this right after the run returns, then
// Finish with a nil store (which keeps these digests).
func (r *Recorder) Checkpoints(store *runtime.Store) error {
	digests, err := store.Digests()
	if err != nil {
		return fmt.Errorf("replay: checkpoint digests: %w", err)
	}
	r.mu.Lock()
	r.rec.Checkpoints = digests
	r.mu.Unlock()
	return nil
}

// Finish seals the recording: the report (nil when the life crashed) is
// normalized in, and the disk tier of store (when given) is digested as
// the run left it. The recorder must not be reused after Finish.
func (r *Recorder) Finish(rep *runtime.Report, store *runtime.Store) (*Recording, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rep != nil {
		norm := *rep
		norm.Wall = 0
		norm.Trace = nil
		if norm.FinalSchedule != nil {
			norm.FinalSchedule = norm.FinalSchedule.Clone()
		}
		r.rec.Report = &norm
	}
	if store != nil {
		digests, err := store.Digests()
		if err != nil {
			return nil, fmt.Errorf("replay: finish: %w", err)
		}
		r.rec.Checkpoints = digests
	}
	out := r.rec
	return &out, nil
}

// NormalizeRecord strips run identity and wall-clock artifacts from a
// lifecycle record — id, sequence number, timestamps, and the wall
// field buried in the report payload — leaving exactly the fields two
// executions of the same instance must agree on. This is the "same
// journal contents modulo timestamps" equivalence of the replay
// contract.
func NormalizeRecord(rec jobstore.Record) jobstore.Record {
	rec.ID = ""
	rec.Seq = 0
	rec.CreatedAt = time.Time{}
	rec.UpdatedAt = time.Time{}
	if len(rec.Report) > 0 {
		var rep runtime.Report
		if err := json.Unmarshal(rec.Report, &rep); err == nil {
			rep.Wall = 0
			rep.Trace = nil
			if b, err := json.Marshal(&rep); err == nil {
				rec.Report = b
			}
		}
	}
	return rec
}

// ChainFingerprint hashes a chain's canonical encoding: task count,
// then each task's weight bits and name.
func ChainFingerprint(c *chain.Chain) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(c.Len()))
	h.Write(buf[:])
	for i := 1; i <= c.Len(); i++ {
		t := c.Task(i)
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(t.Weight))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(len(t.Name)))
		h.Write(buf[:])
		h.Write([]byte(t.Name))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// ScheduleFingerprint hashes a schedule's canonical JSON form.
func ScheduleFingerprint(s *schedule.Schedule) string {
	b, err := json.Marshal(s)
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%x", sha256.Sum256(b))
}

package replay

import (
	"bytes"
	"context"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/runtime"
	"chainckpt/internal/workload"
)

// chaosPlatform is hot enough that a seeded run contains fail-stops,
// silent detections and rollbacks — the regime where determinism is
// worth asserting.
func chaosPlatform() platform.Platform {
	return platform.Platform{
		Name: "ReplayLab", LambdaF: 1e-4, LambdaS: 4e-4,
		CD: 100, CM: 10, RD: 100, RM: 10, VStar: 10, V: 0.1, Recall: 0.8,
	}
}

func testSpec(t *testing.T, seed uint64) Spec {
	t.Helper()
	c, err := workload.Uniform(24, 24000)
	if err != nil {
		t.Fatal(err)
	}
	p := chaosPlatform()
	res, err := core.Plan(core.AlgADMVStar, c, p)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Chain: c, Platform: p, Schedule: res.Schedule, Algorithm: core.AlgADMVStar,
		Seed: seed, ScaleF: 2, ScaleS: 2,
	}
}

func TestRecordThenReplayIsBitIdentical(t *testing.T) {
	sup := runtime.New(runtime.Options{})
	for _, seed := range []uint64{1, 7, 42} {
		spec := testSpec(t, seed)
		want, err := Run(context.Background(), sup, spec)
		if err != nil {
			t.Fatalf("seed %d: record: %v", seed, err)
		}
		if len(want.Frames) == 0 || want.Report == nil {
			t.Fatalf("seed %d: empty recording", seed)
		}
		if want.Report.Seed != seed {
			t.Fatalf("seed %d: report carries seed %d", seed, want.Report.Seed)
		}
		if len(want.Snapshots) == 0 {
			t.Fatalf("seed %d: no estimator snapshots recorded (no disk checkpoint committed?)", seed)
		}
		if len(want.Checkpoints) == 0 {
			t.Fatalf("seed %d: no checkpoint digests recorded", seed)
		}
		got, err := Replay(context.Background(), sup, spec, want)
		if err != nil {
			t.Fatalf("seed %d: %v\nrepro: go test ./internal/replay -run TestRecordThenReplayIsBitIdentical (seed %d)", seed, err, seed)
		}
		ca, _ := want.Canonical()
		cb, _ := got.Canonical()
		if !bytes.Equal(ca, cb) {
			t.Fatalf("seed %d: Replay returned nil error but bytes differ", seed)
		}
	}
}

func TestAdaptiveRecordReplay(t *testing.T) {
	spec := testSpec(t, 11)
	spec.Adaptive = true
	sup := runtime.New(runtime.Options{})
	want, err := Run(context.Background(), sup, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(context.Background(), sup, spec, want); err != nil {
		t.Fatalf("adaptive replay diverged: %v", err)
	}
}

func TestDiffPinsFirstDivergence(t *testing.T) {
	sup := runtime.New(runtime.Options{})
	spec := testSpec(t, 3)
	a, err := Run(context.Background(), sup, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Same instance, different seed: must diverge, and the diff must say
	// where.
	spec2 := spec
	spec2.Seed = 4
	b, err := Run(context.Background(), sup, spec2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d == "" {
		t.Fatal("different seeds produced identical recordings")
	}

	// A single mutated frame is localized exactly.
	c, err := Run(context.Background(), sup, spec)
	if err != nil {
		t.Fatal(err)
	}
	c.Frames[5].Pos++
	d, err = Diff(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if d == "" {
		t.Fatal("mutated frame not detected")
	}
	if want := "frame 5"; !bytes.Contains([]byte(d), []byte(want)) {
		t.Fatalf("diff %q does not name the mutated frame", d)
	}
}

func TestCanonicalDecodeRoundTrip(t *testing.T) {
	sup := runtime.New(runtime.Options{})
	rec, err := Run(context.Background(), sup, testSpec(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := rec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := dec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("canonical form not stable under decode/encode")
	}
	if d, err := Diff(rec, dec); err != nil || d != "" {
		t.Fatalf("decoded recording differs: %q (%v)", d, err)
	}
}

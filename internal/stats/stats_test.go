package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Errorf("single value: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		cut := rng.Intn(n + 1)
		var all, a, b Welford
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*10 + 3
			all.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-9 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(b) // empty into empty
	if a.N() != 0 {
		t.Error("merging empties should stay empty")
	}
	b.Add(5)
	a.Merge(b) // non-empty into empty
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge into empty: %v", a.String())
	}
	var c Welford
	a.Merge(c) // empty into non-empty
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge of empty changed state: %v", a.String())
	}
}

func TestHalfWidthShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Welford
	for i := 0; i < 100; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.HalfWidth(Z95) >= small.HalfWidth(Z95) {
		t.Error("confidence interval should shrink with more samples")
	}
}

func TestCoverage95(t *testing.T) {
	// The 95% CI should contain the true mean about 95% of the time.
	rng := rand.New(rand.NewSource(42))
	trials, covered := 400, 0
	for trial := 0; trial < trials; trial++ {
		var w Welford
		for i := 0; i < 400; i++ {
			w.Add(rng.ExpFloat64()) // true mean 1
		}
		h := w.HalfWidth(Z95)
		if math.Abs(w.Mean()-1) <= h {
			covered++
		}
	}
	frac := float64(covered) / float64(trials)
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("95%% CI coverage = %v", frac)
	}
}

func TestString(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	if s := w.String(); !strings.Contains(s, "n=2") {
		t.Errorf("String = %q", s)
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	want := []int64{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Bins[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Bins[i], c)
		}
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0)) // just below the top edge
	if h.Bins[2] != 1 || h.Over != 0 {
		t.Errorf("top-edge value misplaced: %+v", h)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(0, 10, 2)
	b, _ := NewHistogram(0, 10, 2)
	a.Add(1)
	b.Add(6)
	b.Add(-5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Bins[0] != 1 || a.Bins[1] != 1 || a.Under != 1 {
		t.Errorf("merge result: %+v", a)
	}
	c, _ := NewHistogram(0, 5, 2)
	if err := a.Merge(c); err == nil {
		t.Error("mismatched geometry should fail")
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

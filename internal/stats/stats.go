// Package stats provides the streaming statistics used to aggregate
// Monte-Carlo simulation results: Welford's online mean/variance with
// exact parallel merging, normal-approximation confidence intervals, and
// fixed-bin histograms.
package stats

import (
	"fmt"
	"math"
)

// Welford accumulates mean and variance in a numerically stable single
// pass. The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into this one (Chan et al.'s parallel
// update), so per-worker accumulators can be combined exactly.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += o.m2 + delta*delta*n1*n2/total
	w.n += o.n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (0 for fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// HalfWidth returns the half-width of the normal-approximation confidence
// interval at the given z value (1.96 for 95%, 2.58 for 99%).
func (w *Welford) HalfWidth(z float64) float64 { return z * w.StdErr() }

// String renders a compact summary.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g [%.6g, %.6g]",
		w.n, w.Mean(), w.StdDev(), w.min, w.max)
}

// Z95 and Z99 are the usual two-sided normal quantiles.
const (
	Z95 = 1.959963984540054
	Z99 = 2.5758293035489004
)

// Histogram counts observations into uniform bins over [Lo, Hi);
// observations outside the range go to the Under/Over counters.
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
	Under  int64
	Over   int64
}

// NewHistogram builds a histogram with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if !(lo < hi) || bins < 1 {
		return nil, fmt.Errorf("stats: invalid histogram range [%g, %g) with %d bins", lo, hi, bins)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, bins)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Bins) { // guard against rounding at the top edge
			i--
		}
		h.Bins[i]++
	}
}

// Total returns the number of observations inside the range.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Bins {
		t += c
	}
	return t
}

// Merge adds another histogram with identical geometry.
func (h *Histogram) Merge(o *Histogram) error {
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Bins) != len(h.Bins) {
		return fmt.Errorf("stats: histogram geometries differ")
	}
	for i, c := range o.Bins {
		h.Bins[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	return nil
}

package dag

import (
	"fmt"
	"math"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
)

// Result is a planned serialization of a workflow DAG.
type Result struct {
	// Strategy is the linearization that won (or "exhaustive").
	Strategy Strategy
	// Order is the serialized task sequence by ID.
	Order []string
	// Plan is the optimal chain plan for that serialization.
	Plan *core.Result
}

// Plan serializes the DAG with every given strategy (all of them when
// strategies is nil), runs the chain dynamic program on each
// serialization, and returns the best combination.
func Plan(alg core.Algorithm, g *Graph, p platform.Platform, strategies []Strategy) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if strategies == nil {
		strategies = Strategies()
	}
	if len(strategies) == 0 {
		return nil, fmt.Errorf("dag: no strategies given")
	}
	var best *Result
	for _, s := range strategies {
		order, err := g.Linearize(s)
		if err != nil {
			return nil, err
		}
		c, err := g.ChainFor(order)
		if err != nil {
			return nil, err
		}
		res, err := core.Plan(alg, c, p)
		if err != nil {
			return nil, fmt.Errorf("dag: strategy %s: %w", s, err)
		}
		if best == nil || res.ExpectedMakespan < best.Plan.ExpectedMakespan {
			best = &Result{Strategy: s, Order: g.IDs(order), Plan: res}
		}
	}
	return best, nil
}

// OptimalOrder exhaustively searches every topological order (bounded by
// maxOrders) and returns the globally optimal serialization: the
// yardstick the strategies are measured against on small workflows.
func OptimalOrder(alg core.Algorithm, g *Graph, p platform.Platform, maxOrders int) (*Result, error) {
	orders, err := g.AllOrders(maxOrders)
	if err != nil {
		return nil, err
	}
	best := math.Inf(1)
	var out *Result
	for _, order := range orders {
		c, err := g.ChainFor(order)
		if err != nil {
			return nil, err
		}
		res, err := core.Plan(alg, c, p)
		if err != nil {
			return nil, err
		}
		if res.ExpectedMakespan < best {
			best = res.ExpectedMakespan
			out = &Result{Strategy: "exhaustive", Order: g.IDs(order), Plan: res}
		}
	}
	return out, nil
}

package dag

import (
	"fmt"
	"math"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/platform"
)

// Result is a planned serialization of a workflow DAG.
type Result struct {
	// Strategy is the linearization that won (or "exhaustive").
	Strategy Strategy
	// Order is the serialized task sequence by ID.
	Order []string
	// Plan is the optimal chain plan for that serialization.
	Plan *core.Result
	// Solves and Memoized count the chain dynamic programs actually run
	// versus the candidate orders served from the search's weight-vector
	// memo: the chain DP depends only on the weight sequence, so two
	// linearizations that permute equal-weight tasks into the same
	// sequence cost one solve. On workflows with repeated task shapes
	// (map-reduce stages, parameter sweeps) Memoized dominates.
	Solves   int
	Memoized int
}

// search runs chain solves for candidate linearizations of one (alg,
// platform) instance. All candidates share one solver kernel — the
// scratch arenas of a solve are recycled into the next — and a memo
// keyed by the exact weight sequence, since the chain DP cannot tell two
// orders apart that serialize to the same weights.
type search struct {
	k        *core.Kernel
	alg      core.Algorithm
	p        platform.Platform
	memo     map[string]*core.Result
	solves   int
	memoized int
}

func newSearch(alg core.Algorithm, p platform.Platform) *search {
	return &search{k: core.DefaultKernel(), alg: alg, p: p, memo: make(map[string]*core.Result)}
}

// weightKey is the memo key: the raw IEEE-754 bits of the weight
// sequence, so distinct values never collide and equal sequences always
// hit.
func weightKey(c *chain.Chain) string {
	buf := make([]byte, 8*c.Len())
	for i := 1; i <= c.Len(); i++ {
		bits := math.Float64bits(c.Weight(i))
		for b := 0; b < 8; b++ {
			buf[(i-1)*8+b] = byte(bits >> (8 * b))
		}
	}
	return string(buf)
}

func (s *search) plan(c *chain.Chain) (*core.Result, error) {
	key := weightKey(c)
	if res, ok := s.memo[key]; ok {
		s.memoized++
		return res, nil
	}
	res, err := s.k.Plan(s.alg, c, s.p)
	if err != nil {
		return nil, err
	}
	s.memo[key] = res
	s.solves++
	return res, nil
}

// Plan serializes the DAG with every given strategy (all of them when
// strategies is nil), runs the chain dynamic program on each
// serialization, and returns the best combination. The strategies share
// one solver kernel and skip re-solving serializations with identical
// weight sequences.
func Plan(alg core.Algorithm, g *Graph, p platform.Platform, strategies []Strategy) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if strategies == nil {
		strategies = Strategies()
	}
	if len(strategies) == 0 {
		return nil, fmt.Errorf("dag: no strategies given")
	}
	sr := newSearch(alg, p)
	var best *Result
	for _, s := range strategies {
		order, err := g.Linearize(s)
		if err != nil {
			return nil, err
		}
		c, err := g.ChainFor(order)
		if err != nil {
			return nil, err
		}
		res, err := sr.plan(c)
		if err != nil {
			return nil, fmt.Errorf("dag: strategy %s: %w", s, err)
		}
		if best == nil || res.ExpectedMakespan < best.Plan.ExpectedMakespan {
			best = &Result{Strategy: s, Order: g.IDs(order), Plan: res}
		}
	}
	best.Solves, best.Memoized = sr.solves, sr.memoized
	return best, nil
}

// OptimalOrder exhaustively searches every topological order (bounded by
// maxOrders) and returns the globally optimal serialization: the
// yardstick the strategies are measured against on small workflows. The
// weight-vector memo pays off most here — on graphs with equal-weight
// tasks, whole families of topological orders collapse onto one solve.
func OptimalOrder(alg core.Algorithm, g *Graph, p platform.Platform, maxOrders int) (*Result, error) {
	orders, err := g.AllOrders(maxOrders)
	if err != nil {
		return nil, err
	}
	sr := newSearch(alg, p)
	best := math.Inf(1)
	var out *Result
	for _, order := range orders {
		c, err := g.ChainFor(order)
		if err != nil {
			return nil, err
		}
		res, err := sr.plan(c)
		if err != nil {
			return nil, err
		}
		if res.ExpectedMakespan < best {
			best = res.ExpectedMakespan
			out = &Result{Strategy: "exhaustive", Order: g.IDs(order), Plan: res}
		}
	}
	if out != nil {
		out.Solves, out.Memoized = sr.solves, sr.memoized
	}
	return out, nil
}

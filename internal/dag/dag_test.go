package dag

import (
	"math/rand"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
)

// diamond builds a fork-join: src -> {a, b} -> sink.
func diamond(t *testing.T, wa, wb float64) *Graph {
	t.Helper()
	g := New()
	for _, n := range []struct {
		id string
		w  float64
	}{{"src", 1000}, {"a", wa}, {"b", wb}, {"sink", 1000}} {
		if err := g.AddNode(n.id, n.w); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"src", "a"}, {"src", "b"}, {"a", "sink"}, {"b", "sink"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGraphConstruction(t *testing.T) {
	g := New()
	if err := g.AddNode("", 1); err == nil {
		t.Error("empty id should fail")
	}
	if err := g.AddNode("a", -1); err == nil {
		t.Error("negative weight should fail")
	}
	if err := g.AddNode("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a", 2); err == nil {
		t.Error("duplicate id should fail")
	}
	if err := g.AddEdge("a", "zz"); err == nil {
		t.Error("unknown node should fail")
	}
	if err := g.AddEdge("a", "a"); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddNode("b", 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Errorf("duplicate edge should be idempotent: %v", err)
	}
	if g.Len() != 2 || g.TotalWeight() != 3 {
		t.Errorf("Len=%d TotalWeight=%g", g.Len(), g.TotalWeight())
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		if err := g.AddNode(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	if err := g.Validate(); err == nil {
		t.Error("cycle must be detected")
	}
	if _, err := g.AllOrders(100); err == nil {
		t.Error("AllOrders must reject cycles")
	}
}

func TestLinearizationsRespectPrecedence(t *testing.T) {
	// Random DAGs: every strategy must produce a valid topological order
	// covering all tasks.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := New()
		n := 2 + rng.Intn(12)
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = string(rune('A' + i))
			if err := g.AddNode(ids[i], rng.Float64()*1000); err != nil {
				t.Fatal(err)
			}
		}
		// Edges only forward in insertion order: acyclic by construction.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					if err := g.AddEdge(ids[i], ids[j]); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		for _, s := range Strategies() {
			order, err := g.Linearize(s)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s, err)
			}
			if len(order) != n {
				t.Fatalf("trial %d %s: order covers %d of %d", trial, s, len(order), n)
			}
			if !g.respectsPrecedence(order) {
				t.Fatalf("trial %d %s: precedence violated: %v", trial, s, order)
			}
		}
	}
}

func TestStrategyOrdersOnDiamond(t *testing.T) {
	g := diamond(t, 5000, 100)
	heavy, err := g.Linearize(StrategyHeavyFirst)
	if err != nil {
		t.Fatal(err)
	}
	if ids := g.IDs(heavy); ids[1] != "a" {
		t.Errorf("heavy-first should run a before b: %v", ids)
	}
	light, err := g.Linearize(StrategyLightFirst)
	if err != nil {
		t.Fatal(err)
	}
	if ids := g.IDs(light); ids[1] != "b" {
		t.Errorf("light-first should run b before a: %v", ids)
	}
}

func TestChainForPreservesWeightsAndNames(t *testing.T) {
	g := diamond(t, 5000, 100)
	order, err := g.Linearize(StrategyFIFO)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.ChainFor(order)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 || c.TotalWeight() != g.TotalWeight() {
		t.Errorf("chain mismatch: %v", c)
	}
	if c.Task(1).Name != "src" {
		t.Errorf("first task = %q", c.Task(1).Name)
	}
	if _, err := g.ChainFor(order[:2]); err == nil {
		t.Error("partial order should fail")
	}
}

func TestAllOrdersDiamond(t *testing.T) {
	g := diamond(t, 10, 20)
	orders, err := g.AllOrders(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(orders) != 2 { // src (a b | b a) sink
		t.Fatalf("diamond has %d orders, want 2", len(orders))
	}
	for _, o := range orders {
		if !g.respectsPrecedence(o) {
			t.Errorf("invalid enumerated order %v", o)
		}
	}
	// Limit must trip on larger graphs.
	wide := New()
	for i := 0; i < 8; i++ {
		wide.AddNode(string(rune('a'+i)), 1)
	}
	if _, err := wide.AllOrders(100); err == nil {
		t.Error("8 independent tasks have 40320 orders; limit must trip")
	}
}

func TestPlanPicksBestStrategy(t *testing.T) {
	// A skewed diamond on a failure-prone platform: the serialization
	// matters, and Plan must return the best of the strategy set with a
	// valid chain plan attached.
	g := diamond(t, 20000, 400)
	p := platform.Hera()
	p.LambdaF *= 50
	p.LambdaS *= 50
	res, err := Plan(core.AlgADMVStar, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 4 || res.Plan == nil {
		t.Fatalf("bad result: %+v", res)
	}
	// Every single strategy must be >= the combined best.
	for _, s := range Strategies() {
		single, err := Plan(core.AlgADMVStar, g, p, []Strategy{s})
		if err != nil {
			t.Fatal(err)
		}
		if single.Plan.ExpectedMakespan < res.Plan.ExpectedMakespan*(1-1e-12) {
			t.Errorf("strategy %s (%f) beats the combined best (%f)",
				s, single.Plan.ExpectedMakespan, res.Plan.ExpectedMakespan)
		}
	}
}

func TestStrategiesMatchExhaustiveOnSmallDAGs(t *testing.T) {
	// On small random DAGs the best strategy should stay close to the
	// exhaustive-optimal serialization (and never beat it).
	rng := rand.New(rand.NewSource(11))
	p := platform.Hera()
	p.LambdaF *= 80
	p.LambdaS *= 80
	worst := 0.0
	for trial := 0; trial < 5; trial++ {
		g := New()
		n := 4 + rng.Intn(3)
		for i := 0; i < n; i++ {
			g.AddNode(string(rune('a'+i)), 500+rng.Float64()*8000)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.45 {
					g.AddEdge(string(rune('a'+i)), string(rune('a'+j)))
				}
			}
		}
		best, err := Plan(core.AlgADMVStar, g, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := OptimalOrder(core.AlgADMVStar, g, p, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if best.Plan.ExpectedMakespan < opt.Plan.ExpectedMakespan*(1-1e-12) {
			t.Fatalf("trial %d: strategies beat the exhaustive optimum", trial)
		}
		gap := best.Plan.ExpectedMakespan/opt.Plan.ExpectedMakespan - 1
		if gap > worst {
			worst = gap
		}
		if gap > 0.05 {
			t.Errorf("trial %d: strategy gap %.4f above 5%%", trial, gap)
		}
	}
	t.Logf("worst strategy gap vs exhaustive serialization: %.5f", worst)
}

func TestChainDegenerateDAGMatchesChainPlanner(t *testing.T) {
	// A path graph must reproduce the plain chain result exactly.
	g := New()
	weights := []float64{4000, 6000, 3000, 7000, 5000}
	for i, w := range weights {
		g.AddNode(string(rune('a'+i)), w)
	}
	for i := 0; i+1 < len(weights); i++ {
		g.AddEdge(string(rune('a'+i)), string(rune('a'+i+1)))
	}
	p := platform.Atlas()
	res, err := Plan(core.AlgADMV, g, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.ChainFor([]int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.ExpectedMakespan != direct.ExpectedMakespan {
		t.Errorf("path DAG %f vs chain %f", res.Plan.ExpectedMakespan, direct.ExpectedMakespan)
	}
}

// TestSearchMemoSkipsIdenticalWeightSequences: the chain DP depends only
// on the serialized weight sequence, so a search over linearizations of
// an equal-weight graph must collapse onto a handful of solves.
func TestSearchMemoSkipsIdenticalWeightSequences(t *testing.T) {
	// A 2x3 grid of equal-weight tasks has many topological orders but
	// exactly one weight sequence.
	g := New()
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for _, id := range ids {
		if err := g.AddNode(id, 1000); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"d", "e"}, {"e", "f"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p := platform.Hera()
	p.LambdaF *= 50
	p.LambdaS *= 50

	res, err := OptimalOrder(core.AlgADMVStar, g, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solves != 1 {
		t.Errorf("equal-weight grid ran %d solves, want 1 (all orders share one weight sequence)", res.Solves)
	}
	if res.Memoized == 0 {
		t.Errorf("no memo hits over %d+%d candidate orders", res.Solves, res.Memoized)
	}
	t.Logf("exhaustive search: %d solves, %d memoized orders", res.Solves, res.Memoized)

	// Distinct weights keep every order distinct: the memo must not
	// conflate them.
	g2 := New()
	for i, id := range ids {
		if err := g2.AddNode(id, 1000+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"d", "e"}, {"e", "f"}} {
		if err := g2.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res2, err := OptimalOrder(core.AlgADMVStar, g2, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Memoized != 0 {
		t.Errorf("distinct-weight grid hit the memo %d times", res2.Memoized)
	}
	if res2.Solves < 2 {
		t.Errorf("distinct-weight grid ran only %d solves", res2.Solves)
	}
}

// BenchmarkDAGPlan measures the linearization search: two parallel
// pipelines of six stages each, all strategies, sharing one kernel and
// the weight-sequence memo.
func BenchmarkDAGPlan(b *testing.B) {
	g := New()
	for pipe := 0; pipe < 2; pipe++ {
		prev := ""
		for stage := 0; stage < 6; stage++ {
			id := string(rune('a'+pipe)) + string(rune('0'+stage))
			if err := g.AddNode(id, 1000+float64(200*pipe+50*stage)); err != nil {
				b.Fatal(err)
			}
			if prev != "" {
				if err := g.AddEdge(prev, id); err != nil {
					b.Fatal(err)
				}
			}
			prev = id
		}
	}
	p := platform.Hera()
	p.LambdaF *= 50
	p.LambdaS *= 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Plan(core.AlgADMVStar, g, p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// Package dag extends the paper's linear-chain planner toward its stated
// future work: general application workflows. It adopts the paper's own
// simplified scenario (Section V: "each task requires the entire platform
// to execute"), under which a DAG executes sequentially in some
// topological order — so resilience planning decomposes into choosing a
// linearization and then running the exact chain dynamic programs on it.
//
// The package provides the DAG model, several linearization strategies,
// exhaustive enumeration of topological orders for small graphs (the
// optimality yardstick), and planning that searches over strategies.
// Choosing the best linearization is where the general problem's hardness
// lives (checkpoint placement on restricted DAGs is already NP-hard,
// paper reference [1]); the strategies here are heuristics in exactly the
// sense the paper's conclusion calls for.
package dag

import (
	"fmt"
	"sort"

	"chainckpt/internal/chain"
)

// Node is one task of the workflow.
type Node struct {
	ID     string
	Weight float64
}

// Graph is a directed acyclic task graph. Build it with AddNode/AddEdge;
// Validate (or any traversal) reports cycles.
type Graph struct {
	nodes []Node
	index map[string]int
	succs [][]int
	preds [][]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddNode adds a task with the given unique ID and weight.
func (g *Graph) AddNode(id string, weight float64) error {
	if id == "" {
		return fmt.Errorf("dag: empty node id")
	}
	if _, dup := g.index[id]; dup {
		return fmt.Errorf("dag: duplicate node %q", id)
	}
	if weight < 0 || weight != weight {
		return fmt.Errorf("dag: node %q has invalid weight %v", id, weight)
	}
	g.index[id] = len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, Weight: weight})
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return nil
}

// AddEdge adds the precedence constraint from -> to.
func (g *Graph) AddEdge(from, to string) error {
	fi, ok := g.index[from]
	if !ok {
		return fmt.Errorf("dag: unknown node %q", from)
	}
	ti, ok := g.index[to]
	if !ok {
		return fmt.Errorf("dag: unknown node %q", to)
	}
	if fi == ti {
		return fmt.Errorf("dag: self-loop on %q", from)
	}
	for _, s := range g.succs[fi] {
		if s == ti {
			return nil // idempotent
		}
	}
	g.succs[fi] = append(g.succs[fi], ti)
	g.preds[ti] = append(g.preds[ti], fi)
	return nil
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the i-th node (insertion order).
func (g *Graph) Node(i int) Node { return g.nodes[i] }

// TotalWeight returns the sum of all task weights.
func (g *Graph) TotalWeight() float64 {
	t := 0.0
	for _, n := range g.nodes {
		t += n.Weight
	}
	return t
}

// Validate checks that the graph is non-empty and acyclic.
func (g *Graph) Validate() error {
	if g.Len() == 0 {
		return fmt.Errorf("dag: empty graph")
	}
	if _, err := g.Linearize(StrategyFIFO); err != nil {
		return err
	}
	return nil
}

// Strategy names a linearization heuristic.
type Strategy string

// The linearization strategies. All are Kahn's algorithm with different
// ready-queue policies; ties always break by insertion order, so every
// strategy is deterministic.
const (
	// StrategyFIFO picks the earliest-inserted ready task: the neutral
	// baseline order.
	StrategyFIFO Strategy = "fifo"
	// StrategyHeavyFirst runs heavy ready tasks first: front-loads the
	// failure-prone work next to the initial (free) recovery point, the
	// regime Figure 7 (Decrease) favors.
	StrategyHeavyFirst Strategy = "heavy-first"
	// StrategyLightFirst runs light ready tasks first.
	StrategyLightFirst Strategy = "light-first"
	// StrategyDFS follows depth-first chains to keep related tasks
	// adjacent (fewer, larger verified segments on modular workflows).
	StrategyDFS Strategy = "dfs"
)

// Strategies lists all linearization strategies.
func Strategies() []Strategy {
	return []Strategy{StrategyFIFO, StrategyHeavyFirst, StrategyLightFirst, StrategyDFS}
}

// Linearize returns a topological order of node indices under the given
// strategy, or an error if the graph has a cycle.
func (g *Graph) Linearize(s Strategy) ([]int, error) {
	n := g.Len()
	if n == 0 {
		return nil, fmt.Errorf("dag: empty graph")
	}
	indeg := make([]int, n)
	for i := range g.preds {
		indeg[i] = len(g.preds[i])
	}

	// ready holds the currently runnable tasks, kept sorted by the
	// strategy's priority (cheapest implementation at this scale).
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}

	less := func(a, b int) bool {
		switch s {
		case StrategyHeavyFirst:
			if g.nodes[a].Weight != g.nodes[b].Weight {
				return g.nodes[a].Weight > g.nodes[b].Weight
			}
		case StrategyLightFirst:
			if g.nodes[a].Weight != g.nodes[b].Weight {
				return g.nodes[a].Weight < g.nodes[b].Weight
			}
		}
		return a < b
	}

	var order []int
	if s == StrategyDFS {
		order = g.dfsOrder(indeg, ready)
	} else {
		for len(ready) > 0 {
			sort.Slice(ready, func(i, j int) bool { return less(ready[i], ready[j]) })
			next := ready[0]
			ready = ready[1:]
			order = append(order, next)
			for _, succ := range g.succs[next] {
				indeg[succ]--
				if indeg[succ] == 0 {
					ready = append(ready, succ)
				}
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("dag: cycle detected (%d of %d tasks orderable)", len(order), n)
	}
	return order, nil
}

// dfsOrder emits tasks by following newly released successors first.
func (g *Graph) dfsOrder(indeg []int, roots []int) []int {
	var order []int
	var stack []int
	// Reverse so the earliest-inserted root is popped first.
	for i := len(roots) - 1; i >= 0; i-- {
		stack = append(stack, roots[i])
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, cur)
		// Push released successors; last pushed runs next.
		for i := len(g.succs[cur]) - 1; i >= 0; i-- {
			succ := g.succs[cur][i]
			indeg[succ]--
			if indeg[succ] == 0 {
				stack = append(stack, succ)
			}
		}
	}
	return order
}

// ChainFor converts a linearization into the serialized task chain.
func (g *Graph) ChainFor(order []int) (*chain.Chain, error) {
	if len(order) != g.Len() {
		return nil, fmt.Errorf("dag: order covers %d of %d tasks", len(order), g.Len())
	}
	tasks := make([]chain.Task, len(order))
	for pos, idx := range order {
		if idx < 0 || idx >= g.Len() {
			return nil, fmt.Errorf("dag: order references unknown task %d", idx)
		}
		tasks[pos] = chain.Task{Name: g.nodes[idx].ID, Weight: g.nodes[idx].Weight}
	}
	return chain.New(tasks...)
}

// IDs maps a linearization to task IDs.
func (g *Graph) IDs(order []int) []string {
	out := make([]string, len(order))
	for i, idx := range order {
		out[i] = g.nodes[idx].ID
	}
	return out
}

// respectsPrecedence reports whether the order satisfies every edge; the
// tests use it as the topological-correctness oracle.
func (g *Graph) respectsPrecedence(order []int) bool {
	pos := make([]int, g.Len())
	for p, idx := range order {
		pos[idx] = p
	}
	for from, succs := range g.succs {
		for _, to := range succs {
			if pos[from] >= pos[to] {
				return false
			}
		}
	}
	return true
}

// AllOrders enumerates every topological order, up to limit (the count
// can be factorial). It is the exhaustive yardstick for the strategies.
func (g *Graph) AllOrders(limit int) ([][]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.Len()
	indeg := make([]int, n)
	for i := range g.preds {
		indeg[i] = len(g.preds[i])
	}
	var out [][]int
	cur := make([]int, 0, n)
	used := make([]bool, n)
	var rec func() error
	rec = func() error {
		if len(out) > limit {
			return fmt.Errorf("dag: more than %d topological orders", limit)
		}
		if len(cur) == n {
			cp := make([]int, n)
			copy(cp, cur)
			out = append(out, cp)
			return nil
		}
		for i := 0; i < n; i++ {
			if used[i] || indeg[i] != 0 {
				continue
			}
			used[i] = true
			for _, s := range g.succs[i] {
				indeg[s]--
			}
			cur = append(cur, i)
			if err := rec(); err != nil {
				return err
			}
			cur = cur[:len(cur)-1]
			for _, s := range g.succs[i] {
				indeg[s]++
			}
			used[i] = false
		}
		return nil
	}
	if err := rec(); err != nil {
		return nil, err
	}
	return out, nil
}

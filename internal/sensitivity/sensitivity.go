// Package sensitivity quantifies how the expected makespan of a resilience
// schedule responds to the platform parameters: error rates, checkpoint,
// recovery and verification costs, and the partial-verification recall.
//
// For each parameter x it reports the elasticity
//
//	elas(x) = (x / E) * dE/dx
//
// estimated by central finite differences on the closed-form model
// (internal/core.Evaluate). Elasticities answer the operator's question
// "which knob dominates my resilience overhead?": an elasticity of 0.02
// means a 10% parameter increase costs about 0.2% makespan.
//
// Two modes are provided: fixed-schedule sensitivity (the schedule stays
// as planned; the right model for short-term parameter drift) and
// replanned sensitivity (the planner re-optimizes for the perturbed
// parameter; by the envelope theorem the two agree to first order at the
// optimum, which the tests verify).
package sensitivity

import (
	"fmt"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Parameter identifies one model parameter.
type Parameter string

// The parameters of Section II.
const (
	LambdaF Parameter = "lambda_f"
	LambdaS Parameter = "lambda_s"
	CD      Parameter = "C_D"
	CM      Parameter = "C_M"
	RD      Parameter = "R_D"
	RM      Parameter = "R_M"
	VStar   Parameter = "V*"
	V       Parameter = "V"
	Recall  Parameter = "recall"
)

// Parameters lists every supported parameter in report order.
func Parameters() []Parameter {
	return []Parameter{LambdaF, LambdaS, CD, CM, RD, RM, VStar, V, Recall}
}

// apply returns p with the parameter scaled by factor.
func apply(p platform.Platform, which Parameter, factor float64) (platform.Platform, error) {
	switch which {
	case LambdaF:
		p.LambdaF *= factor
	case LambdaS:
		p.LambdaS *= factor
	case CD:
		p.CD *= factor
	case CM:
		p.CM *= factor
	case RD:
		p.RD *= factor
	case RM:
		p.RM *= factor
	case VStar:
		p.VStar *= factor
	case V:
		p.V *= factor
	case Recall:
		p.Recall *= factor
		if p.Recall > 1 {
			p.Recall = 1
		}
	default:
		return p, fmt.Errorf("sensitivity: unknown parameter %q", which)
	}
	return p, nil
}

// Result is the sensitivity of one parameter.
type Result struct {
	Parameter  Parameter
	Base       float64 // the parameter's current value
	Elasticity float64 // (x/E) dE/dx
	PerPercent float64 // absolute makespan change (s) per +1% parameter change
}

// relStep is the relative finite-difference step. 1e-4 balances
// truncation against cancellation for the ~1e-9-accurate evaluator.
const relStep = 1e-4

// FixedSchedule computes the elasticity of the expected makespan with
// respect to each parameter, holding the schedule fixed.
func FixedSchedule(c *chain.Chain, p platform.Platform, s *schedule.Schedule) ([]Result, error) {
	eval := func(pp platform.Platform) (float64, error) {
		return core.Evaluate(c, pp, s)
	}
	return sweep(p, eval)
}

// Replanned computes the elasticity of the *optimal* expected makespan:
// the planner re-optimizes for every perturbed parameter value.
func Replanned(alg core.Algorithm, c *chain.Chain, p platform.Platform) ([]Result, error) {
	eval := func(pp platform.Platform) (float64, error) {
		res, err := core.Plan(alg, c, pp)
		if err != nil {
			return 0, err
		}
		return res.ExpectedMakespan, nil
	}
	return sweep(p, eval)
}

func sweep(p platform.Platform, eval func(platform.Platform) (float64, error)) ([]Result, error) {
	base, err := eval(p)
	if err != nil {
		return nil, err
	}
	if base <= 0 {
		return nil, fmt.Errorf("sensitivity: non-positive base makespan %g", base)
	}
	var out []Result
	for _, which := range Parameters() {
		cur := value(p, which)
		if cur == 0 {
			// A zero parameter has no scale; report zero sensitivity.
			out = append(out, Result{Parameter: which, Base: 0})
			continue
		}
		up, err := apply(p, which, 1+relStep)
		if err != nil {
			return nil, err
		}
		down, err := apply(p, which, 1-relStep)
		if err != nil {
			return nil, err
		}
		eUp, err := eval(up)
		if err != nil {
			return nil, err
		}
		eDown, err := eval(down)
		if err != nil {
			return nil, err
		}
		deriv := (eUp - eDown) / (2 * relStep) // dE / d(log x) = x dE/dx
		elas := deriv / base
		out = append(out, Result{
			Parameter:  which,
			Base:       cur,
			Elasticity: elas,
			PerPercent: deriv / 100,
		})
	}
	return out, nil
}

func value(p platform.Platform, which Parameter) float64 {
	switch which {
	case LambdaF:
		return p.LambdaF
	case LambdaS:
		return p.LambdaS
	case CD:
		return p.CD
	case CM:
		return p.CM
	case RD:
		return p.RD
	case RM:
		return p.RM
	case VStar:
		return p.VStar
	case V:
		return p.V
	case Recall:
		return p.Recall
	}
	return 0
}

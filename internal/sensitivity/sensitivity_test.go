package sensitivity

import (
	"math"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func TestSignsOfElasticities(t *testing.T) {
	c, _ := workload.Uniform(20, 25000)
	p := platform.Hera()
	res, err := core.PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := FixedSchedule(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	byName := index(rows)
	// Costs and rates can only hurt; recall can only help.
	for _, which := range []Parameter{LambdaF, LambdaS, CD, CM, RD, RM, VStar, V} {
		if byName[which].Elasticity < -1e-9 {
			t.Errorf("%s: negative elasticity %g", which, byName[which].Elasticity)
		}
	}
	if byName[Recall].Elasticity > 1e-9 {
		t.Errorf("recall elasticity %g should be non-positive", byName[Recall].Elasticity)
	}
	// Unprotected, Hera's dominant threat is the silent-error rate (3.6x
	// higher than fail-stop, and every silent error redoes everything).
	// The ADMV optimum flips that: dense partial verifications and memory
	// checkpoints make silent errors cheap, so the *residual* sensitivity
	// to lambda_s drops well below the bare schedule's.
	bare := schedule.MustNew(20)
	bare.Set(20, schedule.Disk)
	bareRows, err := FixedSchedule(c, p, bare)
	if err != nil {
		t.Fatal(err)
	}
	bareByName := index(bareRows)
	if bareByName[LambdaS].Elasticity <= bareByName[LambdaF].Elasticity {
		t.Errorf("unprotected: lambda_s elasticity (%g) should exceed lambda_f's (%g)",
			bareByName[LambdaS].Elasticity, bareByName[LambdaF].Elasticity)
	}
	if byName[LambdaS].Elasticity >= bareByName[LambdaS].Elasticity/5 {
		t.Errorf("optimization should slash the lambda_s elasticity: %g vs bare %g",
			byName[LambdaS].Elasticity, bareByName[LambdaS].Elasticity)
	}
}

func TestEulerRelation(t *testing.T) {
	// Scale invariance E(k*w, k*costs, rates/k) = k*E implies, by Euler's
	// homogeneous-function theorem, with elasticities taken at k = 1:
	//
	//	elas(all costs) - elas(all rates) + (W/E)*dE/dW = 1
	//
	// The weight term equals 1 - sum(cost elas) + sum(rate elas); rather
	// than perturbing weights we verify the equivalent direct statement:
	// scaling costs up by (1+h) and rates down by 1/(1+h) must change E
	// by (1+h) times the weight-held-fixed part... The cleanest check:
	// compare sum(cost elasticities) - sum(rate elasticities) against the
	// directly measured elasticity of E under joint (costs up, rates
	// down, weights fixed) perturbation. Linearity of derivatives makes
	// them equal.
	c, _ := workload.Decrease(15, 25000)
	p := platform.Atlas()
	res, err := core.PlanADMVStar(c, p)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := FixedSchedule(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	byName := index(rows)
	sumCosts := 0.0
	for _, which := range []Parameter{CD, CM, RD, RM, VStar, V} {
		sumCosts += byName[which].Elasticity
	}
	sumRates := byName[LambdaF].Elasticity + byName[LambdaS].Elasticity

	// Direct joint perturbation.
	base, err := core.Evaluate(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	h := 1e-4
	joint := p
	joint.CD *= 1 + h
	joint.CM *= 1 + h
	joint.RD *= 1 + h
	joint.RM *= 1 + h
	joint.VStar *= 1 + h
	joint.V *= 1 + h
	joint.LambdaF /= 1 + h
	joint.LambdaS /= 1 + h
	perturbed, err := core.Evaluate(c, joint, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	direct := (perturbed - base) / (h * base)
	indirect := sumCosts - sumRates
	if math.Abs(direct-indirect) > 1e-3*math.Max(1, math.Abs(direct)) {
		t.Errorf("Euler check: joint elasticity %g vs sum of parts %g", direct, indirect)
	}
}

func TestEnvelopeTheorem(t *testing.T) {
	// At the optimum, the derivative of the optimal value equals the
	// fixed-schedule derivative (first-order): replanned and fixed
	// elasticities must agree closely.
	c, _ := workload.Uniform(12, 25000)
	p := platform.Hera()
	res, err := core.PlanADMVStar(c, p)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := FixedSchedule(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	replanned, err := Replanned(core.AlgADMVStar, c, p)
	if err != nil {
		t.Fatal(err)
	}
	fx, rp := index(fixed), index(replanned)
	for _, which := range Parameters() {
		a, b := fx[which].Elasticity, rp[which].Elasticity
		if math.Abs(a-b) > 2e-3*math.Max(1, math.Abs(a)) {
			t.Errorf("%s: fixed %g vs replanned %g", which, a, b)
		}
		// The optimum can only respond more favorably than a fixed
		// schedule: replanned cost elasticities never exceed fixed ones
		// beyond differencing noise.
		if b > a+1e-6 {
			t.Errorf("%s: replanned elasticity %g exceeds fixed %g", which, b, a)
		}
	}
}

func TestZeroParameterReportsZero(t *testing.T) {
	c, _ := workload.Uniform(5, 1000)
	p := platform.Hera()
	p.LambdaF = 0
	res, err := core.PlanADMVStar(c, p)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := FixedSchedule(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if got := index(rows)[LambdaF]; got.Elasticity != 0 || got.Base != 0 {
		t.Errorf("zero lambda_f should report zero sensitivity: %+v", got)
	}
}

func TestUnknownParameter(t *testing.T) {
	if _, err := apply(platform.Hera(), "bogus", 1.1); err == nil {
		t.Error("unknown parameter should fail")
	}
}

func index(rows []Result) map[Parameter]Result {
	m := make(map[Parameter]Result, len(rows))
	for _, r := range rows {
		m[r.Parameter] = r
	}
	return m
}

// Package linalg provides the small dense linear-algebra kernel needed by
// the absorbing-Markov-chain schedule evaluator: LU factorization with
// partial pivoting and a linear solver, plus residual helpers used by the
// tests. Matrices are represented row-major as [][]float64.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a (numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// NewMatrix allocates an n x m zero matrix with one backing array.
func NewMatrix(n, m int) [][]float64 {
	backing := make([]float64, n*m)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i], backing = backing[:m:m], backing[m:]
	}
	return rows
}

// CloneMatrix deep-copies a matrix.
func CloneMatrix(a [][]float64) [][]float64 {
	out := NewMatrix(len(a), len(a[0]))
	for i := range a {
		copy(out[i], a[i])
	}
	return out
}

// Solve solves the linear system A x = b by Gaussian elimination with
// partial pivoting. A must be square with len(A) == len(b). A and b are
// left unmodified.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("linalg: empty system")
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: A is %dx%d but b has %d entries", n, len(a[0]), len(b))
	}
	m := CloneMatrix(a)
	for i := range m {
		if len(m[i]) != n {
			return nil, fmt.Errorf("linalg: A is not square (row %d has %d entries)", i, len(m[i]))
		}
	}
	x := make([]float64, n)
	copy(x, b)

	// Forward elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 || math.IsNaN(best) {
			return nil, ErrSingular
		}
		if pivot != col {
			m[col], m[pivot] = m[pivot], m[col]
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			m[r][col] = 0
			for k := col + 1; k < n; k++ {
				m[r][k] -= f * m[col][k]
			}
			x[r] -= f * x[col]
		}
	}

	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for k := i + 1; k < n; k++ {
			sum -= m[i][k] * x[k]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// MatVec returns A x.
func MatVec(a [][]float64, x []float64) []float64 {
	out := make([]float64, len(a))
	for i, row := range a {
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Residual returns the infinity norm of A x - b.
func Residual(a [][]float64, x, b []float64) float64 {
	ax := MatVec(a, x)
	worst := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

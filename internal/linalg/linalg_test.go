package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %.15f, want %g", i, x[i], want[i])
		}
	}
}

func TestSolveIdentity(t *testing.T) {
	n := 5
	a := NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i][i] = 1
		b[i] = float64(i) * 1.5
	}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if x[i] != b[i] {
			t.Errorf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the initial diagonal forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	b := []float64{3, 7}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("singular matrix should fail")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve([][]float64{}, nil); err == nil {
		t.Error("empty system should fail")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square matrix should fail")
	}
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched b should fail")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{4, 1}, {1, 3}}
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 4 || a[1][0] != 1 || b[0] != 1 {
		t.Error("Solve mutated its inputs")
	}
}

func TestSolveRandomResiduals(t *testing.T) {
	// Property: for random diagonally dominant systems (well-conditioned),
	// the residual of the computed solution is tiny.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		a := NewMatrix(n, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				a[i][j] = rng.NormFloat64()
				rowSum += math.Abs(a[i][j])
			}
			a[i][i] += rowSum + 1 // ensure dominance
			b[i] = rng.NormFloat64() * 10
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSolveRoundTrip(t *testing.T) {
	// Property: solving A x = A y recovers y for well-conditioned A.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(15)
		a := NewMatrix(n, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				a[i][j] = rng.NormFloat64()
				rowSum += math.Abs(a[i][j])
			}
			a[i][i] += rowSum + 1
			y[i] = rng.NormFloat64()
		}
		b := MatVec(a, y)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Abs(x[i]-y[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], y[i])
			}
		}
	}
}

func TestNewMatrixContiguous(t *testing.T) {
	m := NewMatrix(3, 4)
	if len(m) != 3 || len(m[0]) != 4 {
		t.Fatalf("shape = %dx%d", len(m), len(m[0]))
	}
	m[1][2] = 5
	if m[0][2] != 0 || m[2][2] != 0 {
		t.Error("rows alias each other")
	}
}

func TestCloneMatrixDeep(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	c := CloneMatrix(a)
	c[0][0] = 99
	if a[0][0] != 1 {
		t.Error("CloneMatrix is shallow")
	}
}

// Package chain models the linear task graphs of the paper: an application
// T1 -> T2 -> ... -> Tn where each task Ti carries a computational weight
// w_i (seconds of error-free execution) and resilience actions may only be
// inserted at task boundaries.
//
// The package pre-computes prefix sums so that the segment weights
// W_{i,j} = w_{i+1} + ... + w_j needed throughout the dynamic programs are
// O(1) lookups.
package chain

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"chainckpt/internal/expmath"
)

// Task is one computational kernel of the workflow. Name is optional and
// only used for display.
type Task struct {
	Name   string  `json:"name,omitempty"`
	Weight float64 `json:"weight"`
}

// Chain is an immutable linear task graph. The zero value is an empty
// chain; use New or FromWeights to build one.
type Chain struct {
	tasks  []Task
	prefix []float64 // prefix[i] = w_1 + ... + w_i, prefix[0] = 0
}

// ErrEmpty reports a chain with no tasks.
var ErrEmpty = errors.New("chain: must contain at least one task")

// New builds a chain from explicit tasks. Weights must be finite and
// non-negative.
func New(tasks ...Task) (*Chain, error) {
	if len(tasks) == 0 {
		return nil, ErrEmpty
	}
	c := &Chain{
		tasks:  make([]Task, len(tasks)),
		prefix: make([]float64, len(tasks)+1),
	}
	copy(c.tasks, tasks)
	for i, t := range tasks {
		if err := expmath.CheckDuration(t.Weight); err != nil {
			return nil, fmt.Errorf("chain: task %d (%q): %w", i+1, t.Name, err)
		}
		c.prefix[i+1] = c.prefix[i] + t.Weight
	}
	return c, nil
}

// FromWeights builds a chain of anonymous tasks from weights.
func FromWeights(weights ...float64) (*Chain, error) {
	tasks := make([]Task, len(weights))
	for i, w := range weights {
		tasks[i] = Task{Weight: w}
	}
	return New(tasks...)
}

// MustFromWeights is FromWeights that panics on error; for tests and
// examples with literal inputs.
func MustFromWeights(weights ...float64) *Chain {
	c, err := FromWeights(weights...)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of tasks n.
func (c *Chain) Len() int { return len(c.tasks) }

// Task returns task Ti for i in [1, n].
func (c *Chain) Task(i int) Task {
	c.checkIndex(i, 1)
	return c.tasks[i-1]
}

// Weight returns w_i for i in [1, n].
func (c *Chain) Weight(i int) float64 {
	c.checkIndex(i, 1)
	return c.tasks[i-1].Weight
}

// TotalWeight returns w_1 + ... + w_n, the error-free makespan without any
// resilience action.
func (c *Chain) TotalWeight() float64 { return c.prefix[len(c.tasks)] }

// SegmentWeight returns W_{i,j} = sum of w_k for k in (i, j], the paper's
// time to execute tasks T_{i+1} through T_j. It requires 0 <= i <= j <= n
// and returns 0 when i == j.
func (c *Chain) SegmentWeight(i, j int) float64 {
	c.checkIndex(i, 0)
	c.checkIndex(j, 0)
	if i > j {
		panic(fmt.Sprintf("chain: SegmentWeight(%d, %d): i > j", i, j))
	}
	return c.prefix[j] - c.prefix[i]
}

// Weights returns a copy of the weight vector.
func (c *Chain) Weights() []float64 {
	w := make([]float64, len(c.tasks))
	for i, t := range c.tasks {
		w[i] = t.Weight
	}
	return w
}

// Scale returns a new chain with every weight multiplied by f (>= 0).
func (c *Chain) Scale(f float64) (*Chain, error) {
	if err := expmath.CheckDuration(f); err != nil {
		return nil, fmt.Errorf("chain: scale factor: %w", err)
	}
	tasks := make([]Task, len(c.tasks))
	for i, t := range c.tasks {
		tasks[i] = Task{Name: t.Name, Weight: t.Weight * f}
	}
	return New(tasks...)
}

// Concat returns the chain c followed by d.
func (c *Chain) Concat(d *Chain) (*Chain, error) {
	tasks := make([]Task, 0, len(c.tasks)+len(d.tasks))
	tasks = append(tasks, c.tasks...)
	tasks = append(tasks, d.tasks...)
	return New(tasks...)
}

// MaxWeight returns the largest task weight.
func (c *Chain) MaxWeight() float64 {
	m := 0.0
	for _, t := range c.tasks {
		m = math.Max(m, t.Weight)
	}
	return m
}

// String renders a short human-readable summary.
func (c *Chain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain{n=%d, W=%.6g", c.Len(), c.TotalWeight())
	if n := c.Len(); n <= 8 {
		b.WriteString(", w=[")
		for i := 1; i <= n; i++ {
			if i > 1 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.6g", c.Weight(i))
		}
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}

// MarshalJSON encodes the chain as its task list.
func (c *Chain) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.tasks)
}

// UnmarshalJSON decodes a task list and revalidates it.
func (c *Chain) UnmarshalJSON(data []byte) error {
	var tasks []Task
	if err := json.Unmarshal(data, &tasks); err != nil {
		return err
	}
	nc, err := New(tasks...)
	if err != nil {
		return err
	}
	*c = *nc
	return nil
}

func (c *Chain) checkIndex(i, min int) {
	if i < min || i > len(c.tasks) {
		panic(fmt.Sprintf("chain: index %d out of range [%d, %d]", i, min, len(c.tasks)))
	}
}

package chain

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("New() with no tasks should fail")
	}
	if _, err := FromWeights(); err == nil {
		t.Fatal("FromWeights() with no weights should fail")
	}
}

func TestNewRejectsBadWeights(t *testing.T) {
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := FromWeights(1, w, 3); err == nil {
			t.Errorf("FromWeights with %v should fail", w)
		}
	}
}

func TestZeroWeightTaskAllowed(t *testing.T) {
	c, err := FromWeights(0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalWeight() != 5 {
		t.Errorf("TotalWeight = %g, want 5", c.TotalWeight())
	}
}

func TestAccessors(t *testing.T) {
	c, err := New(Task{Name: "lu", Weight: 10}, Task{Name: "qr", Weight: 20})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.Task(1).Name; got != "lu" {
		t.Errorf("Task(1).Name = %q", got)
	}
	if got := c.Weight(2); got != 20 {
		t.Errorf("Weight(2) = %g", got)
	}
	if got := c.TotalWeight(); got != 30 {
		t.Errorf("TotalWeight = %g", got)
	}
	if got := c.MaxWeight(); got != 20 {
		t.Errorf("MaxWeight = %g", got)
	}
}

func TestSegmentWeight(t *testing.T) {
	c := MustFromWeights(1, 2, 3, 4, 5)
	tests := []struct {
		i, j int
		want float64
	}{
		{0, 0, 0}, {0, 5, 15}, {0, 1, 1}, {1, 1, 0},
		{1, 3, 5}, {2, 5, 12}, {4, 5, 5}, {5, 5, 0},
	}
	for _, tc := range tests {
		if got := c.SegmentWeight(tc.i, tc.j); got != tc.want {
			t.Errorf("SegmentWeight(%d,%d) = %g, want %g", tc.i, tc.j, got, tc.want)
		}
	}
}

func TestSegmentWeightPanics(t *testing.T) {
	c := MustFromWeights(1, 2)
	for _, tc := range [][2]int{{-1, 1}, {0, 3}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SegmentWeight(%d,%d) should panic", tc[0], tc[1])
				}
			}()
			c.SegmentWeight(tc[0], tc[1])
		}()
	}
}

func TestSegmentWeightAdditive(t *testing.T) {
	// W_{i,k} = W_{i,j} + W_{j,k} for any i <= j <= k.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 1000
		}
		c := MustFromWeights(w...)
		i := rng.Intn(n + 1)
		k := i + rng.Intn(n+1-i)
		j := i + rng.Intn(k-i+1)
		lhs := c.SegmentWeight(i, k)
		rhs := c.SegmentWeight(i, j) + c.SegmentWeight(j, k)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightsReturnsCopy(t *testing.T) {
	c := MustFromWeights(1, 2, 3)
	w := c.Weights()
	w[0] = 99
	if c.Weight(1) != 1 {
		t.Error("Weights() must return a copy")
	}
}

func TestScale(t *testing.T) {
	c := MustFromWeights(1, 2, 3)
	s, err := c.Scale(2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.TotalWeight(); math.Abs(got-15) > 1e-12 {
		t.Errorf("scaled TotalWeight = %g, want 15", got)
	}
	if _, err := c.Scale(-1); err == nil {
		t.Error("Scale(-1) should fail")
	}
	// original untouched
	if c.TotalWeight() != 6 {
		t.Error("Scale must not mutate the receiver")
	}
}

func TestConcat(t *testing.T) {
	a := MustFromWeights(1, 2)
	b := MustFromWeights(3)
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.TotalWeight() != 6 {
		t.Errorf("Concat = %v", c)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c, err := New(Task{Name: "a", Weight: 1.5}, Task{Weight: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Chain
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.Task(1).Name != "a" || back.TotalWeight() != 3.5 {
		t.Errorf("round trip mismatch: %v", &back)
	}
	// SegmentWeight must work on the decoded chain (prefix rebuilt).
	if got := back.SegmentWeight(0, 2); got != 3.5 {
		t.Errorf("decoded SegmentWeight = %g", got)
	}
}

func TestUnmarshalRejectsBadChain(t *testing.T) {
	var c Chain
	if err := json.Unmarshal([]byte(`[{"weight": -3}]`), &c); err == nil {
		t.Error("negative weight must fail to decode")
	}
	if err := json.Unmarshal([]byte(`[]`), &c); err == nil {
		t.Error("empty chain must fail to decode")
	}
}

func TestString(t *testing.T) {
	c := MustFromWeights(1, 2, 3)
	s := c.String()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "W=6") {
		t.Errorf("String() = %q", s)
	}
	long := MustFromWeights(make([]float64, 20)...)
	if strings.Contains(long.String(), "w=[") {
		t.Error("long chains should not dump all weights")
	}
}

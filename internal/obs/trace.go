// Request-scoped tracing: a Span carried via context.Context with
// start/end, attributes and children, collected per trace (one trace
// per HTTP request or job) into a bounded in-process ring of recent
// traces. Spans are pooled and nil-safe — a nil *Tracer yields nil
// spans whose methods all no-op, so instrumented code pays a single
// nil check when tracing is off.
//
// Span timestamps are monotonic offsets from the trace root, never
// wall-clock per span, and they live only here: nothing in this
// package touches internal/sim events or internal/replay recordings,
// which must stay bit-identical with tracing on or off.
package obs

import (
	"context"
	"sync"
	"time"
)

// maxSpansPerTrace bounds one trace's tree; children past the cap are
// dropped and counted, so a pathological job cannot hold the heap.
const maxSpansPerTrace = 8192

// Span is one timed operation in a trace. All methods are safe on a
// nil receiver.
type Span struct {
	name     string
	startOff time.Duration // offset from trace start (0 for the root)
	dur      time.Duration // set at End
	attrs    []attr
	children []*Span
	trace    *traceState // shared by every span in the trace
}

type attr struct {
	key string
	val string
}

// traceState is the per-trace shared record: identity, the wall/mono
// anchor, the span budget, and the lock every tree mutation takes.
type traceState struct {
	mu      sync.Mutex
	id      string
	start   time.Time // wall+monotonic anchor for offsets
	root    *Span
	spans   int
	dropped int
	done    bool
	tracer  *Tracer
}

// Tracer owns a bounded ring of recently completed traces plus the
// set of still-active ones, and a pool recycling span nodes.
type Tracer struct {
	mu     sync.Mutex
	active map[string]*traceState
	ring   []*traceState // oldest first
	cap    int
	pool   sync.Pool
}

// NewTracer returns a tracer retaining the last keep completed traces
// (keep <= 0 defaults to 64).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = 64
	}
	t := &Tracer{
		active: make(map[string]*traceState),
		cap:    keep,
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

func (t *Tracer) getSpan() *Span {
	return t.pool.Get().(*Span)
}

// StartTrace begins a new trace identified by id (a request or job id)
// and returns its root span. A second trace with a live id replaces
// the old one in the active set (the old one is still dumpable until
// its ring slot is evicted once ended).
func (t *Tracer) StartTrace(id, name string) *Span {
	if t == nil {
		return nil
	}
	st := &traceState{id: id, start: time.Now(), spans: 1, tracer: t}
	root := t.getSpan()
	*root = Span{name: name, trace: st}
	st.root = root
	t.mu.Lock()
	t.active[id] = st
	t.mu.Unlock()
	return root
}

// Child starts a sub-span under s. Returns nil (a no-op span) when s
// is nil, the trace has ended, or the trace's span budget is spent.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	st := s.trace
	off := time.Since(st.start)
	st.mu.Lock()
	if st.done || st.spans >= maxSpansPerTrace {
		if st.spans >= maxSpansPerTrace {
			st.dropped++
		}
		st.mu.Unlock()
		return nil
	}
	st.spans++
	c := st.tracer.getSpan()
	*c = Span{name: name, startOff: off, trace: st}
	s.children = append(s.children, c)
	st.mu.Unlock()
	return c
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	st := s.trace
	st.mu.Lock()
	if !st.done {
		s.attrs = append(s.attrs, attr{key, value})
	}
	st.mu.Unlock()
}

// SetAttrInt attaches an integer attribute without going through fmt.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, itoa(value))
}

// itoa is a minimal strconv.FormatInt(v, 10) that keeps the hot path
// free of package-level indirection; values are small (task indices,
// byte counts).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// End closes the span. Ending the root span completes the trace and
// moves it from the active set into the ring of recent traces.
func (s *Span) End() {
	if s == nil {
		return
	}
	st := s.trace
	dur := time.Since(st.start) - s.startOff
	st.mu.Lock()
	if s.dur == 0 {
		s.dur = dur
	}
	isRoot := s == st.root
	if isRoot {
		st.done = true
	}
	st.mu.Unlock()
	if isRoot {
		st.tracer.complete(st)
	}
}

// complete files an ended trace into the ring, evicting (and
// recycling) the oldest past capacity.
func (t *Tracer) complete(st *traceState) {
	var evicted *traceState
	t.mu.Lock()
	if t.active[st.id] == st {
		delete(t.active, st.id)
	}
	t.ring = append(t.ring, st)
	if len(t.ring) > t.cap {
		evicted = t.ring[0]
		t.ring = t.ring[1:]
	}
	t.mu.Unlock()
	if evicted != nil {
		t.recycle(evicted)
	}
}

// recycle returns an evicted trace's spans to the pool. The trace is
// already ended and out of the ring, so no dump can reach it; the
// trace lock still guards against a straggler SetAttr.
func (t *Tracer) recycle(st *traceState) {
	st.mu.Lock()
	root := st.root
	st.root = nil
	st.mu.Unlock()
	var put func(s *Span)
	put = func(s *Span) {
		for _, c := range s.children {
			put(c)
		}
		*s = Span{}
		t.pool.Put(s)
	}
	if root != nil {
		put(root)
	}
}

// SpanDump is a detached, JSON-ready copy of a span tree. Offsets and
// durations are nanoseconds relative to the trace start — no absolute
// wall-clock leaks below the root.
type SpanDump struct {
	Name     string            `json:"name"`
	StartNs  int64             `json:"start_ns"`
	DurNs    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanDump       `json:"children,omitempty"`
}

// TraceDump is a complete trace: identity, wall-clock start of the
// root only, span count, and the tree.
type TraceDump struct {
	ID      string    `json:"id"`
	Start   time.Time `json:"start"`
	Spans   int       `json:"spans"`
	Dropped int       `json:"dropped,omitempty"`
	Done    bool      `json:"done"`
	Root    *SpanDump `json:"root"`
}

// Dump returns a detached copy of the trace with the given id, or nil
// if the tracer has never seen it or has evicted it. Active (still
// running) traces are dumpable.
func (t *Tracer) Dump(id string) *TraceDump {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	st := t.active[id]
	if st == nil {
		for i := len(t.ring) - 1; i >= 0; i-- {
			if t.ring[i].id == id {
				st = t.ring[i]
				break
			}
		}
	}
	t.mu.Unlock()
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.root == nil {
		return nil
	}
	return &TraceDump{
		ID:      st.id,
		Start:   st.start,
		Spans:   st.spans,
		Dropped: st.dropped,
		Done:    st.done,
		Root:    dumpSpan(st.root),
	}
}

// RecentIDs lists the ids of active then completed traces, newest
// completed last.
func (t *Tracer) RecentIDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]string, 0, len(t.active)+len(t.ring))
	for id := range t.active {
		ids = append(ids, id)
	}
	for _, st := range t.ring {
		ids = append(ids, st.id)
	}
	return ids
}

func dumpSpan(s *Span) *SpanDump {
	d := &SpanDump{
		Name:    s.name,
		StartNs: s.startOff.Nanoseconds(),
		DurNs:   s.dur.Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.key] = a.val
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, dumpSpan(c))
	}
	return d
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx
// unchanged, so downstream SpanFrom stays nil and free.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

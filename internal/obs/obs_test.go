package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every instrument and span must be a no-op on nil, mirroring
	// internal/fault: production code threads them unconditionally.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile")
	}
	var r *Registry
	if r.NewCounter("x_total", "x") != nil {
		t.Fatal("nil registry handed out a counter")
	}
	if r.NewHistogram("h", "h", nil) != nil {
		t.Fatal("nil registry handed out a histogram")
	}
	var cv *CounterVec
	cv.With("a").Inc()
	var gv *GaugeVec
	gv.With("a").Set(1)
	var hv *HistogramVec
	hv.With("a").Observe(1)
	r.OnScrape(func() { t.Fatal("hook on nil registry ran") })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var tr *Tracer
	s := tr.StartTrace("id", "root")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	s.SetAttr("k", "v")
	s.SetAttrInt("n", 7)
	c2 := s.Child("child")
	if c2 != nil {
		t.Fatal("nil span returned a child")
	}
	c2.End()
	s.End()
	if tr.Dump("id") != nil {
		t.Fatal("nil tracer dumped")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFrom(ctx) != nil {
		t.Fatal("nil span round-tripped through context")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.NewCounter("test_ops_total", "ops"); again != c {
		t.Fatal("re-registration did not return the same counter")
	}
	g := r.NewGauge("test_depth", "depth")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "lat", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.05, 0.3, 0.7, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-3.1) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	// p50 falls in the (0.1, 0.5] bucket.
	if q := h.Quantile(0.5); q <= 0.1 || q > 0.5 {
		t.Fatalf("p50 = %g, want in (0.1, 0.5]", q)
	}
	// p99 lands in the overflow bucket; estimate clamps to last bound.
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %g, want 1 (overflow clamp)", q)
	}
}

func TestVecChildrenCached(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("test_route_total", "by route", "route", "code")
	a := v.With("/v1/jobs", "200")
	b := v.With("/v1/jobs", "200")
	if a != b {
		t.Fatal("same label values produced distinct children")
	}
	a.Inc()
	v.With("/v1/jobs", "500").Add(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`test_route_total{route="/v1/jobs",code="200"} 1`,
		`test_route_total{route="/v1/jobs",code="500"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpositionLintsClean(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_ops_total", "ops so far")
	r.NewGauge("test_depth", "queue depth")
	h := r.NewHistogram("test_latency_seconds", "solve latency", nil)
	h.Observe(0.003)
	h.Observe(0.3)
	hv := r.NewHistogramVec("test_route_seconds", "per route", []float64{0.01, 0.1}, "route")
	hv.With("/metrics").Observe(0.005)
	hv.With(`we"ird\label` + "\n").Observe(0.5)
	cv := r.NewCounterVec("test_shard_total", "per shard", "shard")
	cv.With("0").Inc()
	r.RegisterGaugeFunc("test_sizes", "per-n sizes", func(set LabelSetter) {
		set.Reset()
		set.Set(12, "24")
		set.Set(3, "48")
	}, "n")

	scrapes := 0
	r.OnScrape(func() { scrapes++ })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if scrapes != 1 {
		t.Fatalf("scrape hooks ran %d times", scrapes)
	}
	out := sb.String()
	if probs := Lint(strings.NewReader(out)); len(probs) > 0 {
		t.Fatalf("own exposition fails lint: %v\n%s", probs, out)
	}
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="+Inf"} 2`,
		"test_latency_seconds_count 2",
		`test_sizes{n="24"} 12`,
		`le="0.01"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// A second scrape with a shrunken collected label set drops stale
	// children.
	r.RegisterGaugeFunc("test_sizes", "per-n sizes", nil, "n") // no-op: same family
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if probs := Lint(strings.NewReader(sb.String())); len(probs) > 0 {
		t.Fatalf("second scrape fails lint: %v", probs)
	}
}

// TestCollectedCounterFloatPrecision: a collector-driven counter must
// render its absolute value at full float precision (exposition
// counters are floats) — a cumulative-seconds counter fed 0.25 busy
// seconds renders 0.25, not the integer floor 0 — while ratcheting
// monotonically and keeping integer values integer-formatted.
func TestCollectedCounterFloatPrecision(t *testing.T) {
	r := NewRegistry()
	busy := 0.25
	r.RegisterCounterFunc("test_busy_seconds_total", "cumulative busy seconds",
		func(set LabelSetter) { set.Set(busy) })
	scrape := func() string {
		t.Helper()
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if probs := Lint(strings.NewReader(sb.String())); len(probs) > 0 {
			t.Fatalf("exposition fails lint: %v\n%s", probs, sb.String())
		}
		return sb.String()
	}
	if out := scrape(); !strings.Contains(out, "test_busy_seconds_total 0.25\n") {
		t.Fatalf("fractional collected counter not rendered at full precision:\n%s", out)
	}
	// Counters never go backward: a smaller absolute value is ignored.
	busy = 0.1
	if out := scrape(); !strings.Contains(out, "test_busy_seconds_total 0.25\n") {
		t.Fatalf("collected counter went backward:\n%s", out)
	}
	busy = 3
	if out := scrape(); !strings.Contains(out, "test_busy_seconds_total 3\n") {
		t.Fatalf("integer value should render without a fraction:\n%s", out)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"no TYPE": "some_metric 1\n",
		"duplicate series": "# HELP a_total a\n# TYPE a_total counter\n" +
			"a_total 1\na_total 2\n",
		"counter without _total": "# HELP a a\n# TYPE a counter\na 1\n",
		"bad label escaping": "# HELP a a\n# TYPE a gauge\n" +
			"a{l=\"x\\q\"} 1\n",
		"non-monotonic buckets": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\n" +
			"h_sum 1\nh_count 5\n",
		"missing +Inf": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
		"invalid metric name": "# HELP 9bad b\n# TYPE 9bad gauge\n9bad 1\n",
	}
	for name, in := range cases {
		if probs := Lint(strings.NewReader(in)); len(probs) == 0 {
			t.Errorf("%s: lint found nothing in %q", name, in)
		}
	}
	clean := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\\\"c\\\\d\\n\"} 3\n"
	if probs := Lint(strings.NewReader(clean)); len(probs) != 0 {
		t.Errorf("clean input flagged: %v", probs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_conc_seconds", "c", nil)
	var wg sync.WaitGroup
	const gor, per = 8, 1000
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != gor*per {
		t.Fatalf("count = %d, want %d", h.Count(), gor*per)
	}
	if math.Abs(h.Sum()-gor*per*0.001) > 1e-6 {
		t.Fatalf("sum = %g", h.Sum())
	}
}

func TestTracerSpansAndDump(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartTrace("job-1", "job")
	root.SetAttr("algorithm", "ADMV*")
	ctx := ContextWithSpan(context.Background(), root)
	if SpanFrom(ctx) != root {
		t.Fatal("context did not carry the span")
	}
	seg := SpanFrom(ctx).Child("segment")
	task := seg.Child("task")
	task.SetAttrInt("pos", 7)
	task.End()
	seg.End()

	// Active traces are dumpable before the root ends.
	if d := tr.Dump("job-1"); d == nil || d.Done {
		t.Fatalf("active dump = %+v", d)
	}
	root.End()
	d := tr.Dump("job-1")
	if d == nil || !d.Done || d.Spans != 3 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Root.Name != "job" || d.Root.Attrs["algorithm"] != "ADMV*" {
		t.Fatalf("root = %+v", d.Root)
	}
	if len(d.Root.Children) != 1 || d.Root.Children[0].Name != "segment" {
		t.Fatalf("children = %+v", d.Root.Children)
	}
	tk := d.Root.Children[0].Children[0]
	if tk.Name != "task" || tk.Attrs["pos"] != "7" {
		t.Fatalf("task span = %+v", tk)
	}
	if tk.StartNs < 0 || tk.DurNs < 0 {
		t.Fatalf("span timing went backwards: %+v", tk)
	}

	// Children after the root ends are dropped, not recorded.
	if root.Child("late") != nil {
		t.Fatal("child created after trace end")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	for _, id := range []string{"a", "b", "c"} {
		s := tr.StartTrace(id, "t")
		s.Child("c").End()
		s.End()
	}
	if tr.Dump("a") != nil {
		t.Fatal("evicted trace still dumpable")
	}
	if tr.Dump("b") == nil || tr.Dump("c") == nil {
		t.Fatal("retained traces lost")
	}
	ids := tr.RecentIDs()
	if len(ids) != 2 {
		t.Fatalf("recent ids = %v", ids)
	}
}

func TestTracerSpanCap(t *testing.T) {
	tr := NewTracer(1)
	root := tr.StartTrace("big", "t")
	made := 0
	for i := 0; i < maxSpansPerTrace+10; i++ {
		if c := root.Child("c"); c != nil {
			c.End()
			made++
		}
	}
	root.End()
	d := tr.Dump("big")
	if d.Spans != maxSpansPerTrace {
		t.Fatalf("spans = %d, want %d", d.Spans, maxSpansPerTrace)
	}
	if d.Dropped != 11 { // +10 overflow plus the root's own slot
		t.Fatalf("dropped = %d", d.Dropped)
	}
	if made != maxSpansPerTrace-1 {
		t.Fatalf("made = %d", made)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(1)
	root := tr.StartTrace("conc", "t")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.Child("w")
				c.SetAttrInt("i", int64(i))
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	d := tr.Dump("conc")
	if d.Spans != 401 {
		t.Fatalf("spans = %d, want 401", d.Spans)
	}
}

func TestDumpTextQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("solve_seconds", "solve", nil)
	for i := 0; i < 100; i++ {
		h.Observe(0.002)
	}
	r.NewCounter("ops_total", "ops").Add(3)
	var sb strings.Builder
	r.DumpText(&sb)
	out := sb.String()
	if !strings.Contains(out, "solve_seconds") || !strings.Contains(out, "p99=") {
		t.Fatalf("dump missing histogram summary:\n%s", out)
	}
	if !strings.Contains(out, "ops_total") {
		t.Fatalf("dump missing counter:\n%s", out)
	}
}

func BenchmarkSpanChild(b *testing.B) {
	tr := NewTracer(4)
	root := tr.StartTrace("bench", "t")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := root.Child("op")
		s.End()
		if i%4000 == 0 { // stay under the per-trace cap
			root.End()
			root = tr.StartTrace("bench", "t")
		}
	}
}

func BenchmarkNilSpan(b *testing.B) {
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := s.Child("op")
		c.SetAttrInt("i", int64(i))
		c.End()
	}
}

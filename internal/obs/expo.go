// Prometheus text exposition (format 0.0.4), a human-readable dump for
// the CLI -stats flags, and a lint parser that validates scraped
// output — the same parser the CI observability job runs against a
// live /metrics endpoint.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="x",b="y"} for the given names/values, with
// extra appended verbatim (used for the histogram le label). Empty
// input renders nothing.
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in text exposition format,
// sorted by name, running OnScrape hooks and per-family collectors
// first. This is the single source of /metrics: no caller may Fprintf
// its own series next to it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runScrapeHooks()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.collect != nil {
			f.collect(familySetter{f: f})
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]*child, 0, len(keys))
		for _, k := range keys {
			children = append(children, f.children[k])
		}
		f.mu.Unlock()
		if len(children) == 0 {
			continue // a labeled family with no children yet emits nothing
		}
		// Deterministic series order within the family.
		sort.Slice(children, func(i, j int) bool {
			return strings.Join(children[i].values, labelSep) < strings.Join(children[j].values, labelSep)
		})
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, ch := range children {
			ls := labelString(f.labels, ch.values, "")
			switch f.kind {
			case KindCounter:
				if f.collect != nil {
					// Collector-driven counters render the full-precision
					// float (exposition counters are floats; integer values
					// still print as integers).
					fmt.Fprintf(bw, "%s%s %s\n", f.name, ls, formatFloat(ch.cf.Load()))
				} else {
					fmt.Fprintf(bw, "%s%s %d\n", f.name, ls, ch.c.Value())
				}
			case KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, ls, formatFloat(ch.g.Value()))
			case KindHistogram:
				cum, count, sum := ch.h.snapshot()
				for i, upper := range f.buckets {
					le := fmt.Sprintf(`le="%s"`, formatFloat(upper))
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.values, le), cum[i])
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, labelString(f.labels, ch.values, `le="+Inf"`), cum[len(cum)-1])
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, ls, formatFloat(sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, ls, count)
			}
		}
	}
	return bw.Flush()
}

// DumpText writes a one-shot human-readable summary: counters and
// gauges as name = value, histograms as count/p50/p99/mean. This backs
// the CLI -stats flags.
func (r *Registry) DumpText(w io.Writer) {
	if r == nil {
		return
	}
	r.runScrapeHooks()
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	for _, f := range r.sortedFamilies() {
		if f.collect != nil {
			f.collect(familySetter{f: f})
		}
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		children := make([]*child, 0, len(keys))
		for _, k := range keys {
			children = append(children, f.children[k])
		}
		f.mu.Unlock()
		sort.Slice(children, func(i, j int) bool {
			return strings.Join(children[i].values, labelSep) < strings.Join(children[j].values, labelSep)
		})
		for _, ch := range children {
			name := f.name + labelString(f.labels, ch.values, "")
			switch f.kind {
			case KindCounter:
				if f.collect != nil {
					if v := ch.cf.Load(); v != 0 {
						fmt.Fprintf(bw, "%-64s %s\n", name, formatFloat(v))
					}
				} else if v := ch.c.Value(); v != 0 {
					fmt.Fprintf(bw, "%-64s %d\n", name, v)
				}
			case KindGauge:
				if v := ch.g.Value(); v != 0 {
					fmt.Fprintf(bw, "%-64s %s\n", name, formatFloat(v))
				}
			case KindHistogram:
				n := ch.h.Count()
				if n == 0 {
					continue
				}
				mean := ch.h.Sum() / float64(n)
				fmt.Fprintf(bw, "%-64s count=%d p50=%.6g p99=%.6g mean=%.6g\n",
					name, n, ch.h.Quantile(0.5), ch.h.Quantile(0.99), mean)
			}
		}
	}
}

// LintProblem is one violation found by Lint, with the 1-based line it
// was found on (0 for whole-exposition problems).
type LintProblem struct {
	Line int
	Msg  string
}

func (p LintProblem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("line %d: %s", p.Line, p.Msg)
	}
	return p.Msg
}

// Lint parses a text-format exposition and returns every violation it
// finds: series without HELP/TYPE, duplicate series, malformed lines,
// bad label escaping, counters named without the _total convention,
// histogram buckets that are non-monotonic or missing +Inf, and
// _count/_bucket{+Inf} disagreement. A clean scrape returns nil.
func Lint(r io.Reader) []LintProblem {
	var probs []LintProblem
	type famInfo struct {
		typ     string
		hasHelp bool
	}
	fams := make(map[string]*famInfo)
	seen := make(map[string]int) // full series (name+labels) -> line
	type histSeries struct {
		buckets []struct {
			le  float64
			n   float64
			raw string
		}
		count    float64
		hasCount bool
		line     int
	}
	hists := make(map[string]*histSeries)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				probs = append(probs, LintProblem{lineNo, fmt.Sprintf("malformed comment line %q", line)})
				continue
			}
			name := fields[2]
			fi := fams[name]
			if fi == nil {
				fi = &famInfo{}
				fams[name] = fi
			}
			if fields[1] == "HELP" {
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					probs = append(probs, LintProblem{lineNo, fmt.Sprintf("metric %q has empty HELP", name)})
				}
				fi.hasHelp = true
			} else {
				if len(fields) < 4 {
					probs = append(probs, LintProblem{lineNo, fmt.Sprintf("metric %q has TYPE with no type", name)})
					continue
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
					fi.typ = typ
				default:
					probs = append(probs, LintProblem{lineNo, fmt.Sprintf("metric %q has unknown TYPE %q", name, typ)})
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			probs = append(probs, LintProblem{lineNo, err.Error()})
			continue
		}
		series := name + "{" + canonicalLabels(labels) + "}"
		if prev, dup := seen[series]; dup {
			probs = append(probs, LintProblem{lineNo, fmt.Sprintf("duplicate series %s (first at line %d)", series, prev)})
		}
		seen[series] = lineNo

		base := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if fi, ok := fams[strings.TrimSuffix(name, s)]; ok && fi.typ == "histogram" {
					base = strings.TrimSuffix(name, s)
					suffix = s
				}
				break
			}
		}
		fi := fams[base]
		if fi == nil || fi.typ == "" {
			probs = append(probs, LintProblem{lineNo, fmt.Sprintf("series %q has no TYPE line", name)})
		} else if !fi.hasHelp {
			probs = append(probs, LintProblem{lineNo, fmt.Sprintf("series %q has no HELP line", name)})
		}
		if fi != nil && fi.typ == "counter" && !strings.HasSuffix(base, "_total") {
			probs = append(probs, LintProblem{lineNo, fmt.Sprintf("counter %q does not end in _total", base)})
		}

		if fi != nil && fi.typ == "histogram" {
			var le string
			rest := make([]labelPair, 0, len(labels))
			for _, lp := range labels {
				if lp.name == "le" {
					le = lp.value
				} else {
					rest = append(rest, lp)
				}
			}
			key := base + "{" + canonicalLabels(rest) + "}"
			hs := hists[key]
			if hs == nil {
				hs = &histSeries{line: lineNo}
				hists[key] = hs
			}
			switch suffix {
			case "_bucket":
				ub, err := parseLe(le)
				if err != nil {
					probs = append(probs, LintProblem{lineNo, fmt.Sprintf("series %s: %v", key, err)})
					continue
				}
				hs.buckets = append(hs.buckets, struct {
					le  float64
					n   float64
					raw string
				}{ub, value, le})
			case "_count":
				hs.count = value
				hs.hasCount = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		probs = append(probs, LintProblem{0, fmt.Sprintf("read: %v", err)})
	}

	// Histogram structural checks, in deterministic order.
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		hs := hists[k]
		if len(hs.buckets) == 0 {
			probs = append(probs, LintProblem{hs.line, fmt.Sprintf("histogram %s has no buckets", k)})
			continue
		}
		last := hs.buckets[len(hs.buckets)-1]
		if !math.IsInf(last.le, 1) {
			probs = append(probs, LintProblem{hs.line, fmt.Sprintf("histogram %s missing le=\"+Inf\" bucket", k)})
		}
		for i := 1; i < len(hs.buckets); i++ {
			if hs.buckets[i].le <= hs.buckets[i-1].le {
				probs = append(probs, LintProblem{hs.line,
					fmt.Sprintf("histogram %s buckets out of order: le=%q after le=%q", k, hs.buckets[i].raw, hs.buckets[i-1].raw)})
			}
			if hs.buckets[i].n < hs.buckets[i-1].n {
				probs = append(probs, LintProblem{hs.line,
					fmt.Sprintf("histogram %s bucket counts not monotonic at le=%q (%g < %g)", k, hs.buckets[i].raw, hs.buckets[i].n, hs.buckets[i-1].n)})
			}
		}
		if hs.hasCount && math.IsInf(last.le, 1) && last.n != hs.count {
			probs = append(probs, LintProblem{hs.line,
				fmt.Sprintf("histogram %s: _count %g != +Inf bucket %g", k, hs.count, last.n)})
		}
	}
	return probs
}

type labelPair struct{ name, value string }

func canonicalLabels(labels []labelPair) string {
	sorted := append([]labelPair(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	parts := make([]string, len(sorted))
	for i, lp := range sorted {
		parts[i] = lp.name + "=" + lp.value
	}
	return strings.Join(parts, ",")
}

func parseLe(le string) (float64, error) {
	if le == "" {
		return 0, fmt.Errorf("_bucket sample without le label")
	}
	if le == "+Inf" {
		return math.Inf(1), nil
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable le %q", le)
	}
	return v, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (name string, labels []labelPair, value float64, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			ln := rest[:eq]
			if !validLabelName(ln) {
				return "", nil, 0, fmt.Errorf("invalid label name %q in %q", ln, line)
			}
			// Scan the quoted value honoring escapes.
			j := eq + 2
			var val strings.Builder
			closed := false
			for j < len(rest) {
				c := rest[j]
				if c == '\\' {
					if j+1 >= len(rest) {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("invalid escape \\%c in %q", rest[j+1], line)
					}
					j += 2
					continue
				}
				if c == '"' {
					closed = true
					j++
					break
				}
				val.WriteByte(c)
				j++
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
			}
			labels = append(labels, labelPair{ln, val.String()})
			rest = rest[j:]
		}
	}
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value (and optional timestamp) in %q", line)
	}
	v, perr := parseValue(fields[0])
	if perr != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	return name, labels, v, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Package obs is the repo's dependency-free observability plane: a
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms, with and without label sets) rendered in Prometheus text
// exposition format, plus lightweight request-scoped tracing (spans
// carried via context.Context, collected into a bounded in-process
// ring of recent traces).
//
// Everything here is nil-safe in the style of internal/fault: a nil
// *Registry hands out nil instruments, and every method on a nil
// instrument is a no-op. Production code therefore threads metrics
// through unconditionally and pays nothing when observability is off.
//
// The package is a leaf: it imports only the standard library, and
// internal/core must never import it — the solver's warm path is gated
// at 5 allocs/op and stays instrumentation-free by construction
// (chainserve scrapes KernelStats into gauges from the outside).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the metric families the registry can hold.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative deltas are ignored: counters only go up.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic counts. Buckets
// are cumulative only at exposition time; Observe touches exactly one
// bucket counter plus the sum/count, so the hot path is two atomic
// adds and one CAS loop.
type Histogram struct {
	uppers  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	h := &Histogram{uppers: uppers}
	h.counts = make([]atomic.Uint64, len(uppers)+1) // last = +Inf
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket sets are small (~15) and the scan is
	// branch-predictable; binary search would not pay for itself.
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the owning bucket — the usual histogram_quantile
// estimate, shared with the snapshot/delta path (quantileFromCum) so
// DumpText and the burn-rate math can never disagree. Returns NaN when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	cum, _, _ := h.snapshot()
	return quantileFromCum(h.uppers, cum, q)
}

// snapshot returns cumulative bucket counts aligned with uppers+Inf.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		cum[i] = c
	}
	return cum, h.count.Load(), h.Sum()
}

// DefBuckets is the default latency bucket set in seconds, spanning
// 100 µs (a warm memoized solve) to 10 s (a slow disk recovery).
var DefBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
	5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ByteBuckets sizes payloads: 256 B journal frames up to 64 MiB
// checkpoints.
var ByteBuckets = []float64{
	256, 1024, 4096, 16384, 65536, 262144, 1048576,
	4194304, 16777216, 67108864,
}

// family is one named metric with all its labeled children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string // label names, empty for single-series families
	buckets []float64

	mu       sync.Mutex
	children map[string]*child // key: joined label values
	order    []string          // insertion order of child keys

	// collect, when set, is invoked at exposition time to refresh or
	// replace the family's children (used for families derived from
	// stats snapshots, e.g. kernel per-n solve counts).
	collect func(set LabelSetter)
}

type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
	// cf ratchets the absolute float value of a collector-driven
	// counter child (stored as Float64bits). Counter atomics are
	// integers, but the exposition format's counters are floats, and
	// collected cumulative-seconds counters (e.g. solver-team busy
	// time) would render a useless floor without sub-integer
	// resolution.
	cf atomicFloatMax
}

// atomicFloatMax is a monotone float64 cell: Store only ever raises the
// value, matching the never-decreases contract of the counter it
// shadows.
type atomicFloatMax struct{ bits atomic.Uint64 }

func (a *atomicFloatMax) Store(v float64) {
	for {
		old := a.bits.Load()
		if math.Float64frombits(old) >= v || a.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (a *atomicFloatMax) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// Registry holds metric families and renders them. The zero value is
// not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string

	scrapeMu sync.Mutex
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers fn to run at the start of every exposition
// (WritePrometheus / DumpText). Handlers refresh snapshot-derived
// gauges so a scrape sees one consistent view per stats source.
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.scrapeMu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.scrapeMu.Unlock()
}

func (r *Registry) runScrapeHooks() {
	r.scrapeMu.Lock()
	hooks := append([]func(){}, r.onScrape...)
	r.scrapeMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: labels, buckets: buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

const labelSep = "\x1f"

func (f *family) childFor(values []string) *child {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch := &child{values: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		ch.c = new(Counter)
	case KindGauge:
		ch.g = new(Gauge)
	case KindHistogram:
		ch.h = newHistogram(f.buckets)
	}
	f.children[key] = ch
	f.order = append(f.order, key)
	return ch
}

// NewCounter registers (or fetches) a single-series counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	if f == nil {
		return nil
	}
	return f.childFor(nil).c
}

// NewGauge registers (or fetches) a single-series gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	if f == nil {
		return nil
	}
	return f.childFor(nil).g
}

// NewHistogram registers (or fetches) a single-series histogram with
// the given ascending bucket upper bounds (nil = DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, KindHistogram, nil, buckets)
	if f == nil {
		return nil
	}
	return f.childFor(nil).h
}

// CounterVec is a counter family with a label set.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with a label set.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with a label set.
type HistogramVec struct{ f *family }

// NewCounterVec registers a counter family keyed by labels.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, KindCounter, labels, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// NewGaugeVec registers a gauge family keyed by labels.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(name, help, KindGauge, labels, nil)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// NewHistogramVec registers a histogram family keyed by labels
// (nil buckets = DefBuckets).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, KindHistogram, labels, buckets)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// With returns the counter child for the given label values, creating
// it on first use. Children are cached; hot paths should resolve once
// and hold the child.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.childFor(values).c
}

// With returns the gauge child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.childFor(values).g
}

// With returns the histogram child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.childFor(values).h
}

// LabelSetter lets a collector callback (re)populate a family's
// children at scrape time.
type LabelSetter interface {
	// Set replaces the value of the child for the given label values.
	Set(value float64, labelValues ...string)
	// Reset drops all children (for families whose label universe
	// shrinks between scrapes, e.g. per-n solve counts after a reset).
	Reset()
}

type familySetter struct{ f *family }

func (s familySetter) Set(value float64, labelValues ...string) {
	ch := s.f.childFor(labelValues)
	switch s.f.kind {
	case KindCounter:
		// Collected counters are absolute: keep the full-precision
		// float for rendering and mirror the delta into the integer
		// counter for value readers.
		ch.cf.Store(value)
		cur := ch.c.Value()
		if nv := uint64(value); nv > cur {
			ch.c.Add(nv - cur)
		}
	case KindGauge:
		ch.g.Set(value)
	}
}

func (s familySetter) Reset() {
	s.f.mu.Lock()
	s.f.children = make(map[string]*child)
	s.f.order = nil
	s.f.mu.Unlock()
}

// RegisterGaugeFunc registers a labeled gauge family whose children
// are repopulated by collect at every scrape. collect runs with no
// registry locks held.
func (r *Registry) RegisterGaugeFunc(name, help string, collect func(set LabelSetter), labels ...string) {
	f := r.register(name, help, KindGauge, labels, nil)
	if f == nil {
		return
	}
	f.collect = collect
}

// RegisterCounterFunc registers a labeled counter family whose
// children are set from absolute values by collect at every scrape.
func (r *Registry) RegisterCounterFunc(name, help string, collect func(set LabelSetter), labels ...string) {
	f := r.register(name, help, KindCounter, labels, nil)
	if f == nil {
		return
	}
	f.collect = collect
}

// sortedFamilies snapshots the family list in registration order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

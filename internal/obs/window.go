// Windowed histogram views: exported point-in-time snapshots, deltas
// between two snapshots, and interpolating quantile / threshold-fraction
// estimates over them. This is the arithmetic the ops plane's burn-rate
// computation runs on — a cumulative histogram can only answer "since
// boot", while an SLO burn rate needs "over the last five minutes",
// which is the difference of two snapshots.
//
// Every estimate here interpolates linearly inside the owning bucket.
// The naive alternatives — returning the bucket upper bound for a
// quantile, or charging the whole straddled bucket as "over threshold"
// — systematically overstate latency on coarse bucket grids, and a
// load-shedder fed overstated burn rates sheds traffic it should have
// served. TestQuantilePinnedDistributions pins the interpolation
// against known distributions for both the live and the snapshot path.
package obs

import "math"

// HistogramSnapshot is a point-in-time copy of one histogram: the
// finite bucket upper bounds and the cumulative counts aligned to them
// (the final entry is the total including the implicit +Inf bucket).
// The zero value is an empty snapshot.
type HistogramSnapshot struct {
	// Uppers are the ascending finite bucket upper bounds.
	Uppers []float64 `json:"uppers,omitempty"`
	// Cum are cumulative observation counts; Cum[i] counts observations
	// <= Uppers[i], and Cum[len(Uppers)] is the total.
	Cum []uint64 `json:"cum,omitempty"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum,omitempty"`
}

// Snapshot copies the histogram's current state. Nil-safe: a nil
// histogram yields an empty snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	cum, _, sum := h.snapshot()
	return HistogramSnapshot{Uppers: h.uppers, Cum: cum, Sum: sum}
}

// Count returns the total number of observations in the snapshot.
func (s HistogramSnapshot) Count() uint64 {
	if len(s.Cum) == 0 {
		return 0
	}
	return s.Cum[len(s.Cum)-1]
}

// Sub returns the window delta s - older: the observations recorded
// between the older snapshot and this one. Mismatched bucket layouts
// (or an older snapshot that is somehow ahead, e.g. across a counter
// reset) degrade to this snapshot taken alone — a too-large window is
// the safe failure mode for a burn-rate reader, a negative count is
// not.
func (s HistogramSnapshot) Sub(older HistogramSnapshot) HistogramSnapshot {
	if len(older.Cum) != len(s.Cum) || len(older.Uppers) != len(s.Uppers) {
		return s
	}
	out := HistogramSnapshot{Uppers: s.Uppers, Cum: make([]uint64, len(s.Cum)), Sum: s.Sum - older.Sum}
	for i := range s.Cum {
		if older.Cum[i] > s.Cum[i] {
			return s
		}
		out.Cum[i] = s.Cum[i] - older.Cum[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the owning bucket. NaN when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return quantileFromCum(s.Uppers, s.Cum, q)
}

// FractionOver estimates the fraction of observations strictly above
// threshold, interpolating linearly inside the bucket the threshold
// falls in (charging the whole straddled bucket would overstate the
// violation rate). Returns 0 when the snapshot is empty.
func (s HistogramSnapshot) FractionOver(threshold float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	var below, lower float64
	var cum uint64
	for i := range s.Cum {
		upper := math.Inf(1)
		if i < len(s.Uppers) {
			upper = s.Uppers[i]
		}
		n := s.Cum[i] - cum
		if threshold >= upper {
			below = float64(s.Cum[i])
		} else {
			if threshold > lower && n > 0 && !math.IsInf(upper, 1) {
				below += float64(n) * (threshold - lower) / (upper - lower)
			}
			break
		}
		cum = s.Cum[i]
		lower = upper
	}
	frac := (float64(total) - below) / float64(total)
	if frac < 0 {
		return 0
	}
	return frac
}

// quantileFromCum is the shared quantile estimate over cumulative
// bucket counts: find the bucket holding the q-th observation and
// interpolate linearly within it. The live Histogram.Quantile and the
// snapshot/delta path both delegate here, so DumpText's p50/p99 and
// the burn-rate math can never disagree on the estimator.
func quantileFromCum(uppers []float64, cum []uint64, q float64) float64 {
	if len(cum) == 0 {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	lower := 0.0
	var prev uint64
	for i := range cum {
		n := cum[i] - prev
		upper := math.Inf(1)
		if i < len(uppers) {
			upper = uppers[i]
		}
		if n > 0 && float64(cum[i]) >= rank {
			if math.IsInf(upper, 1) {
				return lower // best effort for the overflow bucket
			}
			frac := (rank - float64(prev)) / float64(n)
			return lower + (upper-lower)*frac
		}
		if !math.IsInf(upper, 1) {
			lower = upper
		}
		prev = cum[i]
	}
	return lower
}

package obs

import (
	"math"
	"testing"
)

func approxEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestQuantilePinnedDistributions pins the interpolating quantile
// estimator against distributions whose estimates can be computed by
// hand, on both the live Histogram path and the snapshot path. A
// regression to "return the bucket upper bound" breaks every case
// where the expected value is strictly inside a bucket.
func TestQuantilePinnedDistributions(t *testing.T) {
	buckets := []float64{1, 2, 3, 4}

	cases := []struct {
		name string
		obs  []float64 // value repeated count times
		reps []int
		q    float64
		want float64
	}{
		// 100 observations uniformly attributed to bucket (1,2]:
		// rank r maps to 1 + r/100.
		{"uniform-p50", []float64{1.5}, []int{100}, 0.50, 1.5},
		{"uniform-p99", []float64{1.5}, []int{100}, 0.99, 1.99},
		{"uniform-p25", []float64{1.5}, []int{100}, 0.25, 1.25},
		// 50/50 bimodal in (0,1] and (2,3]: p50 is the top of the
		// first mode, p75 halfway through the second mode's bucket
		// (rank 75 is the 25th of 50 obs in (2,3]), p10 inside the
		// first.
		{"bimodal-p50", []float64{0.5, 2.5}, []int{50, 50}, 0.50, 1.0},
		{"bimodal-p75", []float64{0.5, 2.5}, []int{50, 50}, 0.75, 2.5},
		{"bimodal-p10", []float64{0.5, 2.5}, []int{50, 50}, 0.10, 0.2},
		// Single observation: any quantile interpolates inside its
		// bucket (rank q*1 of 1 observation in (2,3]).
		{"point-p50", []float64{2.5}, []int{1}, 0.50, 2.5},
		{"point-p99", []float64{2.5}, []int{1}, 0.99, 2.99},
		// Everything in the +Inf overflow bucket: best effort is the
		// last finite bound.
		{"overflow-p99", []float64{100}, []int{10}, 0.99, 4},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.NewHistogram("q_test_seconds", "", buckets)
			for i, v := range tc.obs {
				for j := 0; j < tc.reps[i]; j++ {
					h.Observe(v)
				}
			}
			if got := h.Quantile(tc.q); !approxEq(got, tc.want) {
				t.Errorf("live Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
			if got := h.Snapshot().Quantile(tc.q); !approxEq(got, tc.want) {
				t.Errorf("snapshot Quantile(%v) = %v, want %v", tc.q, got, tc.want)
			}
		})
	}
}

func TestQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_empty_seconds", "", []float64{1, 2})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty live Quantile = %v, want NaN", got)
	}
	if got := h.Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty snapshot Quantile = %v, want NaN", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("zero-value snapshot Quantile = %v, want NaN", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil Quantile = %v, want NaN", got)
	}
	if nilH.Snapshot().Count() != 0 {
		t.Errorf("nil Snapshot not empty")
	}
}

// TestSnapshotSub pins the window-delta arithmetic the burn-rate
// computation depends on: a delta sees only the observations recorded
// between the two snapshots, and degraded inputs fall back to the
// newer snapshot taken whole.
func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("sub_test_seconds", "", []float64{1, 2, 3})

	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	older := h.Snapshot()
	for i := 0; i < 30; i++ {
		h.Observe(2.5)
	}
	newer := h.Snapshot()

	delta := newer.Sub(older)
	if got := delta.Count(); got != 30 {
		t.Fatalf("delta count = %d, want 30", got)
	}
	// All 30 delta observations sit in (2,3]; the old 0.5s are gone.
	if got := delta.Quantile(0.5); !approxEq(got, 2.5) {
		t.Errorf("delta p50 = %v, want 2.5", got)
	}
	if got := delta.Sum; !approxEq(got, 30*2.5) {
		t.Errorf("delta sum = %v, want 75", got)
	}

	// Layout mismatch degrades to the newer snapshot.
	other := HistogramSnapshot{Uppers: []float64{1}, Cum: []uint64{5, 5}}
	if got := newer.Sub(other).Count(); got != newer.Count() {
		t.Errorf("mismatched-layout Sub count = %d, want %d", got, newer.Count())
	}
	// A regressed counter (older ahead of newer) also degrades.
	if got := older.Sub(newer).Count(); got != older.Count() {
		t.Errorf("regressed Sub count = %d, want %d", got, older.Count())
	}
	// Zero-value older is a same-layout no-op only if layouts match;
	// here it mismatches, so we get newer back — still safe.
	if got := newer.Sub(HistogramSnapshot{}).Count(); got != newer.Count() {
		t.Errorf("zero older Sub count = %d, want %d", got, newer.Count())
	}
}

// TestFractionOver pins the threshold-violation estimate: interpolate
// inside the straddled bucket instead of charging it whole.
func TestFractionOver(t *testing.T) {
	buckets := []float64{1, 2, 3}

	cases := []struct {
		name      string
		obs       []float64
		reps      []int
		threshold float64
		want      float64
	}{
		// 100 obs in (1,2]: threshold 1.5 splits the bucket in half.
		{"half-bucket", []float64{1.5}, []int{100}, 1.5, 0.5},
		// Threshold at a bucket boundary: everything at/below is in.
		{"boundary", []float64{1.5}, []int{100}, 2, 0},
		{"below-all", []float64{1.5}, []int{100}, 0.5, 1},
		// Mixed: 50 in (0,1], 50 in (2,3]; threshold 2.5 cuts the
		// upper mode in half -> 25% over.
		{"bimodal", []float64{0.5, 2.5}, []int{50, 50}, 2.5, 0.25},
		// Threshold beyond the finite buckets with overflow mass:
		// overflow observations count as over (conservative).
		{"overflow", []float64{0.5, 100}, []int{90, 10}, 5, 0.1},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.NewHistogram("frac_test_seconds", "", buckets)
			for i, v := range tc.obs {
				for j := 0; j < tc.reps[i]; j++ {
					h.Observe(v)
				}
			}
			if got := h.Snapshot().FractionOver(tc.threshold); !approxEq(got, tc.want) {
				t.Errorf("FractionOver(%v) = %v, want %v", tc.threshold, got, tc.want)
			}
		})
	}

	if got := (HistogramSnapshot{}).FractionOver(1); got != 0 {
		t.Errorf("empty FractionOver = %v, want 0", got)
	}
}

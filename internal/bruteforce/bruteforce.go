// Package bruteforce exhaustively enumerates resilience schedules for
// small chains and returns the one minimizing a pluggable evaluator. It
// exists to verify the dynamic programs of internal/core: the DP optimum
// must equal the brute-force optimum over the algorithm's admissible
// action set (exactly under the paper's closed forms, and up to the
// Section III-B accounting residual under the exact Markov oracle).
package bruteforce

import (
	"fmt"
	"math"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Evaluator computes the expected makespan of a fixed complete schedule.
// Both core.Evaluate (closed forms) and evaluate.Exact (Markov renewal)
// satisfy this signature.
type Evaluator func(*chain.Chain, platform.Platform, *schedule.Schedule) (float64, error)

// MaxTasks bounds the exhaustive search: 5^(n-1) schedules are evaluated,
// which stays below two million up to n = 10.
const MaxTasks = 10

// ActionSet returns the per-boundary action choices admissible for the
// given algorithm (the final boundary is always V*+M+D).
func ActionSet(alg core.Algorithm) ([]schedule.Action, error) {
	switch alg {
	case core.AlgADV:
		// Disk checkpoints (with co-located memory checkpoint) and
		// guaranteed verifications only.
		return []schedule.Action{
			schedule.None,
			schedule.Guaranteed,
			schedule.Guaranteed | schedule.Memory | schedule.Disk,
		}, nil
	case core.AlgADMVStar:
		return []schedule.Action{
			schedule.None,
			schedule.Guaranteed,
			schedule.Guaranteed | schedule.Memory,
			schedule.Guaranteed | schedule.Memory | schedule.Disk,
		}, nil
	case core.AlgADMV:
		return []schedule.Action{
			schedule.None,
			schedule.Partial,
			schedule.Guaranteed,
			schedule.Guaranteed | schedule.Memory,
			schedule.Guaranteed | schedule.Memory | schedule.Disk,
		}, nil
	default:
		return nil, fmt.Errorf("bruteforce: unknown algorithm %q", alg)
	}
}

// Result is the outcome of an exhaustive search.
type Result struct {
	// Best is the minimizing schedule.
	Best *schedule.Schedule
	// Value is its evaluated expected makespan.
	Value float64
	// Enumerated is the number of schedules evaluated.
	Enumerated int
}

// Optimal enumerates every complete schedule whose boundary actions come
// from the algorithm's action set and returns the evaluator's minimizer.
func Optimal(alg core.Algorithm, c *chain.Chain, p platform.Platform, eval Evaluator) (*Result, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("bruteforce: empty chain")
	}
	n := c.Len()
	if n > MaxTasks {
		return nil, fmt.Errorf("bruteforce: n = %d exceeds the enumeration bound %d", n, MaxTasks)
	}
	actions, err := ActionSet(alg)
	if err != nil {
		return nil, err
	}

	sched, err := schedule.New(n)
	if err != nil {
		return nil, err
	}
	sched.Set(n, schedule.Disk)

	res := &Result{Value: math.Inf(1)}
	choice := make([]int, n) // choice[i] indexes actions for boundary i+1; boundary n fixed
	for {
		v, err := eval(c, p, sched)
		if err != nil {
			return nil, fmt.Errorf("bruteforce: evaluating %v: %w", sched, err)
		}
		res.Enumerated++
		if v < res.Value {
			res.Value = v
			res.Best = sched.Clone()
		}
		// Advance the mixed-radix counter over boundaries 1..n-1.
		i := 0
		for ; i < n-1; i++ {
			choice[i]++
			if choice[i] < len(actions) {
				sched.Set(i+1, actions[choice[i]])
				break
			}
			choice[i] = 0
			sched.Set(i+1, actions[0])
		}
		if i == n-1 {
			return res, nil
		}
	}
}

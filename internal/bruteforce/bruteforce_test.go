package bruteforce

import (
	"math"
	"math/rand"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

func TestActionSetSizes(t *testing.T) {
	for _, tc := range []struct {
		alg  core.Algorithm
		want int
	}{
		{core.AlgADV, 3},
		{core.AlgADMVStar, 4},
		{core.AlgADMV, 5},
	} {
		set, err := ActionSet(tc.alg)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != tc.want {
			t.Errorf("%s: %d actions, want %d", tc.alg, len(set), tc.want)
		}
	}
	if _, err := ActionSet("bogus"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestEnumerationCount(t *testing.T) {
	c, _ := workload.Uniform(4, 4000)
	res, err := Optimal(core.AlgADMV, c, platform.Hera(), core.Evaluate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Enumerated != 125 { // 5^(4-1)
		t.Errorf("enumerated %d schedules, want 125", res.Enumerated)
	}
}

func TestBoundsChecked(t *testing.T) {
	c, _ := workload.Uniform(MaxTasks+1, 1000)
	if _, err := Optimal(core.AlgADV, c, platform.Hera(), core.Evaluate); err == nil {
		t.Error("n beyond MaxTasks should fail")
	}
	if _, err := Optimal(core.AlgADV, nil, platform.Hera(), core.Evaluate); err == nil {
		t.Error("nil chain should fail")
	}
}

// TestDPMatchesBruteForceClosedForm is the central optimality check: the
// dynamic programs minimize the paper's closed-form objective, so their
// value must equal the exhaustive minimum of core.Evaluate over the
// admissible action set — for every algorithm.
func TestDPMatchesBruteForceClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	platforms := []platform.Platform{platform.Hera(), platform.CoastalSSD()}
	// Inflated-rate variants exercise checkpoint-heavy optima.
	hot := platform.Hera()
	hot.LambdaF *= 100
	hot.LambdaS *= 100
	platforms = append(platforms, hot)

	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(5) // up to 6 tasks
		var c *chain.Chain
		var err error
		if trial%2 == 0 {
			c, err = workload.Random(rng, n, 25000)
		} else {
			c, err = workload.Generate(workload.Patterns()[trial%3], n, 25000)
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range platforms {
			for _, alg := range core.Algorithms() {
				dp, err := core.Plan(alg, c, p)
				if err != nil {
					t.Fatal(err)
				}
				bf, err := Optimal(alg, c, p, core.Evaluate)
				if err != nil {
					t.Fatal(err)
				}
				if rel := math.Abs(dp.ExpectedMakespan-bf.Value) / bf.Value; rel > 1e-10 {
					t.Errorf("trial %d %s %s n=%d: DP %.8f vs brute force %.8f (rel %.2e)\nDP:  %v\nBF:  %v",
						trial, p.Name, alg, n, dp.ExpectedMakespan, bf.Value, rel,
						dp.Schedule, bf.Best)
				}
			}
		}
	}
}

// TestDPNearOptimalUnderExactOracle quantifies the regret of the ADMV
// accounting against the exact model semantics: the schedule the DP picks,
// valued by the exact oracle, must be within a hair of the true optimum
// found by brute force under the same oracle.
func TestDPNearOptimalUnderExactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hot := platform.Hera()
	hot.LambdaF *= 50
	hot.LambdaS *= 50
	worst := 0.0
	for trial := 0; trial < 4; trial++ {
		n := 2 + rng.Intn(4)
		c, err := workload.Random(rng, n, 25000)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []platform.Platform{platform.Hera(), hot} {
			for _, alg := range core.Algorithms() {
				dp, err := core.Plan(alg, c, p)
				if err != nil {
					t.Fatal(err)
				}
				dpExact, err := evaluate.Exact(c, p, dp.Schedule)
				if err != nil {
					t.Fatal(err)
				}
				bf, err := Optimal(alg, c, p, evaluate.Exact)
				if err != nil {
					t.Fatal(err)
				}
				regret := (dpExact - bf.Value) / bf.Value
				if regret < -1e-10 {
					t.Fatalf("DP schedule beats the brute-force optimum: impossible (regret %.2e)", regret)
				}
				tol := 1e-10
				if alg == core.AlgADMV {
					tol = 1e-4 // Section III-B accounting residual
				}
				if regret > tol {
					t.Errorf("trial %d %s %s: DP regret under exact oracle %.3e > %.0e",
						trial, p.Name, alg, regret, tol)
				}
				if regret > worst {
					worst = regret
				}
			}
		}
	}
	t.Logf("worst DP regret under the exact oracle: %.3e", worst)
}

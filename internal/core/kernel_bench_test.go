package core

import (
	"fmt"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

// benchChain returns the paper-scale uniform chain used by the kernel
// benchmarks.
func benchChain(b *testing.B, n int) *chain.Chain {
	b.Helper()
	c, err := workload.Uniform(n, workload.PaperTotalWeight)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkKernelPlan measures repeated planning through one long-lived
// kernel (the engine-worker shape): every solve after the first runs the
// dynamic program in recycled arenas, so allocs/op collapses to the
// Result and its Schedule.
func BenchmarkKernelPlan(b *testing.B) {
	p := platform.Hera()
	for _, bc := range []struct {
		name string
		alg  Algorithm
		n    int
	}{
		{"ADMVStar-50", AlgADMVStar, 50},
		{"ADMV-20", AlgADMV, 20},
	} {
		c := benchChain(b, bc.n)
		b.Run(bc.name, func(b *testing.B) {
			k := NewKernel()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := k.PlanOpts(bc.alg, c, p, Options{SolveWorkers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelPlanCold is the allocation baseline for the same
// instances: a brand-new kernel per solve has empty pools, so every
// iteration pays the full arena construction the seed solver paid on
// every call. Comparing allocs/op against BenchmarkKernelPlan is the
// pooled-vs-unpooled headline.
func BenchmarkKernelPlanCold(b *testing.B) {
	p := platform.Hera()
	for _, bc := range []struct {
		name string
		alg  Algorithm
		n    int
	}{
		{"ADMVStar-50", AlgADMVStar, 50},
		{"ADMV-20", AlgADMV, 20},
	} {
		c := benchChain(b, bc.n)
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewKernel().PlanOpts(bc.alg, c, p, Options{SolveWorkers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplanSuffix measures the adaptive supervisor's hot path: a
// mid-run rate drift forces the second half of a 50-task chain to be
// re-planned. The incremental route re-solves the window in place with
// pooled scratch.
func BenchmarkReplanSuffix(b *testing.B) {
	p := platform.Hera()
	drifted := p
	drifted.LambdaF *= 4
	drifted.LambdaS *= 4
	c := benchChain(b, 50)
	const from = 25
	k := NewKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := k.ReplanSuffix(AlgADMVStar, c, drifted, from, Options{SolveWorkers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplanSuffixViaFreshChain is the pre-kernel route the
// supervisor used to take: materialize the suffix as a new chain, then
// run a full solve with cold arenas.
func BenchmarkReplanSuffixViaFreshChain(b *testing.B) {
	p := platform.Hera()
	drifted := p
	drifted.LambdaF *= 4
	drifted.LambdaS *= 4
	c := benchChain(b, 50)
	const from = 25
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		suffix, err := chain.FromWeights(c.Weights()[from:]...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := NewKernel().PlanOpts(AlgADMVStar, suffix, drifted, Options{SolveWorkers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelParallelSolve is the speedup curve of the in-kernel
// worker team on the mega-chain shape it exists for: ADV* with disk
// checkpoints restricted to sparse boundaries and a 32-checkpoint
// budget, so the memory level between allowed positions — the phase the
// team tiles across disk positions — carries the DP work instead of the
// serial-friendly unconstrained disk level. The allowed-boundary
// spacing scales as n/25 (floor 8) so a single iteration at n=4000
// stays in whole seconds instead of half a minute while still exposing
// ~25 heavily imbalanced memory levels for the team to tile; at that
// size the segment-table build (also tiled across the team) carries a
// comparable share of the runtime.
// Sub-benchmarks sweep n × team width; the w1/w4 ratio at the largest
// n is the speedup gate cmd/benchjson tracks (on a multi-core runner
// it must show >= 2x separation; a 1-core builder records a flat
// curve).
func BenchmarkKernelParallelSolve(b *testing.B) {
	p := platform.Hera()
	for _, n := range []int{200, 1000, 4000} {
		c := benchChain(b, n)
		cons, err := NewConstraints(n)
		if err != nil {
			b.Fatal(err)
		}
		spacing := n / 25
		if spacing < 8 {
			spacing = 8
		}
		for i := 1; i < n; i++ {
			if i%spacing != 0 {
				cons.Forbid(i, schedule.Disk)
			}
		}
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n%d/w%d", n, w), func(b *testing.B) {
				k := NewKernel()
				opts := Options{Constraints: cons, MaxDiskCheckpoints: 32, SolveWorkers: w}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := k.PlanOpts(AlgADV, c, p, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkKernelStealSolve exercises the steal lane of the team
// scheduler two ways. The n*/w* curve is the sparse-disk mega-chain
// shape (as BenchmarkKernelParallelSolve, smaller sizes) under the
// owner-computes span scheduler; its w1/w4 ratio at the largest n is
// the steal-lane speedup gate cmd/benchjson tracks. The skew/* pair is
// the adversarial shape the stealing exists for: an UNCONSTRAINED ADV
// chain whose memory level at disk position d1 costs O((n-d1)^2), so
// contiguous uniform spans hand one owner quadratically more work than
// another and only stealing rebalances it — size-sorted scheduling
// front-loads the wide levels, the narrow-tail owners go idle first and
// steal the remainder.
func BenchmarkKernelStealSolve(b *testing.B) {
	p := platform.Hera()
	for _, n := range []int{500, 2000} {
		c := benchChain(b, n)
		cons, err := NewConstraints(n)
		if err != nil {
			b.Fatal(err)
		}
		spacing := n / 25
		if spacing < 8 {
			spacing = 8
		}
		for i := 1; i < n; i++ {
			if i%spacing != 0 {
				cons.Forbid(i, schedule.Disk)
			}
		}
		for _, w := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("n%d/w%d", n, w), func(b *testing.B) {
				k := NewKernel()
				opts := Options{Constraints: cons, MaxDiskCheckpoints: 32, SolveWorkers: w}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := k.PlanOpts(AlgADV, c, p, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	cSkew := benchChain(b, 1000)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("skew/w%d", w), func(b *testing.B) {
			k := NewKernel()
			opts := Options{MaxDiskCheckpoints: 8, SolveWorkers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := k.PlanOpts(AlgADV, cSkew, p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelTunedScratch quantifies workload-aware bucket tuning:
// a steady mix of n=50 solves served by the power-of-two bucket carries
// cap-64 arenas (every table sized for 64 tasks), while a kernel tuned
// on its own solve histogram (Kernel.Tune) serves the same mix from an
// exact cap-50 pool. The arena-bytes/solve metric reports the scratch
// footprint backing each solve — the before/after of exact per-n pools;
// time and allocs/op must not regress (both paths recycle one arena).
func BenchmarkKernelTunedScratch(b *testing.B) {
	p := platform.Hera()
	c := benchChain(b, 50)
	run := func(b *testing.B, k *Kernel, cap int) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := k.PlanOpts(AlgADMVStar, c, p, Options{SolveWorkers: 1}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(ArenaBytes(cap)), "arena-bytes/solve")
	}
	b.Run("bucketed", func(b *testing.B) {
		run(b, NewKernel(), 64)
	})
	b.Run("tuned", func(b *testing.B) {
		k := NewKernel()
		if _, err := k.PlanOpts(AlgADMVStar, c, p, Options{SolveWorkers: 1}); err != nil {
			b.Fatal(err) // prime the solve histogram Tune consumes
		}
		k.Tune(k.Stats())
		run(b, k, 50)
	})
}

package core

import (
	"math"
	"testing"

	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

// hotHera returns Hera with rates inflated so the unconstrained optimum
// wants several disk checkpoints.
func hotHera() platform.Platform {
	p := platform.Hera()
	p.LambdaF *= 100
	p.LambdaS *= 20
	return p
}

func TestUnlimitedBudgetMatchesPlan(t *testing.T) {
	c, _ := workload.Uniform(18, 25000)
	p := hotHera()
	for _, alg := range Algorithms() {
		free := mustPlan(t, alg, c, p)
		for _, k := range []int{0, 18, 99} {
			res, err := PlanOpts(alg, c, p, Options{MaxDiskCheckpoints: k})
			if err != nil {
				t.Fatalf("%s k=%d: %v", alg, k, err)
			}
			if res.ExpectedMakespan != free.ExpectedMakespan {
				t.Errorf("%s k=%d: %f != unconstrained %f",
					alg, k, res.ExpectedMakespan, free.ExpectedMakespan)
			}
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	c, _ := workload.Uniform(18, 25000)
	p := hotHera()
	free := mustPlan(t, AlgADMVStar, c, p)
	if free.Schedule.Counts().Disk < 3 {
		t.Fatalf("test premise: unconstrained optimum should want >= 3 disk ckpts, got %d",
			free.Schedule.Counts().Disk)
	}
	for k := 1; k <= 4; k++ {
		res, err := PlanOpts(AlgADMVStar, c, p, Options{MaxDiskCheckpoints: k})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Schedule.Counts().Disk; got > k {
			t.Errorf("k=%d: placed %d disk checkpoints", k, got)
		}
		if err := res.Schedule.ValidateComplete(); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
		// The DP value must match the closed-form evaluation.
		ev, err := Evaluate(c, p, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(res.ExpectedMakespan, ev, 1e-9) {
			t.Errorf("k=%d: DP %f vs Evaluate %f", k, res.ExpectedMakespan, ev)
		}
	}
}

func TestBudgetMonotone(t *testing.T) {
	// A larger budget can only help.
	c, _ := workload.Uniform(16, 25000)
	p := hotHera()
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := PlanOpts(AlgADMVStar, c, p, Options{MaxDiskCheckpoints: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExpectedMakespan > prev*(1+1e-12) {
			t.Errorf("k=%d: optimum increased: %f > %f", k, res.ExpectedMakespan, prev)
		}
		prev = res.ExpectedMakespan
	}
}

func TestBudgetOneMeansFinalOnlyDisk(t *testing.T) {
	c, _ := workload.Uniform(12, 25000)
	p := hotHera()
	res, err := PlanOpts(AlgADMVStar, c, p, Options{MaxDiskCheckpoints: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Counts().Disk; got != 1 {
		t.Errorf("disk count = %d, want 1", got)
	}
	if !res.Schedule.At(12).Has(schedule.Disk) {
		t.Error("the single disk checkpoint must be the final one")
	}
}

func TestBudgetValidation(t *testing.T) {
	c, _ := workload.Uniform(5, 5000)
	if _, err := PlanOpts(AlgADMVStar, c, platform.Hera(), Options{MaxDiskCheckpoints: -2}); err == nil {
		t.Error("negative budget should fail")
	}
}

func TestBudgetWithConstraintsAndCosts(t *testing.T) {
	// All three optional inputs together: budget 2, boundary 6 forbidden
	// for disk, expensive boundary 9.
	c, _ := workload.Uniform(12, 25000)
	p := hotHera()
	cons := allowAll(t, 12)
	cons.Forbid(6, schedule.Disk)
	sizes := make([]float64, 12)
	for i := range sizes {
		sizes[i] = 1
	}
	sizes[8] = 50 // boundary 9
	costs, err := platform.ScaledCosts(p, sizes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlanOpts(AlgADMVStar, c, p, Options{
		Costs: costs, Constraints: cons, MaxDiskCheckpoints: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Schedule.Counts()
	if counts.Disk > 2 {
		t.Errorf("budget violated: %d disk checkpoints", counts.Disk)
	}
	if res.Schedule.At(6).Has(schedule.Disk) {
		t.Error("constraint violated at boundary 6")
	}
	if res.Schedule.At(9).Has(schedule.Memory) {
		t.Error("planner checkpointed the 50x boundary")
	}
	ev, err := EvaluateWithCosts(c, p, costs, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(res.ExpectedMakespan, ev, 1e-9) {
		t.Errorf("DP %f vs Evaluate %f", res.ExpectedMakespan, ev)
	}
}

func TestBudgetMatchesFilteredBruteForce(t *testing.T) {
	// Exhaustive check: budgeted DP == minimum of Evaluate over all
	// schedules with at most K disk checkpoints.
	c, _ := workload.Uniform(6, 25000)
	p := hotHera()
	for k := 1; k <= 3; k++ {
		res, err := PlanOpts(AlgADMVStar, c, p, Options{MaxDiskCheckpoints: k})
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		actions := []schedule.Action{
			schedule.None,
			schedule.Guaranteed,
			schedule.Guaranteed | schedule.Memory,
			schedule.Guaranteed | schedule.Memory | schedule.Disk,
		}
		s := schedule.MustNew(6)
		s.Set(6, schedule.Disk)
		var rec func(i int)
		rec = func(i int) {
			if i == 6 {
				if s.Counts().Disk > k {
					return
				}
				v, err := Evaluate(c, p, s)
				if err != nil {
					t.Fatal(err)
				}
				if v < best {
					best = v
				}
				return
			}
			for _, a := range actions {
				s.Set(i, a)
				rec(i + 1)
			}
			s.Set(i, schedule.None)
		}
		rec(1)
		if !relClose(res.ExpectedMakespan, best, 1e-10) {
			t.Errorf("k=%d: DP %f vs filtered brute force %f", k, res.ExpectedMakespan, best)
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

// randomCosts draws a per-boundary cost table with sizes in [0.2, 3].
func randomCosts(t *testing.T, rng *rand.Rand, p platform.Platform, n int) *platform.Costs {
	t.Helper()
	sizes := make([]float64, n)
	for i := range sizes {
		sizes[i] = 0.2 + 2.8*rng.Float64()
	}
	costs, err := platform.ScaledCosts(p, sizes)
	if err != nil {
		t.Fatal(err)
	}
	return costs
}

func TestUniformCostsMatchPlain(t *testing.T) {
	c, _ := workload.Uniform(15, 25000)
	p := platform.Hera()
	table, err := platform.UniformCosts(p, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		plain := mustPlan(t, alg, c, p)
		withCosts, err := PlanWithCosts(alg, c, p, table)
		if err != nil {
			t.Fatal(err)
		}
		if plain.ExpectedMakespan != withCosts.ExpectedMakespan {
			t.Errorf("%s: uniform cost table changed the optimum: %f vs %f",
				alg, plain.ExpectedMakespan, withCosts.ExpectedMakespan)
		}
		if !plain.Schedule.Equal(withCosts.Schedule) {
			t.Errorf("%s: uniform cost table changed the schedule", alg)
		}
	}
}

func TestCostTableValidation(t *testing.T) {
	c, _ := workload.Uniform(5, 5000)
	p := platform.Hera()
	wrong, _ := platform.UniformCosts(p, 4)
	if _, err := PlanWithCosts(AlgADMVStar, c, p, wrong); err == nil {
		t.Error("size mismatch should fail")
	}
	bad, _ := platform.UniformCosts(p, 5)
	if err := bad.Set(2, platform.BoundaryCosts{CD: -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := PlanWithCosts(AlgADMVStar, c, p, bad); err == nil {
		t.Error("negative cost should fail")
	}
	if err := bad.Set(9, platform.BoundaryCosts{}); err == nil {
		t.Error("out-of-range Set should fail")
	}
	if _, err := platform.ScaledCosts(p, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN size should fail")
	}
}

func TestPlannerAvoidsExpensiveBoundaries(t *testing.T) {
	// Boundary 1's costs exceed any possible re-execution saving (a
	// memory checkpoint there would cost 1.5e6 s against at most ~16000 s
	// of avoidable redo), while boundary 2 stays at the platform price:
	// the planner must skip the former and checkpoint the latter.
	c := chain.MustFromWeights(8000, 8000, 8000)
	p := platform.Hera()
	p.LambdaF *= 20
	p.LambdaS *= 20
	costs, err := platform.ScaledCosts(p, []float64{1e5, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlanWithCosts(AlgADMVStar, c, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.At(1).Has(schedule.Memory) {
		t.Errorf("planner checkpointed the 100x boundary: %v", res.Schedule)
	}
	if !res.Schedule.At(2).Has(schedule.Memory) {
		t.Errorf("planner skipped the cheap boundary: %v", res.Schedule)
	}
}

func TestDPMatchesEvaluateWithRandomCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(14)
		c, err := workload.Random(rng, n, 25000)
		if err != nil {
			t.Fatal(err)
		}
		p := platform.Hera()
		if trial%2 == 1 {
			p = platform.CoastalSSD()
		}
		costs := randomCosts(t, rng, p, n)
		for _, alg := range Algorithms() {
			res, err := PlanWithCosts(alg, c, p, costs)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := EvaluateWithCosts(c, p, costs, res.Schedule)
			if err != nil {
				t.Fatal(err)
			}
			if !relClose(res.ExpectedMakespan, ev, 1e-9) {
				t.Errorf("trial %d %s: DP %.8f vs Evaluate %.8f", trial, alg, res.ExpectedMakespan, ev)
			}
		}
	}
}

func TestCostDominanceStillHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	c, _ := workload.Uniform(12, 25000)
	p := platform.Atlas()
	costs := randomCosts(t, rng, p, 12)
	adv, err := PlanWithCosts(AlgADV, c, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	star, err := PlanWithCosts(AlgADMVStar, c, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	admv, err := PlanWithCosts(AlgADMV, c, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	if star.ExpectedMakespan > adv.ExpectedMakespan*(1+1e-12) ||
		admv.ExpectedMakespan > star.ExpectedMakespan*(1+1e-12) {
		t.Errorf("dominance violated under random costs: %f / %f / %f",
			adv.ExpectedMakespan, star.ExpectedMakespan, admv.ExpectedMakespan)
	}
}

func TestCheaperCostsNeverHurt(t *testing.T) {
	// Halving every boundary's costs cannot increase the optimum.
	rng := rand.New(rand.NewSource(55))
	c, _ := workload.Uniform(10, 25000)
	p := platform.Hera()
	costs := randomCosts(t, rng, p, 10)
	half, _ := platform.UniformCosts(p, 10)
	for i := 1; i <= 10; i++ {
		b := costs.At(i)
		if err := half.Set(i, platform.BoundaryCosts{
			CD: b.CD / 2, CM: b.CM / 2, RD: b.RD / 2,
			RM: b.RM / 2, VStar: b.VStar / 2, V: b.V / 2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	full, err := PlanWithCosts(AlgADMV, c, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := PlanWithCosts(AlgADMV, c, p, half)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.ExpectedMakespan > full.ExpectedMakespan*(1+1e-12) {
		t.Errorf("cheaper costs increased the optimum: %f > %f",
			cheap.ExpectedMakespan, full.ExpectedMakespan)
	}
}

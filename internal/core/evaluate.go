package core

import (
	"fmt"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Evaluate returns the model-expected makespan of a fixed schedule under
// the paper's analytic formulas (Equations (2)-(4) and their Section
// III-B extensions), without any optimization. The schedule must be
// complete (final boundary disk-checkpointed) and sized for the chain.
//
// Evaluate is the reference used to verify the dynamic programs: the
// expected makespan returned by Plan must equal Evaluate of the
// reconstructed schedule, and for small instances the brute-force minimum
// of Evaluate over all schedules must equal the DP optimum. Evaluate is
// itself validated against the independent Markov-chain oracle in
// internal/evaluate and the Monte-Carlo simulator in internal/sim.
func Evaluate(c *chain.Chain, p platform.Platform, sched *schedule.Schedule) (float64, error) {
	return EvaluateWithCosts(c, p, nil, sched)
}

// EvaluateWithCosts is Evaluate with per-boundary costs (nil for the
// platform constants).
func EvaluateWithCosts(c *chain.Chain, p platform.Platform, costs *platform.Costs, sched *schedule.Schedule) (float64, error) {
	e, err := NewEvaluator(c, p, costs)
	if err != nil {
		return 0, err
	}
	return e.Evaluate(sched)
}

// Evaluator evaluates fixed schedules for one (chain, platform, costs)
// triple, amortizing the O(n^2) exponential tables across calls. Search
// procedures that score many candidate schedules (greedy insertion,
// periodic scans, brute force) should build one Evaluator and reuse it.
// It is safe for concurrent use.
type Evaluator struct {
	s *solver
}

// NewEvaluator precomputes the model tables for the instance.
func NewEvaluator(c *chain.Chain, p platform.Platform, costs *platform.Costs) (*Evaluator, error) {
	s, err := newSolverWithCosts(c, p, AlgADMV, costs)
	if err != nil {
		return nil, err
	}
	return &Evaluator{s: s}, nil
}

// Evaluate returns the model-expected makespan of the fixed schedule.
func (e *Evaluator) Evaluate(sched *schedule.Schedule) (float64, error) {
	s := e.s
	if sched == nil {
		return 0, fmt.Errorf("core: nil schedule")
	}
	if sched.Len() != s.n {
		return 0, fmt.Errorf("core: schedule for %d tasks but chain has %d", sched.Len(), s.n)
	}
	if err := sched.ValidateComplete(); err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}

	total := 0.0     // accumulated E_disk terms of committed disk segments
	ememVal := 0.0   // E_mem(d1, m1) of the open disk segment
	everifVal := 0.0 // E_verif(d1, m1, v1) of the open memory segment
	d1, m1, v1 := 0, 0, 0
	var partials []int

	for i := 1; i <= s.n; i++ {
		a := sched.At(i)
		switch {
		case a.Has(schedule.Guaranteed):
			var seg float64
			if len(partials) == 0 {
				seg = s.eSegment(d1, m1, v1, i, ememVal, everifVal)
			} else {
				seg = s.epartialFixed(d1, m1, v1, i, partials, ememVal, everifVal)
				partials = partials[:0]
			}
			everifVal += seg
			v1 = i
			if a.Has(schedule.Memory) {
				ememVal += everifVal + s.cmAt(i)
				m1, everifVal = i, 0
				if a.Has(schedule.Disk) {
					total += ememVal + s.cdAt(i)
					d1, ememVal = i, 0
				}
			}
		case a.Has(schedule.Partial):
			partials = append(partials, i)
		}
	}
	return total, nil
}

// epartialFixed evaluates the Section III-B expectation of a verified
// segment (v1, v2] whose interior partial verification positions are
// given rather than optimized. It mirrors epartial exactly: Eright is
// chained right-to-left over the fixed positions, each sub-interval's E^-
// is re-executed e^{(lf+ls)W_{p2,v2}} times, and the closing guaranteed
// verification contributes the (V*-V) correction.
func (s *solver) epartialFixed(d1, m1, v1, v2 int, partials []int, ememVal, everifV1 float64) float64 {
	// points: v1 = q_0 < q_1 < ... < q_{k-1} < q_k = v2
	k := len(partials) + 1
	point := func(j int) int {
		switch {
		case j == 0:
			return v1
		case j == k:
			return v2
		default:
			return partials[j-1]
		}
	}

	// Eright at each point, right to left.
	er := make([]float64, k+1)
	er[k] = s.rm(m1)
	for j := k - 1; j >= 1; j-- {
		er[j] = s.eRightStep(d1, m1, point(j), point(j+1), ememVal, er[j+1])
	}

	// Accumulate the E^- terms with their re-execution multipliers.
	total := 0.0
	for j := 0; j < k; j++ {
		pj, pj1 := point(j), point(j+1)
		em := s.eMinus(d1, m1, pj, pj1, ememVal, everifV1, er[j+1])
		if pj1 == v2 {
			total += em + (s.sM1[s.idx(pj, v2)]+1)*(s.vstarAt(v2)-s.vAt(v2))
		} else {
			total += em * (s.fsM1[s.idx(pj1, v2)] + 1)
		}
	}
	return total
}

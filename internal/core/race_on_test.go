//go:build race

package core

// raceEnabled shrinks the randomized cross-validation sizes: the race
// detector multiplies solve time ~15x, and the suite's value is the
// byte-identity check, not the absolute n.
const raceEnabled = true

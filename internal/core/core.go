// Package core implements the paper's contribution: exact dynamic
// programming algorithms that place disk checkpoints, in-memory
// checkpoints, guaranteed verifications and partial verifications on a
// linear task graph so as to minimize the expected execution time under
// both fail-stop and silent errors.
//
// Three planners are provided, named after the paper's Section IV:
//
//   - ADV*  — single-level: disk checkpoints (with their co-located
//     memory checkpoint) and guaranteed verifications only. O(n^3).
//   - ADMV* — two-level: adds intermediate in-memory checkpoints
//     (Section III-A). O(n^4).
//   - ADMV  — complete: adds partial verifications between guaranteed
//     ones (Section III-B). O(n^6).
//
// The package also exposes Evaluate, an analytic evaluator that computes
// the model-expected makespan of a fixed schedule with the same closed
// forms; it is the reference the DPs are verified against (and is itself
// cross-checked against an independent Markov-chain oracle in
// internal/evaluate and a Monte-Carlo simulator in internal/sim).
package core

import (
	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Algorithm identifies one of the paper's planners.
type Algorithm string

// The three algorithms compared in Section IV.
const (
	AlgADV      Algorithm = "ADV*"
	AlgADMVStar Algorithm = "ADMV*"
	AlgADMV     Algorithm = "ADMV"
)

// Algorithms returns the planners in the paper's presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgADV, AlgADMVStar, AlgADMV}
}

// Result is the outcome of a planning run.
type Result struct {
	// Algorithm is the planner that produced this result.
	Algorithm Algorithm `json:"algorithm"`
	// ExpectedMakespan is the model-expected execution time in seconds,
	// including all resilience costs, recoveries and re-executions.
	ExpectedMakespan float64 `json:"expected_makespan"`
	// Schedule holds the optimal placement of all mechanisms.
	Schedule *schedule.Schedule `json:"schedule"`
}

// NormalizedMakespan returns the expected makespan divided by the
// error-free execution time (the chain's total weight), the metric
// plotted throughout the paper's Figures 5, 7 and 8.
func (r *Result) NormalizedMakespan(c *chain.Chain) float64 {
	return r.ExpectedMakespan / c.TotalWeight()
}

// Plan runs the named algorithm on the chain under the platform. Like
// every package-level planning function it is a thin wrapper over the
// process-wide Kernel, so repeated planning recycles scratch arenas.
func Plan(alg Algorithm, c *chain.Chain, p platform.Platform) (*Result, error) {
	return PlanOpts(alg, c, p, Options{})
}

// PlanADV runs the single-level algorithm (disk checkpoints and
// guaranteed verifications only).
func PlanADV(c *chain.Chain, p platform.Platform) (*Result, error) {
	return Plan(AlgADV, c, p)
}

// PlanADMVStar runs the two-level algorithm of Section III-A (disk and
// memory checkpoints, guaranteed verifications).
func PlanADMVStar(c *chain.Chain, p platform.Platform) (*Result, error) {
	return Plan(AlgADMVStar, c, p)
}

// PlanADMV runs the complete algorithm of Section III-B (disk and memory
// checkpoints, guaranteed and partial verifications).
func PlanADMV(c *chain.Chain, p platform.Platform) (*Result, error) {
	return Plan(AlgADMV, c, p)
}

package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The solver's three heavy phases all decompose into index-addressed
// tiles with no cross-tile data flow inside one phase:
//
//   - segment tables: row i of the (i,j) triangle depends on nothing
//     but the prefix weights;
//   - memory levels: the whole level of disk position d1 reads only the
//     read-only tables and writes only row d1 of the emem/mprev arenas;
//   - disk level: along the checkpoint-count axis k the recurrence is a
//     wavefront — every edisk[d2][k] reads only column k-1 — so the d2
//     entries of one k-level are independent.
//
// A solveTeam executes such a phase owner-computes style: the tile index
// range is cut into one contiguous span per participant, and each
// participant claims tiles from the bottom of its own span through a
// span-local cursor — in the balanced common case every claim touches
// only a worker-local cache line and the workers never communicate. A
// participant whose span runs dry steals the upper half of the
// most-loaded victim's remaining span (single leftover tiles are claimed
// in place rather than split), so imbalance is the only thing that
// generates cross-worker traffic. Both the bottom claim and the top
// steal CAS the same packed word, so no tile can ever be obtained twice.
//
// Byte-identity is indifferent to all of this: every tile writes to
// slots determined by its index alone, and any min-reduction stays
// inside a tile scanning candidates in index order with a strict '<'.
// Execution order — and therefore ownership layout and steal schedule —
// is invisible in the output: a parallel solve is byte-identical to the
// serial one for any worker count and any steal interleaving.
const (
	// defaultAutoCrossover is the window length where SolveWorkers: 0
	// (auto) starts engaging the team. Below it a serial ADV solve is
	// ~1 ms and the dispatch + handoff overhead (~10 µs plus a cold
	// helper wake-up) can eat the gain; above it every phase has
	// thousands of table rows per tile and the team wins on any
	// multi-core machine (see BenchmarkKernelParallelSolve). The live
	// threshold is an atomic the tuner may retarget from the measured
	// size histogram (Kernel.SetAutoCrossover).
	defaultAutoCrossover = 192
	// maxAutoWorkers caps the auto team: memory-level tiles each draw a
	// (n+1)^2 memScratch arena, so very wide teams trade cache locality
	// and memory for little extra speedup on the triangular phases.
	maxAutoWorkers = 8
	// maxTeamWorkers bounds explicit SolveWorkers requests and the
	// helper goroutines a kernel will ever keep.
	maxTeamWorkers = 64
	// teamIdleTimeout is how long a parked helper waits for work before
	// exiting; an idle kernel sheds its team instead of pinning
	// goroutines forever.
	teamIdleTimeout = time.Minute
)

// solveTeam is the persistent worker team a Kernel owns: helper
// goroutines parked on an unbuffered job channel, spawned lazily on the
// first parallel solve and retired after teamIdleTimeout without work.
// Handoff is synchronous (send with a default branch), so a job only
// counts the helpers that actually took it — if every helper is busy or
// gone, the caller drains every span itself (its own by local claims,
// the orphans by stealing) and the result is unchanged, just slower.
// Correctness never depends on a helper arriving.
type solveTeam struct {
	mu      sync.Mutex
	jobs    chan *stealJob
	workers int // live helper goroutines

	// crossover overrides defaultAutoCrossover when positive; the ops
	// tuner retargets it from the live size histogram so "big enough to
	// parallelize" tracks the observed workload instead of a constant.
	crossover atomic.Int64

	// Counters behind KernelStats.Parallel (core stays free of any obs
	// dependency: the observability plane projects these from outside).
	solves     atomic.Uint64 // solves that ran with a team (workers > 1)
	tiles      atomic.Uint64 // tiles dispatched across all phases
	localTiles atomic.Uint64 // tiles claimed from the claimant's own span
	steals     atomic.Uint64 // steal events (half-span grabs + leftover claims)
	busyNs     atomic.Int64  // nanoseconds participants spent draining tiles
	skips      atomic.Uint64 // auto-mode solves that stayed serial

	// widest remembers the largest worker count ever resolved, so
	// Kernel.Tune can pre-warm exact arenas with one memScratch per
	// prospective team member (see scratch.prewarm).
	widest atomic.Int64
}

// ownedSpan is one participant's contiguous tile range [next, limit),
// packed into a single uint64 (next low 32 bits, limit high 32) so the
// owner's bottom claim and a thief's top steal linearize through one
// CAS word — two participants can never obtain the same tile, which the
// race detector would otherwise flag as a write-write race even when
// the recomputed values are identical.
type ownedSpan struct {
	state atomic.Uint64
	// Pad to a 64-byte cache line: adjacent owners' cursors sharing a
	// line would re-introduce exactly the cross-core traffic the
	// per-worker ranges exist to remove.
	_ [56]byte
}

func packSpan(next, limit uint32) uint64 { return uint64(limit)<<32 | uint64(next) }

func unpackSpan(v uint64) (next, limit uint32) { return uint32(v), uint32(v >> 32) }

// reset installs a fresh range. Only the slot owner resets its span
// (initial cut at dispatch, then each stolen range it adopts), and only
// while the span is empty — an empty span is never CASed by anyone, so
// the store cannot race a claim or steal.
func (s *ownedSpan) reset(lo, hi int) { s.state.Store(packSpan(uint32(lo), uint32(hi))) }

// claim pops the bottom tile. Safe from any participant, not just the
// owner: a lone leftover tile (too small to split) is claimed directly
// off the victim.
func (s *ownedSpan) claim() (int, bool) {
	for {
		v := s.state.Load()
		next, limit := unpackSpan(v)
		if next >= limit {
			return 0, false
		}
		if s.state.CompareAndSwap(v, packSpan(next+1, limit)) {
			return int(next), true
		}
	}
}

// remaining reports how many unclaimed tiles the span holds.
func (s *ownedSpan) remaining() int {
	next, limit := unpackSpan(s.state.Load())
	if next >= limit {
		return 0
	}
	return int(limit - next)
}

// stealHalf removes the upper ⌊r/2⌋ tiles of a span with r remaining
// and returns the stolen range; it fails when fewer than two tiles
// remain (singles are claimed, not split, so the victim always keeps
// the tile its cursor may be mid-claim on).
func (s *ownedSpan) stealHalf() (lo, hi int, ok bool) {
	for {
		v := s.state.Load()
		next, limit := unpackSpan(v)
		if limit < next+2 {
			return 0, 0, false
		}
		mid := next + (limit-next+1)/2
		if s.state.CompareAndSwap(v, packSpan(next, mid)) {
			return int(mid), int(limit), true
		}
	}
}

// stealJob is one phase dispatch: tiles [0, total) cut into one owned
// span per participant slot. wg tracks the helpers that accepted the
// job; spans whose helper never arrived are drained by whoever goes
// idle first, so the job is work-conserving regardless of handoff luck.
type stealJob struct {
	spans []ownedSpan
	slot  atomic.Int64 // next unassigned participant slot
	run   func(tile int)
	wg    sync.WaitGroup
}

// drain is one participant's schedule: take a slot, exhaust the slot's
// own span by bottom claims, then repeatedly steal half the most-loaded
// victim's remainder (adopting it as the new own span) until every span
// is empty. Counters are accumulated locally and flushed once so the
// hot loop never touches shared cache lines.
//
// Termination is safe even though the idle scan is not atomic across
// spans: tiles only move between spans via a thief that installs them
// into its *own* span and drains that span before returning, so a
// participant that observes emptiness everywhere can leave — every
// remaining tile is already owned by a participant that will run it.
func (j *stealJob) drain(t *solveTeam) {
	slot := int(j.slot.Add(1)-1) % len(j.spans)
	own := &j.spans[slot]
	var local, stolen uint64
	owned := true // claims from the original cut count as local
	for {
		for {
			tile, ok := own.claim()
			if !ok {
				break
			}
			if owned {
				local++
			}
			j.run(tile)
		}
		victim, most := -1, 0
		for i := range j.spans {
			if r := j.spans[i].remaining(); r > most {
				victim, most = i, r
			}
		}
		if victim < 0 {
			break
		}
		if most >= 2 {
			if lo, hi, ok := j.spans[victim].stealHalf(); ok {
				own.reset(lo, hi)
				owned = false
				stolen++
			}
			continue // lost the race: rescan for a victim
		}
		if tile, ok := j.spans[victim].claim(); ok {
			stolen++
			j.run(tile)
		}
	}
	t.localTiles.Add(local)
	t.steals.Add(stolen)
}

// autoCrossover is the live auto-engage threshold: the tuner's override
// when set, defaultAutoCrossover otherwise.
func (t *solveTeam) autoCrossover() int {
	if c := t.crossover.Load(); c > 0 {
		return int(c)
	}
	return defaultAutoCrossover
}

// resolveSolveWorkers maps an Options.SolveWorkers request to the
// worker count one solve of an n-task window will use. Zero is the
// GOMAXPROCS-aware auto mode: it only engages above the crossover
// window length (small solves lose more to dispatch than they gain) and
// records declined engagements as crossover skips.
func (t *solveTeam) resolveSolveWorkers(requested, n int) (int, error) {
	switch {
	case requested < 0:
		return 0, fmt.Errorf("core: SolveWorkers must be non-negative, got %d", requested)
	case requested == 1:
		return 1, nil
	case requested > 1:
		w := min(requested, maxTeamWorkers)
		t.noteWidth(w)
		return w, nil
	}
	// Auto: engage only when the window is big enough to amortize the
	// team and the machine has more than one core to offer.
	if w := min(runtime.GOMAXPROCS(0), maxAutoWorkers); w > 1 && n >= t.autoCrossover() {
		t.noteWidth(w)
		return w, nil
	}
	t.skips.Add(1)
	return 1, nil
}

func (t *solveTeam) noteWidth(w int) {
	for {
		cur := t.widest.Load()
		if int64(w) <= cur || t.widest.CompareAndSwap(cur, int64(w)) {
			return
		}
	}
}

// run executes fn(0..tiles-1) on the caller plus up to workers-1 team
// helpers and returns when every tile has finished. Each participant
// owns a contiguous slice of the index range and claims it in ascending
// order; fn must confine its writes to slots derived from the tile
// index. Callers that want a non-index execution order (the size-sorted
// memory level) pass fn over a permutation: tile t runs order[t].
func (t *solveTeam) run(workers, tiles int, fn func(tile int)) {
	if tiles <= 0 {
		return
	}
	want := min(workers-1, tiles-1)
	if want <= 0 {
		for i := 0; i < tiles; i++ {
			fn(i)
		}
		return
	}
	t.tiles.Add(uint64(tiles))
	t.ensureWorkers(want)
	nspans := want + 1
	job := &stealJob{spans: make([]ownedSpan, nspans), run: fn}
	for s := 0; s < nspans; s++ {
		lo, hi := tileSpan(tiles, nspans, s)
		job.spans[s].reset(lo, hi)
	}
	for i, retried := 0, false; i < want; i++ {
		job.wg.Add(1)
		select {
		case t.jobs <- job:
			continue
		default:
		}
		if !retried {
			// Freshly spawned helpers may not have parked on the
			// channel yet; one yield is enough for them to arrive, and
			// a phase-sized job is worth the reschedule.
			retried = true
			runtime.Gosched()
		}
		select {
		case t.jobs <- job:
		default:
			job.wg.Done() // helpers all busy: idle participants steal this slot's span
		}
	}
	start := time.Now()
	job.drain(t)
	t.busyNs.Add(int64(time.Since(start)))
	job.wg.Wait()
}

// ensureWorkers grows the helper pool to at least want goroutines
// (bounded by maxTeamWorkers).
func (t *solveTeam) ensureWorkers(want int) {
	if want > maxTeamWorkers-1 {
		want = maxTeamWorkers - 1
	}
	t.mu.Lock()
	if t.jobs == nil {
		t.jobs = make(chan *stealJob)
	}
	for t.workers < want {
		t.workers++
		go t.worker()
	}
	t.mu.Unlock()
}

// worker is one parked helper: it drains jobs as they are handed off
// and exits after teamIdleTimeout without work. Because handoff is a
// synchronous send, a worker that has decided to exit simply stops
// being a send target — no job can be stranded with it.
func (t *solveTeam) worker() {
	timer := time.NewTimer(teamIdleTimeout)
	defer timer.Stop()
	for {
		select {
		case job := <-t.jobs:
			start := time.Now()
			job.drain(t)
			t.busyNs.Add(int64(time.Since(start)))
			job.wg.Done()
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(teamIdleTimeout)
		case <-timer.C:
			t.mu.Lock()
			t.workers--
			t.mu.Unlock()
			return
		}
	}
}

// liveWorkers reports the current helper goroutine count (a gauge for
// KernelStats.Parallel.Workers).
func (t *solveTeam) liveWorkers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.workers
}

// tileSpan returns the half-open index range of block b when [0, total)
// is cut into the given number of contiguous blocks (see tileCount).
func tileSpan(total, blocks, b int) (lo, hi int) {
	lo = b * total / blocks
	hi = (b + 1) * total / blocks
	return lo, hi
}

// tileCount picks how many tiles to cut an index range into: enough
// that stealing can rebalance the triangle's uneven block costs at a
// useful granularity (about eight claims per worker), never more than
// the range itself.
func tileCount(total, workers int) int {
	blocks := 8 * workers
	if blocks > total {
		blocks = total
	}
	return blocks
}

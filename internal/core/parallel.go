package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The solver's three heavy phases all decompose into index-addressed
// tiles with no cross-tile data flow inside one phase:
//
//   - segment tables: row i of the (i,j) triangle depends on nothing
//     but the prefix weights;
//   - memory levels: the whole level of disk position d1 reads only the
//     read-only tables and writes only row d1 of the emem/mprev arenas;
//   - disk level: along the checkpoint-count axis k the recurrence is a
//     wavefront — every edisk[d2][k] reads only column k-1 — so the d2
//     entries of one k-level are independent.
//
// A solveTeam executes such a phase as a bag of tiles drained through a
// single atomic cursor: tiles are claimed in ascending index order
// (for the triangular phases that is largest-work-first, the schedule
// that keeps worker finish times close), every tile writes to slots
// determined by its index alone, and any min-reduction stays inside a
// tile scanning candidates in index order with a strict '<'. Arrival
// order is therefore invisible in the output: a parallel solve is
// byte-identical to the serial one for any worker count.
const (
	// autoSolveCrossover is the window length where SolveWorkers: 0
	// (auto) starts engaging the team. Below it a serial ADV solve is
	// ~1 ms and the dispatch + handoff overhead (~10 µs plus a cold
	// helper wake-up) can eat the gain; above it every phase has
	// thousands of table rows per tile and the team wins on any
	// multi-core machine (see BenchmarkKernelParallelSolve).
	autoSolveCrossover = 192
	// maxAutoWorkers caps the auto team: memory-level tiles each draw a
	// (n+1)^2 memScratch arena, so very wide teams trade cache locality
	// and memory for little extra speedup on the triangular phases.
	maxAutoWorkers = 8
	// maxTeamWorkers bounds explicit SolveWorkers requests and the
	// helper goroutines a kernel will ever keep.
	maxTeamWorkers = 64
	// teamIdleTimeout is how long a parked helper waits for work before
	// exiting; an idle kernel sheds its team instead of pinning
	// goroutines forever.
	teamIdleTimeout = time.Minute
)

// solveTeam is the persistent worker team a Kernel owns: helper
// goroutines parked on an unbuffered job channel, spawned lazily on the
// first parallel solve and retired after teamIdleTimeout without work.
// Handoff is synchronous (send with a default branch), so a job only
// counts the helpers that actually took it — if every helper is busy or
// gone, the caller drains all tiles itself and the result is unchanged,
// just slower. Correctness never depends on a helper arriving.
type solveTeam struct {
	mu      sync.Mutex
	jobs    chan *teamJob
	workers int // live helper goroutines

	// Counters behind KernelStats.Parallel (core stays free of any obs
	// dependency: the observability plane projects these from outside).
	solves atomic.Uint64 // solves that ran with a team (workers > 1)
	tiles  atomic.Uint64 // tiles dispatched across all phases
	busyNs atomic.Int64  // nanoseconds participants spent draining tiles
	skips  atomic.Uint64 // auto-mode solves that stayed serial

	// widest remembers the largest worker count ever resolved, so
	// Kernel.Tune can pre-warm exact arenas with one memScratch per
	// prospective team member (see scratch.prewarm).
	widest atomic.Int64
}

// teamJob is one phase dispatch: tiles [0, total) claimed through the
// atomic cursor. wg tracks the helpers that accepted the job.
type teamJob struct {
	next  atomic.Int64
	total int64
	run   func(tile int)
	wg    sync.WaitGroup
}

// drain claims and runs tiles until the bag is empty.
func (j *teamJob) drain() {
	for {
		t := j.next.Add(1) - 1
		if t >= j.total {
			return
		}
		j.run(int(t))
	}
}

// resolveSolveWorkers maps an Options.SolveWorkers request to the
// worker count one solve of an n-task window will use. Zero is the
// GOMAXPROCS-aware auto mode: it only engages above the crossover
// window length (small solves lose more to dispatch than they gain) and
// records declined engagements as crossover skips.
func (t *solveTeam) resolveSolveWorkers(requested, n int) (int, error) {
	switch {
	case requested < 0:
		return 0, fmt.Errorf("core: SolveWorkers must be non-negative, got %d", requested)
	case requested == 1:
		return 1, nil
	case requested > 1:
		w := min(requested, maxTeamWorkers)
		t.noteWidth(w)
		return w, nil
	}
	// Auto: engage only when the window is big enough to amortize the
	// team and the machine has more than one core to offer.
	if w := min(runtime.GOMAXPROCS(0), maxAutoWorkers); w > 1 && n >= autoSolveCrossover {
		t.noteWidth(w)
		return w, nil
	}
	t.skips.Add(1)
	return 1, nil
}

func (t *solveTeam) noteWidth(w int) {
	for {
		cur := t.widest.Load()
		if int64(w) <= cur || t.widest.CompareAndSwap(cur, int64(w)) {
			return
		}
	}
}

// run executes fn(0..tiles-1) on the caller plus up to workers-1 team
// helpers and returns when every tile has finished. Tiles are claimed
// in ascending index order; fn must confine its writes to slots derived
// from the tile index.
func (t *solveTeam) run(workers, tiles int, fn func(tile int)) {
	if tiles <= 0 {
		return
	}
	want := min(workers-1, tiles-1)
	if want <= 0 {
		for i := 0; i < tiles; i++ {
			fn(i)
		}
		return
	}
	t.tiles.Add(uint64(tiles))
	t.ensureWorkers(want)
	job := &teamJob{total: int64(tiles), run: fn}
	for i, retried := 0, false; i < want; i++ {
		job.wg.Add(1)
		select {
		case t.jobs <- job:
			continue
		default:
		}
		if !retried {
			// Freshly spawned helpers may not have parked on the
			// channel yet; one yield is enough for them to arrive, and
			// a phase-sized job is worth the reschedule.
			retried = true
			runtime.Gosched()
		}
		select {
		case t.jobs <- job:
		default:
			job.wg.Done() // helpers all busy: the caller covers this slot
		}
	}
	start := time.Now()
	job.drain()
	t.busyNs.Add(int64(time.Since(start)))
	job.wg.Wait()
}

// ensureWorkers grows the helper pool to at least want goroutines
// (bounded by maxTeamWorkers).
func (t *solveTeam) ensureWorkers(want int) {
	if want > maxTeamWorkers-1 {
		want = maxTeamWorkers - 1
	}
	t.mu.Lock()
	if t.jobs == nil {
		t.jobs = make(chan *teamJob)
	}
	for t.workers < want {
		t.workers++
		go t.worker()
	}
	t.mu.Unlock()
}

// worker is one parked helper: it drains jobs as they are handed off
// and exits after teamIdleTimeout without work. Because handoff is a
// synchronous send, a worker that has decided to exit simply stops
// being a send target — no job can be stranded with it.
func (t *solveTeam) worker() {
	timer := time.NewTimer(teamIdleTimeout)
	defer timer.Stop()
	for {
		select {
		case job := <-t.jobs:
			start := time.Now()
			job.drain()
			t.busyNs.Add(int64(time.Since(start)))
			job.wg.Done()
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(teamIdleTimeout)
		case <-timer.C:
			t.mu.Lock()
			t.workers--
			t.mu.Unlock()
			return
		}
	}
}

// liveWorkers reports the current helper goroutine count (a gauge for
// KernelStats.Parallel.Workers).
func (t *solveTeam) liveWorkers() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.workers
}

// tileSpan returns the half-open index range of block b when [0, total)
// is cut into the given number of contiguous blocks (see tileCount).
func tileSpan(total, blocks, b int) (lo, hi int) {
	lo = b * total / blocks
	hi = (b + 1) * total / blocks
	return lo, hi
}

// tileCount picks how many blocks to cut an index range into: enough
// that the cursor can load-balance the triangle's uneven block costs
// (about eight claims per worker), never more than the range itself.
func tileCount(total, workers int) int {
	blocks := 8 * workers
	if blocks > total {
		blocks = total
	}
	return blocks
}

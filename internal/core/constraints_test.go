package core

import (
	"math/rand"
	"testing"

	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func allowAll(t *testing.T, n int) *Constraints {
	t.Helper()
	c, err := NewConstraints(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConstraintsValidation(t *testing.T) {
	if _, err := NewConstraints(0); err == nil {
		t.Error("n=0 should fail")
	}
	c, _ := workload.Uniform(5, 5000)
	cons := allowAll(t, 5)
	cons.Forbid(5, schedule.Disk)
	if _, err := PlanConstrained(AlgADMVStar, c, platform.Hera(), cons); err == nil {
		t.Error("forbidding the final disk checkpoint should fail")
	}
	wrongSize := allowAll(t, 4)
	if _, err := PlanConstrained(AlgADMVStar, c, platform.Hera(), wrongSize); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := PlanConstrained("bogus", c, platform.Hera(), nil); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestForbidPropagatesNesting(t *testing.T) {
	cons := allowAll(t, 3)
	cons.Forbid(1, schedule.Guaranteed)
	if cons.Permits(1, schedule.Memory) || cons.Permits(1, schedule.Disk) {
		t.Error("forbidding V* must also forbid M and D")
	}
	if !cons.Permits(1, schedule.Partial) {
		t.Error("partial verification should remain allowed")
	}
	cons.Forbid(2, schedule.Memory)
	if cons.Permits(2, schedule.Disk) {
		t.Error("forbidding M must also forbid D")
	}
	if !cons.Permits(2, schedule.Guaranteed) {
		t.Error("guaranteed verification should remain allowed")
	}
}

func TestConstraintBoundsPanic(t *testing.T) {
	cons := allowAll(t, 3)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range boundary should panic")
		}
	}()
	cons.Forbid(4, schedule.Partial)
}

func TestNilAndAllowAllMatchPlan(t *testing.T) {
	c, _ := workload.Uniform(15, 25000)
	p := platform.Atlas()
	for _, alg := range Algorithms() {
		free := mustPlan(t, alg, c, p)
		viaNil, err := PlanConstrained(alg, c, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		viaAll, err := PlanConstrained(alg, c, p, allowAll(t, 15))
		if err != nil {
			t.Fatal(err)
		}
		if viaNil.ExpectedMakespan != free.ExpectedMakespan || viaAll.ExpectedMakespan != free.ExpectedMakespan {
			t.Errorf("%s: unconstrained planning differs: %f / %f / %f",
				alg, free.ExpectedMakespan, viaNil.ExpectedMakespan, viaAll.ExpectedMakespan)
		}
		if !viaAll.Schedule.Equal(free.Schedule) {
			t.Errorf("%s: schedules differ under allow-all constraints", alg)
		}
	}
}

func TestConstraintsAreRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, _ := workload.Uniform(20, 25000)
	p := platform.Hera()
	for trial := 0; trial < 10; trial++ {
		cons := allowAll(t, 20)
		for i := 1; i < 20; i++ {
			switch rng.Intn(4) {
			case 0:
				cons.Forbid(i, schedule.Partial)
			case 1:
				cons.Forbid(i, schedule.Memory)
			case 2:
				cons.Forbid(i, schedule.Guaranteed)
			}
		}
		for _, alg := range Algorithms() {
			res, err := PlanConstrained(alg, c, p, cons)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 20; i++ {
				if a := res.Schedule.At(i); !cons.Permits(i, a) {
					t.Fatalf("trial %d %s: boundary %d carries forbidden action %v (allowed %v)",
						trial, alg, i, a, cons.Allowed(i))
				}
			}
			// Constrained optimum can never beat the unconstrained one.
			free := mustPlan(t, alg, c, p)
			if res.ExpectedMakespan < free.ExpectedMakespan*(1-1e-12) {
				t.Fatalf("trial %d %s: constrained %f beats unconstrained %f",
					trial, alg, res.ExpectedMakespan, free.ExpectedMakespan)
			}
		}
	}
}

func TestFullyForbiddenInterior(t *testing.T) {
	// Only the final boundary may act: the optimum is the bare chain.
	c, _ := workload.Uniform(10, 25000)
	p := platform.Hera()
	cons := allowAll(t, 10)
	for i := 1; i < 10; i++ {
		cons.Forbid(i, schedule.Partial|schedule.Guaranteed)
	}
	for _, alg := range Algorithms() {
		res, err := PlanConstrained(alg, c, p, cons)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		counts := res.Schedule.Counts()
		if counts != (schedule.Counts{Disk: 1, Memory: 1, Guaranteed: 1}) {
			t.Errorf("%s: counts = %+v, want final V*+M+D only", alg, counts)
		}
		bare := schedule.MustNew(10)
		bare.Set(10, schedule.Disk)
		want, err := Evaluate(c, p, bare)
		if err != nil {
			t.Fatal(err)
		}
		if !relClose(res.ExpectedMakespan, want, 1e-12) {
			t.Errorf("%s: makespan %f, want %f", alg, res.ExpectedMakespan, want)
		}
	}
}

func TestConstrainedMatchesFilteredBruteForce(t *testing.T) {
	// Exhaustively verify constrained optimality on a small instance: the
	// DP under constraints must equal the minimum of Evaluate over all
	// schedules that satisfy them.
	c, _ := workload.Uniform(5, 25000)
	p := platform.Hera()
	p.LambdaF *= 50
	p.LambdaS *= 50
	cons := allowAll(t, 5)
	cons.Forbid(2, schedule.Memory)  // boundary 2: verifications only
	cons.Forbid(3, schedule.Partial) // boundary 3: no partial
	cons.Forbid(4, schedule.Guaranteed)

	actions := []schedule.Action{
		schedule.None,
		schedule.Partial,
		schedule.Guaranteed,
		schedule.Guaranteed | schedule.Memory,
		schedule.Guaranteed | schedule.Memory | schedule.Disk,
	}
	best := 0.0
	found := false
	sched := schedule.MustNew(5)
	sched.Set(5, schedule.Disk)
	var enumerate func(i int)
	enumerate = func(i int) {
		if i == 5 {
			v, err := Evaluate(c, p, sched)
			if err != nil {
				t.Fatal(err)
			}
			if !found || v < best {
				best, found = v, true
			}
			return
		}
		for _, a := range actions {
			if !cons.Permits(i, a) {
				continue
			}
			sched.Set(i, a)
			enumerate(i + 1)
		}
		sched.Set(i, schedule.None)
	}
	enumerate(1)

	res, err := PlanConstrained(AlgADMV, c, p, cons)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(res.ExpectedMakespan, best, 1e-10) {
		t.Errorf("constrained DP %f vs filtered brute force %f", res.ExpectedMakespan, best)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"

	"chainckpt/internal/chain"
	"chainckpt/internal/expmath"
	"chainckpt/internal/platform"
)

// solver carries the state of one planning run over a window of the
// chain: the suffix of tasks T_{lo+1..N} (lo = 0 plans the whole chain).
// Its methods are safe to call from multiple goroutines as long as each
// goroutine uses its own scratch buffers: the precomputed tables are
// read-only after newWindowSolver.
//
// Every working array lives in a scratch arena, so a solver itself never
// allocates beyond its Result; a Kernel recycles arenas across solves.
type solver struct {
	c   *chain.Chain
	p   platform.Platform
	alg Algorithm
	// lo is the first boundary of the planning window: the window covers
	// tasks T_{lo+1}..T_N of the chain, re-indexed 1..n locally. Boundary
	// lo plays the role of the virtual task T0 (free recovery), which is
	// exactly the model's state right after a committed disk checkpoint —
	// the suffix re-planning case.
	lo  int
	n   int     // window length (tasks), local boundaries 0..n
	g   float64 // 1 - recall
	lfs float64 // lambda_f + lambda_s
	// pre[i] = w_{lo+1} + ... + w_{lo+i}: window prefix weights,
	// accumulated left to right exactly like chain.New builds its own
	// prefix, so a window solve is bit-identical to solving a standalone
	// chain of the same tasks.
	pre []float64
	// cons, when non-nil, restricts which boundaries may carry which
	// mechanisms (see PlanConstrained). Indexed by original boundary.
	cons *Constraints
	// costs, when non-nil, overrides the platform's constant costs with
	// per-boundary values (see PlanFull and platform.Costs). Indexed by
	// original boundary.
	costs *platform.Costs
	// maxDisk bounds the number of disk checkpoints (window boundaries
	// 1..n, including the mandatory final one). Always in [1, n].
	maxDisk int
	// workers is the resolved per-solve parallelism (see
	// Options.SolveWorkers and solveTeam.resolveSolveWorkers); 1 runs
	// every phase serially. The result is identical for any value.
	workers int
	// k is the kernel whose worker team a parallel solve borrows; nil
	// for fresh solvers (Evaluator), which never parallelize.
	k *Kernel
	// sc owns every working array of the run. Pooled solvers borrow it
	// from a Kernel; fresh solvers allocate their own.
	sc *scratch

	// Per-segment exponential tables, indexed by idx(i,j) for the segment
	// weight W_{i,j}. They depend only on the interval, not on checkpoint
	// positions, and turn the O(n^6) hot loop into pure arithmetic:
	//
	//	sInt = e^{ls W} * (e^{lf W}-1)/lf      sFm1 = e^{ls W} (e^{lf W}-1)
	//	fsM1 = e^{(lf+ls) W} - 1               sM1  = e^{ls W} - 1
	//	pf   = 1 - e^{-lf W}                   pfTl = pf * T^lost
	//	pnW  = (1-pf) * W
	sInt, sFm1, fsM1, sM1, pf, pfTl, pnW []float64
}

func newSolverWithCosts(c *chain.Chain, p platform.Platform, alg Algorithm, costs *platform.Costs) (*solver, error) {
	s, err := newWindowSolver(c, p, alg, 0, costs, nil)
	if err != nil {
		return nil, err
	}
	s.buildTables()
	return s, nil
}

// newWindowSolver builds a solver for the window [lo, N] of the chain.
// With sc == nil a fresh arena is allocated; otherwise sc must have
// capacity for at least N-lo tasks. The caller must call buildTables
// before solving or evaluating — the kernel path does so after
// applyOptions, so the table build can use the resolved worker team.
func newWindowSolver(c *chain.Chain, p platform.Platform, alg Algorithm, lo int, costs *platform.Costs, sc *scratch) (*solver, error) {
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("core: empty chain")
	}
	if lo < 0 || lo >= c.Len() {
		return nil, fmt.Errorf("core: window start %d out of range [0, %d)", lo, c.Len())
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if costs != nil {
		if costs.Len() != c.Len() {
			return nil, fmt.Errorf("core: cost table for %d tasks but chain has %d", costs.Len(), c.Len())
		}
		if err := costs.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	n := c.Len() - lo
	if sc == nil {
		sc = newScratch(n)
	} else if sc.cap < n {
		return nil, fmt.Errorf("core: scratch capacity %d too small for %d tasks", sc.cap, n)
	}
	s := &solver{
		c:       c,
		p:       p,
		alg:     alg,
		lo:      lo,
		n:       n,
		g:       p.G(),
		lfs:     p.LambdaF + p.LambdaS,
		costs:   costs,
		maxDisk: n,
		workers: 1,
		sc:      sc,
	}
	return s, nil
}

// buildTables fills the per-segment exponential tables. Each row i of
// the (i,j) triangle is a pure function of the prefix weights, so with
// a worker team the rows are tiled across it; every entry is computed
// by the same expression either way, keeping parallel builds
// bit-identical to serial ones.
func (s *solver) buildTables() {
	n := s.n
	size := (n + 1) * (n + 1)
	backing := s.sc.tables[: 7*size : 7*size]
	s.sInt, backing = backing[:size:size], backing[size:]
	s.sFm1, backing = backing[:size:size], backing[size:]
	s.fsM1, backing = backing[:size:size], backing[size:]
	s.sM1, backing = backing[:size:size], backing[size:]
	s.pf, backing = backing[:size:size], backing[size:]
	s.pfTl, backing = backing[:size:size], backing[size:]
	s.pnW = backing[:size:size]

	pre := s.sc.pre[: n+1 : n+1]
	pre[0] = 0
	for i := 1; i <= n; i++ {
		pre[i] = pre[i-1] + s.c.Weight(s.lo+i)
	}
	s.pre = pre

	lf, ls := s.p.LambdaF, s.p.LambdaS
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := i * (n + 1)
			for j := i; j <= n; j++ {
				w := pre[j] - pre[i]
				S := expmath.Growth(ls, w)
				pf := expmath.ProbError(lf, w)
				k := base + j
				s.sInt[k] = S * expmath.IntExpGrowth(lf, w)
				s.sFm1[k] = S * expmath.GrowthM1(lf, w)
				s.fsM1[k] = expmath.GrowthM1(s.lfs, w)
				s.sM1[k] = expmath.GrowthM1(ls, w)
				s.pf[k] = pf
				s.pfTl[k] = pf * expmath.TLost(lf, w)
				s.pnW[k] = (1 - pf) * w
			}
		}
	}
	if s.workers > 1 && s.k != nil {
		blocks := tileCount(n+1, s.workers)
		s.k.team.run(s.workers, blocks, func(b int) {
			lo, hi := tileSpan(n+1, blocks, b)
			rows(lo, hi)
		})
	} else {
		rows(0, n+1)
	}
}

// idx addresses the (i,j) entry of the segment tables (window-local).
func (s *solver) idx(i, j int) int { return i*(s.n+1) + j }

// rd returns the disk recovery cost of the checkpoint at window boundary
// d1, which is zero when that checkpoint is the window origin (the
// virtual task T0, or the committed disk checkpoint a suffix re-plan
// starts from: restarting from it is free by the model's convention).
func (s *solver) rd(d1 int) float64 {
	if d1 == 0 {
		return 0
	}
	if s.costs != nil {
		return s.costs.At(s.lo + d1).RD
	}
	return s.p.RD
}

// rm returns the memory recovery cost of the checkpoint at window
// boundary m1, zero at the window origin.
func (s *solver) rm(m1 int) float64 {
	if m1 == 0 {
		return 0
	}
	if s.costs != nil {
		return s.costs.At(s.lo + m1).RM
	}
	return s.p.RM
}

// cdAt, cmAt, vstarAt and vAt return the checkpoint and verification
// costs of window boundary i.
func (s *solver) cdAt(i int) float64 {
	if s.costs != nil {
		return s.costs.At(s.lo + i).CD
	}
	return s.p.CD
}

func (s *solver) cmAt(i int) float64 {
	if s.costs != nil {
		return s.costs.At(s.lo + i).CM
	}
	return s.p.CM
}

func (s *solver) vstarAt(i int) float64 {
	if s.costs != nil {
		return s.costs.At(s.lo + i).VStar
	}
	return s.p.VStar
}

func (s *solver) vAt(i int) float64 {
	if s.costs != nil {
		return s.costs.At(s.lo + i).V
	}
	return s.p.V
}

// eSegment implements the paper's Equation (4): the expected time to
// successfully execute the tasks T_{v1+1..v2} ending with a guaranteed
// verification, given the last disk checkpoint at d1 (with accumulated
// re-execution time ememVal = Emem(d1,m1)) and the last memory checkpoint
// at m1 (with everifV1 = Everif(d1,m1,v1)):
//
//	E = e^{ls W} ((e^{lf W}-1)/lf + V*)
//	  + e^{ls W} (e^{lf W}-1) (R_D + Emem(d1,m1))
//	  + (e^{(ls+lf) W}-1) Everif(d1,m1,v1)
//	  + (e^{ls W}-1) R_M
func (s *solver) eSegment(d1, m1, v1, v2 int, ememVal, everifV1 float64) float64 {
	k := s.idx(v1, v2)
	return s.sInt[k] + (s.sM1[k]+1)*s.vstarAt(v2) +
		s.sFm1[k]*(s.rd(d1)+ememVal) +
		s.fsM1[k]*everifV1 +
		s.sM1[k]*s.rm(m1)
}

// eMinus implements E^-(d1,m1,v1,p1,p2,v2) of Section III-B: the expected
// time for the sub-interval T_{p1+1..p2} between two partial
// verifications, with the left re-execution term Eleft removed (it is
// re-injected by the e^{(ls+lf)W_{p2,v2}} multiplier in epartial) and the
// silent-error branch split by the recall into a detected part (R_M) and
// an undetected part (erightP2 = Eright(d1,m1,v1,p2,v2)).
func (s *solver) eMinus(d1, m1, p1, p2 int, ememVal, everifV1, erightP2 float64) float64 {
	k := s.idx(p1, p2)
	return s.sInt[k] + (s.sM1[k]+1)*s.vAt(p2) +
		s.sFm1[k]*(s.rd(d1)+ememVal) +
		s.fsM1[k]*everifV1 +
		s.sM1[k]*((1-s.g)*s.rm(m1)+s.g*erightP2)
}

// eRightStep advances the Eright recurrence by one sub-interval: the
// expected time lost executing T_{p1+1..p2} while an undetected silent
// error is latent, where erightP2 is Eright at the next verification.
func (s *solver) eRightStep(d1, m1, p1, p2 int, ememVal, erightP2 float64) float64 {
	k := s.idx(p1, p2)
	return s.pfTl[k] + s.pf[k]*(s.rd(d1)+ememVal) +
		s.pnW[k] + (1-s.pf[k])*(s.vAt(p2)+(1-s.g)*s.rm(m1)+s.g*erightP2)
}

// partialScratch holds the per-goroutine O(n) working arrays of the
// partial-verification dynamic program.
type partialScratch struct {
	ep   []float64 // Epartial(d1,m1,v1,p1,v2) indexed by p1
	er   []float64 // Eright(d1,m1,v1,p1,v2) indexed by p1
	next []int     // argmin p2 of ep[p1]
}

func newPartialScratch(n int) *partialScratch {
	return &partialScratch{
		ep:   make([]float64, n+1),
		er:   make([]float64, n+1),
		next: make([]int, n+1),
	}
}

// epartial computes Epartial(d1,m1,v1,p1=v1,v2), the expected time to
// execute tasks T_{v1+1..v2} choosing optimal partial verification
// positions, per Section III-B. Partial verifications are placed from
// left to right, so the table is filled from the right (p1 = v2-1 down to
// v1); Eright at p1 uses the argmin p2 selected by Epartial at p1, which
// is why both arrays are maintained together. After the call, sc.next
// holds the optimal chain: v1 -> sc.next[v1] -> ... -> v2.
func (s *solver) epartial(sc *partialScratch, d1, m1, v1, v2 int, ememVal, everifV1 float64) float64 {
	sc.er[v2] = s.rm(m1)
	vGap := s.vstarAt(v2) - s.vAt(v2)
	for p1 := v2 - 1; p1 >= v1; p1-- {
		best := math.Inf(1)
		bestP2 := v2
		for p2 := p1 + 1; p2 <= v2; p2++ {
			if p2 != v2 && !s.mayPartial(p2) {
				continue
			}
			em := s.eMinus(d1, m1, p1, p2, ememVal, everifV1, sc.er[p2])
			var cand float64
			if p2 == v2 {
				// Base case: the interval is closed by the guaranteed
				// verification, whose extra cost (V*-V) is paid once per
				// non-fail-stop attempt, i.e. e^{ls W_{p1,v2}} times in
				// expectation. (The paper prints e^{(ls+lf)W} here, which
				// contradicts its own Equation (4): with e^{ls W} a segment
				// with no partial verifications reduces exactly to the
				// Section III-A closed form. See DESIGN.md.)
				cand = em + (s.sM1[s.idx(p1, v2)]+1)*vGap
			} else {
				// The interval T_{p1+1..p2} is re-executed
				// e^{(ls+lf)W_{p2,v2}} times in total due to errors
				// detected to its right (the Eleft accounting).
				cand = em*(s.fsM1[s.idx(p2, v2)]+1) + sc.ep[p2]
			}
			if cand < best {
				best, bestP2 = cand, p2
			}
		}
		sc.ep[p1] = best
		sc.next[p1] = bestP2
		sc.er[p1] = s.eRightStep(d1, m1, p1, bestP2, ememVal, sc.er[bestP2])
	}
	return sc.ep[v1]
}

// verifRow computes Everif(d1,m1,v2) for every v2 in [m1, n] into ev
// (paper Equation (1)), optionally recording the argmin v1 into arg. For
// ADMV the per-segment expectation comes from epartial, otherwise from
// the closed form of Equation (4).
func (s *solver) verifRow(d1, m1 int, ememVal float64, sc *partialScratch, ev []float64, arg []int) {
	ev[m1] = 0
	if arg != nil {
		arg[m1] = m1
	}
	for v2 := m1 + 1; v2 <= s.n; v2++ {
		best := math.Inf(1)
		bi := -1
		for v1 := m1; v1 < v2; v1++ {
			if v1 != m1 && !s.mayGuaranteed(v1) {
				continue
			}
			var seg float64
			if s.alg == AlgADMV {
				seg = s.epartial(sc, d1, m1, v1, v2, ememVal, ev[v1])
			} else {
				seg = s.eSegment(d1, m1, v1, v2, ememVal, ev[v1])
			}
			if cand := ev[v1] + seg; cand < best {
				best, bi = cand, v1
			}
		}
		ev[v2] = best
		if arg != nil {
			arg[v2] = bi
		}
	}
}

// memLevel computes Emem(d1,m2) for every m2 in [d1, n] into emem, with
// argmins into mprev. For ADV* the only admissible memory checkpoint
// position between two disk checkpoints is d1 itself, which restricts the
// inner minimization to m1 = d1 and recovers the single-level algorithm.
func (s *solver) memLevel(d1 int, emem []float64, mprev []int) {
	ms := s.sc.getMem(s.n, s.alg == AlgADMV)
	defer s.sc.putMem(ms)
	sc := ms.partial
	rows := ms.rows[: s.n+1 : s.n+1]
	clear(rows)
	stride := s.n + 1
	emem[d1] = 0
	mprev[d1] = d1
	for m1 := d1; m1 <= s.n; m1++ {
		if m1 > d1 {
			best := math.Inf(1)
			bi := -1
			for mp := d1; mp < m1; mp++ {
				if rows[mp] == nil {
					continue // ADV*: only mp == d1 has a row
				}
				if cand := emem[mp] + rows[mp][m1] + s.cmAt(m1); cand < best {
					best, bi = cand, mp
				}
			}
			emem[m1], mprev[m1] = best, bi
		}
		if m1 < s.n && (s.alg != AlgADV || m1 == d1) && (m1 == d1 || s.mayMemory(m1)) {
			row := ms.rowBuf[m1*stride : (m1+1)*stride : (m1+1)*stride]
			s.verifRow(d1, m1, emem[m1], sc, row, nil)
			rows[m1] = row
		}
	}
}

// memLevelOrder builds the memory-phase schedule: the admissible disk
// positions, sorted by a work estimate for each level (verified rows it
// will fill times the window width — roughly the cells it touches)
// descending, ties broken ascending-d1 so the order is deterministic.
// Dispatching the widest levels first keeps the finishing tail short:
// a straggler that claimed a huge level last would serialize the whole
// phase behind it. The order is pure scheduling — every level writes
// only its own row, so any permutation yields byte-identical plans.
func (s *solver) memLevelOrder() []int {
	n := s.n
	order := make([]int, 0, n)
	for d1 := 0; d1 < n; d1++ {
		if s.mayDisk(d1) {
			order = append(order, d1)
		}
	}
	var suffix []int
	if s.alg != AlgADV {
		// suffix[i] counts admissible memory boundaries in [i, n): the
		// verified rows a level rooted at d1 fills beyond its own. ADV
		// pins m1 == d1, so its levels all have exactly one row.
		suffix = make([]int, n+1)
		for i := n - 1; i >= 0; i-- {
			suffix[i] = suffix[i+1]
			if s.mayMemory(i) {
				suffix[i]++
			}
		}
	}
	est := func(d1 int) int {
		rows := 1
		if suffix != nil {
			rows += suffix[d1]
		}
		return rows * (n - d1 + 1)
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := est(order[a]), est(order[b])
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})
	return order
}

// diskCell fills edisk[d2][k] as the strict-< argmin over predecessor
// disk positions d1 of edisk[d1][k-1] + Emem(d1,d2) + C_D(d2), scanning
// d1 ascending.
func (s *solver) diskCell(edisk [][]float64, diskPrev [][]int, ememAll [][]float64, d2, k int) {
	best := math.Inf(1)
	bi := -1
	for d1 := 0; d1 < d2; d1++ {
		if ememAll[d1] == nil {
			continue // boundary may not carry a disk checkpoint
		}
		if cand := edisk[d1][k-1] + ememAll[d1][d2] + s.cdAt(d2); cand < best {
			best, bi = cand, d1
		}
	}
	edisk[d2][k], diskPrev[d2][k] = best, bi
}

// run executes the full three-level dynamic program and reconstructs the
// optimal schedule. The memory-level tables for distinct disk positions
// d1 are independent given the segment tables and are tiled across the
// kernel's worker team; the disk level is a wavefront along the
// checkpoint-count axis, parallel in d2 within each k-level.
func (s *solver) run() (*Result, error) {
	n := s.n
	dp := s.sc.ensureDP(n)
	stride := n + 1
	ememAll := dp.ememHdr[:n:n]
	memPrevAll := dp.mprvHdr[:n:n]
	clear(ememAll)
	clear(memPrevAll)

	// row is duplicated into each branch rather than hoisted: a single
	// hoisted closure would be captured by the team closure below and
	// escape to the heap even when the serial branch runs, costing the
	// warm serial solve two allocs it is gated not to make.
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fast path: no goroutines or channel traffic. Batch
		// schedulers that already run one solver per worker use this.
		for d1 := 0; d1 < n; d1++ {
			if s.mayDisk(d1) {
				emem := dp.ememBuf[d1*stride : (d1+1)*stride : (d1+1)*stride]
				mprev := dp.mprvBuf[d1*stride : (d1+1)*stride : (d1+1)*stride]
				s.memLevel(d1, emem, mprev)
				ememAll[d1] = emem
				memPrevAll[d1] = mprev
			}
		}
	} else {
		// Each tile is one memory level; every level writes only row d1
		// of the arenas, so arrival order is invisible. The schedule is
		// dense (forbidden boundaries never become tiles) and work-size-
		// sorted: the widest levels sit at the front of the owner spans,
		// so the deliberate imbalance is ironed out by stealing and the
		// finishing tail stays short.
		row := func(d1 int) {
			emem := dp.ememBuf[d1*stride : (d1+1)*stride : (d1+1)*stride]
			mprev := dp.mprvBuf[d1*stride : (d1+1)*stride : (d1+1)*stride]
			s.memLevel(d1, emem, mprev)
			ememAll[d1] = emem
			memPrevAll[d1] = mprev
		}
		order := s.memLevelOrder()
		s.k.team.run(workers, len(order), func(t int) {
			row(order[t])
		})
	}

	// Level 1: place disk checkpoints. The extra dimension k counts the
	// disk checkpoints used so far, bounding them by the budget; with the
	// default budget of n the dimension is exact but harmless (the level
	// is quadratic either way and far off the critical path).
	K := s.maxDisk
	edisk := dp.edskHdr[: n+1 : n+1] // edisk[d2][k], k checkpoints in 1..d2
	diskPrev := dp.dprvHdr[: n+1 : n+1]
	for d2 := 0; d2 <= n; d2++ {
		edisk[d2] = dp.edskBuf[d2*(K+1) : (d2+1)*(K+1) : (d2+1)*(K+1)]
		diskPrev[d2] = dp.dprvBuf[d2*(K+1) : (d2+1)*(K+1) : (d2+1)*(K+1)]
		for k := range edisk[d2] {
			edisk[d2][k] = math.Inf(1)
			diskPrev[d2][k] = -1
		}
	}
	edisk[0][0] = 0
	// diskCell fills edisk[d2][k] from column k-1; the inner scan is the
	// same ascending strict-< argmin under both schedules below, so the
	// serial and tiled orders compute bit-identical entries. It is a
	// method rather than a shared closure so the serial branch never
	// materializes a heap-escaping closure (see row above).
	if workers <= 1 {
		for d2 := 1; d2 <= n; d2++ {
			if !s.mayDisk(d2) {
				continue
			}
			for k := 1; k <= K; k++ {
				s.diskCell(edisk, diskPrev, ememAll, d2, k)
			}
		}
	} else {
		// Anti-diagonal scheduling for the interval recurrence: cell
		// (d2,k) reads only column k-1, so each k-level is a bag of
		// independent d2 tiles with a barrier between levels. The tile
		// space is the dense list of admissible positions — forbidden
		// boundaries are compacted out up front instead of claimed and
		// skipped.
		allowed := make([]int, 0, n)
		for d2 := 1; d2 <= n; d2++ {
			if s.mayDisk(d2) {
				allowed = append(allowed, d2)
			}
		}
		blocks := tileCount(len(allowed), workers)
		for k := 1; k <= K; k++ {
			s.k.team.run(workers, blocks, func(b int) {
				lo, hi := tileSpan(len(allowed), blocks, b)
				for i := lo; i < hi; i++ {
					s.diskCell(edisk, diskPrev, ememAll, allowed[i], k)
				}
			})
		}
	}

	// The budget is an upper bound: take the best final value over k.
	bestK := -1
	bestV := math.Inf(1)
	for k := 1; k <= K; k++ {
		if edisk[n][k] < bestV {
			bestV, bestK = edisk[n][k], k
		}
	}
	if bestK < 0 {
		return nil, fmt.Errorf("core: no feasible schedule (constraints and budget leave none)")
	}

	sched, err := s.reconstruct(bestK, diskPrev, memPrevAll, ememAll)
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:        s.alg,
		ExpectedMakespan: bestV,
		Schedule:         sched,
	}, nil
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// FuzzPlanInvariants fuzzes the planners across random instances and
// platform parameters and asserts the structural invariants that must
// hold for any input: valid complete schedules, DP value == closed-form
// re-evaluation, algorithm dominance, and a makespan at least the
// error-free floor.
func FuzzPlanInvariants(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(1), uint8(1))
	f.Add(int64(2), uint8(1), uint8(0), uint8(3))
	f.Add(int64(3), uint8(16), uint8(4), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, fMult, sMult uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%16)
		c, err := workload.Random(rng, n, 1000+rng.Float64()*50000)
		if err != nil {
			t.Skip()
		}
		p := platform.Atlas()
		p.LambdaF *= float64(fMult % 64)
		p.LambdaS *= float64(sMult % 64)
		p.Recall = rng.Float64()

		floor := c.TotalWeight() + p.VStar + p.CM + p.CD
		var values []float64
		for _, alg := range Algorithms() {
			res, err := Plan(alg, c, p)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if err := res.Schedule.ValidateComplete(); err != nil {
				t.Fatalf("%s: invalid schedule: %v", alg, err)
			}
			if math.IsNaN(res.ExpectedMakespan) || res.ExpectedMakespan < floor-1e-9 {
				t.Fatalf("%s: makespan %f below floor %f", alg, res.ExpectedMakespan, floor)
			}
			ev, err := Evaluate(c, p, res.Schedule)
			if err != nil {
				t.Fatalf("%s: Evaluate: %v", alg, err)
			}
			if math.Abs(ev-res.ExpectedMakespan) > 1e-8*math.Max(1, ev) {
				t.Fatalf("%s: DP %.10g != Evaluate %.10g", alg, res.ExpectedMakespan, ev)
			}
			values = append(values, res.ExpectedMakespan)
		}
		// ADMV <= ADMV* <= ADV* (the order of Algorithms()).
		if values[1] > values[0]*(1+1e-12) || values[2] > values[1]*(1+1e-12) {
			t.Fatalf("dominance violated: ADV*=%g ADMV*=%g ADMV=%g", values[0], values[1], values[2])
		}
	})
}

package core

import (
	"fmt"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Constraints restricts which mechanisms each task boundary may carry.
// Real workflows often cannot checkpoint everywhere: a kernel may hold
// huge transient state (no memory checkpoint), pin the parallel file
// system (no disk checkpoint), or lack a cheap detector (no partial
// verification). The dynamic programs honor these restrictions and stay
// optimal over the constrained schedule space.
//
// The zero restriction (NewConstraints) allows everything everywhere.
type Constraints struct {
	n       int
	allowed []schedule.Action // allowed[i] for boundary i, 1-based; [0] unused
}

// NewConstraints returns constraints allowing every mechanism at every
// boundary of an n-task chain.
func NewConstraints(n int) (*Constraints, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: constraints need at least one task")
	}
	c := &Constraints{n: n, allowed: make([]schedule.Action, n+1)}
	for i := 1; i <= n; i++ {
		c.allowed[i] = schedule.Partial | schedule.Guaranteed | schedule.Memory | schedule.Disk
	}
	return c, nil
}

// Forbid removes mechanisms from a boundary's allowed set. Forbidding
// Guaranteed also forbids Memory and Disk (they require the guaranteed
// verification); forbidding Memory also forbids Disk.
func (c *Constraints) Forbid(i int, mechanisms schedule.Action) {
	c.check(i)
	if mechanisms.Has(schedule.Guaranteed) {
		mechanisms |= schedule.Memory
	}
	if mechanisms.Has(schedule.Memory) {
		mechanisms |= schedule.Disk
	}
	c.allowed[i] &^= mechanisms
}

// Len returns the number of task boundaries the constraints cover.
func (c *Constraints) Len() int { return c.n }

// Allowed reports the mechanisms boundary i may carry.
func (c *Constraints) Allowed(i int) schedule.Action {
	c.check(i)
	return c.allowed[i]
}

// Permits reports whether action a may be placed at boundary i.
func (c *Constraints) Permits(i int, a schedule.Action) bool {
	c.check(i)
	return c.allowed[i]&a == a
}

// Suffix returns the constraints for the last n-from boundaries as a
// standalone table (suffix boundary j maps to original boundary from+j).
// It is the explicit-slicing counterpart of Kernel.ReplanSuffix, which
// consumes the full table in place; the equivalence suite uses it to
// prove both routes identical.
func (c *Constraints) Suffix(from int) (*Constraints, error) {
	if from < 0 || from >= c.n {
		return nil, fmt.Errorf("core: suffix start %d out of range [0, %d)", from, c.n)
	}
	out, err := NewConstraints(c.n - from)
	if err != nil {
		return nil, err
	}
	copy(out.allowed[1:], c.allowed[from+1:])
	return out, nil
}

// validate checks that the constraints leave at least one complete
// schedule: the final boundary must accept a full disk checkpoint.
func (c *Constraints) validate(n int) error {
	if c.n != n {
		return fmt.Errorf("core: constraints sized for %d tasks but chain has %d", c.n, n)
	}
	full := schedule.Guaranteed | schedule.Memory | schedule.Disk
	if c.allowed[n]&full != full {
		return fmt.Errorf("core: final boundary %d must allow V*+M+D (the output must reach stable storage)", n)
	}
	return nil
}

func (c *Constraints) check(i int) {
	if i < 1 || i > c.n {
		panic(fmt.Sprintf("core: constraint boundary %d out of range [1, %d]", i, c.n))
	}
}

// PlanConstrained runs the named algorithm restricted to schedules whose
// boundary actions satisfy cons. With nil constraints it is Plan.
func PlanConstrained(alg Algorithm, c *chain.Chain, p platform.Platform, cons *Constraints) (*Result, error) {
	return PlanFull(alg, c, p, nil, cons)
}

// PlanWithCosts runs the named algorithm with per-boundary checkpoint,
// recovery and verification costs (see platform.Costs). With a nil table
// it is Plan.
func PlanWithCosts(alg Algorithm, c *chain.Chain, p platform.Platform, costs *platform.Costs) (*Result, error) {
	return PlanFull(alg, c, p, costs, nil)
}

// PlanFull is the most general fixed-shape planning entry point:
// per-boundary costs and placement constraints, both optional.
func PlanFull(alg Algorithm, c *chain.Chain, p platform.Platform, costs *platform.Costs, cons *Constraints) (*Result, error) {
	return PlanOpts(alg, c, p, Options{Costs: costs, Constraints: cons})
}

// Options bundles every optional planning input.
type Options struct {
	// Costs overrides the platform's constant costs per boundary.
	Costs *platform.Costs
	// Constraints restricts which boundaries may carry which mechanisms.
	Constraints *Constraints
	// MaxDiskCheckpoints bounds the number of disk checkpoints, counting
	// the mandatory final one (I/O-pressure or quota limits on the
	// parallel file system). Zero means unlimited; otherwise it must be
	// at least 1.
	MaxDiskCheckpoints int
	// SolveWorkers sets the worker team one solve may tile its dynamic
	// program across (see internal/core/parallel.go). 1 is the fully
	// serial path, which is what batch schedulers such as
	// internal/engine want when they already parallelize across
	// instances. Zero — the default — is GOMAXPROCS-aware auto: the
	// team engages only above a crossover window length where the
	// dispatch overhead amortizes (solves below it are counted as
	// crossover skips in KernelStats.Parallel). Larger values pin the
	// team width. SolveWorkers never changes the result, only the wall
	// clock: parallel solves are byte-identical to serial ones.
	SolveWorkers int
}

// PlanOpts runs the named algorithm under the given options. It is a
// thin wrapper over the process-wide solver kernel, so repeated calls
// recycle their dynamic-program scratch (see Kernel).
func PlanOpts(alg Algorithm, c *chain.Chain, p platform.Platform, opts Options) (*Result, error) {
	return DefaultKernel().PlanOpts(alg, c, p, opts)
}

// The mask helpers below answer "may this window boundary serve in this
// role"; window boundary 0 is the virtual task T0 (or the committed disk
// checkpoint a suffix re-plan starts from) and always qualifies as an
// existing checkpoint/verification position.

func (s *solver) mayDisk(i int) bool {
	if i == 0 || s.cons == nil {
		return true
	}
	return s.cons.Permits(s.lo+i, schedule.Guaranteed|schedule.Memory|schedule.Disk)
}

func (s *solver) mayMemory(i int) bool {
	if i == 0 || s.cons == nil {
		return true
	}
	return s.cons.Permits(s.lo+i, schedule.Guaranteed|schedule.Memory)
}

func (s *solver) mayGuaranteed(i int) bool {
	if i == 0 || s.cons == nil {
		return true
	}
	return s.cons.Permits(s.lo+i, schedule.Guaranteed)
}

func (s *solver) mayPartial(i int) bool {
	if i == 0 || s.cons == nil {
		return true
	}
	return s.cons.Permits(s.lo+i, schedule.Partial)
}

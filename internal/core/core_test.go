package core

import (
	"math"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

func TestPlanUnknownAlgorithm(t *testing.T) {
	c := chain.MustFromWeights(1, 2)
	if _, err := Plan("ADXV", c, platform.Hera()); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestPlanRejectsBadInputs(t *testing.T) {
	if _, err := PlanADMVStar(nil, platform.Hera()); err == nil {
		t.Error("nil chain should fail")
	}
	p := platform.Hera()
	p.LambdaF = -1
	if _, err := PlanADMVStar(chain.MustFromWeights(1), p); err == nil {
		t.Error("invalid platform should fail")
	}
}

func TestNoErrorsMeansNoIntermediateActions(t *testing.T) {
	// With lambda_f = lambda_s = 0 any extra mechanism only adds cost, so
	// the optimum is the bare chain plus the mandatory final V*+M+D.
	p := platform.Hera()
	p.LambdaF, p.LambdaS = 0, 0
	c, _ := workload.Uniform(20, 25000)
	for _, alg := range Algorithms() {
		res, err := Plan(alg, c, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		want := 25000 + p.VStar + p.CM + p.CD
		if !relClose(res.ExpectedMakespan, want, 1e-12) {
			t.Errorf("%s: makespan = %.6f, want %.6f", alg, res.ExpectedMakespan, want)
		}
		counts := res.Schedule.Counts()
		if counts.Disk != 1 || counts.Memory != 1 || counts.Guaranteed != 1 || counts.Partial != 0 {
			t.Errorf("%s: counts = %+v, want single final V*+M+D", alg, counts)
		}
	}
}

func TestSingleTaskClosedForm(t *testing.T) {
	// For n = 1 the only schedule is T1 followed by V*+M+D, and the DP
	// value must match Equation (4) computed by hand.
	p := platform.Atlas()
	w := 2500.0
	c := chain.MustFromWeights(w)
	lf, ls := p.LambdaF, p.LambdaS
	S := math.Exp(ls * w)
	want := S*(math.Expm1(lf*w)/lf+p.VStar) + S*math.Expm1(lf*w)*0 + 0 + 0 // d1 = m1 = 0: free recoveries
	want += p.CM + p.CD
	for _, alg := range Algorithms() {
		res, err := Plan(alg, c, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !relClose(res.ExpectedMakespan, want, 1e-12) {
			t.Errorf("%s: makespan = %.10f, want %.10f", alg, res.ExpectedMakespan, want)
		}
	}
}

func TestDPMatchesEvaluateOnOwnSchedule(t *testing.T) {
	// The DP's claimed optimum must equal the analytic evaluation of the
	// schedule it reconstructs: this validates tables, argmins and
	// reconstruction against the closed forms.
	chains := map[string]*chain.Chain{
		"uniform10":  mustGen(t, workload.PatternUniform, 10),
		"uniform25":  mustGen(t, workload.PatternUniform, 25),
		"decrease15": mustGen(t, workload.PatternDecrease, 15),
		"highlow20":  mustGen(t, workload.PatternHighLow, 20),
	}
	for name, c := range chains {
		for _, p := range platform.All() {
			for _, alg := range Algorithms() {
				res, err := Plan(alg, c, p)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", name, p.Name, alg, err)
				}
				ev, err := Evaluate(c, p, res.Schedule)
				if err != nil {
					t.Fatalf("%s/%s/%s: Evaluate: %v", name, p.Name, alg, err)
				}
				if !relClose(res.ExpectedMakespan, ev, 1e-9) {
					t.Errorf("%s/%s/%s: DP = %.10f, Evaluate = %.10f",
						name, p.Name, alg, res.ExpectedMakespan, ev)
				}
			}
		}
	}
}

func TestAlgorithmDominance(t *testing.T) {
	// Each algorithm searches a superset of the previous one's schedules,
	// so E(ADMV) <= E(ADMV*) <= E(ADV*).
	for _, pattern := range workload.Patterns() {
		for _, n := range []int{1, 5, 13, 30} {
			c, err := workload.Generate(pattern, n, workload.PaperTotalWeight)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range platform.All() {
				adv := mustPlan(t, AlgADV, c, p)
				admvStar := mustPlan(t, AlgADMVStar, c, p)
				admv := mustPlan(t, AlgADMV, c, p)
				if admvStar.ExpectedMakespan > adv.ExpectedMakespan*(1+1e-12) {
					t.Errorf("%s n=%d %s: ADMV* (%f) > ADV* (%f)",
						pattern, n, p.Name, admvStar.ExpectedMakespan, adv.ExpectedMakespan)
				}
				if admv.ExpectedMakespan > admvStar.ExpectedMakespan*(1+1e-12) {
					t.Errorf("%s n=%d %s: ADMV (%f) > ADMV* (%f)",
						pattern, n, p.Name, admv.ExpectedMakespan, admvStar.ExpectedMakespan)
				}
			}
		}
	}
}

func TestMakespanAboveErrorFreeTime(t *testing.T) {
	// No schedule can beat the error-free execution time plus the
	// mandatory final checkpoint chain.
	c, _ := workload.Uniform(12, 25000)
	for _, p := range platform.All() {
		for _, alg := range Algorithms() {
			res := mustPlan(t, alg, c, p)
			floor := c.TotalWeight() + p.VStar + p.CM + p.CD
			if res.ExpectedMakespan < floor {
				t.Errorf("%s/%s: makespan %.2f below floor %.2f", p.Name, alg, res.ExpectedMakespan, floor)
			}
		}
	}
}

func TestOptimumMonotoneInErrorRates(t *testing.T) {
	// Increasing either error rate cannot decrease the optimal expected
	// makespan: every schedule's expectation is pointwise non-decreasing
	// in the rates, hence so is the minimum.
	c, _ := workload.Uniform(15, 25000)
	base := platform.Hera()
	for _, alg := range Algorithms() {
		prev := 0.0
		for _, mult := range []float64{0.25, 0.5, 1, 2, 4, 8} {
			p := base
			p.LambdaF = base.LambdaF * mult
			p.LambdaS = base.LambdaS * mult
			res := mustPlan(t, alg, c, p)
			if res.ExpectedMakespan < prev*(1-1e-12) {
				t.Errorf("%s: optimum decreased at rate multiplier %g: %f < %f",
					alg, mult, res.ExpectedMakespan, prev)
			}
			prev = res.ExpectedMakespan
		}
	}
}

func TestScaleInvariance(t *testing.T) {
	// Scaling all weights and costs by k while dividing rates by k scales
	// the expected makespan by exactly k (the model only sees products
	// rate*duration and ratios of costs to durations).
	c, _ := workload.Decrease(12, 10000)
	p := platform.Hera()
	const k = 7.5
	scaled, err := c.Scale(k)
	if err != nil {
		t.Fatal(err)
	}
	ps := p
	ps.LambdaF /= k
	ps.LambdaS /= k
	ps.CD *= k
	ps.CM *= k
	ps.RD *= k
	ps.RM *= k
	ps.VStar *= k
	ps.V *= k
	for _, alg := range Algorithms() {
		a := mustPlan(t, alg, c, p)
		b := mustPlan(t, alg, scaled, ps)
		if !relClose(b.ExpectedMakespan, k*a.ExpectedMakespan, 1e-9) {
			t.Errorf("%s: scaled makespan %.6f != k*original %.6f",
				alg, b.ExpectedMakespan, k*a.ExpectedMakespan)
		}
		if !a.Schedule.Equal(b.Schedule) {
			t.Errorf("%s: scaling changed the optimal schedule", alg)
		}
	}
}

func TestADVPlacesNoExtraMemoryCheckpoints(t *testing.T) {
	// In ADV* every memory checkpoint must be co-located with a disk one.
	c, _ := workload.Uniform(30, 25000)
	for _, p := range platform.All() {
		res := mustPlan(t, AlgADV, c, p)
		counts := res.Schedule.Counts()
		if counts.Memory != counts.Disk {
			t.Errorf("%s: ADV* placed %d memory vs %d disk checkpoints",
				p.Name, counts.Memory, counts.Disk)
		}
		if counts.Partial != 0 {
			t.Errorf("%s: ADV* placed partial verifications", p.Name)
		}
	}
}

func TestADMVStarPlacesNoPartials(t *testing.T) {
	c, _ := workload.Uniform(30, 25000)
	for _, p := range platform.All() {
		res := mustPlan(t, AlgADMVStar, c, p)
		if got := res.Schedule.Counts().Partial; got != 0 {
			t.Errorf("%s: ADMV* placed %d partial verifications", p.Name, got)
		}
	}
}

func TestTwoLevelBeatsSingleLevelOnPaperSetup(t *testing.T) {
	// Headline result: on the Uniform pattern with n = 50, ADMV* strictly
	// improves on ADV* on Hera and Atlas (paper: about 2% and 5%).
	c, _ := workload.Uniform(50, workload.PaperTotalWeight)
	for _, tc := range []struct {
		p       platform.Platform
		minGain float64 // relative improvement lower bound
	}{
		{platform.Hera(), 0.005},
		{platform.Atlas(), 0.02},
	} {
		adv := mustPlan(t, AlgADV, c, tc.p)
		admvStar := mustPlan(t, AlgADMVStar, c, tc.p)
		gain := 1 - admvStar.ExpectedMakespan/adv.ExpectedMakespan
		if gain < tc.minGain {
			t.Errorf("%s: ADMV* gain over ADV* = %.4f, want >= %.4f",
				tc.p.Name, gain, tc.minGain)
		}
	}
}

func TestDominatedPartialsNeverPlaced(t *testing.T) {
	// A partial verification that costs at least as much as a guaranteed
	// one is strictly dominated (same or higher cost, lower recall): the
	// ADMV optimum must not contain any.
	c, _ := workload.Uniform(25, 25000)
	for _, p0 := range platform.All() {
		p := p0
		p.V = p.VStar * 1.5
		res := mustPlan(t, AlgADMV, c, p)
		if got := res.Schedule.Counts().Partial; got != 0 {
			t.Errorf("%s: placed %d dominated partial verifications", p.Name, got)
		}
		// And the value must collapse to the ADMV* optimum.
		star := mustPlan(t, AlgADMVStar, c, p)
		if !relClose(res.ExpectedMakespan, star.ExpectedMakespan, 1e-12) {
			t.Errorf("%s: ADMV %.6f != ADMV* %.6f with dominated partials",
				p.Name, res.ExpectedMakespan, star.ExpectedMakespan)
		}
	}
}

func TestPerfectRecallMakesPartialsCheapVerifications(t *testing.T) {
	// With r = 1 and V < V*, partial verifications are strictly better
	// than guaranteed ones at interior boundaries; the planner should
	// prefer them (guaranteed ones remain only where checkpoints force
	// them).
	c, _ := workload.Uniform(25, 25000)
	p := platform.Hera()
	p.Recall = 1
	res := mustPlan(t, AlgADMV, c, p)
	counts := res.Schedule.Counts()
	if counts.Partial == 0 {
		t.Error("perfect-recall cheap partials should be used")
	}
	if counts.Guaranteed != counts.Memory {
		t.Errorf("bare guaranteed verifications should be dominated: V*=%d M=%d",
			counts.Guaranteed, counts.Memory)
	}
}

func TestNormalizedMakespan(t *testing.T) {
	c, _ := workload.Uniform(10, 25000)
	res := mustPlan(t, AlgADMVStar, c, platform.Hera())
	got := res.NormalizedMakespan(c)
	if got <= 1 || got > 2 {
		t.Errorf("normalized makespan = %f, want in (1, 2]", got)
	}
	if !relClose(got*25000, res.ExpectedMakespan, 1e-12) {
		t.Errorf("normalization inconsistent")
	}
}

func TestReconstructedSchedulesAreValid(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 20} {
		c, _ := workload.Uniform(n, 25000)
		for _, p := range platform.All() {
			for _, alg := range Algorithms() {
				res := mustPlan(t, alg, c, p)
				if err := res.Schedule.ValidateComplete(); err != nil {
					t.Errorf("n=%d %s %s: %v", n, p.Name, alg, err)
				}
				if res.Schedule.Len() != n {
					t.Errorf("n=%d %s %s: schedule length %d", n, p.Name, alg, res.Schedule.Len())
				}
			}
		}
	}
}

func TestZeroWeightTasksHarmless(t *testing.T) {
	// Inserting zero-weight tasks must not change the optimum of the
	// partial-free algorithms: a mechanism at a zero-weight boundary is
	// equivalent to one at its neighbor, and stacking two guaranteed
	// verifications never pays.
	p := platform.Hera()
	a := chain.MustFromWeights(4000, 6000, 5000)
	b := chain.MustFromWeights(4000, 0, 6000, 0, 5000)
	for _, alg := range []Algorithm{AlgADV, AlgADMVStar} {
		ra := mustPlan(t, alg, a, p)
		rb := mustPlan(t, alg, b, p)
		if !relClose(ra.ExpectedMakespan, rb.ExpectedMakespan, 1e-9) {
			t.Errorf("%s: zero-weight padding changed optimum: %.6f vs %.6f",
				alg, ra.ExpectedMakespan, rb.ExpectedMakespan)
		}
	}
	// ADMV, in contrast, may exploit a zero-weight boundary to stack a
	// cheap partial verification right before a guaranteed one: on an
	// erroneous attempt it detects at cost V with probability r and skips
	// the V* payment. Padding may therefore strictly help, never hurt.
	ra := mustPlan(t, AlgADMV, a, p)
	rb := mustPlan(t, AlgADMV, b, p)
	if rb.ExpectedMakespan > ra.ExpectedMakespan*(1+1e-12) {
		t.Errorf("ADMV: zero-weight padding hurt: %.6f > %.6f",
			rb.ExpectedMakespan, ra.ExpectedMakespan)
	}
}

func TestMoreTasksNeverHurt(t *testing.T) {
	// Splitting tasks more finely only adds placement options for the
	// same total work, so the optimum is non-increasing in n when n
	// divides evenly (every coarse boundary is also a fine boundary).
	p := platform.Atlas()
	for _, alg := range Algorithms() {
		prev := math.Inf(1)
		for _, n := range []int{1, 2, 4, 8, 16} {
			c, _ := workload.Uniform(n, 25000)
			res := mustPlan(t, alg, c, p)
			if res.ExpectedMakespan > prev*(1+1e-12) {
				t.Errorf("%s: optimum increased from n/2 to n=%d: %f > %f",
					alg, n, res.ExpectedMakespan, prev)
			}
			prev = res.ExpectedMakespan
		}
	}
}

func TestEvaluatorReuseMatchesOneShot(t *testing.T) {
	c, _ := workload.Uniform(14, 25000)
	p := platform.Hera()
	ev, err := NewEvaluator(c, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		res := mustPlan(t, alg, c, p)
		reuse, err := ev.Evaluate(res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		oneShot, err := Evaluate(c, p, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		if reuse != oneShot {
			t.Errorf("%s: reuse %f vs one-shot %f", alg, reuse, oneShot)
		}
	}
	if _, err := ev.Evaluate(nil); err == nil {
		t.Error("nil schedule should fail")
	}
	wrong := schedule.MustNew(3)
	wrong.Set(3, schedule.Disk)
	if _, err := ev.Evaluate(wrong); err == nil {
		t.Error("size mismatch should fail")
	}
}

func mustGen(t *testing.T, pat workload.Pattern, n int) *chain.Chain {
	t.Helper()
	c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustPlan(t *testing.T, alg Algorithm, c *chain.Chain, p platform.Platform) *Result {
	t.Helper()
	res, err := Plan(alg, c, p)
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	return res
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// hotPlatform returns Hera with rates scaled up so small chains place
// interior mechanisms.
func hotPlatform() platform.Platform {
	p := platform.Hera()
	p.LambdaF *= 50
	p.LambdaS *= 50
	return p
}

// mustEqualResults fails unless the two results are bit-identical:
// same expectation, same schedule actions.
func mustEqualResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.ExpectedMakespan != b.ExpectedMakespan {
		t.Fatalf("%s: expected makespan %v vs %v", label, a.ExpectedMakespan, b.ExpectedMakespan)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatalf("%s: schedule %s vs %s", label, a.Schedule, b.Schedule)
	}
}

// TestKernelPooledSolveMatchesFresh interleaves many instances through
// one kernel — so every solve after the first reuses a dirty arena — and
// checks each against a solve on a brand-new kernel (all-fresh arenas).
func TestKernelPooledSolveMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shared := NewKernel()
	p := hotPlatform()
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(12)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 100 + 900*rng.Float64()
		}
		c, err := chain.FromWeights(weights...)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range Algorithms() {
			pooled, err := shared.Plan(alg, c, p)
			if err != nil {
				t.Fatalf("trial %d %s pooled: %v", trial, alg, err)
			}
			fresh, err := NewKernel().Plan(alg, c, p)
			if err != nil {
				t.Fatalf("trial %d %s fresh: %v", trial, alg, err)
			}
			mustEqualResults(t, fmt.Sprintf("trial %d %s", trial, alg), pooled, fresh)
		}
	}
	st := shared.Stats()
	if st.Solves == 0 || st.ScratchReuses == 0 {
		t.Fatalf("shared kernel never reused an arena: %+v", st)
	}
}

// TestKernelReplanSuffixMatchesStandalone checks the incremental
// suffix re-solve against the explicit route: build the suffix as its
// own chain, slice the cost and constraint tables, solve from scratch.
// Both must be bit-identical for every split point.
func TestKernelReplanSuffixMatchesStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := NewKernel()
	p := hotPlatform()
	const n = 9
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 200 + 800*rng.Float64()
	}
	c, err := chain.FromWeights(weights...)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]float64, n)
	for i := range sizes {
		sizes[i] = 0.5 + rng.Float64()
	}
	costs, err := platform.ScaledCosts(p, sizes)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConstraints(n)
	if err != nil {
		t.Fatal(err)
	}
	cons.Forbid(2, schedule.Disk)
	cons.Forbid(4, schedule.Memory)
	cons.Forbid(6, schedule.Partial)

	// Re-plan under drifted rates, as the supervisor would.
	updated := p
	updated.LambdaF *= 3
	updated.LambdaS /= 2

	for _, alg := range Algorithms() {
		for from := 0; from < n; from++ {
			opts := Options{Costs: costs, Constraints: cons, MaxDiskCheckpoints: 3}
			if opts.MaxDiskCheckpoints > n-from {
				opts.MaxDiskCheckpoints = n - from
			}
			inc, err := k.ReplanSuffix(alg, c, updated, from, opts)
			if err != nil {
				t.Fatalf("%s from=%d incremental: %v", alg, from, err)
			}

			suffix, err := chain.FromWeights(weights[from:]...)
			if err != nil {
				t.Fatal(err)
			}
			sOpts := Options{MaxDiskCheckpoints: opts.MaxDiskCheckpoints}
			if from == 0 {
				sOpts.Costs, sOpts.Constraints = costs, cons
			} else {
				if sOpts.Costs, err = costs.Suffix(from); err != nil {
					t.Fatal(err)
				}
				if sOpts.Constraints, err = cons.Suffix(from); err != nil {
					t.Fatal(err)
				}
			}
			standalone, err := NewKernel().PlanOpts(alg, suffix, updated, sOpts)
			if err != nil {
				t.Fatalf("%s from=%d standalone: %v", alg, from, err)
			}
			mustEqualResults(t, fmt.Sprintf("%s from=%d", alg, from), inc, standalone)
			if inc.Schedule.Len() != n-from {
				t.Fatalf("%s from=%d: suffix schedule has %d boundaries, want %d",
					alg, from, inc.Schedule.Len(), n-from)
			}
		}
	}
}

// TestKernelWorkersIdentical checks that the solver's internal
// parallelism never changes the pooled result.
func TestKernelWorkersIdentical(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	c, err := chain.FromWeights(300, 700, 150, 900, 420, 610, 80, 530)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		serial, err := k.PlanOpts(alg, c, p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := k.PlanOpts(alg, c, p, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, string(alg), serial, parallel)
	}
}

// TestKernelStatsBuckets checks the pool accounting: first solve of a
// size class allocates, repeats recycle, distinct classes get distinct
// buckets.
func TestKernelStatsBuckets(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	small, _ := chain.FromWeights(100, 200, 300)
	large, err := chain.FromWeights(func() []float64 {
		w := make([]float64, 40)
		for i := range w {
			w[i] = 100
		}
		return w
	}()...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := k.Plan(AlgADMVStar, small, p); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Plan(AlgADMVStar, large, p); err != nil {
			t.Fatal(err)
		}
	}
	st := k.Stats()
	if st.Solves != 6 {
		t.Fatalf("solves = %d, want 6", st.Solves)
	}
	if len(st.Buckets) != 2 {
		t.Fatalf("buckets = %+v, want two size classes", st.Buckets)
	}
	// sync.Pool may in principle drop an arena under GC pressure, so the
	// assertions are one-sided: every class must have allocated at least
	// once and recycled at least once, and every acquire is accounted.
	for _, b := range st.Buckets {
		if b.Fresh < 1 || b.Reuses < 1 {
			t.Errorf("bucket cap %d: fresh %d reuses %d, want >=1 each", b.Cap, b.Fresh, b.Reuses)
		}
	}
	if st.ScratchFresh+st.ScratchReuses != 6 {
		t.Errorf("fresh %d + reuses %d != 6 solves", st.ScratchFresh, st.ScratchReuses)
	}
	// The per-bucket solve histogram: 3 solves in each size class (the
	// 3-task chain lands in the cap-8 bucket, the 40-task one in cap-64),
	// summing to the kernel total.
	var bucketSolves uint64
	for _, b := range st.Buckets {
		if b.Solves != 3 {
			t.Errorf("bucket cap %d: solves %d, want 3", b.Cap, b.Solves)
		}
		bucketSolves += b.Solves
	}
	if bucketSolves != st.Solves {
		t.Errorf("bucket solves sum %d != kernel solves %d", bucketSolves, st.Solves)
	}
}

// TestKernelRejectsBadWindows covers the argument validation of the
// incremental API.
func TestKernelRejectsBadWindows(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	c, _ := chain.FromWeights(100, 200, 300)
	if _, err := k.ReplanSuffix(AlgADMV, c, p, -1, Options{}); err == nil {
		t.Error("negative suffix start accepted")
	}
	if _, err := k.ReplanSuffix(AlgADMV, c, p, 3, Options{}); err == nil {
		t.Error("suffix start at chain end accepted")
	}
	if _, err := k.ReplanSuffix("bogus", c, p, 1, Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := k.ReplanSuffix(AlgADMV, nil, p, 0, Options{}); err == nil {
		t.Error("nil chain accepted")
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

// hotPlatform returns Hera with rates scaled up so small chains place
// interior mechanisms.
func hotPlatform() platform.Platform {
	p := platform.Hera()
	p.LambdaF *= 50
	p.LambdaS *= 50
	return p
}

// mustEqualResults fails unless the two results are bit-identical:
// same expectation, same schedule actions.
func mustEqualResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.ExpectedMakespan != b.ExpectedMakespan {
		t.Fatalf("%s: expected makespan %v vs %v", label, a.ExpectedMakespan, b.ExpectedMakespan)
	}
	if a.Schedule.String() != b.Schedule.String() {
		t.Fatalf("%s: schedule %s vs %s", label, a.Schedule, b.Schedule)
	}
}

// TestKernelPooledSolveMatchesFresh interleaves many instances through
// one kernel — so every solve after the first reuses a dirty arena — and
// checks each against a solve on a brand-new kernel (all-fresh arenas).
func TestKernelPooledSolveMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shared := NewKernel()
	p := hotPlatform()
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(12)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 100 + 900*rng.Float64()
		}
		c, err := chain.FromWeights(weights...)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range Algorithms() {
			pooled, err := shared.Plan(alg, c, p)
			if err != nil {
				t.Fatalf("trial %d %s pooled: %v", trial, alg, err)
			}
			fresh, err := NewKernel().Plan(alg, c, p)
			if err != nil {
				t.Fatalf("trial %d %s fresh: %v", trial, alg, err)
			}
			mustEqualResults(t, fmt.Sprintf("trial %d %s", trial, alg), pooled, fresh)
		}
	}
	st := shared.Stats()
	if st.Solves == 0 || st.ScratchReuses == 0 {
		t.Fatalf("shared kernel never reused an arena: %+v", st)
	}
}

// TestKernelReplanSuffixMatchesStandalone checks the incremental
// suffix re-solve against the explicit route: build the suffix as its
// own chain, slice the cost and constraint tables, solve from scratch.
// Both must be bit-identical for every split point.
func TestKernelReplanSuffixMatchesStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := NewKernel()
	p := hotPlatform()
	const n = 9
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 200 + 800*rng.Float64()
	}
	c, err := chain.FromWeights(weights...)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]float64, n)
	for i := range sizes {
		sizes[i] = 0.5 + rng.Float64()
	}
	costs, err := platform.ScaledCosts(p, sizes)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConstraints(n)
	if err != nil {
		t.Fatal(err)
	}
	cons.Forbid(2, schedule.Disk)
	cons.Forbid(4, schedule.Memory)
	cons.Forbid(6, schedule.Partial)

	// Re-plan under drifted rates, as the supervisor would.
	updated := p
	updated.LambdaF *= 3
	updated.LambdaS /= 2

	for _, alg := range Algorithms() {
		for from := 0; from < n; from++ {
			opts := Options{Costs: costs, Constraints: cons, MaxDiskCheckpoints: 3}
			if opts.MaxDiskCheckpoints > n-from {
				opts.MaxDiskCheckpoints = n - from
			}
			inc, err := k.ReplanSuffix(alg, c, updated, from, opts)
			if err != nil {
				t.Fatalf("%s from=%d incremental: %v", alg, from, err)
			}

			suffix, err := chain.FromWeights(weights[from:]...)
			if err != nil {
				t.Fatal(err)
			}
			sOpts := Options{MaxDiskCheckpoints: opts.MaxDiskCheckpoints}
			if from == 0 {
				sOpts.Costs, sOpts.Constraints = costs, cons
			} else {
				if sOpts.Costs, err = costs.Suffix(from); err != nil {
					t.Fatal(err)
				}
				if sOpts.Constraints, err = cons.Suffix(from); err != nil {
					t.Fatal(err)
				}
			}
			standalone, err := NewKernel().PlanOpts(alg, suffix, updated, sOpts)
			if err != nil {
				t.Fatalf("%s from=%d standalone: %v", alg, from, err)
			}
			mustEqualResults(t, fmt.Sprintf("%s from=%d", alg, from), inc, standalone)
			if inc.Schedule.Len() != n-from {
				t.Fatalf("%s from=%d: suffix schedule has %d boundaries, want %d",
					alg, from, inc.Schedule.Len(), n-from)
			}
		}
	}
}

// TestKernelWorkersIdentical checks that the solver's internal
// parallelism never changes the pooled result.
func TestKernelWorkersIdentical(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	c, err := chain.FromWeights(300, 700, 150, 900, 420, 610, 80, 530)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		serial, err := k.PlanOpts(alg, c, p, Options{SolveWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := k.PlanOpts(alg, c, p, Options{SolveWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		mustEqualResults(t, string(alg), serial, parallel)
	}
}

// TestKernelStatsBuckets checks the pool accounting: first solve of a
// size class allocates, repeats recycle, distinct classes get distinct
// buckets.
func TestKernelStatsBuckets(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	small, _ := chain.FromWeights(100, 200, 300)
	large, err := chain.FromWeights(func() []float64 {
		w := make([]float64, 40)
		for i := range w {
			w[i] = 100
		}
		return w
	}()...)
	if err != nil {
		t.Fatal(err)
	}
	// Enough rounds that at least one recycle survives sync.Pool's
	// race-mode behavior (Put randomly drops ~25% of items under -race).
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if _, err := k.Plan(AlgADMVStar, small, p); err != nil {
			t.Fatal(err)
		}
		if _, err := k.Plan(AlgADMVStar, large, p); err != nil {
			t.Fatal(err)
		}
	}
	st := k.Stats()
	if st.Solves != 2*rounds {
		t.Fatalf("solves = %d, want %d", st.Solves, 2*rounds)
	}
	if len(st.Buckets) != 2 {
		t.Fatalf("buckets = %+v, want two size classes", st.Buckets)
	}
	// sync.Pool may in principle drop an arena under GC pressure, so the
	// assertions are one-sided: every class must have allocated at least
	// once and recycled at least once, and every acquire is accounted.
	for _, b := range st.Buckets {
		if b.Fresh < 1 || b.Reuses < 1 {
			t.Errorf("bucket cap %d: fresh %d reuses %d, want >=1 each", b.Cap, b.Fresh, b.Reuses)
		}
	}
	if st.ScratchFresh+st.ScratchReuses != 2*rounds {
		t.Errorf("fresh %d + reuses %d != %d solves", st.ScratchFresh, st.ScratchReuses, 2*rounds)
	}
	// The per-bucket solve histogram: `rounds` solves in each size class
	// (the 3-task chain lands in the cap-8 bucket, the 40-task one in
	// cap-64), summing to the kernel total.
	var bucketSolves uint64
	for _, b := range st.Buckets {
		if b.Solves != rounds {
			t.Errorf("bucket cap %d: solves %d, want %d", b.Cap, b.Solves, rounds)
		}
		bucketSolves += b.Solves
	}
	if bucketSolves != st.Solves {
		t.Errorf("bucket solves sum %d != kernel solves %d", bucketSolves, st.Solves)
	}
	// And the exact-length histogram refines it: n=3 and n=40.
	if len(st.Sizes) != 2 || st.Sizes[0].Solves != rounds || st.Sizes[1].Solves != rounds {
		t.Errorf("size histogram: %+v", st.Sizes)
	}
}

// TestKernelRejectsBadWindows covers the argument validation of the
// incremental API.
func TestKernelRejectsBadWindows(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	c, _ := chain.FromWeights(100, 200, 300)
	if _, err := k.ReplanSuffix(AlgADMV, c, p, -1, Options{}); err == nil {
		t.Error("negative suffix start accepted")
	}
	if _, err := k.ReplanSuffix(AlgADMV, c, p, 3, Options{}); err == nil {
		t.Error("suffix start at chain end accepted")
	}
	if _, err := k.ReplanSuffix("bogus", c, p, 1, Options{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := k.ReplanSuffix(AlgADMV, nil, p, 0, Options{}); err == nil {
		t.Error("nil chain accepted")
	}
}

// TestKernelSizeHistogram: the per-window-length solve histogram behind
// Tune must count exact lengths, hottest first.
func TestKernelSizeHistogram(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	solve := func(n int) {
		t.Helper()
		c, err := workload.Uniform(n, float64(100*n))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := k.Plan(AlgADV, c, p); err != nil {
			t.Fatal(err)
		}
	}
	solve(5)
	solve(5)
	solve(5)
	solve(12)
	st := k.Stats()
	if len(st.Sizes) != 2 || st.Sizes[0] != (KernelSizeStats{N: 5, Solves: 3}) ||
		st.Sizes[1] != (KernelSizeStats{N: 12, Solves: 1}) {
		t.Fatalf("size histogram: %+v", st.Sizes)
	}
}

// TestKernelTuneExactPools: tuning on the kernel's own histogram must
// install exact-capacity pools for the hot non-power-of-two lengths,
// serve later solves of those lengths from exactly sized (pre-warmed)
// arenas, and leave results bit-identical to an untuned kernel.
func TestKernelTuneExactPools(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	c, err := workload.Uniform(50, 25000)
	if err != nil {
		t.Fatal(err)
	}
	before, err := k.Plan(AlgADMVStar, c, p)
	if err != nil {
		t.Fatal(err)
	}
	k.Tune(k.Stats())

	after, err := k.Plan(AlgADMVStar, c, p)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "tuned vs untuned", after, before)

	st := k.Stats()
	var exact *KernelBucketStats
	for i := range st.Buckets {
		if st.Buckets[i].Cap == 50 {
			exact = &st.Buckets[i]
		}
	}
	if exact == nil {
		t.Fatalf("no exact cap-50 pool after Tune: %+v", st.Buckets)
	}
	// One tuned solve drew exactly one exact arena (whether the
	// pre-warmed one or a fresh build: sync.Pool may drop items under
	// -race, so reuse-vs-fresh is not asserted).
	if exact.Solves != 1 || exact.Reuses+exact.Fresh != 1 {
		t.Errorf("exact pool counters: %+v (want exactly 1 solve through the exact pool)", *exact)
	}
	// The arenas the tuned pool builds are exactly sized.
	sc := k.acquire(50)
	if sc.cap != 50 {
		t.Errorf("tuned acquire built cap %d, want 50", sc.cap)
	}
	k.release(sc)
}

// TestKernelTunePrewarmsTeamScratch is the regression for the
// one-scratch-per-solve pre-warm bug: Tune used to warm an exact pool
// with a bare arena (no DP buffers, empty memLevel free list), so the
// first parallel solve through it had W workers all allocating fresh
// (cap+1)^2 row buffers at once. After a workers=4 solve taught the
// kernel its team width, a tuned arena must come out with the DP
// buffers built and four memLevel arenas — partial scratch included —
// already on the free list.
func TestKernelTunePrewarmsTeamScratch(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	c, err := workload.Uniform(50, 25000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.PlanOpts(AlgADMVStar, c, p, Options{SolveWorkers: 4}); err != nil {
		t.Fatal(err)
	}
	if w := k.team.widest.Load(); w != 4 {
		t.Fatalf("team widest = %d after a workers=4 solve, want 4", w)
	}
	k.Tune(k.Stats())

	// prewarm itself must deliver exactly what a 4-wide team draws:
	// DP buffers plus four memLevel arenas with their partial scratch.
	// (Asserted on a directly built arena — sync.Pool may drop the
	// tuned pool's warm arena under -race, so pulling it back out is
	// not deterministic.)
	sc := newScratch(50)
	sc.prewarm(4)
	if sc.dp == nil {
		t.Fatal("pre-warmed arena has no DP buffers")
	}
	sc.dp.mu.Lock()
	warm := len(sc.dp.mem)
	sc.dp.mu.Unlock()
	if warm != 4 {
		t.Fatalf("pre-warmed free list holds %d memLevel arenas, want 4 (one per team member)", warm)
	}
	for i := 0; i < warm; i++ {
		ms := sc.getMem(50, true)
		if ms.partial == nil {
			t.Fatalf("pre-warmed memLevel arena %d missing its partial scratch", i)
		}
		if len(ms.rowBuf) != 51*51 {
			t.Fatalf("pre-warmed arena %d rowBuf sized %d, want %d", i, len(ms.rowBuf), 51*51)
		}
	}

	// When the tuned pool did retain its warm arena, it must be the
	// team-wide one, not a bare scratch.
	tuned := k.acquire(50)
	defer k.release(tuned)
	if tuned.cap != 50 {
		t.Fatalf("tuned acquire built cap %d, want 50", tuned.cap)
	}
	if tuned.dp != nil {
		tuned.dp.mu.Lock()
		got := len(tuned.dp.mem)
		tuned.dp.mu.Unlock()
		if got < 4 {
			t.Errorf("tuned pool's warm arena holds %d memLevel arenas, want >= 4", got)
		}
	}
}

// TestKernelTuneSkipsPowerOfTwoSizes: a bucket arena already fits a
// power-of-two window exactly; tuning must not duplicate it.
func TestKernelTuneSkipsPowerOfTwoSizes(t *testing.T) {
	k := NewKernel()
	k.Tune(KernelStats{Sizes: []KernelSizeStats{
		{N: 64, Solves: 100}, {N: 50, Solves: 10}, {N: 0, Solves: 5},
	}})
	m := k.exact.Load()
	if m == nil || len(*m) != 1 {
		t.Fatalf("exact pools: %v", m)
	}
	if _, ok := (*m)[50]; !ok {
		t.Errorf("hot non-power-of-two size 50 not tuned")
	}
}

// TestKernelRetuneKeepsHotPoolsAndDropsStaleArenas: re-tuning keeps the
// pools of still-hot sizes (warm arenas and counters intact), retires
// the rest, and an arena released after its pool was retired must be
// dropped — never filed into a power-of-two bucket it does not fill.
func TestKernelRetuneKeepsHotPoolsAndDropsStaleArenas(t *testing.T) {
	k := NewKernel()
	hist := KernelStats{Sizes: []KernelSizeStats{{N: 50, Solves: 10}}}
	k.Tune(hist)
	first := (*k.exact.Load())[50]
	k.Tune(hist)
	if (*k.exact.Load())[50] != first {
		t.Error("re-tune with the same histogram rebuilt the pool")
	}

	// Hold a tuned arena across a re-tune that retires its pool.
	sc := k.acquire(50)
	if sc.cap != 50 {
		t.Fatalf("tuned acquire built cap %d, want 50", sc.cap)
	}
	before := k.Stats()
	k.Tune(KernelStats{})
	k.release(sc) // must be dropped, not pooled
	sc2 := k.acquire(50)
	if sc2.cap != 64 {
		t.Errorf("post-retune acquire built cap %d, want the 64 bucket arena", sc2.cap)
	}
	// Retiring the pool must not lose its counters: totals stay
	// monotonic (the Prometheus counters fed from them must not reset).
	after := k.Stats()
	if after.ScratchReuses+after.ScratchFresh < before.ScratchReuses+before.ScratchFresh {
		t.Errorf("scratch totals went backwards across re-tune: %+v -> %+v", before, after)
	}
}

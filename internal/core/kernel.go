package core

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
)

// scratch owns every working array one planning run needs: the
// per-segment exponential tables, the window prefix weights, and (built
// lazily, since Evaluator only needs the tables) the dynamic-program
// arenas of run, memLevel and reconstruct. A scratch serves any window of
// up to cap tasks; a Kernel recycles scratches across solves so repeated
// planning allocates nothing beyond its results.
type scratch struct {
	cap    int
	tables []float64 // 7*(cap+1)^2 backing of the segment tables
	pre    []float64 // cap+1 window prefix weights
	dp     *dpScratch
}

// dpScratch holds the arenas of the dynamic program proper.
type dpScratch struct {
	ememHdr [][]float64 // cap row headers; nil marks a forbidden disk spot
	ememBuf []float64   // cap*(cap+1)
	mprvHdr [][]int
	mprvBuf []int       // cap*(cap+1)
	edskHdr [][]float64 // cap+1 row headers of the disk level
	edskBuf []float64   // (cap+1)^2
	dprvHdr [][]int
	dprvBuf []int // (cap+1)^2

	// reconstruct scratch: one verification row with argmins, the three
	// position stacks of the walk-back, and the ADMV partial scratch.
	row              []float64
	arg              []int
	posD, posM, posV []int
	rpartial         *partialScratch

	mu  sync.Mutex
	mem []*memScratch // free list for memLevel workers
}

// memScratch is the per-goroutine arena of one memLevel call: the lazy
// verification rows and, for ADMV, the partial-verification scratch.
type memScratch struct {
	rows    [][]float64 // cap+1 headers
	rowBuf  []float64   // (cap+1)^2
	partial *partialScratch
}

// newScratch allocates a scratch serving windows of up to cap tasks.
func newScratch(cap int) *scratch {
	size := (cap + 1) * (cap + 1)
	return &scratch{
		cap:    cap,
		tables: make([]float64, 7*size),
		pre:    make([]float64, cap+1),
	}
}

// ensureDP builds the dynamic-program arenas on first use. n is only
// checked against the capacity; the arenas are always sized for cap.
func (sc *scratch) ensureDP(n int) *dpScratch {
	if n > sc.cap {
		panic(fmt.Sprintf("core: scratch capacity %d exceeded by window of %d tasks", sc.cap, n))
	}
	if sc.dp == nil {
		c := sc.cap
		size := (c + 1) * (c + 1)
		sc.dp = &dpScratch{
			ememHdr: make([][]float64, c),
			ememBuf: make([]float64, c*(c+1)),
			mprvHdr: make([][]int, c),
			mprvBuf: make([]int, c*(c+1)),
			edskHdr: make([][]float64, c+1),
			edskBuf: make([]float64, size),
			dprvHdr: make([][]int, c+1),
			dprvBuf: make([]int, size),
			row:     make([]float64, c+1),
			arg:     make([]int, c+1),
			posD:    make([]int, 0, c+1),
			posM:    make([]int, 0, c+1),
			posV:    make([]int, 0, c+1),
		}
	}
	return sc.dp
}

// getMem hands out a memLevel arena, recycling returned ones. Safe for
// the solver's concurrent per-disk-position workers.
func (sc *scratch) getMem(n int, needPartial bool) *memScratch {
	dp := sc.ensureDP(n)
	dp.mu.Lock()
	var ms *memScratch
	if k := len(dp.mem); k > 0 {
		ms = dp.mem[k-1]
		dp.mem = dp.mem[:k-1]
	}
	dp.mu.Unlock()
	if ms == nil {
		ms = &memScratch{
			rows:   make([][]float64, sc.cap+1),
			rowBuf: make([]float64, (sc.cap+1)*(sc.cap+1)),
		}
	}
	if needPartial && ms.partial == nil {
		ms.partial = newPartialScratch(sc.cap)
	}
	return ms
}

func (sc *scratch) putMem(ms *memScratch) {
	sc.dp.mu.Lock()
	sc.dp.mem = append(sc.dp.mem, ms)
	sc.dp.mu.Unlock()
}

// prewarm builds the lazy parts of an arena ahead of its first solve:
// the dynamic-program buffers plus one memLevel arena per prospective
// team member, partial scratch included. Tune uses it so the first
// parallel solve through a fresh exact pool finds width arenas on the
// free list instead of W workers all allocating (cap+1)^2 row buffers
// at once.
func (sc *scratch) prewarm(width int) {
	if width < 1 {
		width = 1
	}
	dp := sc.ensureDP(sc.cap)
	dp.mu.Lock()
	have := len(dp.mem)
	dp.mu.Unlock()
	for ; have < width; have++ {
		ms := &memScratch{
			rows:    make([][]float64, sc.cap+1),
			rowBuf:  make([]float64, (sc.cap+1)*(sc.cap+1)),
			partial: newPartialScratch(sc.cap),
		}
		sc.putMem(ms)
	}
}

// reconPartial returns the reconstruct pass's ADMV partial scratch.
func (sc *scratch) reconPartial() *partialScratch {
	dp := sc.dp
	if dp.rpartial == nil {
		dp.rpartial = newPartialScratch(sc.cap)
	}
	return dp.rpartial
}

// Kernel is a long-lived, reusable solver kernel: it owns size-bucketed
// pools of scratch arenas (capacities are rounded up to powers of two),
// so repeated planning through one kernel is allocation-free in the
// dynamic program. All methods are safe for concurrent use; concurrent
// solves simply draw distinct arenas from the pools.
//
// The package-level Plan* functions are thin wrappers over DefaultKernel;
// long-running services (internal/engine, internal/runtime) own their
// kernel so their pool statistics are observable in isolation.
type Kernel struct {
	solves  atomic.Uint64
	buckets [48]kernelBucket
	// exact maps hot window lengths to exact-capacity pools installed by
	// Tune; nil (or missing entries) fall through to the power-of-two
	// buckets. Replaced wholesale by Tune, never mutated in place.
	exact atomic.Pointer[map[int]*kernelBucket]

	// sizes is the per-window-length solve histogram Tune consumes; the
	// map is bounded so hostile traffic cannot grow it without limit.
	sizeMu sync.Mutex
	sizes  map[int]uint64

	// tuneMu serializes Tune's load-build-store of exact, so concurrent
	// tuners cannot silently discard each other's installed pools;
	// acquire/release stay lock-free on the atomic pointer.
	tuneMu sync.Mutex

	// retired* accumulate the counters of exact pools dropped by a
	// re-Tune, so Stats totals (and the Prometheus counters fed from
	// them) stay monotonic when the hot set shifts.
	retiredReuses, retiredFresh, retiredSolves atomic.Uint64

	// team is the kernel's persistent solve team: helper goroutines that
	// parallel solves (Options.SolveWorkers) tile their DP phases
	// across. Spawned lazily on the first parallel solve, shed after an
	// idle timeout; serial solves never touch it.
	team solveTeam
}

// kernelBucket pools scratches of one capacity class.
type kernelBucket struct {
	pool   sync.Pool
	reuses atomic.Uint64
	fresh  atomic.Uint64
	solves atomic.Uint64
}

// KernelStats is a snapshot of a kernel's pool counters.
type KernelStats struct {
	// Solves counts planning runs completed through the kernel.
	Solves uint64 `json:"solves"`
	// ScratchReuses counts solves served by a recycled arena.
	ScratchReuses uint64 `json:"scratch_reuses"`
	// ScratchFresh counts solves that had to allocate a new arena.
	ScratchFresh uint64 `json:"scratch_fresh"`
	// Buckets reports the per-capacity pools that have been touched,
	// including any exact-capacity pools installed by Tune (their Cap is
	// the exact window length, not a power of two).
	Buckets []KernelBucketStats `json:"buckets,omitempty"`
	// Sizes refines the bucket histogram to exact window lengths:
	// completed solves per n, hottest first (capped at the top 64
	// lengths). It is the input Tune uses to pick which sizes deserve an
	// exact-capacity pool.
	Sizes []KernelSizeStats `json:"sizes,omitempty"`
	// Parallel reports the kernel's solve-team counters.
	Parallel KernelParallelStats `json:"parallel"`
}

// KernelParallelStats snapshots the worker team of a kernel's parallel
// solves (Options.SolveWorkers). The observability plane projects these
// into the chainckpt_kernel_parallel_* metric families.
type KernelParallelStats struct {
	// Solves counts planning runs that engaged the team (resolved
	// worker count > 1).
	Solves uint64 `json:"solves"`
	// Tiles counts tiles dispatched to the team across all DP phases
	// (table build, memory levels, disk-level wavefronts).
	Tiles uint64 `json:"tiles"`
	// LocalTiles counts tiles claimed from the claimant's own span — the
	// owner-computes fast path that touches only worker-local cache
	// lines. Tiles - LocalTiles ran on stolen ranges.
	LocalTiles uint64 `json:"local_tiles"`
	// Steals counts steal events: half-span grabs by an idle participant
	// plus single leftover tiles claimed off a victim. Zero on a
	// perfectly balanced phase; the rebalancing traffic otherwise.
	Steals uint64 `json:"steals"`
	// BusySeconds accumulates the time solve participants (the calling
	// goroutine and every helper) spent executing tiles.
	BusySeconds float64 `json:"busy_seconds"`
	// CrossoverSkips counts auto-mode solves (SolveWorkers: 0) that
	// stayed serial — the window was below the crossover length or the
	// machine has a single core.
	CrossoverSkips uint64 `json:"crossover_skips"`
	// Workers is the current number of live helper goroutines (a gauge:
	// idle helpers retire after a timeout).
	Workers int `json:"workers"`
	// AutoCrossover is the live auto-mode engagement threshold (window
	// length); the default constant unless a tuner has retargeted it.
	AutoCrossover int `json:"auto_crossover"`
}

// KernelSizeStats is one exact window length's solve count.
type KernelSizeStats struct {
	// N is the window length in tasks.
	N int `json:"n"`
	// Solves counts completed planning runs of exactly this length.
	Solves uint64 `json:"solves"`
}

// KernelBucketStats is one capacity class of a kernel's scratch pool.
type KernelBucketStats struct {
	// Cap is the bucket's arena capacity in tasks (a power of two).
	Cap int `json:"cap"`
	// Reuses and Fresh count arena recycles and allocations.
	Reuses uint64 `json:"reuses"`
	Fresh  uint64 `json:"fresh"`
	// Solves counts completed planning runs whose window fell in this
	// size class — the workload histogram that tells which bucket sizes
	// real traffic actually hits, the input to workload-aware bucket
	// tuning (exact per-n pools for the hot sizes).
	Solves uint64 `json:"solves"`
}

// NewKernel returns an empty kernel. The zero cost of creating one makes
// a fresh kernel the natural way to benchmark the unpooled path.
func NewKernel() *Kernel { return &Kernel{} }

var (
	defaultKernelMu sync.Mutex
	defaultKernel   *Kernel
)

// DefaultKernel returns the shared process-wide kernel that the
// package-level Plan* functions solve through.
func DefaultKernel() *Kernel {
	defaultKernelMu.Lock()
	defer defaultKernelMu.Unlock()
	if defaultKernel == nil {
		defaultKernel = NewKernel()
	}
	return defaultKernel
}

// bucketIndex maps a window length to its capacity class: the smallest
// power of two >= max(n, 8).
func bucketIndex(n int) int {
	if n <= 8 {
		return 3
	}
	return bits.Len(uint(n - 1))
}

// BucketCap returns the scratch-pool capacity class an n-task window
// falls in (the smallest power of two >= max(n, 8)). It is the bucket
// key shared by the size histogram, the per-bucket SolveWorkers table
// in internal/engine, and the tuner's per-regime width decisions — all
// three must agree on what "a size bucket" means.
func BucketCap(n int) int {
	if n < 1 {
		n = 1
	}
	return 1 << bucketIndex(n)
}

// SetAutoCrossover retargets the window length where auto-mode
// parallelism (SolveWorkers: 0) engages the team; n <= 0 restores the
// built-in default. The ops tuner uses this to turn the crossover from
// a compile-time constant into a measured threshold. Crossover choice
// is pure scheduling — plan bytes are identical at every width.
func (k *Kernel) SetAutoCrossover(n int) {
	if n < 0 {
		n = 0
	}
	k.team.crossover.Store(int64(n))
}

// AutoCrossover reports the live auto-mode engagement threshold.
func (k *Kernel) AutoCrossover() int { return k.team.autoCrossover() }

// bucketFor returns the pool serving an n-task window and the capacity
// its arenas are built with: the exact-capacity pool when Tune has
// installed one for n, the power-of-two bucket otherwise.
func (k *Kernel) bucketFor(n int) (*kernelBucket, int) {
	if m := k.exact.Load(); m != nil {
		if b, ok := (*m)[n]; ok {
			return b, n
		}
	}
	i := bucketIndex(n)
	return &k.buckets[i], 1 << i
}

// acquire draws an arena for an n-task window from the pools.
func (k *Kernel) acquire(n int) *scratch {
	b, cap := k.bucketFor(n)
	if sc, ok := b.pool.Get().(*scratch); ok {
		b.reuses.Add(1)
		return sc
	}
	b.fresh.Add(1)
	return newScratch(cap)
}

// release returns an arena to its pool. An exact-capacity arena whose
// pool a re-Tune has retired is dropped (it must not land in a
// power-of-two bucket, where a larger window would overflow it).
func (k *Kernel) release(sc *scratch) {
	if m := k.exact.Load(); m != nil {
		if b, ok := (*m)[sc.cap]; ok {
			b.pool.Put(sc)
			return
		}
	}
	if i := bucketIndex(sc.cap); sc.cap == 1<<i {
		k.buckets[i].pool.Put(sc)
	}
}

// noteSize records one completed solve of an n-task window in the
// per-length histogram.
func (k *Kernel) noteSize(n int) {
	k.sizeMu.Lock()
	if k.sizes == nil {
		k.sizes = make(map[int]uint64)
	}
	if _, ok := k.sizes[n]; ok || len(k.sizes) < 4096 {
		k.sizes[n]++
	}
	k.sizeMu.Unlock()
}

// Tune installs exact-capacity scratch pools for the hottest window
// lengths of hist.Sizes — workload-aware bucket tuning. A power-of-two
// bucket serves every n in (cap/2, cap] with arenas built for cap, so a
// hot odd size pays for arrays up to ~4x larger than it needs; an exact
// pool builds its arenas at precisely n (see ArenaBytes). Up to eight
// sizes are tuned, hottest first; lengths that are already powers of
// two are skipped (their bucket arena is already exact), and pools
// already installed for still-hot sizes are kept, warm arenas and
// counters intact. Tune is cheap and safe to call at any time — in
// the idiomatic self-tuning form k.Tune(k.Stats()), or with a histogram
// recorded by another kernel (a production mix replayed into a fresh
// process). Solves in flight keep the arenas they hold; their release
// routes by capacity, so no arena ever serves a window it cannot fit.
func (k *Kernel) Tune(hist KernelStats) {
	const topK = 8
	k.tuneMu.Lock()
	defer k.tuneMu.Unlock()
	old := k.exact.Load()
	m := make(map[int]*kernelBucket, topK)
	for _, s := range hist.Sizes {
		if len(m) >= topK {
			break
		}
		if s.N < 1 || s.Solves == 0 || s.N == 1<<bucketIndex(s.N) {
			continue
		}
		if old != nil {
			if b, ok := (*old)[s.N]; ok {
				m[s.N] = b
				continue
			}
		}
		b := &kernelBucket{}
		// Pre-size for the first solve: a warm exact arena with its DP
		// buffers built and one memLevel arena per member of the widest
		// team this kernel has run. A parallel solve draws W memLevel
		// arenas concurrently, so a pre-warm sized for one scratch per
		// solve would push W-1 fresh (cap+1)^2 allocations into the
		// first tuned solve.
		sc := newScratch(s.N)
		sc.prewarm(int(k.team.widest.Load()))
		b.pool.Put(sc)
		m[s.N] = b
	}
	// Fold the counters of pools this re-tune retires into the retired
	// accumulators before replacing the map: Stats totals must never go
	// backwards. (An in-flight solve holding a retired arena may still
	// bump the old bucket after the fold; that sliver is accepted.)
	if old != nil {
		for n, b := range *old {
			if _, kept := m[n]; kept {
				continue
			}
			k.retiredReuses.Add(b.reuses.Load())
			k.retiredFresh.Add(b.fresh.Load())
			k.retiredSolves.Add(b.solves.Load())
		}
	}
	k.exact.Store(&m)
}

// Stats returns a snapshot of the kernel's pool counters. Totals
// include the accumulated counters of exact pools retired by re-Tunes
// (their per-capacity rows disappear, but ScratchReuses/ScratchFresh
// stay monotonic).
func (k *Kernel) Stats() KernelStats {
	st := KernelStats{
		Solves:        k.solves.Load(),
		ScratchReuses: k.retiredReuses.Load(),
		ScratchFresh:  k.retiredFresh.Load(),
		Parallel: KernelParallelStats{
			Solves:         k.team.solves.Load(),
			Tiles:          k.team.tiles.Load(),
			LocalTiles:     k.team.localTiles.Load(),
			Steals:         k.team.steals.Load(),
			BusySeconds:    float64(k.team.busyNs.Load()) / 1e9,
			CrossoverSkips: k.team.skips.Load(),
			Workers:        k.team.liveWorkers(),
			AutoCrossover:  k.team.autoCrossover(),
		},
	}
	for i := range k.buckets {
		r, f, s := k.buckets[i].reuses.Load(), k.buckets[i].fresh.Load(), k.buckets[i].solves.Load()
		if r == 0 && f == 0 && s == 0 {
			continue
		}
		st.ScratchReuses += r
		st.ScratchFresh += f
		st.Buckets = append(st.Buckets, KernelBucketStats{Cap: 1 << i, Reuses: r, Fresh: f, Solves: s})
	}
	if m := k.exact.Load(); m != nil {
		for cap, b := range *m {
			r, f, s := b.reuses.Load(), b.fresh.Load(), b.solves.Load()
			st.ScratchReuses += r
			st.ScratchFresh += f
			st.Buckets = append(st.Buckets, KernelBucketStats{Cap: cap, Reuses: r, Fresh: f, Solves: s})
		}
		sort.Slice(st.Buckets, func(i, j int) bool { return st.Buckets[i].Cap < st.Buckets[j].Cap })
	}
	k.sizeMu.Lock()
	for n, c := range k.sizes {
		st.Sizes = append(st.Sizes, KernelSizeStats{N: n, Solves: c})
	}
	k.sizeMu.Unlock()
	sort.Slice(st.Sizes, func(i, j int) bool {
		a, b := st.Sizes[i], st.Sizes[j]
		if a.Solves != b.Solves {
			return a.Solves > b.Solves
		}
		return a.N < b.N
	})
	if len(st.Sizes) > 64 {
		st.Sizes = st.Sizes[:64]
	}
	return st
}

// ArenaBytes returns the backing bytes of one fully built scratch arena
// of the given capacity (segment tables, prefix weights, and the
// dynamic-program buffers; the lazily grown memLevel arenas are
// excluded). Benchmarks report it as arena-bytes/solve to quantify what
// exact-capacity pools save over power-of-two buckets, and the
// observability plane multiplies it by KernelStats.Buckets arena counts
// to expose pooled scratch memory as a gauge. Core itself stays free of
// any obs dependency — the 5 allocs/op warm path is gated by
// construction, not by instrumentation care.
func ArenaBytes(cap int) int {
	size := (cap + 1) * (cap + 1)
	b := 8 * (7*size + cap + 1)      // tables + pre
	b += 8 * 2 * cap * (cap + 1)     // ememBuf + mprvBuf
	b += 8 * 2 * size                // edskBuf + dprvBuf
	b += 8 * (2*(cap+1) + 3*(cap+1)) // row, arg, pos stacks
	return b
}

// Plan runs the named algorithm on the chain under the platform, using
// pooled scratch arenas.
func (k *Kernel) Plan(alg Algorithm, c *chain.Chain, p platform.Platform) (*Result, error) {
	return k.PlanOpts(alg, c, p, Options{})
}

// PlanOpts runs the named algorithm under the given options, using pooled
// scratch arenas. It is the kernel form of the package-level PlanOpts and
// returns bit-identical results.
func (k *Kernel) PlanOpts(alg Algorithm, c *chain.Chain, p platform.Platform, opts Options) (*Result, error) {
	return k.planWindow(alg, c, p, 0, opts)
}

// ReplanSuffix re-solves the dynamic program for the suffix of the chain
// after boundary `from`, typically because the platform's error rates
// have been re-estimated mid-run: boundary `from` is treated as the
// committed disk checkpoint the suffix starts from (free recovery,
// exactly like the virtual task T0). Unlike re-planning through a fresh
// chain, no suffix chain, cost table or constraint set is materialized:
// the kernel solves the window [from, n] in place against the original
// per-boundary tables, with scratch sized to the suffix (O((n-from)^2),
// not O(n^2)) and drawn from the pool.
//
// opts.Costs and opts.Constraints, when given, are the FULL-chain tables
// of the original plan; opts.MaxDiskCheckpoints is the budget remaining
// for the suffix. The result's schedule is indexed 1..n-from, suffix
// boundary j corresponding to original boundary from+j — the shape a
// supervisor splices in mid-run (see internal/runtime).
//
// ReplanSuffix(…, 0, opts) is exactly PlanOpts, and for any split the
// result is bit-identical to planning the suffix as a standalone chain
// with sliced cost and constraint tables (the equivalence suite in
// crossval_test.go enforces this).
func (k *Kernel) ReplanSuffix(alg Algorithm, c *chain.Chain, p platform.Platform, from int, opts Options) (*Result, error) {
	return k.planWindow(alg, c, p, from, opts)
}

// planWindow is the shared solve path: validate, borrow an arena, run,
// return the arena.
func (k *Kernel) planWindow(alg Algorithm, c *chain.Chain, p platform.Platform, lo int, opts Options) (*Result, error) {
	switch alg {
	case AlgADV, AlgADMVStar, AlgADMV:
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", alg)
	}
	if c == nil || c.Len() == 0 {
		return nil, fmt.Errorf("core: empty chain")
	}
	if lo < 0 || lo >= c.Len() {
		return nil, fmt.Errorf("core: suffix start %d out of range [0, %d)", lo, c.Len())
	}
	sc := k.acquire(c.Len() - lo)
	defer k.release(sc)
	s, err := newWindowSolver(c, p, alg, lo, opts.Costs, sc)
	if err != nil {
		return nil, err
	}
	s.k = k
	if err := s.applyOptions(opts); err != nil {
		return nil, err
	}
	if s.workers > 1 {
		k.team.solves.Add(1)
	}
	s.buildTables()
	res, err := s.run()
	if err == nil {
		n := c.Len() - lo
		k.solves.Add(1)
		b, _ := k.bucketFor(n)
		b.solves.Add(1)
		k.noteSize(n)
	}
	return res, err
}

// applyOptions validates and installs the optional planning inputs.
func (s *solver) applyOptions(opts Options) error {
	if opts.Constraints != nil {
		if err := opts.Constraints.validate(s.c.Len()); err != nil {
			return err
		}
		s.cons = opts.Constraints
	}
	if opts.MaxDiskCheckpoints != 0 {
		if opts.MaxDiskCheckpoints < 1 {
			return fmt.Errorf("core: MaxDiskCheckpoints must be at least 1 (the final checkpoint is mandatory)")
		}
		if opts.MaxDiskCheckpoints < s.maxDisk {
			s.maxDisk = opts.MaxDiskCheckpoints
		}
	}
	w, err := s.k.team.resolveSolveWorkers(opts.SolveWorkers, s.n)
	if err != nil {
		return err
	}
	s.workers = w
	return nil
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"chainckpt/internal/chain"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
)

// Cross-validation of the parallel in-kernel solve: for randomized
// instances across every algorithm, a solve tiled over a worker team
// must be byte-identical to the serial solve — same float bits in the
// expectation, same schedule. The team only partitions index space
// (memLevel calls across disk positions, k-wavefronts of the disk
// level, rows of the segment tables); every slot is written by exactly
// one tile and every min-reduction scans ascending inside its tile, so
// arrival order can never leak into the result.

// mustMatchBits is the strict form of mustEqualResults: the expected
// makespan is compared on raw IEEE-754 bits, not ==, so even a
// sign-of-zero or NaN-payload divergence would fail.
func mustMatchBits(t *testing.T, label string, serial, other *Result) {
	t.Helper()
	sb, ob := math.Float64bits(serial.ExpectedMakespan), math.Float64bits(other.ExpectedMakespan)
	if sb != ob {
		t.Fatalf("%s: makespan bits %016x (%v) vs %016x (%v)",
			label, sb, serial.ExpectedMakespan, ob, other.ExpectedMakespan)
	}
	if serial.Schedule.String() != other.Schedule.String() {
		t.Fatalf("%s: schedule %s vs %s", label, serial.Schedule, other.Schedule)
	}
}

// randChain builds an n-task chain with weights in [100, 1000).
func randChain(t *testing.T, rng *rand.Rand, n int) *chain.Chain {
	t.Helper()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 100 + 900*rng.Float64()
	}
	c, err := chain.FromWeights(weights...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// randOptions draws a random planning configuration: scattered
// placement constraints (final boundary always left intact), sometimes
// per-boundary costs, sometimes a disk-checkpoint budget.
func randOptions(t *testing.T, rng *rand.Rand, p platform.Platform, n int) Options {
	t.Helper()
	var opts Options
	if rng.Intn(2) == 0 {
		cons, err := NewConstraints(n)
		if err != nil {
			t.Fatal(err)
		}
		mechanisms := []schedule.Action{
			schedule.Disk, schedule.Memory, schedule.Guaranteed, schedule.Partial,
		}
		for i := 1; i < n; i++ {
			if rng.Intn(4) == 0 {
				cons.Forbid(i, mechanisms[rng.Intn(len(mechanisms))])
			}
		}
		opts.Constraints = cons
	}
	if rng.Intn(2) == 0 {
		sizes := make([]float64, n)
		for i := range sizes {
			sizes[i] = 0.5 + rng.Float64()
		}
		costs, err := platform.ScaledCosts(p, sizes)
		if err != nil {
			t.Fatal(err)
		}
		opts.Costs = costs
	}
	if rng.Intn(3) == 0 {
		opts.MaxDiskCheckpoints = 2 + rng.Intn(4)
	}
	return opts
}

// crossValWidths are the team widths validated against the serial path;
// 0 exercises the auto crossover mode.
var crossValWidths = []int{2, 4, 8, 0}

// TestCrossValParallelMatchesSerial runs the randomized suite: every
// algorithm at sizes up to its complexity budget, random constraints,
// costs and budgets, each solved serially once and then re-solved
// through worker teams of every width on the same (dirty-arena) kernel.
func TestCrossValParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		alg    Algorithm
		ns     []int
		trials int
	}{
		// ADV* is O(n^3): medium chains stay cheap enough to randomize.
		{AlgADV, []int{17, 64, 257}, 2},
		// ADMV* pair-evaluates partial positions (~n^4/24).
		{AlgADMVStar, []int{23, 81}, 2},
		// ADMV enumerates partial subsets; keep n small.
		{AlgADMV, []int{13, 29}, 2},
	}
	if !raceEnabled {
		cases[0].ns = append(cases[0].ns, 400)
		cases[1].ns = append(cases[1].ns, 120)
		cases[2].ns = append(cases[2].ns, 40)
	}
	rng := rand.New(rand.NewSource(20160523))
	k := NewKernel()
	p := hotPlatform()
	for _, tc := range cases {
		for _, n := range tc.ns {
			for trial := 0; trial < tc.trials; trial++ {
				c := randChain(t, rng, n)
				opts := randOptions(t, rng, p, n)
				opts.SolveWorkers = 1
				serial, err := k.PlanOpts(tc.alg, c, p, opts)
				if err != nil {
					t.Fatalf("%s n=%d trial=%d serial: %v", tc.alg, n, trial, err)
				}
				for _, w := range crossValWidths {
					opts.SolveWorkers = w
					par, err := k.PlanOpts(tc.alg, c, p, opts)
					if err != nil {
						t.Fatalf("%s n=%d trial=%d w=%d: %v", tc.alg, n, trial, w, err)
					}
					mustMatchBits(t, fmt.Sprintf("%s n=%d trial=%d w=%d", tc.alg, n, trial, w), serial, par)
				}
			}
		}
	}
	st := k.Stats()
	if st.Parallel.Solves == 0 || st.Parallel.Tiles == 0 {
		t.Fatalf("suite never engaged a worker team: %+v", st.Parallel)
	}
	// Every participant drains its own span before stealing, so the
	// owner-computes fast path must account for claimed tiles.
	if st.Parallel.LocalTiles == 0 {
		t.Fatalf("steal scheduler claimed no local tiles: %+v", st.Parallel)
	}
	if st.Parallel.LocalTiles+st.Parallel.Steals > st.Parallel.Tiles {
		t.Fatalf("more claims than tiles dispatched: %+v", st.Parallel)
	}
}

// TestCrossValStealImbalance forces the imbalance the steal path exists
// for: an unconstrained ADV chain's memory levels shrink quadratically
// with d1, and the size-sorted schedule deliberately front-loads the
// first owner span with the widest levels — so participants that drew
// the narrow tail must steal to stay busy. Byte-identity must hold
// through the steals, and the steal counter must actually move (on any
// machine: with one core the caller drains the parked helpers' spans by
// stealing; with many, the light spans finish early and steal back).
func TestCrossValStealImbalance(t *testing.T) {
	n := 600
	if raceEnabled {
		n = 300
	}
	rng := rand.New(rand.NewSource(42))
	k := NewKernel()
	p := hotPlatform()
	c := randChain(t, rng, n)
	opts := Options{MaxDiskCheckpoints: 8, SolveWorkers: 1}
	serial, err := k.PlanOpts(AlgADV, c, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := k.Stats().Parallel
	for trial := 0; trial < 3; trial++ {
		for _, w := range []int{2, 4, 8} {
			opts.SolveWorkers = w
			par, err := k.PlanOpts(AlgADV, c, p, opts)
			if err != nil {
				t.Fatalf("w=%d: %v", w, err)
			}
			mustMatchBits(t, fmt.Sprintf("imbalance trial=%d w=%d", trial, w), serial, par)
		}
	}
	st := k.Stats().Parallel
	if st.Steals == base.Steals {
		t.Fatalf("no steals under forced imbalance: %+v", st)
	}
	if st.LocalTiles == base.LocalTiles {
		t.Fatalf("no local claims under forced imbalance: %+v", st)
	}
}

// TestCrossValMegaChainSparseDisk is the mega-chain shape the team is
// built for: n=1000 with disk checkpoints only every 8th boundary and a
// tight disk budget, so the memory level between allowed positions —
// the tiled phase — carries the work. Run serially once, then through
// every width. Under -race the chain shrinks (still above the auto
// crossover) to keep the wall clock in budget.
func TestCrossValMegaChainSparseDisk(t *testing.T) {
	n := 1000
	if raceEnabled {
		n = 400
	}
	rng := rand.New(rand.NewSource(8))
	k := NewKernel()
	p := hotPlatform()
	c := randChain(t, rng, n)
	cons, err := NewConstraints(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if i%8 != 0 {
			cons.Forbid(i, schedule.Disk)
		}
	}
	opts := Options{Constraints: cons, MaxDiskCheckpoints: 32, SolveWorkers: 1}
	serial, err := k.PlanOpts(AlgADV, c, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range crossValWidths {
		opts.SolveWorkers = w
		par, err := k.PlanOpts(AlgADV, c, p, opts)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		mustMatchBits(t, fmt.Sprintf("mega-chain w=%d", w), serial, par)
	}
}

// TestCrossValReplanSuffixParallel covers the incremental entry point:
// suffix re-plans through a worker team must match their serial runs at
// every width, for random split points.
func TestCrossValReplanSuffixParallel(t *testing.T) {
	n := 120
	if raceEnabled {
		n = 60
	}
	rng := rand.New(rand.NewSource(11))
	k := NewKernel()
	p := hotPlatform()
	c := randChain(t, rng, n)
	opts := randOptions(t, rng, p, n)
	updated := p
	updated.LambdaF *= 3
	updated.LambdaS /= 2
	for trial := 0; trial < 4; trial++ {
		from := rng.Intn(n - 1)
		if opts.MaxDiskCheckpoints > n-from {
			opts.MaxDiskCheckpoints = n - from
		}
		opts.SolveWorkers = 1
		serial, err := k.ReplanSuffix(AlgADMVStar, c, updated, from, opts)
		if err != nil {
			t.Fatalf("from=%d serial: %v", from, err)
		}
		for _, w := range crossValWidths {
			opts.SolveWorkers = w
			par, err := k.ReplanSuffix(AlgADMVStar, c, updated, from, opts)
			if err != nil {
				t.Fatalf("from=%d w=%d: %v", from, w, err)
			}
			mustMatchBits(t, fmt.Sprintf("replan from=%d w=%d", from, w), serial, par)
		}
	}
}

// TestSolveWorkersValidation: negative widths are rejected, oversized
// widths are capped, auto mode below the crossover stays serial and is
// counted.
func TestSolveWorkersValidation(t *testing.T) {
	k := NewKernel()
	p := hotPlatform()
	c, err := chain.FromWeights(300, 700, 150)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.PlanOpts(AlgADV, c, p, Options{SolveWorkers: -1}); err == nil {
		t.Error("negative SolveWorkers accepted")
	}
	before := k.Stats().Parallel.CrossoverSkips
	if _, err := k.PlanOpts(AlgADV, c, p, Options{SolveWorkers: 0}); err != nil {
		t.Fatal(err)
	}
	// n=3 is far below the crossover: auto must decline and count it.
	if after := k.Stats().Parallel.CrossoverSkips; after != before+1 {
		t.Errorf("crossover skips %d -> %d, want one more", before, after)
	}
	// A team far wider than the machine is capped, not an error.
	if _, err := k.PlanOpts(AlgADV, c, p, Options{SolveWorkers: 10000}); err != nil {
		t.Errorf("oversized SolveWorkers rejected: %v", err)
	}
}

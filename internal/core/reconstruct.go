package core

import (
	"fmt"

	"chainckpt/internal/schedule"
)

// reconstruct walks the argmin tables back from Edisk(n) and materializes
// the optimal schedule. The guaranteed-verification and partial-
// verification argmins are recomputed on demand for the chosen (d1,m1)
// pairs only, which keeps the forward pass at O(n^2) memory.
func (s *solver) reconstruct(kFinal int, diskPrev [][]int, memPrevAll [][]int, ememAll [][]float64) (*schedule.Schedule, error) {
	n := s.n
	sched, err := schedule.New(n)
	if err != nil {
		return nil, err
	}

	dp := s.sc.ensureDP(n)

	// Disk checkpoint positions, in increasing order, walking the
	// (position, checkpoints-used) argmin chain back from (n, kFinal).
	disks := dp.posD[:0]
	for d, k := n, kFinal; d != 0; k-- {
		if d < 0 || k < 1 {
			return nil, fmt.Errorf("core: broken disk argmin chain at (%d, %d)", d, k)
		}
		disks = append(disks, d)
		d = diskPrev[d][k]
	}
	reverseInts(disks)

	var sc *partialScratch
	if s.alg == AlgADMV {
		sc = s.sc.reconPartial()
	}
	row := dp.row[: n+1 : n+1]
	arg := dp.arg[: n+1 : n+1]

	d1 := 0
	for _, d2 := range disks {
		sched.Set(d2, schedule.Disk)

		// Memory checkpoint positions in (d1, d2], increasing.
		mems := dp.posM[:0]
		for m := d2; m != d1; m = memPrevAll[d1][m] {
			if m < d1 {
				return nil, fmt.Errorf("core: broken memory argmin chain at %d (disk %d)", m, d1)
			}
			mems = append(mems, m)
		}
		reverseInts(mems)

		m1 := d1
		for _, m2 := range mems {
			if m2 != d2 {
				sched.Add(m2, schedule.Memory)
			}

			// Guaranteed verification positions in (m1, m2], increasing.
			s.verifRow(d1, m1, ememAll[d1][m1], sc, row, arg)
			verifs := dp.posV[:0]
			for v := m2; v != m1; v = arg[v] {
				if v < m1 {
					return nil, fmt.Errorf("core: broken verification argmin chain at %d (mem %d)", v, m1)
				}
				verifs = append(verifs, v)
			}
			reverseInts(verifs)

			v1 := m1
			for _, v2 := range verifs {
				if v2 != m2 {
					sched.Add(v2, schedule.Guaranteed)
				}
				if s.alg == AlgADMV {
					// Recompute the optimal partial chain for (v1, v2) and
					// mark the interior positions.
					s.epartial(sc, d1, m1, v1, v2, ememAll[d1][m1], row[v1])
					for p := sc.next[v1]; p != v2; p = sc.next[p] {
						if p <= v1 || p > v2 {
							return nil, fmt.Errorf("core: broken partial chain at %d in (%d,%d)", p, v1, v2)
						}
						sched.Add(p, schedule.Partial)
					}
				}
				v1 = v2
			}
			m1 = m2
		}
		d1 = d2
	}

	if err := sched.ValidateComplete(); err != nil {
		return nil, fmt.Errorf("core: reconstructed schedule invalid: %w", err)
	}
	return sched, nil
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

//go:build race

package experiments

// raceEnabled shrinks the streaming-sweep sizes: the race detector
// multiplies solve time ~15x, and the tests' value is the frontier and
// identity contracts, not the absolute n.
const raceEnabled = true

package experiments

import (
	"strings"
	"testing"

	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

func TestHeuristicComparisonOrderingAndGaps(t *testing.T) {
	rows, err := HeuristicComparison(platform.Hera(), workload.PatternHighLow, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3+5 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// Sorted ascending; the first row must match the optimum (a heuristic
	// may tie it exactly, e.g. GreedyInsert on easy instances).
	if rows[0].GapPct > 1e-9 {
		t.Errorf("first row should match the optimum: %+v", rows[0])
	}
	foundDP := false
	prev := 0.0
	for _, r := range rows {
		if r.Expected < prev {
			t.Errorf("rows not sorted: %+v", rows)
		}
		prev = r.Expected
		if r.GapPct < -1e-9 {
			t.Errorf("%s beats the optimum beyond rounding: gap %f", r.Name, r.GapPct)
		}
		if r.Name == "DP ADMV" && r.GapPct < 1e-9 {
			foundDP = true
		}
	}
	if !foundDP {
		t.Error("DP ADMV row missing or not at gap zero")
	}
	table := HeuristicTable(rows)
	for _, want := range []string{"DP ADMV", "GreedyInsert", "FinalOnly", "gap vs ADMV"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := HeuristicCSV("Hera", workload.PatternHighLow, 20, rows)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(rows)+1 {
		t.Error("csv row count mismatch")
	}
}

func TestHeuristicComparisonFinalOnlyWorstOnHera(t *testing.T) {
	rows, err := HeuristicComparison(platform.Hera(), workload.PatternUniform, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rows[len(rows)-1].Name != "FinalOnly" {
		t.Errorf("expected FinalOnly to trail on Hera, got order: %v", names(rows))
	}
}

func names(rows []HeuristicRow) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Name
	}
	return out
}

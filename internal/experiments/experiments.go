// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) plus the reproduction's own validation and
// ablation studies. Each experiment returns plain data structures; the
// rendering helpers produce aligned text and CSV so the cmd/chainexp tool
// and the benchmark harness share one implementation.
//
// Experiment index (see DESIGN.md for the full mapping):
//
//	Table1     — platform parameters (paper Table I)
//	Fig5       — Uniform pattern, 4 platforms: normalized makespan vs n
//	             for ADV*/ADMV*/ADMV and mechanism counts per algorithm
//	Fig6       — placement strips for ADMV at n = 50 (via Figure.Strip)
//	Fig7, Fig8 — Decrease and HighLow patterns on Hera and Coastal SSD
//	Validation — X1: DP vs closed forms vs exact oracle vs Monte Carlo
//	RecallSweep, PartialCostSweep, RateSweep — X2 ablations
//	BlindPlanningPenalty — X3: cost of planning while ignoring silent errors
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"

	"chainckpt/internal/ascii"
	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/sim"
	"chainckpt/internal/workload"
)

// simWorkers sizes each Monte-Carlo job of an engine fan-out over rows
// concurrent jobs: at least two streams per job, growing to cover the
// whole machine when the fan-out is narrower than the core count.
// sim.Run is deterministic for a fixed (Seed, Workers) pair, so a given
// machine reproduces its results exactly (as with the seed's
// GOMAXPROCS-wide default, cross-machine runs may differ in the stream
// split).
func simWorkers(rows int) int {
	w := runtime.GOMAXPROCS(0) / rows
	if w < 2 {
		w = 2
	}
	return w
}

// Config bounds a figure sweep. The zero value reproduces the paper
// (n = 1..50 in steps of 1, total weight 25000 s, all three algorithms).
type Config struct {
	MaxTasks    int
	Step        int
	TotalWeight float64
	Algorithms  []core.Algorithm
	// Frontier bounds how many requests a sweep keeps in flight (and
	// therefore how many chains and results it holds at once): Run
	// streams the sweep through the engine in frontier-sized windows,
	// so peak memory is O(frontier), not O(points) — the difference
	// between a mega-chain sweep fitting in RAM or not. Zero picks
	// 4×GOMAXPROCS (enough to keep the default engine pool saturated).
	Frontier int
}

func (c Config) normalized() Config {
	if c.MaxTasks <= 0 {
		c.MaxTasks = workload.PaperMaxTasks
	}
	if c.Step <= 0 {
		c.Step = 1
	}
	if c.TotalWeight <= 0 {
		c.TotalWeight = workload.PaperTotalWeight
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = core.Algorithms()
	}
	if c.Frontier <= 0 {
		c.Frontier = 4 * runtime.GOMAXPROCS(0)
	}
	return c
}

// Point is one (n, algorithm) measurement of a sweep.
type Point struct {
	N          int
	Algorithm  core.Algorithm
	Expected   float64
	Normalized float64
	Counts     schedule.Counts
}

// Figure is one reproduced figure panel: one pattern on one platform.
type Figure struct {
	ID       string
	Pattern  workload.Pattern
	Platform platform.Platform
	Ns       []int
	Points   []Point
	// Schedules holds, per algorithm, the optimal schedule at the largest
	// swept n — the data behind the paper's Figure 6 placement strips.
	Schedules map[core.Algorithm]*schedule.Schedule
	// MaxFrontier records the largest number of requests the sweep had
	// in flight at once — the regression guard behind the O(frontier)
	// memory contract (it must never exceed Config.Frontier).
	MaxFrontier int
}

// Run sweeps n for one pattern/platform pair by streaming
// frontier-sized windows of (n, algorithm) requests through the shared
// batch engine (engine.Default, sharded across GOMAXPROCS memos): a
// window's requests are planned concurrently via Engine.Stream, each
// result is condensed into its Point as it drains (only the largest-n
// schedules survive the window), and the window's chain, request and
// response buffers are recycled for the next one. A sweep therefore
// saturates the machine without serializing on one memo mutex, repeated
// figures (fig5 and fig6 plan the same instances) hit the memo instead
// of re-solving, and peak memory is O(Config.Frontier) instead of
// O(points) — what lets a mega-chain sweep run at lengths where holding
// every chain and result at once would not fit. Points land in request
// order (windows are consumed in index order), so the CSV output is
// byte-identical to the batch implementation this replaces.
func Run(id string, pat workload.Pattern, plat platform.Platform, cfg Config) (*Figure, error) {
	cfg = cfg.normalized()
	fig := &Figure{
		ID:        id,
		Pattern:   pat,
		Platform:  plat,
		Schedules: make(map[core.Algorithm]*schedule.Schedule),
	}
	ctx := context.Background()
	eng := engine.Default()
	// One window's worth of request and response buffers, recycled
	// across flushes; responses land by Index, so completion order
	// never reaches the Points slice.
	reqs := make([]engine.Request, 0, cfg.Frontier)
	resps := make([]engine.Response, cfg.Frontier)
	flush := func() error {
		if len(reqs) == 0 {
			return nil
		}
		if len(reqs) > fig.MaxFrontier {
			fig.MaxFrontier = len(reqs)
		}
		for resp := range eng.Stream(ctx, reqs) {
			resps[resp.Index] = resp
		}
		for i := range reqs {
			resp := &resps[i]
			c, alg := reqs[i].Chain, reqs[i].Algorithm
			if resp.Err != nil {
				return fmt.Errorf("experiments: %s n=%d %s: %w", id, c.Len(), alg, resp.Err)
			}
			res := resp.Result
			fig.Points = append(fig.Points, Point{
				N:          c.Len(),
				Algorithm:  alg,
				Expected:   res.ExpectedMakespan,
				Normalized: res.NormalizedMakespan(c),
				Counts:     res.Schedule.Counts(),
			})
			if c.Len()+cfg.Step > cfg.MaxTasks {
				fig.Schedules[alg] = res.Schedule
			}
			resps[i] = engine.Response{} // drop the result with the window
		}
		reqs = reqs[:0]
		return nil
	}
	for n := 1; n <= cfg.MaxTasks; n += cfg.Step {
		c, err := workload.Generate(pat, n, cfg.TotalWeight)
		if err != nil {
			return nil, err
		}
		fig.Ns = append(fig.Ns, n)
		for _, alg := range cfg.Algorithms {
			reqs = append(reqs, engine.Request{Algorithm: alg, Chain: c, Platform: plat})
			if len(reqs) == cfg.Frontier {
				if err := flush(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return fig, nil
}

// Fig5 reproduces Figure 5: the Uniform pattern on all four platforms.
func Fig5(cfg Config) ([]*Figure, error) {
	var figs []*Figure
	for _, plat := range platform.All() {
		fig, err := Run("fig5-"+Slug(plat.Name), workload.PatternUniform, plat, cfg)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig7 reproduces Figure 7: the Decrease pattern on Hera and Coastal SSD.
func Fig7(cfg Config) ([]*Figure, error) {
	return twoPlatformFigure("fig7", workload.PatternDecrease, cfg)
}

// Fig8 reproduces Figure 8: the HighLow pattern on Hera and Coastal SSD.
func Fig8(cfg Config) ([]*Figure, error) {
	return twoPlatformFigure("fig8", workload.PatternHighLow, cfg)
}

func twoPlatformFigure(id string, pat workload.Pattern, cfg Config) ([]*Figure, error) {
	var figs []*Figure
	for _, plat := range []platform.Platform{platform.Hera(), platform.CoastalSSD()} {
		fig, err := Run(id+"-"+Slug(plat.Name), pat, plat, cfg)
		if err != nil {
			return nil, err
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// point returns the measurement for (n, alg), or nil.
func (f *Figure) point(n int, alg core.Algorithm) *Point {
	for i := range f.Points {
		if f.Points[i].N == n && f.Points[i].Algorithm == alg {
			return &f.Points[i]
		}
	}
	return nil
}

// Algorithms returns the distinct algorithms present, in canonical order.
func (f *Figure) Algorithms() []core.Algorithm {
	var out []core.Algorithm
	for _, alg := range core.Algorithms() {
		if f.point(f.Ns[0], alg) != nil {
			out = append(out, alg)
		}
	}
	return out
}

// NormalizedChart renders the figure's first-column plot: normalized
// makespan vs number of tasks, one series per algorithm.
func (f *Figure) NormalizedChart() string {
	xs := make([]float64, len(f.Ns))
	for i, n := range f.Ns {
		xs[i] = float64(n)
	}
	var series []ascii.Series
	for _, alg := range f.Algorithms() {
		ys := make([]float64, len(f.Ns))
		for i, n := range f.Ns {
			if p := f.point(n, alg); p != nil {
				ys[i] = p.Normalized
			} else {
				ys[i] = math.NaN()
			}
		}
		series = append(series, ascii.Series{Label: string(alg), Y: ys})
	}
	title := fmt.Sprintf("%s pattern on %s: normalized makespan vs number of tasks",
		f.Pattern, f.Platform.Name)
	return ascii.LineChart(title, xs, series, 60, 14)
}

// CountsTable renders the per-n mechanism counts for one algorithm (the
// paper's second-to-fourth columns of Figures 5, 7, 8).
func (f *Figure) CountsTable(alg core.Algorithm) string {
	rows := make([][]string, 0, len(f.Ns))
	for _, n := range f.Ns {
		p := f.point(n, alg)
		if p == nil {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", p.Normalized),
			fmt.Sprintf("%d", p.Counts.Disk),
			fmt.Sprintf("%d", p.Counts.Memory),
			fmt.Sprintf("%d", p.Counts.Guaranteed),
			fmt.Sprintf("%d", p.Counts.Partial),
		})
	}
	return fmt.Sprintf("Algorithm %s on %s (%s pattern)\n%s", alg, f.Platform.Name, f.Pattern,
		ascii.Table([]string{"n", "norm.makespan", "#disk", "#mem", "#verif", "#partial"}, rows))
}

// Strip renders the Figure 6 placement strip for one algorithm at the
// largest swept n.
func (f *Figure) Strip(alg core.Algorithm) string {
	s, ok := f.Schedules[alg]
	if !ok {
		return "(no schedule recorded)"
	}
	return fmt.Sprintf("Platform %s with %s and n=%d (%s pattern)\n%s",
		f.Platform.Name, alg, s.Len(), f.Pattern, s.Strip())
}

// CSV renders the figure's points as CSV rows with a header.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("pattern,platform,n,algorithm,expected_makespan,normalized_makespan,disk,memory,guaranteed,partial\n")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%s,%s,%d,%s,%.6f,%.8f,%d,%d,%d,%d\n",
			f.Pattern, f.Platform.Name, p.N, p.Algorithm, p.Expected, p.Normalized,
			p.Counts.Disk, p.Counts.Memory, p.Counts.Guaranteed, p.Counts.Partial)
	}
	return b.String()
}

// Table1 renders the paper's Table I from the shipped platforms.
func Table1() string {
	rows := make([][]string, 0, 4)
	for _, p := range platform.All() {
		rows = append(rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.2e", p.LambdaF),
			fmt.Sprintf("%.2e", p.LambdaS),
			fmt.Sprintf("%gs", p.CD),
			fmt.Sprintf("%gs", p.CM),
			fmt.Sprintf("%.1f", p.FailStopMTBF()/86400),
			fmt.Sprintf("%.1f", p.SilentMTBF()/86400),
		})
	}
	return ascii.Table(
		[]string{"platform", "#nodes", "lambda_f", "lambda_s", "C_D", "C_M", "MTBF_f(days)", "MTBF_s(days)"},
		rows)
}

// GainSummary reports, per figure, the relative makespan improvements of
// ADMV* over ADV* and ADMV over ADMV* at the largest n — the numbers the
// paper quotes in its "Summary of results" (2% on Hera, 5% on Atlas, ~1%
// partial-verification gain on Coastal SSD).
func GainSummary(figs []*Figure) string {
	rows := make([][]string, 0, len(figs))
	for _, f := range figs {
		n := f.Ns[len(f.Ns)-1]
		adv := f.point(n, core.AlgADV)
		star := f.point(n, core.AlgADMVStar)
		admv := f.point(n, core.AlgADMV)
		if adv == nil || star == nil || admv == nil {
			continue
		}
		rows = append(rows, []string{
			f.Platform.Name,
			string(f.Pattern),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f%%", 100*(1-star.Expected/adv.Expected)),
			fmt.Sprintf("%.2f%%", 100*(1-admv.Expected/star.Expected)),
			fmt.Sprintf("%.2f%%", 100*(1-admv.Expected/adv.Expected)),
		})
	}
	return ascii.Table(
		[]string{"platform", "pattern", "n", "ADMV* vs ADV*", "ADMV vs ADMV*", "ADMV vs ADV*"},
		rows)
}

// Slug lowercases a display name into a file-name-friendly token.
func Slug(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, " ", "-"))
}

// ValidationRow is one line of the X1 cross-validation experiment.
type ValidationRow struct {
	Pattern   workload.Pattern
	Platform  string
	Algorithm core.Algorithm
	N         int
	DP        float64 // dynamic-program optimum
	Closed    float64 // core.Evaluate of the DP schedule
	Oracle    float64 // evaluate.Exact of the DP schedule
	SimMean   float64 // Monte-Carlo mean
	SimHW95   float64 // 95% confidence half-width
	Sigma     float64 // |SimMean - Oracle| in standard errors
}

// Validation runs the X1 experiment: for each pattern/platform/algorithm,
// plan at the given n, then recompute the expectation along the three
// independent routes and simulate. All plans resolve through the shared
// batch engine in one PlanMany call, and the per-row evaluation and
// Monte-Carlo pipelines fan out on the same worker pool, so the whole
// cross-validation runs at instance-level parallelism.
func Validation(n int, replications int, seed uint64) ([]ValidationRow, error) {
	type combo struct {
		pat  workload.Pattern
		c    *chain.Chain
		plat platform.Platform
	}
	var combos []combo
	var reqs []engine.Request
	for _, pat := range workload.Patterns() {
		c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
		if err != nil {
			return nil, err
		}
		for _, plat := range []platform.Platform{platform.Hera(), platform.CoastalSSD()} {
			for _, alg := range core.Algorithms() {
				combos = append(combos, combo{pat: pat, c: c, plat: plat})
				reqs = append(reqs, engine.Request{Algorithm: alg, Chain: c, Platform: plat})
			}
		}
	}

	eng := engine.Default()
	resps := eng.PlanMany(context.Background(), reqs)
	out := make([]ValidationRow, len(combos))
	row := func(i int) error {
		if resps[i].Err != nil {
			return resps[i].Err
		}
		res := resps[i].Result
		cb := combos[i]
		closed, err := core.Evaluate(cb.c, cb.plat, res.Schedule)
		if err != nil {
			return err
		}
		oracle, err := evaluate.Exact(cb.c, cb.plat, res.Schedule)
		if err != nil {
			return err
		}
		sres, err := sim.Run(cb.c, cb.plat, res.Schedule, sim.Options{
			Replications: replications, Seed: seed, Workers: simWorkers(len(combos)),
		})
		if err != nil {
			return err
		}
		sigma := 0.0
		if se := sres.Makespan.StdErr(); se > 0 {
			sigma = math.Abs(sres.Mean()-oracle) / se
		}
		out[i] = ValidationRow{
			Pattern:   cb.pat,
			Platform:  cb.plat.Name,
			Algorithm: res.Algorithm,
			N:         n,
			DP:        res.ExpectedMakespan,
			Closed:    closed,
			Oracle:    oracle,
			SimMean:   sres.Mean(),
			SimHW95:   sres.HalfWidth95(),
			Sigma:     sigma,
		}
		return nil
	}
	if err := runCancelling(eng, len(combos), row); err != nil {
		return nil, err
	}
	return out, nil
}

// runCancelling fans fn out on the engine's pool, cancelling the rows
// that have not started as soon as one fails: one broken row must not
// pay for the remaining Monte-Carlo work.
func runCancelling(eng *engine.Engine, n int, fn func(i int) error) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	return eng.Run(ctx, n, func(i int) error {
		if err := fn(i); err != nil {
			cancel()
			return err
		}
		return nil
	})
}

// ValidationTable renders validation rows.
func ValidationTable(rows []ValidationRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Pattern), r.Platform, string(r.Algorithm), fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%.2f", r.DP),
			fmt.Sprintf("%.2e", math.Abs(r.DP-r.Closed)/r.DP),
			fmt.Sprintf("%.2e", math.Abs(r.DP-r.Oracle)/r.DP),
			fmt.Sprintf("%.2f±%.2f", r.SimMean, r.SimHW95),
			fmt.Sprintf("%.2f", r.Sigma),
		})
	}
	return ascii.Table(
		[]string{"pattern", "platform", "alg", "n", "E[DP]", "|DP-closed|/E", "|DP-oracle|/E", "sim mean", "sigma"},
		out)
}

// ValidationCSV renders validation rows as CSV.
func ValidationCSV(rows []ValidationRow) string {
	var b strings.Builder
	b.WriteString("pattern,platform,algorithm,n,dp,closed,oracle,sim_mean,sim_hw95,sigma\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.3f\n",
			r.Pattern, r.Platform, r.Algorithm, r.N, r.DP, r.Closed, r.Oracle,
			r.SimMean, r.SimHW95, r.Sigma)
	}
	return b.String()
}

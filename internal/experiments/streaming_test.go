package experiments

import (
	"runtime"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// withSweepEngine swaps the shared default engine for a small dedicated
// one for the duration of the test, so the measurements below are not
// absorbed by (or polluting) the process-wide memo.
func withSweepEngine(t *testing.T, opts engine.Options) {
	t.Helper()
	prev := engine.Default()
	eng := engine.New(opts)
	engine.SetDefault(eng)
	t.Cleanup(func() {
		engine.SetDefault(prev)
		eng.Close()
	})
}

// TestRunStreamingFrontierBounded: a sweep must never hold more than
// Config.Frontier requests (chains, results) in flight — the structural
// guard behind the O(frontier) memory contract — and the streaming
// windows must not change a single output byte relative to a
// one-window (batch-shaped) run.
func TestRunStreamingFrontierBounded(t *testing.T) {
	withSweepEngine(t, engine.Options{Workers: 2, CacheSize: -1})
	cfg := Config{MaxTasks: 40, Frontier: 5}
	fig, err := Run("stream", workload.PatternUniform, platform.Hera(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fig.MaxFrontier == 0 || fig.MaxFrontier > cfg.Frontier {
		t.Fatalf("max frontier %d, want in [1, %d]", fig.MaxFrontier, cfg.Frontier)
	}
	if got, want := len(fig.Points), 40*len(core.Algorithms()); got != want {
		t.Fatalf("points = %d, want %d", got, want)
	}

	batch, err := Run("stream", workload.PatternUniform, platform.Hera(),
		Config{MaxTasks: 40, Frontier: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if batch.MaxFrontier != 40*len(core.Algorithms()) {
		t.Fatalf("one-window run had frontier %d, want the whole sweep", batch.MaxFrontier)
	}
	if fig.CSV() != batch.CSV() {
		t.Error("windowed sweep CSV differs from the one-window sweep")
	}
}

// TestRunMegaChainSweepMemory is the O(frontier) memory proof on the
// mega-chain shape: an ADMV* sweep up to n=400 (shrunk under -race)
// with a two-request frontier must complete with bounded GC'd heap
// growth — the windows recycle their buffers and results are condensed
// to Points as they drain, so finishing the sweep cannot cost memory
// proportional to the number of points.
func TestRunMegaChainSweepMemory(t *testing.T) {
	maxN := 400
	if raceEnabled {
		maxN = 160
	}
	withSweepEngine(t, engine.Options{Workers: 2, CacheSize: -1})
	cfg := Config{
		MaxTasks:   maxN,
		Step:       maxN - 1, // two points per algorithm: n=1 and n=maxN
		Algorithms: []core.Algorithm{core.AlgADMVStar},
		Frontier:   2,
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fig, err := Run("mega", workload.PatternUniform, platform.Hera(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if fig.MaxFrontier > cfg.Frontier {
		t.Fatalf("max frontier %d exceeds configured %d", fig.MaxFrontier, cfg.Frontier)
	}
	if len(fig.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(fig.Points))
	}
	// What legitimately survives the sweep: the kernel's pooled scratch
	// arena for the largest window (~30 MB at n=400) plus the condensed
	// figure. 128 MB is far under what retaining every per-point result
	// of a dense mega-chain sweep would cost, while leaving headroom
	// for allocator and GC noise.
	const limit = 128 << 20
	if after.HeapAlloc > before.HeapAlloc && after.HeapAlloc-before.HeapAlloc > limit {
		t.Errorf("heap grew %d bytes across the sweep, want <= %d",
			after.HeapAlloc-before.HeapAlloc, limit)
	}
}

package experiments

import (
	"strings"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/sensitivity"
	"chainckpt/internal/workload"
)

var tinyCfg = Config{MaxTasks: 6, Step: 2}

func TestFig5Wrapper(t *testing.T) {
	figs, err := Fig5(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("Fig5 returned %d figures", len(figs))
	}
	names := map[string]bool{}
	for _, f := range figs {
		names[f.Platform.Name] = true
		if f.Pattern != workload.PatternUniform {
			t.Errorf("%s: pattern %s", f.ID, f.Pattern)
		}
		if len(f.Ns) != 3 { // 1, 3, 5
			t.Errorf("%s: Ns = %v", f.ID, f.Ns)
		}
	}
	for _, want := range []string{"Hera", "Atlas", "Coastal", "Coastal SSD"} {
		if !names[want] {
			t.Errorf("missing platform %s", want)
		}
	}
}

func TestFig7AndFig8Wrappers(t *testing.T) {
	for name, f := range map[string]func(Config) ([]*Figure, error){"fig7": Fig7, "fig8": Fig8} {
		figs, err := f(tinyCfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(figs) != 2 {
			t.Fatalf("%s returned %d figures", name, len(figs))
		}
		if figs[0].Platform.Name != "Hera" || figs[1].Platform.Name != "Coastal SSD" {
			t.Errorf("%s platforms: %s, %s", name, figs[0].Platform.Name, figs[1].Platform.Name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.normalized()
	if cfg.MaxTasks != workload.PaperMaxTasks || cfg.Step != 1 ||
		cfg.TotalWeight != workload.PaperTotalWeight || len(cfg.Algorithms) != 3 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestSensitivityReportAndRenderers(t *testing.T) {
	rows, err := SensitivityReport(platform.Hera(), workload.PatternUniform, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(sensitivity.Parameters()) {
		t.Fatalf("rows = %d", len(rows))
	}
	table := SensitivityTable(rows)
	for _, want := range []string{"lambda_f", "elasticity", "recall"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	csv := SensitivityCSV("Hera", rows)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(rows)+1 {
		t.Error("csv row count mismatch")
	}
	if !strings.HasPrefix(csv, "platform,parameter,") {
		t.Errorf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

func TestGainSummarySkipsMissingAlgorithms(t *testing.T) {
	fig, err := Run("partial-algs", workload.PatternUniform, platform.Hera(), Config{
		MaxTasks:   4,
		Algorithms: []core.Algorithm{core.AlgADV},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := GainSummary([]*Figure{fig})
	if strings.Contains(out, "Hera") {
		t.Errorf("summary should skip figures without all three algorithms:\n%s", out)
	}
	if got := fig.Algorithms(); len(got) != 1 || got[0] != core.AlgADV {
		t.Errorf("Algorithms() = %v", got)
	}
}

func TestSlug(t *testing.T) {
	if got := Slug("Coastal SSD"); got != "coastal-ssd" {
		t.Errorf("Slug = %q", got)
	}
}

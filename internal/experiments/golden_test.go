package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden compares got against the named golden file, rewriting it when
// the -update flag is set. Golden files pin the exact experiment outputs
// (both numbers and formatting), so an accidental change to the DP, the
// model constants or a renderer shows up as a diff.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	golden(t, "table1.golden", Table1())
}

func TestGoldenSmallFigureCSV(t *testing.T) {
	fig, err := Run("golden", workload.PatternUniform, platform.Hera(), Config{MaxTasks: 6})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "fig_small.csv.golden", fig.CSV())
}

func TestGoldenStrip(t *testing.T) {
	fig, err := Run("golden", workload.PatternHighLow, platform.CoastalSSD(), Config{MaxTasks: 10, Step: 9})
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "strip.golden", fig.Strip("ADMV"))
}

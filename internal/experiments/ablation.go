package experiments

import (
	"fmt"
	"strings"

	"chainckpt/internal/ascii"
	"chainckpt/internal/core"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// SweepPoint is one measurement of a single-parameter ablation sweep.
type SweepPoint struct {
	Param      float64
	Expected   float64
	Normalized float64
	Partials   int // partial verifications placed (where meaningful)
}

// RecallSweep runs ADMV with varying partial-verification recall r on one
// platform: it shows when (and how strongly) imperfect detectors pay off.
func RecallSweep(plat platform.Platform, pat workload.Pattern, n int, recalls []float64) ([]SweepPoint, error) {
	c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, r := range recalls {
		p := plat
		p.Recall = r
		res, err := core.PlanADMV(c, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: recall %g: %w", r, err)
		}
		out = append(out, SweepPoint{
			Param:      r,
			Expected:   res.ExpectedMakespan,
			Normalized: res.NormalizedMakespan(c),
			Partials:   res.Schedule.Counts().Partial,
		})
	}
	return out, nil
}

// PartialCostSweep runs ADMV with V = frac * V* for each frac: it locates
// the cost threshold under which partial verifications enter the optimal
// schedule (the paper uses frac = 0.01).
func PartialCostSweep(plat platform.Platform, pat workload.Pattern, n int, fracs []float64) ([]SweepPoint, error) {
	c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, f := range fracs {
		p := plat
		p.V = f * p.VStar
		res, err := core.PlanADMV(c, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: cost fraction %g: %w", f, err)
		}
		out = append(out, SweepPoint{
			Param:      f,
			Expected:   res.ExpectedMakespan,
			Normalized: res.NormalizedMakespan(c),
			Partials:   res.Schedule.Counts().Partial,
		})
	}
	return out, nil
}

// RatePoint is one measurement of the error-rate ablation.
type RatePoint struct {
	Multiplier float64
	Normalized map[core.Algorithm]float64
}

// RateSweep scales both error rates by each multiplier and replans with
// all three algorithms: the two-level gain grows with the error rate.
func RateSweep(plat platform.Platform, pat workload.Pattern, n int, mults []float64) ([]RatePoint, error) {
	c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
	if err != nil {
		return nil, err
	}
	var out []RatePoint
	for _, m := range mults {
		p := plat
		p.LambdaF *= m
		p.LambdaS *= m
		pt := RatePoint{Multiplier: m, Normalized: make(map[core.Algorithm]float64)}
		for _, alg := range core.Algorithms() {
			res, err := core.Plan(alg, c, p)
			if err != nil {
				return nil, fmt.Errorf("experiments: rate x%g %s: %w", m, alg, err)
			}
			pt.Normalized[alg] = res.NormalizedMakespan(c)
		}
		out = append(out, pt)
	}
	return out, nil
}

// BlindPenalty is the X3 experiment result: the cost of planning as if
// silent errors did not exist.
type BlindPenalty struct {
	Platform string
	Pattern  workload.Pattern
	N        int
	// Aware is the exact expectation of the schedule planned with the true
	// rates (ADMV* planner).
	Aware float64
	// Blind is the exact expectation, under the true platform, of the
	// schedule planned with lambda_s = 0 (fail-stop-only planning in the
	// tradition of Toueg/Babaoglu-style checkpoint placement).
	Blind float64
	// PenaltyPct is 100*(Blind/Aware - 1).
	PenaltyPct float64
}

// BlindPlanningPenalty plans with lambda_s forced to zero, then evaluates
// the resulting schedule under the true platform with the exact oracle.
func BlindPlanningPenalty(plat platform.Platform, pat workload.Pattern, n int) (*BlindPenalty, error) {
	c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
	if err != nil {
		return nil, err
	}
	aware, err := core.PlanADMVStar(c, plat)
	if err != nil {
		return nil, err
	}
	awareExact, err := evaluate.Exact(c, plat, aware.Schedule)
	if err != nil {
		return nil, err
	}
	blindPlat := plat
	blindPlat.LambdaS = 0
	blind, err := core.PlanADMVStar(c, blindPlat)
	if err != nil {
		return nil, err
	}
	blindExact, err := evaluate.Exact(c, plat, blind.Schedule)
	if err != nil {
		return nil, err
	}
	return &BlindPenalty{
		Platform:   plat.Name,
		Pattern:    pat,
		N:          n,
		Aware:      awareExact,
		Blind:      blindExact,
		PenaltyPct: 100 * (blindExact/awareExact - 1),
	}, nil
}

// SweepTable renders sweep points with the given parameter name.
func SweepTable(param string, pts []SweepPoint) string {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%g", p.Param),
			fmt.Sprintf("%.2f", p.Expected),
			fmt.Sprintf("%.5f", p.Normalized),
			fmt.Sprintf("%d", p.Partials),
		})
	}
	return ascii.Table([]string{param, "E[makespan]", "normalized", "#partials"}, rows)
}

// RateTable renders rate-sweep points.
func RateTable(pts []RatePoint) string {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("x%g", p.Multiplier),
			fmt.Sprintf("%.5f", p.Normalized[core.AlgADV]),
			fmt.Sprintf("%.5f", p.Normalized[core.AlgADMVStar]),
			fmt.Sprintf("%.5f", p.Normalized[core.AlgADMV]),
			fmt.Sprintf("%.2f%%", 100*(1-p.Normalized[core.AlgADMVStar]/p.Normalized[core.AlgADV])),
		})
	}
	return ascii.Table([]string{"rate mult", "ADV*", "ADMV*", "ADMV", "two-level gain"}, rows)
}

// SweepCSV renders sweep points as CSV.
func SweepCSV(param string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,expected_makespan,normalized,partials\n", param)
	for _, p := range pts {
		fmt.Fprintf(&b, "%g,%.6f,%.8f,%d\n", p.Param, p.Expected, p.Normalized, p.Partials)
	}
	return b.String()
}

package experiments

import (
	"strings"
	"testing"
)

func TestPatternComparison(t *testing.T) {
	rows, err := PatternComparison(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*3 { // platforms x workload patterns
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		if r.GapPct < -1e-4 {
			t.Errorf("%s/%s: pattern beats the DP optimum by %.4f%%", r.Platform, r.Workload, -r.GapPct)
		}
		if r.Measured <= 0 || r.DP <= 0 {
			t.Errorf("%s/%s: non-positive overheads %+v", r.Platform, r.Workload, r)
		}
		if r.W <= 0 {
			t.Errorf("%s/%s: bad pattern length %g", r.Platform, r.Workload, r.W)
		}
	}
	table := PatternTable(rows)
	for _, want := range []string{"Hera", "HighLow", "gap", "W*(s)"} {
		if !strings.Contains(table, want) {
			t.Errorf("pattern table missing %q:\n%s", want, table)
		}
	}
	csv := PatternCSV(rows)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(rows)+1 {
		t.Error("pattern csv row count mismatch")
	}
}

func TestPatternGapLargerOnSkewedChains(t *testing.T) {
	// The DP's raison d'être versus periodic patterns: on irregular
	// chains the rigid pattern must trail by more than on uniform ones
	// (where it is asymptotically optimal).
	rows, err := PatternComparison(50)
	if err != nil {
		t.Fatal(err)
	}
	gap := map[string]float64{}
	for _, r := range rows {
		if r.Platform == "Hera" {
			gap[string(r.Workload)] = r.GapPct
		}
	}
	if gap["HighLow"] <= gap["Uniform"] {
		t.Errorf("HighLow gap (%.3f%%) should exceed Uniform gap (%.3f%%)",
			gap["HighLow"], gap["Uniform"])
	}
}

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"chainckpt/internal/ascii"
	"chainckpt/internal/core"
	"chainckpt/internal/heuristics"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// HeuristicRow is one strategy's result in the X4 comparison.
type HeuristicRow struct {
	Name        string
	Expected    float64
	OverheadPct float64 // over the error-free compute time
	GapPct      float64 // over the DP optimum (ADMV)
	Optimal     bool    // true for the DP rows
}

// HeuristicComparison runs the X4 experiment on one instance: the three
// optimal planners against every baseline heuristic, all valued by the
// same closed-form objective, sorted by expected makespan.
func HeuristicComparison(plat platform.Platform, pat workload.Pattern, n int) ([]HeuristicRow, error) {
	c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
	if err != nil {
		return nil, err
	}
	var rows []HeuristicRow
	opt := 0.0
	for _, alg := range core.Algorithms() {
		res, err := core.Plan(alg, c, plat)
		if err != nil {
			return nil, err
		}
		if alg == core.AlgADMV {
			opt = res.ExpectedMakespan
		}
		rows = append(rows, HeuristicRow{
			Name:     "DP " + string(alg),
			Expected: res.ExpectedMakespan,
			Optimal:  true,
		})
	}
	for _, h := range heuristics.All() {
		res, err := h(c, plat)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HeuristicRow{Name: res.Name, Expected: res.ExpectedMakespan})
	}
	for i := range rows {
		rows[i].OverheadPct = 100 * (rows[i].Expected/c.TotalWeight() - 1)
		rows[i].GapPct = 100 * (rows[i].Expected/opt - 1)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Expected < rows[j].Expected })
	return rows, nil
}

// HeuristicTable renders X4 rows.
func HeuristicTable(rows []HeuristicRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		kind := "heuristic"
		if r.Optimal {
			kind = "optimal DP"
		}
		out = append(out, []string{
			r.Name, kind,
			fmt.Sprintf("%.2f", r.Expected),
			fmt.Sprintf("%.2f%%", r.OverheadPct),
			fmt.Sprintf("%.3f%%", r.GapPct),
		})
	}
	return ascii.Table([]string{"strategy", "kind", "E[makespan]", "overhead", "gap vs ADMV"}, out)
}

// HeuristicCSV renders X4 rows as CSV.
func HeuristicCSV(platName string, pat workload.Pattern, n int, rows []HeuristicRow) string {
	var b strings.Builder
	b.WriteString("platform,pattern,n,strategy,expected_makespan,overhead_pct,gap_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%s,%.6f,%.4f,%.4f\n",
			platName, pat, n, r.Name, r.Expected, r.OverheadPct, r.GapPct)
	}
	return b.String()
}

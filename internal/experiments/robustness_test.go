package experiments

import (
	"math"
	"strings"
	"testing"

	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

func TestRobustnessShapeOneMatchesModel(t *testing.T) {
	// At shape 1 the Weibull renewal process IS the model's Poisson
	// process: the simulated mean must validate the prediction.
	p := platform.Hera()
	p.LambdaF *= 30
	p.LambdaS *= 30
	rows, err := Robustness(p, workload.PatternUniform, 12, []float64{1}, 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if math.Abs(r.SimMean-r.Predicted) > 2*r.SimHW95 {
		t.Errorf("shape 1: simulated %.2f±%.2f vs predicted %.2f",
			r.SimMean, r.SimHW95, r.Predicted)
	}
}

func TestRobustnessBurstyDiffers(t *testing.T) {
	p := platform.Hera()
	p.LambdaF *= 60
	p.LambdaS *= 60
	rows, err := Robustness(p, workload.PatternUniform, 12, []float64{0.5, 1}, 40000, 8)
	if err != nil {
		t.Fatal(err)
	}
	bursty, expo := rows[0], rows[1]
	if math.Abs(bursty.SimMean-expo.SimMean) < 2*(bursty.SimHW95+expo.SimHW95) {
		t.Errorf("shape 0.5 (%.2f) and shape 1 (%.2f) should differ measurably",
			bursty.SimMean, expo.SimMean)
	}
	table := RobustnessTable(rows)
	if !strings.Contains(table, "weibull shape") {
		t.Errorf("table:\n%s", table)
	}
	csv := RobustnessCSV("Hera", rows)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Error("csv rows")
	}
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"chainckpt/internal/ascii"
	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/platform"
	"chainckpt/internal/sim"
	"chainckpt/internal/workload"
)

// RobustnessRow is one line of the X7 experiment: the exponential-optimal
// schedule simulated under Weibull error arrivals of the given shape
// (same mean time between errors).
type RobustnessRow struct {
	Shape     float64
	SimMean   float64
	SimHW95   float64
	Predicted float64 // the exponential model's expectation for the schedule
	DeltaPct  float64 // 100*(SimMean/Predicted - 1)
}

// Robustness runs X7: plan with the paper's exponential model, then
// simulate the schedule under increasingly non-exponential (Weibull)
// arrivals with unchanged MTBFs. Shape 1 recovers the model; shapes
// below 1 are the bursty regime reported for production systems. The
// plan resolves through the shared batch engine (so sweeps reuse the
// memo) and the per-shape Monte-Carlo runs fan out on its pool.
func Robustness(plat platform.Platform, pat workload.Pattern, n int,
	shapes []float64, reps int, seed uint64) ([]RobustnessRow, error) {
	c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
	if err != nil {
		return nil, err
	}
	eng := engine.Default()
	res, err := eng.Plan(context.Background(), engine.Request{
		Algorithm: core.AlgADMV, Chain: c, Platform: plat,
	})
	if err != nil {
		return nil, err
	}
	predicted, err := evaluate.Exact(c, plat, res.Schedule)
	if err != nil {
		return nil, err
	}
	out := make([]RobustnessRow, len(shapes))
	err = runCancelling(eng, len(shapes), func(i int) error {
		shape := shapes[i]
		sres, err := sim.Run(c, plat, res.Schedule, sim.Options{
			Replications: reps,
			Seed:         seed,
			Workers:      simWorkers(len(shapes)),
			Shapes:       sim.Shapes{FailStop: shape, Silent: shape},
		})
		if err != nil {
			return fmt.Errorf("experiments: shape %g: %w", shape, err)
		}
		out[i] = RobustnessRow{
			Shape:     shape,
			SimMean:   sres.Mean(),
			SimHW95:   sres.HalfWidth95(),
			Predicted: predicted,
			DeltaPct:  100 * (sres.Mean()/predicted - 1),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RobustnessTable renders X7 rows.
func RobustnessTable(rows []RobustnessRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%g", r.Shape),
			fmt.Sprintf("%.2f±%.2f", r.SimMean, r.SimHW95),
			fmt.Sprintf("%.2f", r.Predicted),
			fmt.Sprintf("%+.3f%%", r.DeltaPct),
		})
	}
	return ascii.Table([]string{"weibull shape", "simulated makespan", "model prediction", "delta"}, out)
}

// RobustnessCSV renders X7 rows as CSV.
func RobustnessCSV(platName string, rows []RobustnessRow) string {
	var b strings.Builder
	b.WriteString("platform,shape,sim_mean,sim_hw95,predicted,delta_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%g,%.6f,%.6f,%.6f,%.4f\n",
			platName, r.Shape, r.SimMean, r.SimHW95, r.Predicted, r.DeltaPct)
	}
	return b.String()
}

package experiments

import (
	"strings"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// smallCfg keeps unit tests fast; the full paper scale runs in the
// benchmark harness.
var smallCfg = Config{MaxTasks: 12, Step: 1}

func TestRunFigureShape(t *testing.T) {
	fig, err := Run("test", workload.PatternUniform, platform.Hera(), smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Ns) != 12 {
		t.Errorf("Ns = %v", fig.Ns)
	}
	if len(fig.Points) != 12*3 {
		t.Errorf("points = %d, want 36", len(fig.Points))
	}
	if len(fig.Schedules) != 3 {
		t.Errorf("schedules at max n = %d, want 3", len(fig.Schedules))
	}
	for _, alg := range core.Algorithms() {
		if fig.Schedules[alg].Len() != 12 {
			t.Errorf("%s schedule len = %d", alg, fig.Schedules[alg].Len())
		}
	}
}

func TestFigureDominanceAcrossSweep(t *testing.T) {
	fig, err := Run("dom", workload.PatternUniform, platform.Atlas(), smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range fig.Ns {
		adv := fig.point(n, core.AlgADV)
		star := fig.point(n, core.AlgADMVStar)
		admv := fig.point(n, core.AlgADMV)
		if star.Expected > adv.Expected*(1+1e-12) || admv.Expected > star.Expected*(1+1e-12) {
			t.Errorf("n=%d: dominance violated: %f / %f / %f",
				n, adv.Expected, star.Expected, admv.Expected)
		}
	}
}

func TestRenderings(t *testing.T) {
	fig, err := Run("render", workload.PatternHighLow, platform.CoastalSSD(), Config{MaxTasks: 8})
	if err != nil {
		t.Fatal(err)
	}
	chart := fig.NormalizedChart()
	for _, want := range []string{"HighLow", "Coastal SSD", "ADV*", "ADMV"} {
		if !strings.Contains(chart, want) {
			t.Errorf("chart missing %q:\n%s", want, chart)
		}
	}
	table := fig.CountsTable(core.AlgADMV)
	if !strings.Contains(table, "#partial") || !strings.Contains(table, "8") {
		t.Errorf("counts table:\n%s", table)
	}
	strip := fig.Strip(core.AlgADMV)
	if !strings.Contains(strip, "Disk ckpts") {
		t.Errorf("strip:\n%s", strip)
	}
	if got := fig.Strip("nonexistent"); !strings.Contains(got, "no schedule") {
		t.Errorf("missing-schedule strip: %q", got)
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+8*3 {
		t.Errorf("csv has %d lines, want 25", len(lines))
	}
	if !strings.HasPrefix(lines[0], "pattern,platform,n,") {
		t.Errorf("csv header: %q", lines[0])
	}
}

func TestTable1ContainsAllPlatforms(t *testing.T) {
	out := Table1()
	for _, name := range []string{"Hera", "Atlas", "Coastal", "Coastal SSD", "12.2", "3.4"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table1 missing %q:\n%s", name, out)
		}
	}
}

func TestGainSummaryPositiveGains(t *testing.T) {
	fig, err := Run("gain", workload.PatternUniform, platform.Atlas(), Config{MaxTasks: 30, Step: 29})
	if err != nil {
		t.Fatal(err)
	}
	out := GainSummary([]*Figure{fig})
	if !strings.Contains(out, "Atlas") {
		t.Errorf("gain summary:\n%s", out)
	}
	// On Atlas with n=30 the two-level gain is strongly positive (~5%).
	adv := fig.point(30, core.AlgADV)
	star := fig.point(30, core.AlgADMVStar)
	if gain := 1 - star.Expected/adv.Expected; gain < 0.02 {
		t.Errorf("two-level gain on Atlas at n=30 = %.4f, want >= 0.02", gain)
	}
}

func TestValidationRowsConsistent(t *testing.T) {
	rows, err := Validation(8, 4000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*2*3 { // patterns x platforms x algorithms
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		relClosed := abs(r.DP-r.Closed) / r.DP
		if relClosed > 1e-9 {
			t.Errorf("%s/%s/%s: DP vs closed rel diff %.2e", r.Pattern, r.Platform, r.Algorithm, relClosed)
		}
		relOracle := abs(r.DP-r.Oracle) / r.DP
		if relOracle > 1e-4 {
			t.Errorf("%s/%s/%s: DP vs oracle rel diff %.2e", r.Pattern, r.Platform, r.Algorithm, relOracle)
		}
		if r.Sigma > 5 {
			t.Errorf("%s/%s/%s: simulation %0.1f sigma from oracle", r.Pattern, r.Platform, r.Algorithm, r.Sigma)
		}
	}
	table := ValidationTable(rows)
	if !strings.Contains(table, "sigma") {
		t.Errorf("validation table:\n%s", table)
	}
	csv := ValidationCSV(rows)
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != len(rows)+1 {
		t.Error("validation csv row count mismatch")
	}
}

func TestRecallSweepMonotone(t *testing.T) {
	pts, err := RecallSweep(platform.CoastalSSD(), workload.PatternUniform, 15,
		[]float64{0, 0.4, 0.8, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Expected > pts[i-1].Expected*(1+1e-12) {
			t.Errorf("makespan increased with recall: %v -> %v", pts[i-1], pts[i])
		}
	}
	out := SweepTable("recall", pts)
	if !strings.Contains(out, "recall") {
		t.Errorf("sweep table:\n%s", out)
	}
	if csv := SweepCSV("recall", pts); !strings.HasPrefix(csv, "recall,") {
		t.Errorf("sweep csv:\n%s", csv)
	}
}

func TestPartialCostSweepMonotone(t *testing.T) {
	pts, err := PartialCostSweep(platform.CoastalSSD(), workload.PatternUniform, 15,
		[]float64{0.001, 0.01, 0.1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Cheaper partial verifications can only help.
	for i := 1; i < len(pts); i++ {
		if pts[i].Expected < pts[i-1].Expected*(1-1e-12) {
			t.Errorf("makespan decreased with costlier partials: %v -> %v", pts[i-1], pts[i])
		}
	}
	// At V = V* partial verifications are dominated (same cost, worse
	// recall); the planner should place none.
	if last := pts[len(pts)-1]; last.Partials != 0 {
		t.Errorf("V = V* still placed %d partials", last.Partials)
	}
}

func TestRateSweepGainGrows(t *testing.T) {
	pts, err := RateSweep(platform.Hera(), workload.PatternUniform, 15, []float64{0.5, 1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	prevGain := -1.0
	for _, p := range pts {
		gain := 1 - p.Normalized[core.AlgADMVStar]/p.Normalized[core.AlgADV]
		if gain < prevGain-1e-9 {
			t.Errorf("two-level gain shrank at x%g: %f < %f", p.Multiplier, gain, prevGain)
		}
		prevGain = gain
	}
	if !strings.Contains(RateTable(pts), "two-level gain") {
		t.Error("rate table missing header")
	}
}

func TestBlindPlanningPenalty(t *testing.T) {
	bp, err := BlindPlanningPenalty(platform.Hera(), workload.PatternUniform, 20)
	if err != nil {
		t.Fatal(err)
	}
	if bp.PenaltyPct < 0 {
		t.Errorf("blind planning beat aware planning: %+v", bp)
	}
	// On Hera, ignoring silent errors must cost something measurable.
	if bp.PenaltyPct < 0.1 {
		t.Errorf("penalty suspiciously small: %+v", bp)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package experiments

import (
	"fmt"
	"strings"

	"chainckpt/internal/ascii"
	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/sensitivity"
	"chainckpt/internal/workload"
)

// SensitivityReport computes, for one platform, the parameter
// elasticities of the ADMV-optimal expected makespan (X6): which knob
// dominates the resilience overhead once the schedule is optimal.
func SensitivityReport(plat platform.Platform, pat workload.Pattern, n int) ([]sensitivity.Result, error) {
	c, err := workload.Generate(pat, n, workload.PaperTotalWeight)
	if err != nil {
		return nil, err
	}
	res, err := core.PlanADMV(c, plat)
	if err != nil {
		return nil, err
	}
	return sensitivity.FixedSchedule(c, plat, res.Schedule)
}

// SensitivityTable renders elasticity rows.
func SensitivityTable(rows []sensitivity.Result) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			string(r.Parameter),
			fmt.Sprintf("%.4g", r.Base),
			fmt.Sprintf("%+.5f", r.Elasticity),
			fmt.Sprintf("%+.3f s", r.PerPercent),
		})
	}
	return ascii.Table([]string{"parameter", "value", "elasticity", "per +1%"}, out)
}

// SensitivityCSV renders elasticity rows as CSV.
func SensitivityCSV(platName string, rows []sensitivity.Result) string {
	var b strings.Builder
	b.WriteString("platform,parameter,value,elasticity,per_percent_s\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%g,%.8f,%.6f\n", platName, r.Parameter, r.Base, r.Elasticity, r.PerPercent)
	}
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"chainckpt/internal/ascii"
	"chainckpt/internal/core"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/pattern"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

// PatternRow is one line of the X5 experiment: the first-order periodic
// pattern (divisible-load analysis, companion paper [7]) against the
// exact dynamic program, both valued by the exact oracle.
type PatternRow struct {
	Platform  string
	Workload  workload.Pattern
	N         int
	W         float64 // pattern length (s)
	M         int     // memory segments per disk checkpoint
	V         int     // partial verifications per memory segment
	Predicted float64 // first-order predicted overhead (fraction)
	Measured  float64 // oracle overhead of the rounded pattern (fraction)
	DP        float64 // oracle overhead of the DP-ADMV schedule (fraction)
	GapPct    float64 // 100*(pattern/DP makespan - 1)
}

// PatternComparison runs X5 on every Table I platform and workload
// pattern at the given chain length.
func PatternComparison(n int) ([]PatternRow, error) {
	var out []PatternRow
	for _, plat := range platform.All() {
		pat, err := pattern.Optimal(plat)
		if err != nil {
			return nil, err
		}
		for _, wl := range workload.Patterns() {
			c, err := workload.Generate(wl, n, workload.PaperTotalWeight)
			if err != nil {
				return nil, err
			}
			s, err := pat.Apply(c)
			if err != nil {
				return nil, err
			}
			patExact, err := evaluate.Exact(c, plat, s)
			if err != nil {
				return nil, err
			}
			dp, err := core.PlanADMV(c, plat)
			if err != nil {
				return nil, err
			}
			dpExact, err := evaluate.Exact(c, plat, dp.Schedule)
			if err != nil {
				return nil, err
			}
			out = append(out, PatternRow{
				Platform:  plat.Name,
				Workload:  wl,
				N:         n,
				W:         pat.W,
				M:         pat.M,
				V:         pat.V,
				Predicted: pat.Overhead + plat.LambdaF*plat.RD + plat.LambdaS*plat.RM,
				Measured:  patExact/c.TotalWeight() - 1,
				DP:        dpExact/c.TotalWeight() - 1,
				GapPct:    100 * (patExact/dpExact - 1),
			})
		}
	}
	return out, nil
}

// PatternTable renders X5 rows.
func PatternTable(rows []PatternRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Platform, string(r.Workload),
			fmt.Sprintf("%.0f", r.W),
			fmt.Sprintf("%d", r.M),
			fmt.Sprintf("%d", r.V),
			fmt.Sprintf("%.3f%%", 100*r.Predicted),
			fmt.Sprintf("%.3f%%", 100*r.Measured),
			fmt.Sprintf("%.3f%%", 100*r.DP),
			fmt.Sprintf("%.3f%%", r.GapPct),
		})
	}
	return ascii.Table(
		[]string{"platform", "workload", "W*(s)", "M", "V", "predicted ovh", "pattern ovh", "DP ovh", "gap"},
		out)
}

// PatternCSV renders X5 rows as CSV.
func PatternCSV(rows []PatternRow) string {
	var b strings.Builder
	b.WriteString("platform,workload,n,w,m,v,predicted_overhead,pattern_overhead,dp_overhead,gap_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%.3f,%d,%d,%.8f,%.8f,%.8f,%.4f\n",
			r.Platform, r.Workload, r.N, r.W, r.M, r.V, r.Predicted, r.Measured, r.DP, r.GapPct)
	}
	return b.String()
}

package chainckpt

import (
	"math"
	"math/rand"
	"testing"
)

// The facade is a thin re-export layer; these tests exercise the public
// workflow end to end the way the examples do.

func TestPublicWorkflow(t *testing.T) {
	c, err := Uniform(20, 25000)
	if err != nil {
		t.Fatal(err)
	}
	p := Hera()
	res, err := PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedMakespan <= 25000 {
		t.Errorf("makespan %f should exceed the error-free time", res.ExpectedMakespan)
	}
	closed, err := Evaluate(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMakespan(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(closed-res.ExpectedMakespan) > 1e-6 {
		t.Errorf("Evaluate %f vs Plan %f", closed, res.ExpectedMakespan)
	}
	if math.Abs(exact-closed)/closed > 1e-4 {
		t.Errorf("oracle %f vs closed form %f", exact, closed)
	}
	simres, err := Simulate(c, p, res.Schedule, SimOptions{Replications: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !simres.MeanWithin(exact, 5) {
		t.Errorf("simulated %f +- %f vs exact %f", simres.Mean(), simres.Makespan.StdErr(), exact)
	}
}

func TestPublicConstructors(t *testing.T) {
	if _, err := NewChain(Task{Name: "k1", Weight: 10}); err != nil {
		t.Error(err)
	}
	if _, err := ChainFromWeights(1, 2, 3); err != nil {
		t.Error(err)
	}
	if _, err := Decrease(10, 1000); err != nil {
		t.Error(err)
	}
	if _, err := HighLow(10, 1000); err != nil {
		t.Error(err)
	}
	if _, err := RandomChain(rand.New(rand.NewSource(1)), 5, 100); err != nil {
		t.Error(err)
	}
	if got := len(Platforms()); got != 4 {
		t.Errorf("Platforms() returned %d", got)
	}
	if _, err := PlatformByName("Atlas"); err != nil {
		t.Error(err)
	}
	s, err := NewSchedule(3)
	if err != nil {
		t.Fatal(err)
	}
	s.Set(3, Disk)
	if !s.At(3).Has(Guaranteed | Memory | Disk) {
		t.Error("Disk must imply Memory and Guaranteed")
	}
}

func TestPublicAlgorithmsRunnable(t *testing.T) {
	c, _ := HighLow(12, 25000)
	for _, alg := range []Algorithm{ADV, ADMVStar, ADMV} {
		if _, err := Plan(alg, c, CoastalSSD()); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

module chainckpt

go 1.24

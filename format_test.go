package chainckpt_test

import (
	"bytes"
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGofmt keeps the whole repository gofmt-clean.
func TestGofmt(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		formatted, err := format.Source(src)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil
		}
		if !bytes.Equal(src, formatted) {
			t.Errorf("%s is not gofmt-formatted", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package chainckpt_test

import (
	"fmt"

	"chainckpt"
)

// Plan the optimal schedule for a small uniform chain on Hera and print
// the mechanisms it places.
func Example() {
	c, _ := chainckpt.Uniform(10, 25000)
	res, _ := chainckpt.PlanADMVStar(c, chainckpt.Hera())
	counts := res.Schedule.Counts()
	fmt.Printf("disk=%d memory=%d guaranteed=%d\n", counts.Disk, counts.Memory, counts.Guaranteed)
	// Output:
	// disk=1 memory=10 guaranteed=10
}

// Evaluate a hand-built schedule and compare it with the optimum.
func ExampleEvaluate() {
	c, _ := chainckpt.Uniform(4, 10000)
	p := chainckpt.Hera()

	// Checkpoint to memory halfway, disk at the end.
	s, _ := chainckpt.NewSchedule(4)
	s.Set(2, chainckpt.Memory)
	s.Set(4, chainckpt.Disk)
	hand, _ := chainckpt.Evaluate(c, p, s)

	opt, _ := chainckpt.PlanADMVStar(c, p)
	fmt.Printf("hand-built is within %.1f s of the optimum\n", hand-opt.ExpectedMakespan)
	// Output:
	// hand-built is within 24.1 s of the optimum
}

// Restrict where checkpoints may go and replan.
func ExamplePlanConstrained() {
	c, _ := chainckpt.Uniform(6, 12000)
	p := chainckpt.Hera()
	cons, _ := chainckpt.NewConstraints(6)
	for i := 1; i < 6; i++ {
		cons.Forbid(i, chainckpt.Memory) // verifications only inside
	}
	res, _ := chainckpt.PlanConstrained(chainckpt.ADMVStar, c, p, cons)
	counts := res.Schedule.Counts()
	fmt.Printf("memory checkpoints: %d (only the final one)\n", counts.Memory)
	// Output:
	// memory checkpoints: 1 (only the final one)
}

// Render a schedule as the paper's Figure 6 strip.
func ExampleSchedule_strip() {
	s, _ := chainckpt.NewSchedule(8)
	s.Set(2, chainckpt.Partial)
	s.Set(4, chainckpt.Memory)
	s.Set(6, chainckpt.Partial)
	s.Set(8, chainckpt.Disk)
	fmt.Println(s.Strip())
	// Output:
	// Disk ckpts        |.......D|
	// Memory ckpts      |...M...M|
	// Guaranteed verifs |...*...*|
	// Partial verifs    |.v...v..|
}

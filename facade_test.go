package chainckpt

import (
	"context"
	"math"
	"testing"
)

// Exercises the extended public surface end to end: constraints, budgets,
// per-boundary costs, workflows, heuristics, sensitivity and tracing.

func TestFacadeConstraintsAndBudget(t *testing.T) {
	c, err := Uniform(10, 25000)
	if err != nil {
		t.Fatal(err)
	}
	p := Hera()
	p.LambdaF *= 50
	cons, err := NewConstraints(10)
	if err != nil {
		t.Fatal(err)
	}
	cons.Forbid(5, Disk)
	res, err := PlanWithOptions(ADMVStar, c, p, PlanOptions{
		Constraints:        cons,
		MaxDiskCheckpoints: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Counts().Disk > 2 {
		t.Errorf("budget violated: %+v", res.Schedule.Counts())
	}
	if res.Schedule.At(5).Has(Disk) {
		t.Error("constraint violated")
	}
}

func TestFacadeCostsRoundTrip(t *testing.T) {
	c, _ := Uniform(6, 12000)
	p := Hera()
	sizes := []float64{1, 2, 1, 0.5, 1, 1}
	costs, err := ScaledCosts(p, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if costs.At(2).CM != 2*p.CM {
		t.Error("ScaledCosts wrong")
	}
	uni, err := UniformCosts(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if uni.At(3) != (BoundaryCosts{CD: p.CD, CM: p.CM, RD: p.RD, RM: p.RM, VStar: p.VStar, V: p.V}) {
		t.Error("UniformCosts wrong")
	}
	res, err := PlanWithCosts(ADMV, c, p, costs)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := EvaluateWithCosts(c, p, costs, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExactMakespanWithCosts(c, p, costs, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(closed-res.ExpectedMakespan) > 1e-6 {
		t.Errorf("closed %f vs plan %f", closed, res.ExpectedMakespan)
	}
	if math.Abs(exact-closed)/closed > 1e-4 {
		t.Errorf("exact %f vs closed %f", exact, closed)
	}
	full, err := PlanFull(ADMV, c, p, costs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.ExpectedMakespan != res.ExpectedMakespan {
		t.Error("PlanFull disagrees with PlanWithCosts")
	}
}

func TestFacadeWorkflow(t *testing.T) {
	g := NewWorkflow()
	for _, n := range []struct {
		id string
		w  float64
	}{{"a", 1000}, {"b", 4000}, {"c", 500}, {"d", 800}} {
		if err := g.AddNode(n.id, n.w); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "c"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "d"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("c", "d"); err != nil {
		t.Fatal(err)
	}
	best, err := PlanWorkflow(ADMVStar, g, Hera())
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Order) != 4 || best.Order[0] != "a" || best.Order[3] != "d" {
		t.Errorf("order = %v", best.Order)
	}
	if len(WorkflowStrategies()) < 4 {
		t.Error("missing strategies")
	}
	single, err := PlanWorkflowWith(ADMVStar, g, Hera(), WorkflowStrategies()[0])
	if err != nil {
		t.Fatal(err)
	}
	if single.Plan.ExpectedMakespan < best.Plan.ExpectedMakespan-1e-9 {
		t.Error("single strategy beat the combined best")
	}
}

func TestFacadeHeuristics(t *testing.T) {
	c, _ := Uniform(12, 25000)
	p := Hera()
	opt, err := PlanADMV(c, p)
	if err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]func(*Chain, Platform) (*HeuristicResult, error){
		"final":   HeuristicFinalOnly,
		"daly":    HeuristicDaly,
		"pattern": HeuristicPattern,
		"scan":    HeuristicPeriodicScan,
		"greedy":  HeuristicGreedy,
	} {
		res, err := h(c, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.ExpectedMakespan < opt.ExpectedMakespan*(1-1e-9) {
			t.Errorf("%s beats the optimum", name)
		}
	}
}

func TestFacadeSensitivityAndTrace(t *testing.T) {
	c, _ := Uniform(8, 25000)
	p := Hera()
	res, err := PlanADMVStar(c, p)
	if err != nil {
		t.Fatal(err)
	}
	elas, err := Elasticities(c, p, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if len(elas) != 9 {
		t.Errorf("got %d elasticities", len(elas))
	}
	events, err := TraceExecution(c, p, res.Schedule, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || FormatTrace(events) == "" {
		t.Error("empty trace")
	}
	sim, err := Simulate(c, p, res.Schedule, SimOptions{Replications: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sim.Breakdown.Total() - sim.Mean()); d > 1e-6*sim.Mean() {
		t.Errorf("breakdown total %f vs mean %f", sim.Breakdown.Total(), sim.Mean())
	}
}

func TestFacadeSupervisor(t *testing.T) {
	c, _ := Uniform(10, 10000)
	p := Hera()
	sup := NewSupervisor(SupervisorOptions{})
	ctx := context.Background()

	// Static run with a fault-injecting runner: planned internally.
	rep, err := sup.Run(ctx, RunJob{
		Chain: c, Platform: p, Algorithm: ADMVStar,
		Runner: NewSimRunner(p, 11), Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= c.TotalWeight() {
		t.Errorf("makespan %.2f below the error-free compute time", rep.Makespan)
	}
	if err := rep.FinalSchedule.ValidateComplete(); err != nil {
		t.Error(err)
	}
	if len(rep.Trace) == 0 || FormatTrace(rep.Trace) == "" {
		t.Error("supervised run produced no trace")
	}

	// Adaptive run under misspecified rates, with a persistent store.
	store, err := NewCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err = sup.RunAdaptive(ctx, RunJob{
		Chain: c, Platform: p, Algorithm: ADMVStar,
		Runner: NewMisspecifiedRunner(p, 4, 4, 13), Store: store,
	}, AdaptPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if bounds, err := store.Boundaries(); err != nil || len(bounds) == 0 {
		t.Errorf("store boundaries: %v (%v)", bounds, err)
	}
}

func TestFacadeJobStoreAndResume(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenJobStore(dir, JobStoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(JobRecord{ID: "job-1", Seq: 1, Version: 1, State: JobRunning}); err != nil {
		t.Fatal(err)
	}
	store.Close()
	re, err := OpenJobStore(dir, JobStoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rec, ok := re.Get("job-1")
	if !ok || rec.State != JobRunning || rec.State.Terminal() {
		t.Fatalf("replayed record: %+v ok=%v", rec, ok)
	}

	// Resume a supervised run over a checkpoint directory: the full run
	// leaves its final checkpoint behind, and the resumed run restores
	// it and has nothing left to execute.
	c, _ := Uniform(6, 6000)
	p := Hera()
	ckdir := t.TempDir()
	ck, err := NewCheckpointStore(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	sup := NewSupervisor(SupervisorOptions{})
	if _, err := sup.Run(context.Background(), RunJob{
		Chain: c, Platform: p, Runner: NopTaskRunner{}, Store: ck,
	}); err != nil {
		t.Fatal(err)
	}
	ck2, err := NewCheckpointStore(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sup.Run(context.Background(), RunJob{
		Chain: c, Platform: p, Runner: NopTaskRunner{}, Store: ck2, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumedFrom != c.Len() || rep.Events.TasksRun != 0 {
		t.Errorf("resume at the final boundary: %+v", rep)
	}
	if rep.Estimator.FailStop.Events != 0 {
		t.Errorf("estimator export: %+v", rep.Estimator)
	}
}

package chainckpt

// The always-green cross-validation suite: on randomized small chains
// the dynamic program must match an exhaustive search over its own
// schedule space, and the four independent expectation routes — DP
// optimum, closed-form evaluator, Markov-renewal oracle, Monte-Carlo
// simulator — must agree on the chosen schedule. This is the test-suite
// form of the X1 validation experiment (in the spirit of Aupy et al.,
// "On the Combination of Silent Error Detection and Checkpointing").

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"chainckpt/internal/bruteforce"
	"chainckpt/internal/core"
)

// randomPlatform jitters Hera's parameters so the property is exercised
// away from the paper's exact constants: error rates scale by up to 8x
// either way (small chains need hotter rates for mechanisms to matter),
// costs by up to 2x, recall in [0.5, 0.95].
func randomPlatform(rng *rand.Rand) Platform {
	p := Hera()
	jitter := func(v float64, lo, hi float64) float64 {
		return v * math.Exp((lo+rng.Float64()*(hi-lo))*math.Ln2)
	}
	p.LambdaF = jitter(p.LambdaF*50, -3, 3)
	p.LambdaS = jitter(p.LambdaS*50, -3, 3)
	p.CD = jitter(p.CD, -1, 1)
	p.CM = jitter(p.CM, -1, 1)
	p.RD = p.CD
	p.RM = p.CM
	p.VStar = p.CM
	p.V = p.VStar / 100
	p.Recall = 0.5 + 0.45*rng.Float64()
	return p
}

func TestCrossValidationRandomSmallChains(t *testing.T) {
	rng := rand.New(rand.NewSource(20160516))
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(7) // n in [2, 8]
		c, err := RandomChain(rng, n, 2000+3000*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		p := randomPlatform(rng)

		for _, alg := range []Algorithm{ADV, ADMVStar, ADMV} {
			res, err := Plan(alg, c, p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}

			// The DP optimum must equal the brute-force optimum over the
			// algorithm's admissible action set under the same closed
			// forms.
			bf, err := bruteforce.Optimal(alg, c, p, core.Evaluate)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			if rel := math.Abs(res.ExpectedMakespan-bf.Value) / bf.Value; rel > 1e-9 {
				t.Errorf("trial %d %s (n=%d): DP %.9f vs brute force %.9f (rel %.2e over %d schedules)",
					trial, alg, n, res.ExpectedMakespan, bf.Value, rel, bf.Enumerated)
			}

			// The closed-form evaluator must reproduce the DP's own value
			// for the DP's own schedule.
			closed, err := Evaluate(c, p, res.Schedule)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			if rel := math.Abs(res.ExpectedMakespan-closed) / closed; rel > 1e-9 {
				t.Errorf("trial %d %s: DP %.9f vs closed form %.9f", trial, alg, res.ExpectedMakespan, closed)
			}

			// The independent Markov-renewal oracle agrees exactly for the
			// two-level algorithms; ADMV carries the paper's Section III-B
			// accounting residual (see internal/bruteforce), so allow a
			// small relative tolerance there.
			oracle, err := ExactMakespan(c, p, res.Schedule)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			tol := 1e-9
			if alg == ADMV {
				tol = 2e-2
			}
			if rel := math.Abs(closed-oracle) / oracle; rel > tol {
				t.Errorf("trial %d %s (n=%d): closed form %.9f vs oracle %.9f (rel %.2e)",
					trial, alg, n, closed, oracle, rel)
			}
		}
	}
}

func TestCrossValidationSimulatorAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-validation skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3; trial++ {
		n := 4 + rng.Intn(5) // n in [4, 8]
		c, err := RandomChain(rng, n, 4000)
		if err != nil {
			t.Fatal(err)
		}
		p := randomPlatform(rng)
		res, err := PlanADMV(c, p)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := ExactMakespan(c, p, res.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := Simulate(c, p, res.Schedule, SimOptions{
			Replications: 60000,
			Seed:         uint64(1000 + trial),
			Workers:      2, // fixed for cross-machine reproducibility
		})
		if err != nil {
			t.Fatal(err)
		}
		// Five standard errors: loose enough to be always-green, tight
		// enough that a model/simulator divergence cannot hide.
		if !sres.MeanWithin(oracle, 5) {
			t.Errorf("trial %d (n=%d): simulated %.2f±%.2f vs oracle %.2f (%.1f sigma)",
				trial, n, sres.Mean(), sres.HalfWidth95(), oracle,
				math.Abs(sres.Mean()-oracle)/sres.Makespan.StdErr())
		}
	}
}

func TestCrossValidationEngineMatchesPlan(t *testing.T) {
	// The engine facade must be a pure accelerator: batched plans equal
	// the sequential planner on every instance.
	rng := rand.New(rand.NewSource(9))
	eng := NewEngine(EngineOptions{Workers: 4})
	defer eng.Close()

	var reqs []PlanRequest
	for i := 0; i < 10; i++ {
		n := 2 + rng.Intn(7)
		c, err := RandomChain(rng, n, 3000)
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, PlanRequest{
			Algorithm: []Algorithm{ADV, ADMVStar, ADMV}[i%3],
			Chain:     c,
			Platform:  randomPlatform(rng),
		})
	}
	for _, resp := range eng.PlanMany(t.Context(), reqs) {
		if resp.Err != nil {
			t.Fatalf("request %d: %v", resp.Index, resp.Err)
		}
		req := reqs[resp.Index]
		want, err := Plan(req.Algorithm, req.Chain, req.Platform)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Result.ExpectedMakespan != want.ExpectedMakespan ||
			!resp.Result.Schedule.Equal(want.Schedule) {
			t.Errorf("request %d: engine and sequential planner disagree", resp.Index)
		}
	}
}

// TestCrossValidationKernelEquivalence is the pooled/incremental solver
// property: a kernel that recycles dirty scratch arenas, and its
// incremental suffix re-solves, must be byte-identical — same expected
// makespan bits, same schedule actions — to fresh full solves of the
// same instances, across randomized chains, platforms, per-boundary
// costs, placement constraints and suffix split points.
func TestCrossValidationKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	shared := NewKernel() // deliberately reused so every solve after the first sees dirty arenas
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		n := 2 + rng.Intn(9)
		c, err := RandomChain(rng, n, 2000+3000*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		p := randomPlatform(rng)

		var opts PlanOptions
		if rng.Intn(2) == 0 {
			sizes := make([]float64, n)
			for i := range sizes {
				sizes[i] = 0.25 + 1.5*rng.Float64()
			}
			if opts.Costs, err = ScaledCosts(p, sizes); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(2) == 0 {
			cons, err := NewConstraints(n)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < n; i++ { // the final boundary must stay fully allowed
				switch rng.Intn(5) {
				case 0:
					cons.Forbid(i, Partial)
				case 1:
					cons.Forbid(i, Memory)
				case 2:
					cons.Forbid(i, Disk)
				case 3:
					cons.Forbid(i, Guaranteed)
				}
			}
			opts.Constraints = cons
		}

		for _, alg := range []Algorithm{ADV, ADMVStar, ADMV} {
			// Pooled full solve vs a fresh kernel's full solve.
			pooled, err := shared.PlanOpts(alg, c, p, opts)
			if err != nil {
				t.Fatalf("trial %d %s pooled: %v", trial, alg, err)
			}
			fresh, err := NewKernel().PlanOpts(alg, c, p, opts)
			if err != nil {
				t.Fatalf("trial %d %s fresh: %v", trial, alg, err)
			}
			if pooled.ExpectedMakespan != fresh.ExpectedMakespan || !pooled.Schedule.Equal(fresh.Schedule) {
				t.Errorf("trial %d %s: pooled solve differs from fresh solve (%.12g vs %.12g)",
					trial, alg, pooled.ExpectedMakespan, fresh.ExpectedMakespan)
			}

			// Incremental suffix re-solve under drifted rates vs planning
			// the suffix as a standalone chain with sliced tables.
			from := rng.Intn(n)
			m := n - from
			drifted := p
			drifted.LambdaF *= math.Exp((rng.Float64()*4 - 2) * math.Ln2)
			drifted.LambdaS *= math.Exp((rng.Float64()*4 - 2) * math.Ln2)
			sOpts := PlanOptions{MaxDiskCheckpoints: 1 + rng.Intn(m)}
			full := PlanOptions{Costs: opts.Costs, Constraints: opts.Constraints,
				MaxDiskCheckpoints: sOpts.MaxDiskCheckpoints}
			inc, err := shared.ReplanSuffix(alg, c, drifted, from, full)
			if err != nil {
				t.Fatalf("trial %d %s from=%d incremental: %v", trial, alg, from, err)
			}
			suffix, err := ChainFromWeights(c.Weights()[from:]...)
			if err != nil {
				t.Fatal(err)
			}
			if from == 0 {
				sOpts.Costs, sOpts.Constraints = opts.Costs, opts.Constraints
			} else {
				if opts.Costs != nil {
					if sOpts.Costs, err = opts.Costs.Suffix(from); err != nil {
						t.Fatal(err)
					}
				}
				if opts.Constraints != nil {
					if sOpts.Constraints, err = opts.Constraints.Suffix(from); err != nil {
						t.Fatal(err)
					}
				}
			}
			standalone, err := NewKernel().PlanOpts(alg, suffix, drifted, sOpts)
			if err != nil {
				t.Fatalf("trial %d %s from=%d standalone: %v", trial, alg, from, err)
			}
			if inc.ExpectedMakespan != standalone.ExpectedMakespan || !inc.Schedule.Equal(standalone.Schedule) {
				t.Errorf("trial %d %s from=%d: incremental re-solve differs from standalone suffix solve (%.12g vs %.12g)",
					trial, alg, from, inc.ExpectedMakespan, standalone.ExpectedMakespan)
			}
		}
	}
	if st := shared.Stats(); st.ScratchReuses == 0 {
		t.Errorf("property suite never exercised a dirty arena: %+v", st)
	}
}

// TestCrossValidationShardedEngineByteIdentical is the sharded-engine
// property: routing requests across per-shard kernels, memos and worker
// pools must be invisible in the results — every plan from a sharded
// engine is byte-identical (same expected-makespan bits, same schedule
// actions) to the plan from a one-shard engine, across randomized
// chains, platforms, per-boundary costs, constraints and budgets, on
// both cold solves and memo-served repeats.
func TestCrossValidationShardedEngineByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	sharded := NewEngine(EngineOptions{Workers: 8, Shards: 8})
	defer sharded.Close()
	single := NewEngine(EngineOptions{Workers: 8, Shards: 1})
	defer single.Close()

	var reqs []PlanRequest
	for i := 0; i < 24; i++ {
		n := 2 + rng.Intn(9)
		c, err := RandomChain(rng, n, 2000+3000*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		p := randomPlatform(rng)
		var opts PlanOptions
		if rng.Intn(2) == 0 {
			sizes := make([]float64, n)
			for k := range sizes {
				sizes[k] = 0.25 + 1.5*rng.Float64()
			}
			if opts.Costs, err = ScaledCosts(p, sizes); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(2) == 0 {
			cons, err := NewConstraints(n)
			if err != nil {
				t.Fatal(err)
			}
			for b := 1; b < n; b++ {
				if rng.Intn(3) == 0 {
					cons.Forbid(b, Memory)
				}
			}
			opts.Constraints = cons
		}
		if rng.Intn(3) == 0 {
			opts.MaxDiskCheckpoints = 1 + rng.Intn(n)
		}
		reqs = append(reqs, PlanRequest{
			Algorithm: []Algorithm{ADV, ADMVStar, ADMV}[i%3],
			Chain:     c,
			Platform:  p,
			Opts:      opts,
		})
	}

	for pass := 0; pass < 2; pass++ { // pass 1 re-plans through the memos
		a := sharded.PlanMany(t.Context(), reqs)
		b := single.PlanMany(t.Context(), reqs)
		for i := range reqs {
			if a[i].Err != nil || b[i].Err != nil {
				t.Fatalf("pass %d request %d: sharded err=%v single err=%v", pass, i, a[i].Err, b[i].Err)
			}
			if math.Float64bits(a[i].Result.ExpectedMakespan) != math.Float64bits(b[i].Result.ExpectedMakespan) {
				t.Errorf("pass %d request %d: sharded %.17g vs single-shard %.17g",
					pass, i, a[i].Result.ExpectedMakespan, b[i].Result.ExpectedMakespan)
			}
			if !a[i].Result.Schedule.Equal(b[i].Result.Schedule) {
				t.Errorf("pass %d request %d: schedule mismatch across shard counts", pass, i)
			}
		}
	}
	st := sharded.Stats()
	if st.CacheHits == 0 {
		t.Error("second pass never hit the sharded memo")
	}
	touched := 0
	for _, ss := range st.Shards {
		if ss.Requests > 0 {
			touched++
		}
	}
	if touched < 2 {
		t.Errorf("24 instances landed on %d shard(s); routing looks degenerate", touched)
	}
}

// TestCrossValidationOpsPlaneDeterminism is the ops-plane determinism
// bar: the self-tuner and the solve-worker knob are pure performance
// controls, so plans produced while a background churner flips the DP
// team width, retunes scratch pools and runs tuner cycles must be
// byte-identical (same expected-makespan bits, same schedule actions)
// to plans from an untouched engine. The churned engine runs without a
// memo so every pass re-solves under whatever worker config the churner
// last installed.
func TestCrossValidationOpsPlaneDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	churned := NewEngine(EngineOptions{Workers: 4, Shards: 4, CacheSize: -1})
	defer churned.Close()
	baseline := NewEngine(EngineOptions{Workers: 4, Shards: 4})
	defer baseline.Close()

	var reqs []PlanRequest
	for i := 0; i < 12; i++ {
		n := 4 + rng.Intn(8)
		c, err := RandomChain(rng, n, 2000+3000*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, PlanRequest{
			Algorithm: []Algorithm{ADV, ADMVStar, ADMV}[i%3],
			Chain:     c,
			Platform:  randomPlatform(rng),
		})
	}
	want := baseline.PlanMany(t.Context(), reqs)

	// The churner exercises every actuation path the ops plane owns:
	// direct retargeting, per-size-bucket width overrides, auto
	// crossover retargeting, scratch-pool retuning, and full tuner
	// cycles (LargeN 4 with small-chain traffic keeps the regime
	// decision flapping between serial and auto; Hysteresis 1 lets the
	// tuner's per-bucket loop land overrides every cycle too).
	tu := NewTuner(TunerConfig{LargeN: 4, MinSamples: 1, Hysteresis: 1,
		Sizes: func() []SizeCount {
			sizes := churned.Stats().Kernel.Sizes
			out := make([]SizeCount, len(sizes))
			for i, sz := range sizes {
				out[i] = SizeCount{N: sz.N, Solves: sz.Solves}
			}
			return out
		},
	}, churned, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		targets := []int{1, -1, 2, 4}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			churned.SetSolveWorkers(targets[i%len(targets)])
			// Flip a width override on the bucket the 4..11-task chains
			// live in (and clear it every fourth step), and wobble the
			// auto crossover — both pure performance knobs.
			churned.SetBucketSolveWorkers(8, targets[(i+1)%len(targets)])
			if i%4 == 3 {
				churned.SetBucketSolveWorkers(8, 0)
				churned.SetBucketSolveWorkers(16, targets[i%len(targets)])
			}
			churned.SetAutoCrossover(4 + i%3)
			churned.Tune()
			tu.RunCycle("periodic")
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for pass := 0; pass < 4; pass++ {
		got := churned.PlanMany(t.Context(), reqs)
		for i := range reqs {
			if got[i].Err != nil || want[i].Err != nil {
				t.Fatalf("pass %d request %d: churned err=%v baseline err=%v",
					pass, i, got[i].Err, want[i].Err)
			}
			if math.Float64bits(got[i].Result.ExpectedMakespan) != math.Float64bits(want[i].Result.ExpectedMakespan) {
				t.Errorf("pass %d request %d: churned %.17g vs baseline %.17g",
					pass, i, got[i].Result.ExpectedMakespan, want[i].Result.ExpectedMakespan)
			}
			if !got[i].Result.Schedule.Equal(want[i].Result.Schedule) {
				t.Errorf("pass %d request %d: schedule drifted under ops-plane churn", pass, i)
			}
		}
	}
	close(stop)
	wg.Wait()
	if len(tu.History()) == 0 {
		t.Fatal("churner never completed a tuner cycle")
	}
}

// Benchmark harness: one benchmark per artifact of the paper's evaluation
// (Table I, Figures 5-8) plus the reproduction's validation and ablation
// experiments and micro-benchmarks of the core machinery.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks execute the same sweeps as cmd/chainexp and
// report the headline numbers (two-level and partial-verification gains
// at n = 50) as custom metrics, so `go test -bench` regenerates the
// paper's observable results end to end.
package chainckpt_test

import (
	"testing"

	"chainckpt"
	"chainckpt/internal/core"
	"chainckpt/internal/evaluate"
	"chainckpt/internal/experiments"
	"chainckpt/internal/platform"
	"chainckpt/internal/sim"
	"chainckpt/internal/workload"
)

// benchCfg is the paper-fidelity sweep: n = 1..50 step 1.
var benchCfg = experiments.Config{MaxTasks: 50, Step: 1}

// figureGains runs one figure sweep and reports the relative improvement
// of ADMV* over ADV* and of ADMV over ADMV* at the largest n.
func figureGains(b *testing.B, id string, pat workload.Pattern, plat platform.Platform) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Run(id, pat, plat, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last := fig.Ns[len(fig.Ns)-1]
		var adv, star, admv float64
		for _, p := range fig.Points {
			if p.N != last {
				continue
			}
			switch p.Algorithm {
			case core.AlgADV:
				adv = p.Expected
			case core.AlgADMVStar:
				star = p.Expected
			case core.AlgADMV:
				admv = p.Expected
			}
		}
		if !(admv <= star && star <= adv) {
			b.Fatalf("dominance violated at n=%d: ADV*=%f ADMV*=%f ADMV=%f", last, adv, star, admv)
		}
		b.ReportMetric(100*(1-star/adv), "twolevel_gain_%")
		b.ReportMetric(100*(1-admv/star), "partial_gain_%")
		b.ReportMetric(admv/25000, "norm_makespan")
	}
}

// BenchmarkTable1Platforms regenerates Table I.
func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiments.Table1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure5* regenerate the four rows of Figure 5 (Uniform).
func BenchmarkFigure5Hera(b *testing.B) {
	figureGains(b, "fig5-hera", workload.PatternUniform, platform.Hera())
}
func BenchmarkFigure5Atlas(b *testing.B) {
	figureGains(b, "fig5-atlas", workload.PatternUniform, platform.Atlas())
}
func BenchmarkFigure5Coastal(b *testing.B) {
	figureGains(b, "fig5-coastal", workload.PatternUniform, platform.Coastal())
}
func BenchmarkFigure5CoastalSSD(b *testing.B) {
	figureGains(b, "fig5-coastal-ssd", workload.PatternUniform, platform.CoastalSSD())
}

// BenchmarkFigure6Placements regenerates the ADMV placements at n = 50 on
// every platform (the strips of Figure 6) and reports the disk-checkpoint
// count, which the paper observes to be exactly the final one.
func BenchmarkFigure6Placements(b *testing.B) {
	c, err := workload.Uniform(50, workload.PaperTotalWeight)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		totalDisk := 0
		for _, plat := range platform.All() {
			res, err := core.PlanADMV(c, plat)
			if err != nil {
				b.Fatal(err)
			}
			totalDisk += res.Schedule.Counts().Disk
		}
		b.ReportMetric(float64(totalDisk)/4, "disk_ckpts_avg")
	}
}

// BenchmarkFigure7Decrease regenerates Figure 7 (Decrease pattern on Hera
// and Coastal SSD).
func BenchmarkFigure7Decrease(b *testing.B) {
	b.Run("Hera", func(b *testing.B) {
		figureGains(b, "fig7-hera", workload.PatternDecrease, platform.Hera())
	})
	b.Run("CoastalSSD", func(b *testing.B) {
		figureGains(b, "fig7-coastal-ssd", workload.PatternDecrease, platform.CoastalSSD())
	})
}

// BenchmarkFigure8HighLow regenerates Figure 8 (HighLow pattern).
func BenchmarkFigure8HighLow(b *testing.B) {
	b.Run("Hera", func(b *testing.B) {
		figureGains(b, "fig8-hera", workload.PatternHighLow, platform.Hera())
	})
	b.Run("CoastalSSD", func(b *testing.B) {
		figureGains(b, "fig8-coastal-ssd", workload.PatternHighLow, platform.CoastalSSD())
	})
}

// BenchmarkX1OracleAgreement runs the cross-validation experiment: DP vs
// closed forms vs exact oracle vs Monte Carlo, reporting the worst
// DP-vs-oracle relative deviation.
func BenchmarkX1OracleAgreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Validation(12, 4000, 2016)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			d := r.DP - r.Oracle
			if d < 0 {
				d = -d
			}
			if rel := d / r.DP; rel > worst {
				worst = rel
			}
			if r.Sigma > 6 {
				b.Fatalf("simulation disagreed with oracle by %.1f sigma", r.Sigma)
			}
		}
		b.ReportMetric(worst, "worst_rel_dev")
	}
}

// BenchmarkX2AblationRecall sweeps the partial-verification recall on
// Coastal SSD.
func BenchmarkX2AblationRecall(b *testing.B) {
	recalls := []float64{0, 0.4, 0.8, 1}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RecallSweep(platform.CoastalSSD(), workload.PatternUniform, 30, recalls)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-pts[len(pts)-1].Expected/pts[0].Expected), "recall_gain_%")
	}
}

// BenchmarkX2AblationRates sweeps the error-rate multiplier on Hera.
func BenchmarkX2AblationRates(b *testing.B) {
	mults := []float64{0.5, 1, 4, 16}
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RateSweep(platform.Hera(), workload.PatternUniform, 25, mults)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(100*(1-last.Normalized[core.AlgADMVStar]/last.Normalized[core.AlgADV]),
			"gain_at_16x_%")
	}
}

// BenchmarkX4Heuristics compares the optimal planners against the
// baseline heuristics on Hera/HighLow and reports the worst heuristic's
// optimality gap.
func BenchmarkX4Heuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.HeuristicComparison(platform.Hera(), workload.PatternHighLow, 25)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if r.GapPct < -1e-6 {
				b.Fatalf("%s beats the DP optimum: gap %f%%", r.Name, r.GapPct)
			}
			if !r.Optimal && r.GapPct > worst {
				worst = r.GapPct
			}
		}
		b.ReportMetric(worst, "worst_heuristic_gap_%")
	}
}

// BenchmarkX3BlindPlanning measures the penalty of silent-error-blind
// planning on Hera.
func BenchmarkX3BlindPlanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bp, err := experiments.BlindPlanningPenalty(platform.Hera(), workload.PatternUniform, 30)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bp.PenaltyPct, "penalty_%")
	}
}

// BenchmarkX5PatternVsDP compares the first-order periodic pattern
// (companion paper [7]) against the exact DP on Hera/HighLow, reporting
// the pattern's optimality gap.
func BenchmarkX5PatternVsDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PatternComparison(50)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.GapPct < -1e-4 {
				b.Fatalf("%s/%s: pattern beats the DP", r.Platform, r.Workload)
			}
			if r.Platform == "Hera" && r.Workload == workload.PatternHighLow {
				b.ReportMetric(r.GapPct, "highlow_gap_%")
			}
			if r.Platform == "Hera" && r.Workload == workload.PatternUniform {
				b.ReportMetric(r.GapPct, "uniform_gap_%")
			}
		}
	}
}

// BenchmarkX7Robustness simulates the exponential-optimal schedule under
// bursty Weibull arrivals (shape 0.7) and reports the prediction error.
func BenchmarkX7Robustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Robustness(platform.Hera(), workload.PatternUniform, 25,
			[]float64{0.7, 1}, 20000, 2016)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DeltaPct, "bursty_delta_%")
		if rows[1].DeltaPct > 1 || rows[1].DeltaPct < -1 {
			b.Fatalf("shape-1 simulation should validate the model, got %+.3f%%", rows[1].DeltaPct)
		}
	}
}

// BenchmarkX6Sensitivity computes the ADMV-optimum elasticities on Hera
// and reports the dominant one.
func BenchmarkX6Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SensitivityReport(platform.Hera(), workload.PatternUniform, 30)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if r.Elasticity > worst {
				worst = r.Elasticity
			}
		}
		b.ReportMetric(worst, "max_elasticity")
	}
}

// --- micro-benchmarks of the core machinery ---

func benchPlan(b *testing.B, alg chainckpt.Algorithm, n int) {
	b.Helper()
	c, err := chainckpt.Uniform(n, 25000)
	if err != nil {
		b.Fatal(err)
	}
	p := chainckpt.Hera()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chainckpt.Plan(alg, c, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanADV_n50(b *testing.B)      { benchPlan(b, chainckpt.ADV, 50) }
func BenchmarkPlanADMVStar_n50(b *testing.B) { benchPlan(b, chainckpt.ADMVStar, 50) }
func BenchmarkPlanADMV_n50(b *testing.B)     { benchPlan(b, chainckpt.ADMV, 50) }
func BenchmarkPlanADMV_n25(b *testing.B)     { benchPlan(b, chainckpt.ADMV, 25) }

func BenchmarkClosedFormEvaluate_n50(b *testing.B) {
	c, _ := chainckpt.Uniform(50, 25000)
	p := chainckpt.Hera()
	res, err := chainckpt.PlanADMV(c, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chainckpt.Evaluate(c, p, res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactOracle_n50(b *testing.B) {
	c, _ := chainckpt.Uniform(50, 25000)
	p := chainckpt.Hera()
	res, err := chainckpt.PlanADMV(c, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chainckpt.ExactMakespan(c, p, res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkovOracle_n20(b *testing.B) {
	c, _ := chainckpt.Uniform(20, 25000)
	p := chainckpt.Hera()
	res, err := chainckpt.PlanADMV(c, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := evaluate.MarkovExact(c, p, res.Schedule); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate1kReps_n50(b *testing.B) {
	c, _ := chainckpt.Uniform(50, 25000)
	p := chainckpt.Hera()
	res, err := chainckpt.PlanADMV(c, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, p, res.Schedule, sim.Options{Replications: 1000, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

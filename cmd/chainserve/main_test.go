package main

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/platform"
	"chainckpt/internal/workload"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, []byte(readAll(t, resp))
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestPlanEndpointMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/plan",
		`{"algorithm":"ADMV","platform":"Hera","pattern":"uniform","n":20,"tag":"t1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out planResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Tag != "t1" || out.Algorithm != "ADMV" || out.Error != "" {
		t.Fatalf("response: %+v", out)
	}

	c, err := workload.Uniform(20, workload.PaperTotalWeight)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.PlanADMV(c, platform.Hera())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.ExpectedMakespan-want.ExpectedMakespan) > 1e-9*want.ExpectedMakespan {
		t.Errorf("expected makespan %.6f, want %.6f", out.ExpectedMakespan, want.ExpectedMakespan)
	}
	if out.Schedule == nil || !out.Schedule.Equal(want.Schedule) {
		t.Errorf("schedule mismatch: got %v want %v", out.Schedule, want.Schedule)
	}
}

func TestPlanEndpointExplicitWeightsAndSpec(t *testing.T) {
	_, ts := newTestServer(t)
	spec, err := json.Marshal(platform.Hera())
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/plan",
		`{"algorithm":"ADMV*","platform_spec":`+string(spec)+`,"weights":[100,200,300,400]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out planResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Error != "" || out.Counts == nil || out.Counts.Disk < 1 {
		t.Fatalf("response: %+v", out)
	}
}

func TestPlanEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		body   string
		status int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"platform":"NoSuch","weights":[1,2]}`, http.StatusBadRequest},
		{`{"platform":"Hera"}`, http.StatusBadRequest},
		{`{"platform":"Hera","pattern":"zigzag","n":5}`, http.StatusBadRequest},
		{`{"platform":"Hera","weights":[1,2],"algorithm":"NOPE"}`, http.StatusUnprocessableEntity},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/plan", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, resp.StatusCode, tc.status, body)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	batch := `{"requests":[
		{"platform":"Hera","pattern":"uniform","n":10,"tag":"a"},
		{"platform":"Hera","pattern":"uniform","n":10,"tag":"b"},
		{"platform":"BadName","weights":[1],"tag":"c"}
	]}`
	resp, body := postJSON(t, ts.URL+"/v1/plan/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 3 {
		t.Fatalf("responses: %d", len(out.Responses))
	}
	a, b, c := out.Responses[0], out.Responses[1], out.Responses[2]
	if a.Error != "" || b.Error != "" {
		t.Fatalf("unexpected errors: %+v %+v", a, b)
	}
	if a.ExpectedMakespan != b.ExpectedMakespan {
		t.Errorf("identical requests disagree: %f vs %f", a.ExpectedMakespan, b.ExpectedMakespan)
	}
	if !b.Cached && !a.Cached {
		t.Errorf("identical requests in one batch should coalesce onto the memo")
	}
	if c.Error == "" || c.Tag != "c" {
		t.Errorf("bad request should carry its error: %+v", c)
	}
	if st := srv.eng.Stats(); st.CacheHits == 0 {
		t.Errorf("engine stats show no cache hit: %+v", st)
	}
}

func TestHealthMetricsPlatforms(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"uniform","n":5}`)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	for _, want := range []string{
		"chainserve_http_requests_total",
		"chainserve_engine_requests_total 1",
		"chainserve_engine_cache_misses_total 1",
		"chainserve_uptime_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/platforms")
	if err != nil {
		t.Fatal(err)
	}
	var plats []platform.Platform
	if err := json.Unmarshal([]byte(readAll(t, resp)), &plats); err != nil {
		t.Fatal(err)
	}
	if len(plats) != 4 {
		t.Errorf("platforms: %d, want 4", len(plats))
	}
}

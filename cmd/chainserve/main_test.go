package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/platform"
	"chainckpt/internal/runtime"
	"chainckpt/internal/sim"
	"chainckpt/internal/workload"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 4})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, []byte(readAll(t, resp))
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestPlanEndpointMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/plan",
		`{"algorithm":"ADMV","platform":"Hera","pattern":"uniform","n":20,"tag":"t1"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out planResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if out.Tag != "t1" || out.Algorithm != "ADMV" || out.Error != "" {
		t.Fatalf("response: %+v", out)
	}

	c, err := workload.Uniform(20, workload.PaperTotalWeight)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.PlanADMV(c, platform.Hera())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.ExpectedMakespan-want.ExpectedMakespan) > 1e-9*want.ExpectedMakespan {
		t.Errorf("expected makespan %.6f, want %.6f", out.ExpectedMakespan, want.ExpectedMakespan)
	}
	if out.Schedule == nil || !out.Schedule.Equal(want.Schedule) {
		t.Errorf("schedule mismatch: got %v want %v", out.Schedule, want.Schedule)
	}
}

func TestPlanEndpointExplicitWeightsAndSpec(t *testing.T) {
	_, ts := newTestServer(t)
	spec, err := json.Marshal(platform.Hera())
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/plan",
		`{"algorithm":"ADMV*","platform_spec":`+string(spec)+`,"weights":[100,200,300,400]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out planResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Error != "" || out.Counts == nil || out.Counts.Disk < 1 {
		t.Fatalf("response: %+v", out)
	}
}

func TestPlanEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		body   string
		status int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"platform":"NoSuch","weights":[1,2]}`, http.StatusBadRequest},
		{`{"platform":"Hera"}`, http.StatusBadRequest},
		{`{"platform":"Hera","pattern":"zigzag","n":5}`, http.StatusBadRequest},
		{`{"platform":"Hera","weights":[1,2],"algorithm":"NOPE"}`, http.StatusUnprocessableEntity},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/plan", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, resp.StatusCode, tc.status, body)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	batch := `{"requests":[
		{"platform":"Hera","pattern":"uniform","n":10,"tag":"a"},
		{"platform":"Hera","pattern":"uniform","n":10,"tag":"b"},
		{"platform":"BadName","weights":[1],"tag":"c"}
	]}`
	resp, body := postJSON(t, ts.URL+"/v1/plan/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out batchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 3 {
		t.Fatalf("responses: %d", len(out.Responses))
	}
	a, b, c := out.Responses[0], out.Responses[1], out.Responses[2]
	if a.Error != "" || b.Error != "" {
		t.Fatalf("unexpected errors: %+v %+v", a, b)
	}
	if a.ExpectedMakespan != b.ExpectedMakespan {
		t.Errorf("identical requests disagree: %f vs %f", a.ExpectedMakespan, b.ExpectedMakespan)
	}
	if !b.Cached && !a.Cached {
		t.Errorf("identical requests in one batch should coalesce onto the memo")
	}
	if c.Error == "" || c.Tag != "c" {
		t.Errorf("bad request should carry its error: %+v", c)
	}
	if st := srv.eng.Stats(); st.CacheHits == 0 {
		t.Errorf("engine stats show no cache hit: %+v", st)
	}
}

func TestHealthMetricsPlatforms(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"uniform","n":5}`)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	for _, want := range []string{
		"chainserve_http_requests_total",
		"chainserve_engine_requests_total 1",
		"chainserve_engine_cache_misses_total 1",
		"chainserve_uptime_seconds",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/platforms")
	if err != nil {
		t.Fatal(err)
	}
	var plats []platform.Platform
	if err := json.Unmarshal([]byte(readAll(t, resp)), &plats); err != nil {
		t.Fatal(err)
	}
	if len(plats) != 4 {
		t.Errorf("platforms: %d, want 4", len(plats))
	}
}

// TestMetricsShardGauges: the per-shard solve/hit/depth gauges must
// cover every shard and sum to the engine-wide counters.
func TestMetricsShardGauges(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2, Shards: 4})
	t.Cleanup(eng.Close)
	srv := newServer(eng)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	// Distinct plans plus one repeat: 3 solves and 1 hit, spread over
	// whichever shards the fingerprints route to.
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"uniform","n":6}`)
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"uniform","n":7}`)
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Atlas","pattern":"uniform","n":8}`)
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"uniform","n":6}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	if !strings.Contains(metrics, "chainserve_engine_shards 4") {
		t.Errorf("metrics missing shard-count gauge:\n%s", metrics)
	}
	sums := map[string]int{}
	rows := map[string]int{}
	// solves/hits accumulate since boot (counters, _total); depth is the
	// live memo size (gauge).
	families := []string{"solves_total", "hits_total", "depth"}
	for _, line := range strings.Split(metrics, "\n") {
		for _, fam := range families {
			prefix := "chainserve_engine_shard_" + fam + `{shard="`
			if !strings.HasPrefix(line, prefix) {
				continue
			}
			var shard, v int
			if _, err := fmt.Sscanf(line[len("chainserve_engine_shard_"):], fam+`{shard="%d"} %d`, &shard, &v); err != nil {
				t.Fatalf("unparseable shard metric %q: %v", line, err)
			}
			if shard < 0 || shard > 3 {
				t.Errorf("metric for out-of-range shard %d: %q", shard, line)
			}
			sums[fam] += v
			rows[fam]++
		}
	}
	for _, fam := range families {
		if rows[fam] != 4 {
			t.Errorf("%s has %d shard rows, want 4", fam, rows[fam])
		}
	}
	if sums["solves_total"] != 3 || sums["hits_total"] != 1 || sums["depth"] != 3 {
		t.Errorf("shard metric sums = %v, want solves=3 hits=1 depth=3", sums)
	}
	if !strings.Contains(metrics, "# TYPE chainserve_engine_shard_solves_total counter") ||
		!strings.Contains(metrics, "# TYPE chainserve_engine_shard_depth gauge") {
		t.Error("shard metric TYPE declarations missing or wrong")
	}
}

func TestDefaultShards(t *testing.T) {
	env := func(vals map[string]string) func(string) string {
		return func(k string) string { return vals[k] }
	}
	for _, tc := range []struct {
		name string
		env  map[string]string
		want int
	}{
		{"default", nil, 0},
		{"from env", map[string]string{"CHAINSERVE_SHARDS": "8"}, 8},
		{"invalid falls back", map[string]string{"CHAINSERVE_SHARDS": "many"}, 0},
		{"non-positive falls back", map[string]string{"CHAINSERVE_SHARDS": "-2"}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := defaultShards(env(tc.env)); got != tc.want {
				t.Errorf("defaultShards = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestDefaultDrainTimeout(t *testing.T) {
	env := func(vals map[string]string) func(string) string {
		return func(k string) string { return vals[k] }
	}
	for _, tc := range []struct {
		name string
		env  map[string]string
		want time.Duration
	}{
		{"default", nil, 10 * time.Second},
		{"from env", map[string]string{"CHAINSERVE_DRAIN_TIMEOUT": "30s"}, 30 * time.Second},
		{"sub-second", map[string]string{"CHAINSERVE_DRAIN_TIMEOUT": "250ms"}, 250 * time.Millisecond},
		{"invalid falls back", map[string]string{"CHAINSERVE_DRAIN_TIMEOUT": "soon"}, 10 * time.Second},
		{"negative falls back", map[string]string{"CHAINSERVE_DRAIN_TIMEOUT": "-5s"}, 10 * time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := defaultDrainTimeout(env(tc.env)); got != tc.want {
				t.Errorf("defaultDrainTimeout = %v, want %v", got, tc.want)
			}
		})
	}
}

func waitForJob(t *testing.T, url string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		if err := json.Unmarshal([]byte(readAll(t, resp)), &st); err != nil {
			t.Fatal(err)
		}
		if st.Status != "running" {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return jobStatus{}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"algorithm":"ADMV*","platform":"Hera","pattern":"uniform","n":10,"seed":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var created jobStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.Status != "running" || created.Predicted <= 0 {
		t.Fatalf("created job: %+v", created)
	}

	final := waitForJob(t, ts.URL+"/v1/jobs/"+created.ID)
	if final.Status != "done" || final.Report == nil {
		t.Fatalf("final job: %+v", final)
	}
	if final.Report.Makespan <= 0 || final.Report.Events.TasksRun < 10 {
		t.Fatalf("report: %+v", final.Report)
	}

	// The NDJSON stream replays the full event log, one JSON event per
	// line, ending with the done event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(readAll(t, resp)), "\n")
	if len(lines) != len(final.Report.Trace) {
		t.Fatalf("streamed %d events, report has %d", len(lines), len(final.Report.Trace))
	}
	var last struct {
		T    float64 `json:"t"`
		Kind string  `json:"kind"`
		Pos  int     `json:"pos"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "done" || last.Pos != 10 {
		t.Fatalf("last streamed event: %+v", last)
	}

	// The job shows up in the listing.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []jobStatus `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != created.ID {
		t.Fatalf("listing: %+v", listing)
	}
}

func TestAdaptiveJobReplansUnderMisspecifiedRates(t *testing.T) {
	_, ts := newTestServer(t)
	spec := `{"name":"JobLab","lambda_f":1e-4,"lambda_s":4e-4,"c_d":100,"c_m":10,` +
		`"r_d":100,"r_m":10,"v_star":10,"v":0.1,"recall":0.8}`
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"algorithm":"ADMV*","platform_spec":`+spec+`,"pattern":"uniform","n":30,"total":25000,`+
			`"adaptive":true,"true_rate_scale_f":4,"true_rate_scale_s":4,"seed":11}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var created jobStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	final := waitForJob(t, ts.URL+"/v1/jobs/"+created.ID)
	if final.Status != "done" {
		t.Fatalf("job: %+v", final)
	}
	if final.Report.Events.Replans == 0 {
		t.Fatalf("adaptive job under 4x rates never re-planned: %+v", final.Report.Events)
	}
	if final.Report.LambdaFEstimate <= 1e-4 {
		t.Errorf("estimate %.3g did not rise above the modeled rate", final.Report.LambdaFEstimate)
	}
}

func TestJobEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		body   string
		status int
	}{
		{`{not json`, http.StatusBadRequest},
		{`{"platform":"Hera"}`, http.StatusBadRequest},
		{`{"platform":"Hera","weights":[1,2],"true_rate_scale_f":-1}`, http.StatusBadRequest},
		{`{"platform":"Hera","weights":[1,2],"algorithm":"NOPE"}`, http.StatusUnprocessableEntity},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, resp.StatusCode, tc.status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/job-999/events")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events status: %d", resp.StatusCode)
	}
}

func TestMetricsEngineAndJobGauges(t *testing.T) {
	_, ts := newTestServer(t)
	// Two identical plans: one miss, one hit -> ratio 0.5 for ADMV.
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"uniform","n":5}`)
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"uniform","n":5}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	for _, want := range []string{
		`chainserve_engine_plans_total{algorithm="ADMV"} 2`,
		`chainserve_engine_plans_total{algorithm="ADV*"} 0`,
		"chainserve_engine_cache_hit_ratio 0.5",
		"chainserve_jobs_total 0",
		"chainserve_jobs_running 0",
		"chainserve_supervisor_replans_total",
		"chainserve_job_errors_total",
		"chainserve_jobs_resumed_total 0",
		"chainserve_replan_requests_total 0",
		"chainserve_jobstore_appends_total 0",
		"chainserve_jobstore_jobs 0",
		"chainserve_jobstore_errors_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestMetricsKernelScratchGauges(t *testing.T) {
	_, ts := newTestServer(t)
	// Three distinct instances of one size class: the first solve
	// allocates an arena, the repeats recycle it (the plans differ, so
	// the engine memo cannot serve them).
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"uniform","n":6}`)
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Hera","pattern":"decrease","n":6}`)
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"Atlas","pattern":"uniform","n":6}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	// Exact reuse counts depend on which worker's sync.Pool slot served
	// each solve, so the split between fresh and reused is asserted only
	// in aggregate (3 solves => 3 arena acquisitions, at least one
	// fresh), while names, bucket gauge and labels are exact.
	for _, want := range []string{
		"chainserve_kernel_solves_total 3",
		"chainserve_kernel_scratch_fresh_total ",
		"chainserve_kernel_scratch_reuses_total ",
		"chainserve_kernel_scratch_buckets 1",
		`chainserve_kernel_scratch_bucket_arenas_total{cap="8",kind="reused"} `,
		`chainserve_kernel_scratch_bucket_arenas_total{cap="8",kind="fresh"} `,
		`chainserve_kernel_bucket_solves_total{cap="8"} 3`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	var fresh, reuses uint64
	for _, line := range strings.Split(metrics, "\n") {
		if v, ok := strings.CutPrefix(line, "chainserve_kernel_scratch_fresh_total "); ok {
			fmt.Sscanf(v, "%d", &fresh)
		}
		if v, ok := strings.CutPrefix(line, "chainserve_kernel_scratch_reuses_total "); ok {
			fmt.Sscanf(v, "%d", &reuses)
		}
	}
	if fresh < 1 || fresh+reuses != 3 {
		t.Errorf("scratch accounting fresh=%d reuses=%d, want fresh>=1 and fresh+reuses=3", fresh, reuses)
	}
}

func TestJobManagerRetentionAndBackpressure(t *testing.T) {
	m := newJobManager(jobstore.NewMemory(), "")
	m.maxJobs = 3
	m.maxRunning = 2

	mk := func() *job {
		t.Helper()
		j, _, err := m.create(jobStatus{}, nil, nil, "", 0)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a, b := mk(), mk()
	// Both running: the cap rejects a third.
	if _, _, err := m.create(jobStatus{}, nil, nil, "", 0); err == nil {
		t.Fatal("running cap did not reject")
	}
	a.finish(nil, nil)
	b.finish(nil, nil)
	c := mk()
	c.finish(nil, nil)
	// Retention (3): creating a fourth evicts the oldest finished job.
	d := mk()
	if _, ok := m.get("job-1"); ok {
		t.Error("oldest finished job not evicted")
	}
	if _, ok := m.get(d.snapshot().ID); !ok {
		t.Error("new job missing")
	}
	if got := len(m.list()); got != 3 {
		t.Errorf("listing has %d jobs, want 3", got)
	}
	// Listings strip the trace but keep the report.
	e := mk()
	e.finish(&runtime.Report{Makespan: 1, Trace: []sim.TraceEvent{{Kind: "done"}}}, nil)
	for _, st := range m.list() {
		if st.Report != nil && st.Report.Trace != nil {
			t.Error("listing leaked a full trace")
		}
	}
	if full := e.snapshot(); full.Report == nil || len(full.Report.Trace) != 1 {
		t.Error("direct snapshot lost the trace")
	}
}

// POST /v1/replan: per-request suffix re-planning for external
// executors. A client running a chain under its own supervisor sends
// the instance, its current schedule, the boundary of its last
// committed disk checkpoint and the error rates it has observed; the
// service re-solves the dynamic program for the remaining window
// through the solver kernel (pooled scratch sized to the suffix,
// ~hundreds of microseconds at n=50) and returns the full schedule with
// the new suffix spliced in — the service-side twin of the supervisor's
// internal adaptive re-planning.
package main

import (
	"fmt"
	"net/http"

	"chainckpt/internal/schedule"
)

// replanRequest is the JSON shape of one suffix re-planning request:
// the instance (as in /v1/plan), the schedule currently executing, the
// committed boundary, and the observed rates.
type replanRequest struct {
	planRequest
	// Schedule is the complete schedule currently executing.
	Schedule *schedule.Schedule `json:"schedule"`
	// From is the boundary of the last committed disk checkpoint; the
	// suffix strictly after it is re-planned.
	From int `json:"from"`
	// ObservedLambdaF and ObservedLambdaS replace the platform's modeled
	// rates for the re-plan (0 keeps the modeled rate).
	ObservedLambdaF float64 `json:"observed_lambda_f,omitempty"`
	ObservedLambdaS float64 `json:"observed_lambda_s,omitempty"`
}

// replanResponse carries the spliced schedule back.
type replanResponse struct {
	Algorithm string `json:"algorithm"`
	From      int    `json:"from"`
	// SuffixExpectedMakespan is the model expectation of the re-planned
	// window alone (from the committed checkpoint to the end).
	SuffixExpectedMakespan float64 `json:"suffix_expected_makespan"`
	// Changed reports whether the splice differs from the incoming
	// schedule's suffix.
	Changed  bool               `json:"changed"`
	Counts   *schedule.Counts   `json:"counts,omitempty"`
	Schedule *schedule.Schedule `json:"schedule"`
}

func (s *server) handleReplan(w http.ResponseWriter, r *http.Request) {
	var rr replanRequest
	if err := decodeJSON(r, &rr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, c, err := rr.toEngine()
	if err != nil {
		s.planErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rr.Schedule == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing schedule"))
		return
	}
	if rr.Schedule.Len() != c.Len() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("schedule for %d tasks but chain has %d", rr.Schedule.Len(), c.Len()))
		return
	}
	if err := rr.Schedule.ValidateComplete(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if rr.From < 0 || rr.From >= c.Len() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("from %d out of range [0, %d)", rr.From, c.Len()))
		return
	}
	if rr.From > 0 && !rr.Schedule.At(rr.From).Has(schedule.Disk) {
		// The re-plan models boundary From as a stored state to recover
		// to; without a disk checkpoint there the spliced schedule would
		// have no recovery point at its seam.
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("boundary %d carries no disk checkpoint; the suffix must start from a stored state", rr.From))
		return
	}
	if rr.ObservedLambdaF < 0 || rr.ObservedLambdaS < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("observed rates must be non-negative"))
		return
	}

	p := req.Platform
	if rr.ObservedLambdaF > 0 {
		p.LambdaF = rr.ObservedLambdaF
	}
	if rr.ObservedLambdaS > 0 {
		p.LambdaS = rr.ObservedLambdaS
	}
	opts := req.Opts
	opts.SolveWorkers = 1
	rem, err := suffixBudget(rr.Schedule, rr.From, opts.MaxDiskCheckpoints, c.Len())
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	opts.MaxDiskCheckpoints = rem

	res, err := s.eng.Kernel().ReplanSuffix(req.Algorithm, c, p, rr.From, opts)
	if err != nil {
		s.planErrors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.replans.Add(1)

	spliced := rr.Schedule.Clone()
	changed := spliced.SpliceSuffix(rr.From, res.Schedule)
	counts := spliced.Counts()
	writeJSON(w, http.StatusOK, replanResponse{
		Algorithm:              string(res.Algorithm),
		From:                   rr.From,
		SuffixExpectedMakespan: res.ExpectedMakespan,
		Changed:                changed,
		Counts:                 &counts,
		Schedule:               spliced,
	})
}

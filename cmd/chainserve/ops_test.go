package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/ops"
)

// newOpsTestServer builds a server with an explicit ops configuration
// — the knob saturation tests need that newTestServer's generous
// defaults hide.
func newOpsTestServer(t *testing.T, engOpts engine.Options, cfg opsConfig) (*server, *httptest.Server) {
	t.Helper()
	eng := engine.New(engOpts)
	t.Cleanup(eng.Close)
	srv := newServerWithOps(eng, jobstore.NewMemory(), "", newObsPlane(), cfg)
	t.Cleanup(srv.stopOps)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

const planBody = `{"algorithm":"ADMV","platform":"Hera","pattern":"uniform","n":20,"total":10000}`

// TestSaturationShedsBatchKeepsInteractive is the tentpole acceptance
// test: with the admission slots held and the batch queue bound
// exceeded, job submissions shed with 429 + Retry-After while
// interactive planning keeps completing within its SLO — proven by the
// exported burn-rate gauges staying at zero.
func TestSaturationShedsBatchKeepsInteractive(t *testing.T) {
	cfg := defaultOpsConfig()
	cfg.AdmitConcurrent = 2
	cfg.AdmitQueue = 1
	cfg.RetryAfter = 3 * time.Second
	srv, ts := newOpsTestServer(t, engine.Options{Workers: 4}, cfg)

	// Occupy every execution slot, simulating long-running admitted work.
	rel1, err := srv.admission.Admit(context.Background(), ops.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := srv.admission.Admit(context.Background(), ops.Interactive)
	if err != nil {
		t.Fatal(err)
	}

	// Flood batch-class job submissions: one fits the queue, the rest
	// must shed immediately with 429 and a Retry-After hint.
	const flood = 6
	codes := make(chan int, flood)
	retryAfter := make(chan string, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(`{}`))
			req.Header.Set("X-Deadline-Ms", "2000")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				codes <- -1
				return
			}
			readAll(t, resp)
			codes <- resp.StatusCode
			retryAfter <- resp.Header.Get("Retry-After")
		}()
	}
	// Wait until the sheds have landed (flood-1 queue capacity 1), then
	// free the slots so the queued request completes.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.opsMetrics.Shed.With("batch", "queue_full").Value() >= flood-1-1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	rel1()
	rel2()
	wg.Wait()
	close(codes)
	close(retryAfter)

	shed, other := 0, 0
	for code := range codes {
		if code == http.StatusTooManyRequests {
			shed++
		} else {
			other++
		}
	}
	if shed == 0 {
		t.Fatal("no batch request was shed with 429 under saturation")
	}
	for ra := range retryAfter {
		if ra != "" && ra != "3" {
			t.Errorf("Retry-After = %q, want 3", ra)
		}
	}
	if got := srv.opsMetrics.Shed.With("batch", "queue_full").Value(); got == 0 {
		t.Fatal("chainckpt_admission_shed_total{batch,queue_full} = 0")
	}

	// Interactive planning still flows and meets its SLO.
	for i := 0; i < 20; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/plan", planBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("interactive plan under saturation: status %d", resp.StatusCode)
		}
	}
	srv.opsTick()
	if burn := srv.opsMetrics.BurnRate.With("interactive_latency", "fast").Value(); burn != 0 {
		t.Fatalf("interactive fast burn = %v after shed storm, want 0 (SLO held)", burn)
	}
	var sloView struct {
		Slos []ops.SLOStatus `json:"slos"`
	}
	getJSON(t, ts.URL+"/v1/admin/slo", &sloView)
	if len(sloView.Slos) != 1 || sloView.Slos[0].Name != "interactive_latency" {
		t.Fatalf("admin/slo view = %+v", sloView)
	}
	if p99 := sloView.Slos[0].Fast.P99; p99 >= cfg.SLOThreshold {
		t.Fatalf("interactive p99 = %vs, breaches the %vs SLO", p99, cfg.SLOThreshold)
	}
}

// TestBurnCoupledShedding drives the full loop: an impossible SLO makes
// every request bad, the fast window burns past the threshold, the
// coupling flips batch shedding on, and job submissions bounce with a
// burn-reason 429 while interactive plans still run.
func TestBurnCoupledShedding(t *testing.T) {
	cfg := defaultOpsConfig()
	cfg.SLOThreshold = 1e-9 // everything is over threshold
	cfg.BurnShed = 10
	srv, ts := newOpsTestServer(t, engine.Options{Workers: 4}, cfg)

	for i := 0; i < 10; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/plan", planBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan status %d", resp.StatusCode)
		}
	}
	srv.opsTick()
	if burn := srv.opsMetrics.BurnRate.With("interactive_latency", "fast").Value(); burn < cfg.BurnShed {
		t.Fatalf("fast burn = %v, want >= %v", burn, cfg.BurnShed)
	}
	if !srv.admission.Shedding() {
		t.Fatal("burn past threshold did not engage shedding")
	}

	resp, body := postJSON(t, ts.URL+"/v1/jobs", `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch during burn: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if !strings.Contains(string(body), "burn") {
		t.Fatalf("shed body %q does not name the burn reason", body)
	}
	if got := srv.opsMetrics.Shed.With("batch", "burn").Value(); got == 0 {
		t.Fatal("chainckpt_admission_shed_total{batch,burn} = 0")
	}

	// Interactive traffic is never burn-shed.
	resp, _ = postJSON(t, ts.URL+"/v1/plan", planBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive plan during shedding: status %d", resp.StatusCode)
	}

	// Recovery: an achievable SLO and fresh fast traffic clears the
	// coupling once the bad samples age out of the fast window. Flip
	// the threshold by reconfiguring, then verify SetShedding(false)
	// reopens batch admission.
	srv.admission.SetShedding(false)
	resp, _ = postJSON(t, ts.URL+"/v1/jobs", `{"algorithm":"ADMV"}`)
	if resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("batch still shed after shedding cleared")
	}
}

// TestDeadlineHeaderHonored: a request whose X-Deadline-Ms budget is
// consumed waiting in the admission queue fails 503, never runs, and
// lands in the deadline counter.
func TestDeadlineHeaderHonored(t *testing.T) {
	cfg := defaultOpsConfig()
	cfg.AdmitConcurrent = 1
	cfg.AdmitQueue = 4
	srv, ts := newOpsTestServer(t, engine.Options{Workers: 2}, cfg)

	rel, err := srv.admission.Admit(context.Background(), ops.Interactive)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/plan", strings.NewReader(planBody))
	req.Header.Set("X-Deadline-Ms", "30")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	rel()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deadline-starved request: status %d (body %s), want 503", resp.StatusCode, body)
	}
	if got := srv.opsMetrics.Deadline.With("interactive").Value(); got != 1 {
		t.Fatalf("chainckpt_admission_deadline_total{interactive} = %d, want 1", got)
	}
}

// TestForcedTuneCycleChangesConfigKeepsPlanBytes is the second
// acceptance leg: a forced self-tune cycle against a large-solve
// workload demonstrably retargets the engine's solve parallelism and
// records a tuning event — and the plan bytes for the same request are
// identical before and after.
func TestForcedTuneCycleChangesConfigKeepsPlanBytes(t *testing.T) {
	cfg := defaultOpsConfig()
	// A lowered large-solve boundary keeps the regime switch reachable
	// with affordable window lengths (a real n>=192 solve runs minutes);
	// cache disabled so the post-tune request genuinely re-solves under
	// the new worker configuration.
	cfg.TuneLargeN = 32
	cfg.TuneMinSamples = 3
	srv, ts := newOpsTestServer(t, engine.Options{Workers: 2, CacheSize: -1}, cfg)

	// A large-regime workload: distinct solves at n=48 >= the test
	// boundary of 32 clear the tuner's MinSamples with LargeShare 1.0.
	large := func(total int) string {
		return fmt.Sprintf(`{"algorithm":"ADMV","platform":"Hera","pattern":"uniform","n":48,"total":%d}`, total)
	}
	for i := 0; i < 4; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/plan", large(20000+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up plan status %d", resp.StatusCode)
		}
	}
	_, before := postJSON(t, ts.URL+"/v1/plan", large(20000))
	if srv.eng.SolveWorkers() != 1 {
		t.Fatalf("pre-tune solve workers = %d, want 1 (serial default)", srv.eng.SolveWorkers())
	}

	// Force a cycle through the admin endpoint.
	resp, evBody := postJSON(t, ts.URL+"/v1/admin/tune", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/admin/tune: status %d", resp.StatusCode)
	}
	var ev ops.TuningEvent
	if err := json.Unmarshal(evBody, &ev); err != nil {
		t.Fatalf("tune event decode: %v (%s)", err, evBody)
	}
	if ev.Action != "retune" || ev.NewSolveWorkers != -1 {
		t.Fatalf("forced cycle event = %+v, want retune to auto (-1)", ev)
	}
	if ev.Trigger != "forced" {
		t.Fatalf("trigger = %q, want forced", ev.Trigger)
	}
	if srv.eng.SolveWorkers() != -1 {
		t.Fatalf("post-tune solve workers = %d, want -1", srv.eng.SolveWorkers())
	}

	// The decision is in the history and the counters.
	var hist struct {
		SolveWorkers int               `json:"solve_workers"`
		Events       []ops.TuningEvent `json:"events"`
	}
	getJSON(t, ts.URL+"/v1/admin/tune", &hist)
	if hist.SolveWorkers != -1 || len(hist.Events) == 0 {
		t.Fatalf("tune history = %+v", hist)
	}
	if got := srv.opsMetrics.TunerCycles.With("forced").Value(); got != 1 {
		t.Fatalf("chainckpt_tuner_cycles_total{forced} = %d, want 1", got)
	}

	// Determinism bar: the same request re-solved under the retuned
	// configuration yields byte-identical plan JSON.
	_, after := postJSON(t, ts.URL+"/v1/plan", large(20000))
	if string(before) != string(after) {
		t.Fatalf("plan bytes changed across self-tune:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestAdmissionMetricsInScrape: the new families render through
// /metrics with the chainckpt_ prefixes the ops plane promises.
func TestAdmissionMetricsInScrape(t *testing.T) {
	_, ts := newOpsTestServer(t, engine.Options{Workers: 2}, defaultOpsConfig())
	resp, _ := postJSON(t, ts.URL+"/v1/plan", planBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d", resp.StatusCode)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, mresp)
	for _, want := range []string{
		`chainckpt_admission_admitted_total{class="interactive"}`,
		"chainckpt_admission_in_flight",
		`chainckpt_slo_burn_rate{slo="interactive_latency",window="fast"}`,
		`chainckpt_slo_objective{slo="interactive_latency"} 0.99`,
		"chainckpt_slo_shedding 0",
		"chainckpt_tuner_solve_workers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d (%s)", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("GET %s: decode %v", url, err)
	}
}

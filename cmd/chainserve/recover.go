// Cold-start recovery: on boot, the service replays the durable job
// store and reconciles every record with reality. Terminal jobs are
// re-listed as they ended. Interrupted jobs — created, planned or
// running when the process died — are resumed, not restarted: the
// job's checkpoint directory is scanned for the most recent checkpoint
// whose fingerprint still verifies (runtime.RecoverLatest, skipping
// damaged files), the remaining suffix is re-planned in place through
// the solver kernel's ReplanSuffix under the estimator evidence the
// journal persisted at the last progress transition (never a
// full-chain re-solve), and the supervisor is relaunched from the
// restored task index. This is the paper's two-level recovery promoted
// to service scale: the fail-stop error is the service itself dying,
// and the localized-recovery literature's lesson applies unchanged —
// recover the affected suffix, never re-execute the world.
package main

import (
	"context"
	"encoding/json"
	"fmt"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/replay"
	"chainckpt/internal/runtime"
	"chainckpt/internal/schedule"
)

// recoverJobs replays the job store, re-listing finished jobs and
// resuming interrupted ones. It returns how many were resumed and how
// many adopted in their terminal state; jobs that cannot be resumed
// (unreadable spec, invalid schedule) are marked failed rather than
// silently dropped.
func (s *server) recoverJobs(ctx context.Context) (resumed, adopted int) {
	for _, rec := range s.jobs.store.List() {
		if rec.State.Terminal() {
			s.jobs.adopt(rec)
			adopted++
			continue
		}
		if err := s.resumeJob(ctx, rec); err != nil {
			j := s.jobs.adopt(rec)
			s.jobs.transition(j, func(r *jobstore.Record) {
				r.State = jobstore.StateFailed
				r.Error = fmt.Sprintf("resume: %v", err)
			})
			j.mu.Lock()
			j.status.Status = "failed"
			j.status.Error = j.rec.Error
			j.mu.Unlock()
			continue
		}
		resumed++
		s.jobsResumed.Add(1)
	}
	return resumed, adopted
}

// resumeJob relaunches one interrupted job from its durable record.
func (s *server) resumeJob(ctx context.Context, rec jobstore.Record) error {
	var jr jobRequest
	if err := json.Unmarshal(rec.Spec, &jr); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	jr.normalize()
	req, c, err := jr.toEngine()
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}

	// The planned schedule travels in the record; a job that died before
	// its planned transition is planned from scratch (through the memo).
	var sched *schedule.Schedule
	if len(rec.Schedule) > 0 {
		sched = new(schedule.Schedule)
		if err := json.Unmarshal(rec.Schedule, sched); err != nil {
			return fmt.Errorf("schedule: %w", err)
		}
		if sched.Len() != c.Len() {
			return fmt.Errorf("schedule for %d tasks but chain has %d", sched.Len(), c.Len())
		}
		sched = sched.Clone()
	} else {
		res, err := s.eng.Plan(ctx, req)
		if err != nil {
			return fmt.Errorf("planning: %w", err)
		}
		sched = res.Schedule
	}

	var est runtime.EstimatorState
	if len(rec.Estimator) > 0 {
		// Unreadable estimator evidence only costs the rates, not the
		// resume.
		json.Unmarshal(rec.Estimator, &est)
	}

	// Reconcile with the checkpoint directory: the last verifiable disk
	// checkpoint decides where execution restarts, and the suffix after
	// it is re-planned in place under the persisted rate evidence.
	ck, err := s.jobs.newCheckpointStore(rec.ID, jr.Retention)
	if err != nil {
		return err
	}
	from, _, err := ck.RecoverLatest()
	if err != nil {
		return fmt.Errorf("checkpoint scan: %w", err)
	}
	if from > 0 && from < c.Len() {
		if res, err := s.replanSuffix(req, c, sched, est, from); err == nil {
			sched.SpliceSuffix(from, res.Schedule)
		}
		// A failed suffix re-plan is not fatal: the persisted schedule
		// still executes correctly under the modeled rates.
	}

	schedJSON, err := json.Marshal(sched)
	if err != nil {
		return err
	}
	// The seed the interrupted run used: explicit in the spec, else the
	// one the admission handler derived and journaled; rec.Seq covers
	// journals written before seeds were persisted.
	seed := jr.Seed
	if seed == 0 {
		seed = rec.Seed
	}
	if seed == 0 {
		seed = rec.Seq
	}
	rec.Seed = seed
	j := s.jobs.adoptRunning(rec, schedJSON)
	// The resumed life is recorded like any fresh run; its first
	// lifecycle record is the running transition adoptRunning persisted.
	j.attachRecorder(replay.NewRecorder(recorderMeta(
		&jr, seed, string(req.Algorithm), rec.Fingerprint, c, sched, true,
	)), j.record())
	s.launch(j, runtime.Job{
		Chain:              c,
		Platform:           req.Platform,
		Schedule:           sched,
		Algorithm:          req.Algorithm,
		Costs:              req.Opts.Costs,
		MaxDiskCheckpoints: req.Opts.MaxDiskCheckpoints,
		Runner:             jr.newRunner(req.Platform, seed),
		Store:              ck,
		Resume:             true,
		Estimator:          &est,
	}, jr.Adaptive)
	return nil
}

// replanSuffix re-solves the dynamic program for the window after
// boundary from, under the platform rates the persisted estimator
// evidence supports and the disk-checkpoint budget not yet spent on the
// committed prefix. It goes straight to the engine's solver kernel:
// pooled scratch sized to the suffix, no synthetic suffix chain, no
// full-chain re-solve.
func (s *server) replanSuffix(req engine.Request, c *chain.Chain, sched *schedule.Schedule,
	est runtime.EstimatorState, from int) (*core.Result, error) {
	updated := est.ReplanPlatform(req.Platform, 0)
	opts := core.Options{Costs: req.Opts.Costs, SolveWorkers: 1}
	rem, err := suffixBudget(sched, from, req.Opts.MaxDiskCheckpoints, c.Len())
	if err != nil {
		return nil, err
	}
	opts.MaxDiskCheckpoints = rem
	return s.eng.Kernel().ReplanSuffix(req.Algorithm, c, updated, from, opts)
}

// suffixBudget returns the disk-checkpoint budget left for the window
// after boundary from: the whole-run budget minus the checkpoints the
// committed prefix has already spent, clamped to the suffix length.
// max <= 0 means unlimited (returns 0, the solver's "no bound"); an
// exhausted budget is an error — the suffix cannot be re-planned, its
// mandatory final checkpoint alone would bust the bound.
func suffixBudget(sched *schedule.Schedule, from, max, n int) (int, error) {
	if max <= 0 {
		return 0, nil
	}
	used := 0
	for pos := 1; pos <= from; pos++ {
		if sched.At(pos).Has(schedule.Disk) {
			used++
		}
	}
	rem := max - used
	if rem < 1 {
		return 0, fmt.Errorf("no disk-checkpoint budget left for the suffix")
	}
	if m := n - from; rem > m {
		rem = m
	}
	return rem, nil
}

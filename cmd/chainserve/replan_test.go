package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"chainckpt/internal/core"
	"chainckpt/internal/platform"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

// replanLab is a platform hot enough to place interior disk
// checkpoints, so splicing is observable.
const replanLab = `{"name":"ReplanLab","lambda_f":1e-4,"lambda_s":4e-4,"c_d":100,` +
	`"c_m":10,"r_d":100,"r_m":10,"v_star":10,"v":0.1,"recall":0.8}`

// TestReplanEndpointSplicesSuffix checks the contract against the
// library: the suffix after `from` must equal a direct kernel
// ReplanSuffix under the observed rates, and the prefix must ride
// through untouched.
func TestReplanEndpointSplicesSuffix(t *testing.T) {
	_, ts := newTestServer(t)

	var plat platform.Platform
	if err := json.Unmarshal([]byte(replanLab), &plat); err != nil {
		t.Fatal(err)
	}
	c, err := workload.Uniform(20, 20000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.PlanADMV(c, plat)
	if err != nil {
		t.Fatal(err)
	}
	schedJSON, err := json.Marshal(res.Schedule)
	if err != nil {
		t.Fatal(err)
	}

	// The executor saw a small fraction of the modeled crashes: the
	// re-planned suffix sheds checkpoints (the base plan on this hot
	// platform is already saturated, so only a downward drift can move
	// the placement).
	const from = 6
	observedF := plat.LambdaF / 25
	body := fmt.Sprintf(`{"platform_spec":%s,"pattern":"uniform","n":20,"total":20000,`+
		`"schedule":%s,"from":%d,"observed_lambda_f":%g}`, replanLab, schedJSON, from, observedF)
	resp, raw := postJSON(t, ts.URL+"/v1/replan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out replanResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
	if out.From != from || out.Schedule == nil || out.SuffixExpectedMakespan <= 0 {
		t.Fatalf("response: %+v", out)
	}

	// Reference: the kernel's own suffix re-plan under the observed rate.
	updated := plat
	updated.LambdaF = observedF
	want, err := core.NewKernel().ReplanSuffix(core.AlgADMV, c, updated, from, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= c.Len()-from; k++ {
		if got, exp := out.Schedule.At(from+k), want.Schedule.At(k); got != exp {
			t.Errorf("boundary %d: got %v, want %v", from+k, got, exp)
		}
	}
	for pos := 1; pos <= from; pos++ {
		if got, exp := out.Schedule.At(pos), res.Schedule.At(pos); got != exp {
			t.Errorf("prefix boundary %d modified: got %v, want %v", pos, got, exp)
		}
	}
	if out.SuffixExpectedMakespan != want.ExpectedMakespan {
		t.Errorf("suffix makespan %g, want %g", out.SuffixExpectedMakespan, want.ExpectedMakespan)
	}
	// A 25x-lower fail-stop rate must thin the suffix's placements.
	if !out.Changed {
		t.Error("25x-lower observed rate left the suffix unchanged")
	}
	if got, base := out.Counts.Disk, res.Schedule.Counts().Disk; got >= base {
		t.Errorf("spliced schedule has %d disk checkpoints, want fewer than the base %d", got, base)
	}
}

// TestReplanEndpointFromZeroIsFullPlan: from=0 degenerates to a full
// re-plan, still through the kernel.
func TestReplanEndpointFromZeroIsFullPlan(t *testing.T) {
	_, ts := newTestServer(t)
	sched := schedule.MustNew(4)
	sched.Set(4, schedule.Disk|schedule.Memory|schedule.Guaranteed)
	schedJSON, _ := json.Marshal(sched)
	body := fmt.Sprintf(`{"platform":"Hera","weights":[100,200,300,400],"schedule":%s,"from":0}`, schedJSON)
	resp, raw := postJSON(t, ts.URL+"/v1/replan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out replanResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schedule == nil || out.Schedule.Len() != 4 {
		t.Fatalf("response: %+v", out)
	}
	if err := out.Schedule.ValidateComplete(); err != nil {
		t.Fatalf("spliced schedule invalid: %v", err)
	}
}

func TestReplanEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	okSched := schedule.MustNew(2)
	okSched.Set(2, schedule.Disk|schedule.Memory|schedule.Guaranteed)
	schedJSON, _ := json.Marshal(okSched)
	incomplete := schedule.MustNew(2) // no final disk checkpoint
	incompleteJSON, _ := json.Marshal(incomplete)
	for _, tc := range []struct {
		name   string
		body   string
		status int
	}{
		{"not json", `{nope`, http.StatusBadRequest},
		{"no platform", fmt.Sprintf(`{"weights":[1,2],"schedule":%s}`, schedJSON), http.StatusBadRequest},
		{"no schedule", `{"platform":"Hera","weights":[1,2]}`, http.StatusBadRequest},
		{"length mismatch", fmt.Sprintf(`{"platform":"Hera","weights":[1,2,3],"schedule":%s}`, schedJSON), http.StatusBadRequest},
		{"incomplete schedule", fmt.Sprintf(`{"platform":"Hera","weights":[1,2],"schedule":%s}`, incompleteJSON), http.StatusBadRequest},
		{"from out of range", fmt.Sprintf(`{"platform":"Hera","weights":[1,2],"schedule":%s,"from":2}`, schedJSON), http.StatusBadRequest},
		{"no disk at from", fmt.Sprintf(`{"platform":"Hera","weights":[1,2],"schedule":%s,"from":1}`, schedJSON), http.StatusBadRequest},
		{"negative rate", fmt.Sprintf(`{"platform":"Hera","weights":[1,2],"schedule":%s,"observed_lambda_f":-1}`, schedJSON), http.StatusBadRequest},
		{"budget exhausted", fmt.Sprintf(`{"platform":"Hera","weights":[1,2],"schedule":%s,"from":1,"max_disk_checkpoints":1}`, spentSchedule(t)), http.StatusUnprocessableEntity},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/replan", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}
}

// spentSchedule is a 2-task schedule whose single disk-checkpoint
// budget is already spent on boundary 1.
func spentSchedule(t *testing.T) string {
	t.Helper()
	s := schedule.MustNew(2)
	s.Set(1, schedule.Disk|schedule.Memory|schedule.Guaranteed)
	s.Set(2, schedule.Disk|schedule.Memory|schedule.Guaranteed)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
